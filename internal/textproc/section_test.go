package textproc

import (
	"strings"
	"testing"
)

const sampleRecord = `Patient:  2
Chief Complaint:  Abnormal mammogram.
History of Present Illness:  Ms. 2 is a 50-year-old woman who underwent a screening mammogram.
GYN History:  Menarche at age 10, gravida 4, para 3.
Past Medical History:  Significant for diabetes, heart disease, high blood pressure.
Past Surgical History:  Cervical laminectomy.
Medications:  Aspirin, hydrochlorothiazide, Lipitor.
Allergies:  Penicillin, ACE inhibitors, and latex.
Social History:  Smoking history, 15 years.  Alcohol use, occasional.
Family History:  Mother with breast cancer, diagnosed at age 52.
Review of Systems:  Significant for back pain and arthritis complaints.
Physical examination:  Reveals an overweight woman in no apparent distress.
Vitals:  Blood pressure is 142/78, pulse of 96, and weight of 211.
HEENT:  PERRLA.
Neck:  There is no cervical or supraclavicular lymphadenopathy.
Chest:  Clear to auscultation anteriorly, posteriorly, and bilaterally.
Heart:  S1 S2, regular, and no murmurs.
Abdomen:  Soft, nontender, and no masses.
Examination of Breasts:  Shows good symmetry bilaterally.
`

func TestSplitSectionsFullRecord(t *testing.T) {
	secs := SplitSections(sampleRecord)
	if len(secs) != 19 {
		t.Fatalf("got %d sections, want 19: %v", len(secs), headerNames(secs))
	}
	for i, h := range StandardHeaders {
		if secs[i].Header != h {
			t.Errorf("section[%d].Header = %q, want %q", i, secs[i].Header, h)
		}
	}
}

func TestSplitSectionsBodies(t *testing.T) {
	secs := SplitSections(sampleRecord)
	vitals, ok := FindSection(secs, "Vitals")
	if !ok {
		t.Fatal("Vitals section not found")
	}
	if !strings.Contains(vitals.Body, "142/78") {
		t.Errorf("Vitals body = %q", vitals.Body)
	}
	pmh, ok := FindSection(secs, "Past Medical History")
	if !ok {
		t.Fatal("Past Medical History not found")
	}
	if !strings.HasPrefix(pmh.Body, "Significant for diabetes") {
		t.Errorf("PMH body = %q", pmh.Body)
	}
	// Body must not bleed into the next section.
	if strings.Contains(pmh.Body, "laminectomy") {
		t.Errorf("PMH body contains next section: %q", pmh.Body)
	}
}

func TestSplitSectionsCaseInsensitiveFind(t *testing.T) {
	secs := SplitSections(sampleRecord)
	if _, ok := FindSection(secs, "vitals"); !ok {
		t.Error("case-insensitive FindSection failed")
	}
	if _, ok := FindSection(secs, "Nonexistent"); ok {
		t.Error("FindSection found a nonexistent header")
	}
}

func TestSplitSectionsHeaderMidLineIgnored(t *testing.T) {
	// "Heart" appearing mid-sentence must not open a section.
	rec := "Review of Systems:  Heart issues were denied. Heart rate normal.\nVitals:  Pulse of 80.\n"
	secs := SplitSections(rec)
	if len(secs) != 2 {
		t.Fatalf("got %d sections, want 2: %v", len(secs), headerNames(secs))
	}
	if secs[0].Header != "Review of Systems" || secs[1].Header != "Vitals" {
		t.Errorf("headers = %v", headerNames(secs))
	}
}

func TestSplitSectionsNoHeaders(t *testing.T) {
	secs := SplitSections("free text with no headers at all")
	if len(secs) != 1 || secs[0].Header != "" {
		t.Fatalf("got %+v, want single headerless section", secs)
	}
	if got := SplitSections("   "); len(got) != 0 {
		t.Errorf("blank record produced sections: %+v", got)
	}
}

func TestSplitSectionsPreamble(t *testing.T) {
	rec := "TRANSCRIPTION COPY\nPatient:  7\nVitals:  Pulse of 70.\n"
	secs := SplitSections(rec)
	if len(secs) != 3 {
		t.Fatalf("got %d sections, want 3 (preamble + 2): %v", len(secs), headerNames(secs))
	}
	if secs[0].Header != "" || secs[0].Body != "TRANSCRIPTION COPY" {
		t.Errorf("preamble section = %+v", secs[0])
	}
}

func headerNames(secs []Section) []string {
	out := make([]string, len(secs))
	for i, s := range secs {
		out[i] = s.Header
	}
	return out
}
