package lexicon

import "strings"

// synsets groups clinically interchangeable terms. Each inner slice is one
// synonym set; membership is symmetric. The sets cover the feature names
// and predefined history terms the paper's extraction tasks use, mirroring
// the manually specified synonym lists of §3.1 ("Currently, we are
// manually specifying the synonyms of the concept").
var synsets = [][]string{
	{"blood pressure", "bp"},
	{"pulse", "heart rate", "pulse rate"},
	{"temperature", "temp"},
	{"weight", "wt"},
	{"height", "ht"},
	{"menarche", "menarche age", "age at menarche"},
	{"gravida", "pregnancies", "number of pregnancies"},
	{"para", "live births", "number of live births", "births"},
	{"age", "years old", "year-old"},
	{"smoker", "tobacco user"},
	{"smoking", "tobacco use", "tobacco", "cigarette use", "cigarettes"},
	{"alcohol", "alcohol use", "etoh", "drinking"},
	{"hypertension", "high blood pressure", "htn"},
	{"hypercholesterolemia", "high cholesterol", "elevated cholesterol"},
	{"diabetes", "diabetes mellitus", "dm"},
	{"heart disease", "cardiac disease", "coronary artery disease", "cad"},
	{"cva", "stroke", "cerebrovascular accident"},
	{"mi", "myocardial infarction", "heart attack"},
	{"copd", "chronic obstructive pulmonary disease"},
	{"gerd", "gastroesophageal reflux disease", "reflux", "acid reflux"},
	{"cholecystectomy", "gallbladder removal", "gallbladder surgery"},
	{"hysterectomy", "uterus removal"},
	{"appendectomy", "appendix removal"},
	{"tonsillectomy", "tonsil removal", "tonsils removed"},
	{"laminectomy", "spinal decompression"},
	{"hernia repair", "herniorrhaphy", "hernia closure"},
	{"lumpectomy", "breast lump excision", "partial mastectomy"},
	{"biopsy", "tissue sampling"},
	{"cesarean section", "c-section", "cesarean delivery"},
	{"depression", "depressive disorder"},
	{"arthritis", "osteoarthritis", "joint disease"},
	{"asthma", "reactive airway disease"},
	{"arrhythmia", "irregular heartbeat", "cardiac arrhythmia"},
	{"bronchitis", "chronic bronchitis"},
	{"hypothyroidism", "underactive thyroid", "low thyroid"},
	{"anemia", "low blood count"},
	{"migraine", "migraine headache", "migraines"},
	{"obesity", "morbid obesity"},
	{"osteoporosis", "bone loss"},
	{"anxiety", "anxiety disorder"},
}

// synonymIndex maps each term to its synset id, built once at package
// initialization.
var synonymIndex = buildSynonymIndex()

func buildSynonymIndex() map[string]int {
	idx := make(map[string]int, len(synsets)*2)
	for i, set := range synsets {
		for _, term := range set {
			idx[term] = i
		}
	}
	return idx
}

// Synonyms returns the synonym set containing term (lower-cased), not
// including the term itself. The result is nil when the term is unknown.
func Synonyms(term string) []string {
	term = strings.ToLower(strings.TrimSpace(term))
	i, ok := synonymIndex[term]
	if !ok {
		return nil
	}
	var out []string
	for _, s := range synsets[i] {
		if s != term {
			out = append(out, s)
		}
	}
	return out
}

// AreSynonyms reports whether a and b belong to the same synonym set
// (or are equal after lower-casing).
func AreSynonyms(a, b string) bool {
	a = strings.ToLower(strings.TrimSpace(a))
	b = strings.ToLower(strings.TrimSpace(b))
	if a == b {
		return true
	}
	ia, oka := synonymIndex[a]
	ib, okb := synonymIndex[b]
	return oka && okb && ia == ib
}

// ExpandWithSynonyms returns term plus all its synonyms plus inflected
// variants of each, deduplicated. This is the full recall-widening set the
// numeric-field extractor searches for a feature name.
func ExpandWithSynonyms(term string) []string {
	term = strings.ToLower(strings.TrimSpace(term))
	seen := map[string]bool{}
	var out []string
	add := func(s string) {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	for _, v := range PhraseVariants(term) {
		add(v)
	}
	for _, syn := range Synonyms(term) {
		for _, v := range PhraseVariants(syn) {
			add(v)
		}
	}
	sortStrings(out)
	return out
}
