package core

import (
	"sort"

	"repro/internal/lexicon"
	"repro/internal/ontology"
	"repro/internal/pos"
	"repro/internal/textproc"
)

// TermExtractor extracts multi-word medical terms from history sections
// using the paper's §3.2 method: POS-tag each sentence, propose candidate
// spans with the ordered patterns JJ NN NN / NN NN / JJ NN / NN,
// normalize, and accept candidates found in the ontology.
type TermExtractor struct {
	Ont *ontology.Ontology
	// ResolveSynonyms controls predefined-attribute assignment: when
	// true, any surface form of a predefined concept counts as
	// predefined; when false (the paper's evaluated configuration — "this
	// problem can be solved by introducing synonyms"), only surfaces that
	// normalize to the predefined name itself do.
	ResolveSynonyms bool
	// FilterNegated drops terms inside a negation scope ("No history of
	// stroke."). The paper's system lacks this, so it defaults off; the
	// A7 ablation measures the precision it buys.
	FilterNegated bool
}

// ExtractedTerm is one ontology-confirmed term.
type ExtractedTerm struct {
	Surface    string // the words as they appear in the text
	Concept    *ontology.Concept
	Predefined bool
}

// termPatterns are the paper's ordered POS patterns, longest first so
// multi-word terms are not fragmented.
var termPatterns = [][]func(pos.Tag) bool{
	{isJJ, isNN, isNN},
	{isNN, isNN},
	{isJJ, isNN},
	{isNN},
}

func isJJ(t pos.Tag) bool { return t.IsAdjective() }
func isNN(t pos.Tag) bool { return t.IsNoun() }

// Extract finds the medical terms of one section body and classifies each
// as predefined or other against the given predefined name list. It is a
// convenience wrapper around ExtractSentences for callers holding raw
// text; pipeline code passes the analyzed sentences of a
// textproc.Document section instead.
func (x *TermExtractor) Extract(body string, predefined []string) []ExtractedTerm {
	return x.ExtractSentences(textproc.SplitSentences(body), predefined)
}

// ExtractSentences finds the medical terms of pre-analyzed sentences and
// classifies each as predefined or other.
func (x *TermExtractor) ExtractSentences(sents []textproc.Sentence, predefined []string) []ExtractedTerm {
	preNorm := map[string]bool{}
	preCUI := map[string]bool{}
	for _, p := range predefined {
		preNorm[lexicon.Normalize(p)] = true
		if c := x.Ont.Lookup(p); c != nil {
			preCUI[c.CUI] = true
		}
	}

	var out []ExtractedTerm
	seen := map[string]bool{}
	for _, sent := range sents {
		tagged := pos.TagSentence(sent)
		negFrom := 1 << 30
		if x.FilterNegated {
			negFrom = negationStart(sent)
		}
		i := 0
		for i < len(tagged) {
			term, span := x.matchAt(tagged, i)
			if term == nil {
				i++
				continue
			}
			if i >= negFrom {
				i += span
				continue
			}
			norm := lexicon.Normalize(term.Surface)
			if !seen[norm] {
				seen[norm] = true
				if x.ResolveSynonyms {
					term.Predefined = preCUI[term.Concept.CUI]
				} else {
					term.Predefined = preNorm[norm]
				}
				out = append(out, *term)
			}
			i += span
		}
	}
	return out
}

// matchAt tries the ordered patterns at token index i; on an ontology
// hit it returns the term and the token span consumed.
func (x *TermExtractor) matchAt(tagged []pos.TaggedToken, i int) (*ExtractedTerm, int) {
	for _, pat := range termPatterns {
		if i+len(pat) > len(tagged) {
			continue
		}
		words := make([]string, 0, len(pat))
		ok := true
		for j, test := range pat {
			t := tagged[i+j]
			if t.Kind != textproc.Word || !test(t.Tag) {
				ok = false
				break
			}
			words = append(words, t.Lower())
		}
		if !ok {
			continue
		}
		if c := x.Ont.LookupWords(words); c != nil {
			surface := ""
			for j := range words {
				if j > 0 {
					surface += " "
				}
				surface += tagged[i+j].Text
			}
			return &ExtractedTerm{Surface: surface, Concept: c}, len(pat)
		}
	}
	return nil, 0
}

// SplitTerms partitions extracted terms into predefined and other name
// lists (the four medical-term attributes of the evaluation). Both are
// reported by concept preferred name — the CUI the ontology lookup
// resolved — deduplicated and sorted.
func SplitTerms(terms []ExtractedTerm) (pre, other []string) {
	seenPre := map[string]bool{}
	seenOther := map[string]bool{}
	for _, t := range terms {
		name := t.Concept.Preferred
		if t.Predefined {
			if !seenPre[name] {
				seenPre[name] = true
				pre = append(pre, name)
			}
		} else if !seenOther[name] {
			seenOther[name] = true
			other = append(other, name)
		}
	}
	sort.Strings(pre)
	sort.Strings(other)
	return pre, other
}
