package store

import (
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

// The segment benchmarks prove the tentpole's two claims: a compacted
// store scans rows from immutable segment files at streaming speed, and
// a long snapshot scan no longer blocks ingest — writers land in the
// memtable while readers iterate pinned segments lock-free.

// benchCompactedTable builds a file-backed store with rows rows folded
// into segments.
func benchCompactedTable(b *testing.B, shards int, rows int) (*DB, *Table) {
	b.Helper()
	db, err := OpenSharded(filepath.Join(b.TempDir(), "seg.db"), shards)
	if err != nil {
		b.Fatal(err)
	}
	tbl, err := db.CreateTable(attrSchema())
	if err != nil {
		b.Fatal(err)
	}
	batch := make([]Row, 0, 1024)
	for id := int64(1); id <= int64(rows); id++ {
		batch = append(batch, Row{
			Int(id), Int(id % 500),
			Str("pulse"), Str("x"), Float(float64(60 + id%80)),
		})
		if len(batch) == cap(batch) {
			if err := tbl.InsertBatch(batch); err != nil {
				b.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	if len(batch) > 0 {
		if err := tbl.InsertBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
	if err := db.Compact(); err != nil {
		b.Fatal(err)
	}
	return db, tbl
}

// BenchmarkSegmentScan measures a full snapshot scan of a compacted
// store: every row streams from segment files through the k-way merge
// with an empty memtable.
func BenchmarkSegmentScan(b *testing.B) {
	const rows = 50000
	db, tbl := benchCompactedTable(b, 1, rows)
	defer db.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		tbl.Scan(func(Row) bool { n++; return true })
		if n != rows {
			b.Fatalf("scan saw %d rows, want %d", n, rows)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*rows/b.Elapsed().Seconds(), "rows/s")
}

// BenchmarkQuerySnapshotDuringIngest measures batched ingest throughput
// twice over the same store: first alone, then with a long analytic
// scan in progress — a reader that keeps a snapshot open and streams it
// at a paced rate (a slow consumer), the shape that under the previous
// scan-under-RWMutex design held the read lock for its whole lifetime
// and stalled every writer. The acceptance target is scan_rows/s within
// ~20% of base_rows/s: an open snapshot must cost writers nothing
// beyond the CPU its reader actually burns. On a single-vCPU host the
// ratio is noisy (hypervisor steal stretches whichever phase it lands
// on); judge it across a few -count runs, not one.
func BenchmarkQuerySnapshotDuringIngest(b *testing.B) {
	// Single shard: one table shard, one RWMutex — the configuration
	// where the pre-segment design serialized a scan against every
	// writer, and where the single-shard Scan path streams rows through
	// the callback (so the reader's pacing takes effect row by row).
	const preRows = 50000
	db, tbl := benchCompactedTable(b, 1, preRows)
	defer db.Close()
	var next atomic.Int64
	next.Store(preRows + 1)
	ingest := func(n int) {
		batch := make([]Row, ingestBatchRows)
		for i := 0; i < n; i++ {
			base := next.Add(ingestBatchRows) - ingestBatchRows
			for j := range batch {
				id := base + int64(j)
				batch[j] = Row{
					Int(id), Int(id % 500),
					Str("pulse"), Str("x"), Float(float64(60 + id%80)),
				}
			}
			if err := tbl.InsertBatch(batch); err != nil {
				b.Fatal(err)
			}
		}
	}

	b.ResetTimer()
	// Phase 1: ingest-only baseline.
	start := b.Elapsed()
	ingest(b.N)
	base := (b.Elapsed() - start).Seconds()

	// Fold phase 1 into segments (untimed) so both phases ingest into an
	// empty memtable; otherwise phase 2 pays extra btree/GC cost for the
	// rows phase 1 left behind and the comparison conflates that with
	// reader interference.
	b.StopTimer()
	if err := db.Compact(); err != nil {
		b.Fatal(err)
	}
	b.StartTimer()

	// Phase 2: the same ingest volume under a continuous long scan. The
	// reader paces itself (sleeping every few hundred rows) so the
	// measurement isolates blocking, not single-core CPU competition: a
	// paced reader models an analytic client streaming results out, and
	// is exactly the shape that used to pin the read lock for seconds.
	stop := make(chan struct{})
	scanDone := make(chan int64)
	go func() {
		var scanned int64
		for {
			select {
			case <-stop:
				scanDone <- scanned
				return
			default:
			}
			snap := tbl.Snapshot()
			_ = snap.Scan(func(Row) bool {
				scanned++
				if scanned%256 == 0 {
					time.Sleep(200 * time.Microsecond)
					select {
					case <-stop:
						return false
					default:
					}
				}
				return true
			})
			snap.Release()
		}
	}()
	start = b.Elapsed()
	ingest(b.N)
	during := (b.Elapsed() - start).Seconds()
	close(stop)
	scanned := <-scanDone
	b.StopTimer()

	rows := float64(b.N) * ingestBatchRows
	b.ReportMetric(rows/base, "base_rows/s")
	b.ReportMetric(rows/during, "scan_rows/s")
	b.ReportMetric((rows/during)/(rows/base), "ratio")
	b.ReportMetric(float64(scanned), "rows_scanned")
}
