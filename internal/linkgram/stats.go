package linkgram

import "sync/atomic"

// parsePasses counts full parse attempts (successful or not) process-wide,
// mirroring textproc.AnalysisCounts and pos.TagPasses. Tests snapshot it
// around an operation to pin the parse-at-most-once property of the shared
// Document analysis.
var parsePasses atomic.Uint64

// ParsePasses returns the cumulative number of parse attempts performed
// process-wide.
func ParsePasses() uint64 { return parsePasses.Load() }
