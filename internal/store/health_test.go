package store

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestHealthOk: a fresh database reports the zero health value.
func TestHealthOk(t *testing.T) {
	db := OpenMemorySharded(4)
	defer db.Close()
	h := db.Health()
	if !h.Ok() {
		t.Fatalf("fresh engine unhealthy: %+v", h)
	}
	if h.String() != "ok" {
		t.Fatalf("healthy String() = %q, want ok", h.String())
	}
}

// TestHealthFailedCompactionLatch: a shard whose log was lost to a
// failed compaction swap must be visible in Health and Stats before any
// write is attempted — callers should not have to discover degradation
// via the first failed append.
func TestHealthFailedCompactionLatch(t *testing.T) {
	db := OpenMemorySharded(3)
	defer db.Close()
	tbl, err := db.CreateTable(Schema{
		Name:    "t",
		Columns: []Column{{Name: "id", Type: TInt}, {Name: "v", Type: TString}},
		Primary: 0,
	})
	if err != nil {
		t.Fatal(err)
	}

	latched := errors.New("store: compact rename: injected (shard closed; reopen to recover)")
	db.shards[1].failed = latched

	h := db.Health()
	if !h.ReadOnly {
		t.Fatal("Health.ReadOnly false with a latched shard")
	}
	if len(h.FailedShards) != 1 || h.FailedShards[0] != 1 {
		t.Fatalf("FailedShards = %v, want [1]", h.FailedShards)
	}
	if h.Reason != latched.Error() {
		t.Fatalf("Reason = %q, want %q", h.Reason, latched.Error())
	}
	if h.Ok() {
		t.Fatal("Ok() true for a read-only engine")
	}
	if !strings.Contains(h.String(), "read-only (1 shard(s) refusing writes") {
		t.Fatalf("String() = %q, want read-only report", h.String())
	}

	if st := tbl.Stats(); st.FailedShards != 1 {
		t.Fatalf("Stats.FailedShards = %d, want 1", st.FailedShards)
	}

	// The latch still refuses writes that route to the dead shard.
	var refused bool
	for i := int64(0); i < 64 && !refused; i++ {
		err := tbl.Insert(Row{Int(i), Str("x")})
		if errors.Is(err, latched) {
			refused = true
		} else if err != nil {
			t.Fatalf("unexpected insert error: %v", err)
		}
	}
	if !refused {
		t.Fatal("no insert was refused by the latched shard")
	}
}

// TestHealthRecoveredWithLoss: a torn WAL tail surfaces as
// RecoveredWithLoss with a dropped-record count, and clears on a clean
// reopen after compaction rewrote the log.
func TestHealthRecoveredWithLoss(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.wal")
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable(Schema{
		Name:    "t",
		Columns: []Column{{Name: "id", Type: TInt}, {Name: "v", Type: TString}},
		Primary: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10; i++ {
		if err := tbl.Insert(Row{Int(i), Str("x")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the last record: cut one byte off the file.
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-1); err != nil {
		t.Fatal(err)
	}

	db, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	h := db.Health()
	if !h.RecoveredWithLoss || h.DroppedRecords == 0 {
		t.Fatalf("after torn tail: %+v, want RecoveredWithLoss with drops", h)
	}
	if h.ReadOnly {
		t.Fatalf("torn tail must not make the engine read-only: %+v", h)
	}
	if !strings.Contains(h.String(), "recovered with loss") {
		t.Fatalf("String() = %q, want recovered-with-loss report", h.String())
	}
	if h.RecoveredWithLoss != db.RecoveredWithLoss() {
		t.Fatal("Health.RecoveredWithLoss disagrees with RecoveredWithLoss()")
	}
}
