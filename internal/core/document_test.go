package core

import (
	"testing"

	"repro/internal/records"
	"repro/internal/store"
	"repro/internal/textproc"
)

// TestProcessDocSingleAnalysisPass is the acceptance check for the
// one-pass Document pipeline: processing a pre-analyzed record must not
// run SplitSections or Tokenize again — every extractor (numeric, terms,
// medications, smoking) works off the shared analysis.
func TestProcessDocSingleAnalysisPass(t *testing.T) {
	recs := records.Generate(records.GenOptions{N: 4, Seed: 13})
	sys, err := NewSystem(Config{Strategy: LinkGrammar, ResolveSynonyms: true})
	if err != nil {
		t.Fatal(err)
	}
	sys.TrainSmoking(recs)

	r := recs[0]
	doc := textproc.Analyze(r.Text)
	s0, t0 := textproc.AnalysisCounts()
	ex := sys.ProcessDoc(doc)
	s1, t1 := textproc.AnalysisCounts()
	if s1 != s0 {
		t.Errorf("ProcessDoc re-ran SplitSections %d times, want 0", s1-s0)
	}
	// Every extractor shares the lazy per-section analysis: the first pass
	// tokenizes each consumed section at most once, never once per
	// extractor.
	if got, max := t1-t0, uint64(len(doc.Sections)); got == 0 || got > max {
		t.Errorf("first ProcessDoc ran %d tokenize passes over %d sections, want 1..%d", got, len(doc.Sections), max)
	}
	if ex.Patient != r.ID {
		t.Errorf("patient = %d, want %d", ex.Patient, r.ID)
	}

	// Re-processing the same document runs zero analysis passes: nothing
	// re-tokenizes or re-splits text that has already been analyzed.
	s1, t1 = textproc.AnalysisCounts()
	sys.ProcessDoc(doc)
	s2, t2 := textproc.AnalysisCounts()
	if s2 != s1 || t2 != t1 {
		t.Errorf("second ProcessDoc re-ran analysis: %d section splits, %d tokenizes", s2-s1, t2-t1)
	}

	// Process (the string wrapper) performs exactly one section split.
	s0, t0 = textproc.AnalysisCounts()
	sys.Process(r.Text)
	s1, t1 = textproc.AnalysisCounts()
	if got := s1 - s0; got != 1 {
		t.Errorf("Process ran %d section splits, want 1", got)
	}
	if got, max := t1-t0, uint64(len(doc.Sections)); got > max {
		t.Errorf("Process ran %d tokenize passes over %d sections, want ≤%d", got, len(doc.Sections), max)
	}
}

// TestProcessDocMatchesProcess pins the wrapper equivalence: analyzing
// first and processing the document yields exactly what Process does.
func TestProcessDocMatchesProcess(t *testing.T) {
	recs := records.Generate(records.GenOptions{N: 3, Seed: 17})
	sys, err := NewSystem(Config{Strategy: LinkGrammar, ResolveSynonyms: true})
	if err != nil {
		t.Fatal(err)
	}
	sys.TrainSmoking(recs)
	for i, r := range recs {
		a := sys.Process(r.Text)
		b := sys.ProcessDoc(textproc.Analyze(r.Text))
		if a.Patient != b.Patient || a.Smoking != b.Smoking ||
			len(a.Numeric) != len(b.Numeric) || len(a.OtherMedical) != len(b.OtherMedical) {
			t.Errorf("record %d: Process %+v != ProcessDoc %+v", i, a, b)
		}
	}
}

func TestProcessMalformedPatientSection(t *testing.T) {
	sys, err := NewSystem(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ex := sys.Process("Patient:  not-a-number\nVitals:  Pulse of 80.\n")
	if ex.Patient != 0 {
		t.Errorf("malformed patient id parsed as %d, want 0", ex.Patient)
	}
	if ex.Numeric[records.AttrPulse].Value != 80 {
		t.Error("pulse lost alongside malformed patient id")
	}
}

// TestPersistAllMatchesPersist checks the batched path writes exactly the
// rows the per-record path does.
func TestPersistAllMatchesPersist(t *testing.T) {
	recs := records.Generate(records.GenOptions{N: 5, Seed: 23})
	sys, err := NewSystem(Config{Strategy: LinkGrammar, ResolveSynonyms: true})
	if err != nil {
		t.Fatal(err)
	}
	exs := sys.ProcessAll(recs, 0)

	single := store.OpenMemory()
	nSingle := 0
	for _, ex := range exs {
		n, err := Persist(single, ex)
		if err != nil {
			t.Fatal(err)
		}
		nSingle += n
	}
	batched := store.OpenMemory()
	nBatch, err := PersistAll(batched, exs)
	if err != nil {
		t.Fatal(err)
	}
	if nBatch != nSingle || nBatch == 0 {
		t.Fatalf("PersistAll wrote %d rows, Persist loop wrote %d", nBatch, nSingle)
	}

	ts, err := single.Table("extracted")
	if err != nil {
		t.Fatal(err)
	}
	tb, err := batched.Table("extracted")
	if err != nil {
		t.Fatal(err)
	}
	if ts.Len() != tb.Len() {
		t.Fatalf("table lengths differ: %d vs %d", ts.Len(), tb.Len())
	}
	var rowsSingle []store.Row
	ts.Scan(func(r store.Row) bool { rowsSingle = append(rowsSingle, r); return true })
	i := 0
	tb.Scan(func(r store.Row) bool {
		for c := range r {
			if !r[c].Equal(rowsSingle[i][c]) {
				t.Errorf("row %d column %d: %v != %v", i, c, r[c], rowsSingle[i][c])
			}
		}
		i++
		return true
	})
}
