// Quickstart: extract structured information from a single clinical
// consultation note with the full pipeline.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/records"
	"repro/internal/textproc"
)

func main() {
	log.SetFlags(0)

	// A consultation note in the paper's appendix format.
	note := `Patient:  2
Chief Complaint:  Abnormal mammogram.
History of Present Illness:  Ms. 2 is a 50-year-old woman who underwent a screening mammogram, revealing a solid lesion.  She was referred for further management.
GYN History:  Menarche at age 10, gravida 4, para 3, last menstrual period about a year ago.  First live birth at age 18.
Past Medical History:  Significant for diabetes, heart disease, high blood pressure, hypercholesterolemia, bronchitis, arrhythmia, and depression.
Past Surgical History:  Cervical laminectomy.
Medications:  Aspirin, hydrochlorothiazide, Lipitor, Cardizem, and Zoloft.
Allergies:  Penicillin, ACE inhibitors, and latex.
Social History:  Smoking history, 15 years.  Alcohol use, occasional.
Vitals:  Blood pressure is 142/78, pulse of 96, and weight of 211.
`

	sys, err := core.NewSystem(core.Config{Strategy: core.LinkGrammar, ResolveSynonyms: true})
	if err != nil {
		log.Fatal(err)
	}
	// Train the smoking classifier on the synthetic corpus so Process can
	// also label the categorical field.
	sys.TrainSmoking(records.Generate(records.DefaultGenOptions()))

	// Analyze once — tokens, sentences, sections in a single pass — then
	// let every extractor share the Document.
	doc := textproc.Analyze(note)
	ex := sys.ProcessDoc(doc)

	fmt.Printf("patient %d (%d sections analyzed in one pass)\n\n", ex.Patient, len(doc.Sections))
	fmt.Println("numeric fields (link grammar association):")
	for _, attr := range records.NumericAttrs {
		v, ok := ex.Numeric[attr]
		if !ok {
			continue
		}
		if v.Ratio {
			fmt.Printf("  %-22s %g/%g\n", attr, v.Value, v.Value2)
		} else {
			fmt.Printf("  %-22s %g\n", attr, v.Value)
		}
	}
	fmt.Println("\nmedical terms (POS patterns + ontology):")
	fmt.Printf("  predefined medical:  %v\n", ex.PreMedical)
	fmt.Printf("  other medical:       %v\n", ex.OtherMedical)
	fmt.Printf("  predefined surgical: %v\n", ex.PreSurgical)
	fmt.Printf("  other surgical:      %v\n", ex.OtherSurgical)
	fmt.Printf("  medications:         %v\n", ex.Medications)
	fmt.Println("\ncategorical (ID3):")
	fmt.Printf("  smoking: %s\n", ex.Smoking)
}
