package records

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func collect(t *testing.T, ctx context.Context, in string) ([]Record, error) {
	t.Helper()
	var recs []Record
	for rec, err := range DecodeStream(ctx, strings.NewReader(in)) {
		if err != nil {
			return recs, err
		}
		recs = append(recs, rec)
	}
	return recs, nil
}

func TestDecodeStreamNDJSON(t *testing.T) {
	in := `{"id":1,"text":"Patient:  1\n"}` + "\n" +
		`{"id":2,"text":"Patient:  2\n"}` + "\n"
	recs, err := collect(t, context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].ID != 1 || recs[1].ID != 2 {
		t.Fatalf("decoded %+v", recs)
	}
	if recs[0].Text != "Patient:  1\n" {
		t.Fatalf("text round-trip: %q", recs[0].Text)
	}
}

func TestDecodeStreamEmptyInput(t *testing.T) {
	recs, err := collect(t, context.Background(), "")
	if err != nil || len(recs) != 0 {
		t.Fatalf("empty input: recs=%v err=%v", recs, err)
	}
}

func TestDecodeStreamMalformed(t *testing.T) {
	in := `{"id":1,"text":"a"}` + "\n" + `{"id":2,`
	recs, err := collect(t, context.Background(), in)
	if err == nil {
		t.Fatal("truncated document decoded clean")
	}
	if !strings.Contains(err.Error(), "record 2") {
		t.Fatalf("error does not locate the bad record: %v", err)
	}
	if len(recs) != 1 {
		t.Fatalf("yielded %d records before the error, want 1", len(recs))
	}
}

func TestDecodeStreamEmptyText(t *testing.T) {
	in := `{"id":1,"text":"a"}` + "\n" + `{"id":2}`
	_, err := collect(t, context.Background(), in)
	if !errors.Is(err, ErrEmptyRecord) {
		t.Fatalf("err = %v, want ErrEmptyRecord", err)
	}
}

func TestDecodeStreamCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := collect(t, ctx, `{"id":1,"text":"a"}`)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestDecodeStreamEarlyBreak(t *testing.T) {
	in := `{"id":1,"text":"a"} {"id":2,"text":"b"} {"id":3,"text":"c"}`
	n := 0
	for _, err := range DecodeStream(context.Background(), strings.NewReader(in)) {
		if err != nil {
			t.Fatal(err)
		}
		n++
		if n == 2 {
			break
		}
	}
	if n != 2 {
		t.Fatalf("consumed %d, want 2", n)
	}
}
