package store

import "bytes"

// Snapshots give queries an MVCC-style stable view: at planning time
// the reader pins each shard's immutable segment set (refcounted, so a
// concurrent compaction cannot delete the files under it) and captures
// the shard's memtable entries at the current sequence watermark. From
// then on iteration touches no table lock at all — a long analytic
// scan proceeds while InsertBatch, Delete and Compact run freely, and
// the scan still sees exactly the rows that were live when it planned.
//
// The capture copies only the memtable's entry slice headers (keys and
// Row values are immutable once stored — every mutation replaces whole
// values), so its cost is proportional to the post-compaction write
// set, not the corpus.

// memRow is one captured memtable entry; a nil row is a tombstone
// masking a segment-resident key.
type memRow struct {
	key []byte
	row Row
}

// shardSnap is one shard's slice of a snapshot.
type shardSnap struct {
	segs []*segment // pinned, oldest → newest
	mem  []memRow   // captured entries in ascending key order
	seq  uint64     // memtable sequence watermark at capture
}

// Snapshot is a stable, lock-free view of one table across all shards.
// Release must be called when done; it unpins the segments (a segment
// obsoleted by compaction is deleted on its last unpin).
type Snapshot struct {
	table  *Table
	shards []shardSnap
}

// Snapshot captures a stable view of the table: per shard, the pinned
// segment set and the memtable entries within [lo, hi) (nil bounds =
// everything). Each shard is captured under its read lock — a short,
// bounded hold — after which iteration never locks.
func (t *Table) Snapshot() *Snapshot { return t.snapshotRange(nil, nil) }

func (t *Table) snapshotRange(lo, hi []byte) *Snapshot {
	snap := &Snapshot{table: t, shards: make([]shardSnap, len(t.shards))}
	for i, ts := range t.shards {
		snap.shards[i] = ts.capture(lo, hi)
	}
	return snap
}

// capture takes one shard's snapshot under its read lock.
func (ts *tableShard) capture(lo, hi []byte) shardSnap {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	return ts.captureLocked(lo, hi)
}

// captureLocked captures with the shard's lock already held (read or
// write) — query's scan path releases the lock itself right after.
func (ts *tableShard) captureLocked(lo, hi []byte) shardSnap {
	ss := shardSnap{seq: ts.seq}
	if len(ts.segs) > 0 {
		ss.segs = make([]*segment, len(ts.segs))
		for i, sg := range ts.segs {
			sg.ref()
			ss.segs[i] = sg
		}
	}
	visit := func(key []byte, val interface{}) bool {
		ss.mem = append(ss.mem, memRow{key: key, row: liveRow(val)})
		return true
	}
	if lo == nil && hi == nil {
		ts.primary.Ascend(visit)
	} else {
		ts.primary.AscendRange(lo, hi, visit)
	}
	return ss
}

// liveRow unwraps a memtable value: the Row itself, or nil for a
// tombstone.
func liveRow(val interface{}) Row {
	if row, ok := val.(Row); ok {
		return row
	}
	return nil
}

// Release unpins every segment the snapshot holds. Safe to call once.
func (s *Snapshot) Release() {
	for i := range s.shards {
		s.shards[i].release()
	}
}

// release unpins one shard snapshot's segments.
func (ss *shardSnap) release() {
	for _, sg := range ss.segs {
		sg.unref()
	}
	ss.segs = nil
}

// Seq returns the highest memtable watermark across shards — a test
// hook proving the view does not advance while writers proceed.
func (s *Snapshot) Seq() uint64 {
	var max uint64
	for i := range s.shards {
		if s.shards[i].seq > max {
			max = s.shards[i].seq
		}
	}
	return max
}

// readStats accumulates read-path observability: segment/zone-map
// accounting during iteration plus the acceleration counters (bloom
// rejects and block-cache hits/misses) threaded through every segment
// read. A nil *readStats is accepted everywhere and means "don't
// count".
type readStats struct {
	segments     int // segment files consulted
	blocksPruned int // blocks skipped via zone maps
	bloomSkips   int // segment probes rejected by a bloom filter
	cacheHits    int // blocks served from the decoded-block cache
	cacheMisses  int // blocks that paid disk + CRC + decode
}

// Scan streams every live row in ascending primary-key order without
// holding any lock. fn returning false stops early. It returns any
// segment read error (a memtable-only snapshot cannot fail).
func (s *Snapshot) Scan(fn func(Row) bool) error {
	return s.scan(nil, nil, nil, fn)
}

// ScanRange streams live rows with primary key in [lo, hi).
func (s *Snapshot) ScanRange(lo, hi Value, fn func(Row) bool) error {
	return s.scan(encodeKey(lo), encodeKey(hi), nil, fn)
}

// scan merges the per-shard snapshots into global key order: each
// shard's merged stream is itself merged k-way across shards (shards
// partition the key space by hash, so cross-shard order still needs
// the comparison; within a shard, newest-wins resolves duplicates).
func (s *Snapshot) scan(lo, hi []byte, stats *readStats, fn func(Row) bool) error {
	if len(s.shards) == 1 {
		return s.shards[0].iterate(lo, hi, stats, fn)
	}
	// Fan the per-shard merges out into sorted row slices, then k-way
	// merge (the same shape the pre-segment fan-out used). Iteration
	// here is lock-free already, so collecting per shard keeps the
	// cross-shard merge allocation-lean without re-implementing a
	// concurrent heap.
	parts := make([][]Row, len(s.shards))
	errs := make([]error, len(s.shards))
	done := make(chan int, len(s.shards))
	for i := range s.shards {
		go func(i int) {
			errs[i] = s.shards[i].iterate(lo, hi, stats, func(r Row) bool {
				parts[i] = append(parts[i], r)
				return true
			})
			done <- i
		}(i)
	}
	for range s.shards {
		<-done
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	for _, row := range kwayMerge(parts, s.table.lessByPK()) {
		if !fn(row) {
			return nil
		}
	}
	return nil
}

// iterate merges one shard's memtable capture with its segment
// iterators, newest wins on duplicate keys, tombstones suppressing
// older versions. stats may be nil.
func (ss *shardSnap) iterate(lo, hi []byte, stats *readStats, fn func(Row) bool) error {
	// Source 0 is the memtable capture (highest precedence); sources
	// 1..n are segments newest → oldest.
	mem := ss.mem
	mi := 0
	if lo != nil {
		mi = searchMemRows(mem, lo)
	}
	iters := make([]*segIter, 0, len(ss.segs))
	for i := len(ss.segs) - 1; i >= 0; i-- {
		sg := ss.segs[i]
		if stats != nil {
			stats.segments++
		}
		iters = append(iters, newSegIter(sg, lo, hi, stats))
	}
	defer func() {
		if stats != nil {
			for _, it := range iters {
				stats.blocksPruned += it.pruned
			}
		}
	}()

	memKey := func() []byte {
		if mi < len(mem) && (hi == nil || bytes.Compare(mem[mi].key, hi) < 0) {
			return mem[mi].key
		}
		return nil
	}

	for {
		// Pick the smallest key across sources; the memtable, then
		// newer segments, shadow older sources holding the same key.
		best := memKey()
		bestSrc := -1 // -1 = memtable
		for si, it := range iters {
			if it.err != nil {
				return it.err
			}
			if !it.valid() {
				continue
			}
			k := it.key()
			if best == nil || bytes.Compare(k, best) < 0 {
				best, bestSrc = k, si
			}
		}
		if best == nil {
			return nil
		}
		var row Row
		if bestSrc < 0 {
			row = mem[mi].row // nil = tombstone
			mi++
		} else {
			row = iters[bestSrc].row()
			iters[bestSrc].next()
		}
		// Advance every older source past the shadowed key.
		for si := bestSrc + 1; si < len(iters); si++ {
			it := iters[si]
			if it.valid() && bytes.Equal(it.key(), best) {
				it.next()
			}
			if it.err != nil {
				return it.err
			}
		}
		if row == nil {
			continue // tombstone: the key is deleted in this view
		}
		if !fn(row) {
			return nil
		}
	}
}

// searchMemRows returns the position of the first captured entry with
// key >= lo.
func searchMemRows(mem []memRow, lo []byte) int {
	l, h := 0, len(mem)
	for l < h {
		mid := (l + h) / 2
		if bytes.Compare(mem[mid].key, lo) < 0 {
			l = mid + 1
		} else {
			h = mid
		}
	}
	return l
}
