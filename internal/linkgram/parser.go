package linkgram

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"repro/internal/pos"
	"repro/internal/textproc"
)

// Link is one typed link of a linkage between two parse words, identified
// by their indices into Linkage.Words.
type Link struct {
	Left, Right int
	Label       string
}

// ParseWord is one word that took part in the parse, with a back-pointer
// to the token it came from in the original sentence.
type ParseWord struct {
	Text       string
	Tag        pos.Tag
	TokenIndex int // index into the sentence's token slice; -1 for the wall
}

// Linkage is a complete planar, connected linkage of a sentence.
type Linkage struct {
	Words []ParseWord // Words[0] is the left wall
	Links []Link
}

// ErrNoLinkage is returned when the sentence has no complete linkage; the
// caller is expected to fall back to the pattern approach, exactly as the
// paper does for unparseable fragments.
var ErrNoLinkage = errors.New("linkgram: no complete linkage")

// MaxWords bounds parser input length; longer sentences are rejected
// immediately (the extractor then uses the pattern fallback).
const MaxWords = 28

// Parse parses a tagged sentence and returns its first complete linkage.
func Parse(tagged []pos.TaggedToken) (*Linkage, error) {
	parsePasses.Add(1)
	p := newParser(tagged)
	if p == nil {
		return nil, ErrNoLinkage
	}
	defer p.release()
	if !p.feasible(0, len(p.words), wallList, nil) {
		return nil, ErrNoLinkage
	}
	var links []Link
	if !p.build(0, len(p.words), wallList, nil, &links) {
		return nil, ErrNoLinkage
	}
	// The parser scratch is recycled; the returned Linkage gets its own
	// copy of the word list.
	words := make([]ParseWord, len(p.words))
	copy(words, p.words)
	return &Linkage{Words: words, Links: p.relabel(links)}, nil
}

// ParseSentence tags and parses a textproc sentence in one call.
func ParseSentence(s textproc.Sentence) (*Linkage, error) {
	return Parse(pos.TagSentence(s))
}

// ParseSection parses sentence i of an analyzed section at most once per
// Document, memoizing both the linkage and the ErrNoLinkage outcome: all
// consumers of the shared analysis see the same result, and an
// unparseable sentence pays the parse attempt exactly once. Tagging goes
// through pos.TagSection, so the sentence is also tagged at most once.
// Safe for concurrent use.
func ParseSection(sec *textproc.DocSection, i int) (*Linkage, error) {
	v, err := sec.Derived(i).Parse(func() (any, error) {
		lk, err := Parse(pos.TagSection(sec, i))
		if err != nil {
			return nil, err
		}
		return lk, nil
	})
	if err != nil {
		return nil, err
	}
	lk, _ := v.(*Linkage)
	return lk, nil
}

// parser holds the per-parse scratch: parse words, pruned candidate
// disjuncts, the arena the pruned candidates live in, and the DP memo.
// Instances are recycled through parserPool; newParser resets them.
type parser struct {
	words  []ParseWord // index 0 is the wall; parse positions == indices
	cands  [][]disjunct
	arena  []disjunct // backing for pruned candidate lists
	memo   [][]memoEnt
	stride int // memo row width: len(words)+1 (R ranges to the sentinel)
}

// memoEnt is one memoized feasibility answer for a region (L, R): the
// remaining connector-list IDs of the boundary words and the result. The
// region's entries live in a small bucket scanned linearly — the dense
// (L,R)-indexed replacement for the old map[memoKey]bool.
type memoEnt struct {
	le, re int32
	val    bool
}

// memoKey keys the linkage-counting memo (count.go), which keeps a map:
// counting is a diagnostic path, not the extraction hot path.
type memoKey struct {
	l, r   int16
	le, re int32
}

var parserPool = sync.Pool{New: func() any { return new(parser) }}

// release returns the parser scratch to the pool.
func (p *parser) release() {
	parserPool.Put(p)
}

// newParser prepares parse words, candidate disjuncts, and pruning.
// It returns nil when the sentence is unparseable a priori.
func newParser(tagged []pos.TaggedToken) *parser {
	p := parserPool.Get().(*parser)
	p.words = append(p.words[:0], ParseWord{Text: "LEFT-WALL", TokenIndex: -1})
	p.cands = p.cands[:0]
	p.arena = p.arena[:0]
	p.cands = append(p.cands, nil) // wall's disjuncts handled via wallList
	for i := 0; i < len(tagged); i++ {
		t := tagged[i]
		// Multi-word idioms parse as one word ("as well as" behaves as a
		// conjunction).
		if family, span := matchIdiom(tagged, i); span > 0 {
			joined := tagged[i].Text
			for _, xt := range tagged[i+1 : i+span] {
				joined += " " + xt.Text
			}
			p.words = append(p.words, ParseWord{Text: joined, Tag: t.Tag, TokenIndex: i})
			p.cands = append(p.cands, idiomCands[family])
			i += span - 1
			continue
		}
		switch t.Kind {
		case textproc.Punct, textproc.Symbol:
			// Keep only coordination punctuation; drop the rest (final
			// periods, quotes, parens).
			if t.Text != "," && t.Text != ";" {
				continue
			}
		}
		ds := cachedDisjuncts(strings.ToLower(t.Text), t.Tag)
		if ds == nil {
			// A word with no connector candidates (interjections) makes a
			// full linkage impossible.
			if t.Kind == textproc.Word || t.Kind == textproc.Number {
				p.release()
				return nil
			}
			continue
		}
		p.words = append(p.words, ParseWord{Text: t.Text, Tag: t.Tag, TokenIndex: i})
		p.cands = append(p.cands, ds)
	}
	if len(p.words) <= 1 || len(p.words) > MaxWords {
		p.release()
		return nil
	}
	p.resetMemo()
	p.prune()
	return p
}

// resetMemo sizes the dense (L, R) bucket table for the current word
// count and empties every bucket, keeping their backing arrays.
func (p *parser) resetMemo() {
	p.stride = len(p.words) + 1
	n := p.stride * p.stride
	if cap(p.memo) < n {
		p.memo = make([][]memoEnt, n)
		return
	}
	p.memo = p.memo[:n]
	for i := range p.memo {
		p.memo[i] = p.memo[i][:0]
	}
}

// matchIdiom reports the idiom family and token span when the tokens at
// position i start a known multi-word idiom.
func matchIdiom(tagged []pos.TaggedToken, i int) (string, int) {
	for _, seq := range idiomSeqs {
		if i+len(seq.parts) > len(tagged) {
			continue
		}
		ok := true
		for j, part := range seq.parts {
			if !strings.EqualFold(tagged[i+j].Text, part) {
				ok = false
				break
			}
		}
		if ok {
			return seq.family, len(seq.parts)
		}
	}
	return "", 0
}

// prune repeatedly drops disjuncts with a connector that cannot match any
// connector of any other word on the required side ("power pruning").
// The first pass filters the shared cached candidate lists into the
// per-parse arena — cached lists are immutable — and later passes filter
// the arena slices in place.
func (p *parser) prune() {
	inArena := false
	for pass := 0; pass < 6; pass++ {
		// rightAvail[c] = true if some word offers connector c
		// right-pointing (including the wall). leftAvail likewise.
		var rightAvail, leftAvail [nConn]bool
		rightAvail[cW] = true
		for i := 1; i < len(p.words); i++ {
			for _, d := range p.cands[i] {
				for n := d.right; n != nil; n = n.next {
					rightAvail[n.name] = true
				}
				for n := d.left; n != nil; n = n.next {
					leftAvail[n.name] = true
				}
			}
		}
		changed := false
		for i := 1; i < len(p.words); i++ {
			src := p.cands[i]
			var kept []disjunct
			if inArena {
				kept = src[:0]
				for _, d := range src {
					if disjunctViable(d, &rightAvail, &leftAvail) {
						kept = append(kept, d)
					}
				}
			} else {
				start := len(p.arena)
				for _, d := range src {
					if disjunctViable(d, &rightAvail, &leftAvail) {
						p.arena = append(p.arena, d)
					}
				}
				// Cap the slice at its end so later words' appends to the
				// arena can never alias this word's survivors.
				kept = p.arena[start:len(p.arena):len(p.arena)]
			}
			if len(kept) != len(src) {
				changed = true
			}
			p.cands[i] = kept
		}
		inArena = true
		if !changed {
			return
		}
	}
}

// disjunctViable reports whether every connector of d can match some
// connector offered by another word on the required side.
func disjunctViable(d disjunct, rightAvail, leftAvail *[nConn]bool) bool {
	for n := d.left; n != nil; n = n.next {
		if !rightAvail[n.name] {
			return false
		}
	}
	for n := d.right; n != nil; n = n.next {
		if !leftAvail[n.name] {
			return false
		}
	}
	return true
}

// feasible implements the Sleator–Temperley region count as a boolean:
// can the region strictly between words L and R be completed, where le is
// the list of L's remaining right connectors (farthest-first) and re is
// the list of R's remaining left connectors (farthest-first)? R ==
// len(words) is the right sentinel with no connectors.
func (p *parser) feasible(L, R int, le, re *node) bool {
	if L+1 == R {
		return le == nil && re == nil
	}
	bi := L*p.stride + R
	li, ri := listID(le), listID(re)
	bucket := p.memo[bi]
	for k := range bucket {
		if bucket[k].le == li && bucket[k].re == ri {
			return bucket[k].val
		}
	}
	// Insert a false placeholder first (guards against impossible cycles),
	// then fill in the computed answer.
	idx := len(bucket)
	p.memo[bi] = append(bucket, memoEnt{le: li, re: ri})
	res := p.anyWord(L, R, le, re, nil)
	p.memo[bi][idx].val = res
	return res
}

// anyWord enumerates the splitting word W and its disjuncts. When out is
// non-nil it records the links of the first solution found and returns
// after completing it. The enumeration considers:
//
//	case A: W links to L via le.head ↔ d.left.head, then either also links
//	        to R (A1) or not (A2);
//	case B: le is empty and W links to R via d.right.head ↔ re.head, with
//	        the left sub-region closed by W's remaining left connectors.
//
// Choosing W as the target of le's farthest connector (case A) or, when
// le is empty, of re's farthest connector (case B) makes every linkage
// counted exactly once.
func (p *parser) anyWord(L, R int, le, re *node, out *[]Link) bool {
	for W := L + 1; W < R; W++ {
		for _, d := range p.cands[W] {
			// Case A: W ↔ L.
			if le != nil && d.left != nil && match(le.name, d.left.name) {
				if p.feasible(L, W, le.next, d.left.next) {
					// A1: W also links to R.
					if re != nil && d.right != nil && match(d.right.name, re.name) &&
						p.feasible(W, R, d.right.next, re.next) {
						if out == nil {
							return true
						}
						*out = append(*out,
							Link{Left: L, Right: W, Label: connNames[le.name]},
							Link{Left: W, Right: R, Label: connNames[re.name]})
						if p.build(L, W, le.next, d.left.next, out) && p.build(W, R, d.right.next, re.next, out) {
							return true
						}
						return false
					}
					// A2: W does not link directly to R.
					if p.feasible(W, R, d.right, re) {
						if out == nil {
							return true
						}
						*out = append(*out, Link{Left: L, Right: W, Label: connNames[le.name]})
						if p.build(L, W, le.next, d.left.next, out) && p.build(W, R, d.right, re, out) {
							return true
						}
						return false
					}
				}
			}
			// Case B: le empty; W links to R.
			if le == nil && re != nil && d.right != nil && match(d.right.name, re.name) {
				if p.feasible(L, W, nil, d.left) && p.feasible(W, R, d.right.next, re.next) {
					if out == nil {
						return true
					}
					*out = append(*out, Link{Left: W, Right: R, Label: connNames[re.name]})
					if p.build(L, W, nil, d.left, out) && p.build(W, R, d.right.next, re.next, out) {
						return true
					}
					return false
				}
			}
		}
	}
	return false
}

// build reconstructs the links of one feasible solution for the region.
// It must only be called on feasible regions.
func (p *parser) build(L, R int, le, re *node, out *[]Link) bool {
	if L+1 == R {
		return le == nil && re == nil
	}
	return p.anyWord(L, R, le, re, out)
}

// relabel rewrites link labels for presentation: an A link whose left word
// is a noun becomes AN (noun-noun modifier, as in Figure 1's
// Blood—AN—pressure), and links incident to the sentinel are dropped.
func (p *parser) relabel(links []Link) []Link {
	kept := links[:0]
	for _, l := range links {
		if l.Right >= len(p.words) {
			continue // sentinel link cannot occur, but be safe
		}
		if l.Label == connNames[cA] && p.words[l.Left].Tag.IsNoun() {
			l.Label = "AN"
		}
		kept = append(kept, l)
	}
	return kept
}

// WordIndexForToken returns the parse-word index for a sentence token
// index, or -1 when the token was dropped before parsing.
func (lk *Linkage) WordIndexForToken(tokenIndex int) int {
	for i, w := range lk.Words {
		if w.TokenIndex == tokenIndex {
			return i
		}
	}
	return -1
}

// String renders the linkage compactly: word list and links.
func (lk *Linkage) String() string {
	var b strings.Builder
	for i, w := range lk.Words {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(w.Text)
	}
	b.WriteByte('\n')
	for _, l := range lk.Links {
		fmt.Fprintf(&b, "%s(%s, %s) ", l.Label, lk.Words[l.Left].Text, lk.Words[l.Right].Text)
	}
	return strings.TrimSpace(b.String())
}
