package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/records"
)

// TestGenCorpusSmoke mirrors the medex CLI smoke tests: run the command
// against a temp directory and pin the observable contract — the
// announcement line, the per-record text files, and a gold.json that
// round-trips through records.ReadCorpus.
func TestGenCorpusSmoke(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "corpus")
	var out strings.Builder
	if err := run([]string{"-out", dir, "-n", "5", "-seed", "7"}, &out); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); !strings.Contains(got, "wrote 5 records and gold.json to "+dir) {
		t.Errorf("announcement wrong:\n%s", got)
	}

	recs, err := records.ReadCorpus(dir)
	if err != nil {
		t.Fatalf("generated corpus does not read back: %v", err)
	}
	if len(recs) != 5 {
		t.Fatalf("gold.json holds %d records, want 5", len(recs))
	}
	for _, r := range recs {
		name := filepath.Join(dir, fmt.Sprintf("patient%03d.txt", r.ID))
		raw, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("record file missing: %v", err)
		}
		if string(raw) != r.Text {
			t.Errorf("record %d file does not match gold text", r.ID)
		}
		if !strings.Contains(r.Text, "Patient") {
			t.Errorf("record %d lacks a Patient section:\n%s", r.ID, r.Text)
		}
	}

	// Same seed → identical corpus (the experiments depend on this).
	dir2 := filepath.Join(t.TempDir(), "corpus2")
	if err := run([]string{"-out", dir2, "-n", "5", "-seed", "7"}, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	recs2, err := records.ReadCorpus(dir2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if recs[i].Text != recs2[i].Text {
			t.Errorf("record %d not deterministic for a fixed seed", recs[i].ID)
		}
	}
}

func TestGenCorpusShowPrintsFirstRecord(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "corpus")
	var out strings.Builder
	if err := run([]string{"-out", dir, "-n", "2", "-show"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "---") || !strings.Contains(got, "Patient") {
		t.Errorf("-show did not print the first record:\n%s", got)
	}
}

func TestGenCorpusRejectsPositionalArgs(t *testing.T) {
	if err := run([]string{"stray"}, &strings.Builder{}); err == nil {
		t.Error("stray positional argument accepted")
	}
}
