package linkgram

import (
	"testing"

	"repro/internal/pos"
	"repro/internal/textproc"
)

func TestInternerSharesSuffixes(t *testing.T) {
	in := newInterner()
	a := in.fromNearFirst([]connID{cS, cW})
	b := in.fromNearFirst([]connID{cS, cW})
	if a != b {
		t.Error("identical lists not interned to the same node")
	}
	// Lists sharing a tail share nodes: far-first for [S,W] is W→S and
	// for [O,W] is W→O — shared head only when the FAR suffix matches.
	c := in.fromNearFirst([]connID{cW})
	if listID(c) == 0 {
		t.Error("single-connector list has zero id")
	}
	if a.next == nil || a.next.name != cS {
		t.Errorf("far-first ordering broken: %v", listNames(a))
	}
}

func TestDictionaryCoverageByTag(t *testing.T) {
	in := newInterner()
	b := &dictBuilder{in: in}
	cases := []struct {
		word string
		tag  pos.Tag
	}{
		{"pressure", pos.NN}, {"lesions", pos.NNS}, {"Lipitor", pos.NNP},
		{"significant", pos.JJ}, {"is", pos.VBZ}, {"quit", pos.VBD},
		{"smoked", pos.VBN}, {"undergoing", pos.VBG}, {"smoke", pos.VB},
		{"never", pos.RB}, {"of", pos.IN}, {"a", pos.DT}, {"she", pos.PRP},
		{"84", pos.CD}, {"and", pos.CC}, {"her", pos.PRS},
		{"will", pos.MD}, {"there", pos.EX},
		{"who", pos.PRP}, {"ago", pos.IN}, {"to", pos.TO},
	}
	for _, c := range cases {
		ds := b.disjunctsFor(c.word, c.tag)
		if len(ds) == 0 {
			t.Errorf("no disjuncts for %q/%s", c.word, c.tag)
		}
	}
	// Unconnectable tags yield nil.
	if ds := b.disjunctsFor("oh", pos.UH); ds != nil {
		t.Errorf("UH got disjuncts: %d", len(ds))
	}
}

func TestPruningDropsImpossibleDisjuncts(t *testing.T) {
	// "Pulse of 96." has no comma: every CO/CC-bearing disjunct must be
	// pruned before the DP runs.
	sents := textproc.SplitSentences("Pulse of 96.")
	p := newParser(pos.TagSentence(sents[0]))
	if p == nil {
		t.Fatal("parser prep failed")
	}
	for i := 1; i < len(p.words); i++ {
		for _, d := range p.cands[i] {
			for n := d.left; n != nil; n = n.next {
				if n.name == cCO || n.name == cCC {
					t.Errorf("word %q kept coordination connector after pruning", p.words[i].Text)
				}
			}
			for n := d.right; n != nil; n = n.next {
				if n.name == cCO || n.name == cCC {
					t.Errorf("word %q kept coordination connector after pruning", p.words[i].Text)
				}
			}
		}
	}
}

func TestIdiomTableConsistent(t *testing.T) {
	in := newInterner()
	b := &dictBuilder{in: in}
	for idiom, family := range idioms {
		if ds := b.idiomDisjuncts(family); len(ds) == 0 {
			t.Errorf("idiom %q family %q has no disjuncts", idiom, family)
		}
	}
	if ds := b.idiomDisjuncts("nonexistent"); ds != nil {
		t.Error("unknown family returned disjuncts")
	}
}
