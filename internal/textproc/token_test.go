package textproc

import (
	"testing"
	"testing/quick"
)

func tokens(t *testing.T, text string) []Token {
	t.Helper()
	return Tokenize(text)
}

func texts(toks []Token) []string {
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = t.Text
	}
	return out
}

func TestTokenizeVitalsSentence(t *testing.T) {
	toks := tokens(t, "Blood pressure is 144/90, pulse of 84, temperature of 98.3, and weight of 154 pounds.")
	want := []string{"Blood", "pressure", "is", "144/90", ",", "pulse", "of", "84", ",", "temperature", "of", "98.3", ",", "and", "weight", "of", "154", "pounds", "."}
	got := texts(toks)
	if len(got) != len(want) {
		t.Fatalf("token count = %d, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestTokenizeKinds(t *testing.T) {
	cases := []struct {
		text string
		kind Kind
	}{
		{"144/90", Number},
		{"98.3", Number},
		{"84", Number},
		{"1-2", Number},
		{"pressure", Word},
		{"well-developed", Word},
		{"patient's", Word},
		{",", Punct},
		{":", Punct},
	}
	for _, c := range cases {
		toks := Tokenize(c.text)
		if len(toks) != 1 {
			t.Errorf("Tokenize(%q) = %v, want single token", c.text, texts(toks))
			continue
		}
		if toks[0].Kind != c.kind {
			t.Errorf("Tokenize(%q).Kind = %v, want %v", c.text, toks[0].Kind, c.kind)
		}
	}
}

func TestTokenizeHyphenatedAge(t *testing.T) {
	toks := Tokenize("a 50-year-old woman")
	// "50" is a number; "-year-old" begins with '-' which attaches to the word scan.
	var nums, words int
	for _, tok := range toks {
		switch tok.Kind {
		case Number:
			nums++
		case Word:
			words++
		}
	}
	if nums != 1 {
		t.Errorf("got %d number tokens, want 1: %v", nums, texts(toks))
	}
	if words < 3 {
		t.Errorf("got %d word tokens, want >= 3: %v", words, texts(toks))
	}
}

func TestTokenSpansRoundTrip(t *testing.T) {
	text := "Vitals:  Blood pressure is 142/78, pulse of 96, and weight of 211."
	for _, tok := range Tokenize(text) {
		if tok.Start < 0 || tok.End > len(text) || tok.Start >= tok.End {
			t.Fatalf("bad span [%d,%d) for %q", tok.Start, tok.End, tok.Text)
		}
		if text[tok.Start:tok.End] != tok.Text {
			t.Errorf("span text %q != token text %q", text[tok.Start:tok.End], tok.Text)
		}
	}
}

func TestTokenizeEmptyAndSpace(t *testing.T) {
	if got := Tokenize(""); len(got) != 0 {
		t.Errorf("Tokenize(\"\") = %v, want empty", got)
	}
	if got := Tokenize("   \n\t "); len(got) != 0 {
		t.Errorf("Tokenize(whitespace) = %v, want empty", got)
	}
}

// Property: tokens never overlap, are in order, and reconstruct substrings
// of the original text.
func TestTokenizeProperties(t *testing.T) {
	f := func(s string) bool {
		toks := Tokenize(s)
		prev := 0
		for _, tok := range toks {
			if tok.Start < prev || tok.End <= tok.Start || tok.End > len(s) {
				return false
			}
			if s[tok.Start:tok.End] != tok.Text {
				return false
			}
			prev = tok.End
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{Word: "Word", Number: "Number", Punct: "Punct", Symbol: "Symbol", Kind(99): "Unknown"} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}
