package id3

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// CVResult aggregates a repeated k-fold cross validation, the paper's
// evaluation protocol for the smoking classifier: "We run a five-fold
// cross validation ten times, and each time the dataset is randomly
// shuffled."
type CVResult struct {
	Accuracy    float64 // micro-averaged: correct / total over all folds and rounds
	StdDev      float64 // standard deviation of per-round accuracies
	MinFeatures int     // fewest features used by any fold's tree
	MaxFeatures int     // most features used by any fold's tree
	PerClass    map[string]ClassMetrics
	// Confusion[actual][predicted] counts over all rounds.
	Confusion map[string]map[string]int
	Rounds    int
	Folds     int
}

// ClassMetrics are one class's precision and recall over the whole CV.
type ClassMetrics struct {
	Precision float64
	Recall    float64
	Support   int
}

// CrossValidate runs `rounds` repetitions of k-fold cross validation with
// per-round shuffles driven by seed. Micro-averaged accuracy equals both
// micro precision and micro recall, the number the paper reports as
// "average precision (recall) is 92.2%".
func CrossValidate(examples []Example, k, rounds int, seed int64) CVResult {
	return crossValidate(examples, k, rounds, seed, Train)
}

// crossValidate is the shared fold loop, parameterized by the training
// function so split criteria can be compared (see CrossValidateWith).
func crossValidate(examples []Example, k, rounds int, seed int64, trainFn func([]Example) *Tree) CVResult {
	if k < 2 || len(examples) < k {
		return CVResult{}
	}
	rng := rand.New(rand.NewSource(seed))
	res := CVResult{
		MinFeatures: 1 << 30,
		PerClass:    map[string]ClassMetrics{},
		Confusion:   map[string]map[string]int{},
		Rounds:      rounds,
		Folds:       k,
	}
	correct, total := 0, 0
	tp := map[string]int{}      // class → true positives
	predN := map[string]int{}   // class → predicted count
	actualN := map[string]int{} // class → actual count
	var roundAccs []float64

	idx := make([]int, len(examples))
	for i := range idx {
		idx[i] = i
	}
	for r := 0; r < rounds; r++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		roundCorrect, roundTotal := 0, 0
		for fold := 0; fold < k; fold++ {
			var train, test []Example
			for pos, ei := range idx {
				if pos%k == fold {
					test = append(test, examples[ei])
				} else {
					train = append(train, examples[ei])
				}
			}
			tree := trainFn(train)
			if fc := tree.FeatureCount(); fc < res.MinFeatures {
				res.MinFeatures = fc
			}
			if fc := tree.FeatureCount(); fc > res.MaxFeatures {
				res.MaxFeatures = fc
			}
			for _, e := range test {
				pred := tree.Classify(e.Features)
				total++
				roundTotal++
				predN[pred]++
				actualN[e.Class]++
				if res.Confusion[e.Class] == nil {
					res.Confusion[e.Class] = map[string]int{}
				}
				res.Confusion[e.Class][pred]++
				if pred == e.Class {
					correct++
					roundCorrect++
					tp[e.Class]++
				}
			}
		}
		if roundTotal > 0 {
			roundAccs = append(roundAccs, float64(roundCorrect)/float64(roundTotal))
		}
	}
	if total > 0 {
		res.Accuracy = float64(correct) / float64(total)
	}
	res.StdDev = stddev(roundAccs)
	for c := range actualN {
		m := ClassMetrics{Support: actualN[c] / max(rounds, 1)}
		if predN[c] > 0 {
			m.Precision = float64(tp[c]) / float64(predN[c])
		}
		if actualN[c] > 0 {
			m.Recall = float64(tp[c]) / float64(actualN[c])
		}
		res.PerClass[c] = m
	}
	if res.MinFeatures == 1<<30 {
		res.MinFeatures = 0
	}
	return res
}

// stddev is the population standard deviation.
func stddev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	v := 0.0
	for _, x := range xs {
		v += (x - mean) * (x - mean)
	}
	return sqrt(v / float64(len(xs)))
}

// sqrt by Newton iteration, avoiding a math import for one call.
func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 20; i++ {
		z -= (z*z - x) / (2 * z)
	}
	return z
}

// ConfusionString renders the confusion matrix with classes sorted.
func (r CVResult) ConfusionString() string {
	classes := make([]string, 0, len(r.Confusion))
	for c := range r.Confusion {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s", "actual\\pred")
	for _, c := range classes {
		fmt.Fprintf(&b, " %8s", c)
	}
	b.WriteByte('\n')
	for _, a := range classes {
		fmt.Fprintf(&b, "%-10s", a)
		for _, p := range classes {
			fmt.Fprintf(&b, " %8d", r.Confusion[a][p])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// String renders the CV result as a short report.
func (r CVResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d-fold CV × %d rounds: accuracy (micro P=R) %.1f%% (±%.1f across rounds), features per tree %d–%d\n",
		r.Folds, r.Rounds, 100*r.Accuracy, 100*r.StdDev, r.MinFeatures, r.MaxFeatures)
	classes := make([]string, 0, len(r.PerClass))
	for c := range r.PerClass {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		m := r.PerClass[c]
		fmt.Fprintf(&b, "  %-10s P=%.1f%% R=%.1f%% (n=%d)\n", c, 100*m.Precision, 100*m.Recall, m.Support)
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
