package core

import (
	"reflect"
	"testing"

	"repro/internal/records"
)

func TestProcessAllMatchesSequential(t *testing.T) {
	recs := records.Generate(records.GenOptions{N: 12, Seed: 3})
	sys, err := NewSystem(Config{Strategy: LinkGrammar, ResolveSynonyms: true})
	if err != nil {
		t.Fatal(err)
	}
	sys.TrainSmoking(recs)

	seq := sys.ProcessAll(recs, 1)
	par := sys.ProcessAll(recs, 4)
	if len(seq) != len(par) {
		t.Fatalf("lengths %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if !reflect.DeepEqual(seq[i], par[i]) {
			t.Errorf("record %d differs:\nseq: %+v\npar: %+v", i, seq[i], par[i])
		}
	}
}

func TestProcessAllWorkerClamp(t *testing.T) {
	recs := records.Generate(records.GenOptions{N: 2, Seed: 3})
	sys, err := NewSystem(Config{})
	if err != nil {
		t.Fatal(err)
	}
	// More workers than records and zero workers must both behave.
	if got := sys.ProcessAll(recs, 16); len(got) != 2 {
		t.Errorf("len = %d", len(got))
	}
	if got := sys.ProcessAll(recs, 0); len(got) != 2 {
		t.Errorf("len = %d", len(got))
	}
	if got := sys.ProcessAll(nil, 4); len(got) != 0 {
		t.Errorf("nil corpus → %d", len(got))
	}
}
