package ontology

import (
	"fmt"
	"strings"

	"repro/internal/lexicon"
	"repro/internal/store"
)

// Ontology is a loaded medical vocabulary: concepts stored in an embedded
// store table (the persistence layer and ablation baseline) and mirrored
// in in-memory maps so the extraction hot path pays one probe per lookup.
type Ontology struct {
	db       *store.DB
	terms    *store.Table // one row per (normalized surface form → CUI)
	concepts map[string]*Concept
	byNorm   map[string]*Concept // normalized surface form → concept
	byName   map[string]*Concept // lower-cased preferred name → concept
	coverage float64
	synonyms bool
}

// Options control ontology construction for the coverage experiments.
type Options struct {
	// Coverage in (0,1] keeps that fraction of concepts (deterministic by
	// CUI hash). 0 means full coverage.
	Coverage float64
	// DisableSynonyms indexes only preferred names, reproducing the
	// paper's low recall on predefined surgical history ("failures to
	// recognize the synonyms of predefined surgical terms").
	DisableSynonyms bool
	// Path, when non-empty, persists the vocabulary to a store database
	// file; otherwise the ontology is memory-only.
	Path string
}

// termSchema is the vocabulary table: normalized form → concept id.
func termSchema() store.Schema {
	return store.Schema{
		Name: "umls_terms",
		Columns: []store.Column{
			{Name: "id", Type: store.TInt},
			{Name: "norm", Type: store.TString},
			{Name: "cui", Type: store.TString},
			{Name: "surface", Type: store.TString},
			{Name: "preferred", Type: store.TBool},
		},
		Primary: 0,
	}
}

// New loads the embedded vocabulary with the given options.
func New(opts Options) (*Ontology, error) {
	var db *store.DB
	var err error
	if opts.Path != "" {
		db, err = store.Open(opts.Path)
		if err != nil {
			return nil, err
		}
	} else {
		db = store.OpenMemory()
	}
	tbl, err := db.CreateTable(termSchema())
	if err != nil {
		return nil, err
	}
	o := &Ontology{
		db:       db,
		terms:    tbl,
		concepts: make(map[string]*Concept, len(seedConcepts)),
		byNorm:   make(map[string]*Concept, 4*len(seedConcepts)),
		byName:   make(map[string]*Concept, len(seedConcepts)),
		coverage: opts.Coverage,
		synonyms: !opts.DisableSynonyms,
	}
	// normPref tracks, during load only, whether a byNorm entry came from
	// a preferred name; it mirrors the indexed-lookup tie-break.
	normPref := make(map[string]bool, 4*len(seedConcepts))
	id := int64(1)
	for i := range seedConcepts {
		c := &seedConcepts[i]
		if opts.Coverage > 0 && opts.Coverage < 1 && !keepForCoverage(c.CUI, opts.Coverage) {
			continue
		}
		o.concepts[c.CUI] = c
		o.byName[strings.ToLower(c.Preferred)] = c
		forms := []string{c.Preferred}
		if o.synonyms {
			forms = append(forms, c.Synonyms...)
		}
		for fi, f := range forms {
			norm := lexicon.Normalize(f)
			if norm == "" {
				continue
			}
			// In-memory mirror of the indexed-lookup preference: the first
			// preferred-name hit for a form wins, else the first hit.
			if _, ok := o.byNorm[norm]; !ok || (fi == 0 && !normPref[norm]) {
				o.byNorm[norm] = c
				normPref[norm] = fi == 0
			}
			row := store.Row{
				store.Int(id),
				store.Str(norm),
				store.Str(c.CUI),
				store.Str(f),
				store.Bool(fi == 0),
			}
			if err := tbl.Insert(row); err != nil {
				return nil, fmt.Errorf("ontology: load %q: %w", f, err)
			}
			id++
		}
	}
	if err := tbl.CreateIndex("norm"); err != nil {
		return nil, err
	}
	return o, nil
}

// MustNew is New for tests and examples; it panics on error.
func MustNew(opts Options) *Ontology {
	o, err := New(opts)
	if err != nil {
		panic(err)
	}
	return o
}

// Close releases the underlying store.
func (o *Ontology) Close() error { return o.db.Close() }

// Len returns the number of loaded concepts.
func (o *Ontology) Len() int { return len(o.concepts) }

// TermCount returns the number of indexed surface forms.
func (o *Ontology) TermCount() int { return o.terms.Len() }

// Lookup finds the concept for a candidate surface term. The term is
// normalized (lemma of each word, words sorted alphabetically — §3.2)
// and resolved with one in-memory map probe. It returns nil when the
// term is unknown.
func (o *Ontology) Lookup(term string) *Concept {
	norm := lexicon.Normalize(term)
	if norm == "" {
		return nil
	}
	return o.byNorm[norm]
}

// LookupWords is Lookup for a pre-tokenized candidate.
func (o *Ontology) LookupWords(words []string) *Concept {
	norm := lexicon.NormalizeWords(words)
	if norm == "" {
		return nil
	}
	return o.byNorm[norm]
}

// LookupIndexed resolves a term through the store table's B-tree
// secondary index instead of the in-memory map — the persistence-layer
// path, kept benchmarkable alongside LookupLinear as an ablation
// baseline.
func (o *Ontology) LookupIndexed(term string) *Concept {
	norm := lexicon.Normalize(term)
	if norm == "" {
		return nil
	}
	rows, err := o.terms.Lookup("norm", store.Str(norm))
	if err != nil || len(rows) == 0 {
		return nil
	}
	// Prefer a preferred-name hit when several concepts share a form.
	best := rows[0]
	for _, r := range rows {
		if r[4].B {
			best = r
			break
		}
	}
	return o.concepts[best[2].S]
}

// LookupLinear is the index-ablation baseline: a full-table scan instead
// of the secondary-index probe.
func (o *Ontology) LookupLinear(term string) *Concept {
	norm := lexicon.Normalize(term)
	if norm == "" {
		return nil
	}
	var found *Concept
	o.terms.Scan(func(r store.Row) bool {
		if r[1].S == norm {
			found = o.concepts[r[2].S]
			return false
		}
		return true
	})
	return found
}

// Concept returns the concept with the given CUI, or nil.
func (o *Ontology) Concept(cui string) *Concept {
	return o.concepts[cui]
}

// ConceptByName returns the concept whose preferred name is name
// (case-insensitive), or nil. The lower-cased name index is built at
// load, so this is one map probe instead of a scan over every concept.
func (o *Ontology) ConceptByName(name string) *Concept {
	return o.byName[strings.ToLower(name)]
}

// All returns the full embedded vocabulary (independent of any loaded
// Ontology's coverage). The corpus generator samples gold conditions and
// procedures from it.
func All() []Concept {
	out := make([]Concept, len(seedConcepts))
	copy(out, seedConcepts)
	return out
}

// keepForCoverage deterministically selects a fraction of concepts by a
// small string hash of the CUI, so coverage sweeps are reproducible.
func keepForCoverage(cui string, frac float64) bool {
	var h uint32 = 2166136261
	for i := 0; i < len(cui); i++ {
		h ^= uint32(cui[i])
		h *= 16777619
	}
	return float64(h%1000) < frac*1000
}
