package linkgram

import (
	"testing"

	"repro/internal/textproc"
)

func TestRelativeClause(t *testing.T) {
	sents := textproc.SplitSentences("Ms. 2 is a 50-year-old woman who underwent a screening mammogram.")
	lk, err := ParseSentence(sents[0])
	if err != nil {
		t.Fatal(err)
	}
	if !hasLink(lk, "R", "woman", "who") {
		t.Errorf("missing R(woman, who): %s", lk)
	}
	if !hasLink(lk, "S", "who", "underwent") {
		t.Errorf("missing S(who, underwent): %s", lk)
	}
	if !hasLink(lk, "O", "underwent", "mammogram") {
		t.Errorf("missing O(underwent, mammogram): %s", lk)
	}
}

func TestIdiomAsWellAs(t *testing.T) {
	sents := textproc.SplitSentences("The mammogram revealed a solid lesion as well as an abnormal calcification.")
	lk, err := ParseSentence(sents[0])
	if err != nil {
		t.Fatal(err)
	}
	// The idiom must be one parse word bridging the two conjuncts.
	if !hasLink(lk, "CO", "lesion", "as well as") {
		t.Errorf("missing CO(lesion, as well as): %s", lk)
	}
	if !hasLink(lk, "CC", "as well as", "calcification") {
		t.Errorf("missing CC(as well as, calcification): %s", lk)
	}
}

func TestHPIFullSentenceParses(t *testing.T) {
	texts := []string{
		"Ms. 2 is a 50-year-old woman who underwent a screening mammogram, revealing a solid lesion as well as an abnormal calcification.",
		"She was referred for further management.",
		"Her breast history is negative for any previous biopsies or masses.",
		"Mother with breast cancer, diagnosed at age 52.",
	}
	for _, text := range texts {
		sents := textproc.SplitSentences(text)
		lk, err := ParseSentence(sents[0])
		if err != nil {
			t.Errorf("no linkage for %q: %v", text, err)
			continue
		}
		verifyLinkageInvariants(t, text, lk)
	}
}

func TestMatchIdiomBoundary(t *testing.T) {
	sents := textproc.SplitSentences("She is doing well.")
	// "well" alone is not the idiom; the sentence must still parse or
	// fail gracefully, never panic.
	_, _ = ParseSentence(sents[0])
}
