package core

import (
	"fmt"
	"sort"

	"repro/internal/lexicon"
	"repro/internal/ontology"
	"repro/internal/store"
)

// Warehouse is the query facade over the persisted extracted table: the
// paper's point that free-text records become *queryable* information.
// It answers attribute questions ("patients with pulse above 100 and a
// positive smoking status") directly from the store through secondary
// indexes, and is safe to use concurrently with a live ingest — queries
// run under the shards' read locks while ProcessStream + PersistAll keep
// inserting. On a sharded engine every condition fans out across the
// shards concurrently and the merged rows and QueryStats come back as
// one answer, so questions see the whole table regardless of how it is
// partitioned.
type Warehouse struct {
	db  store.Engine
	tbl *store.Table
	ont *ontology.Ontology // optional: resolves concept terms to preferred names
}

// OpenWarehouse opens (creating if necessary) the extracted table in db
// and ensures its secondary indexes on the attribute and patient columns.
// A nil ontology disables synonym resolution in term conditions; terms
// then match by normalized string only.
func OpenWarehouse(db store.Engine, ont *ontology.Ontology) (*Warehouse, error) {
	tbl, err := db.CreateTable(resultSchema())
	if err != nil {
		return nil, err
	}
	for _, col := range []string{"attribute", "patient"} {
		if err := tbl.CreateIndex(col); err != nil {
			return nil, err
		}
	}
	return &Warehouse{db: db, tbl: tbl, ont: ont}, nil
}

// Table exposes the underlying extracted table (for stats and ad-hoc
// store.Query use).
func (w *Warehouse) Table() *store.Table { return w.tbl }

// AttrRow is one extracted attribute value, typed.
type AttrRow struct {
	ID        int64
	Patient   int64
	Attribute string
	Value     string
	Numeric   float64
}

func attrRowFrom(r store.Row) AttrRow {
	return AttrRow{
		ID:        r[0].I,
		Patient:   r[1].I,
		Attribute: r[2].S,
		Value:     r[3].S,
		Numeric:   r[4].F,
	}
}

// Cond is one condition of a warehouse question, on a single attribute.
// Conditions on different attributes combine per patient: Ask returns
// the patients satisfying all of them.
type Cond struct {
	Attr     string   // attribute name, e.g. "pulse", "smoking"
	Term     string   // equality on the value column (concept term), "" = any
	Min, Max *float64 // bounds on the numeric column
	MinExcl  bool     // Min is exclusive (">"), default inclusive (">=")
	MaxExcl  bool     // Max is exclusive ("<"), default inclusive ("<=")
}

// HasAttr matches patients that have any value for the attribute.
func HasAttr(attr string) Cond { return Cond{Attr: attr} }

// HasTerm matches patients whose attribute equals the concept term
// (resolved through the ontology's synonyms when one is configured).
func HasTerm(attr, term string) Cond { return Cond{Attr: attr, Term: term} }

// NumAbove matches attribute values strictly greater than v.
func NumAbove(attr string, v float64) Cond {
	return Cond{Attr: attr, Min: &v, MinExcl: true}
}

// NumBelow matches attribute values strictly less than v.
func NumBelow(attr string, v float64) Cond {
	return Cond{Attr: attr, Max: &v, MaxExcl: true}
}

// NumBetween matches attribute values in [lo, hi].
func NumBetween(attr string, lo, hi float64) Cond {
	return Cond{Attr: attr, Min: &lo, Max: &hi}
}

// preds lowers the condition to store predicates. The attribute equality
// comes first so the planner picks the attribute index.
func (c Cond) preds(w *Warehouse) ([]store.Pred, error) {
	if c.Attr == "" {
		return nil, fmt.Errorf("core: warehouse condition needs an attribute")
	}
	ps := []store.Pred{store.Eq("attribute", store.Str(c.Attr))}
	if c.Term != "" {
		ps = append(ps, store.Eq("value", store.Str(w.resolveTerm(c.Term))))
	}
	if c.Min != nil {
		if c.MinExcl {
			ps = append(ps, store.Gt("numeric", store.Float(*c.Min)))
		} else {
			ps = append(ps, store.Ge("numeric", store.Float(*c.Min)))
		}
	}
	if c.Max != nil {
		if c.MaxExcl {
			ps = append(ps, store.Lt("numeric", store.Float(*c.Max)))
		} else {
			ps = append(ps, store.Le("numeric", store.Float(*c.Max)))
		}
	}
	return ps, nil
}

// resolveTerm maps a user term to the stored value form: the ontology's
// preferred concept name when the term is known (so "heart attack" finds
// "myocardial infarction" rows), otherwise its normalized form.
func (w *Warehouse) resolveTerm(term string) string {
	if w.ont != nil {
		if c := w.ont.Lookup(term); c != nil {
			return c.Preferred
		}
	}
	return lexicon.Normalize(term)
}

// QueryStats aggregates the store-level execution stats of a warehouse
// question, one entry per condition. On a sharded engine the per-shard
// stats of each condition arrive pre-merged; Shards reports the fan-out
// width.
type QueryStats struct {
	Conds        int
	IndexedConds int // conditions answered via a secondary index
	IndexProbes  int
	RowsExamined int
	FullScans    int
	Shards       int // partitions each condition fanned out across
	Segments     int // segment files consulted (scans and index-entry resolves)
	BlocksPruned int // segment blocks skipped via zone maps
	BloomSkips   int // segment probes rejected by a bloom filter (no IO)
	CacheHits    int // blocks served from the shared decoded-block cache
	CacheMisses  int // blocks read from disk (and cached for next time)
}

func (s *QueryStats) add(st store.QueryStats) {
	s.Conds++
	if st.UsedIndex {
		s.IndexedConds++
	}
	if st.FullScan {
		s.FullScans++
	}
	s.IndexProbes += st.IndexProbes
	s.RowsExamined += st.RowsExamined
	if st.Shards > s.Shards {
		s.Shards = st.Shards
	}
	s.Segments += st.Segments
	s.BlocksPruned += st.BlocksPruned
	s.BloomSkips += st.BloomSkips
	s.CacheHits += st.CacheHits
	s.CacheMisses += st.CacheMisses
}

// Ask answers a paper-style question: it returns the sorted patient ids
// satisfying every condition. Each condition resolves to one indexed
// store query; patient sets intersect across conditions.
func (w *Warehouse) Ask(conds ...Cond) ([]int64, QueryStats, error) {
	var stats QueryStats
	if len(conds) == 0 {
		return nil, stats, fmt.Errorf("core: warehouse question needs at least one condition")
	}
	var matched map[int64]bool
	for _, c := range conds {
		ps, err := c.preds(w)
		if err != nil {
			return nil, stats, err
		}
		rows, st, err := w.tbl.Query(store.Query{Preds: ps})
		if err != nil {
			return nil, stats, err
		}
		stats.add(st)
		patients := make(map[int64]bool, len(rows))
		for _, r := range rows {
			patients[r[1].I] = true
		}
		if matched == nil {
			matched = patients
			continue
		}
		for p := range matched {
			if !patients[p] {
				delete(matched, p)
			}
		}
		if len(matched) == 0 {
			break
		}
	}
	out := make([]int64, 0, len(matched))
	for p := range matched {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, stats, nil
}

// Rows returns the attribute rows matching one condition, in ascending
// primary-key order.
func (w *Warehouse) Rows(c Cond) ([]AttrRow, QueryStats, error) {
	var stats QueryStats
	ps, err := c.preds(w)
	if err != nil {
		return nil, stats, err
	}
	rows, st, err := w.tbl.Query(store.Query{Preds: ps})
	if err != nil {
		return nil, stats, err
	}
	stats.add(st)
	out := make([]AttrRow, len(rows))
	for i, r := range rows {
		out[i] = attrRowFrom(r)
	}
	return out, stats, nil
}

// Patient returns every attribute row of one patient via the patient
// index, sorted by attribute then id.
func (w *Warehouse) Patient(id int64) ([]AttrRow, error) {
	rows, err := w.tbl.Lookup("patient", store.Int(id))
	if err != nil {
		return nil, err
	}
	out := make([]AttrRow, len(rows))
	for i, r := range rows {
		out[i] = attrRowFrom(r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Attribute != out[j].Attribute {
			return out[i].Attribute < out[j].Attribute
		}
		return out[i].ID < out[j].ID
	})
	return out, nil
}

// Prevalence counts patients per distinct value of an attribute.
func (w *Warehouse) Prevalence(attr string) (map[string]int, error) {
	rows, _, err := w.Rows(HasAttr(attr))
	if err != nil {
		return nil, err
	}
	seen := make(map[string]map[int64]bool)
	for _, r := range rows {
		if seen[r.Value] == nil {
			seen[r.Value] = make(map[int64]bool)
		}
		seen[r.Value][r.Patient] = true
	}
	out := make(map[string]int, len(seen))
	for v, pats := range seen {
		out[v] = len(pats)
	}
	return out, nil
}
