package store

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// compatFixtureOps replays the exact operation sequence that generated
// testdata/compat/seed-pr3.wal (written by the pre-shard engine).
func compatFixtureOps(t testing.TB, db *DB) {
	t.Helper()
	tbl, err := db.CreateTable(attrSchema())
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range []string{"attribute", "patient"} {
		if err := tbl.CreateIndex(col); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.Insert(Row{Int(1), Int(1), Str("pulse"), Str("x"), Float(84)}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.InsertBatch([]Row{
		{Int(2), Int(1), Str("smoking"), Str("never"), Float(0)},
		{Int(3), Int(2), Str("pulse"), Str("x"), Float(98)},
		{Int(4), Int(2), Str("weight"), Str("x"), Float(61)},
	}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Delete(Int(4)); err != nil {
		t.Fatal(err)
	}
}

// TestSingleShardByteCompat pins the acceptance criterion that a
// single-shard engine is byte-compatible with the pre-shard store: it
// opens the checked-in pre-refactor WAL unchanged, recovers the same
// rows and indexes, and — writing the same operation sequence — emits a
// byte-identical log.
func TestSingleShardByteCompat(t *testing.T) {
	golden, err := os.ReadFile(filepath.Join("testdata", "compat", "seed-pr3.wal"))
	if err != nil {
		t.Fatal(err)
	}

	// 1. The old file opens unchanged, with no recovery loss.
	path := filepath.Join(t.TempDir(), "seed.db")
	if err := os.WriteFile(path, golden, 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if db.RecoveredWithLoss() {
		t.Error("pre-refactor WAL reported recovery loss")
	}
	if db.Shards() != 1 {
		t.Errorf("single-file store opened with %d shards", db.Shards())
	}
	tbl, err := db.Table("extracted")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 3 {
		t.Errorf("rows = %d, want 3 (ids 1-3; id 4 was deleted)", tbl.Len())
	}
	for pk, attr := range map[int64]string{1: "pulse", 2: "smoking", 3: "pulse"} {
		row, err := tbl.Get(Int(pk))
		if err != nil || row[2].S != attr {
			t.Errorf("row %d: %v, %v (want attribute %s)", pk, row, err, attr)
		}
	}
	st := tbl.Stats()
	if st.Indexes != 2 || len(st.IndexNames) != 2 {
		t.Errorf("indexes not recovered: %+v", st)
	}
	checkIndexConsistent(t, tbl)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// 2. The new engine writes the identical byte stream.
	path2 := filepath.Join(t.TempDir(), "fresh.db")
	db2, err := Open(path2)
	if err != nil {
		t.Fatal(err)
	}
	compatFixtureOps(t, db2)
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
	fresh, err := os.ReadFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	if string(fresh) != string(golden) {
		t.Errorf("single-shard WAL not byte-identical to pre-refactor log: %d vs %d bytes", len(fresh), len(golden))
	}
}

// shardedPair builds the same table, indexes and rows in a single-shard
// and an n-shard WAL-backed engine.
func shardedPair(t *testing.T, n, patients int) (single, sharded *DB) {
	t.Helper()
	var err error
	single, err = Open(filepath.Join(t.TempDir(), "single.db"))
	if err != nil {
		t.Fatal(err)
	}
	sharded, err = OpenSharded(filepath.Join(t.TempDir(), "sharded.db"), n)
	if err != nil {
		t.Fatal(err)
	}
	for _, db := range []*DB{single, sharded} {
		tbl, err := db.CreateTable(attrSchema())
		if err != nil {
			t.Fatal(err)
		}
		for _, col := range []string{"attribute", "numeric"} {
			if err := tbl.CreateIndex(col); err != nil {
				t.Fatal(err)
			}
		}
		fillAttrs(t, tbl, patients)
	}
	t.Cleanup(func() { single.Close(); sharded.Close() })
	return single, sharded
}

// TestShardedQueryParity pins the acceptance criterion that fan-out
// query execution returns the same rows as the single-shard engine on
// the same data — and, because the merge restores the deterministic
// single-shard order, in the same order too.
func TestShardedQueryParity(t *testing.T) {
	single, sharded := shardedPair(t, 4, 40)
	st, err := single.Table("extracted")
	if err != nil {
		t.Fatal(err)
	}
	sh, err := sharded.Table("extracted")
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != sh.Len() {
		t.Fatalf("row counts differ: %d vs %d", st.Len(), sh.Len())
	}

	queries := []Query{
		{Preds: []Pred{Eq("attribute", Str("pulse"))}},
		{Preds: []Pred{Eq("attribute", Str("smoking")), Eq("value", Str("current"))}},
		{Preds: []Pred{Ge("numeric", Float(80)), Lt("numeric", Float(100))}},
		{Preds: []Pred{Eq("value", Str("never"))}}, // unindexed: scan fallback
		{Preds: []Pred{Eq("attribute", Str("pulse"))}, Limit: 7},
		{Preds: []Pred{Gt("numeric", Float(55))}, Limit: 11},
	}
	for qi, q := range queries {
		want, wantStats, err := st.Query(q)
		if err != nil {
			t.Fatalf("query %d single: %v", qi, err)
		}
		got, gotStats, err := sh.Query(q)
		if err != nil {
			t.Fatalf("query %d sharded: %v", qi, err)
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: %d rows sharded vs %d single", qi, len(got), len(want))
		}
		for i := range want {
			if !rowsEqual(got[i], want[i]) {
				t.Errorf("query %d row %d: %v != %v", qi, i, got[i], want[i])
			}
		}
		if wantStats.Shards != 1 || gotStats.Shards != 4 {
			t.Errorf("query %d: shard stats %d/%d, want 1/4", qi, wantStats.Shards, gotStats.Shards)
		}
		if gotStats.UsedIndex != wantStats.UsedIndex || gotStats.FullScan != wantStats.FullScan {
			t.Errorf("query %d: plans diverge: single %+v sharded %+v", qi, wantStats, gotStats)
		}
	}

	// Lookup, LookupRange and Scan merge into the single-shard order.
	for _, col := range []string{"attribute"} {
		want, err := st.Lookup(col, Str("pulse"))
		if err != nil {
			t.Fatal(err)
		}
		got, err := sh.Lookup(col, Str("pulse"))
		if err != nil {
			t.Fatal(err)
		}
		if len(want) != len(got) {
			t.Fatalf("Lookup(%s): %d vs %d rows", col, len(got), len(want))
		}
		for i := range want {
			if !rowsEqual(got[i], want[i]) {
				t.Errorf("Lookup(%s) row %d: %v != %v", col, i, got[i], want[i])
			}
		}
	}
	wantR, err := st.LookupRange("numeric", Float(60), Float(90))
	if err != nil {
		t.Fatal(err)
	}
	gotR, err := sh.LookupRange("numeric", Float(60), Float(90))
	if err != nil {
		t.Fatal(err)
	}
	if len(wantR) != len(gotR) {
		t.Fatalf("LookupRange: %d vs %d rows", len(gotR), len(wantR))
	}
	for i := range wantR {
		if !rowsEqual(gotR[i], wantR[i]) {
			t.Errorf("LookupRange row %d: %v != %v", i, gotR[i], wantR[i])
		}
	}
	var wantScan, gotScan []Row
	st.Scan(func(r Row) bool { wantScan = append(wantScan, r); return true })
	sh.Scan(func(r Row) bool { gotScan = append(gotScan, r); return true })
	if len(wantScan) != len(gotScan) {
		t.Fatalf("Scan: %d vs %d rows", len(gotScan), len(wantScan))
	}
	for i := range wantScan {
		if !rowsEqual(gotScan[i], wantScan[i]) {
			t.Errorf("Scan row %d: %v != %v", i, gotScan[i], wantScan[i])
		}
	}
}

// TestShardedRowsActuallyPartition guards against a routing collapse
// (everything hashing to one shard would nullify the parallelism).
func TestShardedRowsActuallyPartition(t *testing.T) {
	_, sharded := shardedPair(t, 4, 40)
	tbl, err := sharded.Table("extracted")
	if err != nil {
		t.Fatal(err)
	}
	for i, ts := range tbl.shards {
		ts.mu.RLock()
		n := ts.primary.Len()
		ts.mu.RUnlock()
		if n == 0 {
			t.Errorf("shard %d holds no rows: routing is degenerate", i)
		}
	}
}

// TestShardedReopen verifies the directory layout round-trips: reopen
// auto-detects the shard count, keeps every row and index, and rejects
// a conflicting shard count instead of silently re-routing rows.
func TestShardedReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "extracted.db")
	db, err := OpenSharded(path, 3)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable(attrSchema())
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex("attribute"); err != nil {
		t.Fatal(err)
	}
	fillAttrs(t, tbl, 20)
	want := tbl.Len()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 3; i++ {
		if st, err := os.Stat(filepath.Join(path, shardDirName(i), shardWALName)); err != nil || st.Size() == 0 {
			t.Fatalf("shard %d WAL missing or empty: %v", i, err)
		}
	}

	db, err = OpenSharded(path, 0) // auto-detect
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.Shards() != 3 {
		t.Errorf("auto-detected %d shards, want 3", db.Shards())
	}
	if db.RecoveredWithLoss() {
		t.Error("clean reopen reported loss")
	}
	tbl, err = db.Table("extracted")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != want {
		t.Errorf("rows after reopen = %d, want %d", tbl.Len(), want)
	}
	checkIndexConsistent(t, tbl)

	if _, err := OpenSharded(path, 2); err == nil {
		t.Error("resharding a 3-shard store to 2 was accepted")
	}
	single := filepath.Join(dir, "single.db")
	if sdb, err := Open(single); err != nil {
		t.Fatal(err)
	} else {
		sdb.Close()
	}
	if _, err := OpenSharded(single, 4); err == nil {
		t.Error("resharding a single-file store to 4 was accepted")
	}
}

// TestShardedCompact exercises parallel per-shard compaction: the logs
// shrink to the live state and replay to the same rows and indexes.
func TestShardedCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "extracted.db")
	db, err := OpenSharded(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable(attrSchema())
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex("attribute"); err != nil {
		t.Fatal(err)
	}
	fillAttrs(t, tbl, 30)
	// Deletes and updates bloat the logs with superseded records.
	for pk := int64(1); pk <= 30; pk += 3 {
		if err := tbl.Delete(Int(pk)); err != nil {
			t.Fatal(err)
		}
	}
	want := tbl.Len()
	before := db.LogSize()
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if after := db.LogSize(); after >= before {
		t.Errorf("compact did not shrink logs: %d -> %d", before, after)
	}
	// Post-compact writes append to the new logs.
	if err := tbl.Insert(Row{Int(1000), Int(99), Str("age"), Str("x"), Float(40)}); err != nil {
		t.Fatal(err)
	}
	want++
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db, err = OpenSharded(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.RecoveredWithLoss() {
		t.Error("compacted logs reported loss")
	}
	tbl, err = db.Table("extracted")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != want {
		t.Errorf("rows after compact+reopen = %d, want %d", tbl.Len(), want)
	}
	checkIndexConsistent(t, tbl)
}

// openFDs counts this process's open file descriptors (Linux).
func openFDs(t *testing.T) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Skipf("cannot count fds: %v", err)
	}
	return len(ents)
}

// TestOpenErrorLeaksNoFDs pins the file-handle hygiene of the open
// path: when a multi-shard open fails partway (one shard's directory is
// corrupt), the shards that did open must be closed — no descriptor may
// leak. Same for the single-file open error path.
func TestOpenErrorLeaksNoFDs(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("relies on /proc/self/fd")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "extracted.db")
	db, err := OpenSharded(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable(attrSchema())
	if err != nil {
		t.Fatal(err)
	}
	fillAttrs(t, tbl, 10)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the layout: replace one shard's directory with a file, so
	// shards 0-1 open fine and shard 2 fails.
	corrupt := filepath.Join(path, shardDirName(2))
	if err := os.RemoveAll(corrupt); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(corrupt, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}

	before := openFDs(t)
	for i := 0; i < 5; i++ {
		if _, err := OpenSharded(path, 0); err == nil {
			t.Fatal("open of corrupt shard layout succeeded")
		}
	}
	if after := openFDs(t); after > before {
		t.Errorf("open error path leaked fds: %d -> %d", before, after)
	}

	// Single-file variant: a path whose parent is missing fails without
	// ever opening anything; a path that is a directory full of junk
	// fails after Stat.
	for i := 0; i < 5; i++ {
		if _, err := Open(filepath.Join(dir, "missing", "x.db")); err == nil {
			t.Fatal("open under a missing parent succeeded")
		}
	}
	if after := openFDs(t); after > before {
		t.Errorf("single-file open error path leaked fds: %d -> %d", before, after)
	}
}

// TestShardIndexStability pins the routing function: a fixed key must
// map to the same shard forever (changing it would orphan every row of
// an existing store).
func TestShardIndexStability(t *testing.T) {
	if got := shardIndex(encodeKey(Int(1)), 1); got != 0 {
		t.Errorf("single shard must route to 0, got %d", got)
	}
	// Golden routing values for n=4, computed from FNV-1a of the key
	// encoding. If these change, on-disk stores mis-route.
	want := map[int64]int{1: 3, 2: 2, 3: 1, 4: 0, 5: 3, 100: 0, 101: 3}
	for pk, shard := range want {
		if got := shardIndex(encodeKey(Int(pk)), 4); got != shard {
			t.Errorf("shardIndex(Int(%d), 4) = %d, want %d", pk, got, shard)
		}
	}
}

// TestShardedDuplicateBatchAtomic verifies the cross-shard batch
// contract: a validation error (duplicate primary key) leaves every
// shard untouched.
func TestShardedDuplicateBatchAtomic(t *testing.T) {
	db := OpenMemorySharded(4)
	tbl, err := db.CreateTable(attrSchema())
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(Row{Int(7), Int(1), Str("pulse"), Str("x"), Float(60)}); err != nil {
		t.Fatal(err)
	}
	batch := []Row{
		{Int(1), Int(1), Str("pulse"), Str("x"), Float(61)},
		{Int(2), Int(1), Str("pulse"), Str("x"), Float(62)},
		{Int(7), Int(1), Str("pulse"), Str("x"), Float(63)}, // dup of existing
	}
	if err := tbl.InsertBatch(batch); err == nil {
		t.Fatal("duplicate batch accepted")
	}
	if tbl.Len() != 1 {
		t.Errorf("failed batch left %d rows, want 1 (validation must be all-or-nothing)", tbl.Len())
	}
	// In-batch duplicate, same shard by construction.
	if err := tbl.InsertBatch([]Row{
		{Int(9), Int(1), Str("pulse"), Str("x"), Float(61)},
		{Int(9), Int(1), Str("pulse"), Str("x"), Float(62)},
	}); err == nil {
		t.Fatal("in-batch duplicate accepted")
	}
	if tbl.Len() != 1 {
		t.Errorf("failed batch left %d rows, want 1", tbl.Len())
	}
}

// TestOpenRefusesNonDatabaseDir pins the layout guards: opening a
// directory that is not a database must never fabricate one inside it,
// and stray entries alongside real shard directories must not change
// the detected shard count.
func TestOpenRefusesNonDatabaseDir(t *testing.T) {
	// A directory with foreign content (e.g. a corpus dir, a typo'd
	// path) is refused for every shard count.
	foreign := t.TempDir()
	if err := os.WriteFile(filepath.Join(foreign, "patient001.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, 4} {
		if _, err := OpenSharded(foreign, n); err == nil {
			t.Errorf("open(n=%d) fabricated a database in a foreign directory", n)
		}
	}
	if _, err := os.Stat(filepath.Join(foreign, shardDirName(0))); err == nil {
		t.Error("foreign directory was mutated")
	}

	// An empty pre-made directory initializes only with an explicit
	// shard count; auto-detect refuses it.
	empty := t.TempDir()
	if _, err := OpenSharded(empty, 0); err == nil {
		t.Error("auto-detect open fabricated a database in an empty directory")
	}
	db, err := OpenSharded(empty, 2)
	if err != nil {
		t.Fatalf("explicit shard count should initialize an empty directory: %v", err)
	}
	db.Close()

	// Stray entries that merely resemble shard names are ignored, not
	// counted: the 2-shard store still opens as 2 shards.
	for _, stray := range []string{"shard-000-backup", "shard-0001"} {
		if err := os.MkdirAll(filepath.Join(empty, stray), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	db, err = OpenSharded(empty, 0)
	if err != nil {
		t.Fatalf("stray entries broke reopen: %v", err)
	}
	if db.Shards() != 2 {
		t.Errorf("stray entries changed shard count: %d", db.Shards())
	}
	db.Close()
}

// TestMaxPK pins the id-allocation primitive: max over all shards,
// correct under lazy deletion (the rightmost B-tree leaf may be empty
// after deletes).
func TestMaxPK(t *testing.T) {
	for _, shards := range []int{1, 3} {
		db := OpenMemorySharded(shards)
		tbl, err := db.CreateTable(attrSchema())
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := tbl.MaxPK(); ok {
			t.Errorf("shards=%d: empty table reported a max pk", shards)
		}
		for id := int64(1); id <= 100; id++ {
			if err := tbl.Insert(Row{Int(id), Int(1), Str("pulse"), Str("x"), Float(60)}); err != nil {
				t.Fatal(err)
			}
		}
		if pk, ok := tbl.MaxPK(); !ok || pk.I != 100 {
			t.Errorf("shards=%d: MaxPK = %v,%v, want 100", shards, pk, ok)
		}
		// Delete the top half so the largest keys vanish from every
		// shard's rightmost leaves.
		for id := int64(51); id <= 100; id++ {
			if err := tbl.Delete(Int(id)); err != nil {
				t.Fatal(err)
			}
		}
		if pk, ok := tbl.MaxPK(); !ok || pk.I != 50 {
			t.Errorf("shards=%d: MaxPK after deletes = %v,%v, want 50", shards, pk, ok)
		}
	}
}

// TestShardedConcurrentIngestQuery runs parallel batch writers against
// parallel fan-out readers on a 4-shard WAL-backed store; under -race
// this pins the lock discipline of the partitioned table (readers take
// per-shard read locks, writers per-shard write locks, appends the
// shard's log mutex).
func TestShardedConcurrentIngestQuery(t *testing.T) {
	db, err := OpenSharded(filepath.Join(t.TempDir(), "conc.db"), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable(attrSchema())
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex("attribute"); err != nil {
		t.Fatal(err)
	}
	const writers, batches, perBatch = 4, 20, 16
	var next atomic.Int64
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for bi := 0; bi < batches; bi++ {
				base := next.Add(perBatch) - perBatch
				batch := make([]Row, perBatch)
				for i := range batch {
					id := base + int64(i)
					batch[i] = Row{Int(id), Int(id % 9), Str("pulse"), Str("x"), Float(float64(60 + id%40))}
				}
				if err := tbl.InsertBatch(batch); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				rows, stats, err := tbl.Query(Query{Preds: []Pred{Eq("attribute", Str("pulse"))}})
				if err != nil {
					t.Error(err)
					return
				}
				if stats.Shards != 4 {
					t.Errorf("fan-out width %d", stats.Shards)
					return
				}
				// Merged order must be ascending pk even mid-ingest.
				for i := 1; i < len(rows); i++ {
					if rows[i-1][0].I >= rows[i][0].I {
						t.Errorf("merge order broken at %d", i)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(done)
	readers.Wait()
	if want := int64(writers * batches * perBatch); int64(tbl.Len()) != want {
		t.Errorf("rows = %d, want %d", tbl.Len(), want)
	}
	checkIndexConsistent(t, tbl)
}

func ExampleOpenSharded() {
	dir, _ := os.MkdirTemp("", "sharded")
	defer os.RemoveAll(dir)
	db, _ := OpenSharded(filepath.Join(dir, "extracted.db"), 4)
	defer db.Close()
	tbl, _ := db.CreateTable(attrSchema())
	_ = tbl.CreateIndex("attribute")
	_ = tbl.InsertBatch([]Row{
		{Int(1), Int(1), Str("pulse"), Str("x"), Float(84)},
		{Int(2), Int(2), Str("pulse"), Str("x"), Float(98)},
	})
	rows, stats, _ := tbl.Query(Query{Preds: []Pred{Eq("attribute", Str("pulse"))}})
	fmt.Printf("%d rows via %s across %d shards\n", len(rows), stats.Plan(), stats.Shards)
	// Output: 2 rows via index(attribute) across 4 shards
}
