// Package linkgram is a from-scratch link grammar parser for the clinical
// dictation sub-language, standing in for the CMU Link Grammar Parser 4.1
// used by Zhou et al. (ICDE 2005).
//
// A link grammar assigns each word a set of disjuncts; a disjunct is an
// ordered list of left-pointing and right-pointing connectors. A linkage
// is a set of typed links between word pairs such that every word uses
// exactly one disjunct completely, links do not cross (planarity), and
// the whole sentence is connected. The parser uses the classic
// Sleator–Temperley span dynamic program over regions (L, R, le, re).
//
// The extraction system uses two products of the parse, mirroring the
// paper: the linkage viewed as a weighted graph (shortest word-pair
// distance associates numbers with feature keywords, §3.1) and the
// constituent roles derived from link types (subject / verb / object /
// supplement, used by the ID3 feature extractor, §3.3).
package linkgram

// node is one connector in an immutable, interned connector list. Lists
// are ordered FARTHEST-FIRST: the head connector links to the farthest
// word in its direction, which is the order the span DP consumes them in.
// Interning gives every distinct (name, next) pair a unique id, so suffix
// sharing keeps the memo table small.
type node struct {
	name string
	next *node
	id   int32
}

// interner dedupes connector lists within a single parse.
type interner struct {
	byKey map[internKey]*node
	nodes []*node
}

type internKey struct {
	name string
	next int32
}

func newInterner() *interner {
	return &interner{byKey: make(map[internKey]*node)}
}

// push prepends name to list (making name the new farthest connector) and
// returns the interned result.
func (in *interner) push(name string, list *node) *node {
	k := internKey{name: name, next: listID(list)}
	if n, ok := in.byKey[k]; ok {
		return n
	}
	n := &node{name: name, next: list, id: int32(len(in.nodes) + 1)}
	in.byKey[k] = n
	in.nodes = append(in.nodes, n)
	return n
}

// fromNearFirst builds an interned farthest-first list from a
// nearest-first slice of connector names (the order dictionary entries
// are written in, matching standard link grammar notation).
func (in *interner) fromNearFirst(names []string) *node {
	var list *node
	for _, name := range names { // nearest ends up deepest
		list = in.push(name, list)
	}
	return list
}

func listID(n *node) int32 {
	if n == nil {
		return 0
	}
	return n.id
}

// match reports whether two connector names can link. Names match
// exactly; this grammar does not use subscript wildcards.
func match(a, b string) bool { return a == b }

// disjunct is one way a word can connect: left and right connector lists,
// both farthest-first.
type disjunct struct {
	left, right *node
}

// listNames returns the connector names nearest-first, for debugging and
// tests.
func listNames(n *node) []string {
	var far []string
	for ; n != nil; n = n.next {
		far = append(far, n.name)
	}
	// reverse: stored farthest-first, report nearest-first
	for i, j := 0, len(far)-1; i < j; i, j = i+1, j-1 {
		far[i], far[j] = far[j], far[i]
	}
	return far
}
