// Package ontology is the UMLS substitute: an embedded medical concept
// vocabulary with normalized-string lookup, synonym expansion, semantic
// types, and a coverage knob that emulates ontology incompleteness (the
// cause the paper assigns to its term-extraction errors).
//
// Mirroring the paper's setup ("we downloaded UMLS data and installed it
// in a local DB2 database; the data is accessed by JDBC"), the vocabulary
// is loaded into an embedded store table indexed by normalized string.
package ontology

// SemType is the semantic type of a concept, the coarse UMLS-style
// grouping the extractor uses to route terms to attributes.
type SemType string

// Semantic types used by the extraction tasks.
const (
	Disease    SemType = "Disease or Syndrome"
	Procedure  SemType = "Therapeutic or Preventive Procedure"
	Finding    SemType = "Finding"
	Medication SemType = "Pharmacologic Substance"
	Anatomy    SemType = "Body Part"
)

// Concept is one vocabulary entry.
type Concept struct {
	CUI       string   // concept unique identifier, UMLS-style
	Preferred string   // preferred name
	Synonyms  []string // surface synonyms (preferred name excluded)
	Type      SemType
}

// seedConcepts is the embedded vocabulary. CUIs are stable synthetic
// identifiers. The set covers the conditions, procedures and findings
// that occur in breast-clinic consultation notes, plus enough general
// internal-medicine vocabulary to exercise ontology-coverage experiments.
var seedConcepts = []Concept{
	// ---- Diseases / syndromes ----
	{CUI: "C0001", Preferred: "diabetes", Synonyms: []string{"diabetes mellitus", "dm", "type 2 diabetes", "adult onset diabetes"}, Type: Disease},
	{CUI: "C0002", Preferred: "heart disease", Synonyms: []string{"cardiac disease", "coronary artery disease", "cad", "coronary disease"}, Type: Disease},
	{CUI: "C0003", Preferred: "hypertension", Synonyms: []string{"high blood pressure", "htn", "elevated blood pressure"}, Type: Disease},
	{CUI: "C0004", Preferred: "hypercholesterolemia", Synonyms: []string{"high cholesterol", "elevated cholesterol", "dyslipidemia"}, Type: Disease},
	{CUI: "C0005", Preferred: "bronchitis", Synonyms: []string{"chronic bronchitis"}, Type: Disease},
	{CUI: "C0006", Preferred: "arrhythmia", Synonyms: []string{"cardiac arrhythmia", "irregular heartbeat", "atrial fibrillation"}, Type: Disease},
	{CUI: "C0007", Preferred: "depression", Synonyms: []string{"depressive disorder", "major depression"}, Type: Disease},
	{CUI: "C0008", Preferred: "asthma", Synonyms: []string{"reactive airway disease"}, Type: Disease},
	{CUI: "C0009", Preferred: "arthritis", Synonyms: []string{"osteoarthritis", "degenerative joint disease", "rheumatoid arthritis"}, Type: Disease},
	{CUI: "C0010", Preferred: "copd", Synonyms: []string{"chronic obstructive pulmonary disease", "emphysema"}, Type: Disease},
	{CUI: "C0011", Preferred: "postoperative cva", Synonyms: []string{"cva", "stroke", "cerebrovascular accident"}, Type: Disease},
	{CUI: "C0012", Preferred: "myocardial infarction", Synonyms: []string{"mi", "heart attack"}, Type: Disease},
	{CUI: "C0013", Preferred: "gerd", Synonyms: []string{"gastroesophageal reflux disease", "acid reflux", "reflux disease"}, Type: Disease},
	{CUI: "C0014", Preferred: "hypothyroidism", Synonyms: []string{"underactive thyroid", "low thyroid"}, Type: Disease},
	{CUI: "C0015", Preferred: "hyperthyroidism", Synonyms: []string{"overactive thyroid", "graves disease"}, Type: Disease},
	{CUI: "C0016", Preferred: "anemia", Synonyms: []string{"iron deficiency anemia", "low blood count"}, Type: Disease},
	{CUI: "C0017", Preferred: "migraine", Synonyms: []string{"migraine headache", "migraines"}, Type: Disease},
	{CUI: "C0018", Preferred: "obesity", Synonyms: []string{"morbid obesity"}, Type: Disease},
	{CUI: "C0019", Preferred: "osteoporosis", Synonyms: []string{"bone loss", "osteopenia"}, Type: Disease},
	{CUI: "C0020", Preferred: "anxiety", Synonyms: []string{"anxiety disorder", "generalized anxiety"}, Type: Disease},
	{CUI: "C0021", Preferred: "breast cancer", Synonyms: []string{"breast carcinoma", "carcinoma of the breast", "mammary carcinoma"}, Type: Disease},
	{CUI: "C0022", Preferred: "pneumonia", Synonyms: []string{"lung infection"}, Type: Disease},
	{CUI: "C0023", Preferred: "peptic ulcer", Synonyms: []string{"stomach ulcer", "duodenal ulcer", "gastric ulcer"}, Type: Disease},
	{CUI: "C0024", Preferred: "ulcerative colitis", Synonyms: []string{"colitis"}, Type: Disease},
	{CUI: "C0025", Preferred: "diverticulitis", Synonyms: []string{"diverticular disease"}, Type: Disease},
	{CUI: "C0026", Preferred: "glaucoma", Synonyms: nil, Type: Disease},
	{CUI: "C0027", Preferred: "cataract", Synonyms: []string{"cataracts"}, Type: Disease},
	{CUI: "C0028", Preferred: "eczema", Synonyms: []string{"atopic dermatitis"}, Type: Disease},
	{CUI: "C0029", Preferred: "psoriasis", Synonyms: nil, Type: Disease},
	{CUI: "C0030", Preferred: "gout", Synonyms: []string{"gouty arthritis"}, Type: Disease},
	{CUI: "C0031", Preferred: "fibromyalgia", Synonyms: nil, Type: Disease},
	{CUI: "C0032", Preferred: "neuropathy", Synonyms: []string{"peripheral neuropathy", "diabetic neuropathy"}, Type: Disease},
	{CUI: "C0033", Preferred: "epilepsy", Synonyms: []string{"seizure disorder", "seizures"}, Type: Disease},
	{CUI: "C0034", Preferred: "hepatitis", Synonyms: []string{"hepatitis c", "hepatitis b"}, Type: Disease},
	{CUI: "C0035", Preferred: "cirrhosis", Synonyms: []string{"liver cirrhosis"}, Type: Disease},
	{CUI: "C0036", Preferred: "congestive heart failure", Synonyms: []string{"chf", "heart failure"}, Type: Disease},
	{CUI: "C0037", Preferred: "sleep apnea", Synonyms: []string{"obstructive sleep apnea", "osa"}, Type: Disease},
	{CUI: "C0038", Preferred: "lupus", Synonyms: []string{"systemic lupus erythematosus", "sle"}, Type: Disease},
	{CUI: "C0039", Preferred: "sarcoidosis", Synonyms: nil, Type: Disease},
	{CUI: "C0040", Preferred: "multiple sclerosis", Synonyms: []string{"ms"}, Type: Disease},
	{CUI: "C0041", Preferred: "kidney stones", Synonyms: []string{"renal calculi", "nephrolithiasis", "kidney stone"}, Type: Disease},
	{CUI: "C0042", Preferred: "urinary tract infection", Synonyms: []string{"uti", "bladder infection"}, Type: Disease},
	{CUI: "C0043", Preferred: "sinusitis", Synonyms: []string{"chronic sinusitis", "sinus infection"}, Type: Disease},
	{CUI: "C0044", Preferred: "allergic rhinitis", Synonyms: []string{"hay fever", "seasonal allergies"}, Type: Disease},
	{CUI: "C0045", Preferred: "insomnia", Synonyms: []string{"sleep disturbance"}, Type: Disease},
	{CUI: "C0046", Preferred: "fibrocystic breast disease", Synonyms: []string{"fibrocystic disease", "fibrocystic changes"}, Type: Disease},
	{CUI: "C0047", Preferred: "ovarian cyst", Synonyms: []string{"ovarian cysts"}, Type: Disease},
	{CUI: "C0048", Preferred: "endometriosis", Synonyms: nil, Type: Disease},
	{CUI: "C0049", Preferred: "uterine fibroids", Synonyms: []string{"fibroids", "leiomyoma"}, Type: Disease},
	{CUI: "C0050", Preferred: "hemorrhoids", Synonyms: nil, Type: Disease},
	{CUI: "C0051", Preferred: "varicose veins", Synonyms: nil, Type: Disease},
	{CUI: "C0052", Preferred: "deep vein thrombosis", Synonyms: []string{"dvt", "blood clot"}, Type: Disease},
	{CUI: "C0053", Preferred: "pulmonary embolism", Synonyms: []string{"pe"}, Type: Disease},
	{CUI: "C0054", Preferred: "pancreatitis", Synonyms: nil, Type: Disease},
	{CUI: "C0055", Preferred: "gallstones", Synonyms: []string{"cholelithiasis", "gallstone disease"}, Type: Disease},
	{CUI: "C0056", Preferred: "hiatal hernia", Synonyms: nil, Type: Disease},
	{CUI: "C0057", Preferred: "colon polyps", Synonyms: []string{"colonic polyps", "polyps"}, Type: Disease},
	{CUI: "C0058", Preferred: "skin cancer", Synonyms: []string{"basal cell carcinoma", "melanoma"}, Type: Disease},
	{CUI: "C0059", Preferred: "prostate cancer", Synonyms: nil, Type: Disease},
	{CUI: "C0060", Preferred: "colon cancer", Synonyms: []string{"colorectal cancer"}, Type: Disease},
	{CUI: "C0061", Preferred: "lung cancer", Synonyms: nil, Type: Disease},
	{CUI: "C0062", Preferred: "ovarian cancer", Synonyms: nil, Type: Disease},
	{CUI: "C0063", Preferred: "cervical dysplasia", Synonyms: []string{"abnormal pap smear"}, Type: Disease},
	{CUI: "C0064", Preferred: "mitral valve prolapse", Synonyms: []string{"mvp"}, Type: Disease},
	{CUI: "C0065", Preferred: "rheumatic fever", Synonyms: nil, Type: Disease},
	{CUI: "C0066", Preferred: "scoliosis", Synonyms: nil, Type: Disease},
	{CUI: "C0067", Preferred: "carpal tunnel syndrome", Synonyms: []string{"carpal tunnel"}, Type: Disease},
	{CUI: "C0068", Preferred: "chronic kidney disease", Synonyms: []string{"renal insufficiency", "ckd"}, Type: Disease},
	{CUI: "C0069", Preferred: "bipolar disorder", Synonyms: []string{"manic depression"}, Type: Disease},
	{CUI: "C0070", Preferred: "vertigo", Synonyms: []string{"dizziness"}, Type: Disease},

	// ---- Surgical procedures ----
	{CUI: "C0101", Preferred: "cholecystectomy", Synonyms: []string{"gallbladder removal", "gallbladder surgery", "laparoscopic cholecystectomy"}, Type: Procedure},
	{CUI: "C0102", Preferred: "cervical laminectomy", Synonyms: []string{"laminectomy", "spinal decompression"}, Type: Procedure},
	{CUI: "C0103", Preferred: "hysterectomy", Synonyms: []string{"total hysterectomy", "uterus removal", "abdominal hysterectomy"}, Type: Procedure},
	{CUI: "C0104", Preferred: "appendectomy", Synonyms: []string{"appendix removal"}, Type: Procedure},
	{CUI: "C0105", Preferred: "tonsillectomy", Synonyms: []string{"tonsil removal", "tonsils removed"}, Type: Procedure},
	{CUI: "C0106", Preferred: "midline hernia closure", Synonyms: []string{"hernia repair", "herniorrhaphy", "hernia closure", "inguinal hernia repair", "umbilical hernia repair"}, Type: Procedure},
	{CUI: "C0107", Preferred: "lumpectomy", Synonyms: []string{"breast lump excision", "partial mastectomy", "segmental mastectomy"}, Type: Procedure},
	{CUI: "C0108", Preferred: "mastectomy", Synonyms: []string{"modified radical mastectomy", "total mastectomy"}, Type: Procedure},
	{CUI: "C0109", Preferred: "breast biopsy", Synonyms: []string{"biopsy", "core biopsy", "excisional biopsy", "needle biopsy"}, Type: Procedure},
	{CUI: "C0110", Preferred: "cesarean section", Synonyms: []string{"c-section", "cesarean delivery"}, Type: Procedure},
	{CUI: "C0111", Preferred: "tubal ligation", Synonyms: []string{"tubes tied"}, Type: Procedure},
	{CUI: "C0112", Preferred: "coronary artery bypass", Synonyms: []string{"cabg", "bypass surgery", "heart bypass"}, Type: Procedure},
	{CUI: "C0113", Preferred: "cardiac catheterization", Synonyms: []string{"heart catheterization"}, Type: Procedure},
	{CUI: "C0114", Preferred: "angioplasty", Synonyms: []string{"stent placement", "coronary stent"}, Type: Procedure},
	{CUI: "C0115", Preferred: "knee replacement", Synonyms: []string{"total knee replacement", "knee arthroplasty"}, Type: Procedure},
	{CUI: "C0116", Preferred: "hip replacement", Synonyms: []string{"total hip replacement", "hip arthroplasty"}, Type: Procedure},
	{CUI: "C0117", Preferred: "arthroscopy", Synonyms: []string{"knee arthroscopy", "arthroscopic surgery"}, Type: Procedure},
	{CUI: "C0118", Preferred: "carpal tunnel release", Synonyms: nil, Type: Procedure},
	{CUI: "C0119", Preferred: "thyroidectomy", Synonyms: []string{"thyroid removal", "thyroid surgery"}, Type: Procedure},
	{CUI: "C0120", Preferred: "oophorectomy", Synonyms: []string{"ovary removal", "bilateral oophorectomy"}, Type: Procedure},
	{CUI: "C0121", Preferred: "dilation and curettage", Synonyms: []string{"d and c"}, Type: Procedure},
	{CUI: "C0122", Preferred: "cataract surgery", Synonyms: []string{"cataract extraction", "lens implant"}, Type: Procedure},
	{CUI: "C0123", Preferred: "septoplasty", Synonyms: []string{"deviated septum repair"}, Type: Procedure},
	{CUI: "C0124", Preferred: "rhinoplasty", Synonyms: nil, Type: Procedure},
	{CUI: "C0125", Preferred: "splenectomy", Synonyms: []string{"spleen removal"}, Type: Procedure},
	{CUI: "C0126", Preferred: "nephrectomy", Synonyms: []string{"kidney removal"}, Type: Procedure},
	{CUI: "C0127", Preferred: "spinal fusion", Synonyms: []string{"back fusion", "lumbar fusion"}, Type: Procedure},
	{CUI: "C0128", Preferred: "bunionectomy", Synonyms: []string{"bunion removal", "bunion surgery"}, Type: Procedure},
	{CUI: "C0129", Preferred: "hemorrhoidectomy", Synonyms: []string{"hemorrhoid removal"}, Type: Procedure},
	{CUI: "C0130", Preferred: "pacemaker placement", Synonyms: []string{"pacemaker insertion", "pacemaker implantation"}, Type: Procedure},
	{CUI: "C0131", Preferred: "colonoscopy", Synonyms: []string{"screening colonoscopy"}, Type: Procedure},
	{CUI: "C0132", Preferred: "skin graft", Synonyms: nil, Type: Procedure},
	{CUI: "C0133", Preferred: "rotator cuff repair", Synonyms: []string{"shoulder surgery", "shoulder repair"}, Type: Procedure},
	{CUI: "C0134", Preferred: "varicose vein stripping", Synonyms: []string{"vein stripping"}, Type: Procedure},
	{CUI: "C0135", Preferred: "breast augmentation", Synonyms: []string{"breast implants"}, Type: Procedure},
	{CUI: "C0136", Preferred: "breast reduction", Synonyms: []string{"reduction mammoplasty"}, Type: Procedure},
	{CUI: "C0137", Preferred: "vasectomy", Synonyms: nil, Type: Procedure},
	{CUI: "C0138", Preferred: "gastric bypass", Synonyms: []string{"bariatric surgery", "weight loss surgery"}, Type: Procedure},
	{CUI: "C0139", Preferred: "lymph node dissection", Synonyms: []string{"axillary dissection", "sentinel node biopsy"}, Type: Procedure},
	{CUI: "C0140", Preferred: "port placement", Synonyms: []string{"port a cath placement", "central line placement"}, Type: Procedure},

	// ---- Findings / symptoms ----
	{CUI: "C0201", Preferred: "back pain", Synonyms: []string{"low back pain", "lumbar pain"}, Type: Finding},
	{CUI: "C0202", Preferred: "chest pain", Synonyms: []string{"angina"}, Type: Finding},
	{CUI: "C0203", Preferred: "shortness of breath", Synonyms: []string{"dyspnea", "breathing difficulty"}, Type: Finding},
	{CUI: "C0204", Preferred: "headache", Synonyms: []string{"headaches", "cephalgia"}, Type: Finding},
	{CUI: "C0205", Preferred: "fatigue", Synonyms: []string{"tiredness"}, Type: Finding},
	{CUI: "C0206", Preferred: "nausea", Synonyms: nil, Type: Finding},
	{CUI: "C0207", Preferred: "breast mass", Synonyms: []string{"breast lump", "palpable mass", "dominant lesion"}, Type: Finding},
	{CUI: "C0208", Preferred: "breast pain", Synonyms: []string{"mastalgia", "breast tenderness"}, Type: Finding},
	{CUI: "C0209", Preferred: "nipple discharge", Synonyms: nil, Type: Finding},
	{CUI: "C0210", Preferred: "abnormal mammogram", Synonyms: []string{"abnormal calcification", "suspicious calcification", "mammographic abnormality"}, Type: Finding},
	{CUI: "C0211", Preferred: "lymphadenopathy", Synonyms: []string{"axillary adenopathy", "enlarged lymph nodes", "adenopathy"}, Type: Finding},
	{CUI: "C0212", Preferred: "weight loss", Synonyms: nil, Type: Finding},
	{CUI: "C0213", Preferred: "night sweats", Synonyms: nil, Type: Finding},
	{CUI: "C0214", Preferred: "palpitations", Synonyms: nil, Type: Finding},
	{CUI: "C0215", Preferred: "joint pain", Synonyms: []string{"arthralgia", "arthralgias"}, Type: Finding},

	// ---- Medications ----
	{CUI: "C0301", Preferred: "aspirin", Synonyms: []string{"asa"}, Type: Medication},
	{CUI: "C0302", Preferred: "hydrochlorothiazide", Synonyms: []string{"hctz"}, Type: Medication},
	{CUI: "C0303", Preferred: "lipitor", Synonyms: []string{"atorvastatin"}, Type: Medication},
	{CUI: "C0304", Preferred: "cardizem", Synonyms: []string{"diltiazem"}, Type: Medication},
	{CUI: "C0305", Preferred: "wellbutrin", Synonyms: []string{"bupropion"}, Type: Medication},
	{CUI: "C0306", Preferred: "zoloft", Synonyms: []string{"sertraline"}, Type: Medication},
	{CUI: "C0307", Preferred: "protonix", Synonyms: []string{"pantoprazole"}, Type: Medication},
	{CUI: "C0308", Preferred: "glucophage", Synonyms: []string{"metformin"}, Type: Medication},
	{CUI: "C0309", Preferred: "penicillin", Synonyms: nil, Type: Medication},
	{CUI: "C0310", Preferred: "ace inhibitors", Synonyms: []string{"lisinopril", "ace inhibitor"}, Type: Medication},
	{CUI: "C0311", Preferred: "senna", Synonyms: nil, Type: Medication},
	{CUI: "C0312", Preferred: "combivent", Synonyms: []string{"albuterol ipratropium"}, Type: Medication},
	{CUI: "C0313", Preferred: "flovent", Synonyms: []string{"fluticasone"}, Type: Medication},
	{CUI: "C0314", Preferred: "synthroid", Synonyms: []string{"levothyroxine"}, Type: Medication},
	{CUI: "C0315", Preferred: "norvasc", Synonyms: []string{"amlodipine"}, Type: Medication},
	{CUI: "C0316", Preferred: "toprol", Synonyms: []string{"metoprolol"}, Type: Medication},
	{CUI: "C0317", Preferred: "lasix", Synonyms: []string{"furosemide"}, Type: Medication},
	{CUI: "C0318", Preferred: "coumadin", Synonyms: []string{"warfarin"}, Type: Medication},
	{CUI: "C0319", Preferred: "plavix", Synonyms: []string{"clopidogrel"}, Type: Medication},
	{CUI: "C0320", Preferred: "zocor", Synonyms: []string{"simvastatin"}, Type: Medication},
	{CUI: "C0321", Preferred: "prilosec", Synonyms: []string{"omeprazole"}, Type: Medication},
	{CUI: "C0322", Preferred: "nexium", Synonyms: []string{"esomeprazole"}, Type: Medication},
	{CUI: "C0323", Preferred: "prozac", Synonyms: []string{"fluoxetine"}, Type: Medication},
	{CUI: "C0324", Preferred: "paxil", Synonyms: []string{"paroxetine"}, Type: Medication},
	{CUI: "C0325", Preferred: "xanax", Synonyms: []string{"alprazolam"}, Type: Medication},
	{CUI: "C0326", Preferred: "ativan", Synonyms: []string{"lorazepam"}, Type: Medication},
	{CUI: "C0327", Preferred: "ambien", Synonyms: []string{"zolpidem"}, Type: Medication},
	{CUI: "C0328", Preferred: "neurontin", Synonyms: []string{"gabapentin"}, Type: Medication},
	{CUI: "C0329", Preferred: "celebrex", Synonyms: []string{"celecoxib"}, Type: Medication},
	{CUI: "C0330", Preferred: "ibuprofen", Synonyms: []string{"motrin", "advil"}, Type: Medication},
	{CUI: "C0331", Preferred: "tylenol", Synonyms: []string{"acetaminophen"}, Type: Medication},
	{CUI: "C0332", Preferred: "prednisone", Synonyms: nil, Type: Medication},
	{CUI: "C0333", Preferred: "insulin", Synonyms: []string{"lantus", "humalog"}, Type: Medication},
	{CUI: "C0334", Preferred: "fosamax", Synonyms: []string{"alendronate"}, Type: Medication},
	{CUI: "C0335", Preferred: "premarin", Synonyms: []string{"conjugated estrogens"}, Type: Medication},
	{CUI: "C0336", Preferred: "tamoxifen", Synonyms: []string{"nolvadex"}, Type: Medication},
	{CUI: "C0337", Preferred: "arimidex", Synonyms: []string{"anastrozole"}, Type: Medication},
	{CUI: "C0338", Preferred: "os-cal", Synonyms: []string{"calcium carbonate"}, Type: Medication},
	{CUI: "C0339", Preferred: "multivitamin", Synonyms: []string{"daily vitamin"}, Type: Medication},
	{CUI: "C0340", Preferred: "allegra", Synonyms: []string{"fexofenadine"}, Type: Medication},
	{CUI: "C0341", Preferred: "claritin", Synonyms: []string{"loratadine"}, Type: Medication},
	{CUI: "C0342", Preferred: "singulair", Synonyms: []string{"montelukast"}, Type: Medication},
	{CUI: "C0343", Preferred: "flonase", Synonyms: []string{"fluticasone nasal"}, Type: Medication},
	{CUI: "C0344", Preferred: "zyrtec", Synonyms: []string{"cetirizine"}, Type: Medication},
	{CUI: "C0345", Preferred: "effexor", Synonyms: []string{"venlafaxine"}, Type: Medication},
	{CUI: "C0346", Preferred: "lexapro", Synonyms: []string{"escitalopram"}, Type: Medication},
	{CUI: "C0347", Preferred: "crestor", Synonyms: []string{"rosuvastatin"}, Type: Medication},
	{CUI: "C0348", Preferred: "diovan", Synonyms: []string{"valsartan"}, Type: Medication},
	{CUI: "C0349", Preferred: "cozaar", Synonyms: []string{"losartan"}, Type: Medication},
	{CUI: "C0350", Preferred: "glyburide", Synonyms: []string{"micronase"}, Type: Medication},

	// ---- Anatomy (sub-phrase guards: these absorb anatomical nouns so
	// they are typed correctly rather than mistaken for findings) ----
	{CUI: "C0401", Preferred: "breast", Synonyms: nil, Type: Anatomy},
	{CUI: "C0402", Preferred: "axilla", Synonyms: nil, Type: Anatomy},
	{CUI: "C0403", Preferred: "lymph node", Synonyms: []string{"lymph nodes"}, Type: Anatomy},
	{CUI: "C0404", Preferred: "gallbladder", Synonyms: nil, Type: Anatomy},
	{CUI: "C0405", Preferred: "uterus", Synonyms: nil, Type: Anatomy},
	{CUI: "C0406", Preferred: "ovary", Synonyms: nil, Type: Anatomy},
	{CUI: "C0407", Preferred: "thyroid", Synonyms: []string{"thyroid gland"}, Type: Anatomy},
	{CUI: "C0408", Preferred: "appendix", Synonyms: nil, Type: Anatomy},
	{CUI: "C0409", Preferred: "spine", Synonyms: []string{"vertebral column"}, Type: Anatomy},
	{CUI: "C0410", Preferred: "abdomen", Synonyms: nil, Type: Anatomy},
}

// Medications returns the medication concepts, for the corpus generator.
func Medications() []Concept {
	var out []Concept
	for _, c := range seedConcepts {
		if c.Type == Medication {
			out = append(out, c)
		}
	}
	return out
}

// PredefinedMedical is the project's fixed list of tracked past-medical
// conditions (paper: "Predefined Past Medical History"); everything else
// found in the ontology is "Other Past Medical History".
var PredefinedMedical = []string{
	"diabetes", "heart disease", "hypertension", "hypercholesterolemia",
	"bronchitis", "arrhythmia", "depression", "asthma", "arthritis", "copd",
}

// PredefinedSurgical is the fixed list of tracked past surgeries (paper:
// "Predefined Past Surgical History").
var PredefinedSurgical = []string{
	"cholecystectomy", "hysterectomy", "appendectomy", "tonsillectomy",
	"cesarean section", "breast biopsy", "lumpectomy", "mastectomy",
	"midline hernia closure", "cervical laminectomy",
}
