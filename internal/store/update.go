package store

import (
	"bytes"
	"errors"
	"sync"
)

// Update replaces the row with the given primary key. The new row must
// carry the same primary key; secondary indexes are maintained. The
// operation is logged as delete+insert on the row's home shard, which
// replays correctly.
func (t *Table) Update(pk Value, row Row) error {
	if err := t.schema.validate(row); err != nil {
		return err
	}
	key := encodeKey(pk)
	ts := t.shardFor(key)
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.updateLocked(key, pk, row)
}

func (ts *tableShard) updateLocked(key []byte, pk Value, row Row) error {
	newKey := encodeKey(row[ts.schema.Primary])
	if !bytes.Equal(key, newKey) {
		return ErrPKChange
	}
	old, live, err := ts.liveGet(key)
	if err != nil {
		return err
	}
	if !live {
		return ErrNotFound
	}
	if err := ts.shard.logDelete(ts.schema.Name, pk); err != nil {
		return err
	}
	if err := ts.shard.logInsert(ts.schema.Name, row); err != nil {
		return err
	}
	ts.applyDelete(key, old)
	ts.applyInsert(key, row)
	return nil
}

// Upsert inserts the row, replacing any existing row with the same
// primary key.
func (t *Table) Upsert(row Row) error {
	if err := t.schema.validate(row); err != nil {
		return err
	}
	pk := row[t.schema.Primary]
	key := encodeKey(pk)
	ts := t.shardFor(key)
	ts.mu.Lock()
	defer ts.mu.Unlock()
	_, live, err := ts.liveGet(key)
	if err != nil {
		return err
	}
	if live {
		return ts.updateLocked(key, pk, row)
	}
	return ts.insertLocked(key, row)
}

// LookupRange returns rows whose indexed column value lies in [lo, hi),
// in ascending (column value, primary key) order. The column must have a
// secondary index. With multiple shards the per-shard walks fan out and
// the sorted partial results merge.
func (t *Table) LookupRange(col string, lo, hi Value) ([]Row, error) {
	if len(t.shards) == 1 {
		return t.shards[0].lookupRange(col, lo, hi)
	}
	parts := make([][]Row, len(t.shards))
	errs := make([]error, len(t.shards))
	var wg sync.WaitGroup
	for i, ts := range t.shards {
		wg.Add(1)
		go func(i int, ts *tableShard) {
			defer wg.Done()
			parts[i], errs[i] = ts.lookupRange(col, lo, hi)
		}(i, ts)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return kwayMerge(parts, t.lessByColPK(t.schema.colIndex(col))), nil
}

func (ts *tableShard) lookupRange(col string, lo, hi Value) ([]Row, error) {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	idx, ok := ts.secondary[col]
	if !ok {
		return nil, ErrNoIndex
	}
	var out []Row
	var walkErr error
	idx.AscendRange(encodeKey(lo), encodeKey(hi), func(_ []byte, v interface{}) bool {
		out, walkErr = ts.appendResolved(v.(*postingList), out, nil)
		return walkErr == nil
	})
	if walkErr != nil {
		return nil, walkErr
	}
	return out, nil
}

// Stats summarizes a table for monitoring.
type Stats struct {
	Rows     int
	Shards   int
	Segments int // segment files currently serving reads
	// FailedShards counts shards refusing writes behind the
	// failed-compaction latch (see Engine.Health); non-zero means the
	// table is effectively read-only until the database is reopened.
	FailedShards int
	Indexes      int
	IndexNames   []string
	// Compaction aggregates the shards' compaction counters (compaction
	// is per shard and covers every table on it, so these are engine-
	// wide numbers surfaced here for one-stop monitoring).
	Compaction CompactionStats
	// Cache snapshots the engine-wide decoded-block cache (shared by
	// every shard and table; surfaced here for one-stop monitoring).
	Cache CacheStats
}

// Stats returns the table's live-row count and segment count (summed
// over shards) and index inventory (identical on every shard by
// construction).
func (t *Table) Stats() Stats {
	s := Stats{Shards: len(t.shards)}
	for _, ts := range t.shards {
		ts.mu.RLock()
		s.Rows += ts.count
		s.Segments += len(ts.segs)
		if ts.shard != nil && ts.shard.failed != nil {
			s.FailedShards++
		}
		ts.mu.RUnlock()
		if ts.shard != nil {
			addShardCompactionStats(&s.Compaction, ts.shard)
		}
	}
	ts := t.shards[0]
	ts.mu.RLock()
	s.Indexes = len(ts.secondary)
	for name := range ts.secondary {
		s.IndexNames = append(s.IndexNames, name)
	}
	ts.mu.RUnlock()
	sortKeys(s.IndexNames)
	if ts.shard != nil {
		s.Cache = ts.shard.cache.stats()
	}
	return s
}
