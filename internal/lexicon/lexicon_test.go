package lexicon

import (
	"testing"
	"testing/quick"
)

func TestLemmaNouns(t *testing.T) {
	cases := map[string]string{
		"pressures":      "pressure",
		"biopsies":       "biopsy",
		"masses":         "mass",
		"mammograms":     "mammogram",
		"children":       "child",
		"diagnoses":      "diagnosis",
		"lumpectomies":   "lumpectomy",
		"allergies":      "allergy",
		"diabetes":       "diabetes", // not a plural
		"pancreas":       "pancreas",
		"uterus":         "uterus",
		"pregnancies":    "pregnancy",
		"calcifications": "calcification",
		"lesions":        "lesion",
		"vertebrae":      "vertebra",
	}
	for in, want := range cases {
		if got := Lemma(in, Noun); got != want {
			t.Errorf("Lemma(%q, Noun) = %q, want %q", in, got, want)
		}
	}
}

func TestLemmaVerbs(t *testing.T) {
	cases := map[string]string{
		"denies":    "deny",
		"denied":    "deny",
		"deny":      "deny",
		"smoked":    "smoke",
		"smoking":   "smoke",
		"smokes":    "smoke",
		"quit":      "quit",
		"underwent": "undergo",
		"stopped":   "stop",
		"revealed":  "reveal",
		"was":       "be",
		"has":       "have",
		"drank":     "drink",
		"admitted":  "admit",
		"showed":    "show",
	}
	for in, want := range cases {
		if got := Lemma(in, Verb); got != want {
			t.Errorf("Lemma(%q, Verb) = %q, want %q", in, got, want)
		}
	}
}

func TestLemmaAny(t *testing.T) {
	// Any must resolve the paper's example: denies/denied/deny → same.
	forms := []string{"denies", "denied", "deny"}
	for _, f := range forms {
		if got := Lemma(f, Any); got != "deny" {
			t.Errorf("Lemma(%q, Any) = %q, want deny", f, got)
		}
	}
	if got := Lemma("", Any); got != "" {
		t.Errorf("Lemma empty = %q", got)
	}
	if got := Lemma("WORSE", Any); got != "bad" {
		t.Errorf("Lemma(WORSE) = %q, want bad", got)
	}
}

func TestNormalizePaperExample(t *testing.T) {
	// §3.2: "high blood pressures" → "blood high pressure".
	if got := Normalize("high blood pressures"); got != "blood high pressure" {
		t.Errorf("Normalize = %q, want %q", got, "blood high pressure")
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	f := func(s string) bool {
		once := Normalize(s)
		return Normalize(once) == once
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNormalizeWordsMatchesNormalize(t *testing.T) {
	if a, b := Normalize("midline hernia closures"), NormalizeWords([]string{"midline", "hernia", "closures"}); a != b {
		t.Errorf("Normalize %q != NormalizeWords %q", a, b)
	}
}

func TestPluralize(t *testing.T) {
	cases := map[string]string{
		"biopsy":    "biopsies",
		"mass":      "masses",
		"lesion":    "lesions",
		"box":       "boxes",
		"history":   "histories",
		"child":     "children",
		"mammogram": "mammograms",
	}
	for in, want := range cases {
		if got := Pluralize(in); got != want {
			t.Errorf("Pluralize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPastTenseAndGerund(t *testing.T) {
	if got := PastTense("smoke"); got != "smoked" {
		t.Errorf("PastTense(smoke) = %q", got)
	}
	if got := PastTense("deny"); got != "denied" {
		t.Errorf("PastTense(deny) = %q", got)
	}
	if got := PastTense("stop"); got != "stopped" {
		t.Errorf("PastTense(stop) = %q", got)
	}
	if got := Gerund("smoke"); got != "smoking" {
		t.Errorf("Gerund(smoke) = %q", got)
	}
	if got := Gerund("stop"); got != "stopping" {
		t.Errorf("Gerund(stop) = %q", got)
	}
	if got := Gerund("die"); got != "dying" {
		t.Errorf("Gerund(die) = %q", got)
	}
}

func TestVariantsRoundTrip(t *testing.T) {
	// Every generated variant must lemmatize back to the base word.
	for _, base := range []string{"biopsy", "lesion", "mass", "smoke", "deny"} {
		for _, v := range Variants(base) {
			if got := Lemma(v, Any); got != base {
				t.Errorf("Lemma(Variants(%q)=%q) = %q, want %q", base, v, got, base)
			}
		}
	}
}

func TestPhraseVariants(t *testing.T) {
	vs := PhraseVariants("live birth")
	found := false
	for _, v := range vs {
		if v == "live births" {
			found = true
		}
	}
	if !found {
		t.Errorf("PhraseVariants(live birth) = %v, missing plural", vs)
	}
	if PhraseVariants("") != nil {
		t.Error("PhraseVariants(\"\") should be nil")
	}
}

func TestSynonyms(t *testing.T) {
	syns := Synonyms("blood pressure")
	if len(syns) == 0 {
		t.Fatal("no synonyms for blood pressure")
	}
	if !AreSynonyms("blood pressure", "bp") {
		t.Error("bp should be a synonym of blood pressure")
	}
	if !AreSynonyms("hypertension", "high blood pressure") {
		t.Error("hypertension/high blood pressure")
	}
	if AreSynonyms("pulse", "weight") {
		t.Error("pulse/weight are not synonyms")
	}
	if !AreSynonyms("same", "same") {
		t.Error("identity must be synonymous")
	}
	if Synonyms("zzzz-unknown") != nil {
		t.Error("unknown term should have nil synonyms")
	}
}

func TestSynonymSymmetry(t *testing.T) {
	for _, set := range synsets {
		for _, a := range set {
			for _, b := range set {
				if !AreSynonyms(a, b) {
					t.Errorf("AreSynonyms(%q,%q) = false within one synset", a, b)
				}
			}
		}
	}
}

func TestExpandWithSynonyms(t *testing.T) {
	exp := ExpandWithSynonyms("pulse")
	want := map[string]bool{"pulse": false, "heart rate": false, "pulse rate": false, "pulses": false}
	for _, e := range exp {
		if _, ok := want[e]; ok {
			want[e] = true
		}
	}
	for k, seen := range want {
		if !seen {
			t.Errorf("ExpandWithSynonyms(pulse) missing %q: %v", k, exp)
		}
	}
	// No duplicates.
	seen := map[string]bool{}
	for _, e := range exp {
		if seen[e] {
			t.Errorf("duplicate %q in expansion", e)
		}
		seen[e] = true
	}
}
