// Command gencorpus generates a synthetic consultation-note corpus with
// gold annotations, in the format of the paper's appendix.
//
// Usage:
//
//	gencorpus -out corpus/ [-n 50] [-seed 2005] [-diversity 0]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/records"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gencorpus: ")

	out := flag.String("out", "corpus", "output directory")
	n := flag.Int("n", 50, "number of records")
	seed := flag.Int64("seed", 2005, "random seed")
	diversity := flag.Float64("diversity", 0, "writing-style diversity in [0,1]")
	show := flag.Bool("show", false, "print the first record to stdout")
	flag.Parse()

	opts := records.DefaultGenOptions()
	opts.N = *n
	opts.Seed = *seed
	opts.StyleDiversity = *diversity

	recs := records.Generate(opts)
	if err := records.WriteCorpus(*out, recs); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d records and gold.json to %s\n", len(recs), *out)
	if *show && len(recs) > 0 {
		fmt.Fprintln(os.Stdout, "---")
		fmt.Fprint(os.Stdout, recs[0].Text)
	}
}
