package eval

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/ontology"
	"repro/internal/records"
)

// The golden-metrics tests pin E1/E2/E3 to the exact values the seed
// system produces on the default deterministic corpus. Unlike the
// threshold tests in experiments_test.go, these fail on ANY drift — an
// extraction change that shifts a single record shows up here, so
// accuracy regressions cannot ride in silently under a perf PR. If a
// deliberate quality change moves the numbers, update the constants in
// the same commit and say why.

func goldenCorpus() []records.Record {
	return records.Generate(records.DefaultGenOptions())
}

func TestGoldenE1Numeric(t *testing.T) {
	res := RunE1(goldenCorpus(), core.LinkGrammar)
	if res.Overall.Correct != 381 || res.Overall.Wrong != 0 || res.Overall.Missed != 0 {
		t.Errorf("E1 overall drifted: correct=%d wrong=%d missed=%d, want 381/0/0",
			res.Overall.Correct, res.Overall.Wrong, res.Overall.Missed)
	}
	wantCorrect := map[string]int{
		records.AttrAge:           50,
		records.AttrMenarche:      50,
		records.AttrGravida:       50,
		records.AttrPara:          50,
		records.AttrFirstBirthAge: 31, // not every record mentions it
		records.AttrBloodPressure: 50,
		records.AttrPulse:         50,
		records.AttrWeight:        50,
	}
	for attr, want := range wantCorrect {
		got := res.PerAttr[attr]
		if got.Correct != want || got.Wrong != 0 || got.Missed != 0 {
			t.Errorf("E1 %q drifted: correct=%d wrong=%d missed=%d, want %d/0/0",
				attr, got.Correct, got.Wrong, got.Missed, want)
		}
	}
}

func TestGoldenE2Terms(t *testing.T) {
	ont := ontology.MustNew(ontology.Options{})
	defer ont.Close()
	res := RunE2(goldenCorpus(), ont, false)
	cases := []struct {
		name                 string
		got                  PR
		etrue, etotal, tinst int
	}{
		{"PreMedical", res.PreMedical, 26, 27, 28},
		{"OtherMedical", res.OtherMedical, 166, 188, 183},
		{"PreSurgical", res.PreSurgical, 6, 7, 15},
		{"OtherSurgical", res.OtherSurgical, 52, 77, 73},
	}
	for _, c := range cases {
		if c.got.ETrue != c.etrue || c.got.ETotal != c.etotal || c.got.TInst != c.tinst {
			t.Errorf("E2 %s drifted: ETrue=%d ETotal=%d TInst=%d, want %d/%d/%d",
				c.name, c.got.ETrue, c.got.ETotal, c.got.TInst, c.etrue, c.etotal, c.tinst)
		}
	}
}

func TestGoldenE3Smoking(t *testing.T) {
	res := RunE3(goldenCorpus(), 7)
	if got, want := res.Accuracy, 0.9488888888888889; math.Abs(got-want) > 1e-12 {
		t.Errorf("E3 accuracy drifted: %.16f, want %.16f", got, want)
	}
	if got, want := res.StdDev, 0.020000000000000028; math.Abs(got-want) > 1e-12 {
		t.Errorf("E3 stddev drifted: %.16f, want %.16f", got, want)
	}
	if res.MinFeatures != 3 || res.MaxFeatures != 5 {
		t.Errorf("E3 tree size drifted: features %d–%d, want 3–5",
			res.MinFeatures, res.MaxFeatures)
	}
	if res.Rounds != 10 || res.Folds != 5 {
		t.Errorf("E3 protocol changed: %d rounds × %d folds", res.Rounds, res.Folds)
	}
}

// TestGoldenE3Confusion pins E3's full confusion matrix, cell by cell,
// to the values the pre-refactor id3.CrossValidate produced. This is
// the backend-parity smoke: the ID3 path now runs through the
// classify.Backend interface, and any behavioral drift in the adapter —
// a changed shuffle stream, a differently-built feature map, a fold
// split off by one — moves at least one cell here.
func TestGoldenE3Confusion(t *testing.T) {
	res := RunE3(goldenCorpus(), 7)
	want := map[string]map[string]int{
		"current": {"current": 107, "former": 3, "never": 10},
		"former":  {"current": 10, "former": 40},
		"never":   {"never": 280},
	}
	for actual, row := range want {
		for pred, n := range row {
			if got := res.Confusion[actual][pred]; got != n {
				t.Errorf("E3 confusion[%s][%s] = %d, want %d", actual, pred, got, n)
			}
		}
	}
	total, wantTotal := 0, 0
	for _, row := range res.Confusion {
		for _, n := range row {
			total += n
		}
	}
	for _, row := range want {
		for _, n := range row {
			wantTotal += n
		}
	}
	if total != wantTotal {
		t.Errorf("E3 confusion total = %d, want %d (a new cell appeared)", total, wantTotal)
	}
	if res.Backend != "id3" {
		t.Errorf("E3 ran backend %q, want id3", res.Backend)
	}
}
