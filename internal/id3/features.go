package id3

import (
	"fmt"
	"strings"

	"repro/internal/lexicon"
	"repro/internal/linkgram"
	"repro/internal/pos"
	"repro/internal/textproc"
)

// Constituent is a sentence constituent role, derived from the link
// grammar parse (option 2 of §3.3: "Choose one or multiple sentence
// constituents: subject, verb, object, and supplement").
type Constituent int

// Constituent roles.
const (
	Subject Constituent = iota
	VerbRole
	Object
	Supplement
)

// FeatureOptions are the user-selectable extraction options of §3.3.
// The zero value selects nothing; use DefaultOptions for the paper's
// smoking configuration.
type FeatureOptions struct {
	// Option 1: parts of speech to extract.
	Verbs, Nouns, Adjectives, Adverbs bool
	// Option 2: sentence constituents to extract from. If none is set,
	// every constituent is used.
	Subject, Verb, Object, Supplement bool
	// Option 3: for a noun/adjective phrase, extract only the head word.
	HeadOnly bool
	// Option 4: use the lemma (uninflected form) of every word.
	UseLemma bool
	// Numeric Boolean features (the paper's proposed extension for fields
	// like alcohol use): for each threshold t two features are emitted,
	// "num<=t" and "num>t", set when some number in the text is ≤ t
	// (resp. > t).
	NumericThresholds []float64
}

// DefaultOptions is the configuration the paper reports for smoking
// behaviour: all parts of speech, all constituents, head-only disabled,
// lemma enabled.
func DefaultOptions() FeatureOptions {
	return FeatureOptions{
		Verbs: true, Nouns: true, Adjectives: true, Adverbs: true,
		UseLemma: true,
	}
}

// ExtractFeatures converts free text (one field of one record) into the
// Boolean feature map used by the ID3 classifier. It is a convenience
// wrapper around FeaturesFromSentences; pipeline code passes the analyzed
// section of a textproc.Document instead of re-splitting.
func ExtractFeatures(text string, opts FeatureOptions) map[string]bool {
	return FeaturesFromSentences(textproc.SplitSentences(text), opts)
}

// FeaturesFromSentences converts pre-analyzed sentences into the Boolean
// feature map used by the ID3 classifier. Sentences are tagged (and, when
// constituent options demand it, parsed) directly; pipeline code holding
// a Document section should call FeaturesFromSection so those analyses
// are shared with the other extractors.
func FeaturesFromSentences(sents []textproc.Sentence, opts FeatureOptions) map[string]bool {
	feats := map[string]bool{}
	for _, sent := range sents {
		tagged := pos.TagSentence(sent)
		extractSentence(sent, tagged, func() (*linkgram.Linkage, error) {
			return linkgram.Parse(tagged)
		}, opts, feats)
	}
	return feats
}

// FeaturesFromSection converts an analyzed Document section into the
// Boolean feature map, consuming the section's cached POS tagging and
// linkage: each sentence is tagged at most once and parsed at most once
// per Document regardless of how many consumers read it.
func FeaturesFromSection(sec *textproc.DocSection, opts FeatureOptions) map[string]bool {
	feats := map[string]bool{}
	for i, sent := range sec.Sentences() {
		extractSentence(sent, pos.TagSection(sec, i), func() (*linkgram.Linkage, error) {
			return linkgram.ParseSection(sec, i)
		}, opts, feats)
	}
	return feats
}

// extractSentence folds one tagged sentence into feats. parse supplies
// the sentence's linkage on demand (cached or direct); it is only invoked
// when a constituent option requires the parse.
func extractSentence(sent textproc.Sentence, tagged []pos.TaggedToken, parse func() (*linkgram.Linkage, error), opts FeatureOptions, feats map[string]bool) {
	// Constituent filter: parse the sentence; when the parse fails (or no
	// constituent option is set) every token passes the filter.
	wantConstituent := opts.Subject || opts.Verb || opts.Object || opts.Supplement
	var roles map[int]Constituent
	if wantConstituent {
		if lk, err := parse(); err == nil {
			roles = constituentRoles(lk, len(tagged))
		}
	}

	// Head-word filter: the last noun of each maximal noun run, the last
	// adjective of each maximal adjective run not followed by a noun.
	heads := map[int]bool{}
	if opts.HeadOnly {
		heads = headWords(tagged)
	}

	for i, tok := range tagged {
		if tok.Kind != textproc.Word {
			continue
		}
		if !posSelected(tok.Tag, opts) {
			continue
		}
		if roles != nil {
			if !constituentSelected(roles[i], opts) {
				continue
			}
		}
		if opts.HeadOnly && (tok.Tag.IsNoun() || tok.Tag.IsAdjective()) && !heads[i] {
			continue
		}
		w := strings.ToLower(tok.Text)
		if opts.UseLemma {
			w = lexicon.Lemma(w, lemmaClass(tok.Tag))
		}
		feats[w] = true
	}

	// Numeric Boolean features.
	if len(opts.NumericThresholds) > 0 {
		for _, ann := range textproc.AnnotateNumbers(sent) {
			for _, th := range opts.NumericThresholds {
				v := ann.Value
				if ann.IsRange {
					// A range like "1-2" sets the ≤ feature from its upper
					// bound and the > feature from its lower bound.
					if ann.Value2 <= th {
						feats[fmt.Sprintf("num<=%g", th)] = true
					}
					if ann.Value > th {
						feats[fmt.Sprintf("num>%g", th)] = true
					}
					continue
				}
				if v <= th {
					feats[fmt.Sprintf("num<=%g", th)] = true
				} else {
					feats[fmt.Sprintf("num>%g", th)] = true
				}
			}
		}
	}
}

func posSelected(t pos.Tag, opts FeatureOptions) bool {
	switch {
	case t.IsVerb():
		return opts.Verbs
	case t.IsNoun():
		return opts.Nouns
	case t.IsAdjective():
		return opts.Adjectives
	case t.IsAdverb():
		return opts.Adverbs
	default:
		return false
	}
}

func constituentSelected(c Constituent, opts FeatureOptions) bool {
	switch c {
	case Subject:
		return opts.Subject
	case VerbRole:
		return opts.Verb
	case Object:
		return opts.Object
	default:
		return opts.Supplement
	}
}

func lemmaClass(t pos.Tag) lexicon.POSClass {
	switch {
	case t.IsVerb():
		return lexicon.Verb
	case t.IsNoun():
		return lexicon.Noun
	case t.IsAdjective():
		return lexicon.Adjective
	default:
		return lexicon.Any
	}
}

// constituentRoles assigns each token index a constituent role from the
// linkage: the S link's left word (plus its modifiers) is the subject,
// verbs are the verb, the O link's right word (plus modifiers) is the
// object, everything else is supplement.
func constituentRoles(lk *linkgram.Linkage, ntokens int) map[int]Constituent {
	roles := make(map[int]Constituent, ntokens)
	for i := 0; i < ntokens; i++ {
		roles[i] = Supplement
	}
	// Mark verbs.
	for _, w := range lk.Words {
		if w.TokenIndex >= 0 && w.Tag.IsVerb() {
			roles[w.TokenIndex] = VerbRole
		}
	}
	// Subject and object cores from S and O links. A parse with neither
	// link carries no constituent structure worth filtering on; report
	// that by returning nil so the caller falls back to all words.
	subjCore, objCore := -1, -1
	for _, l := range lk.Links {
		switch l.Label {
		case "S":
			subjCore = l.Left
		case "O":
			objCore = l.Right
		}
	}
	if subjCore < 0 && objCore < 0 {
		return nil
	}
	// Spread the role over pre-modifiers connected by A/AN/D links.
	assign := func(core int, role Constituent) {
		if core < 0 {
			return
		}
		group := map[int]bool{core: true}
		for changed := true; changed; {
			changed = false
			for _, l := range lk.Links {
				if (l.Label == "A" || l.Label == "AN" || l.Label == "D") && group[l.Right] && !group[l.Left] {
					group[l.Left] = true
					changed = true
				}
			}
		}
		for wi := range group {
			if ti := lk.Words[wi].TokenIndex; ti >= 0 {
				roles[ti] = role
			}
		}
	}
	assign(subjCore, Subject)
	assign(objCore, Object)
	return roles
}

// headWords returns the indices of head nouns/adjectives: the final word
// of each maximal {JJ,NN}* run ending in a noun, or the final adjective
// of an adjective-only run.
func headWords(tagged []pos.TaggedToken) map[int]bool {
	heads := map[int]bool{}
	i := 0
	for i < len(tagged) {
		if !(tagged[i].Tag.IsNoun() || tagged[i].Tag.IsAdjective()) {
			i++
			continue
		}
		j := i
		for j+1 < len(tagged) && (tagged[j+1].Tag.IsNoun() || tagged[j+1].Tag.IsAdjective()) {
			j++
		}
		heads[j] = true
		i = j + 1
	}
	return heads
}
