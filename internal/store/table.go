package store

import (
	"bytes"
	"errors"
	"fmt"
)

// Column describes one table column.
type Column struct {
	Name string
	Type ColType
}

// Schema describes a table: its columns and the primary-key column index.
type Schema struct {
	Name    string
	Columns []Column
	Primary int // index into Columns of the primary key
}

// colIndex returns the index of the named column, or -1.
func (s *Schema) colIndex(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// validate checks a row against the schema.
func (s *Schema) validate(row Row) error {
	if len(row) != len(s.Columns) {
		return fmt.Errorf("store: table %s: row has %d values, schema has %d columns", s.Name, len(row), len(s.Columns))
	}
	for i, v := range row {
		if v.Type != s.Columns[i].Type {
			return fmt.Errorf("%w: column %s is %s, got %s", ErrTypeMism, s.Columns[i].Name, s.Columns[i].Type, v.Type)
		}
	}
	return nil
}

// Table is an in-memory table backed by the DB's write-ahead log.
type Table struct {
	schema    Schema
	db        *DB
	primary   *btree            // pk key bytes → Row
	secondary map[string]*btree // column name → key bytes → map[string]Row (pk-encoded → row)
}

// Errors returned by table operations.
var (
	ErrDuplicate = errors.New("store: duplicate primary key")
	ErrNotFound  = errors.New("store: not found")
	ErrNoIndex   = errors.New("store: no index on column")
	ErrPKChange  = errors.New("store: update may not change the primary key")
)

// Schema returns a copy of the table's schema.
func (t *Table) Schema() Schema { return t.schema }

// Len returns the number of rows.
func (t *Table) Len() int { return t.primary.Len() }

// Insert adds a row. The primary key must be unique.
func (t *Table) Insert(row Row) error {
	if err := t.schema.validate(row); err != nil {
		return err
	}
	key := encodeKey(row[t.schema.Primary])
	if _, exists := t.primary.Get(key); exists {
		return fmt.Errorf("%w: %s", ErrDuplicate, row[t.schema.Primary])
	}
	if err := t.db.logInsert(t.schema.Name, row); err != nil {
		return err
	}
	t.apply(key, row)
	return nil
}

// InsertBatch adds many rows with a single write-ahead-log record. The
// whole batch is validated (schema and primary-key uniqueness, including
// against other rows of the same batch) before anything is logged or
// applied, so the batch is all-or-nothing: on error the table is
// unchanged, and on crash recovery a torn batch record is dropped
// atomically by the WAL's CRC framing.
func (t *Table) InsertBatch(rows []Row) error {
	if len(rows) == 0 {
		return nil
	}
	keys := make([][]byte, len(rows))
	inBatch := make(map[string]bool, len(rows))
	for i, row := range rows {
		if err := t.schema.validate(row); err != nil {
			return err
		}
		key := encodeKey(row[t.schema.Primary])
		if _, exists := t.primary.Get(key); exists || inBatch[string(key)] {
			return fmt.Errorf("%w: %s", ErrDuplicate, row[t.schema.Primary])
		}
		inBatch[string(key)] = true
		keys[i] = key
	}
	if err := t.db.logInsertBatch(t.schema.Name, rows); err != nil {
		return err
	}
	for i, row := range rows {
		t.apply(keys[i], row)
	}
	return nil
}

// apply performs the in-memory insert (used by Insert and WAL replay).
func (t *Table) apply(key []byte, row Row) {
	t.primary.Put(key, row)
	for col, idx := range t.secondary {
		ci := t.schema.colIndex(col)
		sk := encodeKey(row[ci])
		t.indexAdd(idx, sk, key, row)
	}
}

// Get returns the row with the given primary key.
func (t *Table) Get(pk Value) (Row, error) {
	v, ok := t.primary.Get(encodeKey(pk))
	if !ok {
		return nil, ErrNotFound
	}
	return v.(Row), nil
}

// Delete removes the row with the given primary key.
func (t *Table) Delete(pk Value) error {
	key := encodeKey(pk)
	v, ok := t.primary.Get(key)
	if !ok {
		return ErrNotFound
	}
	if err := t.db.logDelete(t.schema.Name, pk); err != nil {
		return err
	}
	t.applyDelete(key, v.(Row))
	return nil
}

func (t *Table) applyDelete(key []byte, row Row) {
	t.primary.Delete(key)
	for col, idx := range t.secondary {
		ci := t.schema.colIndex(col)
		sk := encodeKey(row[ci])
		t.indexRemove(idx, sk, key)
	}
}

// CreateIndex builds a non-unique secondary index on the named column.
func (t *Table) CreateIndex(col string) error {
	if t.schema.colIndex(col) < 0 {
		return fmt.Errorf("store: table %s has no column %s", t.schema.Name, col)
	}
	if _, ok := t.secondary[col]; ok {
		return nil
	}
	idx := newBtree()
	ci := t.schema.colIndex(col)
	t.primary.Ascend(func(key []byte, val interface{}) bool {
		row := val.(Row)
		t.indexAdd(idx, encodeKey(row[ci]), key, row)
		return true
	})
	t.secondary[col] = idx
	return nil
}

// postingList is the value type of secondary index entries: the set of
// rows sharing one indexed value, keyed by primary-key bytes.
type postingList struct {
	rows map[string]Row
}

func (t *Table) indexAdd(idx *btree, sk, pk []byte, row Row) {
	v, ok := idx.Get(sk)
	if !ok {
		v = &postingList{rows: make(map[string]Row, 1)}
		idx.Put(sk, v)
	}
	v.(*postingList).rows[string(pk)] = row
}

func (t *Table) indexRemove(idx *btree, sk, pk []byte) {
	if v, ok := idx.Get(sk); ok {
		pl := v.(*postingList)
		delete(pl.rows, string(pk))
		if len(pl.rows) == 0 {
			idx.Delete(sk)
		}
	}
}

// Lookup returns all rows whose indexed column equals v, using the
// secondary index on col. The column must have an index.
func (t *Table) Lookup(col string, v Value) ([]Row, error) {
	idx, ok := t.secondary[col]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoIndex, col)
	}
	pv, ok := idx.Get(encodeKey(v))
	if !ok {
		return nil, nil
	}
	pl := pv.(*postingList)
	rows := make([]Row, 0, len(pl.rows))
	// Deterministic order: ascending primary key.
	keys := make([]string, 0, len(pl.rows))
	for k := range pl.rows {
		keys = append(keys, k)
	}
	sortKeys(keys)
	for _, k := range keys {
		rows = append(rows, pl.rows[k])
	}
	return rows, nil
}

// Scan calls fn for every row in ascending primary-key order until fn
// returns false. It is the linear-scan baseline for the index ablation.
func (t *Table) Scan(fn func(Row) bool) {
	t.primary.Ascend(func(_ []byte, val interface{}) bool {
		return fn(val.(Row))
	})
}

// ScanRange calls fn for rows with primary key in [lo, hi).
func (t *Table) ScanRange(lo, hi Value, fn func(Row) bool) {
	t.primary.AscendRange(encodeKey(lo), encodeKey(hi), func(_ []byte, val interface{}) bool {
		return fn(val.(Row))
	})
}

// Select returns all rows matching a predicate, by full scan.
func (t *Table) Select(pred func(Row) bool) []Row {
	var out []Row
	t.Scan(func(r Row) bool {
		if pred(r) {
			out = append(out, r)
		}
		return true
	})
	return out
}

func sortKeys(ks []string) {
	for i := 1; i < len(ks); i++ {
		for j := i; j > 0 && bytes.Compare([]byte(ks[j]), []byte(ks[j-1])) < 0; j-- {
			ks[j], ks[j-1] = ks[j-1], ks[j]
		}
	}
}
