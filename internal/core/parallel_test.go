package core

import (
	"context"
	"reflect"
	"slices"
	"sync"
	"testing"

	"repro/internal/records"
)

func TestProcessAllMatchesSequential(t *testing.T) {
	recs := records.Generate(records.GenOptions{N: 12, Seed: 3})
	sys, err := NewSystem(Config{Strategy: LinkGrammar, ResolveSynonyms: true})
	if err != nil {
		t.Fatal(err)
	}
	sys.TrainSmoking(recs)

	seq := sys.ProcessAll(recs, 1)
	par := sys.ProcessAll(recs, 4)
	if len(seq) != len(par) {
		t.Fatalf("lengths %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if !reflect.DeepEqual(seq[i], par[i]) {
			t.Errorf("record %d differs:\nseq: %+v\npar: %+v", i, seq[i], par[i])
		}
	}
}

func TestProcessStreamPreservesOrder(t *testing.T) {
	recs := records.Generate(records.GenOptions{N: 20, Seed: 5})
	sys, err := NewSystem(Config{Strategy: LinkGrammar, ResolveSynonyms: true})
	if err != nil {
		t.Fatal(err)
	}
	want := sys.ProcessAll(recs, 1)
	next := 0
	for i, ex := range sys.ProcessStream(context.Background(), slices.Values(recs), 7) {
		if i != next {
			t.Fatalf("yielded index %d, want %d", i, next)
		}
		if !reflect.DeepEqual(ex, want[i]) {
			t.Errorf("record %d differs from sequential result", i)
		}
		next++
	}
	if next != len(recs) {
		t.Fatalf("stream yielded %d records, want %d", next, len(recs))
	}
}

func TestProcessStreamEarlyStop(t *testing.T) {
	recs := records.Generate(records.GenOptions{N: 30, Seed: 5})
	sys, err := NewSystem(Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Breaking out of the loop must release every worker goroutine; the
	// -race run and the test's own completion guard against leaks and
	// deadlocks here.
	seen := 0
	for range sys.ProcessStream(context.Background(), slices.Values(recs), 4) {
		seen++
		if seen == 3 {
			break
		}
	}
	if seen != 3 {
		t.Fatalf("consumed %d, want 3", seen)
	}
}

func TestProcessStreamMoreWorkersThanRecords(t *testing.T) {
	recs := records.Generate(records.GenOptions{N: 3, Seed: 9})
	sys, err := NewSystem(Config{})
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	for i := range sys.ProcessStream(context.Background(), slices.Values(recs), 64) {
		if i != got {
			t.Fatalf("index %d out of order (want %d)", i, got)
		}
		got++
	}
	if got != len(recs) {
		t.Fatalf("yielded %d, want %d", got, len(recs))
	}
}

// TestProcessConcurrentSharedSystem drives one System from many
// goroutines at once; run with -race it verifies the shared extractors
// really are read-only after construction and training.
func TestProcessConcurrentSharedSystem(t *testing.T) {
	recs := records.Generate(records.GenOptions{N: 8, Seed: 11})
	sys, err := NewSystem(Config{Strategy: LinkGrammar, ResolveSynonyms: true})
	if err != nil {
		t.Fatal(err)
	}
	sys.TrainSmoking(recs)
	want := sys.ProcessAll(recs, 1)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if g%2 == 0 {
				got := sys.ProcessAll(recs, 3)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("goroutine %d: ProcessAll diverged", g)
				}
				return
			}
			for i, r := range recs {
				if got := sys.Process(r.Text); !reflect.DeepEqual(got, want[i]) {
					t.Errorf("goroutine %d: record %d diverged", g, i)
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestProcessAllWorkerClamp(t *testing.T) {
	recs := records.Generate(records.GenOptions{N: 2, Seed: 3})
	sys, err := NewSystem(Config{})
	if err != nil {
		t.Fatal(err)
	}
	// More workers than records and zero workers must both behave.
	if got := sys.ProcessAll(recs, 16); len(got) != 2 {
		t.Errorf("len = %d", len(got))
	}
	if got := sys.ProcessAll(recs, 0); len(got) != 2 {
		t.Errorf("len = %d", len(got))
	}
	if got := sys.ProcessAll(nil, 4); len(got) != 0 {
		t.Errorf("nil corpus → %d", len(got))
	}
}
