package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/records"
)

// Extract the numeric fields of a vitals section with the paper's
// link-grammar association.
func ExampleNumericExtractor_Extract() {
	x := core.NewNumericExtractor(core.LinkGrammar)
	got := x.Extract("Vitals:  Blood pressure is 144/90, pulse of 84, and weight of 154.\n")
	for _, attr := range []string{records.AttrBloodPressure, records.AttrPulse, records.AttrWeight} {
		v := got[attr]
		if v.Ratio {
			fmt.Printf("%s = %g/%g\n", attr, v.Value, v.Value2)
		} else {
			fmt.Printf("%s = %g\n", attr, v.Value)
		}
	}
	// Output:
	// blood pressure = 144/90
	// pulse = 84
	// weight = 154
}
