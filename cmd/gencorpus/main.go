// Command gencorpus generates a synthetic consultation-note corpus with
// gold annotations, in the format of the paper's appendix.
//
// Usage:
//
//	gencorpus -out corpus/ [-n 50] [-seed 2005] [-diversity 0]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/records"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gencorpus: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run parses flags, generates the corpus, writes it to disk, and
// reports to out.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("gencorpus", flag.ExitOnError)
	outDir := fs.String("out", "corpus", "output directory")
	n := fs.Int("n", 50, "number of records")
	seed := fs.Int64("seed", 2005, "random seed")
	diversity := fs.Float64("diversity", 0, "writing-style diversity in [0,1]")
	show := fs.Bool("show", false, "print the first record to stdout")
	fs.Parse(args)
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}

	opts := records.DefaultGenOptions()
	opts.N = *n
	opts.Seed = *seed
	opts.StyleDiversity = *diversity

	recs := records.Generate(opts)
	if err := records.WriteCorpus(*outDir, recs); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %d records and gold.json to %s\n", len(recs), *outDir)
	if *show && len(recs) > 0 {
		fmt.Fprintln(out, "---")
		fmt.Fprint(out, recs[0].Text)
	}
	return nil
}
