package store

import (
	"path/filepath"
	"sync"
	"testing"
)

func TestCompactShrinksLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.db")
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.CreateTable(testSchema())
	// Churn: insert then delete most rows.
	for i := 0; i < 200; i++ {
		if err := tbl.Insert(Row{Int(int64(i)), Str("n"), Str("p"), Float(0), Bool(true)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 180; i++ {
		if err := tbl.Delete(Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	before := db.LogSize()
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	after := db.LogSize()
	if after >= before {
		t.Errorf("compaction did not shrink log: %d → %d", before, after)
	}
	// Live data intact.
	if tbl.Len() != 20 {
		t.Fatalf("Len after compact = %d", tbl.Len())
	}
	// New writes must work post-compaction.
	if err := tbl.Insert(Row{Int(1000), Str("n"), Str("p"), Float(0), Bool(true)}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: compacted log must replay to the same state.
	db2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.RecoveredWithLoss() {
		t.Error("compacted log reported loss")
	}
	tbl2, _ := db2.Table("concepts")
	if tbl2.Len() != 21 {
		t.Fatalf("recovered Len = %d, want 21", tbl2.Len())
	}
	for i := 180; i < 200; i++ {
		if _, err := tbl2.Get(Int(int64(i))); err != nil {
			t.Errorf("row %d lost in compaction", i)
		}
	}
	if _, err := tbl2.Get(Int(5)); err != ErrNotFound {
		t.Error("deleted row resurrected by compaction")
	}
}

func TestCompactInMemoryNoop(t *testing.T) {
	db := OpenMemory()
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if db.LogSize() != 0 {
		t.Error("in-memory LogSize != 0")
	}
}

func TestCompactPreservesMultipleTables(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.db")
	db, _ := Open(path)
	s2 := testSchema()
	s2.Name = "second"
	t1, _ := db.CreateTable(testSchema())
	t2, _ := db.CreateTable(s2)
	t1.Insert(Row{Int(1), Str("a"), Str("b"), Float(0), Bool(true)})
	t2.Insert(Row{Int(2), Str("c"), Str("d"), Float(0), Bool(false)})
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	names := db2.TableNames()
	if len(names) != 2 {
		t.Fatalf("tables after compact+reopen: %v", names)
	}
	r1, err := db2.Table("concepts")
	if err != nil || r1.Len() != 1 {
		t.Error("table one lost")
	}
	r2, err := db2.Table("second")
	if err != nil || r2.Len() != 1 {
		t.Error("table two lost")
	}
}

func TestConcurrentReadsDuringWrites(t *testing.T) {
	// The DB guards its table map with a RWMutex; tables themselves are
	// not concurrency-safe for mixed read/write, but concurrent reads on
	// a settled table must be safe.
	db := OpenMemory()
	tbl, _ := db.CreateTable(testSchema())
	for i := 0; i < 500; i++ {
		tbl.Insert(Row{Int(int64(i)), Str("n"), Str("p"), Float(0), Bool(true)})
	}
	tbl.CreateIndex("norm")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if _, err := tbl.Get(Int(int64((i * w) % 500))); err != nil {
					t.Errorf("Get: %v", err)
					return
				}
				if _, err := tbl.Lookup("norm", Str("n")); err != nil {
					t.Errorf("Lookup: %v", err)
					return
				}
			}
		}(w + 1)
	}
	wg.Wait()
}
