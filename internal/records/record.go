// Package records models semi-structured clinical consultation notes and
// generates the synthetic corpus that substitutes for the paper's fifty
// proprietary breast-clinic records. Records follow the exact section
// layout of the paper's appendix; gold annotations (the "medical
// student's independent manual processing") are emitted by construction.
package records

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Numeric attribute names. These are the paper's eight numeric attributes
// of interest; blood pressure is one attribute with two components.
const (
	AttrAge           = "age"
	AttrMenarche      = "menarche age"
	AttrGravida       = "gravida"
	AttrPara          = "para"
	AttrFirstBirthAge = "first live birth age"
	AttrBloodPressure = "blood pressure"
	AttrPulse         = "pulse"
	AttrWeight        = "weight"
)

// NumericAttrs lists the eight numeric attributes in report order.
var NumericAttrs = []string{
	AttrAge, AttrMenarche, AttrGravida, AttrPara,
	AttrFirstBirthAge, AttrBloodPressure, AttrPulse, AttrWeight,
}

// Categorical attribute values.
const (
	SmokingNever   = "never"
	SmokingFormer  = "former"
	SmokingCurrent = "current"

	AlcoholNever  = "never"
	AlcoholSocial = "social"
	AlcoholLight  = "1-2 day per week"
	AlcoholHeavy  = ">2 day per week"

	ShapeThin       = "thin"
	ShapeNormal     = "normal"
	ShapeOverweight = "overweight"
	ShapeObese      = "obese"

	// Binary categorical attributes (six of the paper's twelve
	// categorical attributes are binary classifications; the paper left
	// them unfinished — we implement two representatives).
	FamilyBCPositive = "positive"
	FamilyBCNegative = "negative"

	DrugUseNone     = "none"
	DrugUsePositive = "positive"
)

// NumValue is a numeric gold value; ratio attributes (blood pressure)
// carry a second component.
type NumValue struct {
	Value  float64 `json:"value"`
	Value2 float64 `json:"value2,omitempty"` // diastolic for blood pressure
}

// Gold is the reference annotation for one record: every attribute the
// extraction system is evaluated on.
type Gold struct {
	Numeric      map[string]NumValue `json:"numeric"`
	PastMedical  []string            `json:"past_medical"`  // preferred concept names
	PastSurgical []string            `json:"past_surgical"` // preferred concept names
	Medications  []string            `json:"medications"`   // preferred concept names
	Smoking      string              `json:"smoking"`       // "" when the record has no smoking information
	Alcohol      string              `json:"alcohol"`       // "" when absent
	Shape        string              `json:"shape"`
	FamilyBC     string              `json:"family_bc"` // family history of breast cancer: positive/negative
	DrugUse      string              `json:"drug_use"`  // none/positive
}

// Record is one consultation note with its gold annotation.
type Record struct {
	ID   int    `json:"id"`
	Text string `json:"text"`
	Gold Gold   `json:"gold"`
}

// SplitPredefined partitions a gold term list into (predefined, other)
// against a predefined attribute list, mirroring the paper's four
// medical-term attributes.
func SplitPredefined(terms, predefined []string) (pre, other []string) {
	preSet := map[string]bool{}
	for _, p := range predefined {
		preSet[p] = true
	}
	for _, t := range terms {
		if preSet[t] {
			pre = append(pre, t)
		} else {
			other = append(other, t)
		}
	}
	sort.Strings(pre)
	sort.Strings(other)
	return pre, other
}

// WriteCorpus writes each record text as patientNNN.txt plus a gold.json
// with all annotations, mirroring the paper's "patient records for input
// are stored in separate ASCII text files".
func WriteCorpus(dir string, recs []Record) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, r := range recs {
		name := filepath.Join(dir, fmt.Sprintf("patient%03d.txt", r.ID))
		if err := os.WriteFile(name, []byte(r.Text), 0o644); err != nil {
			return err
		}
	}
	golds, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "gold.json"), golds, 0o644)
}

// ReadCorpus loads a corpus written by WriteCorpus.
func ReadCorpus(dir string) ([]Record, error) {
	raw, err := os.ReadFile(filepath.Join(dir, "gold.json"))
	if err != nil {
		return nil, err
	}
	var recs []Record
	if err := json.Unmarshal(raw, &recs); err != nil {
		return nil, err
	}
	return recs, nil
}
