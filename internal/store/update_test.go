package store

import (
	"path/filepath"
	"testing"
)

func TestUpdate(t *testing.T) {
	db := OpenMemory()
	tbl, _ := db.CreateTable(testSchema())
	tbl.Insert(Row{Int(1), Str("old"), Str("p"), Float(1), Bool(true)})
	tbl.CreateIndex("norm")

	if err := tbl.Update(Int(1), Row{Int(1), Str("new"), Str("p"), Float(2), Bool(false)}); err != nil {
		t.Fatal(err)
	}
	got, err := tbl.Get(Int(1))
	if err != nil || got[1].S != "new" || got[3].F != 2 {
		t.Fatalf("after update: %v, %v", got, err)
	}
	// Secondary index must follow.
	if rows, _ := tbl.Lookup("norm", Str("old")); len(rows) != 0 {
		t.Error("stale index entry after update")
	}
	if rows, _ := tbl.Lookup("norm", Str("new")); len(rows) != 1 {
		t.Error("missing index entry after update")
	}
	// Errors.
	if err := tbl.Update(Int(99), Row{Int(99), Str("x"), Str("p"), Float(0), Bool(true)}); err != ErrNotFound {
		t.Errorf("update missing row: %v", err)
	}
	if err := tbl.Update(Int(1), Row{Int(2), Str("x"), Str("p"), Float(0), Bool(true)}); err != ErrPKChange {
		t.Errorf("pk change: %v", err)
	}
	bad := Row{Int(1), Int(5), Str("p"), Float(0), Bool(true)}
	if err := tbl.Update(Int(1), bad); err == nil {
		t.Error("type mismatch accepted in update")
	}
}

func TestUpsert(t *testing.T) {
	db := OpenMemory()
	tbl, _ := db.CreateTable(testSchema())
	if err := tbl.Upsert(Row{Int(1), Str("a"), Str("p"), Float(0), Bool(true)}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Upsert(Row{Int(1), Str("b"), Str("p"), Float(0), Bool(true)}); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d after double upsert", tbl.Len())
	}
	got, _ := tbl.Get(Int(1))
	if got[1].S != "b" {
		t.Errorf("upsert did not replace: %v", got)
	}
}

func TestUpdatePersistsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "u.db")
	db, _ := Open(path)
	tbl, _ := db.CreateTable(testSchema())
	tbl.Insert(Row{Int(1), Str("a"), Str("p"), Float(0), Bool(true)})
	tbl.Update(Int(1), Row{Int(1), Str("b"), Str("p"), Float(9), Bool(false)})
	db.Close()

	db2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tbl2, _ := db2.Table("concepts")
	got, err := tbl2.Get(Int(1))
	if err != nil || got[1].S != "b" || got[3].F != 9 {
		t.Fatalf("replayed update: %v, %v", got, err)
	}
	if tbl2.Len() != 1 {
		t.Fatalf("Len = %d", tbl2.Len())
	}
}

func TestLookupRange(t *testing.T) {
	db := OpenMemory()
	tbl, _ := db.CreateTable(testSchema())
	for i := 0; i < 20; i++ {
		norm := string(rune('a' + i%5)) // a..e repeating
		tbl.Insert(Row{Int(int64(i)), Str(norm), Str("p"), Float(0), Bool(true)})
	}
	tbl.CreateIndex("norm")
	rows, err := tbl.LookupRange("norm", Str("b"), Str("d"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 { // b and c, 4 rows each
		t.Fatalf("range rows = %d, want 8", len(rows))
	}
	for _, r := range rows {
		if r[1].S != "b" && r[1].S != "c" {
			t.Errorf("out-of-range row %v", r)
		}
	}
	if _, err := tbl.LookupRange("preferred", Str("a"), Str("z")); err != ErrNoIndex {
		t.Errorf("range without index: %v", err)
	}
}

func TestStats(t *testing.T) {
	db := OpenMemory()
	tbl, _ := db.CreateTable(testSchema())
	tbl.Insert(Row{Int(1), Str("a"), Str("p"), Float(0), Bool(true)})
	tbl.CreateIndex("norm")
	tbl.CreateIndex("preferred")
	s := tbl.Stats()
	if s.Rows != 1 || s.Indexes != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if len(s.IndexNames) != 2 || s.IndexNames[0] != "norm" {
		t.Errorf("index names = %v", s.IndexNames)
	}
}
