package lexicon

import "strings"

// Variants generates the inflected variants of a word: plural and third
// person singular, past tense, gerund. It is used to widen recall when
// searching feature names in text; the paper: "Regarding infected
// variants, we used WordNet and some heuristics to automatically generate
// them from original concepts."
func Variants(w string) []string {
	w = strings.ToLower(w)
	if w == "" {
		return nil
	}
	set := map[string]bool{w: true}
	add := func(s string) {
		if s != "" {
			set[s] = true
		}
	}
	add(Pluralize(w))
	add(PastTense(w))
	add(Gerund(w))
	// Reverse map of irregulars: include every irregular form whose lemma
	// is w.
	for form, base := range irregularNouns {
		if base == w {
			add(form)
		}
	}
	for form, base := range irregularVerbs {
		if base == w {
			add(form)
		}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sortStrings(out)
	return out
}

// PhraseVariants generates variants of a multi-word phrase by inflecting
// its head (final) word: "live birth" → {"live birth", "live births", ...}.
func PhraseVariants(phrase string) []string {
	phrase = strings.ToLower(strings.TrimSpace(phrase))
	words := strings.Fields(phrase)
	if len(words) == 0 {
		return nil
	}
	if len(words) == 1 {
		return Variants(words[0])
	}
	head := words[len(words)-1]
	prefix := strings.Join(words[:len(words)-1], " ") + " "
	var out []string
	for _, v := range Variants(head) {
		out = append(out, prefix+v)
	}
	return out
}

// Pluralize returns the regular plural of a noun.
func Pluralize(w string) string {
	if w == "" {
		return w
	}
	for form, base := range irregularNouns {
		if base == w {
			return form
		}
	}
	switch {
	case strings.HasSuffix(w, "y") && len(w) > 1 && isConsonant(w[len(w)-2]):
		return w[:len(w)-1] + "ies"
	case strings.HasSuffix(w, "s"), strings.HasSuffix(w, "x"), strings.HasSuffix(w, "z"),
		strings.HasSuffix(w, "ch"), strings.HasSuffix(w, "sh"):
		return w + "es"
	default:
		return w + "s"
	}
}

// PastTense returns the regular past tense of a verb.
func PastTense(w string) string {
	if w == "" {
		return w
	}
	for form, base := range irregularVerbs {
		if base == w && strings.HasSuffix(form, "ed") {
			return form
		}
	}
	switch {
	case strings.HasSuffix(w, "e"):
		return w + "d"
	case strings.HasSuffix(w, "y") && len(w) > 1 && isConsonant(w[len(w)-2]):
		return w[:len(w)-1] + "ied"
	case len(w) >= 3 && isConsonant(w[len(w)-1]) && isVowel(w[len(w)-2]) && isConsonant(w[len(w)-3]) && shouldDouble(w):
		return w + string(w[len(w)-1]) + "ed"
	default:
		return w + "ed"
	}
}

// Gerund returns the -ing form of a verb.
func Gerund(w string) string {
	if w == "" {
		return w
	}
	switch {
	case strings.HasSuffix(w, "ie"):
		return w[:len(w)-2] + "ying"
	case strings.HasSuffix(w, "e") && !strings.HasSuffix(w, "ee"):
		return w[:len(w)-1] + "ing"
	case len(w) >= 3 && isConsonant(w[len(w)-1]) && isVowel(w[len(w)-2]) && isConsonant(w[len(w)-3]) && shouldDouble(w):
		return w + string(w[len(w)-1]) + "ing"
	default:
		return w + "ing"
	}
}

// shouldDouble reports whether a short verb's final consonant doubles
// before -ed/-ing (stop → stopped, but visit → visited). The heuristic:
// double only monosyllabic-looking stems (≤4 letters) whose final
// consonant is not w, x, or y.
func shouldDouble(w string) bool {
	c := w[len(w)-1]
	if c == 'w' || c == 'x' || c == 'y' {
		return false
	}
	return len(w) <= 4
}

// sortStrings is an insertion sort to avoid importing sort for tiny
// slices.
func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}
