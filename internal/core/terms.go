package core

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/lexicon"
	"repro/internal/ontology"
	"repro/internal/pos"
	"repro/internal/textproc"
)

// TermExtractor extracts multi-word medical terms from history sections
// using the paper's §3.2 method: POS-tag each sentence, propose candidate
// spans with the ordered patterns JJ NN NN / NN NN / JJ NN / NN,
// normalize, and accept candidates found in the ontology.
type TermExtractor struct {
	Ont *ontology.Ontology
	// ResolveSynonyms controls predefined-attribute assignment: when
	// true, any surface form of a predefined concept counts as
	// predefined; when false (the paper's evaluated configuration — "this
	// problem can be solved by introducing synonyms"), only surfaces that
	// normalize to the predefined name itself do.
	ResolveSynonyms bool
	// FilterNegated drops terms inside a negation scope ("No history of
	// stroke."). The paper's system lacks this, so it defaults off; the
	// A7 ablation measures the precision it buys.
	FilterNegated bool

	// preSets caches compiled predefined-name sets keyed by list
	// content, so repeated records against the same predefined list
	// (the normal pipeline shape) don't re-normalize and re-look-up
	// every name per record.
	preSets sync.Map // string (joined names) → *predefinedSet
}

// predefinedSet is a compiled predefined-name list: the normalized
// surface forms and (for synonym resolution) the CUIs they resolve to.
type predefinedSet struct {
	norm map[string]bool
	cui  map[string]bool
}

var emptyPredefined = &predefinedSet{}

// predefined returns the compiled set for a predefined-name list,
// building and caching it on first use. The key is the list's content
// (names joined on an unprintable separator), so reused or rebuilt
// backing arrays can never serve a stale set.
func (x *TermExtractor) predefined(names []string) *predefinedSet {
	if len(names) == 0 {
		return emptyPredefined
	}
	key := strings.Join(names, "\x1f")
	if v, ok := x.preSets.Load(key); ok {
		return v.(*predefinedSet)
	}
	s := &predefinedSet{norm: map[string]bool{}, cui: map[string]bool{}}
	for _, p := range names {
		s.norm[lexicon.Normalize(p)] = true
		if c := x.Ont.Lookup(p); c != nil {
			s.cui[c.CUI] = true
		}
	}
	v, _ := x.preSets.LoadOrStore(key, s)
	return v.(*predefinedSet)
}

// ExtractedTerm is one ontology-confirmed term.
type ExtractedTerm struct {
	Surface    string // the words as they appear in the text
	Concept    *ontology.Concept
	Predefined bool
}

// termPatterns are the paper's ordered POS patterns, longest first so
// multi-word terms are not fragmented.
var termPatterns = [][]func(pos.Tag) bool{
	{isJJ, isNN, isNN},
	{isNN, isNN},
	{isJJ, isNN},
	{isNN},
}

func isJJ(t pos.Tag) bool { return t.IsAdjective() }
func isNN(t pos.Tag) bool { return t.IsNoun() }

// Extract finds the medical terms of one section body and classifies each
// as predefined or other against the given predefined name list. It is a
// convenience wrapper around ExtractSentences for callers holding raw
// text; pipeline code passes the analyzed sentences of a
// textproc.Document section instead.
func (x *TermExtractor) Extract(body string, predefined []string) []ExtractedTerm {
	return x.ExtractSentences(textproc.SplitSentences(body), predefined)
}

// ExtractSentences finds the medical terms of pre-analyzed sentences and
// classifies each as predefined or other. Sentences are tagged directly;
// pipeline code holding a Document section should call ExtractSection so
// the tagging is shared with the other extractors.
func (x *TermExtractor) ExtractSentences(sents []textproc.Sentence, predefined []string) []ExtractedTerm {
	return x.extract(sents, x.predefined(predefined), func(i int) []pos.TaggedToken {
		return pos.TagSentence(sents[i])
	})
}

// ExtractSection finds the medical terms of an analyzed Document section,
// consuming the section's cached POS tagging: each sentence is tagged at
// most once per Document regardless of how many extractors read it.
func (x *TermExtractor) ExtractSection(sec *textproc.DocSection, predefined []string) []ExtractedTerm {
	sents := sec.Sentences()
	return x.extract(sents, x.predefined(predefined), func(i int) []pos.TaggedToken {
		return pos.TagSection(sec, i)
	})
}

// extract is the shared §3.2 scan: tagAt supplies the tagging of sentence
// i (cached or direct).
func (x *TermExtractor) extract(sents []textproc.Sentence, pre *predefinedSet, tagAt func(int) []pos.TaggedToken) []ExtractedTerm {
	var out []ExtractedTerm
	seen := map[string]bool{}
	var wordBuf [4]string // candidate-word scratch; longest pattern is 3
	for si, sent := range sents {
		tagged := tagAt(si)
		negFrom := 1 << 30
		if x.FilterNegated {
			negFrom = negationStart(sent)
		}
		i := 0
		for i < len(tagged) {
			term, span := x.matchAt(tagged, i, wordBuf[:0])
			if term == nil {
				i++
				continue
			}
			if i >= negFrom {
				i += span
				continue
			}
			norm := lexicon.Normalize(term.Surface)
			if !seen[norm] {
				seen[norm] = true
				if x.ResolveSynonyms {
					term.Predefined = pre.cui[term.Concept.CUI]
				} else {
					term.Predefined = pre.norm[norm]
				}
				out = append(out, *term)
			}
			i += span
		}
	}
	return out
}

// matchAt tries the ordered patterns at token index i; on an ontology
// hit it returns the term and the token span consumed. words is caller
// scratch reused across candidate positions, so the per-candidate probe
// allocates nothing.
func (x *TermExtractor) matchAt(tagged []pos.TaggedToken, i int, words []string) (*ExtractedTerm, int) {
	for _, pat := range termPatterns {
		if i+len(pat) > len(tagged) {
			continue
		}
		words = words[:0]
		ok := true
		for j, test := range pat {
			t := tagged[i+j]
			if t.Kind != textproc.Word || !test(t.Tag) {
				ok = false
				break
			}
			words = append(words, t.Lower())
		}
		if !ok {
			continue
		}
		if c := x.Ont.LookupWords(words); c != nil {
			surface := ""
			for j := range words {
				if j > 0 {
					surface += " "
				}
				surface += tagged[i+j].Text
			}
			return &ExtractedTerm{Surface: surface, Concept: c}, len(pat)
		}
	}
	return nil, 0
}

// SplitTerms partitions extracted terms into predefined and other name
// lists (the four medical-term attributes of the evaluation). Both are
// reported by concept preferred name — the CUI the ontology lookup
// resolved — deduplicated and sorted.
func SplitTerms(terms []ExtractedTerm) (pre, other []string) {
	seenPre := map[string]bool{}
	seenOther := map[string]bool{}
	for _, t := range terms {
		name := t.Concept.Preferred
		if t.Predefined {
			if !seenPre[name] {
				seenPre[name] = true
				pre = append(pre, name)
			}
		} else if !seenOther[name] {
			seenOther[name] = true
			other = append(other, name)
		}
	}
	sort.Strings(pre)
	sort.Strings(other)
	return pre, other
}
