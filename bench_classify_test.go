package repro

import (
	"testing"

	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/records"
	"repro/internal/textproc"
)

// The classification benchmarks pin the backend tradeoff the pluggable
// layer exists to offer. BenchmarkTrain* measures the model-fitting
// cost on examples whose views are already memoized — the shape of the
// cross-validation harness, which re-trains fifty times over the same
// analyzed corpus — so the ratio isolates entropy recursion against
// sparse hashed sums. BenchmarkClassify* measures single-record
// prediction end-to-end from raw text with a fresh document per
// iteration (the daemon's per-request shape), where the ID3 path pays
// POS tagging plus link-grammar parsing for its feature view and the
// vector path tokenizes only.

// smokingExamples builds the smoking training set with both views
// forced, so the Train benchmarks time the backend and not the (shared,
// memoized) feature extraction.
func smokingExamples(b *testing.B) []classify.Example {
	b.Helper()
	exs := core.SmokingField().Examples(corpus(b, 0))
	for _, e := range exs {
		e.Features()
		e.Tokens()
	}
	return exs
}

// BenchmarkTrainID3 is the paper's tree induction: feature-universe
// scan plus information-gain recursion.
func BenchmarkTrainID3(b *testing.B) {
	exs := smokingExamples(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		classify.ID3{}.Train(exs)
	}
}

// BenchmarkTrainVector is the same training set through the vector
// backend: hashed sparse sums and IDF-weighted centroids. The
// acceptance bar for the backend is >=5x faster than BenchmarkTrainID3.
func BenchmarkTrainVector(b *testing.B) {
	exs := smokingExamples(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		classify.NewVector().Train(exs)
	}
}

// classifyBench measures single-record prediction from raw text with a
// fresh document per iteration.
func classifyBench(b *testing.B, backend classify.Backend) {
	recs := corpus(b, 0)
	f := core.SmokingField()
	if backend != nil {
		f = f.WithBackend(backend)
	}
	c := core.TrainCategorical(f, recs)
	var rec records.Record
	for _, r := range recs {
		if r.Gold.Smoking != "" {
			rec = r
			break
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ClassifyDoc(textproc.Analyze(rec.Text))
	}
}

func BenchmarkClassifyID3(b *testing.B) { classifyBench(b, nil) }

func BenchmarkClassifyVector(b *testing.B) { classifyBench(b, classify.NewVector()) }
