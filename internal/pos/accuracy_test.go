package pos

import (
	"strings"
	"testing"

	"repro/internal/textproc"
)

// goldSentence pairs a sentence with hand-assigned tags for its word and
// number tokens (punctuation skipped). The set covers the clinical
// dictation shapes the extractors depend on.
type goldSentence struct {
	text string
	tags map[string]Tag // token (lower-cased, first occurrence) → tag
}

var goldTagged = []goldSentence{
	{
		"Blood pressure is 144/90, pulse of 84, temperature of 98.3, and weight of 154 pounds.",
		map[string]Tag{
			"blood": NN, "pressure": NN, "is": VBZ, "144/90": CD,
			"pulse": NN, "of": IN, "84": CD, "temperature": NN,
			"98.3": CD, "and": CC, "weight": NN, "154": CD, "pounds": NNS,
		},
	},
	{
		"She quit smoking five years ago.",
		map[string]Tag{"she": PRP, "quit": VBD, "five": CD, "years": NNS, "ago": IN},
	},
	{
		"Significant for a postoperative CVA after undergoing a cholecystectomy and a midline hernia closure.",
		map[string]Tag{
			"significant": JJ, "for": IN, "a": DT, "postoperative": JJ,
			"cva": NN, "after": IN, "undergoing": VBG,
			"cholecystectomy": NN, "midline": JJ, "hernia": NN, "closure": NN,
		},
	},
	{
		"Menarche at age 10, gravida 4, para 3, last menstrual period about a year ago.",
		map[string]Tag{
			"menarche": NN, "at": IN, "age": NN, "10": CD, "gravida": NN,
			"4": CD, "para": NN, "3": CD, "last": JJ, "menstrual": JJ,
			"period": NN, "year": NN,
		},
	},
	{
		"Ms. 2 is a 50-year-old woman who underwent a screening mammogram, revealing a solid lesion.",
		map[string]Tag{
			"is": VBZ, "woman": NN, "who": PRP, "underwent": VBD,
			"screening": JJ, "mammogram": NN, "revealing": VBG,
			"solid": JJ, "lesion": NN,
		},
	},
	{
		"She has never smoked.",
		map[string]Tag{"she": PRP, "has": VBZ, "never": RB, "smoked": VBN},
	},
	{
		"Reveals an overweight woman in no apparent distress.",
		map[string]Tag{
			"reveals": VBZ, "an": DT, "overweight": JJ, "woman": NN,
			"in": IN, "no": DT, "apparent": JJ, "distress": NN,
		},
	},
	{
		"Mother with breast cancer, diagnosed at age 52.",
		map[string]Tag{
			"mother": NN, "with": IN, "breast": NN, "cancer": NN,
			"diagnosed": VBN, "age": NN, "52": CD,
		},
	},
	{
		"There is no cervical or supraclavicular lymphadenopathy.",
		map[string]Tag{
			"there": EX, "is": VBZ, "no": DT, "cervical": JJ, "or": CC,
			"supraclavicular": JJ, "lymphadenopathy": NN,
		},
	},
	{
		"Palpation of both breasts shows no dominant lesions.",
		map[string]Tag{
			"palpation": NN, "of": IN, "both": DT, "breasts": NNS,
			"shows": VBZ, "dominant": JJ, "lesions": NNS,
		},
	},
}

// TestTaggerAccuracyOnGoldSet measures token accuracy on the hand-tagged
// set; the extractors need ≳95% on this sub-language.
func TestTaggerAccuracyOnGoldSet(t *testing.T) {
	correct, total := 0, 0
	for _, gs := range goldTagged {
		sents := textproc.SplitSentences(gs.text)
		if len(sents) != 1 {
			t.Fatalf("%q: %d sentences", gs.text, len(sents))
		}
		tagged := TagSentence(sents[0])
		seen := map[string]bool{}
		for _, tok := range tagged {
			w := strings.ToLower(tok.Text)
			want, ok := gs.tags[w]
			if !ok || seen[w] {
				continue
			}
			seen[w] = true
			total++
			if tok.Tag == want {
				correct++
			} else {
				t.Logf("%q: tag(%s) = %s, want %s", gs.text, w, tok.Tag, want)
			}
		}
	}
	if total < 60 {
		t.Fatalf("gold set too small: %d tokens", total)
	}
	acc := float64(correct) / float64(total)
	t.Logf("tagger accuracy: %d/%d = %.1f%%", correct, total, 100*acc)
	if acc < 0.95 {
		t.Errorf("tagger accuracy %.1f%% below 95%%", 100*acc)
	}
}
