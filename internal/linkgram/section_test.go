package linkgram

import (
	"testing"

	"repro/internal/pos"
	"repro/internal/textproc"
)

// TestParseSectionMemoizesLinkage pins the parse-once contract: repeated
// ParseSection calls on the same Document sentence return the identical
// linkage and run exactly one parse pass.
func TestParseSectionMemoizesLinkage(t *testing.T) {
	doc := textproc.Analyze("Vitals:  Blood pressure is 144/90. Pulse of 96.\n")
	sec, ok := doc.Section("Vitals")
	if !ok {
		t.Fatal("no Vitals section")
	}
	if n := len(sec.Sentences()); n != 2 {
		t.Fatalf("want 2 sentences, got %d", n)
	}

	p0 := ParsePasses()
	first, err := ParseSection(sec, 0)
	if err != nil {
		t.Fatalf("ParseSection: %v", err)
	}
	if got := ParsePasses() - p0; got != 1 {
		t.Errorf("first ParseSection ran %d parse passes, want 1", got)
	}
	p1 := ParsePasses()
	again, err := ParseSection(sec, 0)
	if err != nil {
		t.Fatalf("ParseSection again: %v", err)
	}
	if again != first {
		t.Error("repeated ParseSection returned a different Linkage pointer")
	}
	if got := ParsePasses() - p1; got != 0 {
		t.Errorf("cached ParseSection ran %d parse passes, want 0", got)
	}

	// Tagging is shared through the same slots.
	t0 := pos.TagPasses()
	pos.TagSection(sec, 0)
	pos.TagSection(sec, 1)
	ParseSection(sec, 1)
	if got := pos.TagPasses() - t0; got != 1 {
		t.Errorf("cached tag views ran %d tag passes, want 1 (sentence 1 only)", got)
	}
}

// TestParseSectionMemoizesNoLinkage pins that the ErrNoLinkage outcome is
// cached too: an unparseable sentence pays the parse attempt exactly once
// per Document.
func TestParseSectionMemoizesNoLinkage(t *testing.T) {
	doc := textproc.Analyze("Vitals:  for with tobacco.\n")
	sec, ok := doc.Section("Vitals")
	if !ok {
		t.Fatal("no Vitals section")
	}
	p0 := ParsePasses()
	if _, err := ParseSection(sec, 0); err != ErrNoLinkage {
		t.Fatalf("want ErrNoLinkage, got %v", err)
	}
	if got := ParsePasses() - p0; got != 1 {
		t.Errorf("first failed ParseSection ran %d parse passes, want 1", got)
	}
	p1 := ParsePasses()
	if _, err := ParseSection(sec, 0); err != ErrNoLinkage {
		t.Fatalf("cached failure: want ErrNoLinkage, got %v", err)
	}
	if got := ParsePasses() - p1; got != 0 {
		t.Errorf("cached failed ParseSection ran %d parse passes, want 0", got)
	}
}
