// Command evaltab regenerates every table and figure of the paper's
// evaluation plus the ablations in DESIGN.md.
//
// Usage:
//
//	evaltab [-exp all|E1|E2|E3|E4|E5|F1|A1–A8] [-n 50] [-seed 2005]
//	        [-backend id3|gini|vector]
//
// -backend selects the classification backend for the categorical
// experiments (E3, E4); A8 always compares every backend side by side.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"repro/internal/classify"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/linkgram"
	"repro/internal/ontology"
	"repro/internal/records"
	"repro/internal/textproc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("evaltab: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run parses flags and writes the requested experiment tables to out.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("evaltab", flag.ExitOnError)
	exp := fs.String("exp", "all", "experiment id: all, E1–E5, F1, A1–A8")
	n := fs.Int("n", 50, "corpus size")
	seed := fs.Int64("seed", 2005, "corpus seed")
	backendName := fs.String("backend", "id3", "classification backend for E3/E4: id3 | gini | vector")
	fs.Parse(args)
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	if err := cliutil.OneOf("-backend", *backendName, classify.Names()...); err != nil {
		return err
	}
	backend, err := classify.New(*backendName)
	if err != nil {
		return err
	}

	opts := records.DefaultGenOptions()
	opts.N = *n
	opts.Seed = *seed
	recs := records.Generate(opts)

	runOne := func(id string) error {
		switch id {
		case "E1":
			fmt.Fprintln(out, eval.RunE1(recs, core.LinkGrammar))
			fmt.Fprintln(out, "paper: precision (recall) for all eight numeric attributes is 100%")
		case "E2":
			ont := ontology.MustNew(ontology.Options{})
			defer ont.Close()
			fmt.Fprintln(out, eval.RunE2(recs, ont, false))
			fmt.Fprintln(out, "paper Table 1: 96.7/96.7, 76.1/86.4, 77.8/35, 62.0/75")
			fmt.Fprintln(out)
			fmt.Fprintln(out, eval.RunE2(recs, ont, true))
			fmt.Fprintln(out, "(the paper's proposed improvement: \"introducing synonyms\")")
		case "E3":
			res := eval.RunE3With(recs, *seed, backend)
			fmt.Fprint(out, res)
			fmt.Fprintln(out, "paper: average precision (recall) 92.2%, features per tree 4-7")
		case "E4":
			fmt.Fprintln(out, eval.RunE4(recs, *seed, backend))
			fmt.Fprintln(out, "(the paper completed only smoking among the twelve categorical attributes)")
		case "E5":
			ont := ontology.MustNew(ontology.Options{})
			defer ont.Close()
			fmt.Fprintf(out, "E5 medication extraction: %v\n", eval.RunE5(recs, ont))
		case "F1":
			sent := textproc.SplitSentences("Blood pressure is 144/90, pulse of 84, temperature of 98.3, and weight of 154 pounds.")[0]
			lk, err := linkgram.ParseSentence(sent)
			if err != nil {
				return fmt.Errorf("figure 1 sentence failed to parse: %v", err)
			}
			fmt.Fprintln(out, "F1 / Figure 1: linkage diagram")
			fmt.Fprintln(out, lk.Diagram())
		case "A1":
			diverse := records.DefaultGenOptions()
			diverse.N = *n
			diverse.Seed = *seed
			diverse.StyleDiversity = 0.8
			fmt.Fprintln(out, "A1 on canonical corpus (diversity 0):")
			fmt.Fprintln(out, eval.RunA1(recs))
			fmt.Fprintln(out, "A1 on diverse corpus (diversity 0.8):")
			fmt.Fprintln(out, eval.RunA1(records.Generate(diverse)))
		case "A2":
			fmt.Fprintln(out, eval.RunA2(recs, *seed))
		case "A3":
			fmt.Fprintln(out, eval.RunA3(recs, *seed))
		case "A4":
			res, err := eval.RunA4(recs, []float64{0.5, 0.7, 0.9, 1.0})
			if err != nil {
				return err
			}
			fmt.Fprintln(out, res)
		case "A5":
			fmt.Fprintln(out, eval.RunA5([]float64{0, 0.25, 0.5, 0.75, 1.0}, *n, *seed))
		case "A6":
			fmt.Fprintln(out, eval.RunA6(recs, *seed))
		case "A7":
			ont := ontology.MustNew(ontology.Options{})
			defer ont.Close()
			fmt.Fprintln(out, eval.RunA7(recs, ont))
		case "A8":
			res, err := eval.RunA8(recs, *seed)
			if err != nil {
				return err
			}
			fmt.Fprintln(out, res)
		default:
			return fmt.Errorf("unknown experiment %q", id)
		}
		return nil
	}

	if strings.EqualFold(*exp, "all") {
		for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "F1", "A1", "A2", "A3", "A4", "A5", "A6", "A7", "A8"} {
			fmt.Fprintf(out, "================ %s ================\n", id)
			if err := runOne(id); err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
		return nil
	}
	return runOne(strings.ToUpper(*exp))
}
