// Warehouse: run the pipeline over a corpus, persist every extracted
// attribute to the embedded store (the paper's Access database), then
// answer paper-style questions through the query layer — secondary
// indexes created before ingest and maintained transactionally by every
// batch insert — and compact the write-ahead logs, which carries the
// indexes into the rewritten logs.
//
// Run with --shards N to partition the store: inserts route to N shard
// WALs in parallel and every question fans out across the shards; the
// answers are identical to the single-shard run.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/ontology"
	"repro/internal/records"
	"repro/internal/store"
)

func main() {
	log.SetFlags(0)
	shards := flag.Int("shards", 1, "store shard count (1 = single-file layout)")
	flag.Parse()

	dir, err := os.MkdirTemp("", "warehouse")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	dbPath := filepath.Join(dir, "extracted.db")

	recs := records.Generate(records.DefaultGenOptions())
	sys, err := core.NewSystem(core.Config{Strategy: core.LinkGrammar, ResolveSynonyms: true})
	if err != nil {
		log.Fatal(err)
	}
	sys.TrainSmoking(recs)

	db, err := store.OpenSharded(dbPath, *shards)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Open the warehouse before ingest: the extracted table and its
	// attribute/patient indexes exist up front, so the batched inserts
	// below maintain them transactionally and the questions afterwards
	// never fall back to a full scan.
	ont := ontology.MustNew(ontology.Options{})
	defer ont.Close()
	w, err := core.OpenWarehouse(db, ont)
	if err != nil {
		log.Fatal(err)
	}

	rows, err := core.PersistAll(db, sys.ProcessAll(recs, 0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("persisted %d attribute rows for %d patients (%d byte WAL, %d shard(s))\n\n",
		rows, len(recs), db.LogSize(), db.Shards())

	// Question 1 (chart review, the paper's motivating use case):
	// current smokers with elevated systolic blood pressure.
	patients, stats, err := w.Ask(
		core.HasTerm("smoking", records.SmokingCurrent),
		core.Cond{Attr: records.AttrBloodPressure, Min: ptr(140.0)},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("current smokers with systolic >= 140: %d patients %v\n", len(patients), patients)
	fmt.Printf("  (%d/%d conditions indexed, %d rows examined, %d full scans)\n\n",
		stats.IndexedConds, stats.Conds, stats.RowsExamined, stats.FullScans)

	// Question 2: prevalence of each predefined past-medical condition,
	// one indexed lookup for the whole attribute.
	prevalence, err := w.Prevalence("predefined past medical history")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("predefined condition prevalence:")
	for _, cond := range []string{"diabetes", "hypertension", "heart disease", "depression"} {
		fmt.Printf("  %-15s %d/%d patients\n", cond, prevalence[cond], len(recs))
	}

	// Question 3: one patient's reconstructed chart.
	if len(patients) > 0 {
		chart, err := w.Patient(patients[0])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\npatient %d chart (%d attributes)\n", patients[0], len(chart))
	}

	// Maintenance: compact — rows fold into immutable sorted segment
	// files, the WAL shrinks to schema/index records, indexes survive.
	before := db.LogSize()
	if err := db.Compact(); err != nil {
		log.Fatal(err)
	}
	st := w.Table().Stats()
	fmt.Printf("\ncompacted WAL: %d → %d bytes (%d segment file(s); indexes preserved: %v)\n",
		before, db.LogSize(), st.Segments, st.IndexNames)
}

func ptr(f float64) *float64 { return &f }
