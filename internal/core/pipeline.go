package core

import (
	"fmt"
	"strings"

	"repro/internal/ontology"
	"repro/internal/records"
	"repro/internal/store"
	"repro/internal/textproc"
)

// System is the assembled extraction pipeline of Figure 2: tokenization
// and sectioning (textproc, standing in for GATE), the link grammar
// parser, the lexicon (WordNet), the ontology (UMLS in DB2), and the ID3
// classifier, producing structured records persisted to an embedded
// store (Access).
type System struct {
	Numeric *NumericExtractor
	Terms   *TermExtractor
	Smoking *CategoricalClassifier // nil until trained
}

// Config selects system variants for the experiments.
type Config struct {
	Strategy        Strategy // numeric association strategy
	ResolveSynonyms bool     // predefined-term synonym resolution (§5 improvement)
	Ontology        *ontology.Ontology
}

// NewSystem assembles a pipeline. A nil ontology loads the full embedded
// vocabulary.
func NewSystem(cfg Config) (*System, error) {
	ont := cfg.Ontology
	if ont == nil {
		var err error
		ont, err = ontology.New(ontology.Options{})
		if err != nil {
			return nil, err
		}
	}
	return &System{
		Numeric: NewNumericExtractor(cfg.Strategy),
		Terms:   &TermExtractor{Ont: ont, ResolveSynonyms: cfg.ResolveSynonyms},
	}, nil
}

// Extraction is the structured output for one record.
type Extraction struct {
	Patient       int
	Numeric       map[string]NumericValue
	PreMedical    []string // predefined past medical history
	OtherMedical  []string
	PreSurgical   []string // predefined past surgical history
	OtherSurgical []string
	Medications   []string
	Smoking       string
}

// Process extracts all attributes from one record text.
func (s *System) Process(recordText string) Extraction {
	ex := Extraction{Numeric: s.Numeric.Extract(recordText)}
	secs := textproc.SplitSections(recordText)
	if sec, ok := textproc.FindSection(secs, "Patient"); ok {
		fmt.Sscanf(strings.TrimSpace(sec.Body), "%d", &ex.Patient)
	}
	if sec, ok := textproc.FindSection(secs, "Past Medical History"); ok {
		terms := s.Terms.Extract(sec.Body, ontology.PredefinedMedical)
		ex.PreMedical, ex.OtherMedical = SplitTerms(terms)
	}
	if sec, ok := textproc.FindSection(secs, "Past Surgical History"); ok {
		terms := s.Terms.Extract(sec.Body, ontology.PredefinedSurgical)
		ex.PreSurgical, ex.OtherSurgical = SplitTerms(terms)
	}
	if sec, ok := textproc.FindSection(secs, "Medications"); ok {
		for _, t := range s.Terms.Extract(sec.Body, nil) {
			if t.Concept.Type == ontology.Medication {
				ex.Medications = append(ex.Medications, t.Concept.Preferred)
			}
		}
	}
	if s.Smoking != nil {
		ex.Smoking = s.Smoking.Classify(recordText)
	}
	return ex
}

// TrainSmoking fits the smoking classifier on labeled records; subsequent
// Process calls fill Extraction.Smoking.
func (s *System) TrainSmoking(recs []records.Record) {
	s.Smoking = TrainCategorical(SmokingField(), recs)
}

// resultSchema is the persisted extracted-information table: one row per
// (patient, attribute, value), the paper's Access database.
func resultSchema() store.Schema {
	return store.Schema{
		Name: "extracted",
		Columns: []store.Column{
			{Name: "id", Type: store.TInt},
			{Name: "patient", Type: store.TInt},
			{Name: "attribute", Type: store.TString},
			{Name: "value", Type: store.TString},
			{Name: "numeric", Type: store.TFloat},
		},
		Primary: 0,
	}
}

// Persist writes an extraction into the database, one row per attribute
// value, and returns the number of rows written.
func Persist(db *store.DB, ex Extraction) (int, error) {
	tbl, err := db.CreateTable(resultSchema())
	if err != nil {
		return 0, err
	}
	next := int64(tbl.Len()) + 1
	n := 0
	put := func(attr, val string, num float64) error {
		row := store.Row{
			store.Int(next), store.Int(int64(ex.Patient)),
			store.Str(attr), store.Str(val), store.Float(num),
		}
		if err := tbl.Insert(row); err != nil {
			return err
		}
		next++
		n++
		return nil
	}
	for attr, v := range ex.Numeric {
		val := fmt.Sprintf("%g", v.Value)
		if v.Ratio {
			val = fmt.Sprintf("%g/%g", v.Value, v.Value2)
		}
		if err := put(attr, val, v.Value); err != nil {
			return n, err
		}
	}
	lists := []struct {
		attr  string
		terms []string
	}{
		{"predefined past medical history", ex.PreMedical},
		{"other past medical history", ex.OtherMedical},
		{"predefined past surgical history", ex.PreSurgical},
		{"other past surgical history", ex.OtherSurgical},
		{"medications", ex.Medications},
	}
	for _, l := range lists {
		for _, t := range l.terms {
			if err := put(l.attr, t, 0); err != nil {
				return n, err
			}
		}
	}
	if ex.Smoking != "" {
		if err := put("smoking", ex.Smoking, 0); err != nil {
			return n, err
		}
	}
	return n, nil
}
