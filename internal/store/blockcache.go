package store

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// DefaultBlockCacheBytes is the shared decoded-block cache capacity an
// engine opens with; SetBlockCacheCapacity resizes it (0 disables
// storage while keeping the counters live).
const DefaultBlockCacheBytes int64 = 32 << 20

// blockKey addresses one decoded block: the segment's process-unique id
// plus the block index. Segment ids are never reused within a process,
// so a compaction that replaces a run can never alias a stale entry
// onto the new segment's blocks.
type blockKey struct {
	seg uint64
	bi  int
}

// blockEntry is one cached decoded block. rows and keys are immutable —
// segments are written once, and every reader treats decoded rows as
// read-only — which is what makes sharing them across queries safe.
type blockEntry struct {
	key  blockKey
	rows []Row
	keys [][]byte
	size int64
}

// blockCache is the engine-wide decoded-block LRU: one per DB, shared
// by every shard and table, bounded by bytes rather than entries so a
// few huge blocks cannot blow the budget a thousand small ones fit in.
// Hot point lookups and index resolutions serve decoded rows straight
// from memory; the first read of a block pays disk + CRC + decode and
// populates it for everyone.
//
// Invariants:
//   - An entry is only ever read through a pinned *segment, so a hit
//     can never observe a closed file or serve a row from a segment
//     the reader's snapshot does not hold.
//   - unref's last drop calls dropSegment, so an obsolete segment's
//     entries die with its last snapshot pin — the cache holds no
//     memory (and implies no fds) for segments nothing can read.
type blockCache struct {
	mu  sync.Mutex
	cap int64
	sz  int64
	lru *list.List // front = most recently used; values are *blockEntry
	m   map[blockKey]*list.Element

	// Counters are atomics so Stats never contends with the read path.
	hits, misses, evictions, bloomSkips atomic.Int64
}

func newBlockCache(capBytes int64) *blockCache {
	return &blockCache{cap: capBytes, lru: list.New(), m: make(map[blockKey]*list.Element)}
}

// get returns the cached decoded block, marking it most recently used.
func (c *blockCache) get(k blockKey) ([]Row, [][]byte, bool) {
	c.mu.Lock()
	if el, ok := c.m[k]; ok {
		c.lru.MoveToFront(el)
		e := el.Value.(*blockEntry)
		c.mu.Unlock()
		c.hits.Add(1)
		return e.rows, e.keys, true
	}
	c.mu.Unlock()
	c.misses.Add(1)
	return nil, nil, false
}

// put inserts a decoded block, evicting from the cold end until the
// byte budget holds. A concurrent reader that decoded the same block
// first wins; an entry larger than the whole capacity is not stored.
func (c *blockCache) put(k blockKey, rows []Row, keys [][]byte, size int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cap <= 0 || size > c.cap {
		return
	}
	if el, ok := c.m[k]; ok {
		c.lru.MoveToFront(el)
		return
	}
	c.m[k] = c.lru.PushFront(&blockEntry{key: k, rows: rows, keys: keys, size: size})
	c.sz += size
	c.evictToCapLocked()
}

func (c *blockCache) evictToCapLocked() {
	for c.sz > c.cap {
		el := c.lru.Back()
		if el == nil {
			return
		}
		c.removeLocked(el)
		c.evictions.Add(1)
	}
}

func (c *blockCache) removeLocked(el *list.Element) {
	e := el.Value.(*blockEntry)
	c.lru.Remove(el)
	delete(c.m, e.key)
	c.sz -= e.size
}

// dropSegment releases every cached block of one segment. Called from
// the segment's last unref — the moment no snapshot can read it again —
// so obsolete segments stop occupying cache the instant they die.
func (c *blockCache) dropSegment(seg uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var next *list.Element
	for el := c.lru.Front(); el != nil; el = next {
		next = el.Next()
		if el.Value.(*blockEntry).key.seg == seg {
			c.removeLocked(el)
		}
	}
}

// setCapacity resizes the byte budget, evicting immediately if shrunk.
func (c *blockCache) setCapacity(capBytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cap = capBytes
	c.evictToCapLocked()
}

// segEntries counts one segment's cached blocks (test introspection).
func (c *blockCache) segEntries(seg uint64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for el := c.lru.Front(); el != nil; el = el.Next() {
		if el.Value.(*blockEntry).key.seg == seg {
			n++
		}
	}
	return n
}

// CacheStats reports the shared decoded-block cache for monitoring.
// BloomSkips counts segment probes rejected by a bloom filter — reads
// that cost no IO at all.
type CacheStats struct {
	CapBytes   int64
	Bytes      int64
	Entries    int
	Hits       int64
	Misses     int64
	Evictions  int64
	BloomSkips int64
}

// stats snapshots the counters; safe on a nil cache (all zeros).
func (c *blockCache) stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	s := CacheStats{CapBytes: c.cap, Bytes: c.sz, Entries: c.lru.Len()}
	c.mu.Unlock()
	s.Hits = c.hits.Load()
	s.Misses = c.misses.Load()
	s.Evictions = c.evictions.Load()
	s.BloomSkips = c.bloomSkips.Load()
	return s
}

// blockFootprint estimates a decoded block's memory charge: the encoded
// bytes approximate the string payloads (the codec copies them), plus a
// fixed per-row overhead for the Row/Value headers and the re-derived
// key slice.
func blockFootprint(encodedLen, nrows int) int64 {
	return int64(encodedLen) + int64(nrows)*112
}
