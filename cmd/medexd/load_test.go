package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/store"
)

// TestDaemonLoadSmoke hammers an in-process daemon with concurrent
// producers and readers (CI runs it under -race): a small queue invites
// backpressure, every 429 is retried, and at the end the invariants
// must hold — every acknowledged batch is queryable over HTTP, the
// queue never grew past its bound, and the rejection counter matches
// the 429s the clients saw.
func TestDaemonLoadSmoke(t *testing.T) {
	cfg := testConfig()
	cfg.QueueDepth = 4
	cfg.MaxGroup = 2
	db, err := store.OpenSharded(filepath.Join(t.TempDir(), "wh.db"), 4)
	if err != nil {
		t.Fatal(err)
	}
	srv, ts := newTestServer(t, cfg, db)

	const producers, batches = 8, 12
	var mu sync.Mutex
	var acked []int64
	var seen429 int64
	var wg sync.WaitGroup
	for p := range producers {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			client := &http.Client{Timeout: 10 * time.Second}
			for seq := range batches {
				pid := int64(p)*1000 + int64(seq)
				for {
					resp, err := client.Post(ts.URL+"/v1/ingest", "application/x-ndjson",
						strings.NewReader(ndjsonPatients(pid, pid+100_000, pid+200_000)))
					if err != nil {
						t.Error(err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode == http.StatusTooManyRequests {
						mu.Lock()
						seen429++
						mu.Unlock()
						time.Sleep(2 * time.Millisecond)
						continue
					}
					if resp.StatusCode != http.StatusAccepted {
						t.Errorf("ingest = %d, want 202", resp.StatusCode)
						return
					}
					mu.Lock()
					acked = append(acked, pid)
					mu.Unlock()
					break
				}
			}
		}(p)
	}
	// Readers race the writers the whole time.
	stopReads := make(chan struct{})
	var rwg sync.WaitGroup
	for range 2 {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for {
				select {
				case <-stopReads:
					return
				default:
				}
				for _, path := range []string{"/v1/query?attr=pulse&min=100", "/readyz", "/v1/stats"} {
					resp, err := http.Get(ts.URL + path)
					if err != nil {
						t.Error(err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	wg.Wait()
	close(stopReads)
	rwg.Wait()

	st := srv.ing.Stats()
	if int(st.Batches) != len(acked) {
		t.Fatalf("ingester acknowledged %d batches, clients saw %d", st.Batches, len(acked))
	}
	if st.PeakQueue > int64(cfg.QueueDepth) {
		t.Fatalf("queue peaked at %d, bound is %d", st.PeakQueue, cfg.QueueDepth)
	}
	if st.Rejected != seen429 {
		t.Fatalf("ingester rejected %d, clients saw %d 429s", st.Rejected, seen429)
	}
	t.Logf("acked %d batches, %d rejections, peak queue %d", len(acked), st.Rejected, st.PeakQueue)

	// Every acknowledged batch answerable over HTTP.
	for _, pid := range acked {
		resp, err := http.Get(fmt.Sprintf("%s/v1/patient/%d", ts.URL, pid))
		if err != nil {
			t.Fatal(err)
		}
		var chart map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&chart); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if len(chart["rows"].([]any)) == 0 {
			t.Fatalf("acknowledged patient %d has no chart", pid)
		}
	}
}
