package linkgram

import (
	"testing"

	"repro/internal/pos"
	"repro/internal/textproc"
)

func countText(t *testing.T, text string) int {
	t.Helper()
	sents := textproc.SplitSentences(text)
	if len(sents) != 1 {
		t.Fatalf("want 1 sentence, got %d", len(sents))
	}
	return CountLinkages(pos.TagSentence(sents[0]))
}

func TestCountPositiveWhenParseSucceeds(t *testing.T) {
	for _, text := range []string{
		"Blood pressure is 144/90.",
		"She quit smoking five years ago.",
		"Pulse of 96.",
	} {
		if n := countText(t, text); n <= 0 {
			t.Errorf("CountLinkages(%q) = %d, want > 0", text, n)
		}
	}
}

func TestCountZeroWhenNoParse(t *testing.T) {
	if n := countText(t, "for with tobacco."); n != 0 {
		t.Errorf("unparseable sentence counted %d linkages", n)
	}
}

func TestCountConsistentWithParse(t *testing.T) {
	// Count > 0 ⟺ Parse succeeds, across a spread of corpus sentences.
	texts := []string{
		"Blood pressure is 144/90, pulse of 84, temperature of 98.3, and weight of 154 pounds.",
		"Menarche at age 10, gravida 4, para 3.",
		"She has never smoked.",
		"She denies tobacco use.",
		"for with tobacco.",
	}
	for _, text := range texts {
		sents := textproc.SplitSentences(text)
		tagged := pos.TagSentence(sents[0])
		n := CountLinkages(tagged)
		_, err := Parse(tagged)
		if (n > 0) != (err == nil) {
			t.Errorf("%q: count=%d but parse err=%v", text, n, err)
		}
	}
}

func TestCountAmbiguityGrowsWithLength(t *testing.T) {
	short := countText(t, "Pulse of 96.")
	long := countText(t, "Blood pressure is 144/90, pulse of 84, temperature of 98.3, and weight of 154 pounds.")
	if long < short {
		t.Errorf("longer coordinated sentence should be at least as ambiguous: %d < %d", long, short)
	}
}
