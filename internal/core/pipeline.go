package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/classify"
	"repro/internal/ontology"
	"repro/internal/records"
	"repro/internal/store"
	"repro/internal/textproc"
)

// System is the assembled extraction pipeline of Figure 2: tokenization
// and sectioning (textproc, standing in for GATE), the link grammar
// parser, the lexicon (WordNet), the ontology (UMLS in DB2), and the ID3
// classifier, producing structured records persisted to an embedded
// store (Access).
type System struct {
	Numeric *NumericExtractor
	Terms   *TermExtractor
	Smoking *CategoricalClassifier // nil until trained
}

// Config selects system variants for the experiments.
type Config struct {
	Strategy        Strategy // numeric association strategy
	ResolveSynonyms bool     // predefined-term synonym resolution (§5 improvement)
	Ontology        *ontology.Ontology
}

// NewSystem assembles a pipeline. A nil ontology loads the full embedded
// vocabulary.
func NewSystem(cfg Config) (*System, error) {
	ont := cfg.Ontology
	if ont == nil {
		var err error
		ont, err = ontology.New(ontology.Options{})
		if err != nil {
			return nil, err
		}
	}
	return &System{
		Numeric: NewNumericExtractor(cfg.Strategy),
		Terms:   &TermExtractor{Ont: ont, ResolveSynonyms: cfg.ResolveSynonyms},
	}, nil
}

// Extraction is the structured output for one record.
type Extraction struct {
	Patient       int
	Numeric       map[string]NumericValue
	PreMedical    []string // predefined past medical history
	OtherMedical  []string
	PreSurgical   []string // predefined past surgical history
	OtherSurgical []string
	Medications   []string
	Smoking       string
}

// Process extracts all attributes from one record text. It analyzes the
// text once and delegates to ProcessDoc.
func (s *System) Process(recordText string) Extraction {
	return s.ProcessDoc(textproc.Analyze(recordText))
}

// ProcessDoc extracts all attributes from an analyzed record. Every
// extractor shares the document's single tokenization / sentence /
// section analysis; none re-runs a text pass.
func (s *System) ProcessDoc(doc *textproc.Document) Extraction {
	ex := Extraction{Numeric: s.Numeric.ExtractDoc(doc)}
	if sec, ok := doc.Section("Patient"); ok {
		id, err := strconv.Atoi(strings.TrimSpace(sec.Body))
		if err == nil {
			ex.Patient = id
		}
		// A malformed patient section leaves Patient zero; downstream
		// consumers treat 0 as "no patient id".
	}
	if sec, ok := doc.Section("Past Medical History"); ok {
		terms := s.Terms.ExtractSection(sec, ontology.PredefinedMedical)
		ex.PreMedical, ex.OtherMedical = SplitTerms(terms)
	}
	if sec, ok := doc.Section("Past Surgical History"); ok {
		terms := s.Terms.ExtractSection(sec, ontology.PredefinedSurgical)
		ex.PreSurgical, ex.OtherSurgical = SplitTerms(terms)
	}
	if sec, ok := doc.Section("Medications"); ok {
		for _, t := range s.Terms.ExtractSection(sec, nil) {
			if t.Concept.Type == ontology.Medication {
				ex.Medications = append(ex.Medications, t.Concept.Preferred)
			}
		}
	}
	if s.Smoking != nil {
		ex.Smoking = s.Smoking.ClassifyDoc(doc)
	}
	return ex
}

// TrainSmoking fits the smoking classifier on labeled records with the
// default (ID3) backend; subsequent Process calls fill
// Extraction.Smoking.
func (s *System) TrainSmoking(recs []records.Record) {
	s.TrainSmokingWith(recs, nil)
}

// TrainSmokingWith fits the smoking classifier with the given
// classification backend (nil = the ID3 default).
func (s *System) TrainSmokingWith(recs []records.Record, b classify.Backend) {
	s.Smoking = TrainCategorical(SmokingField().WithBackend(b), recs)
}

// ResultTable names the persisted extracted-information table, so
// monitoring code (the medexd stats endpoint) can reach it without
// hard-coding the string.
const ResultTable = "extracted"

// resultSchema is the persisted extracted-information table: one row per
// (patient, attribute, value), the paper's Access database.
func resultSchema() store.Schema {
	return store.Schema{
		Name: ResultTable,
		Columns: []store.Column{
			{Name: "id", Type: store.TInt},
			{Name: "patient", Type: store.TInt},
			{Name: "attribute", Type: store.TString},
			{Name: "value", Type: store.TString},
			{Name: "numeric", Type: store.TFloat},
		},
		Primary: 0,
	}
}

// extractionRows builds the table rows of one extraction, assigning ids
// from next upward. Numeric attributes are emitted in sorted order so the
// persisted layout is deterministic.
func extractionRows(ex Extraction, next int64) []store.Row {
	var rows []store.Row
	put := func(attr, val string, num float64) {
		rows = append(rows, store.Row{
			store.Int(next), store.Int(int64(ex.Patient)),
			store.Str(attr), store.Str(val), store.Float(num),
		})
		next++
	}
	numAttrs := make([]string, 0, len(ex.Numeric))
	for attr := range ex.Numeric {
		numAttrs = append(numAttrs, attr)
	}
	sort.Strings(numAttrs)
	for _, attr := range numAttrs {
		v := ex.Numeric[attr]
		val := fmt.Sprintf("%g", v.Value)
		if v.Ratio {
			val = fmt.Sprintf("%g/%g", v.Value, v.Value2)
		}
		put(attr, val, v.Value)
	}
	lists := []struct {
		attr  string
		terms []string
	}{
		{"predefined past medical history", ex.PreMedical},
		{"other past medical history", ex.OtherMedical},
		{"predefined past surgical history", ex.PreSurgical},
		{"other past surgical history", ex.OtherSurgical},
		{"medications", ex.Medications},
	}
	for _, l := range lists {
		for _, t := range l.terms {
			put(l.attr, t, 0)
		}
	}
	if ex.Smoking != "" {
		put("smoking", ex.Smoking, 0)
	}
	return rows
}

// persistBatchRows is how many rows PersistAll groups into one WAL record:
// large enough to amortize framing and flush cost, small enough to keep
// individual log records modest.
const persistBatchRows = 512

// Persist writes an extraction into the database, one row per attribute
// value and one WAL record for the whole extraction, and returns the
// number of rows written.
func Persist(db store.Engine, ex Extraction) (int, error) {
	return PersistAll(db, []Extraction{ex})
}

// PersistAll writes many extractions into the database, creating the
// extracted table once and batching rows into a few WAL records instead
// of logging row-at-a-time. It returns the number of rows written.
//
// PersistAll is engine-agnostic: on a sharded engine each InsertBatch
// call routes its rows to their home shards and flushes the per-shard
// sub-batches to the shard WALs in parallel, so ingest throughput
// scales with the shard count instead of serializing on one log mutex.
func PersistAll(db store.Engine, exs []Extraction) (int, error) {
	tbl, err := db.CreateTable(resultSchema())
	if err != nil {
		return 0, err
	}
	// Seed ids past the largest existing key, not the row count: a
	// recovered store can hold sparse ids (a torn shard WAL drops rows
	// from the middle of the id space), and Len()+1 would collide.
	next := int64(1)
	if maxPK, ok := tbl.MaxPK(); ok {
		next = maxPK.I + 1
	}
	written := 0
	batch := make([]store.Row, 0, persistBatchRows)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if err := tbl.InsertBatch(batch); err != nil {
			return err
		}
		written += len(batch)
		batch = batch[:0]
		return nil
	}
	for _, ex := range exs {
		rows := extractionRows(ex, next)
		next += int64(len(rows))
		for _, row := range rows {
			batch = append(batch, row)
			if len(batch) >= persistBatchRows {
				if err := flush(); err != nil {
					return written, err
				}
			}
		}
	}
	if err := flush(); err != nil {
		return written, err
	}
	return written, nil
}
