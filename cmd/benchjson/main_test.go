package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: repro/internal/store
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkIngestSharded/shards=1         	   10000	    208409 ns/op	    307088 rows/s
BenchmarkIngestSharded/shards=4         	   10000	    105966 ns/op	    615462 rows/s
BenchmarkQueryFanout/shards=4           	    2049	    586998 ns/op
BenchmarkStoreInsert-8   	  500000	      2643 ns/op	     512 B/op	       9 allocs/op
PASS
ok  	repro/internal/store	4.960s
`

func TestParseBenchOutput(t *testing.T) {
	report, err := parse(strings.NewReader(sampleBenchOutput), nil)
	if err != nil {
		t.Fatal(err)
	}
	if report.Goos != "linux" || report.Goarch != "amd64" || !strings.Contains(report.CPU, "Xeon") {
		t.Errorf("context lines not captured: %+v", report)
	}
	if len(report.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(report.Benchmarks))
	}
	first := report.Benchmarks[0]
	if first.Name != "BenchmarkIngestSharded/shards=1" || first.Runs != 10000 {
		t.Errorf("first result wrong: %+v", first)
	}
	if first.Pkg != "repro/internal/store" {
		t.Errorf("pkg not attached: %q", first.Pkg)
	}
	if first.Metrics["ns/op"] != 208409 || first.Metrics["rows/s"] != 307088 {
		t.Errorf("metrics wrong: %v", first.Metrics)
	}
	mem := report.Benchmarks[3]
	if mem.Metrics["B/op"] != 512 || mem.Metrics["allocs/op"] != 9 {
		t.Errorf("-benchmem metrics wrong: %v", mem.Metrics)
	}
}

func TestRunWritesJSONAndEchoes(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_test.json")
	var echoed strings.Builder
	if err := run([]string{"-out", out}, strings.NewReader(sampleBenchOutput), &echoed); err != nil {
		t.Fatal(err)
	}
	// Pass-through: the human-readable log is intact.
	if echoed.String() != sampleBenchOutput {
		t.Errorf("stdin not echoed verbatim:\n%s", echoed.String())
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var report Report
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(report.Benchmarks) != 4 {
		t.Errorf("JSON holds %d benchmarks, want 4", len(report.Benchmarks))
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	if err := run(nil, strings.NewReader("no benchmarks here\n"), &strings.Builder{}); err == nil {
		t.Error("benchmark-free input accepted")
	}
}

func TestParseResultLineRejectsMalformed(t *testing.T) {
	for _, line := range []string{
		"BenchmarkX",
		"BenchmarkX 12",
		"BenchmarkX twelve 34 ns/op",
		"BenchmarkX 12 fast ns/op",
	} {
		if _, ok := parseResultLine(line); ok {
			t.Errorf("malformed line parsed: %q", line)
		}
	}
}
