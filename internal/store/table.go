package store

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Column describes one table column.
type Column struct {
	Name string
	Type ColType
}

// Schema describes a table: its columns and the primary-key column index.
type Schema struct {
	Name    string
	Columns []Column
	Primary int // index into Columns of the primary key
}

// colIndex returns the index of the named column, or -1.
func (s *Schema) colIndex(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// validate checks a row against the schema.
func (s *Schema) validate(row Row) error {
	if len(row) != len(s.Columns) {
		return fmt.Errorf("store: table %s: row has %d values, schema has %d columns", s.Name, len(row), len(s.Columns))
	}
	for i, v := range row {
		if v.Type != s.Columns[i].Type {
			return fmt.Errorf("%w: column %s is %s, got %s", ErrTypeMism, s.Columns[i].Name, s.Columns[i].Type, v.Type)
		}
	}
	return nil
}

// Table is a hash-partitioned table: rows live on the shard selected by
// their encoded primary key. Each shard serves its slice from two
// layers: immutable sorted segment files written by compaction, and an
// in-memory memtable (B-tree) holding everything written since — rows,
// plus tombstones masking segment keys deleted after compaction. Point
// operations route to one shard; batch inserts split into per-shard
// sub-batches logged and applied in parallel; scans and range reads
// take a snapshot (pinned segments + captured memtable) and k-way-merge
// it without holding any lock, so a long analytic read never blocks a
// live ingest.
type Table struct {
	schema Schema
	shards []*tableShard
}

// tombstone marks a memtable key deleted after the last compaction: it
// masks any segment-resident row with the same key until a major
// compaction drops both. It carries the primary-key value because the
// key encoding is one-way: a minor compaction re-logs surviving
// tombstones as delete records, which need the Value back.
type tombstone struct{ pk Value }

// tableShard is one shard's slice of a table: its immutable segments,
// the memtable of post-compaction writes, the live-row count, the
// snapshot sequence, and the shard-local halves of every secondary
// index.
type tableShard struct {
	schema    Schema
	shard     *Shard
	mu        sync.RWMutex
	segs      []*segment        // immutable sorted runs, oldest → newest
	primary   *btree            // memtable: pk key bytes → Row | tombstone
	count     int               // live rows (segments + memtable − tombstones)
	seq       uint64            // bumped per mutation; snapshot watermark
	secondary map[string]*btree // column name → key bytes → postingList
}

// Errors returned by table operations.
var (
	ErrDuplicate = errors.New("store: duplicate primary key")
	ErrNotFound  = errors.New("store: not found")
	ErrNoIndex   = errors.New("store: no index on column")
	ErrPKChange  = errors.New("store: update may not change the primary key")
)

// Schema returns a copy of the table's schema.
func (t *Table) Schema() Schema { return t.schema }

// shardFor routes an encoded primary key to its home shard.
func (t *Table) shardFor(key []byte) *tableShard {
	return t.shards[shardIndex(key, len(t.shards))]
}

// segGet searches the shard's segments newest-first for key. rs (may
// be nil) accumulates bloom/cache accounting.
func (ts *tableShard) segGet(key []byte, rs *readStats) (Row, bool, error) {
	for i := len(ts.segs) - 1; i >= 0; i-- {
		row, ok, err := ts.segs[i].get(key, rs)
		if err != nil {
			return nil, false, err
		}
		if ok {
			return row, true, nil
		}
	}
	return nil, false, nil
}

// liveGet resolves key through the layers: a memtable row is live, a
// memtable tombstone is dead (whatever the segments hold), otherwise
// the segments decide. Callers hold at least the read lock.
func (ts *tableShard) liveGet(key []byte) (Row, bool, error) {
	if v, ok := ts.primary.Get(key); ok {
		if row, isRow := v.(Row); isRow {
			return row, true, nil
		}
		return nil, false, nil // tombstone
	}
	return ts.segGet(key, nil)
}

// segsMightHave reports whether key falls inside any segment's zone
// map — the cheap test that lets deletes of never-compacted keys skip
// the tombstone (and the disk).
func (ts *tableShard) segsMightHave(key []byte) bool {
	for _, sg := range ts.segs {
		if len(sg.blocks) > 0 &&
			bytes.Compare(key, sg.minKey) >= 0 && bytes.Compare(key, sg.maxKey) <= 0 {
			return true
		}
	}
	return false
}

// MaxPK returns the largest primary-key value in the table and whether
// the table is non-empty. Id-allocating writers (core.PersistAll) seed
// from it rather than from Len(): after a crash truncates one shard's
// WAL, surviving shards can hold keys far beyond the row count, and
// Len()+1 would collide with them.
func (t *Table) MaxPK() (Value, bool) {
	var best Value
	found := false
	for _, ts := range t.shards {
		pk, ok := ts.maxPK()
		if !ok {
			continue
		}
		if !found || cmpValues(pk, best) > 0 {
			best, found = pk, true
		}
	}
	return best, found
}

// maxPK finds one shard's largest live key. With no segments it is a
// B-tree walk; with segments the shard's snapshot is merged (the
// segment max may be shadowed by a tombstone, so the zone map alone
// cannot answer).
func (ts *tableShard) maxPK() (Value, bool) {
	ts.mu.RLock()
	if len(ts.segs) == 0 {
		defer ts.mu.RUnlock()
		_, v, ok := ts.primary.Max()
		if !ok {
			return Value{}, false
		}
		return v.(Row)[ts.schema.Primary], true
	}
	ss := ts.captureLocked(nil, nil)
	ts.mu.RUnlock()
	defer ss.release()
	var last Row
	_ = ss.iterate(nil, nil, nil, func(r Row) bool { last = r; return true })
	if last == nil {
		return Value{}, false
	}
	return last[ts.schema.Primary], true
}

// Len returns the number of live rows across all shards. The count is
// maintained incrementally by every mutation, so no segment is read.
func (t *Table) Len() int {
	n := 0
	for _, ts := range t.shards {
		ts.mu.RLock()
		n += ts.count
		ts.mu.RUnlock()
	}
	return n
}

// Insert adds a row. The primary key must be unique (routing by key
// hash makes the per-shard check global; the check consults the
// segments' zone maps, so monotonically increasing keys never touch
// disk).
func (t *Table) Insert(row Row) error {
	if err := t.schema.validate(row); err != nil {
		return err
	}
	key := encodeKey(row[t.schema.Primary])
	ts := t.shardFor(key)
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.insertLocked(key, row)
}

func (ts *tableShard) insertLocked(key []byte, row Row) error {
	_, live, err := ts.liveGet(key)
	if err != nil {
		return err
	}
	if live {
		return fmt.Errorf("%w: %s", ErrDuplicate, row[ts.schema.Primary])
	}
	if err := ts.shard.logInsert(ts.schema.Name, row); err != nil {
		return err
	}
	ts.applyInsert(key, row)
	return nil
}

// InsertBatch adds many rows with one write-ahead-log record per
// involved shard. The whole batch is validated (schema and primary-key
// uniqueness, including against other rows of the same batch) under
// every involved shard's lock before anything is logged or applied, so
// a validation error leaves the table unchanged on every shard. The
// per-shard sub-batches are then logged and applied in parallel; each
// is atomic on its shard — framed as one CRC-covered record, so a
// crash-torn sub-batch drops whole on that shard's recovery while
// other shards keep theirs (an I/O error mid-flush can likewise leave
// a sub-batch applied on one shard and not another).
func (t *Table) InsertBatch(rows []Row) error {
	if len(rows) == 0 {
		return nil
	}
	n := len(t.shards)
	groups := make([][]Row, n)
	keys := make([][][]byte, n)
	for _, row := range rows {
		if err := t.schema.validate(row); err != nil {
			return err
		}
		key := encodeKey(row[t.schema.Primary])
		si := shardIndex(key, n)
		groups[si] = append(groups[si], row)
		keys[si] = append(keys[si], key)
	}

	// Phase 1: lock involved shards in id order (a fixed order keeps
	// concurrent batches from deadlocking) and validate everything.
	var locked []*tableShard
	unlock := func() {
		for i := len(locked) - 1; i >= 0; i-- {
			locked[i].mu.Unlock()
		}
	}
	for si, g := range groups {
		if len(g) == 0 {
			continue
		}
		ts := t.shards[si]
		ts.mu.Lock()
		locked = append(locked, ts)
		inBatch := make(map[string]bool, len(g))
		for i, row := range g {
			key := keys[si][i]
			_, live, err := ts.liveGet(key)
			if err != nil {
				unlock()
				return err
			}
			if live || inBatch[string(key)] {
				unlock()
				return fmt.Errorf("%w: %s", ErrDuplicate, row[t.schema.Primary])
			}
			inBatch[string(key)] = true
		}
	}
	defer unlock()

	// Phase 2: log and apply per shard, in parallel when partitioned.
	if n == 1 {
		return t.shards[0].logApplyBatch(groups[0], keys[0])
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for si := range groups {
		if len(groups[si]) == 0 {
			continue
		}
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			errs[si] = t.shards[si].logApplyBatch(groups[si], keys[si])
		}(si)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// logApplyBatch writes one batch record to the shard's WAL and applies
// the rows. Callers hold the shard's write lock and have validated the
// batch.
func (ts *tableShard) logApplyBatch(rows []Row, keys [][]byte) error {
	if err := ts.shard.logInsertBatch(ts.schema.Name, rows); err != nil {
		return err
	}
	for i, row := range rows {
		ts.applyInsert(keys[i], row)
	}
	return nil
}

// replayInsert applies one row during WAL replay. A duplicate primary
// key replaces the existing row (and its index postings) so that replay
// of any log prefix leaves indexes exactly consistent with the table.
// After a compaction interrupted between its manifest commit and its
// WAL swap, the old WAL replays rows that also live in segments; the
// replace path makes that idempotent.
func (ts *tableShard) replayInsert(row Row) {
	key := encodeKey(row[ts.schema.Primary])
	// A segment read error during replay is treated as key-absent: the
	// memtable version shadows the segment on every read path anyway.
	if old, live, _ := ts.liveGet(key); live {
		ts.applyDelete(key, old)
	}
	ts.applyInsert(key, row)
}

// applyInsert performs the in-memory insert. The key must not be live
// (callers checked); it may be a tombstone, which the row replaces.
func (ts *tableShard) applyInsert(key []byte, row Row) {
	ts.primary.Put(key, row)
	ts.count++
	ts.seq++
	for col, idx := range ts.secondary {
		ci := ts.schema.colIndex(col)
		sk := encodeKey(row[ci])
		indexAdd(idx, sk, key, row)
	}
}

// Get returns the row with the given primary key.
func (t *Table) Get(pk Value) (Row, error) {
	key := encodeKey(pk)
	ts := t.shardFor(key)
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	row, live, err := ts.liveGet(key)
	if err != nil {
		return nil, err
	}
	if !live {
		return nil, ErrNotFound
	}
	return row, nil
}

// Delete removes the row with the given primary key.
func (t *Table) Delete(pk Value) error {
	key := encodeKey(pk)
	ts := t.shardFor(key)
	ts.mu.Lock()
	defer ts.mu.Unlock()
	old, live, err := ts.liveGet(key)
	if err != nil {
		return err
	}
	if !live {
		return ErrNotFound
	}
	if err := ts.shard.logDelete(ts.schema.Name, pk); err != nil {
		return err
	}
	ts.applyDelete(key, old)
	return nil
}

// applyDelete removes a live row: index postings go, and the memtable
// either drops the key or — when a segment may still hold it — takes a
// tombstone so the segment row stays masked until the next compaction.
func (ts *tableShard) applyDelete(key []byte, row Row) {
	for col, idx := range ts.secondary {
		ci := ts.schema.colIndex(col)
		sk := encodeKey(row[ci])
		indexRemove(idx, sk, key)
	}
	if ts.segsMightHave(key) {
		ts.primary.Put(key, tombstone{pk: row[ts.schema.Primary]})
	} else {
		ts.primary.Delete(key)
	}
	ts.count--
	ts.seq++
}

// CreateIndex builds a non-unique secondary index on the named column,
// on every shard. The index is durable: each shard's WAL carries a
// create-index record re-created on replay and through Compact, so once
// built it exists after every reopen and is maintained transactionally
// by Insert/InsertBatch/Update/Delete alongside the rows. Creating an
// existing index is a no-op.
func (t *Table) CreateIndex(col string) error {
	if t.schema.colIndex(col) < 0 {
		return fmt.Errorf("store: table %s has no column %s", t.schema.Name, col)
	}
	// Build the in-memory index on every shard even if logging fails
	// partway: the fan-out planner and whole-table Lookup require the
	// index inventory to be identical across shards. A shard whose
	// create record could not be appended reports the error but still
	// carries the index in memory; the durable inventory is repaired
	// from the other shards' WALs at the next open (buildRouters).
	var firstErr error
	for _, ts := range t.shards {
		ts.mu.Lock()
		if _, ok := ts.secondary[col]; ok {
			ts.mu.Unlock()
			continue
		}
		if err := ts.shard.logCreateIndex(ts.schema.Name, col); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := ts.createIndexLocked(col); err != nil && firstErr == nil {
			firstErr = err
		}
		ts.mu.Unlock()
	}
	return firstErr
}

// createIndexLocked builds the index from the shard's current live
// view: memtable rows carry their values inline; segment-resident rows
// are indexed by reference (primary key only), so the index holds no
// second copy of rows that already live on disk. Callers hold the
// shard's write lock (or are single-threaded WAL replay / open).
func (ts *tableShard) createIndexLocked(col string) error {
	if _, ok := ts.secondary[col]; ok {
		return nil
	}
	idx := newBtree()
	ci := ts.schema.colIndex(col)
	// Segment rows first, merged newest-wins across the stack (an older
	// run's version of a key must not leak a stale posting) and skipping
	// keys the memtable shadows …
	if len(ts.segs) > 0 {
		ss := shardSnap{segs: ts.segs} // borrowed refs; not released
		err := ss.iterate(nil, nil, nil, func(row Row) bool {
			key := encodeKey(row[ts.schema.Primary])
			if _, shadowed := ts.primary.Get(key); !shadowed {
				indexAdd(idx, encodeKey(row[ci]), key, nil)
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	// … then live memtable rows with their values inline.
	ts.primary.Ascend(func(key []byte, val interface{}) bool {
		if row := liveRow(val); row != nil {
			indexAdd(idx, encodeKey(row[ci]), key, row)
		}
		return true
	})
	ts.secondary[col] = idx
	return nil
}

// postingList is the value type of secondary index entries: the rows
// sharing one indexed value, kept sorted by primary-key bytes so reads
// stream them in deterministic order without sorting. An entry's row
// may be nil — the row then lives in a segment and is fetched by key
// on read — so the index never duplicates disk-resident row data in
// memory.
type postingEntry struct {
	pk  string // encoded primary key
	row Row    // inline row, or nil when segment-resident
}

type postingList struct {
	entries []postingEntry // ascending pk
}

// find returns the insertion position of pk and whether it is present.
func (pl *postingList) find(pk string) (int, bool) {
	i := sort.Search(len(pl.entries), func(i int) bool { return pl.entries[i].pk >= pk })
	return i, i < len(pl.entries) && pl.entries[i].pk == pk
}

// resolveAll resolves a pk-sorted posting slice into rows, position for
// position. Inline entries cost nothing; by-reference entries are
// batch-resolved against the segment stack newest-first — each segment
// gets one sorted walk over the still-missing pks (getBatch), so a
// block shared by many entries is read and decoded once per query
// instead of once per row. Callers hold at least the shard's read
// lock. rs may be nil.
func (ts *tableShard) resolveAll(entries []postingEntry, rs *readStats) ([]Row, error) {
	out := make([]Row, len(entries))
	var missing []int
	for i, e := range entries {
		if e.row != nil {
			out[i] = e.row
		} else {
			missing = append(missing, i)
		}
	}
	for i := len(ts.segs) - 1; i >= 0 && len(missing) > 0; i-- {
		var err error
		missing, err = ts.segs[i].getBatch(entries, missing, out, rs)
		if err != nil {
			return nil, err
		}
	}
	if len(missing) > 0 {
		return nil, fmt.Errorf("store: index entry references missing segment row (%w)", ErrCorrupt)
	}
	return out, nil
}

// appendResolved appends the posting rows (already pk-sorted) to out,
// resolving by-reference entries from the segments.
func (ts *tableShard) appendResolved(pl *postingList, out []Row, rs *readStats) ([]Row, error) {
	rows, err := ts.resolveAll(pl.entries, rs)
	if err != nil {
		return out, err
	}
	return append(out, rows...), nil
}

func indexAdd(idx *btree, sk, pk []byte, row Row) {
	v, ok := idx.Get(sk)
	if !ok {
		idx.Put(sk, &postingList{entries: []postingEntry{{pk: string(pk), row: row}}})
		return
	}
	pl := v.(*postingList)
	i, found := pl.find(string(pk))
	if found {
		pl.entries[i].row = row
		return
	}
	pl.entries = append(pl.entries, postingEntry{})
	copy(pl.entries[i+1:], pl.entries[i:])
	pl.entries[i] = postingEntry{pk: string(pk), row: row}
}

func indexRemove(idx *btree, sk, pk []byte) {
	if v, ok := idx.Get(sk); ok {
		pl := v.(*postingList)
		if i, found := pl.find(string(pk)); found {
			pl.entries = append(pl.entries[:i], pl.entries[i+1:]...)
		}
		if len(pl.entries) == 0 {
			idx.Delete(sk)
		}
	}
}

// Lookup returns all rows whose indexed column equals v in ascending
// primary-key order, using the secondary index on col. The column must
// have an index. With multiple shards the per-shard posting lists are
// fanned out and merged by primary key.
func (t *Table) Lookup(col string, v Value) ([]Row, error) {
	if len(t.shards) == 1 {
		return t.shards[0].lookup(col, v)
	}
	parts := make([][]Row, len(t.shards))
	errs := make([]error, len(t.shards))
	var wg sync.WaitGroup
	for i, ts := range t.shards {
		wg.Add(1)
		go func(i int, ts *tableShard) {
			defer wg.Done()
			parts[i], errs[i] = ts.lookup(col, v)
		}(i, ts)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return kwayMerge(parts, t.lessByPK()), nil
}

func (ts *tableShard) lookup(col string, v Value) ([]Row, error) {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	idx, ok := ts.secondary[col]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoIndex, col)
	}
	pv, ok := idx.Get(encodeKey(v))
	if !ok {
		return nil, nil
	}
	pl := pv.(*postingList)
	return ts.resolveAll(pl.entries, nil)
}

// kwayMerge merges per-shard result slices that are each already
// sorted by less into one sorted slice. Each output row costs at most
// shards-1 comparisons and the merge allocates only the output, so the
// fan-out read paths stay close to the single-shard cost.
func kwayMerge(parts [][]Row, less func(a, b Row) bool) []Row {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total == 0 {
		return nil
	}
	out := make([]Row, 0, total)
	idx := make([]int, len(parts))
	for len(out) < total {
		best := -1
		for i, p := range parts {
			if idx[i] >= len(p) {
				continue
			}
			if best < 0 || less(p[idx[i]], parts[best][idx[best]]) {
				best = i
			}
		}
		out = append(out, parts[best][idx[best]])
		idx[best]++
	}
	return out
}

// lessByPK orders rows by primary-key value — identical to the B-trees'
// encoded-key order, because encodeKey is order-preserving within a
// type and a table's primary keys share the schema's type — without
// encoding a key per comparison.
func (t *Table) lessByPK() func(a, b Row) bool {
	pk := t.schema.Primary
	return func(a, b Row) bool { return cmpValues(a[pk], b[pk]) < 0 }
}

// lessByColPK orders rows by an indexed column's value, breaking ties
// by primary key: the order an index walk produces.
func (t *Table) lessByColPK(ci int) func(a, b Row) bool {
	pk := t.schema.Primary
	return func(a, b Row) bool {
		if c := cmpValues(a[ci], b[ci]); c != 0 {
			return c < 0
		}
		return cmpValues(a[pk], b[pk]) < 0
	}
}

// Scan calls fn for every row in ascending primary-key order until fn
// returns false. It runs over a snapshot: each shard's lock is held
// only for the memtable capture, after which fn streams from pinned
// segments and the captured entries with no lock held — a scan of any
// length never blocks a concurrent ingest.
func (t *Table) Scan(fn func(Row) bool) {
	snap := t.Snapshot()
	defer snap.Release()
	_ = snap.Scan(fn) // a segment read error ends the scan early
}

// ScanRange calls fn for rows with primary key in [lo, hi), in
// ascending primary-key order; snapshotting as in Scan, with the
// bounds pruning both the memtable capture and (via zone maps) the
// segment blocks read.
func (t *Table) ScanRange(lo, hi Value, fn func(Row) bool) {
	lok, hik := encodeKey(lo), encodeKey(hi)
	snap := t.snapshotRange(lok, hik)
	defer snap.Release()
	_ = snap.scan(lok, hik, nil, fn)
}

// Select returns all rows matching a predicate, by full scan.
func (t *Table) Select(pred func(Row) bool) []Row {
	var out []Row
	t.Scan(func(r Row) bool {
		if pred(r) {
			out = append(out, r)
		}
		return true
	})
	return out
}
