// Package cliutil holds flag validation shared by the medex CLI and the
// medexd daemon. Every check returns a one-line, actionable error — the
// flag name, the rejected value, and what would be accepted — so a
// misconfigured invocation fails fast at startup instead of surfacing
// later as a confusing runtime error.
package cliutil

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// MaxShards bounds the accepted shard count. The engine itself has no
// hard ceiling, but thousands of shard WALs on one machine is a
// misconfiguration (each costs a descriptor and a goroutine per
// operation), so the flag layer refuses it.
const MaxShards = 1024

// Shards validates a shard-count flag: at least 1, at most MaxShards.
func Shards(flagName string, n int) error {
	if n < 1 {
		return fmt.Errorf("%s must be at least 1 (got %d)", flagName, n)
	}
	if n > MaxShards {
		return fmt.Errorf("%s must be at most %d (got %d)", flagName, MaxShards, n)
	}
	return nil
}

// Positive validates an integer flag that must be strictly positive
// (queue depths, body limits, batch caps).
func Positive(flagName string, v int) error {
	if v <= 0 {
		return fmt.Errorf("%s must be positive (got %d)", flagName, v)
	}
	return nil
}

// NonNegative validates an integer flag where zero selects a default
// (worker counts: 0 = GOMAXPROCS) but negatives are nonsense.
func NonNegative(flagName string, v int) error {
	if v < 0 {
		return fmt.Errorf("%s must not be negative (got %d; 0 selects the default)", flagName, v)
	}
	return nil
}

// PositiveDuration validates a timeout/deadline flag.
func PositiveDuration(flagName string, d time.Duration) error {
	if d <= 0 {
		return fmt.Errorf("%s must be a positive duration (got %s)", flagName, d)
	}
	return nil
}

// OneOf validates an enumerated string flag (backend and strategy
// selectors) against its allowed values.
func OneOf(flagName, val string, allowed ...string) error {
	for _, a := range allowed {
		if val == a {
			return nil
		}
	}
	return fmt.Errorf("%s must be one of %s (got %q)", flagName, strings.Join(allowed, "|"), val)
}

// DBPath validates a database path flag: the path's parent directory
// must exist and be writable (the store creates the file or shard
// directory itself, so only the parent is checked). An empty path is
// rejected; callers that allow in-memory stores should skip the check
// for "".
func DBPath(flagName, path string) error {
	if path == "" {
		return fmt.Errorf("%s is required", flagName)
	}
	parent := filepath.Dir(path)
	st, err := os.Stat(parent)
	if err != nil {
		return fmt.Errorf("%s: parent directory %s does not exist (create it first)", flagName, parent)
	}
	if !st.IsDir() {
		return fmt.Errorf("%s: %s is not a directory", flagName, parent)
	}
	// Writability: probe with a temp file rather than trusting mode
	// bits, which miss ACLs, read-only mounts and ownership.
	probe, err := os.CreateTemp(parent, ".medex-writable-*")
	if err != nil {
		return fmt.Errorf("%s: parent directory %s is not writable", flagName, parent)
	}
	probe.Close()
	os.Remove(probe.Name())
	return nil
}

// ExistingDir validates a directory flag that must already exist (a
// corpus directory).
func ExistingDir(flagName, path string) error {
	if path == "" {
		return fmt.Errorf("%s is required", flagName)
	}
	st, err := os.Stat(path)
	if err != nil {
		return fmt.Errorf("%s: directory %s does not exist", flagName, path)
	}
	if !st.IsDir() {
		return fmt.Errorf("%s: %s is not a directory", flagName, path)
	}
	return nil
}

// FirstErr returns the first non-nil error, letting callers validate a
// whole flag set in one expression.
func FirstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
