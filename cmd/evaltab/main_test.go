package main

import (
	"strings"
	"testing"
)

// TestEvaltabE1 pins the headline experiment's output shape: the E1
// table plus the paper-claim footer, on a small fixed corpus.
func TestEvaltabE1(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "E1", "-n", "8"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"E1",
		"paper: precision (recall) for all eight numeric attributes is 100%",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("E1 output missing %q:\n%s", want, got)
		}
	}
}

// TestEvaltabF1 pins the Figure 1 linkage diagram: it must render the
// parsed sentence with link-grammar connectors.
func TestEvaltabF1(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "F1"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "F1 / Figure 1: linkage diagram") {
		t.Errorf("F1 header missing:\n%s", got)
	}
	if !strings.Contains(got, "pulse") || !strings.Contains(got, "+") {
		t.Errorf("diagram not rendered:\n%s", got)
	}
}

// TestEvaltabLowercaseAndUnknown covers the id normalization and the
// error path.
func TestEvaltabLowercaseAndUnknown(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "f1"}, &out); err != nil {
		t.Errorf("lowercase experiment id rejected: %v", err)
	}
	if err := run([]string{"-exp", "Z9"}, &strings.Builder{}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"stray"}, &strings.Builder{}); err == nil {
		t.Error("stray positional argument accepted")
	}
}
