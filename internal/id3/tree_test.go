package id3

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func ex(class string, feats ...string) Example {
	m := map[string]bool{}
	for _, f := range feats {
		m[f] = true
	}
	return Example{Features: m, Class: class}
}

func smokingExamples() []Example {
	// Miniature version of the smoking task: never / former / current.
	// Class markers repeat across examples, as they do in real dictation
	// from a single clinician.
	return []Example{
		ex("never", "she", "have", "never", "smoke"),
		ex("never", "never", "smoke", "tobacco"),
		ex("never", "patient", "never", "smoke"),
		ex("never", "deny", "smoke"),
		ex("never", "deny", "tobacco", "use"),
		ex("never", "she", "deny", "smoke", "history"),
		ex("never", "no", "tobacco", "use"),
		ex("never", "no", "smoke", "history"),
		ex("former", "quit", "smoke", "year", "ago"),
		ex("former", "quit", "smoke"),
		ex("former", "she", "quit", "tobacco"),
		ex("former", "former", "smoker"),
		ex("former", "former", "smoker", "year"),
		ex("former", "stop", "smoke", "year"),
		ex("former", "stop", "smoke"),
		ex("current", "currently", "smoker"),
		ex("current", "currently", "smoke", "pack"),
		ex("current", "current", "smoker"),
		ex("current", "current", "smoker", "pack", "day"),
		ex("current", "smoke", "pack", "day"),
		ex("current", "she", "smoke", "pack", "daily"),
	}
}

func TestTrainPureLeaf(t *testing.T) {
	tr := Train([]Example{ex("a", "x"), ex("a", "y")})
	if !tr.leaf || tr.class != "a" {
		t.Fatalf("pure set should give leaf 'a', got %v", tr)
	}
	if tr.FeatureCount() != 0 || tr.Depth() != 0 {
		t.Error("leaf metrics")
	}
}

func TestTrainAndClassify(t *testing.T) {
	tr := Train(smokingExamples())
	for _, e := range smokingExamples() {
		if got := tr.Classify(e.Features); got != e.Class {
			t.Errorf("training example %v classified %q, want %q", e.Features, got, e.Class)
		}
	}
	// Unseen combinations.
	if got := tr.Classify(map[string]bool{"quit": true, "smoke": true, "ago": true}); got != "former" {
		t.Errorf("quit-smoking case = %q, want former", got)
	}
	if got := tr.Classify(map[string]bool{"never": true, "smoke": true}); got != "never" {
		t.Errorf("never case = %q, want never", got)
	}
}

func TestFeatureCountSmall(t *testing.T) {
	// ID3 with information gain should need few features, as the paper
	// observes (4–7 on the real task).
	tr := Train(smokingExamples())
	if fc := tr.FeatureCount(); fc == 0 || fc > 8 {
		t.Errorf("FeatureCount = %d, want small positive", fc)
	}
	if len(tr.Features()) != tr.FeatureCount() {
		t.Error("Features()/FeatureCount() disagree")
	}
}

func TestClassifyEmptyTree(t *testing.T) {
	tr := Train(nil)
	if got := tr.Classify(map[string]bool{"x": true}); got != "" {
		t.Errorf("empty tree classified %q", got)
	}
}

func TestMajorityTieBreak(t *testing.T) {
	// Equal counts: deterministic alphabetical tie-break.
	m, pure := majority([]Example{ex("b"), ex("a")})
	if m != "a" || pure {
		t.Errorf("majority = %q pure=%v", m, pure)
	}
}

func TestGainPerfectSplit(t *testing.T) {
	exs := []Example{ex("y", "f"), ex("y", "f"), ex("n"), ex("n")}
	if g := gain(exs, "f"); g < 0.99 {
		t.Errorf("perfect split gain = %v, want 1.0", g)
	}
	if g := gain(exs, "absent"); g != 0 {
		t.Errorf("useless feature gain = %v, want 0", g)
	}
}

func TestTreeString(t *testing.T) {
	tr := Train(smokingExamples())
	s := tr.String()
	if !strings.Contains(s, "has(") || !strings.Contains(s, "→") {
		t.Errorf("String() = %q", s)
	}
}

// Property: the tree always reproduces its own training labels when every
// example has a distinct feature signature.
func TestTrainConsistencyQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var exs []Example
		seen := map[string]bool{}
		classes := []string{"a", "b", "c"}
		for i := 0; i < 20; i++ {
			feats := map[string]bool{}
			sig := ""
			for j := 0; j < 6; j++ {
				if rng.Intn(2) == 1 {
					feats[string(rune('p'+j))] = true
					sig += "1"
				} else {
					sig += "0"
				}
			}
			if seen[sig] {
				continue
			}
			seen[sig] = true
			exs = append(exs, Example{Features: feats, Class: classes[rng.Intn(3)]})
		}
		tr := Train(exs)
		for _, e := range exs {
			if tr.Classify(e.Features) != e.Class {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCrossValidate(t *testing.T) {
	exs := smokingExamples()
	res := CrossValidate(exs, 5, 10, 1)
	if res.Accuracy < 0.5 {
		t.Errorf("CV accuracy = %.2f, suspiciously low", res.Accuracy)
	}
	if res.MinFeatures <= 0 || res.MaxFeatures < res.MinFeatures {
		t.Errorf("feature range %d–%d", res.MinFeatures, res.MaxFeatures)
	}
	if res.Rounds != 10 || res.Folds != 5 {
		t.Error("round/fold bookkeeping")
	}
	if len(res.PerClass) != 3 {
		t.Errorf("PerClass = %v", res.PerClass)
	}
	if s := res.String(); !strings.Contains(s, "accuracy") {
		t.Errorf("CVResult.String() = %q", s)
	}
}

func TestCrossValidateConfusionMatrix(t *testing.T) {
	exs := smokingExamples()
	res := CrossValidate(exs, 5, 4, 1)
	// Row sums equal actual counts × rounds.
	counts := map[string]int{}
	for _, e := range exs {
		counts[e.Class]++
	}
	for class, row := range res.Confusion {
		sum := 0
		for _, n := range row {
			sum += n
		}
		if sum != counts[class]*res.Rounds {
			t.Errorf("confusion row %q sums to %d, want %d", class, sum, counts[class]*res.Rounds)
		}
	}
	s := res.ConfusionString()
	for class := range counts {
		if !strings.Contains(s, class) {
			t.Errorf("ConfusionString missing %q:\n%s", class, s)
		}
	}
	if res.StdDev < 0 || res.StdDev > 0.5 {
		t.Errorf("implausible round stddev %v", res.StdDev)
	}
}

func TestStddev(t *testing.T) {
	if got := stddev(nil); got != 0 {
		t.Errorf("stddev(nil) = %v", got)
	}
	if got := stddev([]float64{5, 5, 5}); got != 0 {
		t.Errorf("stddev(constant) = %v", got)
	}
	if got := stddev([]float64{0, 1}); got != 0.5 {
		t.Errorf("stddev(0,1) = %v, want 0.5", got)
	}
}

func TestCrossValidateDeterministic(t *testing.T) {
	exs := smokingExamples()
	a := CrossValidate(exs, 5, 3, 42)
	b := CrossValidate(exs, 5, 3, 42)
	if a.Accuracy != b.Accuracy {
		t.Error("same seed must give same accuracy")
	}
}

func TestCrossValidateDegenerate(t *testing.T) {
	if res := CrossValidate(nil, 5, 10, 1); res.Accuracy != 0 {
		t.Error("empty input")
	}
	if res := CrossValidate([]Example{ex("a", "x")}, 5, 1, 1); res.Accuracy != 0 {
		t.Error("fewer examples than folds")
	}
}
