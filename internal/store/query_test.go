package store

import (
	"fmt"
	"path/filepath"
	"testing"
)

// attrSchema mirrors the warehouse's extracted table: one row per
// (patient, attribute, value).
func attrSchema() Schema {
	return Schema{
		Name: "extracted",
		Columns: []Column{
			{Name: "id", Type: TInt},
			{Name: "patient", Type: TInt},
			{Name: "attribute", Type: TString},
			{Name: "value", Type: TString},
			{Name: "numeric", Type: TFloat},
		},
		Primary: 0,
	}
}

// fillAttrs inserts n patients with a pulse, a smoking status and a
// weight row each.
func fillAttrs(t *testing.T, tbl *Table, n int) {
	t.Helper()
	var rows []Row
	id := int64(1)
	for p := 1; p <= n; p++ {
		smoking := "never"
		if p%3 == 0 {
			smoking = "current"
		}
		rows = append(rows,
			Row{Int(id), Int(int64(p)), Str("pulse"), Str("x"), Float(float64(60 + p%60))},
			Row{Int(id + 1), Int(int64(p)), Str("smoking"), Str(smoking), Float(0)},
			Row{Int(id + 2), Int(int64(p)), Str("weight"), Str("x"), Float(float64(50 + p%50))},
		)
		id += 3
	}
	if err := tbl.InsertBatch(rows); err != nil {
		t.Fatal(err)
	}
}

func TestQueryEqualityUsesIndexNoFullScan(t *testing.T) {
	db := OpenMemory()
	tbl, err := db.CreateTable(attrSchema())
	if err != nil {
		t.Fatal(err)
	}
	fillAttrs(t, tbl, 90)
	if err := tbl.CreateIndex("attribute"); err != nil {
		t.Fatal(err)
	}

	rows, stats, err := tbl.Query(Query{Preds: []Pred{
		Eq("attribute", Str("smoking")),
		Eq("value", Str("current")),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 30 {
		t.Fatalf("got %d rows, want 30", len(rows))
	}
	// The probe counter is the no-full-scan proof: one index probe, and
	// only the posting list's rows were examined — not the whole table.
	if !stats.UsedIndex || stats.FullScan {
		t.Fatalf("expected index path, got %+v", stats)
	}
	if stats.IndexCol != "attribute" || stats.IndexProbes != 1 {
		t.Errorf("expected 1 probe on attribute, got %+v", stats)
	}
	if stats.RowsExamined != 90 { // 90 smoking rows, not 270 total rows
		t.Errorf("RowsExamined = %d, want 90 (table has %d)", stats.RowsExamined, tbl.Len())
	}
}

func TestQueryRangeUsesIndex(t *testing.T) {
	db := OpenMemory()
	tbl, err := db.CreateTable(attrSchema())
	if err != nil {
		t.Fatal(err)
	}
	fillAttrs(t, tbl, 60)
	if err := tbl.CreateIndex("numeric"); err != nil {
		t.Fatal(err)
	}

	rows, stats, err := tbl.Query(Query{Preds: []Pred{
		Gt("numeric", Float(100)),
		Le("numeric", Float(110)),
		Eq("attribute", Str("pulse")),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.UsedIndex || stats.FullScan || stats.IndexCol != "numeric" {
		t.Fatalf("expected numeric index walk, got %+v", stats)
	}
	if len(rows) == 0 {
		t.Fatal("expected matches")
	}
	for _, r := range rows {
		if r[2].S != "pulse" || r[4].F <= 100 || r[4].F > 110 {
			t.Errorf("row violates predicates: %v", r)
		}
	}
	// Verify against the scan fallback.
	want := tbl.Select(func(r Row) bool {
		return r[2].S == "pulse" && r[4].F > 100 && r[4].F <= 110
	})
	if len(rows) != len(want) {
		t.Errorf("index path returned %d rows, scan %d", len(rows), len(want))
	}
}

func TestQueryScanFallback(t *testing.T) {
	db := OpenMemory()
	tbl, err := db.CreateTable(attrSchema())
	if err != nil {
		t.Fatal(err)
	}
	fillAttrs(t, tbl, 30)

	rows, stats, err := tbl.Query(Query{Preds: []Pred{Eq("attribute", Str("pulse"))}})
	if err != nil {
		t.Fatal(err)
	}
	if stats.UsedIndex || !stats.FullScan {
		t.Fatalf("expected scan fallback, got %+v", stats)
	}
	if len(rows) != 30 || stats.RowsExamined != tbl.Len() {
		t.Errorf("rows=%d examined=%d want 30/%d", len(rows), stats.RowsExamined, tbl.Len())
	}
	if stats.Plan() != "scan" {
		t.Errorf("Plan() = %q", stats.Plan())
	}
}

func TestQueryLimitAndErrors(t *testing.T) {
	db := OpenMemory()
	tbl, err := db.CreateTable(attrSchema())
	if err != nil {
		t.Fatal(err)
	}
	fillAttrs(t, tbl, 30)
	if err := tbl.CreateIndex("attribute"); err != nil {
		t.Fatal(err)
	}

	rows, _, err := tbl.Query(Query{Preds: []Pred{Eq("attribute", Str("pulse"))}, Limit: 5})
	if err != nil || len(rows) != 5 {
		t.Fatalf("limit: got %d rows, err %v", len(rows), err)
	}
	if _, _, err := tbl.Query(Query{Preds: []Pred{Eq("nope", Str("x"))}}); err == nil {
		t.Error("unknown column accepted")
	}
	if _, _, err := tbl.Query(Query{Preds: []Pred{Eq("attribute", Int(1))}}); err == nil {
		t.Error("type mismatch accepted")
	}
	if _, _, err := tbl.Query(Query{Preds: []Pred{{Col: "attribute", Op: 99, V: Str("x")}}}); err == nil {
		t.Error("bad operator accepted")
	}
}

func TestQueryEmptyPredsReturnsAll(t *testing.T) {
	db := OpenMemory()
	tbl, err := db.CreateTable(attrSchema())
	if err != nil {
		t.Fatal(err)
	}
	fillAttrs(t, tbl, 10)
	rows, stats, err := tbl.Query(Query{})
	if err != nil || len(rows) != 30 || !stats.FullScan {
		t.Fatalf("got %d rows, stats %+v, err %v", len(rows), stats, err)
	}
}

// TestIndexSurvivesReopen pins the durability half of the tentpole: an
// index created before a reopen exists after replay, stays maintained,
// and equals the table contents.
func TestIndexSurvivesReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.db")
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable(attrSchema())
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex("attribute"); err != nil {
		t.Fatal(err)
	}
	fillAttrs(t, tbl, 20)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, err = db.Table("extracted")
	if err != nil {
		t.Fatal(err)
	}
	st := tbl.Stats()
	if st.Indexes != 1 || st.IndexNames[0] != "attribute" {
		t.Fatalf("index lost across reopen: %+v", st)
	}
	_, stats, err := tbl.Query(Query{Preds: []Pred{Eq("attribute", Str("pulse"))}})
	if err != nil || !stats.UsedIndex {
		t.Fatalf("reopened query did not use index: %+v err %v", stats, err)
	}
	checkIndexConsistent(t, tbl)

	// The replayed index must stay maintained by new writes.
	if err := tbl.Insert(Row{Int(10_000), Int(999), Str("pulse"), Str("x"), Float(70)}); err != nil {
		t.Fatal(err)
	}
	rows, _, err := tbl.Query(Query{Preds: []Pred{Eq("attribute", Str("pulse"))}})
	if err != nil || len(rows) != 21 {
		t.Fatalf("post-reopen insert not indexed: %d rows, err %v", len(rows), err)
	}
}

// TestIndexSurvivesCompact: Compact rewrites the log; indexes must be in
// the rewritten state.
func TestIndexSurvivesCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.db")
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable(attrSchema())
	if err != nil {
		t.Fatal(err)
	}
	fillAttrs(t, tbl, 20)
	if err := tbl.CreateIndex("attribute"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Delete(Int(1)); err != nil {
		t.Fatal(err)
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.RecoveredWithLoss() {
		t.Fatal("compacted log reported loss")
	}
	tbl, err = db.Table("extracted")
	if err != nil {
		t.Fatal(err)
	}
	if st := tbl.Stats(); st.Indexes != 1 {
		t.Fatalf("index lost across compact+reopen: %+v", st)
	}
	if tbl.Len() != 59 {
		t.Fatalf("row count after compact+reopen = %d, want 59", tbl.Len())
	}
	checkIndexConsistent(t, tbl)
}

// checkIndexConsistent asserts every secondary index holds exactly the
// table's rows on every shard: the crash invariant "index == table
// contents", which sharding makes per-shard.
func checkIndexConsistent(t *testing.T, tbl *Table) {
	t.Helper()
	for _, ts := range tbl.shards {
		checkShardIndexConsistent(t, ts)
	}
}

func checkShardIndexConsistent(t *testing.T, ts *tableShard) {
	t.Helper()
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	// Materialize the shard's live view — segments merged with the
	// memtable, tombstones dropped — which is what the indexes must
	// mirror exactly.
	live := make(map[string]Row)
	ss := ts.captureLocked(nil, nil)
	defer ss.release()
	pkc := ts.schema.Primary
	if err := ss.iterate(nil, nil, nil, func(row Row) bool {
		live[string(encodeKey(row[pkc]))] = row
		return true
	}); err != nil {
		t.Fatalf("shard %d: merged iterate: %v", ts.shard.id, err)
	}
	if len(live) != ts.count {
		t.Errorf("shard %d: live count %d, merged view has %d rows", ts.shard.id, ts.count, len(live))
	}
	for col, idx := range ts.secondary {
		ci := ts.schema.colIndex(col)
		// Every live row appears in the index under its column value.
		for pk, row := range live {
			v, ok := idx.Get(encodeKey(row[ci]))
			if !ok {
				t.Errorf("shard %d: index %s missing value %v", ts.shard.id, col, row[ci])
				continue
			}
			if _, found := v.(*postingList).find(pk); !found {
				t.Errorf("shard %d: index %s missing row pk %v", ts.shard.id, col, row[pkc])
			}
		}
		// And the index holds no extra or stale rows; by-reference
		// entries must resolve from the segments.
		indexed := 0
		idx.Ascend(func(_ []byte, v interface{}) bool {
			pl := v.(*postingList)
			indexed += len(pl.entries)
			for _, e := range pl.entries {
				want, ok := live[e.pk]
				if !ok {
					t.Errorf("shard %d: index %s holds pk absent from live view", ts.shard.id, col)
					continue
				}
				got, err := ts.resolveAll([]postingEntry{e}, nil)
				if err != nil {
					t.Errorf("shard %d: index %s entry resolve: %v", ts.shard.id, col, err)
				} else if !rowsEqual(got[0], want) {
					t.Errorf("shard %d: index %s holds stale row for pk %v", ts.shard.id, col, want[pkc])
				}
			}
			return true
		})
		if indexed != len(live) {
			t.Errorf("shard %d: index %s holds %d rows, table has %d", ts.shard.id, col, indexed, len(live))
		}
	}
}

// benchTable builds a large attribute table, optionally indexed.
func benchTable(b *testing.B, n int, indexed bool) *Table {
	b.Helper()
	db := OpenMemory()
	tbl, err := db.CreateTable(attrSchema())
	if err != nil {
		b.Fatal(err)
	}
	var rows []Row
	id := int64(1)
	for p := 1; p <= n; p++ {
		for _, attr := range []string{"pulse", "weight", "age", "blood pressure", "smoking"} {
			rows = append(rows, Row{
				Int(id), Int(int64(p)), Str(attr),
				Str(fmt.Sprintf("v%d", p)), Float(float64(p % 200)),
			})
			id++
		}
	}
	if err := tbl.InsertBatch(rows); err != nil {
		b.Fatal(err)
	}
	if indexed {
		if err := tbl.CreateIndex("attribute"); err != nil {
			b.Fatal(err)
		}
	}
	return tbl
}

// BenchmarkQueryIndexed vs BenchmarkQueryScan is the index ablation: the
// same equality+range question answered through the attribute index and
// by full scan.
func BenchmarkQueryIndexed(b *testing.B) {
	tbl := benchTable(b, 2000, true)
	q := Query{Preds: []Pred{Eq("attribute", Str("pulse")), Ge("numeric", Float(150))}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, stats, err := tbl.Query(q)
		if err != nil || !stats.UsedIndex || len(rows) == 0 {
			b.Fatalf("rows=%d stats=%+v err=%v", len(rows), stats, err)
		}
	}
}

func BenchmarkQueryScan(b *testing.B) {
	tbl := benchTable(b, 2000, false)
	q := Query{Preds: []Pred{Eq("attribute", Str("pulse")), Ge("numeric", Float(150))}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, stats, err := tbl.Query(q)
		if err != nil || !stats.FullScan || len(rows) == 0 {
			b.Fatalf("rows=%d stats=%+v err=%v", len(rows), stats, err)
		}
	}
}
