package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func batchSchema() Schema {
	return Schema{
		Name: "t",
		Columns: []Column{
			{Name: "id", Type: TInt},
			{Name: "val", Type: TString},
		},
		Primary: 0,
	}
}

func batchRows(from, n int) []Row {
	rows := make([]Row, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, Row{Int(int64(from + i)), Str("v")})
	}
	return rows
}

func TestInsertBatchDurableAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "batch.db")
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable(batchSchema())
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.InsertBatch(batchRows(1, 100)); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.RecoveredWithLoss() {
		t.Error("clean close reported loss")
	}
	tbl2, err := db2.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if tbl2.Len() != 100 {
		t.Fatalf("reopened table has %d rows, want 100", tbl2.Len())
	}
	row, err := tbl2.Get(Int(42))
	if err != nil || row[1].S != "v" {
		t.Fatalf("Get(42) = %v, %v", row, err)
	}
}

func TestInsertBatchTruncatedTailDropsWholeBatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "crash.db")
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable(batchSchema())
	if err != nil {
		t.Fatal(err)
	}
	// One single insert (must survive), then a batch whose WAL record we
	// tear mid-write to simulate a crash.
	if err := tbl.Insert(Row{Int(1), Str("v")}); err != nil {
		t.Fatal(err)
	}
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	intact, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.InsertBatch(batchRows(2, 50)); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Cut the batch record short: keep the intact prefix plus half of
	// whatever the batch appended.
	full, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := intact.Size() + (full.Size()-intact.Size())/2
	if err := os.Truncate(path, torn); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if !db2.RecoveredWithLoss() {
		t.Error("torn batch tail not reported as loss")
	}
	tbl2, err := db2.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	// Atomicity: the torn batch vanishes entirely; the earlier insert
	// survives.
	if tbl2.Len() != 1 {
		t.Fatalf("recovered table has %d rows, want 1 (whole batch dropped)", tbl2.Len())
	}
	if _, err := tbl2.Get(Int(1)); err != nil {
		t.Errorf("pre-batch row lost: %v", err)
	}
	if _, err := tbl2.Get(Int(2)); !errors.Is(err, ErrNotFound) {
		t.Errorf("first batch row survived a torn batch: %v", err)
	}
}

func TestInsertBatchEquivalentToSingles(t *testing.T) {
	a := OpenMemory()
	ta, err := a.CreateTable(batchSchema())
	if err != nil {
		t.Fatal(err)
	}
	b := OpenMemory()
	tb, err := b.CreateTable(batchSchema())
	if err != nil {
		t.Fatal(err)
	}
	rows := batchRows(1, 37)
	for _, r := range rows {
		if err := ta.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.InsertBatch(rows); err != nil {
		t.Fatal(err)
	}
	if ta.Len() != tb.Len() {
		t.Fatalf("lengths differ: %d vs %d", ta.Len(), tb.Len())
	}
	var got []Row
	tb.Scan(func(r Row) bool { got = append(got, r); return true })
	i := 0
	ta.Scan(func(r Row) bool {
		for c := range r {
			if !r[c].Equal(got[i][c]) {
				t.Errorf("row %d col %d: %v != %v", i, c, r[c], got[i][c])
			}
		}
		i++
		return true
	})
}

func TestInsertBatchAllOrNothingOnDuplicate(t *testing.T) {
	db := OpenMemory()
	tbl, err := db.CreateTable(batchSchema())
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(Row{Int(5), Str("v")}); err != nil {
		t.Fatal(err)
	}
	// Batch containing a key that collides with an existing row.
	if err := tbl.InsertBatch(batchRows(4, 3)); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("err = %v, want ErrDuplicate", err)
	}
	if tbl.Len() != 1 {
		t.Fatalf("failed batch left %d rows, want 1", tbl.Len())
	}
	// Batch with an internal duplicate.
	dup := []Row{{Int(10), Str("v")}, {Int(10), Str("v")}}
	if err := tbl.InsertBatch(dup); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("err = %v, want ErrDuplicate", err)
	}
	if tbl.Len() != 1 {
		t.Fatalf("failed batch left %d rows, want 1", tbl.Len())
	}
	// Empty batch is a no-op.
	if err := tbl.InsertBatch(nil); err != nil {
		t.Fatal(err)
	}
}
