package main

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/store"
)

func TestParseStrategy(t *testing.T) {
	cases := map[string]core.Strategy{
		"link-grammar":   core.LinkGrammar,
		"pattern-only":   core.PatternOnly,
		"proximity-only": core.ProximityOnly,
	}
	for name, want := range cases {
		got, err := parseStrategy(name)
		if err != nil || got != want {
			t.Errorf("parseStrategy(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := parseStrategy("bogus"); err == nil {
		t.Error("bogus strategy accepted")
	}
}

// queryTestDB persists a small synthetic extraction set to a WAL-backed
// database, with warehouse indexes created before ingest (the medex
// extract order).
func queryTestDB(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "extracted.db")
	db, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.OpenWarehouse(db, nil); err != nil {
		t.Fatal(err)
	}
	var exs []core.Extraction
	for p := 1; p <= 9; p++ {
		smoking := "never"
		if p%2 == 0 {
			smoking = "current"
		}
		exs = append(exs, core.Extraction{
			Patient: p,
			Numeric: map[string]core.NumericValue{"pulse": {Attr: "pulse", Value: float64(90 + p)}},
			Smoking: smoking,
		})
	}
	if _, err := core.PersistAll(db, exs); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestQueryCommand pins the acceptance path: medex query answers an
// equality and a numeric-range question from a persisted DB through the
// secondary index (0 full scans in the printed plan).
func TestQueryCommand(t *testing.T) {
	path := queryTestDB(t)

	var out strings.Builder
	if err := runQuery([]string{"-db", path, "-attr", "smoking", "-value", "current"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "patients (4): 2 4 6 8") {
		t.Errorf("equality answer wrong:\n%s", got)
	}
	if !strings.Contains(got, "1/1 conditions indexed") || !strings.Contains(got, "0 full scans") {
		t.Errorf("equality question did not use the index:\n%s", got)
	}

	out.Reset()
	if err := runQuery([]string{"-db", path, "-attr", "pulse", "-min", "95"}, &out); err != nil {
		t.Fatal(err)
	}
	got = out.String()
	if !strings.Contains(got, "patients (4): 6 7 8 9") {
		t.Errorf("range answer wrong:\n%s", got)
	}
	if !strings.Contains(got, "1/1 conditions indexed") || !strings.Contains(got, "0 full scans") {
		t.Errorf("range question did not use the index:\n%s", got)
	}

	out.Reset()
	if err := runQuery([]string{"-db", path, "-patient", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); !strings.Contains(got, "patient 4 (2 attribute rows)") {
		t.Errorf("patient chart wrong:\n%s", got)
	}

	out.Reset()
	if err := runQuery([]string{"-db", path, "-attr", "pulse", "-min", "95", "-max", "98", "-rows"}, &out); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); !strings.Contains(got, "2 rows;") {
		t.Errorf("rows output wrong:\n%s", got)
	}

	if err := runQuery([]string{"-db", path}, &out); err == nil {
		t.Error("query without -attr/-patient accepted")
	}
	if err := runQuery([]string{}, &out); err == nil {
		t.Error("query without -db accepted")
	}
}

func TestPrintExtractionDoesNotPanic(t *testing.T) {
	printExtraction(core.Extraction{
		Patient: 1,
		Numeric: map[string]core.NumericValue{
			"pulse":          {Attr: "pulse", Value: 84},
			"blood pressure": {Attr: "blood pressure", Value: 144, Value2: 90, Ratio: true},
		},
		PreMedical: []string{"diabetes"},
		Smoking:    "never",
	})
}
