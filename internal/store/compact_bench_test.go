package store

import (
	"path/filepath"
	"sync/atomic"
	"testing"
)

// The compaction benchmarks pin the two claims behind the background
// compactor: a minor fold costs the write set since the last
// compaction (not the corpus), and moving compaction off the write
// path keeps ingest throughput close to the no-compaction ceiling —
// unlike the foreground baseline, which stalls writers for every
// rewrite. CI's bench-smoke step tracks both via BENCH_<n>.json.

// benchCorpus bulk-loads n attribute rows.
func benchCorpus(b *testing.B, tbl *Table, n int) {
	b.Helper()
	batch := make([]Row, 0, 512)
	for id := int64(0); id < int64(n); id++ {
		batch = append(batch, Row{
			Int(id), Int(id % 500),
			Str("pulse"), Str("x"), Float(float64(60 + id%80)),
		})
		if len(batch) == cap(batch) {
			if err := tbl.InsertBatch(batch); err != nil {
				b.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	if err := tbl.InsertBatch(batch); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMinorCompaction measures one minor fold of a fixed-size
// write set sitting on top of a large already-compacted corpus. The
// incremental claim is visible in rows/s: the fold touches the fresh
// rows only, so its cost does not grow with the 50k-row corpus the
// way a major merge's would.
func BenchmarkMinorCompaction(b *testing.B) {
	const corpus, fresh = 50_000, 1_000
	db, err := Open(filepath.Join(b.TempDir(), "minor.db"))
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable(attrSchema())
	if err != nil {
		b.Fatal(err)
	}
	if err := tbl.CreateIndex("attribute"); err != nil {
		b.Fatal(err)
	}
	benchCorpus(b, tbl, corpus)
	if err := db.Compact(); err != nil {
		b.Fatal(err)
	}
	id := int64(corpus)
	batch := make([]Row, fresh)
	b.ResetTimer()
	for b.Loop() {
		b.StopTimer()
		for i := range batch {
			batch[i] = Row{
				Int(id), Int(id % 500),
				Str("pulse"), Str("x"), Float(float64(60 + id%80)),
			}
			id++
		}
		if err := tbl.InsertBatch(batch); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		minorCompactAll(b, db)
	}
	b.ReportMetric(float64(b.N)*fresh/b.Elapsed().Seconds(), "rows/s")
}

// BenchmarkIngestWithBackgroundCompaction measures parallel batched
// ingest on a 4-shard engine under three compaction regimes: none
// (the ceiling), background (the compactor folds concurrently off the
// write path), and foreground (writers call Compact inline at the
// same cadence — the pre-background baseline). Acceptance target:
// background rows/s within a few percent of none, foreground visibly
// below both.
func BenchmarkIngestWithBackgroundCompaction(b *testing.B) {
	const shards, compactEvery = 4, 4000
	run := func(b *testing.B, open func(path string) (*DB, error), foreground bool) {
		db, err := open(filepath.Join(b.TempDir(), "bg.db"))
		if err != nil {
			b.Fatal(err)
		}
		defer db.Close()
		tbl, err := db.CreateTable(attrSchema())
		if err != nil {
			b.Fatal(err)
		}
		if err := tbl.CreateIndex("attribute"); err != nil {
			b.Fatal(err)
		}
		var next atomic.Int64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			batch := make([]Row, ingestBatchRows)
			for pb.Next() {
				base := next.Add(ingestBatchRows) - ingestBatchRows
				for i := range batch {
					id := base + int64(i)
					batch[i] = Row{
						Int(id), Int(id % 500),
						Str("pulse"), Str("x"), Float(float64(60 + id%80)),
					}
				}
				if err := tbl.InsertBatch(batch); err != nil {
					b.Fatal(err)
				}
				if foreground && base/compactEvery != (base+ingestBatchRows)/compactEvery {
					if err := db.Compact(); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.StopTimer()
		b.ReportMetric(float64(b.N)*ingestBatchRows/b.Elapsed().Seconds(), "rows/s")
	}
	b.Run("compact=none", func(b *testing.B) {
		run(b, func(path string) (*DB, error) { return OpenSharded(path, shards) }, false)
	})
	b.Run("compact=background", func(b *testing.B) {
		run(b, func(path string) (*DB, error) {
			return OpenShardedWithPolicy(path, shards, CompactionPolicy{MemRows: compactEvery})
		}, false)
	})
	b.Run("compact=foreground", func(b *testing.B) {
		run(b, func(path string) (*DB, error) { return OpenSharded(path, shards) }, true)
	})
}
