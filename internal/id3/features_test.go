package id3

import (
	"testing"
)

func TestExtractFeaturesLemma(t *testing.T) {
	opts := DefaultOptions()
	// The paper's example: "denies," "denied" and "deny" collapse to one
	// feature when lemma is enabled.
	a := ExtractFeatures("She denies smoking.", opts)
	b := ExtractFeatures("She denied smoking.", opts)
	if !a["deny"] || !b["deny"] {
		t.Errorf("lemma features: %v / %v", a, b)
	}
	opts.UseLemma = false
	c := ExtractFeatures("She denies smoking.", opts)
	if c["deny"] || !c["denies"] {
		t.Errorf("no-lemma features: %v", c)
	}
}

func TestExtractFeaturesPOSFilter(t *testing.T) {
	opts := FeatureOptions{Verbs: true, UseLemma: true}
	f := ExtractFeatures("She quit smoking five years ago.", opts)
	if !f["quit"] {
		t.Errorf("verb 'quit' missing: %v", f)
	}
	if f["year"] || f["years"] {
		t.Errorf("noun leaked through verb-only filter: %v", f)
	}
	opts = FeatureOptions{Adverbs: true}
	f = ExtractFeatures("She has never smoked.", opts)
	if !f["never"] {
		t.Errorf("adverb 'never' missing: %v", f)
	}
	if f["smoked"] || f["smoke"] {
		t.Errorf("verb leaked through adverb-only filter: %v", f)
	}
}

func TestExtractFeaturesFunctionWordsExcluded(t *testing.T) {
	f := ExtractFeatures("She has never smoked.", DefaultOptions())
	if f["she"] {
		t.Errorf("pronoun extracted as feature: %v", f)
	}
	// "has" is a verb and legitimately extracted ("have" after lemma);
	// but determiners and prepositions must not be.
	f = ExtractFeatures("Smoking history of a patient.", DefaultOptions())
	if f["of"] || f["a"] {
		t.Errorf("function words extracted: %v", f)
	}
}

func TestExtractFeaturesHeadOnly(t *testing.T) {
	opts := DefaultOptions()
	opts.HeadOnly = true
	f := ExtractFeatures("She reports heavy tobacco use.", opts)
	// "heavy tobacco use": head is "use".
	if !f["use"] {
		t.Errorf("head noun missing: %v", f)
	}
	if f["heavy"] || f["tobacco"] {
		t.Errorf("non-head extracted with HeadOnly: %v", f)
	}
}

func TestExtractFeaturesConstituents(t *testing.T) {
	opts := FeatureOptions{Nouns: true, Verbs: true, Adjectives: true, Adverbs: true, UseLemma: true, Object: true}
	f := ExtractFeatures("She quit smoking five years ago.", opts)
	// Object of "quit" is "smoking" (a noun here; its noun lemma is
	// itself, matching WordNet's morphy).
	if !f["smoking"] {
		t.Errorf("object constituent missing: %v", f)
	}
	if f["year"] {
		t.Errorf("supplement word leaked through object-only filter: %v", f)
	}
	opts = FeatureOptions{Nouns: true, Verbs: true, UseLemma: true, Verb: true}
	f = ExtractFeatures("She quit smoking five years ago.", opts)
	if !f["quit"] {
		t.Errorf("verb constituent missing: %v", f)
	}
}

func TestExtractFeaturesConstituentFallback(t *testing.T) {
	// Unparseable fragment: constituent filter falls back to all words.
	opts := FeatureOptions{Nouns: true, UseLemma: true, Subject: true}
	f := ExtractFeatures("None", opts)
	_ = f // must not panic; "None" is an interjection, no noun features
	opts2 := FeatureOptions{Nouns: true, UseLemma: true, Object: true}
	f2 := ExtractFeatures("for with tobacco", opts2) // dangling prepositions: no linkage
	if !f2["tobacco"] {
		t.Errorf("fallback should extract nouns from unparseable text: %v", f2)
	}
}

func TestNumericThresholdFeatures(t *testing.T) {
	opts := DefaultOptions()
	opts.NumericThresholds = []float64{2}
	f := ExtractFeatures("Alcohol use 1-2 day per week.", opts)
	if !f["num<=2"] {
		t.Errorf("range 1-2 should set num<=2: %v", f)
	}
	f = ExtractFeatures("She drinks 4 days per week.", opts)
	if !f["num>2"] || f["num<=2"] {
		t.Errorf("4 should set only num>2: %v", f)
	}
	f = ExtractFeatures("Alcohol use is social.", opts)
	if f["num>2"] || f["num<=2"] {
		t.Errorf("no numbers should set no numeric features: %v", f)
	}
}

func TestExtractFeaturesEndToEndSmoking(t *testing.T) {
	// The paper's four smoking examples must be separable by ID3 on
	// extracted features.
	texts := map[string]string{
		"She quit smoking five years ago": "former",
		"She is currently a smoker":       "current",
		"She has never smoked":            "never",
		"Patient denies tobacco use":      "never",
		"Former smoker, quit in 1995":     "former",
		"Smokes one pack per day":         "current",
		"No history of tobacco use":       "never",
		"She stopped smoking last year":   "former",
		"Current smoker for 20 years":     "current",
	}
	opts := DefaultOptions()
	var exs []Example
	for text, class := range texts {
		exs = append(exs, Example{Features: ExtractFeatures(text, opts), Class: class})
	}
	tr := Train(exs)
	for text, class := range texts {
		if got := tr.Classify(ExtractFeatures(text, opts)); got != class {
			t.Errorf("%q → %q, want %q", text, got, class)
		}
	}
}
