// Package core implements the paper's information extraction system: the
// link-grammar numeric field extractor with pattern fallback (§3.1), the
// POS-pattern + ontology medical term extractor (§3.2), and the
// NLP-feature + ID3 categorical classifier (§3.3), wired into a pipeline
// over semi-structured records with result persistence.
package core

import (
	"strings"
	"sync"

	"repro/internal/lexicon"
	"repro/internal/linkgram"
	"repro/internal/records"
	"repro/internal/textproc"
)

// Strategy selects how numbers are associated with feature keywords when
// a sentence contains several of each.
type Strategy int

// Association strategies. LinkGrammar is the paper's system: linkage
// graph distance with pattern fallback for unparseable fragments.
// PatternOnly uses only the linguistic patterns; ProximityOnly picks the
// number nearest in token distance. The latter two are the A1 ablation
// baselines.
const (
	LinkGrammar Strategy = iota
	PatternOnly
	ProximityOnly
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case LinkGrammar:
		return "link-grammar"
	case PatternOnly:
		return "pattern-only"
	case ProximityOnly:
		return "proximity-only"
	}
	return "unknown"
}

// NumericField specifies one numeric attribute to extract.
type NumericField struct {
	Attr     string   // attribute name (records.Attr*)
	Keywords []string // feature names; synonyms and variants are expanded automatically
	Sections []string // record sections to search
	Ratio    bool     // the value is a ratio reading like blood pressure
}

// NumericValue is one extracted numeric value.
type NumericValue struct {
	Attr   string
	Value  float64
	Value2 float64 // second ratio component
	Ratio  bool
}

// DefaultNumericFields are the paper's eight numeric attributes.
func DefaultNumericFields() []NumericField {
	return []NumericField{
		{Attr: records.AttrAge, Keywords: nil, Sections: []string{"History of Present Illness"}},
		{Attr: records.AttrMenarche, Keywords: []string{"menarche"}, Sections: []string{"GYN History"}},
		{Attr: records.AttrGravida, Keywords: []string{"gravida"}, Sections: []string{"GYN History"}},
		{Attr: records.AttrPara, Keywords: []string{"para"}, Sections: []string{"GYN History"}},
		{Attr: records.AttrFirstBirthAge, Keywords: []string{"live birth", "first live birth"}, Sections: []string{"GYN History"}},
		{Attr: records.AttrBloodPressure, Keywords: []string{"blood pressure"}, Sections: []string{"Vitals"}, Ratio: true},
		{Attr: records.AttrPulse, Keywords: []string{"pulse"}, Sections: []string{"Vitals"}},
		{Attr: records.AttrWeight, Keywords: []string{"weight"}, Sections: []string{"Vitals"}},
	}
}

// NumericExtractor extracts numeric attributes from a record. After
// construction it is read-only and safe for concurrent use.
type NumericExtractor struct {
	Fields   []NumericField
	Strategy Strategy
	// expanded keyword variants per field index, built once
	expansions [][][]string
	expandOnce sync.Once
}

// NewNumericExtractor builds an extractor over the default fields.
func NewNumericExtractor(strategy Strategy) *NumericExtractor {
	x := &NumericExtractor{Fields: DefaultNumericFields(), Strategy: strategy}
	x.buildExpansions()
	return x
}

// buildExpansions precomputes the tokenized keyword variants for every
// field: each variant is a word sequence to match in the sentence.
func (x *NumericExtractor) buildExpansions() {
	x.expandOnce.Do(func() {
		x.expansions = make([][][]string, len(x.Fields))
		for i, f := range x.Fields {
			var vs [][]string
			for _, kw := range f.Keywords {
				for _, v := range lexicon.ExpandWithSynonyms(kw) {
					vs = append(vs, strings.Fields(v))
				}
			}
			x.expansions[i] = vs
		}
	})
}

// expansionsFor returns field i's keyword variants.
func (x *NumericExtractor) expansionsFor(i int) [][]string {
	x.buildExpansions()
	return x.expansions[i]
}

// Extract runs numeric extraction over the whole record text. It is a
// convenience wrapper that analyzes the text and calls ExtractDoc; callers
// processing a record through several extractors should Analyze once and
// share the Document.
func (x *NumericExtractor) Extract(recordText string) map[string]NumericValue {
	return x.ExtractDoc(textproc.Analyze(recordText))
}

// ExtractDoc runs numeric extraction over an analyzed record, reusing its
// section and sentence analysis.
func (x *NumericExtractor) ExtractDoc(doc *textproc.Document) map[string]NumericValue {
	out := map[string]NumericValue{}
	for fi, f := range x.Fields {
		for _, secName := range f.Sections {
			sec, ok := doc.Section(secName)
			if !ok {
				continue
			}
			if f.Attr == records.AttrAge {
				if v, ok := extractAge(sec.Sentences()); ok {
					out[f.Attr] = NumericValue{Attr: f.Attr, Value: v}
				}
				continue
			}
			if v, ok := x.extractField(fi, sec); ok {
				out[f.Attr] = v
				break
			}
		}
	}
	return out
}

// extractField finds the field's value within one section's sentences,
// reusing the section's cached tag/parse analysis.
func (x *NumericExtractor) extractField(fi int, sec *textproc.DocSection) (NumericValue, bool) {
	f := x.Fields[fi]
	for si, sent := range sec.Sentences() {
		kwEnd := matchKeyword(sent, x.expansionsFor(fi))
		if kwEnd < 0 {
			continue
		}
		nums := textproc.AnnotateNumbers(sent)
		nums = filterNumbers(nums, f.Ratio)
		if len(nums) == 0 {
			continue
		}
		var chosen *textproc.NumberAnn
		switch {
		case len(nums) == 1:
			chosen = &nums[0]
		case x.Strategy == ProximityOnly:
			chosen = nearestByTokens(nums, kwEnd)
		case x.Strategy == PatternOnly:
			chosen = byPatterns(sent, nums, kwEnd)
		default: // LinkGrammar with pattern fallback
			chosen = byLinkage(sec, si, nums, kwEnd)
			if chosen == nil {
				chosen = byPatterns(sent, nums, kwEnd)
			}
		}
		if chosen == nil {
			continue
		}
		return NumericValue{Attr: f.Attr, Value: chosen.Value, Value2: chosen.Value2, Ratio: chosen.IsRatio}, true
	}
	return NumericValue{}, false
}

// matchKeyword scans the sentence for any keyword variant and returns the
// token index of the variant's last word, or -1. Words match on equality
// of lower-cased text or of noun lemmas.
func matchKeyword(sent textproc.Sentence, variants [][]string) int {
	toks := sent.Tokens
	for _, variant := range variants {
		if len(variant) == 0 {
			continue
		}
		for i := 0; i+len(variant) <= len(toks); i++ {
			ok := true
			for j, w := range variant {
				t := toks[i+j]
				if t.Kind != textproc.Word {
					ok = false
					break
				}
				lw := t.Lower()
				if lw != w && lexicon.Lemma(lw, lexicon.Noun) != w {
					ok = false
					break
				}
			}
			if ok {
				return i + len(variant) - 1
			}
		}
	}
	return -1
}

// filterNumbers keeps ratio readings for ratio fields and plain values
// otherwise; four-digit years are never field values.
func filterNumbers(nums []textproc.NumberAnn, wantRatio bool) []textproc.NumberAnn {
	var out []textproc.NumberAnn
	for _, n := range nums {
		if n.IsRatio != wantRatio {
			continue
		}
		if !n.IsRatio && n.Value >= 1900 && n.Value <= 2100 {
			continue // a calendar year ("quit in 1995")
		}
		out = append(out, n)
	}
	return out
}

// nearestByTokens picks the number with the smallest token-index distance
// from the keyword (the surface-proximity ablation baseline).
func nearestByTokens(nums []textproc.NumberAnn, kwTok int) *textproc.NumberAnn {
	best, bestD := -1, 1<<30
	for i, n := range nums {
		d := n.TokenIndex - kwTok
		if d < 0 {
			d = -d
		}
		if d < bestD {
			best, bestD = i, d
		}
	}
	if best < 0 {
		return nil
	}
	return &nums[best]
}

// byPatterns applies the paper's linguistic patterns: CONCEPT is NUMBER /
// CONCEPT of NUMBER / CONCEPT, NUMBER / CONCEPT: NUMBER, plus the
// "CONCEPT at age NUMBER" extension the GYN sentences need.
func byPatterns(sent textproc.Sentence, nums []textproc.NumberAnn, kwTok int) *textproc.NumberAnn {
	toks := sent.Tokens
	// Candidate positions after the keyword: the number must be the next
	// token, or follow one connective token, or follow "at age".
	numAt := func(idx int) *textproc.NumberAnn {
		for i := range nums {
			if nums[i].TokenIndex == idx {
				return &nums[i]
			}
		}
		return nil
	}
	// CONCEPT NUMBER ("gravida 4").
	if n := numAt(kwTok + 1); n != nil {
		return n
	}
	// CONCEPT <connective> NUMBER.
	if kwTok+2 < len(toks) {
		mid := strings.ToLower(toks[kwTok+1].Text)
		switch mid {
		case "is", "was", "of", ",", ":", "at", "about", "approximately":
			if n := numAt(kwTok + 2); n != nil {
				return n
			}
		}
	}
	// CONCEPT at age NUMBER ("menarche at age 10").
	if kwTok+3 < len(toks) &&
		strings.EqualFold(toks[kwTok+1].Text, "at") &&
		strings.EqualFold(toks[kwTok+2].Text, "age") {
		if n := numAt(kwTok + 3); n != nil {
			return n
		}
	}
	return nil
}

// byLinkage parses sentence si of the section — through the Document's
// tag-once/parse-once cache, so repeated fields over the same section
// never re-tag or re-parse — and picks the number at minimum weighted
// graph distance from the keyword token (§3.1: "the association of
// feature and number in a sentence is equivalent to searching for the
// node with the shortest distance from a fixed node in a weighted
// graph"). It returns nil when the sentence has no linkage.
func byLinkage(sec *textproc.DocSection, si int, nums []textproc.NumberAnn, kwTok int) *textproc.NumberAnn {
	lk, err := linkgram.ParseSection(sec, si)
	if err != nil {
		return nil
	}
	kwWord := lk.WordIndexForToken(kwTok)
	if kwWord < 0 {
		return nil
	}
	dist := lk.Graph(linkgram.DefaultWeights).ShortestFrom(kwWord)
	best, bestD := -1, 1e18
	for i, n := range nums {
		wi := lk.WordIndexForToken(n.TokenIndex)
		if wi < 0 {
			continue
		}
		if dist[wi] < bestD {
			best, bestD = i, dist[wi]
		}
	}
	if best < 0 || bestD > 1e17 {
		return nil
	}
	return &nums[best]
}

// extractAge handles the "50-year-old woman" construction of the HPI
// section: a number immediately followed by a year-old compound.
func extractAge(sents []textproc.Sentence) (float64, bool) {
	for _, sent := range sents {
		toks := sent.Tokens
		for i, t := range toks {
			if t.Kind != textproc.Number {
				continue
			}
			// "50-year-old" tokenizes as [50][-][year-old]; dictated
			// variants give [50][year][old] or [50][year-old].
			rest := toks[i+1:]
			var words []string
			for _, r := range rest {
				if r.Kind == textproc.Word {
					words = append(words, r.Lower())
				}
				if len(words) == 2 || (len(words) == 1 && strings.Contains(words[0], "-")) {
					break
				}
			}
			joined := strings.Join(words, "-")
			if strings.HasPrefix(joined, "year-old") || strings.HasPrefix(joined, "years-old") || joined == "year-old-woman" {
				n, _ := parseFloatPrefix(t.Text)
				return n, true
			}
		}
	}
	return 0, false
}

func parseFloatPrefix(s string) (float64, bool) {
	var v float64
	seen := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			break
		}
		v = v*10 + float64(c-'0')
		seen = true
	}
	return v, seen
}
