// Command benchjson converts `go test -bench` output into a
// machine-readable JSON report, so the performance trajectory of the
// repo is tracked as one artifact per PR instead of scraped from CI
// logs.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -out BENCH_4.json
//
// Input lines pass through to stdout unchanged (the human-readable log
// stays intact); every benchmark result line is additionally parsed
// into {name, runs, metrics{unit: value}} with the goos/goarch/pkg/cpu
// context lines attached.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
)

// Report is the JSON document benchjson emits.
type Report struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// Result is one parsed benchmark line. Metrics maps unit → value, e.g.
// "ns/op" → 123456, "rows/s" → 307088.
type Result struct {
	Name    string             `json:"name"`
	Pkg     string             `json:"pkg,omitempty"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ExitOnError)
	outPath := fs.String("out", "", "JSON output file (empty = stdout only, after the pass-through)")
	fs.Parse(args)
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q (benchmark output is read from stdin)", fs.Arg(0))
	}

	report, err := parse(in, out)
	if err != nil {
		return err
	}
	if len(report.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark result lines found on stdin")
	}
	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *outPath == "" {
		_, err := out.Write(enc)
		return err
	}
	return os.WriteFile(*outPath, enc, 0o644)
}

// parse reads `go test -bench` output, echoing every line to echo and
// collecting parsed results.
func parse(in io.Reader, echo io.Writer) (*Report, error) {
	report := &Report{}
	pkg := ""
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if echo != nil {
			fmt.Fprintln(echo, line)
		}
		switch {
		case strings.HasPrefix(line, "goos: "):
			report.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			report.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			report.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if res, ok := parseResultLine(line); ok {
				res.Pkg = pkg
				report.Benchmarks = append(report.Benchmarks, res)
			}
		}
	}
	return report, sc.Err()
}

// parseResultLine parses one benchmark result line:
//
//	BenchmarkX/sub=4-8   100   123456 ns/op   42 B/op   3 allocs/op
//
// i.e. name, run count, then (value, unit) pairs. Lines that do not
// match (e.g. "BenchmarkX" alone when -v interleaves) are skipped.
func parseResultLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Result{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: fields[0], Runs: runs, Metrics: make(map[string]float64)}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		res.Metrics[fields[i+1]] = v
	}
	return res, true
}
