package core

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/linkgram"
	"repro/internal/ontology"
	"repro/internal/pos"
	"repro/internal/records"
	"repro/internal/textproc"
)

// totalSentences counts the sentences of every section of the document.
func totalSentences(doc *textproc.Document) uint64 {
	var n uint64
	for _, sec := range doc.Sections {
		n += uint64(len(sec.Sentences()))
	}
	return n
}

// TestProcessDocTagParseOnce is the acceptance check for the
// tag-once/parse-once Document contract: per ProcessDoc, every consumed
// sentence is POS-tagged at most once and link-parsed at most once, for
// any number of extractors and fields, and re-processing an already
// analyzed document runs zero tagging or parsing passes.
func TestProcessDocTagParseOnce(t *testing.T) {
	recs := records.Generate(records.GenOptions{N: 4, Seed: 13})
	sys, err := NewSystem(Config{Strategy: LinkGrammar, ResolveSynonyms: true})
	if err != nil {
		t.Fatal(err)
	}
	sys.TrainSmoking(recs)

	for _, r := range recs {
		doc := textproc.Analyze(r.Text)
		maxSents := totalSentences(doc)

		tag0, parse0 := pos.TagPasses(), linkgram.ParsePasses()
		sys.ProcessDoc(doc)
		tag1, parse1 := pos.TagPasses(), linkgram.ParsePasses()
		if got := tag1 - tag0; got > maxSents {
			t.Errorf("record %d: ProcessDoc ran %d tag passes over %d sentences, want ≤%d",
				r.ID, got, maxSents, maxSents)
		}
		if got := parse1 - parse0; got > maxSents {
			t.Errorf("record %d: ProcessDoc ran %d parse passes over %d sentences, want ≤%d",
				r.ID, got, maxSents, maxSents)
		}

		// Re-running the full pipeline AND each extractor individually on
		// the same document must not tag or parse anything again: every
		// combination of extractors shares the cached per-sentence views.
		tag1, parse1 = pos.TagPasses(), linkgram.ParsePasses()
		sys.ProcessDoc(doc)
		sys.Numeric.ExtractDoc(doc)
		if sec, ok := doc.Section("Past Medical History"); ok {
			sys.Terms.ExtractSection(sec, ontology.PredefinedMedical)
		}
		if sec, ok := doc.Section("Past Surgical History"); ok {
			sys.Terms.ExtractSection(sec, ontology.PredefinedSurgical)
		}
		sys.Smoking.ClassifyDoc(doc)
		tag2, parse2 := pos.TagPasses(), linkgram.ParsePasses()
		if tag2 != tag1 {
			t.Errorf("record %d: re-processing tagged %d sentences again, want 0", r.ID, tag2-tag1)
		}
		if parse2 != parse1 {
			t.Errorf("record %d: re-processing parsed %d sentences again, want 0", r.ID, parse2-parse1)
		}
	}
}

// TestDocumentSharedConcurrently shares one analyzed Document across
// concurrent extractor goroutines: results must match the sequential
// ones, and the race detector must stay silent over the lazy tag/parse
// memoization.
func TestDocumentSharedConcurrently(t *testing.T) {
	recs := records.Generate(records.GenOptions{N: 3, Seed: 29})
	sys, err := NewSystem(Config{Strategy: LinkGrammar, ResolveSynonyms: true})
	if err != nil {
		t.Fatal(err)
	}
	sys.TrainSmoking(recs)

	for _, r := range recs {
		doc := textproc.Analyze(r.Text)
		want := sys.ProcessDoc(textproc.Analyze(r.Text))

		const workers = 8
		got := make([]Extraction, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				// Odd workers run the full pipeline; even workers hit the
				// individual extractors, racing on the same cached slots.
				if w%2 == 0 {
					sys.Numeric.ExtractDoc(doc)
					if sec, ok := doc.Section("Past Medical History"); ok {
						sys.Terms.ExtractSection(sec, ontology.PredefinedMedical)
					}
					sys.Smoking.ClassifyDoc(doc)
				}
				got[w] = sys.ProcessDoc(doc)
			}(w)
		}
		wg.Wait()
		for w := range got {
			if !reflect.DeepEqual(got[w], want) {
				t.Errorf("record %d worker %d: concurrent extraction %+v != sequential %+v",
					r.ID, w, got[w], want)
			}
		}
	}
}
