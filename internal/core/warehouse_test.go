package core

import (
	"context"
	"slices"
	"sync"
	"testing"

	"repro/internal/ontology"
	"repro/internal/records"
	"repro/internal/store"
)

// syntheticExtractions builds hand-made extractions so warehouse tests
// do not depend on the NLP pipeline: patient p has pulse 60+p, smoking
// "current" when p is even, and diabetes for p divisible by 3.
func syntheticExtractions(n int) []Extraction {
	exs := make([]Extraction, 0, n)
	for p := 1; p <= n; p++ {
		ex := Extraction{
			Patient: p,
			Numeric: map[string]NumericValue{
				"pulse": {Attr: "pulse", Value: float64(60 + p)},
			},
			Smoking: "never",
		}
		if p%2 == 0 {
			ex.Smoking = "current"
		}
		if p%3 == 0 {
			ex.PreMedical = []string{"diabetes"}
		}
		exs = append(exs, ex)
	}
	return exs
}

func TestWarehouseAsk(t *testing.T) {
	db := store.OpenMemory()
	if _, err := PersistAll(db, syntheticExtractions(20)); err != nil {
		t.Fatal(err)
	}
	ont := ontology.MustNew(ontology.Options{})
	defer ont.Close()
	w, err := OpenWarehouse(db, ont)
	if err != nil {
		t.Fatal(err)
	}

	// Numeric-range question: pulse > 70 → patients 11..20.
	got, stats, err := w.Ask(NumAbove("pulse", 70))
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{11, 12, 13, 14, 15, 16, 17, 18, 19, 20}
	if !slices.Equal(got, want) {
		t.Errorf("pulse > 70: got %v, want %v", got, want)
	}
	if stats.IndexedConds != stats.Conds || stats.FullScans != 0 {
		t.Errorf("question fell back to scan: %+v", stats)
	}

	// Conjunction across attributes: pulse > 70 AND current smoker.
	got, stats, err = w.Ask(NumAbove("pulse", 70), HasTerm("smoking", "current"))
	if err != nil {
		t.Fatal(err)
	}
	if want := []int64{12, 14, 16, 18, 20}; !slices.Equal(got, want) {
		t.Errorf("conjunction: got %v, want %v", got, want)
	}
	if stats.Conds != 2 || stats.FullScans != 0 {
		t.Errorf("stats: %+v", stats)
	}

	// Concept-term question through a synonym: "dm" resolves to the
	// preferred name "diabetes".
	got, _, err = w.Ask(HasTerm("predefined past medical history", "dm"))
	if err != nil {
		t.Fatal(err)
	}
	if want := []int64{3, 6, 9, 12, 15, 18}; !slices.Equal(got, want) {
		t.Errorf("term via synonym: got %v, want %v", got, want)
	}

	// Range condition: 65 <= pulse <= 70 → patients 5..10.
	got, _, err = w.Ask(NumBetween("pulse", 65, 70))
	if err != nil {
		t.Fatal(err)
	}
	if want := []int64{5, 6, 7, 8, 9, 10}; !slices.Equal(got, want) {
		t.Errorf("between: got %v, want %v", got, want)
	}

	if _, _, err := w.Ask(); err == nil {
		t.Error("empty question accepted")
	}
	if _, _, err := w.Ask(Cond{}); err == nil {
		t.Error("condition without attribute accepted")
	}
}

func TestWarehousePatientAndPrevalence(t *testing.T) {
	db := store.OpenMemory()
	if _, err := PersistAll(db, syntheticExtractions(12)); err != nil {
		t.Fatal(err)
	}
	w, err := OpenWarehouse(db, nil)
	if err != nil {
		t.Fatal(err)
	}

	rows, err := w.Patient(6)
	if err != nil {
		t.Fatal(err)
	}
	// Patient 6: pulse, smoking, diabetes → 3 rows sorted by attribute.
	if len(rows) != 3 {
		t.Fatalf("patient 6 has %d rows, want 3: %+v", len(rows), rows)
	}
	if rows[0].Attribute != "predefined past medical history" || rows[0].Value != "diabetes" {
		t.Errorf("unexpected first row: %+v", rows[0])
	}
	if rows[1].Attribute != "pulse" || rows[1].Numeric != 66 {
		t.Errorf("unexpected pulse row: %+v", rows[1])
	}

	prev, err := w.Prevalence("smoking")
	if err != nil {
		t.Fatal(err)
	}
	if prev["current"] != 6 || prev["never"] != 6 {
		t.Errorf("smoking prevalence: %+v", prev)
	}
}

// TestWarehouseConcurrentWithIngest pins the concurrent-reader path:
// warehouse queries overlap a live ProcessStream ingest, race-cleanly
// (run under -race in CI) and with the indexes consistent at the end.
func TestWarehouseConcurrentWithIngest(t *testing.T) {
	recs := func() []records.Record {
		opts := records.DefaultGenOptions()
		opts.N = 16
		return records.Generate(opts)
	}()
	sys, err := NewSystem(Config{Strategy: LinkGrammar, ResolveSynonyms: true})
	if err != nil {
		t.Fatal(err)
	}

	db := store.OpenMemory()
	w, err := OpenWarehouse(db, nil)
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var writerErr error
	go func() {
		defer close(done)
		batch := make([]Extraction, 0, 4)
		for _, ex := range sys.ProcessStream(context.Background(), slices.Values(recs), 2) {
			batch = append(batch, ex)
			if len(batch) == cap(batch) {
				if _, err := PersistAll(db, batch); err != nil {
					writerErr = err
					return
				}
				batch = batch[:0]
			}
		}
		if _, err := PersistAll(db, batch); err != nil {
			writerErr = err
		}
	}()

	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if _, _, err := w.Ask(NumAbove("pulse", 0)); err != nil {
					t.Errorf("Ask during ingest: %v", err)
					return
				}
				if _, err := w.Patient(1); err != nil {
					t.Errorf("Patient during ingest: %v", err)
					return
				}
			}
		}()
	}
	<-done
	wg.Wait()
	if writerErr != nil {
		t.Fatal(writerErr)
	}

	// After the ingest settles, the indexes answer exactly what a scan
	// answers.
	rows, stats, err := w.Rows(HasAttr("pulse"))
	if err != nil || stats.FullScans != 0 {
		t.Fatalf("indexed read failed: %+v err %v", stats, err)
	}
	scan := w.Table().Select(func(r store.Row) bool { return r[2].S == "pulse" })
	if len(rows) != len(scan) {
		t.Errorf("index answered %d rows, scan %d", len(rows), len(scan))
	}
}
