package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// minorCompactAll runs one minor compaction on every shard, as the
// background compactor would.
func minorCompactAll(t testing.TB, db *DB) {
	t.Helper()
	db.mu.RLock()
	defer db.mu.RUnlock()
	for _, sh := range db.shards {
		if err := db.compactShard(sh, minorCompact); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCompactionPolicyDefaults(t *testing.T) {
	p := CompactionPolicy{}.withDefaults()
	if p.MemRows != DefaultCompactMemRows || p.WALBytes != DefaultCompactWALBytes || p.Fanout != DefaultCompactFanout {
		t.Fatalf("zero policy did not pick defaults: %+v", p)
	}
	q := CompactionPolicy{MemRows: 7, WALBytes: 9, Fanout: 2}.withDefaults()
	if q.MemRows != 7 || q.WALBytes != 9 || q.Fanout != 2 {
		t.Fatalf("explicit thresholds overridden: %+v", q)
	}
}

// TestMinorCompactionRewritesOnlyMemtable is the incremental-cost pin:
// after a major merge of a large corpus, ingesting N rows and minor-
// compacting must rewrite exactly N rows — not the corpus.
func TestMinorCompactionRewritesOnlyMemtable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "inc.db")
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable(testSchema())
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex("norm"); err != nil {
		t.Fatal(err)
	}
	const corpus = 500
	var rows []Row
	for i := 0; i < corpus; i++ {
		rows = append(rows, Row{Int(int64(i)), Str(fmt.Sprintf("n%d", i%7)), Str("p"), Float(1), Bool(true)})
	}
	if err := tbl.InsertBatch(rows); err != nil {
		t.Fatal(err)
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	base := db.CompactionStats()
	if base.MajorRuns != 1 || base.RowsRewritten != corpus {
		t.Fatalf("major baseline stats off: %+v", base)
	}

	const n = 57
	rows = rows[:0]
	for i := 0; i < n; i++ {
		rows = append(rows, Row{Int(int64(corpus + i)), Str("fresh"), Str("p"), Float(2), Bool(false)})
	}
	if err := tbl.InsertBatch(rows); err != nil {
		t.Fatal(err)
	}
	minorCompactAll(t, db)
	cs := db.CompactionStats()
	if cs.MinorRuns != 1 {
		t.Fatalf("MinorRuns = %d, want 1", cs.MinorRuns)
	}
	if got := cs.RowsRewritten - base.RowsRewritten; got != n {
		t.Fatalf("minor compaction rewrote %d rows, want exactly the %d-row memtable", got, n)
	}
	if cs.BytesRewritten <= base.BytesRewritten {
		t.Fatal("minor compaction reported no bytes written")
	}
	if cs.Backlog != 0 {
		t.Fatalf("backlog after compaction = %d, want 0", cs.Backlog)
	}

	// The new run stacks on the old one; reads see both, newest wins.
	st := tbl.Stats()
	if st.Segments != 2 {
		t.Fatalf("segments after minor = %d, want 2", st.Segments)
	}
	if st.Compaction.MinorRuns != 1 {
		t.Fatalf("Table.Stats did not surface compaction counters: %+v", st.Compaction)
	}
	if tbl.Len() != corpus+n {
		t.Fatalf("Len = %d", tbl.Len())
	}
	if got, err := tbl.Lookup("norm", Str("fresh")); err != nil || len(got) != n {
		t.Fatalf("index over minor-compacted rows: %d rows, err %v", len(got), err)
	}
	// Writes keep flowing after the swap.
	if err := tbl.Insert(Row{Int(9000), Str("post"), Str("p"), Float(0), Bool(true)}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: multi-run manifest replays to the same state.
	db2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.RecoveredWithLoss() {
		t.Fatal("multi-run reopen reported loss")
	}
	tbl2, err := db2.Table("concepts")
	if err != nil {
		t.Fatal(err)
	}
	if tbl2.Len() != corpus+n+1 {
		t.Fatalf("recovered Len = %d, want %d", tbl2.Len(), corpus+n+1)
	}
	for _, id := range []int64{0, corpus - 1, corpus, corpus + n - 1, 9000} {
		if _, err := tbl2.Get(Int(id)); err != nil {
			t.Errorf("row %d lost across minor compaction + reopen: %v", id, err)
		}
	}
	if got, err := tbl2.Lookup("norm", Str("fresh")); err != nil || len(got) != n {
		t.Fatalf("recovered index: %d rows, err %v", len(got), err)
	}
}

// TestMinorCompactionKeepsTombstones: a delete of a segment-resident
// row must keep masking it across minor compactions (the old run still
// holds the key) and through reopen; only the major merge drops it.
func TestMinorCompactionKeepsTombstones(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tomb.db")
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.CreateTable(testSchema())
	for i := 0; i < 100; i++ {
		if err := tbl.Insert(Row{Int(int64(i)), Str("n"), Str("p"), Float(0), Bool(true)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Compact(); err != nil { // rows now segment-resident
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := tbl.Delete(Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// New rows alongside the tombstones, so the minor pass has both
	// kinds of memtable entry to sort out.
	for i := 1000; i < 1020; i++ {
		if err := tbl.Insert(Row{Int(int64(i)), Str("n"), Str("p"), Float(0), Bool(true)}); err != nil {
			t.Fatal(err)
		}
	}
	minorCompactAll(t, db)
	check := func(tb *Table, stage string) {
		if got := tb.Len(); got != 80 {
			t.Fatalf("%s: Len = %d, want 80", stage, got)
		}
		if _, err := tb.Get(Int(5)); err != ErrNotFound {
			t.Fatalf("%s: deleted row resurrected (err=%v)", stage, err)
		}
		if _, err := tb.Get(Int(50)); err != nil {
			t.Fatalf("%s: surviving row lost: %v", stage, err)
		}
		if _, err := tb.Get(Int(1010)); err != nil {
			t.Fatalf("%s: fresh row lost: %v", stage, err)
		}
	}
	check(tbl, "after minor")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	tbl2, _ := db2.Table("concepts")
	check(tbl2, "after reopen")
	if err := db2.Compact(); err != nil {
		t.Fatal(err)
	}
	check(tbl2, "after major")
	if st := tbl2.Stats(); st.Segments != 1 {
		t.Fatalf("major merge did not collapse the run stack: %d segments", st.Segments)
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMinorCompactionResurrectionMask: a row inserted after the last
// compaction and deleted mid-build leaves no memtable entry, yet the
// new run holds it — the commit must plant a tombstone or the row
// resurrects at the swap.
func TestMinorCompactionResurrectionMask(t *testing.T) {
	path := filepath.Join(t.TempDir(), "res.db")
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.CreateTable(testSchema())
	for i := 0; i < 10; i++ {
		if err := tbl.Insert(Row{Int(int64(i)), Str("n"), Str("p"), Float(0), Bool(true)}); err != nil {
			t.Fatal(err)
		}
	}
	// Delete row 3 while the build phase is in flight: the memtable has
	// never seen a segment with this key, so the delete removes the
	// entry outright.
	hookDone := make(chan error, 1)
	testHookCompactBuild = func() {
		testHookCompactBuild = nil
		hookDone <- tbl.Delete(Int(3))
	}
	defer func() { testHookCompactBuild = nil }()
	minorCompactAll(t, db)
	if err := <-hookDone; err != nil {
		t.Fatalf("mid-build delete: %v", err)
	}
	verify := func(tb *Table, stage string) {
		if _, err := tb.Get(Int(3)); err != ErrNotFound {
			t.Fatalf("%s: mid-build-deleted row visible (err=%v)", stage, err)
		}
		if got := tb.Len(); got != 9 {
			t.Fatalf("%s: Len = %d, want 9", stage, got)
		}
	}
	verify(tbl, "after swap")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tbl2, _ := db2.Table("concepts")
	verify(tbl2, "after reopen")
}

// TestStatsResponsiveDuringCompaction pins the narrowed critical
// section: monitoring, reads and writes must all return while a
// compaction build is in flight, not block behind it.
func TestStatsResponsiveDuringCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "live.db")
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, _ := db.CreateTable(testSchema())
	for i := 0; i < 50; i++ {
		tbl.Insert(Row{Int(int64(i)), Str("n"), Str("p"), Float(0), Bool(true)})
	}

	entered := make(chan struct{})
	release := make(chan struct{})
	testHookCompactBuild = func() {
		close(entered)
		<-release
	}
	defer func() { testHookCompactBuild = nil }()

	compactErr := make(chan error, 1)
	go func() { compactErr <- db.Compact() }()
	<-entered

	done := make(chan struct{})
	go func() {
		defer close(done)
		if got := tbl.Stats().Rows; got != 50 {
			t.Errorf("Stats mid-compaction: Rows = %d", got)
		}
		if h := db.Health(); h.ReadOnly {
			t.Errorf("Health mid-compaction: %+v", h)
		}
		if _, err := tbl.Get(Int(7)); err != nil {
			t.Errorf("Get mid-compaction: %v", err)
		}
		if err := tbl.Insert(Row{Int(777), Str("n"), Str("p"), Float(0), Bool(true)}); err != nil {
			t.Errorf("Insert mid-compaction: %v", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stats/Health/Get/Insert blocked behind an in-flight compaction")
	}
	close(release)
	if err := <-compactErr; err != nil {
		t.Fatal(err)
	}
	// The mid-flight insert is post-capture residue: it must survive.
	if _, err := tbl.Get(Int(777)); err != nil {
		t.Fatalf("mid-compaction insert lost: %v", err)
	}
	if tbl.Len() != 51 {
		t.Fatalf("Len = %d, want 51", tbl.Len())
	}
}

// TestBackgroundCompactionUnderLoad drives concurrent batch ingest and
// queries against an engine with aggressive auto-compaction thresholds;
// run under -race this is the data-race pin for the whole trigger path.
func TestBackgroundCompactionUnderLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bg.db")
	db, err := OpenShardedWithPolicy(path, 4, CompactionPolicy{MemRows: 100, WALBytes: 1 << 20, Fanout: 3})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable(testSchema())
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex("norm"); err != nil {
		t.Fatal(err)
	}

	const writers, perWriter, batch = 4, 1200, 40
	var wg, rg sync.WaitGroup
	stopReaders := make(chan struct{})
	for r := 0; r < 2; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for i := 0; ; i++ {
				select {
				case <-stopReaders:
					return
				default:
				}
				tbl.Get(Int(int64(i % (writers * perWriter))))
				if _, err := tbl.Lookup("norm", Str("n2")); err != nil {
					t.Errorf("Lookup under load: %v", err)
					return
				}
				tbl.Len()
				tbl.Stats()
			}
		}()
	}
	var werr [writers]error
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int64(w * perWriter)
			for off := 0; off < perWriter; off += batch {
				rows := make([]Row, 0, batch)
				for i := 0; i < batch; i++ {
					id := base + int64(off+i)
					rows = append(rows, Row{Int(id), Str(fmt.Sprintf("n%d", id%5)), Str("p"), Float(0), Bool(true)})
				}
				if err := tbl.InsertBatch(rows); err != nil {
					werr[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stopReaders)
	rg.Wait()
	for _, err := range werr {
		if err != nil {
			t.Fatal(err)
		}
	}

	// 4800 rows against a 100-row threshold: compactions must have run
	// (or a wake token is still queued — give the compactor a moment).
	deadline := time.Now().Add(10 * time.Second)
	var cs CompactionStats
	for {
		cs = db.CompactionStats()
		if cs.MinorRuns+cs.MajorRuns > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if cs.MinorRuns+cs.MajorRuns == 0 {
		t.Fatalf("background compactor never ran: %+v", cs)
	}
	if cs.LastError != "" {
		t.Fatalf("background compaction error: %s", cs.LastError)
	}
	if got := tbl.Len(); got != writers*perWriter {
		t.Fatalf("Len under background compaction = %d, want %d", got, writers*perWriter)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.RecoveredWithLoss() {
		t.Fatal("reopen after background compaction reported loss")
	}
	tbl2, _ := db2.Table("concepts")
	if got := tbl2.Len(); got != writers*perWriter {
		t.Fatalf("recovered Len = %d, want %d", got, writers*perWriter)
	}
	for id := 0; id < writers*perWriter; id += 97 {
		if _, err := tbl2.Get(Int(int64(id))); err != nil {
			t.Fatalf("row %d lost: %v", id, err)
		}
	}
	// Index agrees with a scan after recovery.
	want := 0
	tbl2.Scan(func(r Row) bool {
		if r[1].S == "n2" {
			want++
		}
		return true
	})
	if got, err := tbl2.Lookup("norm", Str("n2")); err != nil || len(got) != want {
		t.Fatalf("recovered index: %d rows, want %d (err %v)", len(got), want, err)
	}
}

// TestBackgroundCompactionFanoutEscalates: once a table's run stack
// reaches the fan-out bound the next trigger majors, collapsing it.
func TestBackgroundCompactionFanoutEscalates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fan.db")
	db, err := OpenShardedWithPolicy(path, 1, CompactionPolicy{MemRows: 50, WALBytes: 1 << 30, Fanout: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, _ := db.CreateTable(testSchema())
	id := int64(0)
	ingest := func(n int) {
		rows := make([]Row, 0, n)
		for i := 0; i < n; i++ {
			rows = append(rows, Row{Int(id), Str("n"), Str("p"), Float(0), Bool(true)})
			id++
		}
		if err := tbl.InsertBatch(rows); err != nil {
			t.Fatal(err)
		}
	}
	waitRuns := func(n int64) {
		deadline := time.Now().Add(10 * time.Second)
		for {
			cs := db.CompactionStats()
			if cs.MinorRuns+cs.MajorRuns >= n {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("compactor stalled at %+v waiting for %d runs", cs, n)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	// Three threshold crossings stack three runs...
	for i := int64(1); i <= 3; i++ {
		ingest(60)
		waitRuns(i)
	}
	if st := tbl.Stats(); st.Segments < 3 {
		t.Fatalf("run stack = %d segments, want >= 3", st.Segments)
	}
	// ...and the fourth trigger escalates to a major merge.
	ingest(60)
	waitRuns(4)
	cs := db.CompactionStats()
	if cs.MajorRuns == 0 {
		t.Fatalf("fan-out never escalated to a major merge: %+v", cs)
	}
	if st := tbl.Stats(); st.Segments != 1 {
		t.Fatalf("major merge left %d segments", st.Segments)
	}
	if got := tbl.Len(); got != int(id) {
		t.Fatalf("Len = %d, want %d", got, id)
	}
}

// TestOpenSweepsCompactionLeftovers: segment files and truncated-WAL
// temps orphaned by a compaction crash are deleted at open, not
// accumulated forever.
func TestOpenSweepsCompactionLeftovers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.db")
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.CreateTable(testSchema())
	for i := 0; i < 30; i++ {
		tbl.Insert(Row{Int(int64(i)), Str("n"), Str("p"), Float(0), Bool(true)})
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Plant what a crash between build and manifest commit leaves: a
	// next-generation segment nothing references, and the staged WAL.
	orphanSeg := filepath.Join(segsDirFor(path), segFileName(99, 0))
	if err := os.WriteFile(orphanSeg, []byte("half-built segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	orphanWAL := compactTempPath(path)
	if err := os.WriteFile(orphanWAL, []byte("staged wal"), 0o644); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.RecoveredWithLoss() {
		t.Fatal("orphan sweep misread as data loss")
	}
	for _, p := range []string{orphanSeg, orphanWAL} {
		if _, err := os.Stat(p); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("orphan %s survived reopen (err=%v)", filepath.Base(p), err)
		}
	}
	tbl2, _ := db2.Table("concepts")
	if tbl2.Len() != 30 {
		t.Fatalf("Len after sweep = %d", tbl2.Len())
	}
	// The swept generation number must not collide with future
	// compactions: the engine picks gen from the manifest, and a fresh
	// compact must succeed.
	if err := db2.Compact(); err != nil {
		t.Fatalf("compact after sweep: %v", err)
	}
}
