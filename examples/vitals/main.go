// Vitals: compare the three number–feature association strategies on
// sentences with several features, and show the linkage reasoning for the
// paper's Figure 1 sentence.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/linkgram"
	"repro/internal/records"
	"repro/internal/textproc"
)

func main() {
	log.SetFlags(0)

	sentence := "Blood pressure is 144/90, pulse of 84, temperature of 98.3, and weight of 154 pounds."
	sent := textproc.SplitSentences(sentence)[0]

	lk, err := linkgram.ParseSentence(sent)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("linkage diagram (Figure 1):")
	fmt.Println(lk.Diagram())
	fmt.Println()

	// Show the shortest-distance reasoning for one number.
	g := lk.Graph(linkgram.DefaultWeights)
	for _, number := range []string{"144/90", "84", "98.3", "154"} {
		ni := indexOf(lk, number)
		dist := g.ShortestFrom(ni)
		fmt.Printf("distances from %s:", number)
		for _, feature := range []string{"pressure", "pulse", "temperature", "weight"} {
			fmt.Printf("  %s=%.0f", feature, dist[indexOf(lk, feature)])
		}
		fmt.Println()
	}

	// Strategy comparison on a style-diverse corpus.
	opts := records.DefaultGenOptions()
	opts.StyleDiversity = 0.8
	recs := records.Generate(opts)
	fmt.Println("\nnumeric extraction on a style-diverse corpus (50 records):")
	for _, s := range []core.Strategy{core.LinkGrammar, core.PatternOnly, core.ProximityOnly} {
		x := core.NewNumericExtractor(s)
		correct, wrong, missed := 0, 0, 0
		for _, r := range recs {
			got := x.Extract(r.Text)
			for attr, gold := range r.Gold.Numeric {
				v, ok := got[attr]
				switch {
				case !ok:
					missed++
				case v.Value == gold.Value && (!v.Ratio || v.Value2 == gold.Value2):
					correct++
				default:
					wrong++
				}
			}
		}
		fmt.Printf("  %-16s correct=%d wrong=%d missed=%d\n", s, correct, wrong, missed)
	}
}

func indexOf(lk *linkgram.Linkage, text string) int {
	for i, w := range lk.Words {
		if w.Text == text {
			return i
		}
	}
	log.Fatalf("word %q not in linkage", text)
	return -1
}
