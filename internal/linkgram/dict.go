package linkgram

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/pos"
)

// idioms are multi-word expressions parsed as a single word. Each maps
// the lower-cased joined form to the disjunct family it behaves as.
var idioms = map[string]string{
	"as well as":  "conj",
	"status post": "prep",
}

// idiomSeq is one idiom pre-split into its word sequence, so matching a
// token position never re-runs strings.Fields over the idioms map.
type idiomSeq struct {
	parts  []string
	family string
}

// idiomSeqs is the idiom table in matching order: longest first, then
// alphabetical, so overlapping idioms would resolve deterministically.
var idiomSeqs = buildIdiomSeqs()

func buildIdiomSeqs() []idiomSeq {
	out := make([]idiomSeq, 0, len(idioms))
	for idiom, family := range idioms {
		out = append(out, idiomSeq{parts: strings.Fields(idiom), family: family})
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].parts) != len(out[j].parts) {
			return len(out[i].parts) > len(out[j].parts)
		}
		return strings.Join(out[i].parts, " ") < strings.Join(out[j].parts, " ")
	})
	return out
}

// idiomCands caches the disjuncts of each idiom family against the global
// interner; read-only after init.
var idiomCands = buildIdiomCands()

func buildIdiomCands() map[string][]disjunct {
	b := &dictBuilder{in: globalIntern}
	out := map[string][]disjunct{}
	for _, family := range []string{"conj", "prep"} {
		out[family] = b.idiomDisjuncts(family)
	}
	return out
}

// candKey keys the process-wide disjunct candidate cache. Words whose
// disjuncts depend only on their tag collapse to word "", so the cache
// stays a couple dozen entries regardless of vocabulary size.
type candKey struct {
	word string // lower-cased word-dispatched word, or ""
	tag  pos.Tag
}

// wordEntries is the single source of truth for words that carry their
// own dictionary entry independent of tag: disjunctsFor dispatches
// through it and cachedDisjuncts keys the cache by membership in it, so
// the two can never drift apart.
var wordEntries = map[string]func(b *dictBuilder) []disjunct{
	",": (*dictBuilder).conjDisjuncts, ";": (*dictBuilder).conjDisjuncts,
	"and": (*dictBuilder).conjDisjuncts, "or": (*dictBuilder).conjDisjuncts,
	"but": (*dictBuilder).conjDisjuncts, "nor": (*dictBuilder).conjDisjuncts,
	"ago": (*dictBuilder).agoDisjuncts,
	"to":  (*dictBuilder).toDisjuncts,
	"who": (*dictBuilder).relPronounDisjuncts, "which": (*dictBuilder).relPronounDisjuncts,
	"that": (*dictBuilder).relPronounDisjuncts,
}

// candCache maps candKey → []disjunct built once per (word, tag) against
// the global interner. Cached slices are shared across parses and
// goroutines and must never be mutated.
var candCache sync.Map

// cachedDisjuncts returns the candidate disjuncts for a lower-cased word
// and tag, building and caching them on first use.
func cachedDisjuncts(lower string, tag pos.Tag) []disjunct {
	k := candKey{word: lower, tag: tag}
	if _, ok := wordEntries[lower]; !ok {
		k.word = ""
	}
	if v, ok := candCache.Load(k); ok {
		ds, _ := v.([]disjunct)
		return ds
	}
	b := &dictBuilder{in: globalIntern}
	built := b.disjunctsFor(lower, tag)
	v, _ := candCache.LoadOrStore(k, built)
	ds, _ := v.([]disjunct)
	return ds
}

// dictBuilder accumulates the disjunct sets for one dictionary build.
type dictBuilder struct {
	in *interner
}

// dis builds one disjunct from nearest-first connector name lists.
func (b *dictBuilder) dis(left, right []connID) disjunct {
	return disjunct{
		left:  b.in.fromNearFirst(left),
		right: b.in.fromNearFirst(right),
	}
}

// cat concatenates name lists.
func cat(lists ...[]connID) []connID {
	var out []connID
	for _, l := range lists {
		out = append(out, l...)
	}
	return out
}

// disjunctsFor returns the candidate disjuncts for a word given its tag.
// The generation enumerates role × modifier × extra combinations; the
// power-pruning pass in the parser discards combinations whose connectors
// cannot match anything in the sentence.
func (b *dictBuilder) disjunctsFor(word string, tag pos.Tag) []disjunct {
	w := strings.ToLower(word)
	if entry, ok := wordEntries[w]; ok {
		return entry(b)
	}

	switch {
	case tag == pos.DT || tag == pos.PRS:
		return []disjunct{
			b.dis(nil, []connID{cD}),
			b.dis([]connID{cEN}, []connID{cD}),
		}
	case tag == pos.CD:
		return b.numberDisjuncts()
	case tag.IsNoun():
		return b.nounDisjuncts()
	case tag == pos.PRP:
		return []disjunct{
			b.dis(nil, []connID{cS}),
			b.dis([]connID{cO}, nil),
			b.dis([]connID{cJ}, nil),
		}
	case tag == pos.VBZ || tag == pos.VBD || tag == pos.VBP:
		return b.finiteVerbDisjuncts()
	case tag == pos.MD:
		return b.modalDisjuncts()
	case tag == pos.VB:
		return b.baseVerbDisjuncts()
	case tag == pos.VBN:
		return b.participleDisjuncts()
	case tag == pos.VBG:
		return b.gerundDisjuncts()
	case tag == pos.JJ:
		return b.adjectiveDisjuncts()
	case tag == pos.RB:
		return []disjunct{
			b.dis(nil, []connID{cE}),  // pre-verbal: "never smoked"
			b.dis([]connID{cMV}, nil), // post-verbal: "is currently"
			b.dis(nil, []connID{cEA}), // adjective modifier: "very significant"
			b.dis(nil, []connID{cEN}), // approximator: "about a year"
			b.dis([]connID{cCC}, nil), // fragment after comma: ", occasionally"
			b.dis([]connID{cMV}, []connID{cCO}),
		}
	case tag == pos.IN:
		return []disjunct{
			b.dis([]connID{cM}, []connID{cJ}),  // post-nominal: "pulse of 84"
			b.dis([]connID{cMV}, []connID{cJ}), // post-verbal: "quit in 1990"
			b.dis([]connID{cW}, []connID{cJ}),  // sentence-initial
			b.dis([]connID{cCC}, []connID{cJ}), // fragment head after comma
		}
	case tag == pos.EX:
		return []disjunct{b.dis(nil, []connID{cS})} // "There is no ..."
	default:
		return nil // UH, SYM: unconnectable; parser drops or fails
	}
}

// conjDisjuncts covers commas, semicolons and coordinating conjunctions:
// a CO link to the preceding phrase tail and a CC link to the following
// fragment head.
func (b *dictBuilder) conjDisjuncts() []disjunct {
	return []disjunct{
		b.dis([]connID{cCO}, []connID{cCC}),
		b.dis([]connID{cCC}, []connID{cCC}),
	}
}

// agoDisjuncts covers "ago": a T link back to its time noun plus the
// attachment of the whole time phrase.
func (b *dictBuilder) agoDisjuncts() []disjunct {
	return []disjunct{
		b.dis([]connID{cT, cMV}, nil),
		b.dis([]connID{cT, cM}, nil),
		b.dis([]connID{cT, cCC}, nil),
	}
}

// toDisjuncts covers infinitival "to".
func (b *dictBuilder) toDisjuncts() []disjunct {
	return []disjunct{b.dis([]connID{cI}, []connID{cI})}
}

// relPronounDisjuncts covers relative pronouns: links left to the head
// noun, right to the relative clause's verb as its subject.
func (b *dictBuilder) relPronounDisjuncts() []disjunct {
	return []disjunct{
		b.dis([]connID{cR}, []connID{cS}),
		b.dis(nil, []connID{cS}), // plain subject reading for "that/which"
	}
}

// nounDisjuncts enumerates noun roles. Left base: up to two A- modifiers
// (nearest), optional D-, optional EN-. Roles add a far-left or right
// connector; right extras add NM+/T+/M+ and a trailing CO+.
func (b *dictBuilder) nounDisjuncts() []disjunct {
	var out []disjunct
	for _, base := range leftBases() {
		// Modifier role: the noun itself modifies a following noun.
		out = append(out, b.dis(base, []connID{cA}))
		for _, extras := range rightExtras() {
			// Bare adjunct role: the noun hangs off a later word through
			// a right extra alone ("five years ago": years—T—ago).
			if len(extras) > 0 {
				out = append(out, b.dis(base, extras))
			}
			// Subject role. The CO+ may sit nearer than S+ when an
			// apposition interrupts: "Pulse, noted ..., was 96".
			out = append(out, b.dis(base, cat(extras, []connID{cS})))
			out = append(out, b.dis(base, cat(extras, []connID{cS, cCO})))
			out = append(out, b.dis(base, cat(extras, []connID{cCO, cS})))
			// Object role.
			out = append(out, b.dis(cat(base, []connID{cO}), extras))
			out = append(out, b.dis(cat(base, []connID{cO}), cat(extras, []connID{cCO})))
			// Preposition-object role.
			out = append(out, b.dis(cat(base, []connID{cJ}), extras))
			out = append(out, b.dis(cat(base, []connID{cJ}), cat(extras, []connID{cCO})))
			// Fragment head after comma/conjunction, and sentence head.
			out = append(out, b.dis(cat(base, []connID{cCC}), extras))
			out = append(out, b.dis(cat(base, []connID{cCC}), cat(extras, []connID{cCO})))
			out = append(out, b.dis(cat(base, []connID{cW}), extras))
			out = append(out, b.dis(cat(base, []connID{cW}), cat(extras, []connID{cCO})))
		}
	}
	return out
}

// leftBases enumerates noun left-modifier prefixes, nearest-first.
func leftBases() [][]connID {
	mods := [][]connID{nil, {cA}, {cA, cA}, {cA, cA, cA}}
	var out [][]connID
	for _, m := range mods {
		out = append(out, m)
		out = append(out, cat(m, []connID{cD}))
		out = append(out, cat(m, []connID{cD, cEN}))
		out = append(out, cat(m, []connID{cEN}))
	}
	return out
}

// rightExtras enumerates optional right-side noun attachments,
// nearest-first: a post-nominal number, a time link to "ago", a
// post-nominal preposition.
func rightExtras() [][]connID {
	return [][]connID{
		nil,
		{cNM},
		{cT},
		{cM},
		{cNM, cM},
		{cT, cM},
		{cM, cM},
		{cR},      // relative clause: "woman who underwent ..."
		{cM, cR},  // "woman in distress who ..."
		{cNM, cR}, // "Ms. 2 who ..."
	}
}

// idiomDisjuncts returns the disjuncts for an idiom family.
func (b *dictBuilder) idiomDisjuncts(family string) []disjunct {
	switch family {
	case "conj":
		return []disjunct{
			b.dis([]connID{cCO}, []connID{cCC}),
			b.dis([]connID{cCC}, []connID{cCC}),
		}
	case "prep":
		return []disjunct{
			b.dis([]connID{cM}, []connID{cJ}),
			b.dis([]connID{cMV}, []connID{cJ}),
			b.dis([]connID{cW}, []connID{cJ}),
			b.dis([]connID{cCC}, []connID{cJ}),
		}
	}
	return nil
}

// numberDisjuncts enumerates cardinal-number roles.
func (b *dictBuilder) numberDisjuncts() []disjunct {
	var out []disjunct
	// Determiner-like: "five years", "15 years", "four to seven features".
	out = append(out, b.dis(nil, []connID{cD}))
	out = append(out, b.dis([]connID{cEN}, []connID{cD}))
	// Value roles: object, prep object, post-nominal.
	for _, role := range []connID{cO, cJ, cNM} {
		out = append(out, b.dis([]connID{role}, nil))
		out = append(out, b.dis([]connID{role}, []connID{cCO}))
		out = append(out, b.dis([]connID{cEN, role}, nil))
		out = append(out, b.dis([]connID{cEN, role}, []connID{cCO}))
		out = append(out, b.dis([]connID{role}, []connID{cNM}))
		out = append(out, b.dis([]connID{role}, []connID{cNM, cCO}))
	}
	// Fragment head: "..., 15 years" handled by years; bare "15" heads:
	out = append(out, b.dis([]connID{cCC}, nil))
	out = append(out, b.dis([]connID{cCC}, []connID{cCO}))
	out = append(out, b.dis([]connID{cW}, nil))
	out = append(out, b.dis([]connID{cW}, []connID{cCO}))
	return out
}

// verbRights enumerates verb right-side variants: a complement, an
// optional MV+ on either side of it, and an optional trailing CO+. The
// cNone complement stands for "no complement".
func verbRights(complements ...connID) [][]connID {
	var out [][]connID
	for _, c := range complements {
		var bases [][]connID
		if c == cNone {
			bases = [][]connID{nil, {cMV}, {cMV, cMV}}
		} else {
			bases = [][]connID{
				{c},
				{cMV, c},
				{c, cMV},
				{c, cMV, cMV},
			}
		}
		for _, bb := range bases {
			out = append(out, bb)
			out = append(out, cat(bb, []connID{cCO}))
		}
	}
	return out
}

// verbLefts enumerates finite-verb left-side variants: optional pre-verbal
// adverb, optional subject, optional wall.
func verbLefts() [][]connID {
	return [][]connID{
		{cS},
		{cS, cW},
		{cW},
		{cE, cS},
		{cE, cS, cW},
		{cE, cW},
		{cCC}, // fragment verb after comma: ", reveals ..."
		{cE, cCC},
		{cS, cCC}, // clause after comma with its own subject: ", her pulse was noted"
		{cCC, cS}, // subject separated by an apposition: "Pulse, noted ..., was 96"
	}
}

func (b *dictBuilder) finiteVerbDisjuncts() []disjunct {
	var out []disjunct
	rights := verbRights(cNone, cO, cPa, cPP, cI)
	for _, l := range verbLefts() {
		for _, r := range rights {
			out = append(out, b.dis(l, r))
		}
	}
	return out
}

func (b *dictBuilder) modalDisjuncts() []disjunct {
	var out []disjunct
	for _, l := range verbLefts() {
		for _, r := range verbRights(cI) {
			out = append(out, b.dis(l, r))
		}
	}
	return out
}

func (b *dictBuilder) baseVerbDisjuncts() []disjunct {
	var out []disjunct
	rights := verbRights(cNone, cO, cPa)
	lefts := [][]connID{{cI}, {cE, cI}}
	for _, l := range lefts {
		for _, r := range rights {
			out = append(out, b.dis(l, r))
		}
	}
	return out
}

func (b *dictBuilder) participleDisjuncts() []disjunct {
	var out []disjunct
	rights := verbRights(cNone, cO)
	lefts := [][]connID{{cPP}, {cE, cPP}, {cCC}, {cW}}
	for _, l := range lefts {
		for _, r := range rights {
			out = append(out, b.dis(l, r))
		}
	}
	return out
}

func (b *dictBuilder) gerundDisjuncts() []disjunct {
	var out []disjunct
	rights := verbRights(cNone, cO)
	lefts := [][]connID{{cO}, {cJ}, {cW}, {cCC}, {cS, cW}, {cS}}
	for _, l := range lefts {
		for _, r := range rights {
			out = append(out, b.dis(l, r))
		}
	}
	return out
}

func (b *dictBuilder) adjectiveDisjuncts() []disjunct {
	out := []disjunct{
		// Attributive.
		b.dis(nil, []connID{cA}),
		b.dis([]connID{cEA}, []connID{cA}),
	}
	// Predicative and fragment-head roles, with optional post-modifier
	// preposition and trailing comma link.
	for _, l := range [][]connID{{cPa}, {cEA, cPa}, {cCC}, {cW}} {
		for _, r := range [][]connID{nil, {cM}, {cCO}, {cM, cCO}, {cM, cM}} {
			out = append(out, b.dis(l, r))
		}
	}
	return out
}
