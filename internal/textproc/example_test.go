package textproc_test

import (
	"fmt"

	"repro/internal/textproc"
)

// Split a record into its fixed sections, as §5 describes: "One record is
// comprised of multiple sections, each of which begins with a fixed
// string."
func ExampleSplitSections() {
	record := "Patient:  2\nVitals:  Blood pressure is 142/78, pulse of 96.\n"
	for _, sec := range textproc.SplitSections(record) {
		fmt.Printf("%s | %s\n", sec.Header, sec.Body)
	}
	// Output:
	// Patient | 2
	// Vitals | Blood pressure is 142/78, pulse of 96.
}

// Annotate every number in a sentence, including blood-pressure ratios
// and English number words.
func ExampleAnnotateNumbers() {
	sent := textproc.SplitSentences("Blood pressure is 144/90 and she smoked for twenty five years.")[0]
	for _, ann := range textproc.AnnotateNumbers(sent) {
		fmt.Printf("%s = %g\n", ann.Text, ann.Value)
	}
	// Output:
	// 144/90 = 144
	// twenty five = 25
}
