package textproc

import (
	"strings"
	"testing"
)

func TestScanNumberEdges(t *testing.T) {
	cases := []struct {
		text string
		want string // expected first-token text
	}{
		{"98.", "98"},            // trailing period is a sentence terminator
		{"144/90.5", "144/90.5"}, // decimal in ratio denominator
		{"1-2", "1-2"},
		{"10,", "10"},
		{"3/14", "3/14"},
	}
	for _, c := range cases {
		toks := Tokenize(c.text)
		if len(toks) == 0 || toks[0].Text != c.want {
			t.Errorf("Tokenize(%q)[0] = %v, want %q", c.text, toks, c.want)
		}
		if toks[0].Kind != Number {
			t.Errorf("Tokenize(%q)[0].Kind = %v", c.text, toks[0].Kind)
		}
	}
}

func TestWordNumberEdgeCases(t *testing.T) {
	// "one" as a pronoun-ish use still annotates — acceptable for this
	// domain; but scale words alone must not.
	sents := SplitSentences("She weighed one hundred pounds.")
	anns := AnnotateNumbers(sents[0])
	if len(anns) != 1 || anns[0].Value != 100 {
		t.Errorf("one hundred = %+v", anns)
	}
	// Standalone "hundred" is not a number expression start.
	sents = SplitSentences("Hundred percent clear.")
	anns = AnnotateNumbers(sents[0])
	if len(anns) != 0 {
		t.Errorf("bare scale word annotated: %+v", anns)
	}
}

func TestSectionHeaderCaseVariants(t *testing.T) {
	rec := "PAST MEDICAL HISTORY:  Diabetes.\nvitals:  Pulse of 80.\n"
	secs := SplitSections(rec)
	if len(secs) != 2 {
		t.Fatalf("case-insensitive headers: got %d sections: %v", len(secs), secs)
	}
	if secs[0].Header != "Past Medical History" {
		t.Errorf("canonical header = %q", secs[0].Header)
	}
}

func TestSectionColonSpacing(t *testing.T) {
	rec := "Vitals :  Pulse of 80.\n"
	secs := SplitSections(rec)
	if len(secs) != 1 || secs[0].Header != "Vitals" {
		t.Fatalf("space before colon: %v", secs)
	}
}

func TestSplitSentencesManyShortFragments(t *testing.T) {
	body := "HEENT:  PERRLA."
	sents := SplitSentences(body)
	if len(sents) != 1 {
		t.Fatalf("fragments: %v", sentTexts(sents))
	}
}

func TestTokenizeLongInputStable(t *testing.T) {
	long := strings.Repeat("Blood pressure is 144/90. ", 500)
	toks := Tokenize(long)
	if len(toks) != 500*5 {
		t.Errorf("token count = %d, want %d", len(toks), 2500)
	}
}

func TestIsTitleCase(t *testing.T) {
	if !IsTitleCase("Brooks") || IsTitleCase("brooks") || IsTitleCase("BR") || IsTitleCase("B") {
		t.Error("IsTitleCase")
	}
}
