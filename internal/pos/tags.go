// Package pos implements a rule-based part-of-speech tagger in the style
// of Brill (lexicon + suffix guesser + contextual repair rules), tuned for
// the clinical dictation sub-language of the consultation notes. It stands
// in for the GATE POS tagger the paper uses to drive the POS-pattern
// medical term extractor (JJ NN NN / NN NN / JJ NN / NN) and the ID3
// feature-extraction options (choose verbs, nouns, adjectives, adverbs).
package pos

// Tag is a Penn-Treebank-style part of speech tag (the subset the IE
// system needs).
type Tag string

// The tag inventory.
const (
	NN  Tag = "NN"   // singular noun
	NNS Tag = "NNS"  // plural noun
	NNP Tag = "NNP"  // proper noun
	JJ  Tag = "JJ"   // adjective
	VB  Tag = "VB"   // verb, base form
	VBD Tag = "VBD"  // verb, past tense
	VBZ Tag = "VBZ"  // verb, 3rd person singular present
	VBP Tag = "VBP"  // verb, non-3rd person present
	VBG Tag = "VBG"  // verb, gerund
	VBN Tag = "VBN"  // verb, past participle
	RB  Tag = "RB"   // adverb
	IN  Tag = "IN"   // preposition / subordinating conjunction
	DT  Tag = "DT"   // determiner
	CC  Tag = "CC"   // coordinating conjunction
	CD  Tag = "CD"   // cardinal number
	PRP Tag = "PRP"  // personal pronoun
	PRS Tag = "PRP$" // possessive pronoun
	MD  Tag = "MD"   // modal
	TO  Tag = "TO"   // "to"
	EX  Tag = "EX"   // existential "there"
	UH  Tag = "UH"   // interjection
	SYM Tag = "SYM"  // symbol / punctuation
)

// IsNoun reports whether the tag is any noun tag.
func (t Tag) IsNoun() bool { return t == NN || t == NNS || t == NNP }

// IsVerb reports whether the tag is any verb tag.
func (t Tag) IsVerb() bool {
	switch t {
	case VB, VBD, VBZ, VBP, VBG, VBN:
		return true
	}
	return false
}

// IsAdjective reports whether the tag is an adjective tag.
func (t Tag) IsAdjective() bool { return t == JJ }

// IsAdverb reports whether the tag is an adverb tag.
func (t Tag) IsAdverb() bool { return t == RB }
