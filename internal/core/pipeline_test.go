package core

import (
	"testing"

	"repro/internal/records"
	"repro/internal/store"
)

func TestSystemEndToEnd(t *testing.T) {
	recs := records.Generate(records.DefaultGenOptions())
	sys, err := NewSystem(Config{Strategy: LinkGrammar, ResolveSynonyms: true})
	if err != nil {
		t.Fatal(err)
	}
	sys.TrainSmoking(recs)

	r := recs[0]
	ex := sys.Process(r.Text)
	if ex.Patient != r.ID {
		t.Errorf("patient id = %d, want %d", ex.Patient, r.ID)
	}
	if len(ex.Numeric) < 7 {
		t.Errorf("numeric attributes extracted = %d, want ≥7", len(ex.Numeric))
	}
	if len(ex.PreMedical)+len(ex.OtherMedical) == 0 {
		t.Error("no medical history extracted")
	}
	if r.Gold.Smoking != "" && ex.Smoking == "" {
		t.Error("smoking not classified")
	}
}

func TestPersistExtraction(t *testing.T) {
	recs := records.Generate(records.GenOptions{N: 3, Seed: 7})
	sys, err := NewSystem(Config{Strategy: LinkGrammar, ResolveSynonyms: true})
	if err != nil {
		t.Fatal(err)
	}
	db := store.OpenMemory()
	total := 0
	for _, r := range recs {
		n, err := Persist(db, sys.Process(r.Text))
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	tbl, err := db.Table("extracted")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != total || total == 0 {
		t.Fatalf("persisted %d rows, table has %d", total, tbl.Len())
	}
	// Every row belongs to one of the three patients.
	tbl.Scan(func(row store.Row) bool {
		p := row[1].I
		if p < 1 || p > 3 {
			t.Errorf("row with patient %d", p)
		}
		return true
	})
}

func TestNewSystemDefaults(t *testing.T) {
	sys, err := NewSystem(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Terms.Ont == nil {
		t.Error("default ontology not loaded")
	}
	ex := sys.Process("Vitals:  Pulse of 80.\n")
	if ex.Numeric[records.AttrPulse].Value != 80 {
		t.Errorf("pulse = %v", ex.Numeric[records.AttrPulse])
	}
}
