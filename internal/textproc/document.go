package textproc

import (
	"strings"
	"sync"
)

// Document is an analyzed record: the Figure 2 front of the pipeline
// (section split, then tokenisation and sentence splitting per section)
// computed at most once per section, with per-section token and sentence
// views that every downstream consumer — numeric extraction, term
// extraction, feature extraction for the categorical classifier — shares
// instead of re-running the analysis on the same text.
//
// Section bodies are analyzed lazily on first access and memoized, so a
// record pays only for the sections its extractors actually read, and
// never pays twice. A Document is safe to share across goroutines.
type Document struct {
	Text     string
	Sections []*DocSection
}

// DocSection is one analyzed section: the raw header/body span plus a
// memoized sentence (and therefore token) analysis of its body, and one
// derived-analysis slot per sentence for the layers above tokenization
// (POS tagging, link-grammar parsing).
type DocSection struct {
	Section
	once    sync.Once
	sents   []Sentence
	derived []SentenceDerived
}

// Sentences returns the sentence split of the section body, computing it
// on first call and reusing the result afterwards. Token offsets are
// relative to Body, exactly as SplitSentences(Body) would return them.
func (s *DocSection) Sentences() []Sentence {
	s.once.Do(func() {
		s.sents = SplitSentences(s.Body)
		s.derived = make([]SentenceDerived, len(s.sents))
	})
	return s.sents
}

// Derived returns the derived-analysis slot of sentence i, analyzing the
// section first if needed. The caller must keep i within the sentence
// count.
func (s *DocSection) Derived(i int) *SentenceDerived {
	s.Sentences()
	return &s.derived[i]
}

// SentenceDerived memoizes per-sentence analyses computed by higher
// pipeline layers — POS tags and the link-grammar linkage — which textproc
// cannot name without an import cycle, so the slots hold opaque values.
// pos.TagSection and linkgram.ParseSection are the typed accessors; they
// guarantee each sentence of a shared Document is tagged at most once and
// parsed at most once, for any number of concurrent consumers.
type SentenceDerived struct {
	tagOnce   sync.Once
	tags      any
	parseOnce sync.Once
	parseVal  any
	parseErr  error
}

// Tags returns the memoized POS tagging of the sentence, invoking compute
// on the first call only.
func (d *SentenceDerived) Tags(compute func() any) any {
	d.tagOnce.Do(func() { d.tags = compute() })
	return d.tags
}

// Parse returns the memoized parse of the sentence, invoking compute on
// the first call only. Both outcomes are cached: a successful linkage and
// the no-linkage error, so an unparseable sentence is attempted exactly
// once per Document.
func (d *SentenceDerived) Parse(compute func() (any, error)) (any, error) {
	d.parseOnce.Do(func() { d.parseVal, d.parseErr = compute() })
	return d.parseVal, d.parseErr
}

// Analyze splits a record into sections — one SplitSections pass over the
// whole text — and wraps each in a lazily analyzed DocSection.
func Analyze(text string) *Document {
	secs := SplitSections(text)
	d := &Document{Text: text, Sections: make([]*DocSection, len(secs))}
	for i, s := range secs {
		d.Sections[i] = &DocSection{Section: s}
	}
	return d
}

// Section returns the first section with the given header
// (case-insensitive) and whether it was found.
func (d *Document) Section(header string) (*DocSection, bool) {
	for _, s := range d.Sections {
		if strings.EqualFold(s.Header, header) {
			return s, true
		}
	}
	return nil, false
}

// SentencesOf returns the analyzed sentences of the named section, or nil
// when the record has no such section.
func (d *Document) SentencesOf(header string) []Sentence {
	if sec, ok := d.Section(header); ok {
		return sec.Sentences()
	}
	return nil
}
