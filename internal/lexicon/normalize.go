package lexicon

import (
	"sort"
	"strings"
)

// Normalize converts a candidate term to the canonical form used as an
// ontology lookup key. Per §3.2 of the paper, normalization has two steps:
// (1) get the uninfected form of each surface word, (2) sort the words in
// alphabetic order. Example: "high blood pressures" → "blood high
// pressure".
func Normalize(term string) string {
	words := strings.Fields(strings.ToLower(term))
	if len(words) == 0 {
		return ""
	}
	out := make([]string, 0, len(words))
	for _, w := range words {
		w = strings.Trim(w, ".,;:()[]'\"")
		if w == "" {
			continue
		}
		out = append(out, Lemma(w, Noun))
	}
	sort.Strings(out)
	return strings.Join(out, " ")
}

// NormalizeWords normalizes a pre-tokenized term. It avoids re-splitting
// when the caller already has word tokens.
func NormalizeWords(words []string) string {
	out := make([]string, 0, len(words))
	for _, w := range words {
		w = strings.ToLower(strings.Trim(w, ".,;:()[]'\""))
		if w == "" {
			continue
		}
		out = append(out, Lemma(w, Noun))
	}
	sort.Strings(out)
	return strings.Join(out, " ")
}
