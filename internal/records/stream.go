package records

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"iter"
)

// ErrEmptyRecord reports a streamed record with no text: there is
// nothing to extract from it, and silently acknowledging it would
// mislead the producer.
var ErrEmptyRecord = errors.New("records: record has empty text")

// DecodeStream incrementally decodes a stream of JSON records — one
// object per line (NDJSON) or any whitespace-separated concatenation —
// yielding each record as soon as it parses, so a long-lived server can
// feed a request body straight into the extraction pipeline without
// buffering the whole payload.
//
// The sequence yields (record, nil) for each decoded record and ends
// either at EOF or with a single terminal (zero Record, err) pair: a
// malformed document, an empty-text record, or ctx cancellation between
// records. Consumers must stop on the first non-nil error; nothing
// after a decode error is trustworthy, so the remainder of the stream
// is abandoned rather than resynchronized.
func DecodeStream(ctx context.Context, r io.Reader) iter.Seq2[Record, error] {
	return func(yield func(Record, error) bool) {
		dec := json.NewDecoder(r)
		for n := 1; ; n++ {
			if err := ctx.Err(); err != nil {
				yield(Record{}, err)
				return
			}
			var rec Record
			if err := dec.Decode(&rec); err != nil {
				if err == io.EOF {
					return
				}
				yield(Record{}, fmt.Errorf("records: decoding record %d: %w", n, err))
				return
			}
			if rec.Text == "" {
				yield(Record{}, fmt.Errorf("record %d: %w", n, ErrEmptyRecord))
				return
			}
			if !yield(rec, nil) {
				return
			}
		}
	}
}
