package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/ontology"
	"repro/internal/store"
)

// runQuery answers a warehouse question from a persisted database:
// equality on an attribute value (-value), a numeric range (-min/-max),
// or a single patient's chart (-patient). Conditions resolve through the
// extracted table's secondary indexes; the final line reports the access
// path so an index regression is visible from the CLI.
func runQuery(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	dbPath := fs.String("db", "", "embedded database file written by medex extract (required)")
	attr := fs.String("attr", "", "attribute to filter on, e.g. pulse, smoking, medications")
	value := fs.String("value", "", "equality on the attribute value (concept terms resolve synonyms)")
	min := fs.Float64("min", 0, "lower bound on the numeric value (exclusive)")
	max := fs.Float64("max", 0, "upper bound on the numeric value (exclusive)")
	patient := fs.Int64("patient", 0, "print every attribute of one patient instead")
	rows := fs.Bool("rows", false, "print matching attribute rows, not just patient ids")
	shards := fs.Int("shards", 0, "expected shard count (0 = auto-detect the on-disk layout)")
	var extraConds []core.Cond
	fs.Func("cond", "additional condition (repeatable): attr=term, attr>n, attr<n or attr>n<m; patients must satisfy every condition", func(v string) error {
		c, err := parseCond(v)
		if err != nil {
			return err
		}
		extraConds = append(extraConds, c)
		return nil
	})
	fs.Parse(args)
	if fs.NArg() > 0 {
		return fmt.Errorf("query: unexpected argument %q", fs.Arg(0))
	}

	if *dbPath == "" {
		return fmt.Errorf("query: -db is required")
	}
	if *shards != 0 {
		if err := cliutil.Shards("-shards", *shards); err != nil {
			return fmt.Errorf("query: %w (0 auto-detects the layout)", err)
		}
	}
	// store.Open creates missing files; a query against a typo'd path
	// should error, not fabricate an empty database. Both layouts — a
	// single WAL file and a shard directory — pass the Stat.
	if _, err := os.Stat(*dbPath); err != nil {
		return fmt.Errorf("query: %w (run medex extract -db first)", err)
	}
	db, err := store.OpenSharded(*dbPath, *shards)
	if err != nil {
		return err
	}
	defer db.Close()
	health := db.Health()
	if !health.Ok() {
		fmt.Fprintf(out, "warning: engine health: %s\n", health)
	}
	// The ontology only serves concept-term resolution; skip its load
	// for patient-chart and pure numeric questions.
	needOnt := *value != ""
	for _, c := range extraConds {
		needOnt = needOnt || c.Term != ""
	}
	var ont *ontology.Ontology
	if needOnt {
		if ont, err = ontology.New(ontology.Options{}); err != nil {
			return err
		}
		defer ont.Close()
	}
	w, err := core.OpenWarehouse(db, ont)
	if err != nil {
		return err
	}

	if *patient != 0 {
		if len(extraConds) > 0 {
			return fmt.Errorf("query: -cond does not combine with -patient")
		}
		chart, err := w.Patient(*patient)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "patient %d (%d attribute rows)\n", *patient, len(chart))
		for _, r := range chart {
			fmt.Fprintf(out, "  %-34s %s\n", r.Attribute, r.Value)
		}
		return nil
	}

	if *attr == "" && len(extraConds) == 0 {
		return fmt.Errorf("query: need -attr (with -value and/or -min/-max), -cond or -patient")
	}
	var conds []core.Cond
	if *attr != "" {
		cond := core.Cond{Attr: *attr, Term: *value}
		var set []string
		fs.Visit(func(f *flag.Flag) { set = append(set, f.Name) })
		for _, name := range set {
			switch name {
			case "min":
				cond.Min, cond.MinExcl = min, true
			case "max":
				cond.Max, cond.MaxExcl = max, true
			}
		}
		conds = append(conds, cond)
	}
	conds = append(conds, extraConds...)

	if *rows {
		if len(conds) > 1 {
			return fmt.Errorf("query: -cond does not combine with -rows (patient-id intersection only)")
		}
		matched, stats, err := w.Rows(conds[0])
		if err != nil {
			return err
		}
		for _, r := range matched {
			fmt.Fprintf(out, "patient %-6d %-26s %-20s %g\n", r.Patient, r.Attribute, r.Value, r.Numeric)
		}
		fmt.Fprintf(out, "%d rows; %s\n", len(matched), planLine(stats, health))
		return nil
	}

	patients, stats, err := w.Ask(conds...)
	if err != nil {
		return err
	}
	ids := make([]string, len(patients))
	for i, p := range patients {
		ids[i] = fmt.Sprintf("%d", p)
	}
	fmt.Fprintf(out, "patients (%d): %s\n", len(patients), strings.Join(ids, " "))
	fmt.Fprintln(out, planLine(stats, health))
	return nil
}

// planLine summarizes how the question executed, including the fan-out
// width so a sharded store is visible from the CLI, the segment
// read-path counters so a compacted store is too, and the engine health
// so answers computed over a degraded store carry the caveat inline.
func planLine(s core.QueryStats, h store.Health) string {
	line := fmt.Sprintf("plan: %d/%d conditions indexed, %d index probes, %d rows examined, %d full scans, %d shard(s)",
		s.IndexedConds, s.Conds, s.IndexProbes, s.RowsExamined, s.FullScans, s.Shards)
	if s.Segments > 0 {
		line += fmt.Sprintf(", %d segment(s), %d blocks pruned", s.Segments, s.BlocksPruned)
	}
	if s.BloomSkips > 0 || s.CacheHits > 0 || s.CacheMisses > 0 {
		line += fmt.Sprintf(", %d bloom skips, %d cache hits, %d cache misses",
			s.BloomSkips, s.CacheHits, s.CacheMisses)
	}
	if !h.Ok() {
		line += fmt.Sprintf(", health: %s", h)
	}
	return line
}

// parseCond parses one -cond value. Forms: "attr=term" (equality on the
// concept term, synonyms resolve), "attr>n" / "attr<n" (exclusive
// numeric bounds) and "attr>n<m" (both bounds).
func parseCond(s string) (core.Cond, error) {
	i := strings.IndexAny(s, "=<>")
	if i <= 0 {
		return core.Cond{}, fmt.Errorf("bad -cond %q (want attr=term, attr>n, attr<n or attr>n<m)", s)
	}
	c := core.Cond{Attr: s[:i]}
	rest := s[i:]
	if rest[0] == '=' {
		if len(rest) == 1 {
			return core.Cond{}, fmt.Errorf("bad -cond %q: empty term", s)
		}
		c.Term = rest[1:]
		return c, nil
	}
	for len(rest) > 0 {
		op := rest[0]
		rest = rest[1:]
		j := strings.IndexAny(rest, "<>")
		num := rest
		if j >= 0 {
			num, rest = rest[:j], rest[j:]
		} else {
			rest = ""
		}
		var v float64
		if _, err := fmt.Sscanf(num, "%g", &v); err != nil || num == "" {
			return core.Cond{}, fmt.Errorf("bad -cond %q: %q is not a number", s, num)
		}
		bound := v
		switch op {
		case '>':
			c.Min, c.MinExcl = &bound, true
		case '<':
			c.Max, c.MaxExcl = &bound, true
		}
	}
	return c, nil
}
