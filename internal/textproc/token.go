// Package textproc provides the low-level text processing pipeline used by
// the clinical information extraction system: tokenization, sentence
// splitting, section splitting of semi-structured records, and number
// annotation (both digit forms like "144/90" and English number words like
// "seventeen").
//
// It is the substitute for the GATE pipeline stages (tokeniser, sentence
// splitter, number NER) used by Zhou et al. (ICDE 2005).
package textproc

import (
	"strings"
	"unicode"
)

// Kind classifies a token.
type Kind int

// Token kinds. Word covers alphabetic tokens (including hyphenated medical
// terms); Number covers integer, decimal, ratio ("144/90") and ordinal
// forms; Punct covers single punctuation runes; Symbol covers everything
// else (degree signs, slashes standing alone, etc.).
const (
	Word Kind = iota
	Number
	Punct
	Symbol
)

// String returns a human-readable name for the token kind.
func (k Kind) String() string {
	switch k {
	case Word:
		return "Word"
	case Number:
		return "Number"
	case Punct:
		return "Punct"
	case Symbol:
		return "Symbol"
	}
	return "Unknown"
}

// Token is a single lexical unit with its span in the original text.
type Token struct {
	Text  string // the token as it appears in the input
	Kind  Kind
	Start int // byte offset of the first byte in the input
	End   int // byte offset one past the last byte
}

// IsWord reports whether the token is an alphabetic word.
func (t Token) IsWord() bool { return t.Kind == Word }

// IsNumber reports whether the token is a numeric literal (digits,
// decimals, or ratios such as blood pressure readings).
func (t Token) IsNumber() bool { return t.Kind == Number }

// Lower returns the lower-cased token text.
func (t Token) Lower() string { return strings.ToLower(t.Text) }

// Tokenize splits text into tokens. The tokenizer is tuned for clinical
// dictation: it keeps blood-pressure ratios ("144/90"), decimals ("98.3"),
// hyphenated compounds ("50-year-old"), and abbreviations with internal
// periods ("Dr.") as single tokens, and emits punctuation as separate
// tokens so the sentence splitter can see clause boundaries.
func Tokenize(text string) []Token {
	tokenizePasses.Add(1)
	var toks []Token
	i := 0
	n := len(text)
	for i < n {
		c := text[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case isDigit(c):
			j := scanNumber(text, i)
			toks = append(toks, Token{Text: text[i:j], Kind: Number, Start: i, End: j})
			i = j
		case isAlpha(c):
			j := scanWord(text, i)
			toks = append(toks, Token{Text: text[i:j], Kind: Word, Start: i, End: j})
			i = j
		case isPunct(c):
			toks = append(toks, Token{Text: text[i : i+1], Kind: Punct, Start: i, End: i + 1})
			i++
		default:
			j := i
			for j < n && !isDigit(text[j]) && !isAlpha(text[j]) && !isPunct(text[j]) && !isSpaceByte(text[j]) {
				j++
			}
			if j == i {
				j = i + 1
			}
			toks = append(toks, Token{Text: text[i:j], Kind: Symbol, Start: i, End: j})
			i = j
		}
	}
	return toks
}

// scanNumber consumes a numeric literal starting at i: digits optionally
// followed by a decimal point and more digits, optionally followed by a
// '/' ratio part (blood pressure) or a '-' range part. "144/90", "98.3",
// "1-2" and plain "84" are all single tokens.
func scanNumber(text string, i int) int {
	n := len(text)
	j := i
	for j < n && isDigit(text[j]) {
		j++
	}
	// Decimal part: "98.3" but not "98." at sentence end.
	if j+1 < n && text[j] == '.' && isDigit(text[j+1]) {
		j++
		for j < n && isDigit(text[j]) {
			j++
		}
	}
	// Ratio part: "144/90". Also covers dates written 3/14 in dictation.
	if j+1 < n && text[j] == '/' && isDigit(text[j+1]) {
		j++
		for j < n && isDigit(text[j]) {
			j++
		}
		if j+1 < n && text[j] == '.' && isDigit(text[j+1]) {
			j++
			for j < n && isDigit(text[j]) {
				j++
			}
		}
	}
	// Range part: "1-2" (alcohol use "1-2 day per week").
	if j+1 < n && text[j] == '-' && isDigit(text[j+1]) {
		j++
		for j < n && isDigit(text[j]) {
			j++
		}
	}
	return j
}

// scanWord consumes an alphabetic word starting at i. Hyphenated compounds
// ("50-year-old" is handled by the number scanner for the leading digits;
// "well-developed" here) and apostrophes ("patient's") stay in one token.
func scanWord(text string, i int) int {
	n := len(text)
	j := i
	for j < n {
		c := text[j]
		if isAlpha(c) || isDigit(c) {
			j++
			continue
		}
		// Internal hyphen or apostrophe between letters.
		if (c == '-' || c == '\'') && j+1 < n && isAlpha(text[j+1]) {
			j++
			continue
		}
		break
	}
	return j
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isAlpha(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isSpaceByte(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}

func isPunct(c byte) bool {
	switch c {
	case '.', ',', ';', ':', '!', '?', '(', ')', '[', ']', '{', '}', '"', '/', '%', '&', '+', '=', '<', '>', '-', '\'':
		return true
	}
	return false
}

// IsTitleCase reports whether s begins with an upper-case letter followed
// by at least one lower-case letter, the shape of a sentence-initial word
// or a proper name.
func IsTitleCase(s string) bool {
	rs := []rune(s)
	if len(rs) < 2 {
		return false
	}
	return unicode.IsUpper(rs[0]) && unicode.IsLower(rs[1])
}
