package records

import (
	_ "embed"
	"encoding/json"
)

// coverage_corpus.json is a small hand-labeled corpus in which every
// label of every categorical attribute appears at least twice, with
// phrasing drawn from across the generator's dictation-style pools. It
// exists so classifier-facing tests can assert label coverage directly
// instead of hoping the random corpus happens to hit a rare label: a
// coverage test over this corpus fails the moment a new label is added
// to a field without representative training text.
//
//go:embed coverage_corpus.json
var coverageCorpusJSON []byte

// CoverageCorpus returns the embedded labeled coverage corpus. The data
// is compiled into the binary, so failure to decode is a build defect,
// not a runtime condition — it panics rather than returning an error.
func CoverageCorpus() []Record {
	var recs []Record
	if err := json.Unmarshal(coverageCorpusJSON, &recs); err != nil {
		panic("records: embedded coverage_corpus.json is invalid: " + err.Error())
	}
	return recs
}
