package store

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Column describes one table column.
type Column struct {
	Name string
	Type ColType
}

// Schema describes a table: its columns and the primary-key column index.
type Schema struct {
	Name    string
	Columns []Column
	Primary int // index into Columns of the primary key
}

// colIndex returns the index of the named column, or -1.
func (s *Schema) colIndex(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// validate checks a row against the schema.
func (s *Schema) validate(row Row) error {
	if len(row) != len(s.Columns) {
		return fmt.Errorf("store: table %s: row has %d values, schema has %d columns", s.Name, len(row), len(s.Columns))
	}
	for i, v := range row {
		if v.Type != s.Columns[i].Type {
			return fmt.Errorf("%w: column %s is %s, got %s", ErrTypeMism, s.Columns[i].Name, s.Columns[i].Type, v.Type)
		}
	}
	return nil
}

// Table is a hash-partitioned table: rows live on the shard selected by
// their encoded primary key, each partition backed by that shard's
// write-ahead log and guarded by its own RWMutex. Point operations
// (Insert, Get, Delete, Update, Upsert) route to one shard; batch
// inserts split into per-shard sub-batches logged and applied in
// parallel; reads that span the table (Query, Lookup, Scan, …) fan out
// across shards and merge into the same deterministic order a
// single-shard table produces.
//
// Tables are safe for concurrent use: mutations hold their shard's
// write lock, reads its read lock, so readers overlap each other and
// writers on other shards, and serialize only against writers of the
// same shard.
type Table struct {
	schema Schema
	shards []*tableShard
}

// tableShard is one shard's slice of a table: the rows routed to it,
// their B-tree primary index, and the shard-local halves of every
// secondary index.
type tableShard struct {
	schema    Schema
	shard     *Shard
	mu        sync.RWMutex
	primary   *btree            // pk key bytes → Row
	secondary map[string]*btree // column name → key bytes → postingList
}

// Errors returned by table operations.
var (
	ErrDuplicate = errors.New("store: duplicate primary key")
	ErrNotFound  = errors.New("store: not found")
	ErrNoIndex   = errors.New("store: no index on column")
	ErrPKChange  = errors.New("store: update may not change the primary key")
)

// Schema returns a copy of the table's schema.
func (t *Table) Schema() Schema { return t.schema }

// shardFor routes an encoded primary key to its home shard.
func (t *Table) shardFor(key []byte) *tableShard {
	return t.shards[shardIndex(key, len(t.shards))]
}

// MaxPK returns the largest primary-key value in the table and whether
// the table is non-empty. Id-allocating writers (core.PersistAll) seed
// from it rather than from Len(): after a crash truncates one shard's
// WAL, surviving shards can hold keys far beyond the row count, and
// Len()+1 would collide with them.
func (t *Table) MaxPK() (Value, bool) {
	var best Value
	found := false
	for _, ts := range t.shards {
		ts.mu.RLock()
		_, v, ok := ts.primary.Max()
		ts.mu.RUnlock()
		if !ok {
			continue
		}
		pk := v.(Row)[t.schema.Primary]
		if !found || cmpValues(pk, best) > 0 {
			best, found = pk, true
		}
	}
	return best, found
}

// Len returns the number of rows across all shards.
func (t *Table) Len() int {
	n := 0
	for _, ts := range t.shards {
		ts.mu.RLock()
		n += ts.primary.Len()
		ts.mu.RUnlock()
	}
	return n
}

// Insert adds a row. The primary key must be unique (routing by key
// hash makes the per-shard check global).
func (t *Table) Insert(row Row) error {
	if err := t.schema.validate(row); err != nil {
		return err
	}
	key := encodeKey(row[t.schema.Primary])
	ts := t.shardFor(key)
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.insertLocked(key, row)
}

func (ts *tableShard) insertLocked(key []byte, row Row) error {
	if _, exists := ts.primary.Get(key); exists {
		return fmt.Errorf("%w: %s", ErrDuplicate, row[ts.schema.Primary])
	}
	if err := ts.shard.logInsert(ts.schema.Name, row); err != nil {
		return err
	}
	ts.apply(key, row)
	return nil
}

// InsertBatch adds many rows with one write-ahead-log record per
// involved shard. The whole batch is validated (schema and primary-key
// uniqueness, including against other rows of the same batch) under
// every involved shard's lock before anything is logged or applied, so
// a validation error leaves the table unchanged on every shard. The
// per-shard sub-batches are then logged and applied in parallel; each
// is atomic on its shard — framed as one CRC-covered record, so a
// crash-torn sub-batch drops whole on that shard's recovery while
// other shards keep theirs (an I/O error mid-flush can likewise leave
// a sub-batch applied on one shard and not another).
func (t *Table) InsertBatch(rows []Row) error {
	if len(rows) == 0 {
		return nil
	}
	n := len(t.shards)
	groups := make([][]Row, n)
	keys := make([][][]byte, n)
	for _, row := range rows {
		if err := t.schema.validate(row); err != nil {
			return err
		}
		key := encodeKey(row[t.schema.Primary])
		si := shardIndex(key, n)
		groups[si] = append(groups[si], row)
		keys[si] = append(keys[si], key)
	}

	// Phase 1: lock involved shards in id order (a fixed order keeps
	// concurrent batches from deadlocking) and validate everything.
	var locked []*tableShard
	unlock := func() {
		for i := len(locked) - 1; i >= 0; i-- {
			locked[i].mu.Unlock()
		}
	}
	for si, g := range groups {
		if len(g) == 0 {
			continue
		}
		ts := t.shards[si]
		ts.mu.Lock()
		locked = append(locked, ts)
		inBatch := make(map[string]bool, len(g))
		for i, row := range g {
			key := keys[si][i]
			if _, exists := ts.primary.Get(key); exists || inBatch[string(key)] {
				unlock()
				return fmt.Errorf("%w: %s", ErrDuplicate, row[t.schema.Primary])
			}
			inBatch[string(key)] = true
		}
	}
	defer unlock()

	// Phase 2: log and apply per shard, in parallel when partitioned.
	if n == 1 {
		return t.shards[0].logApplyBatch(groups[0], keys[0])
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for si := range groups {
		if len(groups[si]) == 0 {
			continue
		}
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			errs[si] = t.shards[si].logApplyBatch(groups[si], keys[si])
		}(si)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// logApplyBatch writes one batch record to the shard's WAL and applies
// the rows. Callers hold the shard's write lock and have validated the
// batch.
func (ts *tableShard) logApplyBatch(rows []Row, keys [][]byte) error {
	if err := ts.shard.logInsertBatch(ts.schema.Name, rows); err != nil {
		return err
	}
	for i, row := range rows {
		ts.apply(keys[i], row)
	}
	return nil
}

// replayInsert applies one row during WAL replay. A duplicate primary
// key replaces the existing row (and its index postings) so that replay
// of any log prefix leaves indexes exactly consistent with the table.
func (ts *tableShard) replayInsert(row Row) {
	key := encodeKey(row[ts.schema.Primary])
	if old, ok := ts.primary.Get(key); ok {
		ts.applyDelete(key, old.(Row))
	}
	ts.apply(key, row)
}

// apply performs the in-memory insert (used by Insert and WAL replay).
func (ts *tableShard) apply(key []byte, row Row) {
	ts.primary.Put(key, row)
	for col, idx := range ts.secondary {
		ci := ts.schema.colIndex(col)
		sk := encodeKey(row[ci])
		indexAdd(idx, sk, key, row)
	}
}

// Get returns the row with the given primary key.
func (t *Table) Get(pk Value) (Row, error) {
	key := encodeKey(pk)
	ts := t.shardFor(key)
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	v, ok := ts.primary.Get(key)
	if !ok {
		return nil, ErrNotFound
	}
	return v.(Row), nil
}

// Delete removes the row with the given primary key.
func (t *Table) Delete(pk Value) error {
	key := encodeKey(pk)
	ts := t.shardFor(key)
	ts.mu.Lock()
	defer ts.mu.Unlock()
	v, ok := ts.primary.Get(key)
	if !ok {
		return ErrNotFound
	}
	if err := ts.shard.logDelete(ts.schema.Name, pk); err != nil {
		return err
	}
	ts.applyDelete(key, v.(Row))
	return nil
}

func (ts *tableShard) applyDelete(key []byte, row Row) {
	ts.primary.Delete(key)
	for col, idx := range ts.secondary {
		ci := ts.schema.colIndex(col)
		sk := encodeKey(row[ci])
		indexRemove(idx, sk, key)
	}
}

// CreateIndex builds a non-unique secondary index on the named column,
// on every shard. The index is durable: each shard's WAL carries a
// create-index record re-created on replay and through Compact, so once
// built it exists after every reopen and is maintained transactionally
// by Insert/InsertBatch/Update/Delete alongside the rows. Creating an
// existing index is a no-op.
func (t *Table) CreateIndex(col string) error {
	if t.schema.colIndex(col) < 0 {
		return fmt.Errorf("store: table %s has no column %s", t.schema.Name, col)
	}
	// Build the in-memory index on every shard even if logging fails
	// partway: the fan-out planner and whole-table Lookup require the
	// index inventory to be identical across shards. A shard whose
	// create record could not be appended reports the error but still
	// carries the index in memory; the durable inventory is repaired
	// from the other shards' WALs at the next open (buildRouters).
	var firstErr error
	for _, ts := range t.shards {
		ts.mu.Lock()
		if _, ok := ts.secondary[col]; ok {
			ts.mu.Unlock()
			continue
		}
		if err := ts.shard.logCreateIndex(ts.schema.Name, col); err != nil && firstErr == nil {
			firstErr = err
		}
		ts.createIndexLocked(col)
		ts.mu.Unlock()
	}
	return firstErr
}

// createIndexLocked builds the index from the shard's current rows.
// Callers hold the shard's write lock (or are single-threaded WAL
// replay).
func (ts *tableShard) createIndexLocked(col string) {
	if _, ok := ts.secondary[col]; ok {
		return
	}
	idx := newBtree()
	ci := ts.schema.colIndex(col)
	ts.primary.Ascend(func(key []byte, val interface{}) bool {
		row := val.(Row)
		indexAdd(idx, encodeKey(row[ci]), key, row)
		return true
	})
	ts.secondary[col] = idx
}

// postingList is the value type of secondary index entries: the rows
// sharing one indexed value, kept sorted by primary-key bytes so reads
// stream them in deterministic order without sorting.
type postingEntry struct {
	pk  string // encoded primary key
	row Row
}

type postingList struct {
	entries []postingEntry // ascending pk
}

// find returns the insertion position of pk and whether it is present.
func (pl *postingList) find(pk string) (int, bool) {
	i := sort.Search(len(pl.entries), func(i int) bool { return pl.entries[i].pk >= pk })
	return i, i < len(pl.entries) && pl.entries[i].pk == pk
}

// appendRows appends the posting rows (already pk-sorted) to out.
func (pl *postingList) appendRows(out []Row) []Row {
	for _, e := range pl.entries {
		out = append(out, e.row)
	}
	return out
}

func indexAdd(idx *btree, sk, pk []byte, row Row) {
	v, ok := idx.Get(sk)
	if !ok {
		idx.Put(sk, &postingList{entries: []postingEntry{{pk: string(pk), row: row}}})
		return
	}
	pl := v.(*postingList)
	i, found := pl.find(string(pk))
	if found {
		pl.entries[i].row = row
		return
	}
	pl.entries = append(pl.entries, postingEntry{})
	copy(pl.entries[i+1:], pl.entries[i:])
	pl.entries[i] = postingEntry{pk: string(pk), row: row}
}

func indexRemove(idx *btree, sk, pk []byte) {
	if v, ok := idx.Get(sk); ok {
		pl := v.(*postingList)
		if i, found := pl.find(string(pk)); found {
			pl.entries = append(pl.entries[:i], pl.entries[i+1:]...)
		}
		if len(pl.entries) == 0 {
			idx.Delete(sk)
		}
	}
}

// Lookup returns all rows whose indexed column equals v in ascending
// primary-key order, using the secondary index on col. The column must
// have an index. With multiple shards the per-shard posting lists are
// fanned out and merged by primary key.
func (t *Table) Lookup(col string, v Value) ([]Row, error) {
	if len(t.shards) == 1 {
		return t.shards[0].lookup(col, v)
	}
	parts := make([][]Row, len(t.shards))
	errs := make([]error, len(t.shards))
	var wg sync.WaitGroup
	for i, ts := range t.shards {
		wg.Add(1)
		go func(i int, ts *tableShard) {
			defer wg.Done()
			parts[i], errs[i] = ts.lookup(col, v)
		}(i, ts)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return kwayMerge(parts, t.lessByPK()), nil
}

func (ts *tableShard) lookup(col string, v Value) ([]Row, error) {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	idx, ok := ts.secondary[col]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoIndex, col)
	}
	pv, ok := idx.Get(encodeKey(v))
	if !ok {
		return nil, nil
	}
	pl := pv.(*postingList)
	return pl.appendRows(make([]Row, 0, len(pl.entries))), nil
}

// kwayMerge merges per-shard result slices that are each already
// sorted by less into one sorted slice. Each output row costs at most
// shards-1 comparisons and the merge allocates only the output, so the
// fan-out read paths stay close to the single-shard cost.
func kwayMerge(parts [][]Row, less func(a, b Row) bool) []Row {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total == 0 {
		return nil
	}
	out := make([]Row, 0, total)
	idx := make([]int, len(parts))
	for len(out) < total {
		best := -1
		for i, p := range parts {
			if idx[i] >= len(p) {
				continue
			}
			if best < 0 || less(p[idx[i]], parts[best][idx[best]]) {
				best = i
			}
		}
		out = append(out, parts[best][idx[best]])
		idx[best]++
	}
	return out
}

// lessByPK orders rows by primary-key value — identical to the B-trees'
// encoded-key order, because encodeKey is order-preserving within a
// type and a table's primary keys share the schema's type — without
// encoding a key per comparison.
func (t *Table) lessByPK() func(a, b Row) bool {
	pk := t.schema.Primary
	return func(a, b Row) bool { return cmpValues(a[pk], b[pk]) < 0 }
}

// lessByColPK orders rows by an indexed column's value, breaking ties
// by primary key: the order an index walk produces.
func (t *Table) lessByColPK(ci int) func(a, b Row) bool {
	pk := t.schema.Primary
	return func(a, b Row) bool {
		if c := cmpValues(a[ci], b[ci]); c != 0 {
			return c < 0
		}
		return cmpValues(a[pk], b[pk]) < 0
	}
}

// Scan calls fn for every row in ascending primary-key order until fn
// returns false. It is the linear-scan baseline for the index ablation.
// On a single shard fn streams under the shard's read lock and must not
// mutate the table; with multiple shards the per-shard row sets are
// collected first and merged, so fn runs without any lock held.
func (t *Table) Scan(fn func(Row) bool) {
	if len(t.shards) == 1 {
		ts := t.shards[0]
		ts.mu.RLock()
		defer ts.mu.RUnlock()
		ts.primary.Ascend(func(_ []byte, val interface{}) bool {
			return fn(val.(Row))
		})
		return
	}
	for _, row := range t.collectSorted(nil, nil) {
		if !fn(row) {
			return
		}
	}
}

// ScanRange calls fn for rows with primary key in [lo, hi), in
// ascending primary-key order; locking as in Scan.
func (t *Table) ScanRange(lo, hi Value, fn func(Row) bool) {
	if len(t.shards) == 1 {
		ts := t.shards[0]
		ts.mu.RLock()
		defer ts.mu.RUnlock()
		ts.primary.AscendRange(encodeKey(lo), encodeKey(hi), func(_ []byte, val interface{}) bool {
			return fn(val.(Row))
		})
		return
	}
	for _, row := range t.collectSorted(encodeKey(lo), encodeKey(hi)) {
		if !fn(row) {
			return
		}
	}
}

// collectSorted gathers every shard's rows (bounded to [lo, hi) when
// non-nil) in parallel and merges them into global primary-key order.
func (t *Table) collectSorted(lo, hi []byte) []Row {
	parts := make([][]Row, len(t.shards))
	var wg sync.WaitGroup
	for i, ts := range t.shards {
		wg.Add(1)
		go func(i int, ts *tableShard) {
			defer wg.Done()
			ts.mu.RLock()
			defer ts.mu.RUnlock()
			visit := func(_ []byte, val interface{}) bool {
				parts[i] = append(parts[i], val.(Row))
				return true
			}
			if lo == nil && hi == nil {
				ts.primary.Ascend(visit)
			} else {
				ts.primary.AscendRange(lo, hi, visit)
			}
		}(i, ts)
	}
	wg.Wait()
	return kwayMerge(parts, t.lessByPK())
}

// Select returns all rows matching a predicate, by full scan.
func (t *Table) Select(pred func(Row) bool) []Row {
	var out []Row
	t.Scan(func(r Row) bool {
		if pred(r) {
			out = append(out, r)
		}
		return true
	})
	return out
}
