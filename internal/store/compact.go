package store

import (
	"fmt"
	"os"
)

// compactBatchRows is how many live rows Compact frames per batch record.
const compactBatchRows = 512

// Compact rewrites the write-ahead log so it contains exactly the live
// state (one create-table record per table, batch-insert records covering
// the live rows), dropping superseded inserts and deletes. The rewrite
// goes to a temporary file that atomically replaces the log, so a crash
// during compaction leaves either the old or the new log intact.
//
// Long-running deployments of the extraction pipeline append one insert
// per extracted attribute; compaction bounds recovery time.
func (db *DB) Compact() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.log == nil {
		return nil // in-memory databases have nothing to compact
	}
	// Freeze every table for the rewrite: a concurrent writer would
	// otherwise append to the old log after its rows were (or weren't)
	// scanned, and the record would vanish in the swap.
	lockNames := make([]string, 0, len(db.tables))
	for n := range db.tables {
		lockNames = append(lockNames, n)
	}
	sortKeys(lockNames)
	for _, n := range lockNames {
		db.tables[n].mu.Lock()
		defer db.tables[n].mu.Unlock()
	}
	db.logMu.Lock()
	defer db.logMu.Unlock()
	tmpPath := db.path + ".compact"
	tmp, err := openWAL(tmpPath)
	if err != nil {
		return err
	}
	cleanup := func() {
		tmp.close()
		os.Remove(tmpPath)
	}

	for _, name := range lockNames {
		t := db.tables[name]
		s := t.schema
		if err := tmp.append(encodeCreateTablePayload(s)); err != nil {
			cleanup()
			return err
		}
		// Indexes are part of the live state: carry one create-index
		// record per secondary index so they exist after replay of the
		// compacted log.
		idxCols := make([]string, 0, len(t.secondary))
		for col := range t.secondary {
			idxCols = append(idxCols, col)
		}
		sortKeys(idxCols)
		for _, col := range idxCols {
			if err := tmp.append(encodeCreateIndexPayload(s.Name, col)); err != nil {
				cleanup()
				return err
			}
		}
		var insertErr error
		batch := make([]Row, 0, compactBatchRows)
		flush := func() error {
			if len(batch) == 0 {
				return nil
			}
			p := encodeBatchPayload(s.Name, batch)
			batch = batch[:0]
			return tmp.append(p)
		}
		t.primary.Ascend(func(_ []byte, val interface{}) bool {
			batch = append(batch, val.(Row))
			if len(batch) >= compactBatchRows {
				if err := flush(); err != nil {
					insertErr = err
					return false
				}
			}
			return true
		})
		if insertErr == nil {
			insertErr = flush()
		}
		if insertErr != nil {
			cleanup()
			return insertErr
		}
	}
	if err := tmp.sync(); err != nil {
		cleanup()
		return err
	}
	if err := tmp.close(); err != nil {
		os.Remove(tmpPath)
		return err
	}

	// Swap: close the old log, rename, reopen for appending.
	if err := db.log.close(); err != nil {
		os.Remove(tmpPath)
		return err
	}
	if err := os.Rename(tmpPath, db.path); err != nil {
		return fmt.Errorf("store: compact rename: %w (database closed; reopen to recover)", err)
	}
	l, err := openWAL(db.path)
	if err != nil {
		return err
	}
	if _, err := l.replay(func([]byte) error { return nil }); err != nil {
		l.close()
		return err
	}
	db.log = l
	return nil
}

// LogSize returns the current size of the write-ahead log in bytes
// (0 for in-memory databases).
func (db *DB) LogSize() int64 {
	db.logMu.Lock()
	defer db.logMu.Unlock()
	if db.log == nil {
		return 0
	}
	return db.log.len
}
