package pos

import "sync/atomic"

// tagPasses counts full tagging passes (initial tags + context rules)
// process-wide, mirroring textproc.AnalysisCounts. Tests snapshot it
// around an operation to pin the tag-at-most-once property of the shared
// Document analysis.
var tagPasses atomic.Uint64

// TagPasses returns the cumulative number of tagging passes performed
// process-wide.
func TagPasses() uint64 { return tagPasses.Load() }
