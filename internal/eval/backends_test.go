package eval

import (
	"strings"
	"testing"

	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/records"
)

// TestBackendsSideBySideOnSmoking is the acceptance gate for the vector
// backend: cross-validated on the same smoking corpus with the same
// protocol, it must land within ten accuracy points of the ID3 trees
// while ID3 itself stays pinned to its golden value (the golden tests
// cover the exact number; here we only need it present and sane).
func TestBackendsSideBySideOnSmoking(t *testing.T) {
	recs := records.Generate(records.DefaultGenOptions())
	field := core.SmokingField()
	results := map[string]classify.CVResult{}
	for _, name := range classify.Names() {
		b, err := classify.New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		res := field.WithBackend(b).CrossValidate(recs, 5, 10, 7)
		if res.Backend != name {
			t.Errorf("result for %q tagged %q", name, res.Backend)
		}
		if res.Accuracy <= 0 || res.Accuracy > 1 {
			t.Errorf("%s accuracy %v out of range", name, res.Accuracy)
		}
		results[name] = res
		t.Logf("%s: accuracy %.4f (±%.4f), model size %d–%d",
			name, res.Accuracy, res.StdDev, res.MinFeatures, res.MaxFeatures)
	}
	if gap := results["id3"].Accuracy - results["vector"].Accuracy; gap > 0.10 {
		t.Errorf("vector accuracy %.4f is %.1f points below ID3's %.4f, want within 10",
			results["vector"].Accuracy, 100*gap, results["id3"].Accuracy)
	}
}

// TestRunA8 covers the side-by-side eval report: one row per registered
// backend, in registry order, rendered with every backend named.
func TestRunA8(t *testing.T) {
	recs := records.Generate(records.DefaultGenOptions())
	res, err := RunA8(recs, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(classify.Names()) {
		t.Fatalf("A8 has %d rows, want one per backend (%d)", len(res.Rows), len(classify.Names()))
	}
	for i, name := range classify.Names() {
		if res.Rows[i].Backend != name {
			t.Errorf("A8 row %d is %q, want %q", i, res.Rows[i].Backend, name)
		}
	}
	out := res.String()
	for _, name := range classify.Names() {
		if !strings.Contains(out, name) {
			t.Errorf("A8 report misses backend %q:\n%s", name, out)
		}
	}
}

// TestRunE3WithBackendIndependence pins that the optional backend
// parameter defaults to ID3: RunE3 and RunE3With(ID3) are the same run.
func TestRunE3WithBackendIndependence(t *testing.T) {
	recs := records.Generate(records.DefaultGenOptions())
	plain := RunE3(recs, 7)
	explicit := RunE3With(recs, 7, classify.ID3{})
	if plain.Accuracy != explicit.Accuracy || plain.StdDev != explicit.StdDev {
		t.Errorf("RunE3 (%v±%v) != RunE3With(ID3) (%v±%v)",
			plain.Accuracy, plain.StdDev, explicit.Accuracy, explicit.StdDev)
	}
}
