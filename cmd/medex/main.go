// Command medex runs the full extraction pipeline over a corpus
// directory (as produced by gencorpus), persists structured results to
// an embedded database, and answers queries over the persisted table.
//
// Usage:
//
//	medex [extract] -corpus corpus/ [-db extracted.db] [-shards 4]
//	      [-compact] [-strategy link-grammar] [-synonyms] [-train-smoking]
//	medex query -db extracted.db -attr pulse -min 100
//	medex query -db extracted.db -attr smoking -value current
//	medex query -db extracted.db -patient 12
//
// -shards 1 (the default) writes the single-file layout earlier
// versions produced; -shards N partitions the store across N shard
// WALs so ingest and queries parallelize. query auto-detects the
// layout on disk.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"slices"
	"sort"
	"strings"

	"repro/internal/classify"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/records"
	"repro/internal/store"
)

// persistEvery is how many extractions medex accumulates before one
// batched persistence call (one WAL record per ~batch).
const persistEvery = 64

func main() {
	log.SetFlags(0)
	log.SetPrefix("medex: ")

	args := os.Args[1:]
	cmd := "extract"
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		cmd, args = args[0], args[1:]
	}
	var err error
	switch cmd {
	case "extract":
		err = runExtract(args)
	case "query":
		err = runQuery(args, os.Stdout)
	default:
		err = fmt.Errorf("unknown command %q (want extract or query)", cmd)
	}
	if err != nil {
		log.Fatal(err)
	}
}

func runExtract(args []string) error {
	fs := flag.NewFlagSet("extract", flag.ExitOnError)
	corpusDir := fs.String("corpus", "corpus", "corpus directory with gold.json")
	dbPath := fs.String("db", "", "embedded database file for extracted information (empty = in-memory)")
	strategyName := fs.String("strategy", "link-grammar", "number association strategy: link-grammar | pattern-only | proximity-only")
	synonyms := fs.Bool("synonyms", true, "resolve synonyms when assigning predefined terms")
	trainSmoking := fs.Bool("train-smoking", true, "train the smoking classifier on the corpus gold labels")
	backendName := fs.String("backend", "id3", "classification backend for the smoking classifier: id3 | gini | vector")
	verbose := fs.Bool("v", false, "print every extracted attribute")
	workers := fs.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	shards := fs.Int("shards", 1, "store shard count (1 = single-file layout, compatible with old databases)")
	compact := fs.Bool("compact", false, "compact the database after ingest: fold rows into immutable sorted segment files and shrink the WAL")
	fs.Parse(args)
	if fs.NArg() > 0 {
		return fmt.Errorf("extract: unexpected argument %q", fs.Arg(0))
	}
	dbCheck := func() error {
		if *dbPath == "" {
			return nil // in-memory store
		}
		return cliutil.DBPath("-db", *dbPath)
	}
	if err := cliutil.FirstErr(
		cliutil.Shards("-shards", *shards),
		cliutil.NonNegative("-workers", *workers),
		cliutil.OneOf("-backend", *backendName, classify.Names()...),
		cliutil.ExistingDir("-corpus", *corpusDir),
		dbCheck(),
	); err != nil {
		return fmt.Errorf("extract: %w", err)
	}

	strategy, err := parseStrategy(*strategyName)
	if err != nil {
		return err
	}
	backend, err := classify.New(*backendName)
	if err != nil {
		return fmt.Errorf("extract: %w", err)
	}
	recs, err := records.ReadCorpus(*corpusDir)
	if err != nil {
		return fmt.Errorf("reading corpus: %v (run gencorpus first)", err)
	}

	sys, err := core.NewSystem(core.Config{Strategy: strategy, ResolveSynonyms: *synonyms})
	if err != nil {
		return err
	}
	if *trainSmoking {
		sys.TrainSmokingWith(recs, backend)
	}

	var db *store.DB
	if *dbPath != "" {
		db, err = store.OpenSharded(*dbPath, *shards)
		if err != nil {
			return err
		}
		defer db.Close()
	} else {
		db = store.OpenMemorySharded(*shards)
	}
	// Opening the warehouse before ingest creates the extracted table's
	// secondary indexes up front, so every InsertBatch maintains them
	// transactionally and `medex query` answers from the index.
	if _, err := core.OpenWarehouse(db, nil); err != nil {
		return err
	}

	// Stream extractions in corpus order with bounded memory, persisting
	// a batch at a time so the WAL sees a few large records instead of
	// one per attribute row.
	rows, processed := 0, 0
	batch := make([]core.Extraction, 0, persistEvery)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		n, err := core.PersistAll(db, batch)
		if err != nil {
			return fmt.Errorf("persisting batch ending at record %d: %v", recs[processed-1].ID, err)
		}
		rows += n
		batch = batch[:0]
		return nil
	}
	for _, ex := range sys.ProcessStream(context.Background(), slices.Values(recs), *workers) {
		batch = append(batch, ex)
		processed++
		if len(batch) >= persistEvery {
			if err := flush(); err != nil {
				return err
			}
		}
		if *verbose {
			printExtraction(ex)
		}
	}
	if err := flush(); err != nil {
		return err
	}
	if *compact {
		if *dbPath == "" {
			return fmt.Errorf("extract: -compact needs a file-backed database (-db)")
		}
		if err := db.Compact(); err != nil {
			return fmt.Errorf("compacting: %v", err)
		}
	}
	fmt.Printf("processed %d records, persisted %d attribute rows", processed, rows)
	if *trainSmoking {
		fmt.Printf(" (smoking backend %s, %s)", backend.Name(), backend.Params())
	}
	if *dbPath != "" {
		fmt.Printf(" to %s", *dbPath)
		if *compact {
			cs := db.CompactionStats()
			fmt.Printf(" (compacted to segments: %d rows, %d bytes rewritten)", cs.RowsRewritten, cs.BytesRewritten)
		}
	}
	fmt.Println()
	return nil
}

func parseStrategy(name string) (core.Strategy, error) {
	switch name {
	case "link-grammar":
		return core.LinkGrammar, nil
	case "pattern-only":
		return core.PatternOnly, nil
	case "proximity-only":
		return core.ProximityOnly, nil
	}
	return 0, fmt.Errorf("unknown strategy %q", name)
}

func printExtraction(ex core.Extraction) {
	fmt.Printf("patient %d\n", ex.Patient)
	attrs := make([]string, 0, len(ex.Numeric))
	for a := range ex.Numeric {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)
	for _, a := range attrs {
		v := ex.Numeric[a]
		if v.Ratio {
			fmt.Printf("  %-22s %g/%g\n", a, v.Value, v.Value2)
		} else {
			fmt.Printf("  %-22s %g\n", a, v.Value)
		}
	}
	if len(ex.PreMedical) > 0 {
		fmt.Printf("  %-22s %s\n", "pre medical", strings.Join(ex.PreMedical, "; "))
	}
	if len(ex.OtherMedical) > 0 {
		fmt.Printf("  %-22s %s\n", "other medical", strings.Join(ex.OtherMedical, "; "))
	}
	if len(ex.PreSurgical) > 0 {
		fmt.Printf("  %-22s %s\n", "pre surgical", strings.Join(ex.PreSurgical, "; "))
	}
	if len(ex.OtherSurgical) > 0 {
		fmt.Printf("  %-22s %s\n", "other surgical", strings.Join(ex.OtherSurgical, "; "))
	}
	if len(ex.Medications) > 0 {
		fmt.Printf("  %-22s %s\n", "medications", strings.Join(ex.Medications, "; "))
	}
	if ex.Smoking != "" {
		fmt.Printf("  %-22s %s\n", "smoking", ex.Smoking)
	}
}
