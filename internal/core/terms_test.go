package core

import (
	"fmt"
	"testing"

	"repro/internal/lexicon"
	"repro/internal/ontology"
	"repro/internal/records"
)

// testPR is a minimal micro-averaged precision/recall counter, local to
// this test to avoid importing the eval package (which imports core).
type testPR struct{ etrue, etotal, tinst int }

func (p *testPR) addSets(extracted, gold []string) {
	goldNorm := map[string]bool{}
	for _, g := range gold {
		goldNorm[lexicon.Normalize(g)] = true
	}
	seen := map[string]bool{}
	for _, e := range extracted {
		n := lexicon.Normalize(e)
		if seen[n] {
			continue
		}
		seen[n] = true
		if goldNorm[n] {
			p.etrue++
		}
	}
	p.etotal += len(seen)
	p.tinst += len(goldNorm)
}

func (p testPR) Precision() float64 {
	if p.etotal == 0 {
		return 1
	}
	return float64(p.etrue) / float64(p.etotal)
}

func (p testPR) Recall() float64 {
	if p.tinst == 0 {
		return 1
	}
	return float64(p.etrue) / float64(p.tinst)
}

func (p testPR) String() string {
	return fmt.Sprintf("P=%.1f%% R=%.1f%%", 100*p.Precision(), 100*p.Recall())
}

func newTermExtractor(t *testing.T, resolve bool) *TermExtractor {
	t.Helper()
	return &TermExtractor{Ont: ontology.MustNew(ontology.Options{}), ResolveSynonyms: resolve}
}

func TestExtractPaperExample(t *testing.T) {
	// §3.2: "Significant for a postoperative CVA after undergoing a
	// cholecystectomy and a midline hernia closure" → three terms.
	x := newTermExtractor(t, true)
	terms := x.Extract("Significant for a postoperative CVA after undergoing a cholecystectomy and a midline hernia closure.", ontology.PredefinedSurgical)
	names := map[string]bool{}
	for _, tm := range terms {
		names[tm.Concept.Preferred] = true
	}
	for _, want := range []string{"postoperative cva", "cholecystectomy", "midline hernia closure"} {
		if !names[want] {
			t.Errorf("missing term %q; got %v", want, names)
		}
	}
}

func TestExtractTermList(t *testing.T) {
	x := newTermExtractor(t, true)
	terms := x.Extract("Significant for diabetes, heart disease, high blood pressure, hypercholesterolemia, bronchitis, arrhythmia, and depression.", ontology.PredefinedMedical)
	if len(terms) != 7 {
		got := make([]string, len(terms))
		for i, tm := range terms {
			got[i] = tm.Surface
		}
		t.Fatalf("extracted %d terms, want 7: %v", len(terms), got)
	}
	for _, tm := range terms {
		if !tm.Predefined {
			t.Errorf("%q (→%s) not predefined", tm.Surface, tm.Concept.Preferred)
		}
	}
}

func TestExtractSynonymResolution(t *testing.T) {
	body := "Gallbladder removal and cervical laminectomy."
	// With synonym resolution: "gallbladder removal" → cholecystectomy →
	// predefined.
	terms := newTermExtractor(t, true).Extract(body, ontology.PredefinedSurgical)
	pre, other := SplitTerms(terms)
	if len(pre) != 2 || len(other) != 0 {
		t.Errorf("with synonyms: pre=%v other=%v", pre, other)
	}
	// Without: the synonym surface is still a UMLS term but lands in
	// "other" — the paper's predefined-surgical failure mode.
	terms = newTermExtractor(t, false).Extract(body, ontology.PredefinedSurgical)
	pre, other = SplitTerms(terms)
	if len(pre) != 1 || len(other) != 1 {
		t.Errorf("without synonyms: pre=%v other=%v", pre, other)
	}
}

func TestExtractUnknownTermsIgnored(t *testing.T) {
	x := newTermExtractor(t, true)
	terms := x.Extract("Significant for chronic fatigue syndrome.", ontology.PredefinedMedical)
	for _, tm := range terms {
		if tm.Surface == "chronic fatigue syndrome" {
			t.Errorf("out-of-vocabulary term extracted: %v", tm)
		}
	}
}

func TestExtractDedup(t *testing.T) {
	x := newTermExtractor(t, true)
	terms := x.Extract("Diabetes.  Diabetes mellitus.", ontology.PredefinedMedical)
	count := 0
	for _, tm := range terms {
		if tm.Concept.Preferred == "diabetes" {
			count++
		}
	}
	// Two different normalized surfaces may both appear, but identical
	// normalizations must not repeat.
	if count > 2 {
		t.Errorf("diabetes extracted %d times", count)
	}
}

func TestE2TermExtractionShape(t *testing.T) {
	// Table 1's qualitative shape on the default corpus, paper regime
	// (synonym resolution off):
	//   predefined medical history:  high P and R (≈97%)
	//   other medical history:       mid P (≈76%), higher R (≈86%)
	//   predefined surgical history: low R (≈35%)
	//   other surgical history:      lower P (≈62%)
	recs := records.Generate(records.DefaultGenOptions())
	x := newTermExtractor(t, false)

	var preMed, otherMed, preSurg, otherSurg testPR
	for _, r := range recs {
		sys := &System{Terms: x, Numeric: NewNumericExtractor(LinkGrammar)}
		ex := sys.Process(r.Text)
		goldPreM, goldOtherM := records.SplitPredefined(r.Gold.PastMedical, ontology.PredefinedMedical)
		goldPreS, goldOtherS := records.SplitPredefined(r.Gold.PastSurgical, ontology.PredefinedSurgical)
		preMed.addSets(ex.PreMedical, goldPreM)
		otherMed.addSets(ex.OtherMedical, goldOtherM)
		preSurg.addSets(ex.PreSurgical, goldPreS)
		otherSurg.addSets(ex.OtherSurgical, goldOtherS)
	}

	t.Logf("pre-med   %v", preMed)
	t.Logf("other-med %v", otherMed)
	t.Logf("pre-surg  %v", preSurg)
	t.Logf("other-surg %v", otherSurg)

	if preMed.Precision() < 0.85 || preMed.Recall() < 0.80 {
		t.Errorf("predefined medical should be high: %v", preMed)
	}
	if preSurg.Recall() > 0.65 {
		t.Errorf("predefined surgical recall should be low without synonyms: %v", preSurg)
	}
	if otherSurg.Precision() > preMed.Precision() {
		t.Errorf("other surgical precision should trail predefined medical: %v vs %v", otherSurg, preMed)
	}
	// The paper's fix: synonyms restore predefined surgical recall.
	xs := newTermExtractor(t, true)
	var preSurgFixed testPR
	for _, r := range recs {
		sys := &System{Terms: xs, Numeric: NewNumericExtractor(LinkGrammar)}
		ex := sys.Process(r.Text)
		goldPreS, _ := records.SplitPredefined(r.Gold.PastSurgical, ontology.PredefinedSurgical)
		preSurgFixed.addSets(ex.PreSurgical, goldPreS)
	}
	t.Logf("pre-surg with synonyms %v", preSurgFixed)
	if preSurgFixed.Recall() <= preSurg.Recall() {
		t.Errorf("synonym resolution must improve predefined surgical recall: %v → %v", preSurg, preSurgFixed)
	}
}
