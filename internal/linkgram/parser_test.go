package linkgram

import (
	"strings"
	"testing"

	"repro/internal/pos"
	"repro/internal/textproc"
)

func parseText(t *testing.T, text string) *Linkage {
	t.Helper()
	sents := textproc.SplitSentences(text)
	if len(sents) != 1 {
		t.Fatalf("want 1 sentence, got %d for %q", len(sents), text)
	}
	lk, err := ParseSentence(sents[0])
	if err != nil {
		t.Fatalf("ParseSentence(%q): %v", text, err)
	}
	return lk
}

// hasLink reports whether the linkage contains a link with the given label
// between the two words (by surface text, case-insensitive).
func hasLink(lk *Linkage, label, left, right string) bool {
	for _, l := range lk.Links {
		if l.Label != label {
			continue
		}
		lw := strings.ToLower(lk.Words[l.Left].Text)
		rw := strings.ToLower(lk.Words[l.Right].Text)
		if lw == strings.ToLower(left) && rw == strings.ToLower(right) {
			return true
		}
	}
	return false
}

func TestParseFigure1Core(t *testing.T) {
	// The core of the paper's Figure 1 sentence.
	lk := parseText(t, "Blood pressure is 144/90.")
	if !hasLink(lk, "AN", "Blood", "pressure") {
		t.Errorf("missing AN(Blood, pressure): %s", lk)
	}
	if !hasLink(lk, "S", "pressure", "is") {
		t.Errorf("missing S(pressure, is): %s", lk)
	}
	if !hasLink(lk, "O", "is", "144/90") {
		t.Errorf("missing O(is, 144/90): %s", lk)
	}
}

func TestParseFigure1FullSentence(t *testing.T) {
	lk := parseText(t, "Blood pressure is 144/90, pulse of 84, temperature of 98.3, and weight of 154 pounds.")
	// Each number must be reachable, and the phrase-internal links present.
	if !hasLink(lk, "M", "pulse", "of") {
		t.Errorf("missing M(pulse, of): %s", lk)
	}
	if !hasLink(lk, "J", "of", "84") {
		t.Errorf("missing J(of, 84): %s", lk)
	}
	if !hasLink(lk, "M", "temperature", "of") {
		t.Errorf("missing M(temperature, of): %s", lk)
	}
	if !hasLink(lk, "J", "of", "98.3") {
		t.Errorf("missing J(of, 98.3): %s", lk)
	}
	if !hasLink(lk, "M", "weight", "of") {
		t.Errorf("missing M(weight, of): %s", lk)
	}
}

func TestParsePlanarityAndConnectivity(t *testing.T) {
	sentences := []string{
		"Blood pressure is 144/90.",
		"She quit smoking five years ago.",
		"She is currently a smoker.",
		"She has never smoked.",
		"Pulse of 96.",
		"Menarche at age 10, gravida 4, para 3.",
		"Blood pressure is 142/78, pulse of 96, and weight of 211.",
		"She denies tobacco use.",
		"Smoking history, 15 years.",
	}
	for _, text := range sentences {
		lk := parseText(t, text)
		checkPlanar(t, text, lk)
		checkConnected(t, text, lk)
		checkDegrees(t, text, lk)
	}
}

// checkPlanar verifies no two links cross.
func checkPlanar(t *testing.T, text string, lk *Linkage) {
	t.Helper()
	for i, a := range lk.Links {
		for _, b := range lk.Links[i+1:] {
			if a.Left < b.Left && b.Left < a.Right && a.Right < b.Right {
				t.Errorf("%q: crossing links %v and %v", text, a, b)
			}
			if b.Left < a.Left && a.Left < b.Right && b.Right < a.Right {
				t.Errorf("%q: crossing links %v and %v", text, a, b)
			}
		}
	}
}

// checkConnected verifies every parse word is reachable from the wall.
func checkConnected(t *testing.T, text string, lk *Linkage) {
	t.Helper()
	dist := lk.Graph(UniformWeights).ShortestFrom(0)
	for i, d := range dist {
		if d > 1e17 {
			t.Errorf("%q: word %q unreachable from wall", text, lk.Words[i].Text)
		}
	}
}

// checkDegrees verifies every non-wall word participates in >= 1 link.
func checkDegrees(t *testing.T, text string, lk *Linkage) {
	t.Helper()
	deg := make([]int, len(lk.Words))
	for _, l := range lk.Links {
		deg[l.Left]++
		deg[l.Right]++
	}
	for i := 1; i < len(lk.Words); i++ {
		if deg[i] == 0 {
			t.Errorf("%q: word %q has no links", text, lk.Words[i].Text)
		}
	}
}

func TestParseFragmentFails(t *testing.T) {
	// "blood pressure: 144/90" — the paper notes the Link Grammar Parser
	// cannot parse such fragments; ours must reject them too so the
	// extractor can fall back to patterns. The colon splits oddly, so
	// construct tokens directly.
	sents := textproc.SplitSentences("None.")
	if len(sents) != 0 {
		// "None." may produce a sentence; it must not produce a linkage.
		if _, err := ParseSentence(sents[0]); err == nil {
			t.Error("expected no linkage for bare 'None.'")
		}
	}
}

func TestParseDistanceAssociation(t *testing.T) {
	// The heart of §3.1: in the multi-feature vitals sentence each number
	// must be graph-closest to its own feature keyword.
	lk := parseText(t, "Blood pressure is 144/90, pulse of 84, temperature of 98.3, and weight of 154 pounds.")
	g := lk.Graph(DefaultWeights)
	pairs := []struct{ number, feature string }{
		{"144/90", "pressure"},
		{"84", "pulse"},
		{"98.3", "temperature"},
		{"154", "weight"},
	}
	features := []string{"pressure", "pulse", "temperature", "weight"}
	for _, pr := range pairs {
		ni := wordIndex(lk, pr.number)
		if ni < 0 {
			t.Fatalf("number %q not in parse", pr.number)
		}
		dist := g.ShortestFrom(ni)
		best, bestD := "", 1e18
		for _, f := range features {
			fi := wordIndex(lk, f)
			if fi < 0 {
				t.Fatalf("feature %q not in parse", f)
			}
			if dist[fi] < bestD {
				best, bestD = f, dist[fi]
			}
		}
		if best != pr.feature {
			t.Errorf("number %s associates with %q (d=%.1f), want %q", pr.number, best, bestD, pr.feature)
		}
	}
}

func wordIndex(lk *Linkage, text string) int {
	for i, w := range lk.Words {
		if strings.EqualFold(w.Text, text) {
			return i
		}
	}
	return -1
}

func TestParseTooLong(t *testing.T) {
	long := strings.Repeat("pressure is 120 and ", 20) + "pulse is 80."
	sents := textproc.SplitSentences(long)
	if _, err := ParseSentence(sents[0]); err == nil {
		t.Error("expected rejection of over-long sentence")
	}
}

func TestDiagramRendering(t *testing.T) {
	lk := parseText(t, "Blood pressure is 144/90.")
	d := lk.Diagram()
	if !strings.Contains(d, "Blood pressure is 144/90") {
		t.Errorf("diagram missing word line:\n%s", d)
	}
	for _, label := range []string{"AN", "S", "O"} {
		if !strings.Contains(d, label) {
			t.Errorf("diagram missing label %s:\n%s", label, d)
		}
	}
}

func TestGraphUnreachable(t *testing.T) {
	g := &Graph{n: 2, adj: make([][]edge, 2)}
	dist := g.ShortestFrom(0)
	if dist[1] != dist[1] || dist[1] < 1e17 { // +Inf check without math import
		t.Errorf("expected +Inf for unreachable, got %v", dist[1])
	}
	if out := g.ShortestFrom(-1); out[0] < 1e17 {
		t.Error("invalid source should yield all +Inf")
	}
}

func TestListNamesOrder(t *testing.T) {
	in := newInterner()
	l := in.fromNearFirst([]connID{cS, cW})
	got := listNames(l)
	if len(got) != 2 || got[0] != "S" || got[1] != "W" {
		t.Errorf("listNames = %v, want [S W]", got)
	}
}

func TestParseWordTokenMapping(t *testing.T) {
	sents := textproc.SplitSentences("Pulse of 96.")
	lk, err := ParseSentence(sents[0])
	if err != nil {
		t.Fatal(err)
	}
	tagged := pos.TagSentence(sents[0])
	for i := 1; i < len(lk.Words); i++ {
		ti := lk.Words[i].TokenIndex
		if ti < 0 || ti >= len(tagged) {
			t.Fatalf("bad token index %d", ti)
		}
		if tagged[ti].Text != lk.Words[i].Text {
			t.Errorf("token %q != parse word %q", tagged[ti].Text, lk.Words[i].Text)
		}
	}
	if lk.WordIndexForToken(-5) != -1 && lk.Words[lk.WordIndexForToken(-5)].TokenIndex != -5 {
		t.Error("WordIndexForToken(-5) should be -1 or wall")
	}
}
