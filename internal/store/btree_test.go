package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBtreeBasic(t *testing.T) {
	bt := newBtree()
	if bt.Len() != 0 {
		t.Fatal("empty tree len != 0")
	}
	if !bt.Put([]byte("b"), 2) || !bt.Put([]byte("a"), 1) || !bt.Put([]byte("c"), 3) {
		t.Fatal("fresh inserts must report true")
	}
	if bt.Put([]byte("b"), 22) {
		t.Fatal("replace must report false")
	}
	if v, ok := bt.Get([]byte("b")); !ok || v.(int) != 22 {
		t.Fatalf("Get(b) = %v, %v", v, ok)
	}
	if _, ok := bt.Get([]byte("zzz")); ok {
		t.Fatal("Get of missing key")
	}
	if bt.Len() != 3 {
		t.Fatalf("Len = %d, want 3", bt.Len())
	}
	if !bt.Delete([]byte("a")) || bt.Delete([]byte("a")) {
		t.Fatal("delete semantics")
	}
	if bt.Len() != 2 {
		t.Fatalf("Len after delete = %d", bt.Len())
	}
}

func TestBtreeManyKeysOrdered(t *testing.T) {
	bt := newBtree()
	const n = 5000
	perm := rand.New(rand.NewSource(42)).Perm(n)
	for _, i := range perm {
		bt.Put([]byte(fmt.Sprintf("key-%06d", i)), i)
	}
	if bt.Len() != n {
		t.Fatalf("Len = %d, want %d", bt.Len(), n)
	}
	// Ascend must yield sorted order and every key.
	var prev []byte
	count := 0
	bt.Ascend(func(k []byte, v interface{}) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("out of order: %q then %q", prev, k)
		}
		prev = append(prev[:0], k...)
		count++
		return true
	})
	if count != n {
		t.Fatalf("Ascend visited %d, want %d", count, n)
	}
	// Every key must be retrievable.
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%06d", i))
		if v, ok := bt.Get(k); !ok || v.(int) != i {
			t.Fatalf("Get(%s) = %v, %v", k, v, ok)
		}
	}
}

func TestBtreeAscendRange(t *testing.T) {
	bt := newBtree()
	for i := 0; i < 100; i++ {
		bt.Put([]byte(fmt.Sprintf("%03d", i)), i)
	}
	var got []int
	bt.AscendRange([]byte("010"), []byte("020"), func(_ []byte, v interface{}) bool {
		got = append(got, v.(int))
		return true
	})
	if len(got) != 10 || got[0] != 10 || got[9] != 19 {
		t.Fatalf("range [010,020) = %v", got)
	}
	// Early stop.
	n := 0
	bt.AscendRange([]byte("000"), nil, func(_ []byte, _ interface{}) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestBtreeRandomDeletes(t *testing.T) {
	bt := newBtree()
	rng := rand.New(rand.NewSource(7))
	live := map[string]int{}
	for i := 0; i < 3000; i++ {
		k := fmt.Sprintf("%05d", rng.Intn(800))
		switch rng.Intn(3) {
		case 0, 1:
			bt.Put([]byte(k), i)
			live[k] = i
		case 2:
			want := false
			if _, ok := live[k]; ok {
				want = true
			}
			if got := bt.Delete([]byte(k)); got != want {
				t.Fatalf("Delete(%s) = %v, want %v", k, got, want)
			}
			delete(live, k)
		}
	}
	if bt.Len() != len(live) {
		t.Fatalf("Len = %d, want %d", bt.Len(), len(live))
	}
	for k, v := range live {
		if got, ok := bt.Get([]byte(k)); !ok || got.(int) != v {
			t.Fatalf("Get(%s) = %v, %v; want %d", k, got, ok, v)
		}
	}
}

// Property: the tree agrees with a reference map under arbitrary inserts.
func TestBtreeQuickAgainstMap(t *testing.T) {
	f := func(keys []string) bool {
		bt := newBtree()
		ref := map[string]int{}
		for i, k := range keys {
			bt.Put([]byte(k), i)
			ref[k] = i
		}
		if bt.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok := bt.Get([]byte(k))
			if !ok || got.(int) != v {
				return false
			}
		}
		// Ascend yields ref's keys in sorted order.
		want := make([]string, 0, len(ref))
		for k := range ref {
			want = append(want, k)
		}
		sort.Strings(want)
		i := 0
		okAll := true
		bt.Ascend(func(k []byte, _ interface{}) bool {
			if i >= len(want) || string(k) != want[i] {
				okAll = false
				return false
			}
			i++
			return true
		})
		return okAll && i == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEncodeKeyOrdering(t *testing.T) {
	// Int key encoding must preserve numeric order, including negatives.
	ints := []int64{-1000, -5, -1, 0, 1, 2, 99, 100000}
	for i := 1; i < len(ints); i++ {
		a, b := encodeKey(Int(ints[i-1])), encodeKey(Int(ints[i]))
		if bytes.Compare(a, b) >= 0 {
			t.Errorf("int key order broken: %d !< %d", ints[i-1], ints[i])
		}
	}
	floats := []float64{-100.5, -0.25, 0, 0.25, 1, 98.3, 144}
	for i := 1; i < len(floats); i++ {
		a, b := encodeKey(Float(floats[i-1])), encodeKey(Float(floats[i]))
		if bytes.Compare(a, b) >= 0 {
			t.Errorf("float key order broken: %g !< %g", floats[i-1], floats[i])
		}
	}
	if bytes.Compare(encodeKey(Str("abc")), encodeKey(Str("abd"))) >= 0 {
		t.Error("string key order broken")
	}
	if bytes.Compare(encodeKey(Bool(false)), encodeKey(Bool(true))) >= 0 {
		t.Error("bool key order broken")
	}
}

// Property: int key encoding is strictly monotone.
func TestEncodeKeyQuick(t *testing.T) {
	f := func(a, b int64) bool {
		ka, kb := encodeKey(Int(a)), encodeKey(Int(b))
		switch {
		case a < b:
			return bytes.Compare(ka, kb) < 0
		case a > b:
			return bytes.Compare(ka, kb) > 0
		default:
			return bytes.Equal(ka, kb)
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
