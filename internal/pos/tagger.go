package pos

import (
	"strings"

	"repro/internal/textproc"
)

// TaggedToken pairs a token with its part-of-speech tag.
type TaggedToken struct {
	textproc.Token
	Tag Tag
}

// Tag tags every token of the sentence. The pipeline is: (1) lexicon
// lookup, (2) morphological suffix guesser for unknown words, (3) a pass
// of contextual repair rules in the style of Brill's transformation-based
// tagger.
func TagSentence(s textproc.Sentence) []TaggedToken {
	return tagTokens(s.Tokens)
}

// TagSection returns the POS tagging of sentence i of an analyzed
// section, computing it at most once per Document: every consumer of the
// shared analysis — numeric extraction, term extraction, feature
// extraction — sees the same cached tagging. Safe for concurrent use.
func TagSection(sec *textproc.DocSection, i int) []TaggedToken {
	sents := sec.Sentences()
	v := sec.Derived(i).Tags(func() any { return TagSentence(sents[i]) })
	tagged, _ := v.([]TaggedToken)
	return tagged
}

// tagTokens is the single tagging core behind TagSentence and TagWords:
// initial tag per token, then the contextual repair pass. It increments
// the process-wide tag pass counter.
func tagTokens(toks []textproc.Token) []TaggedToken {
	tagPasses.Add(1)
	out := make([]TaggedToken, len(toks))
	for i, tok := range toks {
		out[i] = TaggedToken{Token: tok, Tag: initialTag(tok)}
	}
	applyContextRules(out)
	return out
}

// TagWords tags a plain word sequence (used by tests and by the ID3
// feature extractor when it already has words).
func TagWords(words []string) []Tag {
	toks := make([]textproc.Token, len(words))
	for i, w := range words {
		kind := textproc.Word
		if len(w) > 0 && w[0] >= '0' && w[0] <= '9' {
			kind = textproc.Number
		}
		toks[i] = textproc.Token{Text: w, Kind: kind}
	}
	tagged := tagTokens(toks)
	tags := make([]Tag, len(tagged))
	for i, t := range tagged {
		tags[i] = t.Tag
	}
	return tags
}

// initialTag assigns the most likely tag from the lexicon or the suffix
// guesser.
func initialTag(tok textproc.Token) Tag {
	switch tok.Kind {
	case textproc.Number:
		return CD
	case textproc.Punct, textproc.Symbol:
		return SYM
	}
	w := strings.ToLower(tok.Text)
	if properNouns[strings.TrimSuffix(w, ".")] {
		return NNP
	}
	if t, ok := wordTags[w]; ok {
		return t
	}
	// Possessive: "patient's".
	if strings.HasSuffix(w, "'s") {
		return NN
	}
	// All-caps short tokens are clinical abbreviations: "PERRLA", "S1".
	if tok.Text == strings.ToUpper(tok.Text) && len(tok.Text) <= 6 {
		return NNP
	}
	return suffixTag(w)
}

// suffixTag guesses a tag for an unknown word from its suffix. Order
// matters: longer, more specific suffixes first.
func suffixTag(w string) Tag {
	switch {
	case hasAny(w, "ectomy", "ostomy", "otomy", "plasty", "oscopy", "graphy", "ology", "itis", "osis", "oma", "emia", "uria", "pathy", "algia", "megaly", "rrhea", "iasis"):
		return NN // medical procedure/condition suffixes
	case hasAny(w, "ness", "ment", "tion", "sion", "ship", "ance", "ence", "ity", "ism", "ure", "age", "cy"):
		return NN
	case strings.HasSuffix(w, "ly"):
		return RB
	case hasAny(w, "able", "ible", "ous", "ive", "ical", "ary", "ful", "less", "ish", "ant", "ent", "al", "ic"):
		return JJ
	case strings.HasSuffix(w, "ing"):
		return VBG
	case strings.HasSuffix(w, "ed"):
		return VBN
	case strings.HasSuffix(w, "ies"), strings.HasSuffix(w, "es"):
		return NNS
	case strings.HasSuffix(w, "s") && !strings.HasSuffix(w, "ss") && !strings.HasSuffix(w, "us") && !strings.HasSuffix(w, "is"):
		return NNS
	case strings.HasSuffix(w, "er"), strings.HasSuffix(w, "or"):
		return NN
	default:
		return NN
	}
}

func hasAny(w string, suffixes ...string) bool {
	for _, s := range suffixes {
		if strings.HasSuffix(w, s) && len(w) > len(s)+1 {
			return true
		}
	}
	return false
}

// applyContextRules runs Brill-style contextual repairs in place.
func applyContextRules(toks []TaggedToken) {
	// Number of content tokens (non-punctuation), for single-word rules.
	content := 0
	for _, t := range toks {
		if t.Tag != SYM {
			content++
		}
	}
	for i := range toks {
		w := strings.ToLower(toks[i].Text)
		switch {
		// DT/PRP$ + VBN/VBD → JJ when followed by a noun:
		// "a modified radical mastectomy", "her denied history".
		case (toks[i].Tag == VBN || toks[i].Tag == VBD) && i > 0 && i+1 < len(toks) &&
			(toks[i-1].Tag == DT || toks[i-1].Tag == PRS || toks[i-1].Tag == JJ) &&
			nounish(toks[i+1].Tag):
			toks[i].Tag = JJ

		// VBG after DT or JJ and before a noun is an adjective/gerund
		// modifier: "a screening mammogram".
		case toks[i].Tag == VBG && i > 0 && i+1 < len(toks) &&
			(toks[i-1].Tag == DT || toks[i-1].Tag == JJ) && nounish(toks[i+1].Tag):
			toks[i].Tag = JJ

		// Noun directly after "to" is actually a base verb: "to smoke".
		case toks[i].Tag == NN && i > 0 && toks[i-1].Tag == TO && verbCapable(w):
			toks[i].Tag = VB

		// "no" before a noun is a determiner (already DT); "no" or "none"
		// standing alone as an answer is an interjection.
		case (w == "no" || w == "none") && content == 1:
			toks[i].Tag = UH

		// Past tense directly after an auxiliary have/be form is a past
		// participle: "has never smoked", "was referred".
		case toks[i].Tag == VBD && precededByAux(toks, i) && !isAuxWord(w):
			toks[i].Tag = VBN

		// "about" before a number is an adverb ("about a year ago" keeps
		// IN; "about 98.3" is approximator RB).
		case w == "about" && i+1 < len(toks) && toks[i+1].Tag == CD:
			toks[i].Tag = RB

		// Past participle after forms of have: keep VBN. After forms of
		// be with no following noun: passive VBN — already fine. But VBD
		// after a pronoun subject stays VBD.
		case toks[i].Tag == VBN && i > 0 && isPronounOrNoun(toks[i-1].Tag) && !precededByAux(toks, i):
			toks[i].Tag = VBD
		}
	}
}

func nounish(t Tag) bool { return t.IsNoun() }

func isPronounOrNoun(t Tag) bool { return t == PRP || t.IsNoun() }

// verbCapable reports whether a word plausibly has a verb reading (used
// after "to").
var verbBases = map[string]bool{
	"smoke": true, "drink": true, "quit": true, "stop": true,
	"return": true, "follow": true, "continue": true, "schedule": true,
	"discuss": true, "proceed": true, "undergo": true, "obtain": true,
	"rule": true, "evaluate": true, "auscultation": false,
}

func verbCapable(w string) bool { return verbBases[w] }

// isAuxWord reports whether w is itself an auxiliary form of be/have/do.
func isAuxWord(w string) bool {
	switch w {
	case "has", "have", "had", "is", "are", "was", "were", "been", "be", "did", "does", "do":
		return true
	}
	return false
}

// precededByAux reports whether toks[i] is preceded (within 3 tokens) by
// an auxiliary have/be form, making a VBN reading correct.
func precededByAux(toks []TaggedToken, i int) bool {
	for j := i - 1; j >= 0 && j >= i-3; j-- {
		w := strings.ToLower(toks[j].Text)
		switch w {
		case "has", "have", "had", "is", "are", "was", "were", "been", "be":
			return true
		}
	}
	return false
}
