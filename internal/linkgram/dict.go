package linkgram

import (
	"strings"

	"repro/internal/pos"
)

// Connector name inventory. Lists in this file are written NEAREST-FIRST,
// the order of standard link grammar notation; the interner reverses them.
//
//	W   wall → sentence head (finite verb or fragment head)
//	S   subject → finite verb
//	O   verb/gerund → object
//	Pa  copula → predicate adjective
//	PP  have → past participle
//	I   modal/do/to → base verb
//	A   pre-nominal modifier → noun (relabeled AN when the modifier is a noun)
//	D   determiner/possessive/cardinal → noun
//	EN  approximator adverb → determiner target ("about a year")
//	E   pre-verbal adverb → verb
//	EA  adverb → adjective ("very significant")
//	MV  verb → post-verbal modifier (preposition, adverb, "ago")
//	M   noun/adjective → post-nominal preposition ("pulse of", "significant for")
//	J   preposition → its object
//	NM  noun → post-nominal number ("age 10", "gravida 4")
//	T   time noun → "ago"
//	CO  phrase tail → following comma/conjunction
//	CC  comma/conjunction → following fragment head
const (
	cW  = "W"
	cS  = "S"
	cO  = "O"
	cPa = "Pa"
	cPP = "PP"
	cI  = "I"
	cA  = "A"
	cD  = "D"
	cEN = "EN"
	cE  = "E"
	cEA = "EA"
	cMV = "MV"
	cM  = "M"
	cJ  = "J"
	cNM = "NM"
	cT  = "T"
	cCO = "CO"
	cCC = "CC"
	cR  = "R" // noun → relative pronoun ("woman who underwent ...")
)

// idioms are multi-word expressions parsed as a single word. Each maps
// the lower-cased joined form to the disjunct family it behaves as.
var idioms = map[string]string{
	"as well as":  "conj",
	"status post": "prep",
}

// dictBuilder accumulates the disjunct sets for one parse.
type dictBuilder struct {
	in *interner
}

// dis builds one disjunct from nearest-first connector name lists.
func (b *dictBuilder) dis(left, right []string) disjunct {
	return disjunct{
		left:  b.in.fromNearFirst(left),
		right: b.in.fromNearFirst(right),
	}
}

// cat concatenates name lists.
func cat(lists ...[]string) []string {
	var out []string
	for _, l := range lists {
		out = append(out, l...)
	}
	return out
}

// disjunctsFor returns the candidate disjuncts for a word given its tag.
// The generation enumerates role × modifier × extra combinations; the
// power-pruning pass in the parser discards combinations whose connectors
// cannot match anything in the sentence.
func (b *dictBuilder) disjunctsFor(word string, tag pos.Tag) []disjunct {
	w := strings.ToLower(word)
	switch {
	case w == "," || w == ";" || w == "and" || w == "or" || w == "but" || w == "nor":
		return []disjunct{
			b.dis([]string{cCO}, []string{cCC}),
			b.dis([]string{cCC}, []string{cCC}),
		}
	case w == "ago":
		return []disjunct{
			b.dis([]string{cT, cMV}, nil),
			b.dis([]string{cT, cM}, nil),
			b.dis([]string{cT, cCC}, nil),
		}
	case w == "to":
		return []disjunct{b.dis([]string{cI}, []string{cI})}
	case w == "who" || w == "which" || w == "that":
		// Relative pronoun: links left to its head noun, right to the
		// relative clause's verb as its subject.
		return []disjunct{
			b.dis([]string{cR}, []string{cS}),
			b.dis(nil, []string{cS}), // plain subject reading for "that/which"
		}
	}

	switch {
	case tag == pos.DT || tag == pos.PRS:
		return []disjunct{
			b.dis(nil, []string{cD}),
			b.dis([]string{cEN}, []string{cD}),
		}
	case tag == pos.CD:
		return b.numberDisjuncts()
	case tag.IsNoun():
		return b.nounDisjuncts()
	case tag == pos.PRP:
		return []disjunct{
			b.dis(nil, []string{cS}),
			b.dis([]string{cO}, nil),
			b.dis([]string{cJ}, nil),
		}
	case tag == pos.VBZ || tag == pos.VBD || tag == pos.VBP:
		return b.finiteVerbDisjuncts()
	case tag == pos.MD:
		return b.modalDisjuncts()
	case tag == pos.VB:
		return b.baseVerbDisjuncts()
	case tag == pos.VBN:
		return b.participleDisjuncts()
	case tag == pos.VBG:
		return b.gerundDisjuncts()
	case tag == pos.JJ:
		return b.adjectiveDisjuncts()
	case tag == pos.RB:
		return []disjunct{
			b.dis(nil, []string{cE}),  // pre-verbal: "never smoked"
			b.dis([]string{cMV}, nil), // post-verbal: "is currently"
			b.dis(nil, []string{cEA}), // adjective modifier: "very significant"
			b.dis(nil, []string{cEN}), // approximator: "about a year"
			b.dis([]string{cCC}, nil), // fragment after comma: ", occasionally"
			b.dis([]string{cMV}, []string{cCO}),
		}
	case tag == pos.IN:
		return []disjunct{
			b.dis([]string{cM}, []string{cJ}),  // post-nominal: "pulse of 84"
			b.dis([]string{cMV}, []string{cJ}), // post-verbal: "quit in 1990"
			b.dis([]string{cW}, []string{cJ}),  // sentence-initial
			b.dis([]string{cCC}, []string{cJ}), // fragment head after comma
		}
	case tag == pos.EX:
		return []disjunct{b.dis(nil, []string{cS})} // "There is no ..."
	default:
		return nil // UH, SYM: unconnectable; parser drops or fails
	}
}

// nounDisjuncts enumerates noun roles. Left base: up to two A- modifiers
// (nearest), optional D-, optional EN-. Roles add a far-left or right
// connector; right extras add NM+/T+/M+ and a trailing CO+.
func (b *dictBuilder) nounDisjuncts() []disjunct {
	var out []disjunct
	for _, base := range leftBases() {
		// Modifier role: the noun itself modifies a following noun.
		out = append(out, b.dis(base, []string{cA}))
		for _, extras := range rightExtras() {
			// Bare adjunct role: the noun hangs off a later word through
			// a right extra alone ("five years ago": years—T—ago).
			if len(extras) > 0 {
				out = append(out, b.dis(base, extras))
			}
			// Subject role. The CO+ may sit nearer than S+ when an
			// apposition interrupts: "Pulse, noted ..., was 96".
			out = append(out, b.dis(base, cat(extras, []string{cS})))
			out = append(out, b.dis(base, cat(extras, []string{cS, cCO})))
			out = append(out, b.dis(base, cat(extras, []string{cCO, cS})))
			// Object role.
			out = append(out, b.dis(cat(base, []string{cO}), extras))
			out = append(out, b.dis(cat(base, []string{cO}), cat(extras, []string{cCO})))
			// Preposition-object role.
			out = append(out, b.dis(cat(base, []string{cJ}), extras))
			out = append(out, b.dis(cat(base, []string{cJ}), cat(extras, []string{cCO})))
			// Fragment head after comma/conjunction, and sentence head.
			out = append(out, b.dis(cat(base, []string{cCC}), extras))
			out = append(out, b.dis(cat(base, []string{cCC}), cat(extras, []string{cCO})))
			out = append(out, b.dis(cat(base, []string{cW}), extras))
			out = append(out, b.dis(cat(base, []string{cW}), cat(extras, []string{cCO})))
		}
	}
	return out
}

// leftBases enumerates noun left-modifier prefixes, nearest-first.
func leftBases() [][]string {
	mods := [][]string{nil, {cA}, {cA, cA}, {cA, cA, cA}}
	var out [][]string
	for _, m := range mods {
		out = append(out, m)
		out = append(out, cat(m, []string{cD}))
		out = append(out, cat(m, []string{cD, cEN}))
		out = append(out, cat(m, []string{cEN}))
	}
	return out
}

// rightExtras enumerates optional right-side noun attachments,
// nearest-first: a post-nominal number, a time link to "ago", a
// post-nominal preposition.
func rightExtras() [][]string {
	return [][]string{
		nil,
		{cNM},
		{cT},
		{cM},
		{cNM, cM},
		{cT, cM},
		{cM, cM},
		{cR},      // relative clause: "woman who underwent ..."
		{cM, cR},  // "woman in distress who ..."
		{cNM, cR}, // "Ms. 2 who ..."
	}
}

// idiomDisjuncts returns the disjuncts for an idiom family.
func (b *dictBuilder) idiomDisjuncts(family string) []disjunct {
	switch family {
	case "conj":
		return []disjunct{
			b.dis([]string{cCO}, []string{cCC}),
			b.dis([]string{cCC}, []string{cCC}),
		}
	case "prep":
		return []disjunct{
			b.dis([]string{cM}, []string{cJ}),
			b.dis([]string{cMV}, []string{cJ}),
			b.dis([]string{cW}, []string{cJ}),
			b.dis([]string{cCC}, []string{cJ}),
		}
	}
	return nil
}

// numberDisjuncts enumerates cardinal-number roles.
func (b *dictBuilder) numberDisjuncts() []disjunct {
	var out []disjunct
	// Determiner-like: "five years", "15 years", "four to seven features".
	out = append(out, b.dis(nil, []string{cD}))
	out = append(out, b.dis([]string{cEN}, []string{cD}))
	// Value roles: object, prep object, post-nominal.
	for _, role := range []string{cO, cJ, cNM} {
		out = append(out, b.dis([]string{role}, nil))
		out = append(out, b.dis([]string{role}, []string{cCO}))
		out = append(out, b.dis([]string{cEN, role}, nil))
		out = append(out, b.dis([]string{cEN, role}, []string{cCO}))
		out = append(out, b.dis([]string{role}, []string{cNM}))
		out = append(out, b.dis([]string{role}, []string{cNM, cCO}))
	}
	// Fragment head: "..., 15 years" handled by years; bare "15" heads:
	out = append(out, b.dis([]string{cCC}, nil))
	out = append(out, b.dis([]string{cCC}, []string{cCO}))
	out = append(out, b.dis([]string{cW}, nil))
	out = append(out, b.dis([]string{cW}, []string{cCO}))
	return out
}

// verbRights enumerates verb right-side variants: a complement, an
// optional MV+ on either side of it, and an optional trailing CO+.
func verbRights(complements ...string) [][]string {
	var out [][]string
	for _, c := range complements {
		var bases [][]string
		if c == "" {
			bases = [][]string{nil, {cMV}, {cMV, cMV}}
		} else {
			bases = [][]string{
				{c},
				{cMV, c},
				{c, cMV},
				{c, cMV, cMV},
			}
		}
		for _, bb := range bases {
			out = append(out, bb)
			out = append(out, cat(bb, []string{cCO}))
		}
	}
	return out
}

// verbLefts enumerates finite-verb left-side variants: optional pre-verbal
// adverb, optional subject, optional wall.
func verbLefts() [][]string {
	return [][]string{
		{cS},
		{cS, cW},
		{cW},
		{cE, cS},
		{cE, cS, cW},
		{cE, cW},
		{cCC}, // fragment verb after comma: ", reveals ..."
		{cE, cCC},
		{cS, cCC}, // clause after comma with its own subject: ", her pulse was noted"
		{cCC, cS}, // subject separated by an apposition: "Pulse, noted ..., was 96"
	}
}

func (b *dictBuilder) finiteVerbDisjuncts() []disjunct {
	var out []disjunct
	rights := verbRights("", cO, cPa, cPP, cI)
	for _, l := range verbLefts() {
		for _, r := range rights {
			out = append(out, b.dis(l, r))
		}
	}
	return out
}

func (b *dictBuilder) modalDisjuncts() []disjunct {
	var out []disjunct
	for _, l := range verbLefts() {
		for _, r := range verbRights(cI) {
			out = append(out, b.dis(l, r))
		}
	}
	return out
}

func (b *dictBuilder) baseVerbDisjuncts() []disjunct {
	var out []disjunct
	rights := verbRights("", cO, cPa)
	lefts := [][]string{{cI}, {cE, cI}}
	for _, l := range lefts {
		for _, r := range rights {
			out = append(out, b.dis(l, r))
		}
	}
	return out
}

func (b *dictBuilder) participleDisjuncts() []disjunct {
	var out []disjunct
	rights := verbRights("", cO)
	lefts := [][]string{{cPP}, {cE, cPP}, {cCC}, {cW}}
	for _, l := range lefts {
		for _, r := range rights {
			out = append(out, b.dis(l, r))
		}
	}
	return out
}

func (b *dictBuilder) gerundDisjuncts() []disjunct {
	var out []disjunct
	rights := verbRights("", cO)
	lefts := [][]string{{cO}, {cJ}, {cW}, {cCC}, {cS, cW}, {cS}}
	for _, l := range lefts {
		for _, r := range rights {
			out = append(out, b.dis(l, r))
		}
	}
	return out
}

func (b *dictBuilder) adjectiveDisjuncts() []disjunct {
	out := []disjunct{
		// Attributive.
		b.dis(nil, []string{cA}),
		b.dis([]string{cEA}, []string{cA}),
	}
	// Predicative and fragment-head roles, with optional post-modifier
	// preposition and trailing comma link.
	for _, l := range [][]string{{cPa}, {cEA, cPa}, {cCC}, {cW}} {
		for _, r := range [][]string{nil, {cM}, {cCO}, {cM, cCO}, {cM, cM}} {
			out = append(out, b.dis(l, r))
		}
	}
	return out
}
