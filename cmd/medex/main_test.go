package main

import (
	"testing"

	"repro/internal/core"
)

func TestParseStrategy(t *testing.T) {
	cases := map[string]core.Strategy{
		"link-grammar":   core.LinkGrammar,
		"pattern-only":   core.PatternOnly,
		"proximity-only": core.ProximityOnly,
	}
	for name, want := range cases {
		got, err := parseStrategy(name)
		if err != nil || got != want {
			t.Errorf("parseStrategy(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := parseStrategy("bogus"); err == nil {
		t.Error("bogus strategy accepted")
	}
}

func TestPrintExtractionDoesNotPanic(t *testing.T) {
	printExtraction(core.Extraction{
		Patient: 1,
		Numeric: map[string]core.NumericValue{
			"pulse":          {Attr: "pulse", Value: 84},
			"blood pressure": {Attr: "blood pressure", Value: 144, Value2: 90, Ratio: true},
		},
		PreMedical: []string{"diabetes"},
		Smoking:    "never",
	})
}
