package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Compaction folds a shard's write-ahead log and memtable into
// immutable sorted segment files, in two flavors:
//
//   - A minor compaction writes only the captured memtable rows into
//     one new small segment appended to each table's run stack. Old
//     segments are untouched, tombstones stay in the memtable (masking
//     segment keys until a major merge), and the WAL is truncated to
//     schema/index records plus the residue — whatever changed after
//     the capture. Cost is proportional to the write set since the
//     last compaction, not the corpus.
//
//   - A major compaction merges each table's whole live view (all
//     segment runs + memtable, newest wins, tombstones dropping dead
//     keys) into a single new segment, collapsing the run stack and
//     discarding tombstones whose keys die with the old runs.
//
// Both run in three phases designed to stay off the write path:
// capture (a brief per-table read lock pins segments and copies the
// memtable view), build (segment files are written with NO table lock
// held — writers and readers proceed), and commit (all table locks +
// the log lock, held only to diff the memtable against the capture,
// write the truncated WAL, atomically replace the CRC'd MANIFEST —
// the rename is the commit point — and swap in-memory state).
//
// Every crash window recovers consistently: before the manifest commit
// the old manifest and full WAL are untouched (new segment files are
// swept as strays on reopen); between commit and WAL swap the new
// segments replay under the old WAL, whose records re-apply
// idempotently on top of them; after the swap the truncated WAL's
// residue records replay over the segments alone.
type compactMode int

const (
	minorCompact compactMode = iota // fold the memtable into one new run
	majorCompact                    // rewrite every table to a single run
)

// testHookCompactBuild, when non-nil, runs during the lock-free build
// phase of every compaction — tests use it to hold a compaction
// mid-flight while asserting that readers, writers and monitoring stay
// responsive.
var testHookCompactBuild func()

// Compact runs a major compaction of every shard, in parallel. It
// holds only the database read lock, so table reads, writes and
// introspection (Stats, Health) proceed during the rewrite; per shard
// it serializes with the background compactor.
func (db *DB) Compact() error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if len(db.shards) == 1 {
		return db.compactShard(db.shards[0], majorCompact)
	}
	errs := make([]error, len(db.shards))
	var wg sync.WaitGroup
	for i, sh := range db.shards {
		wg.Add(1)
		go func(i int, sh *Shard) {
			defer wg.Done()
			errs[i] = db.compactShard(sh, majorCompact)
		}(i, sh)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Flush runs a minor compaction of every shard, in parallel: each
// shard's memtable is folded into one new segment run per table. It is
// the explicit way to push recent writes into the segment layer —
// tests and benchmarks use it to build multi-run stacks
// deterministically without waiting for the background compactor.
func (db *DB) Flush() error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if len(db.shards) == 1 {
		return db.compactShard(db.shards[0], minorCompact)
	}
	errs := make([]error, len(db.shards))
	var wg sync.WaitGroup
	for i, sh := range db.shards {
		wg.Add(1)
		go func(i int, sh *Shard) {
			defer wg.Done()
			errs[i] = db.compactShard(sh, minorCompact)
		}(i, sh)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// compactShard runs one compaction of one shard, serialized against
// concurrent compactions of the same shard, and records the outcome in
// the shard's compaction counters. Callers hold db.mu (read).
func (db *DB) compactShard(sh *Shard, mode compactMode) error {
	sh.compactMu.Lock()
	defer sh.compactMu.Unlock()
	rows, bytes, err := db.compactShardLocked(sh, mode)
	if err != nil {
		sh.cstats.noteError(err)
		return err
	}
	sh.cstats.noteRun(mode, rows, bytes)
	return nil
}

// tableCompact carries one table's state across the three phases.
type tableCompact struct {
	name    string
	ts      *tableShard
	snap    shardSnap        // pinned segments + captured memtable view
	capMem  map[string]Row   // captured live memtable rows by encoded pk
	idxCols []string         // secondary-index inventory at capture
	seg     *segment         // the new run (nil: minor with nothing to fold)
	newIdx  map[string]*btree // major: rebuilt by-reference indexes

	// Commit plan, computed under the table's write lock in phase C.
	newMem      *btree
	folded      []Row    // minor: rows moved from memtable to the new run
	rebuildCols []string // major: indexes created after the capture
}

// compactShardLocked is the compaction body; compactMu is held. It
// returns the rows and bytes written into new segment files.
func (db *DB) compactShardLocked(sh *Shard, mode compactMode) (rowsOut, bytesOut int64, err error) {
	if failed := sh.failedErr(); failed != nil {
		// A previous compaction lost this shard's log; pretending the
		// rewrite succeeded would hide a dead shard.
		return 0, 0, failed
	}
	if sh.log == nil {
		return 0, 0, nil // in-memory shards have nothing to compact
	}
	segsDir := segsDirFor(sh.path)
	if err := os.MkdirAll(segsDir, 0o755); err != nil {
		return 0, 0, err
	}
	gen := sh.gen + 1

	lockNames := make([]string, 0, len(sh.tables))
	for n := range sh.tables {
		lockNames = append(lockNames, n)
	}
	sortKeys(lockNames)

	// Phase A: capture. A brief read lock per table pins its segments
	// and copies the memtable view; writers resume immediately after.
	tcs := make([]*tableCompact, 0, len(lockNames))
	defer func() {
		for _, c := range tcs {
			c.snap.release()
		}
	}()
	for _, name := range lockNames {
		ts := sh.tables[name]
		ts.mu.RLock()
		snap := ts.captureLocked(nil, nil)
		idxCols := make([]string, 0, len(ts.secondary))
		for col := range ts.secondary {
			idxCols = append(idxCols, col)
		}
		ts.mu.RUnlock()
		sortKeys(idxCols)
		capMem := make(map[string]Row, len(snap.mem))
		for _, mr := range snap.mem {
			if mr.row != nil {
				capMem[string(mr.key)] = mr.row
			}
		}
		tcs = append(tcs, &tableCompact{name: name, ts: ts, snap: snap, capMem: capMem, idxCols: idxCols})
	}

	// Phase B: build the new runs with no table lock held — everything
	// here is additive, so an error aborts with the shard untouched.
	if testHookCompactBuild != nil {
		testHookCompactBuild()
	}
	abort := func() {
		for _, c := range tcs {
			if c.seg != nil {
				path := c.seg.path
				c.seg.unref()
				os.Remove(path)
			}
		}
	}
	for ti, c := range tcs {
		path := filepath.Join(segsDir, segFileName(gen, ti))
		var seg *segment
		var serr error
		switch mode {
		case minorCompact:
			if len(c.capMem) == 0 {
				continue // nothing to fold for this table
			}
			seg, serr = writeTableRun(path, c.ts.schema, func(add func(Row) error) error {
				for _, mr := range c.snap.mem {
					if mr.row == nil {
						continue
					}
					if err := add(mr.row); err != nil {
						return err
					}
				}
				return nil
			})
		case majorCompact:
			// The merged stream also seeds the fresh by-reference
			// secondary indexes: every captured-live key starts as a
			// segment-resident posting.
			c.newIdx = make(map[string]*btree, len(c.idxCols))
			for _, col := range c.idxCols {
				c.newIdx[col] = newBtree()
			}
			seg, serr = writeTableRun(path, c.ts.schema, func(add func(Row) error) error {
				var addErr error
				iterErr := c.snap.iterate(nil, nil, nil, func(row Row) bool {
					if addErr = add(row); addErr != nil {
						return false
					}
					key := encodeKey(row[c.ts.schema.Primary])
					for _, col := range c.idxCols {
						ci := c.ts.schema.colIndex(col)
						indexAdd(c.newIdx[col], encodeKey(row[ci]), key, nil)
					}
					return true
				})
				if addErr != nil {
					return addErr
				}
				return iterErr
			})
		}
		if serr != nil {
			abort()
			return 0, 0, serr
		}
		if seg != nil {
			seg.cache = sh.cache
		}
		c.seg = seg
		rowsOut += int64(seg.nRows)
		if st, err := os.Stat(path); err == nil {
			bytesOut += st.Size()
		}
	}

	// Phase C: commit. All table locks (sorted — the same (name, shard)
	// order every multi-lock path uses) plus the log lock freeze the
	// shard only for the diff-and-swap.
	for _, name := range lockNames {
		sh.tables[name].mu.Lock()
		defer sh.tables[name].mu.Unlock()
	}
	sh.logMu.Lock()
	defer sh.logMu.Unlock()

	// The truncated WAL: schema and index records for every table, then
	// the residue — whatever the memtable holds beyond the capture the
	// new runs were built from.
	tmpPath := compactTempPath(sh.path)
	tmp, err := openWAL(tmpPath)
	if err != nil {
		abort()
		return 0, 0, err
	}
	cleanup := func() {
		tmp.close()
		os.Remove(tmpPath)
		abort()
	}
	for _, c := range tcs {
		if err := tmp.append(encodeCreateTablePayload(c.ts.schema)); err != nil {
			cleanup()
			return 0, 0, err
		}
		idxCols := make([]string, 0, len(c.ts.secondary))
		for col := range c.ts.secondary {
			idxCols = append(idxCols, col)
		}
		sortKeys(idxCols)
		for _, col := range idxCols {
			if err := tmp.append(encodeCreateIndexPayload(c.name, col)); err != nil {
				cleanup()
				return 0, 0, err
			}
		}
		residueRows, residueDels, err := c.planCommit(mode)
		if err != nil {
			cleanup()
			return 0, 0, err
		}
		if len(residueRows) > 0 {
			if err := tmp.append(encodeBatchPayload(c.name, residueRows)); err != nil {
				cleanup()
				return 0, 0, err
			}
		}
		for _, pk := range residueDels {
			payload := []byte{opDelete}
			payload = appendString(payload, c.name)
			payload = encodeRow(payload, Row{pk})
			if err := tmp.append(payload); err != nil {
				cleanup()
				return 0, 0, err
			}
		}
	}
	if err := tmp.sync(); err != nil {
		cleanup()
		return 0, 0, err
	}
	if err := tmp.close(); err != nil {
		os.Remove(tmpPath)
		abort()
		return 0, 0, err
	}

	// Manifest commit: the rename is the point of no return — before it
	// the old state is fully intact, after it the new segments are
	// authoritative and the old WAL merely re-applies rows the segments
	// already hold.
	var entries []manifestEntry
	for _, c := range tcs {
		if mode == minorCompact {
			for _, sg := range c.ts.segs {
				entries = append(entries, manifestEntry{table: c.name, file: filepath.Base(sg.path)})
			}
		}
		if c.seg != nil {
			entries = append(entries, manifestEntry{table: c.name, file: filepath.Base(c.seg.path)})
		}
	}
	sortManifestEntries(entries)
	if err := writeManifest(segsDir, gen, entries); err != nil {
		os.Remove(tmpPath)
		abort()
		return 0, 0, err
	}

	// Swap the WAL. Once the old log is closed, sh.log is nilled and
	// any error below latches sh.failed, so later appends report the
	// lost log instead of writing to a closed file; reopening the
	// database recovers from the committed manifest plus whatever WAL
	// survives.
	swapInMemory := func() {
		for _, c := range tcs {
			ts := c.ts
			switch mode {
			case minorCompact:
				if c.seg != nil {
					ts.segs = append(ts.segs, c.seg)
				}
				ts.primary = c.newMem
				// Folded rows now live in the new run: de-inline their
				// index postings so the index stops holding row memory
				// the segment already persists.
				for col, idx := range ts.secondary {
					ci := ts.schema.colIndex(col)
					for _, row := range c.folded {
						indexAdd(idx, encodeKey(row[ci]), encodeKey(row[ts.schema.Primary]), nil)
					}
				}
			case majorCompact:
				for _, old := range ts.segs {
					old.markObsolete()
					old.unref()
				}
				ts.segs = []*segment{c.seg}
				ts.primary = c.newMem
				ts.secondary = c.newIdx
				// Indexes created between capture and commit were not in
				// the build; rebuild them from the installed state.
				for _, col := range c.rebuildCols {
					if err := ts.createIndexLocked(col); err != nil {
						sh.cstats.noteError(fmt.Errorf("store: compact index rebuild %s.%s: %w", c.name, col, err))
					}
				}
			}
			ts.seq++
		}
		sh.gen = gen
		sh.pending.Store(0)
	}
	fail := func(err error) error {
		sh.failed = err
		swapInMemory() // the manifest committed; reads follow it
		return err
	}
	if err := sh.log.close(); err != nil {
		return 0, 0, fail(fmt.Errorf("store: compact close: %w (shard closed; reopen to recover)", err))
	}
	sh.log = nil
	if err := os.Rename(tmpPath, sh.path); err != nil {
		return 0, 0, fail(fmt.Errorf("store: compact rename: %w (shard closed; reopen to recover)", err))
	}
	l, err := openWAL(sh.path)
	if err != nil {
		return 0, 0, fail(fmt.Errorf("store: compact reopen: %w (shard closed; reopen to recover)", err))
	}
	if _, err := l.replay(func([]byte) error { return nil }); err != nil {
		l.close()
		return 0, 0, fail(fmt.Errorf("store: compact reopen replay: %w (shard closed; reopen to recover)", err))
	}
	sh.log = l
	sh.walLen.Store(l.len)
	swapInMemory()
	return rowsOut, bytesOut, nil
}

// planCommit diffs the table's current memtable against the capture
// its new run was built from and computes the post-swap memtable plus
// the residue the truncated WAL must carry. Callers hold the table's
// write lock.
//
// Per current memtable entry:
//
//   - A row content-equal to its captured version is folded: it lives
//     in the new run, leaves the memtable, and (major) keeps its
//     by-reference posting. Equality is by value — the capture copied
//     slice headers, and a post-capture delete+reinsert of identical
//     content is indistinguishable from no write, which is exactly the
//     equivalence the swap needs.
//   - A changed or new row is residue: it stays in the memtable
//     (shadowing the run) and is re-logged as a batch insert.
//   - A tombstone is kept in a minor compaction (old runs survive, so
//     the mask must too) and re-logged as a delete; in a major
//     compaction it is kept only if the new run actually holds its key
//     (deleted after capture), and dropped otherwise — the old runs it
//     masked are gone.
func (c *tableCompact) planCommit(mode compactMode) (residueRows []Row, residueDels []Value, err error) {
	ts := c.ts
	c.newMem = newBtree()
	var segErr error
	matched := 0 // captured keys still present in the memtable
	ts.primary.Ascend(func(key []byte, val interface{}) bool {
		// The captured view of this key — what the new run holds. The
		// capture map answers for captured memtable rows; in a major
		// merge a key may instead have entered the run from an old
		// segment, so fall through to the run itself.
		capRow, inCap := c.capMem[string(key)]
		if inCap {
			matched++
		}
		if !inCap && mode == majorCompact && c.seg != nil {
			capRow, inCap, segErr = c.seg.get(key, nil)
			if segErr != nil {
				return false
			}
		}
		if row, isRow := val.(Row); isRow {
			if inCap && rowsEqual(capRow, row) {
				c.folded = append(c.folded, row)
				return true
			}
			c.newMem.Put(key, row)
			residueRows = append(residueRows, row)
			if mode == majorCompact {
				for col, idx := range c.newIdx {
					ci := ts.schema.colIndex(col)
					if inCap {
						indexRemove(idx, encodeKey(capRow[ci]), key)
					}
					indexAdd(idx, encodeKey(row[ci]), key, row)
				}
			}
			return true
		}
		tomb := val.(tombstone)
		if mode == minorCompact {
			c.newMem.Put(key, tomb)
			residueDels = append(residueDels, tomb.pk)
			return true
		}
		if inCap {
			c.newMem.Put(key, tomb)
			residueDels = append(residueDels, tomb.pk)
			for col, idx := range c.newIdx {
				ci := ts.schema.colIndex(col)
				indexRemove(idx, encodeKey(capRow[ci]), key)
			}
		}
		return true
	})
	if segErr != nil {
		return nil, nil, segErr
	}
	// Captured rows with no memtable entry at all: inserted since the
	// last compaction, then deleted after the capture — the delete saw
	// no segment holding the key and dropped the entry outright, but
	// the key IS in the new run now. Without a mask it would resurrect
	// at the swap, so plant the tombstone the delete would have left.
	if matched < len(c.capMem) {
		for k, capRow := range c.capMem {
			if _, ok := ts.primary.Get([]byte(k)); ok {
				continue
			}
			key := []byte(k)
			tomb := tombstone{pk: capRow[ts.schema.Primary]}
			c.newMem.Put(key, tomb)
			residueDels = append(residueDels, tomb.pk)
			if mode == majorCompact {
				for col, idx := range c.newIdx {
					ci := ts.schema.colIndex(col)
					indexRemove(idx, encodeKey(capRow[ci]), key)
				}
			}
		}
	}
	if mode == majorCompact {
		for col := range ts.secondary {
			if _, ok := c.newIdx[col]; !ok {
				c.rebuildCols = append(c.rebuildCols, col)
			}
		}
		sortKeys(c.rebuildCols)
	}
	return residueRows, residueDels, nil
}

// writeTableRun streams pk-ascending rows from emit into a new segment
// file at path and opens it. On any error the partial file is removed
// and no descriptor leaks — emit failures close and delete here,
// finish failures clean up inside the writer, open failures delete the
// finished file.
func writeTableRun(path string, schema Schema, emit func(add func(Row) error) error) (*segment, error) {
	w, err := newSegmentWriter(path, schema)
	if err != nil {
		return nil, err
	}
	if err := emit(w.add); err != nil {
		w.f.Close()
		os.Remove(path)
		return nil, err
	}
	if err := w.finish(); err != nil {
		return nil, err
	}
	seg, err := openSegment(path)
	if err != nil {
		os.Remove(path)
		return nil, err
	}
	return seg, nil
}

// compactTempPath is where a compaction stages the truncated WAL
// before renaming it over the live log; openShard sweeps leftovers.
func compactTempPath(walPath string) string { return walPath + ".compact" }

// rowsEqual reports value equality of two rows.
func rowsEqual(a, b Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}
