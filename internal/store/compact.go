package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Compact folds every shard's live state into immutable sorted segment
// files and truncates the shard's write-ahead log down to schema and
// index records. Per shard, per table, the current view (existing
// segments merged with the memtable, tombstones dropping dead keys) is
// streamed in primary-key order into one new segment; a CRC'd MANIFEST
// is then atomically replaced (write temp, fsync, rename, fsync dir) —
// that rename is the commit point — and only then is the WAL swapped
// for one holding just the create-table/create-index records. Shards
// compact in parallel and independently.
//
// Every crash window recovers consistently: before the manifest commit
// the old manifest and full WAL are untouched; between commit and WAL
// swap the new segments replay under the old WAL, whose records
// re-apply idempotently on top of them; after the swap the truncated
// WAL replays over the segments alone. Post-compaction writes land in
// the memtable and the truncated WAL, so recovery time is bounded by
// the write volume since the last compaction, not the corpus.
func (db *DB) Compact() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if len(db.shards) == 1 {
		return db.compactShard(db.shards[0])
	}
	errs := make([]error, len(db.shards))
	var wg sync.WaitGroup
	for i, sh := range db.shards {
		wg.Add(1)
		go func(i int, sh *Shard) {
			defer wg.Done()
			errs[i] = db.compactShard(sh)
		}(i, sh)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// compactShard compacts one shard. Callers hold db.mu.
func (db *DB) compactShard(sh *Shard) error {
	if sh.failed != nil {
		// A previous compaction lost this shard's log; pretending the
		// rewrite succeeded would hide a dead shard.
		return sh.failed
	}
	if sh.log == nil {
		return nil // in-memory shards have nothing to compact
	}
	// Freeze this shard's slice of every table: the merge must see a
	// stable view, and the WAL swap must not race an append. Writers on
	// other shards proceed untouched; readers holding snapshots keep
	// their pinned segments (deleted only on their last unpin).
	lockNames := make([]string, 0, len(sh.tables))
	for n := range sh.tables {
		lockNames = append(lockNames, n)
	}
	sortKeys(lockNames)
	for _, n := range lockNames {
		sh.tables[n].mu.Lock()
		defer sh.tables[n].mu.Unlock()
	}
	sh.logMu.Lock()
	defer sh.logMu.Unlock()

	segsDir := segsDirFor(sh.path)
	if err := os.MkdirAll(segsDir, 0o755); err != nil {
		return err
	}
	gen := sh.gen + 1

	// Phase 1: write one new segment per table (and build its fresh
	// pk-only secondary indexes alongside). Everything in this phase is
	// additive — an error aborts with the shard untouched.
	swaps := make([]tableSwap, 0, len(lockNames))
	files := make(map[string]string, len(lockNames)) // table → file name
	abort := func() {
		for _, sw := range swaps {
			sw.seg.unref()
			os.Remove(sw.seg.path)
		}
	}
	for ti, name := range lockNames {
		ts := sh.tables[name]
		sw, err := writeTableSegment(segsDir, gen, ti, ts)
		if err != nil {
			abort()
			return err
		}
		swaps = append(swaps, sw)
		files[name] = filepath.Base(sw.seg.path)
	}

	// Phase 2: write the truncated WAL to a temporary file — schema and
	// index records only; the rows now live in the segments.
	tmpPath := sh.path + ".compact"
	tmp, err := openWAL(tmpPath)
	if err != nil {
		abort()
		return err
	}
	cleanup := func() {
		tmp.close()
		os.Remove(tmpPath)
		abort()
	}
	for _, name := range lockNames {
		ts := sh.tables[name]
		if err := tmp.append(encodeCreateTablePayload(ts.schema)); err != nil {
			cleanup()
			return err
		}
		idxCols := make([]string, 0, len(ts.secondary))
		for col := range ts.secondary {
			idxCols = append(idxCols, col)
		}
		sortKeys(idxCols)
		for _, col := range idxCols {
			if err := tmp.append(encodeCreateIndexPayload(name, col)); err != nil {
				cleanup()
				return err
			}
		}
	}
	if err := tmp.sync(); err != nil {
		cleanup()
		return err
	}
	if err := tmp.close(); err != nil {
		os.Remove(tmpPath)
		abort()
		return err
	}

	// Phase 3: commit. The manifest rename is the point of no return —
	// before it the old state is fully intact, after it the new
	// segments are authoritative and the old WAL merely re-applies rows
	// the segments already hold.
	if err := writeManifest(segsDir, gen, sortedManifestEntries(files)); err != nil {
		os.Remove(tmpPath)
		abort()
		return err
	}

	// Phase 4: swap the WAL. Once the old log is closed, sh.log is
	// nilled and any error below latches sh.failed, so later appends
	// report the lost log instead of writing to a closed file (or
	// silently skipping durability); reopening the database recovers
	// from the committed manifest plus whatever WAL survives.
	swapInMemory := func() {
		for _, sw := range swaps {
			ts := sw.ts
			for _, old := range ts.segs {
				old.markObsolete()
				old.unref()
			}
			ts.segs = []*segment{sw.seg}
			ts.primary = newBtree()
			ts.secondary = sw.secondary
			ts.count = sw.seg.nRows
			ts.seq++
		}
		sh.gen = gen
	}
	fail := func(err error) error {
		sh.failed = err
		swapInMemory() // the manifest committed; reads follow it
		return err
	}
	if err := sh.log.close(); err != nil {
		return fail(fmt.Errorf("store: compact close: %w (shard closed; reopen to recover)", err))
	}
	sh.log = nil
	if err := os.Rename(tmpPath, sh.path); err != nil {
		return fail(fmt.Errorf("store: compact rename: %w (shard closed; reopen to recover)", err))
	}
	l, err := openWAL(sh.path)
	if err != nil {
		return fail(fmt.Errorf("store: compact reopen: %w (shard closed; reopen to recover)", err))
	}
	if _, err := l.replay(func([]byte) error { return nil }); err != nil {
		l.close()
		return fail(fmt.Errorf("store: compact reopen replay: %w (shard closed; reopen to recover)", err))
	}
	sh.log = l
	swapInMemory()
	return nil
}

// tableSwap is one table's prepared post-compaction state: the opened
// new segment and the rebuilt by-reference secondary indexes, installed
// together after the manifest commit.
type tableSwap struct {
	ts        *tableShard
	seg       *segment
	secondary map[string]*btree
}

// writeTableSegment streams one table shard's live view (segments +
// memtable, newest wins, tombstones dropped) into a new segment file
// and builds the fresh by-reference secondary indexes for the state
// after the swap. Callers hold the table shard's write lock.
func writeTableSegment(segsDir string, gen uint64, ti int, ts *tableShard) (sw tableSwap, err error) {
	path := filepath.Join(segsDir, segFileName(gen, ti))
	w, err := newSegmentWriter(path, ts.schema)
	if err != nil {
		return sw, err
	}
	newIdx := make(map[string]*btree, len(ts.secondary))
	cols := make([]string, 0, len(ts.secondary))
	for col := range ts.secondary {
		newIdx[col] = newBtree()
		cols = append(cols, col)
	}
	ss := ts.captureLocked(nil, nil)
	defer ss.release()
	iterErr := ss.iterate(nil, nil, nil, func(row Row) bool {
		if err = w.add(row); err != nil {
			return false
		}
		key := encodeKey(row[ts.schema.Primary])
		for _, col := range cols {
			ci := ts.schema.colIndex(col)
			indexAdd(newIdx[col], encodeKey(row[ci]), key, nil)
		}
		return true
	})
	if err == nil {
		err = iterErr
	}
	if err != nil {
		w.f.Close()
		os.Remove(path)
		return sw, err
	}
	if err = w.finish(); err != nil {
		return sw, err
	}
	seg, err := openSegment(path)
	if err != nil {
		os.Remove(path)
		return sw, err
	}
	return tableSwap{ts: ts, seg: seg, secondary: newIdx}, nil
}
