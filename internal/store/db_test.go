package store

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func testSchema() Schema {
	return Schema{
		Name: "concepts",
		Columns: []Column{
			{Name: "id", Type: TInt},
			{Name: "norm", Type: TString},
			{Name: "preferred", Type: TString},
			{Name: "score", Type: TFloat},
			{Name: "active", Type: TBool},
		},
		Primary: 0,
	}
}

func TestRowCodecRoundTrip(t *testing.T) {
	row := Row{Int(-42), Str("blood high pressure"), Str("hypertension"), Float(98.3), Bool(true)}
	buf := encodeRow(nil, row)
	got, err := decodeRow(buf, len(row))
	if err != nil {
		t.Fatal(err)
	}
	for i := range row {
		if !row[i].Equal(got[i]) {
			t.Errorf("col %d: %v != %v", i, row[i], got[i])
		}
	}
}

func TestRowCodecQuick(t *testing.T) {
	f := func(i int64, s1, s2 string, fl float64, b bool) bool {
		if math.IsNaN(fl) {
			fl = 0
		}
		row := Row{Int(i), Str(s1), Str(s2), Float(fl), Bool(b)}
		got, err := decodeRow(encodeRow(nil, row), len(row))
		if err != nil {
			return false
		}
		for j := range row {
			if !row[j].Equal(got[j]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRowCodecCorrupt(t *testing.T) {
	row := Row{Int(1), Str("x"), Str("y"), Float(1), Bool(true)}
	buf := encodeRow(nil, row)
	if _, err := decodeRow(buf[:len(buf)-1], len(row)); err == nil {
		t.Error("truncated row decoded without error")
	}
	if _, err := decodeRow(buf, len(row)-1); err == nil {
		t.Error("extra bytes accepted")
	}
	if _, err := decodeRow([]byte{99}, 1); err == nil {
		t.Error("bad type byte accepted")
	}
}

func TestTableCRUD(t *testing.T) {
	db := OpenMemory()
	tbl, err := db.CreateTable(testSchema())
	if err != nil {
		t.Fatal(err)
	}
	rows := []Row{
		{Int(1), Str("blood high pressure"), Str("hypertension"), Float(1), Bool(true)},
		{Int(2), Str("cholecystectomy"), Str("cholecystectomy"), Float(1), Bool(true)},
		{Int(3), Str("cva postoperative"), Str("postoperative CVA"), Float(1), Bool(false)},
	}
	for _, r := range rows {
		if err := tbl.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	if tbl.Len() != 3 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	if err := tbl.Insert(rows[0]); err == nil {
		t.Error("duplicate primary key accepted")
	}
	got, err := tbl.Get(Int(2))
	if err != nil || got[2].S != "cholecystectomy" {
		t.Fatalf("Get(2) = %v, %v", got, err)
	}
	if _, err := tbl.Get(Int(99)); err != ErrNotFound {
		t.Errorf("Get(99) err = %v", err)
	}
	if err := tbl.Delete(Int(3)); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Delete(Int(3)); err != ErrNotFound {
		t.Errorf("double delete err = %v", err)
	}
	if tbl.Len() != 2 {
		t.Fatalf("Len after delete = %d", tbl.Len())
	}
	// Type mismatch.
	bad := Row{Str("not-an-int"), Str("a"), Str("b"), Float(0), Bool(false)}
	if err := tbl.Insert(bad); err == nil {
		t.Error("type mismatch accepted")
	}
}

func TestSecondaryIndex(t *testing.T) {
	db := OpenMemory()
	tbl, _ := db.CreateTable(testSchema())
	for i := 0; i < 50; i++ {
		norm := "even"
		if i%2 == 1 {
			norm = "odd"
		}
		if err := tbl.Insert(Row{Int(int64(i)), Str(norm), Str("p"), Float(0), Bool(true)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.CreateIndex("norm"); err != nil {
		t.Fatal(err)
	}
	odd, err := tbl.Lookup("norm", Str("odd"))
	if err != nil {
		t.Fatal(err)
	}
	if len(odd) != 25 {
		t.Fatalf("odd rows = %d, want 25", len(odd))
	}
	// Deterministic ascending-pk order.
	for i := 1; i < len(odd); i++ {
		if odd[i-1][0].I >= odd[i][0].I {
			t.Fatal("Lookup results not ordered by pk")
		}
	}
	none, err := tbl.Lookup("norm", Str("missing"))
	if err != nil || none != nil {
		t.Errorf("missing lookup = %v, %v", none, err)
	}
	if _, err := tbl.Lookup("preferred", Str("x")); err == nil {
		t.Error("lookup without index must fail")
	}
	if err := tbl.CreateIndex("nope"); err == nil {
		t.Error("index on missing column accepted")
	}
	// Index maintenance on delete.
	if err := tbl.Delete(Int(1)); err != nil {
		t.Fatal(err)
	}
	odd, _ = tbl.Lookup("norm", Str("odd"))
	if len(odd) != 24 {
		t.Fatalf("after delete odd rows = %d, want 24", len(odd))
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "test.db")

	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable(testSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := tbl.Insert(Row{Int(int64(i)), Str("n"), Str("p"), Float(float64(i)), Bool(i%2 == 0)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.Delete(Int(50)); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.RecoveredWithLoss() {
		t.Error("clean close reported loss")
	}
	tbl2, err := db2.Table("concepts")
	if err != nil {
		t.Fatal(err)
	}
	if tbl2.Len() != 99 {
		t.Fatalf("recovered Len = %d, want 99", tbl2.Len())
	}
	if _, err := tbl2.Get(Int(50)); err != ErrNotFound {
		t.Error("deleted row resurrected")
	}
	if r, err := tbl2.Get(Int(42)); err != nil || r[3].F != 42 {
		t.Errorf("Get(42) = %v, %v", r, err)
	}
}

func TestCrashRecoveryTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "crash.db")

	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.CreateTable(testSchema())
	for i := 0; i < 20; i++ {
		tbl.Insert(Row{Int(int64(i)), Str("n"), Str("p"), Float(0), Bool(true)})
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: chop bytes off the tail.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if !db2.RecoveredWithLoss() {
		t.Error("torn tail not reported")
	}
	tbl2, err := db2.Table("concepts")
	if err != nil {
		t.Fatal(err)
	}
	if tbl2.Len() != 19 {
		t.Fatalf("recovered Len = %d, want 19 (last record lost)", tbl2.Len())
	}
	// The DB must accept writes after recovery.
	if err := tbl2.Insert(Row{Int(100), Str("n"), Str("p"), Float(0), Bool(true)}); err != nil {
		t.Fatal(err)
	}
	db2.Sync()
}

func TestCrashRecoveryCorruptedRecord(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "corrupt.db")
	db, _ := Open(path)
	tbl, _ := db.CreateTable(testSchema())
	for i := 0; i < 10; i++ {
		tbl.Insert(Row{Int(int64(i)), Str("n"), Str("p"), Float(0), Bool(true)})
	}
	db.Close()

	raw, _ := os.ReadFile(path)
	raw[len(raw)-3] ^= 0xFF // flip a payload byte in the last record
	os.WriteFile(path, raw, 0o644)

	db2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if !db2.RecoveredWithLoss() {
		t.Error("CRC corruption not detected")
	}
	tbl2, _ := db2.Table("concepts")
	if tbl2.Len() != 9 {
		t.Fatalf("recovered Len = %d, want 9", tbl2.Len())
	}
}

func TestScanAndSelect(t *testing.T) {
	db := OpenMemory()
	tbl, _ := db.CreateTable(testSchema())
	for i := 0; i < 30; i++ {
		tbl.Insert(Row{Int(int64(i)), Str("n"), Str("p"), Float(float64(i)), Bool(i < 10)})
	}
	var seen int
	tbl.Scan(func(r Row) bool { seen++; return true })
	if seen != 30 {
		t.Fatalf("Scan visited %d", seen)
	}
	active := tbl.Select(func(r Row) bool { return r[4].B })
	if len(active) != 10 {
		t.Fatalf("Select = %d rows", len(active))
	}
	var ranged int
	tbl.ScanRange(Int(5), Int(15), func(r Row) bool { ranged++; return true })
	if ranged != 10 {
		t.Fatalf("ScanRange = %d rows, want 10", ranged)
	}
}

func TestDBMisc(t *testing.T) {
	db := OpenMemory()
	if _, err := db.Table("missing"); err == nil {
		t.Error("missing table lookup")
	}
	if _, err := db.CreateTable(Schema{Name: "bad"}); err == nil {
		t.Error("invalid schema accepted")
	}
	db.CreateTable(testSchema())
	names := db.TableNames()
	if len(names) != 1 || names[0] != "concepts" {
		t.Errorf("TableNames = %v", names)
	}
	// Idempotent create.
	if _, err := db.CreateTable(testSchema()); err != nil {
		t.Error(err)
	}
	if err := db.Close(); err != nil {
		t.Error(err)
	}
	if err := db.Sync(); err != nil {
		t.Error(err)
	}
}

func TestColTypeString(t *testing.T) {
	for ct, want := range map[ColType]string{TInt: "INTEGER", TFloat: "REAL", TString: "TEXT", TBool: "BOOLEAN", ColType(0): "UNKNOWN"} {
		if got := ct.String(); got != want {
			t.Errorf("%d.String() = %q", ct, got)
		}
	}
	v := Value{}
	if v.String() != "<nil>" {
		t.Errorf("zero value String = %q", v.String())
	}
	if Int(1).Equal(Float(1)) {
		t.Error("cross-type Equal")
	}
}
