package textproc

import "sync/atomic"

// Analysis pass counters. SplitSections and Tokenize increment them on
// every call, letting tests assert the one-pass property of the Document
// pipeline: processing a pre-analyzed *Document must not re-run either.
var (
	sectionSplitPasses atomic.Uint64
	tokenizePasses     atomic.Uint64
)

// AnalysisCounts returns the cumulative number of SplitSections and
// Tokenize passes performed process-wide. Take a snapshot before and after
// an operation to count the passes it performed.
func AnalysisCounts() (sectionSplits, tokenizes uint64) {
	return sectionSplitPasses.Load(), tokenizePasses.Load()
}
