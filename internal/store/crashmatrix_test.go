package store

import (
	"os"
	"path/filepath"
	"testing"
)

// TestCrashMatrixBatchTruncation simulates a crash at every byte offset
// of the log, with special attention to the offsets inside the final
// opInsertBatch record. For each prefix, reopening must:
//
//   - succeed (a torn tail is truncated, never fatal),
//   - apply the batch all-or-nothing: either every batch row is present
//     or none is, never a partial batch,
//   - leave every secondary index holding exactly the table's rows, and
//   - accept new writes that survive another reopen.
func TestCrashMatrixBatchTruncation(t *testing.T) {
	// Build the reference log: schema, index, a base row, then one batch.
	dir := t.TempDir()
	refPath := filepath.Join(dir, "ref.db")
	db, err := Open(refPath)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable(attrSchema())
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex("attribute"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(Row{Int(1), Int(1), Str("age"), Str("x"), Float(44)}); err != nil {
		t.Fatal(err)
	}
	preBatchLen := db.LogSize()
	batch := []Row{
		{Int(2), Int(1), Str("pulse"), Str("x"), Float(84)},
		{Int(3), Int(2), Str("pulse"), Str("x"), Float(98)},
		{Int(4), Int(2), Str("smoking"), Str("current"), Float(0)},
		{Int(5), Int(3), Str("weight"), Str("x"), Float(61)},
	}
	if err := tbl.InsertBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(raw)) <= preBatchLen {
		t.Fatalf("batch record not in log: %d <= %d", len(raw), preBatchLen)
	}

	// A cut at a record boundary yields a shorter but valid log —
	// indistinguishable from a clean shutdown, so no loss is reported.
	boundary := map[int]bool{0: true}
	for off := 0; off+8 <= len(raw); {
		n := int(uint32(raw[off])<<24 | uint32(raw[off+1])<<16 | uint32(raw[off+2])<<8 | uint32(raw[off+3]))
		off += 8 + n
		boundary[off] = true
	}

	for cut := 0; cut <= len(raw); cut++ {
		path := filepath.Join(dir, "crash.db")
		if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		db, err := Open(path)
		if err != nil {
			t.Fatalf("cut=%d: reopen failed: %v", cut, err)
		}
		if cut < len(raw) && !boundary[cut] && !db.RecoveredWithLoss() {
			t.Errorf("cut=%d: torn log not reported as loss", cut)
		}
		if boundary[cut] && db.RecoveredWithLoss() {
			t.Errorf("cut=%d: clean prefix reported as loss", cut)
		}

		names := db.TableNames()
		if len(names) > 0 {
			tbl, err := db.Table("extracted")
			if err != nil {
				t.Fatalf("cut=%d: %v", cut, err)
			}
			// All-or-nothing: row count is 0 (schema only), 1 (base
			// insert applied) or 5 (batch applied in full). Any other
			// count means a partial batch leaked.
			n := tbl.Len()
			if n != 0 && n != 1 && n != 5 {
				t.Fatalf("cut=%d: %d rows — partial batch applied", cut, n)
			}
			if int64(cut) >= preBatchLen && n >= 1 {
				if _, err := tbl.Get(Int(1)); err != nil {
					t.Errorf("cut=%d: base row lost", cut)
				}
			}
			if n == 5 {
				for _, r := range batch {
					got, err := tbl.Get(r[0])
					if err != nil || !rowsEqual(got, r) {
						t.Fatalf("cut=%d: batch row %v corrupted: %v %v", cut, r[0], got, err)
					}
				}
			}
			checkIndexConsistent(t, tbl)

			// The recovered database must accept and retain new writes.
			if err := tbl.Insert(Row{Int(99), Int(9), Str("age"), Str("x"), Float(50)}); err != nil {
				t.Fatalf("cut=%d: post-recovery insert: %v", cut, err)
			}
			wantLen := n + 1
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			db, err = Open(path)
			if err != nil {
				t.Fatalf("cut=%d: reopen after repair: %v", cut, err)
			}
			if db.RecoveredWithLoss() {
				t.Errorf("cut=%d: repaired log still reports loss", cut)
			}
			tbl, err = db.Table("extracted")
			if err != nil {
				t.Fatalf("cut=%d: %v", cut, err)
			}
			if tbl.Len() != wantLen {
				t.Errorf("cut=%d: post-repair rows %d, want %d", cut, tbl.Len(), wantLen)
			}
			checkIndexConsistent(t, tbl)
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
