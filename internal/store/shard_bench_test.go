package store

import (
	"fmt"
	"path/filepath"
	"sync/atomic"
	"testing"
)

// The sharded benchmarks prove the decomposition claim: with the store
// partitioned, concurrent writers append to independent WALs behind
// independent locks, so ingest throughput scales with shards on a
// multicore runner (flat on one core), and fan-out queries answer from
// every shard concurrently. CI's bench-smoke step tracks both via
// BENCH_<n>.json.

// ingestBatchRows is the per-call batch size of the ingest benchmark,
// matching the pipeline's persistEvery-driven batches.
const ingestBatchRows = 64

// BenchmarkIngestSharded measures WAL-backed batched ingest from
// parallel clients at 1, 2 and 4 shards. Acceptance target: ≥1.5×
// rows/s at 4 shards vs 1 on a multicore runner.
func BenchmarkIngestSharded(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			db, err := OpenSharded(filepath.Join(b.TempDir(), "ingest.db"), shards)
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			tbl, err := db.CreateTable(attrSchema())
			if err != nil {
				b.Fatal(err)
			}
			if err := tbl.CreateIndex("attribute"); err != nil {
				b.Fatal(err)
			}
			var next atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				batch := make([]Row, ingestBatchRows)
				for pb.Next() {
					base := next.Add(ingestBatchRows) - ingestBatchRows
					for i := range batch {
						id := base + int64(i)
						batch[i] = Row{
							Int(id), Int(id % 500),
							Str("pulse"), Str("x"), Float(float64(60 + id%80)),
						}
					}
					if err := tbl.InsertBatch(batch); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(b.N)*ingestBatchRows/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

// BenchmarkQueryFanout measures concurrent indexed range queries at 1,
// 2 and 4 shards: every query fans out, walks each shard's index slice
// under its own read lock, and merges.
func BenchmarkQueryFanout(b *testing.B) {
	const rows = 10000
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			db := OpenMemorySharded(shards)
			tbl, err := db.CreateTable(attrSchema())
			if err != nil {
				b.Fatal(err)
			}
			for _, col := range []string{"attribute", "numeric"} {
				if err := tbl.CreateIndex(col); err != nil {
					b.Fatal(err)
				}
			}
			batch := make([]Row, 0, 512)
			for id := int64(0); id < rows; id++ {
				attr := "pulse"
				if id%3 == 0 {
					attr = "weight"
				}
				batch = append(batch, Row{
					Int(id), Int(id % 500),
					Str(attr), Str("x"), Float(float64(id % 200)),
				})
				if len(batch) == cap(batch) {
					if err := tbl.InsertBatch(batch); err != nil {
						b.Fatal(err)
					}
					batch = batch[:0]
				}
			}
			if err := tbl.InsertBatch(batch); err != nil {
				b.Fatal(err)
			}
			q := Query{Preds: []Pred{
				Eq("attribute", Str("pulse")),
				Ge("numeric", Float(50)),
				Lt("numeric", Float(150)),
			}}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					out, _, err := tbl.Query(q)
					if err != nil {
						b.Fatal(err)
					}
					if len(out) == 0 {
						b.Fatal("empty result")
					}
				}
			})
		})
	}
}
