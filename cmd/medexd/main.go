// Command medexd is the long-running warehouse daemon: it owns a
// store.Engine and serves the extraction pipeline and warehouse queries
// over HTTP/JSON.
//
//	medexd -db warehouse.db [-shards 4] [-addr 127.0.0.1:8606]
//
// Endpoints:
//
//	POST /v1/ingest          NDJSON stream of records; 202 = durable
//	GET  /v1/query           ?attr=pulse&min=100[&rows=true]
//	POST /v1/ask             {"conds":[{"attr":...,"term":...},...]}
//	GET  /v1/patient/{id}    one patient's chart
//	GET  /v1/prevalence      ?attr=smoking
//	GET  /v1/stats           engine health + ingest/table counters
//	GET  /healthz, /readyz   liveness and traffic readiness
//
// Robustness contract: a 202-acknowledged batch has been fsynced and
// survives a crash at any later instant; overload answers 429/503 with
// Retry-After instead of buffering; SIGTERM drains in-flight requests
// and the ingest queue within -drain-timeout, then closes the engine —
// waiting for any in-flight background compaction to reach its safe
// point first. Background compaction (on by default, tuned or disabled
// with the -compact-* flags) folds each shard's memtable into segment
// files off the write path once the -compact-mem-rows / -compact-wal-
// bytes thresholds trip, escalating to a full merge at -compact-fanout
// runs per table.
package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/ontology"
	"repro/internal/records"
	"repro/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("medexd: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run is the daemon lifecycle: validate config, open the engine, serve
// until SIGTERM/SIGINT, then drain and close. It returns only after the
// engine is closed, so a clean return means every acknowledged batch is
// on disk. out receives the "listening on" line (tests parse it to find
// the picked port).
func run(args []string, out io.Writer) error {
	cfg, err := parseFlags(args, os.Stderr)
	if err != nil {
		return err
	}

	db, err := store.OpenShardedWithPolicy(cfg.DBPath, cfg.Shards, cfg.compactionPolicy())
	if err != nil {
		return fmt.Errorf("opening %s: %w", cfg.DBPath, err)
	}
	db.SetBlockCacheCapacity(int64(cfg.BlockCacheMB) << 20)
	if h := db.Health(); !h.Ok() {
		// Degraded is a warning, not a startup failure: a read-only
		// engine still serves queries, and operators need the daemon
		// up to see /v1/stats.
		log.Printf("warning: engine health: %s", h)
	}

	sys, err := core.NewSystem(core.Config{Strategy: cfg.Strategy, ResolveSynonyms: true})
	if err != nil {
		db.Close()
		return err
	}
	if cfg.TrainCorpus != "" {
		backend, err := classify.New(cfg.Backend)
		if err != nil {
			db.Close()
			return err
		}
		recs, err := records.ReadCorpus(cfg.TrainCorpus)
		if err != nil {
			db.Close()
			return fmt.Errorf("reading -train-corpus: %w", err)
		}
		sys.TrainSmokingWith(recs, backend)
		log.Printf("trained smoking classifier on %d records (backend %s, %s)",
			len(recs), backend.Name(), backend.Params())
	}
	// The ontology only powers concept-term synonym resolution; run
	// without it rather than refuse to start.
	ont, err := ontology.New(ontology.Options{})
	if err != nil {
		log.Printf("warning: ontology unavailable, concept terms will not resolve synonyms: %v", err)
		ont = nil
	}
	wh, err := core.OpenWarehouse(db, ont)
	if err != nil {
		db.Close()
		return err
	}

	srv := newServer(cfg, db, sys, wh)
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		srv.ing.Close()
		db.Close()
		return fmt.Errorf("listening on %s: %w", cfg.Addr, err)
	}
	fmt.Fprintf(out, "medexd: listening on %s\n", ln.Addr())

	hs := &http.Server{
		Handler: srv.routes(),
		// ReadTimeout covers the whole request read, so a stalled
		// ingest client is cut off instead of holding a connection
		// (and its extraction context) open indefinitely.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       cfg.IngestTimeout,
		WriteTimeout:      cfg.IngestTimeout + cfg.QueryTimeout,
		IdleTimeout:       60 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
	defer signal.Stop(sigc)

	select {
	case err := <-serveErr:
		srv.ing.Close()
		db.Close()
		return fmt.Errorf("serving: %w", err)
	case sig := <-sigc:
		log.Printf("received %s; draining (deadline %s)", sig, cfg.DrainTimeout)
	}

	// Shutdown sequence: stop admitting work, drain in-flight HTTP
	// requests, drain the ingest queue (final fsync), close the engine.
	// Order matters — the ingester must outlive the handlers that
	// submit to it, and the engine must outlive the ingester.
	srv.beginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), cfg.DrainTimeout)
	defer cancel()
	shutdownErr := hs.Shutdown(ctx)
	if shutdownErr != nil {
		// Deadline exceeded: cut the stragglers off. Their batches are
		// unacknowledged, so no durability promise is broken.
		hs.Close()
	}
	<-serveErr // Serve has returned (http.ErrServerClosed)
	ingErr := srv.ing.Close()
	closeErr := db.Close()

	if shutdownErr != nil {
		return fmt.Errorf("drain deadline %s exceeded: %w", cfg.DrainTimeout, shutdownErr)
	}
	if err := errors.Join(ingErr, closeErr); err != nil {
		return fmt.Errorf("closing: %w", err)
	}
	log.Printf("drained and closed %s", cfg.DBPath)
	return nil
}
