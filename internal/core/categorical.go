package core

import (
	"repro/internal/id3"
	"repro/internal/records"
	"repro/internal/textproc"
)

// CategoricalField specifies one categorical attribute: where its
// evidence lives and how features are extracted.
type CategoricalField struct {
	Attr    string
	Section string
	Options id3.FeatureOptions
	// Gold selects the gold label from a record ("" = not present; such
	// records are excluded, as the paper excludes the five subjects
	// without smoking information).
	Gold func(records.Gold) string
}

// SmokingField is the paper's evaluated categorical attribute with its
// reported option settings: all parts of speech, any constituent,
// head-only off, lemma on.
func SmokingField() CategoricalField {
	return CategoricalField{
		Attr:    "smoking",
		Section: "Social History",
		Options: id3.DefaultOptions(),
		Gold:    func(g records.Gold) string { return g.Smoking },
	}
}

// AlcoholField is the paper's proposed extension: alcohol use with
// numeric Boolean threshold features at the manually specified threshold
// of 2 days per week.
func AlcoholField(numericFeatures bool) CategoricalField {
	opts := id3.DefaultOptions()
	if numericFeatures {
		opts.NumericThresholds = []float64{2}
	}
	return CategoricalField{
		Attr:    "alcohol",
		Section: "Social History",
		Options: opts,
		Gold:    func(g records.Gold) string { return g.Alcohol },
	}
}

// FamilyBCField is one of the paper's unfinished binary categorical
// attributes: family history of breast cancer, positive or negative.
func FamilyBCField() CategoricalField {
	return CategoricalField{
		Attr:    "family breast cancer",
		Section: "Family History",
		Options: id3.DefaultOptions(),
		Gold:    func(g records.Gold) string { return g.FamilyBC },
	}
}

// DrugUseField is a second binary attribute: recreational drug use.
func DrugUseField() CategoricalField {
	return CategoricalField{
		Attr:    "drug use",
		Section: "Social History",
		Options: id3.DefaultOptions(),
		Gold:    func(g records.Gold) string { return g.DrugUse },
	}
}

// ShapeField classifies patient shape from the physical examination.
func ShapeField() CategoricalField {
	return CategoricalField{
		Attr:    "shape",
		Section: "Physical examination",
		Options: id3.DefaultOptions(),
		Gold:    func(g records.Gold) string { return g.Shape },
	}
}

// FieldText returns the text the field's features are extracted from.
func (f CategoricalField) FieldText(recordText string) string {
	secs := textproc.SplitSections(recordText)
	sec, ok := textproc.FindSection(secs, f.Section)
	if !ok {
		return ""
	}
	return sec.Body
}

// Features extracts the field's ID3 feature map from an analyzed record,
// consuming the section's cached tag/parse analysis.
func (f CategoricalField) Features(doc *textproc.Document) map[string]bool {
	if sec, ok := doc.Section(f.Section); ok {
		return id3.FeaturesFromSection(sec, f.Options)
	}
	return map[string]bool{}
}

// Examples converts labeled records into ID3 training examples, skipping
// records whose gold label is absent. Each record is analyzed once.
func (f CategoricalField) Examples(recs []records.Record) []id3.Example {
	var out []id3.Example
	for _, r := range recs {
		label := f.Gold(r.Gold)
		if label == "" {
			continue
		}
		out = append(out, id3.Example{
			Features: f.Features(textproc.Analyze(r.Text)),
			Class:    label,
		})
	}
	return out
}

// CategoricalClassifier is a trained classifier for one field.
type CategoricalClassifier struct {
	Field CategoricalField
	Tree  *id3.Tree
}

// TrainCategorical trains an ID3 classifier for the field on labeled
// records.
func TrainCategorical(f CategoricalField, recs []records.Record) *CategoricalClassifier {
	return &CategoricalClassifier{Field: f, Tree: id3.Train(f.Examples(recs))}
}

// Classify labels one record's text. It analyzes the text and delegates
// to ClassifyDoc.
func (c *CategoricalClassifier) Classify(recordText string) string {
	return c.ClassifyDoc(textproc.Analyze(recordText))
}

// ClassifyDoc labels one analyzed record, reusing its sentence analysis.
func (c *CategoricalClassifier) ClassifyDoc(doc *textproc.Document) string {
	return c.Tree.Classify(c.Field.Features(doc))
}

// CrossValidate runs the paper's protocol on the field: k-fold CV
// repeated `rounds` times with shuffles.
func (f CategoricalField) CrossValidate(recs []records.Record, k, rounds int, seed int64) id3.CVResult {
	return id3.CrossValidate(f.Examples(recs), k, rounds, seed)
}
