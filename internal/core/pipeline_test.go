package core

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/records"
	"repro/internal/store"
)

func TestSystemEndToEnd(t *testing.T) {
	recs := records.Generate(records.DefaultGenOptions())
	sys, err := NewSystem(Config{Strategy: LinkGrammar, ResolveSynonyms: true})
	if err != nil {
		t.Fatal(err)
	}
	sys.TrainSmoking(recs)

	r := recs[0]
	ex := sys.Process(r.Text)
	if ex.Patient != r.ID {
		t.Errorf("patient id = %d, want %d", ex.Patient, r.ID)
	}
	if len(ex.Numeric) < 7 {
		t.Errorf("numeric attributes extracted = %d, want ≥7", len(ex.Numeric))
	}
	if len(ex.PreMedical)+len(ex.OtherMedical) == 0 {
		t.Error("no medical history extracted")
	}
	if r.Gold.Smoking != "" && ex.Smoking == "" {
		t.Error("smoking not classified")
	}
}

func TestPersistExtraction(t *testing.T) {
	recs := records.Generate(records.GenOptions{N: 3, Seed: 7})
	sys, err := NewSystem(Config{Strategy: LinkGrammar, ResolveSynonyms: true})
	if err != nil {
		t.Fatal(err)
	}
	db := store.OpenMemory()
	total := 0
	for _, r := range recs {
		n, err := Persist(db, sys.Process(r.Text))
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	tbl, err := db.Table("extracted")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != total || total == 0 {
		t.Fatalf("persisted %d rows, table has %d", total, tbl.Len())
	}
	// Every row belongs to one of the three patients.
	tbl.Scan(func(row store.Row) bool {
		p := row[1].I
		if p < 1 || p > 3 {
			t.Errorf("row with patient %d", p)
		}
		return true
	})
}

// TestPersistAllAfterShardCrash reproduces the recovery scenario a
// torn shard WAL creates: ids become sparse (a middle slice of the id
// space is lost with one shard's tail), and a subsequent PersistAll
// must allocate past the surviving maximum instead of colliding with
// it.
func TestPersistAllAfterShardCrash(t *testing.T) {
	path := filepath.Join(t.TempDir(), "extracted.db")
	db, err := store.OpenSharded(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	exs := []Extraction{
		{Patient: 1, Numeric: map[string]NumericValue{"pulse": {Attr: "pulse", Value: 80}, "weight": {Attr: "weight", Value: 70}}},
		{Patient: 2, Numeric: map[string]NumericValue{"pulse": {Attr: "pulse", Value: 90}, "weight": {Attr: "weight", Value: 80}}},
		{Patient: 3, Smoking: "never"},
	}
	if _, err := PersistAll(db, exs); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail off one shard's WAL: that shard loses rows whose
	// ids sit anywhere in the global sequence.
	wal := filepath.Join(path, "shard-001", "wal.log")
	st, err := os.Stat(wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(wal, st.Size()-20); err != nil {
		t.Fatal(err)
	}

	db, err = store.OpenSharded(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if !db.RecoveredWithLoss() {
		t.Fatal("fixture did not lose rows; test proves nothing")
	}
	// The recovered store must accept a fresh persistence pass without
	// duplicate-key collisions against the surviving sparse ids.
	if _, err := PersistAll(db, exs); err != nil {
		t.Fatalf("PersistAll after shard crash: %v", err)
	}
}

func TestNewSystemDefaults(t *testing.T) {
	sys, err := NewSystem(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Terms.Ont == nil {
		t.Error("default ontology not loaded")
	}
	ex := sys.Process("Vitals:  Pulse of 80.\n")
	if ex.Numeric[records.AttrPulse].Value != 80 {
		t.Errorf("pulse = %v", ex.Numeric[records.AttrPulse])
	}
}
