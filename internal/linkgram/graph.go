package linkgram

import (
	"container/heap"
	"math"
)

// WeightFunc assigns a distance weight to a link label. The paper: "each
// edge can be weighted against the type of link according to the
// application."
type WeightFunc func(label string) float64

// DefaultWeights weights every structural link 1 and coordination links
// (CO, CC — hops across commas and conjunctions into a different phrase)
// 2, so that a number is always graph-closer to the feature keyword of
// its own phrase than to one in a neighbouring phrase.
func DefaultWeights(label string) float64 {
	switch label {
	case "CO", "CC": // coordination links (connNames[cCO], connNames[cCC])
		return 2
	default:
		return 1
	}
}

// UniformWeights weights every link equally; used by the A1 ablation.
func UniformWeights(string) float64 { return 1 }

// Graph is the weighted undirected view of a linkage.
type Graph struct {
	n   int
	adj [][]edge
}

type edge struct {
	to int
	w  float64
}

// Graph converts the linkage into a weighted graph over its parse words.
// A nil weight function selects DefaultWeights.
func (lk *Linkage) Graph(weight WeightFunc) *Graph {
	if weight == nil {
		weight = DefaultWeights
	}
	g := &Graph{n: len(lk.Words), adj: make([][]edge, len(lk.Words))}
	for _, l := range lk.Links {
		w := weight(l.Label)
		g.adj[l.Left] = append(g.adj[l.Left], edge{to: l.Right, w: w})
		g.adj[l.Right] = append(g.adj[l.Right], edge{to: l.Left, w: w})
	}
	return g
}

// ShortestFrom returns the shortest distance from src to every parse word
// (Dijkstra). Unreachable words get +Inf.
func (g *Graph) ShortestFrom(src int) []float64 {
	dist := make([]float64, g.n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	if src < 0 || src >= g.n {
		return dist
	}
	dist[src] = 0
	pq := &distHeap{{node: src, d: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(distItem)
		if it.d > dist[it.node] {
			continue
		}
		for _, e := range g.adj[it.node] {
			if nd := it.d + e.w; nd < dist[e.to] {
				dist[e.to] = nd
				heap.Push(pq, distItem{node: e.to, d: nd})
			}
		}
	}
	return dist
}

type distItem struct {
	node int
	d    float64
}

type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
