// History: medical-term extraction against the ontology, showing the
// candidate-pattern mechanics of §3.2 and the effect of synonym
// resolution on predefined surgical history (the paper's Table 1 error
// analysis).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/lexicon"
	"repro/internal/ontology"
)

func main() {
	log.SetFlags(0)

	ont, err := ontology.New(ontology.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer ont.Close()

	body := "Significant for a postoperative CVA after undergoing a cholecystectomy and a midline hernia closure."
	fmt.Printf("input: %s\n\n", body)

	// Normalization, the paper's example included.
	for _, term := range []string{"high blood pressures", "midline hernia closure"} {
		fmt.Printf("normalize(%q) = %q\n", term, lexicon.Normalize(term))
	}
	fmt.Println()

	x := &core.TermExtractor{Ont: ont, ResolveSynonyms: true}
	for _, term := range x.Extract(body, ontology.PredefinedSurgical) {
		kind := "other"
		if term.Predefined {
			kind = "predefined"
		}
		fmt.Printf("  %-28s → %-26s [%s, %s]\n", term.Surface, term.Concept.Preferred, term.Concept.Type, kind)
	}

	// Synonym resolution: the difference behind Table 1's predefined
	// surgical recall.
	body2 := "Gallbladder removal and tubes tied."
	fmt.Printf("\ninput: %s\n", body2)
	for _, resolve := range []bool{false, true} {
		x := &core.TermExtractor{Ont: ont, ResolveSynonyms: resolve}
		pre, other := core.SplitTerms(x.Extract(body2, ontology.PredefinedSurgical))
		fmt.Printf("  synonym resolution %-5v → predefined=%v other=%v\n", resolve, pre, other)
	}
}
