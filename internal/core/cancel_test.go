package core

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/records"
)

// waitGoroutines waits for the goroutine count to fall back to (about)
// baseline, dumping stacks on timeout.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= baseline+2 {
			return
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d running, baseline %d\n%s",
				g, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// streamRecords builds n trivial one-section records (Patient only) so
// cancellation tests spend their time in the streaming machinery, not
// the parser.
func streamRecords(n int) []records.Record {
	recs := make([]records.Record, n)
	for i := range recs {
		recs[i] = records.Record{ID: i, Text: fmt.Sprintf("Patient:  %d\n", 1000+i)}
	}
	return recs
}

// TestProcessStreamCancel cancels the context at varying points mid
// stream: the iteration must stop yielding promptly (no record after
// the cancellation is observed late enough to matter) and every pool
// goroutine — feeder, workers, closer — must exit.
func TestProcessStreamCancel(t *testing.T) {
	sys, err := NewSystem(Config{})
	if err != nil {
		t.Fatal(err)
	}
	recs := streamRecords(200)
	baseline := runtime.NumGoroutine()

	for _, workers := range []int{1, 2, 4, 8} {
		for _, cancelAt := range []int{0, 1, 7, 50} {
			ctx, cancel := context.WithCancel(context.Background())
			seen := 0
			for range sys.ProcessStream(ctx, recordValues(recs), workers) {
				seen++
				if seen == cancelAt {
					cancel()
				}
			}
			cancel()
			// Cancellation is asynchronous: in-flight records may still
			// be yielded, but the stream must end far short of the full
			// input once cancelled.
			if cancelAt > 0 && seen >= len(recs) {
				t.Fatalf("workers=%d cancelAt=%d: stream ran to completion (%d records) despite cancel",
					workers, cancelAt, seen)
			}
		}
	}
	waitGoroutines(t, baseline)
}

// TestProcessStreamCancelBeforeStart: a context cancelled before
// iteration begins yields nothing and leaks nothing.
func TestProcessStreamCancelBeforeStart(t *testing.T) {
	sys, err := NewSystem(Config{})
	if err != nil {
		t.Fatal(err)
	}
	recs := streamRecords(50)
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		seen := 0
		for range sys.ProcessStream(ctx, recordValues(recs), workers) {
			seen++
		}
		// The multi-worker pool may complete a handful of in-flight
		// records between construction and the cancel check; it must
		// not process the whole stream.
		if seen >= len(recs) {
			t.Fatalf("workers=%d: pre-cancelled stream yielded %d records", workers, seen)
		}
	}
	waitGoroutines(t, baseline)
}

// TestProcessStreamEarlyBreakReleasesGoroutines: the consumer breaking
// out mid-stream (no context involved) releases the whole pool. This is
// the early-break half of the leak matrix; the cancel half is above.
func TestProcessStreamEarlyBreakReleasesGoroutines(t *testing.T) {
	sys, err := NewSystem(Config{})
	if err != nil {
		t.Fatal(err)
	}
	recs := streamRecords(200)
	baseline := runtime.NumGoroutine()

	for _, workers := range []int{2, 4, 16} {
		for _, breakAt := range []int{1, 3, 100} {
			seen := 0
			for range sys.ProcessStream(context.Background(), recordValues(recs), workers) {
				seen++
				if seen == breakAt {
					break
				}
			}
			if seen != breakAt {
				t.Fatalf("workers=%d: consumed %d, want %d", workers, seen, breakAt)
			}
		}
	}
	waitGoroutines(t, baseline)
}
