package lexicon_test

import (
	"fmt"

	"repro/internal/lexicon"
)

// The paper's §3.2 normalization example: uninflect each word, then sort
// words alphabetically.
func ExampleNormalize() {
	fmt.Println(lexicon.Normalize("high blood pressures"))
	// Output: blood high pressure
}

// The paper's §3.3 lemma example: "denies," "denied" and "deny" are
// treated as the same feature.
func ExampleLemma() {
	for _, w := range []string{"denies", "denied", "deny"} {
		fmt.Println(lexicon.Lemma(w, lexicon.Verb))
	}
	// Output:
	// deny
	// deny
	// deny
}

// Feature-name recall widening: a concept expands to its synonyms and
// inflected variants.
func ExampleExpandWithSynonyms() {
	for _, v := range lexicon.ExpandWithSynonyms("pulse") {
		fmt.Println(v)
	}
	// Output:
	// heart rate
	// heart rated
	// heart rates
	// heart rating
	// pulse
	// pulse rate
	// pulse rated
	// pulse rates
	// pulse rating
	// pulsed
	// pulses
	// pulsing
}
