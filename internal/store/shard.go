package store

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// Shard is one partition of the database: its own write-ahead log file,
// its own segment directory, its own log mutex, and its own slice of
// every table's state (segments + memtable + secondary indexes). Shards
// share nothing, so writers on different shards append, flush and lock
// independently — the decomposition that lets ingest and queries scale
// with cores.
//
// Rows are assigned to shards by a stable hash of the encoded primary
// key (see shardIndex), so a row's home shard never changes across
// reopens and a primary key is globally unique even though each shard
// checks uniqueness only locally.
type Shard struct {
	id      int
	logMu   sync.Mutex // serializes WAL appends on this shard
	log     *wal       // nil = in-memory shard
	failed  error      // a failed compaction swap left the shard logless
	path    string
	dropped int  // WAL records dropped during this shard's recovery
	segLost bool // segment state was unreadable; recovered from WAL alone
	gen     uint64
	tables  map[string]*tableShard

	// pendingSegs holds manifest segments between open and the replay of
	// their tables' create records; leftovers (a WAL whose create record
	// was lost to a crash) are synthesized from the segment's own footer
	// schema after replay.
	pendingSegs map[string]*segment
}

// openShard opens (creating if necessary) one shard's WAL and segment
// directory, then replays the WAL over the segment state. A torn
// manifest or unreadable segment falls back to WAL-only recovery
// (reported via RecoveredWithLoss); on replay failure the log handle
// and every opened segment are closed before returning, so an engine
// that fails mid-open leaks no descriptors.
func openShard(id int, path string) (*Shard, error) {
	segs, gen, segLost, err := loadShardSegments(segsDirFor(path))
	if err != nil {
		return nil, err
	}
	l, err := openWAL(path)
	if err != nil {
		for _, sg := range segs {
			sg.unref()
		}
		return nil, err
	}
	sh := &Shard{
		id: id, log: l, path: path, gen: gen, segLost: segLost,
		tables: make(map[string]*tableShard), pendingSegs: segs,
	}
	dropped, err := l.replay(sh.applyLogRecord)
	if err != nil {
		l.close()
		sh.releaseSegments()
		return nil, err
	}
	sh.dropped = dropped
	// Segments whose create-table record was lost to a torn WAL:
	// the footer schema makes the segment self-describing, so the table
	// (and its rows) survive anyway.
	for _, sg := range sh.pendingSegs {
		sh.newTableShard(sg.schema)
	}
	return sh, nil
}

// memShard returns an in-memory shard with no durable log.
func memShard(id int) *Shard {
	return &Shard{id: id, tables: make(map[string]*tableShard)}
}

// releaseSegments unpins every segment the shard holds — attached to
// tables or still pending — closing their descriptors.
func (sh *Shard) releaseSegments() {
	for _, ts := range sh.tables {
		ts.mu.Lock()
		for _, sg := range ts.segs {
			sg.unref()
		}
		ts.segs = nil
		ts.mu.Unlock()
	}
	for name, sg := range sh.pendingSegs {
		sg.unref()
		delete(sh.pendingSegs, name)
	}
}

// close flushes and closes the shard's log and releases its segments.
// Safe to call twice.
func (sh *Shard) close() error {
	sh.logMu.Lock()
	defer sh.logMu.Unlock()
	sh.releaseSegments()
	if sh.log == nil {
		return nil
	}
	err := sh.log.close()
	sh.log = nil
	return err
}

// sync flushes buffered log records to stable storage.
func (sh *Shard) sync() error {
	sh.logMu.Lock()
	defer sh.logMu.Unlock()
	if sh.log == nil {
		return nil
	}
	return sh.log.sync()
}

// logSize returns the shard WAL's current size in bytes.
func (sh *Shard) logSize() int64 {
	sh.logMu.Lock()
	defer sh.logMu.Unlock()
	if sh.log == nil {
		return 0
	}
	return sh.log.len
}

// appendLog appends and flushes one record under logMu; a nil log
// (in-memory shard) is a no-op. A shard whose durable log was lost to a
// failed compaction swap refuses writes instead of silently dropping
// durability.
func (sh *Shard) appendLog(payload []byte) error {
	sh.logMu.Lock()
	defer sh.logMu.Unlock()
	if sh.failed != nil {
		return sh.failed
	}
	if sh.log == nil {
		return nil
	}
	if err := sh.log.append(payload); err != nil {
		return err
	}
	return sh.log.flush()
}

// newTableShard creates (or returns the existing) state for one table on
// this shard, attaching the table's manifest segment when one is
// pending from open.
func (sh *Shard) newTableShard(s Schema) *tableShard {
	if ts, ok := sh.tables[s.Name]; ok {
		return ts
	}
	ts := &tableShard{
		schema:    s,
		shard:     sh,
		primary:   newBtree(),
		secondary: make(map[string]*btree),
	}
	if sg, ok := sh.pendingSegs[s.Name]; ok {
		delete(sh.pendingSegs, s.Name)
		if schemaEqual(sg.schema, s) {
			ts.segs = []*segment{sg}
			ts.count = sg.nRows
		} else {
			// The WAL and the segment footer disagree on the schema:
			// trust the WAL (it carries the later writes) and recover
			// without the segment, reporting the loss.
			sg.unref()
			sh.segLost = true
		}
	}
	sh.tables[s.Name] = ts
	return ts
}

// logInsert appends an insert record for the table.
func (sh *Shard) logInsert(table string, row Row) error {
	payload := []byte{opInsert}
	payload = appendString(payload, table)
	payload = encodeRow(payload, row)
	return sh.appendLog(payload)
}

// logInsertBatch appends one WAL record covering the whole row batch.
func (sh *Shard) logInsertBatch(table string, rows []Row) error {
	return sh.appendLog(encodeBatchPayload(table, rows))
}

// logDelete appends a delete record for the table.
func (sh *Shard) logDelete(table string, pk Value) error {
	payload := []byte{opDelete}
	payload = appendString(payload, table)
	payload = encodeRow(payload, Row{pk})
	return sh.appendLog(payload)
}

// logCreateIndex appends a create-index record for the table, making the
// secondary index durable across reopen.
func (sh *Shard) logCreateIndex(table, col string) error {
	return sh.appendLog(encodeCreateIndexPayload(table, col))
}

// applyLogRecord replays one WAL payload into this shard's in-memory
// state. Any error it returns is treated by replay as a corrupt tail:
// replay stops and the log is truncated at the last record that applied
// cleanly, so a mangled-but-CRC-valid record can never panic or
// half-apply. Batch records are decoded and validated in full before any
// row is applied, keeping replay all-or-nothing per record.
func (sh *Shard) applyLogRecord(payload []byte) error {
	if len(payload) == 0 {
		return ErrCorrupt
	}
	op := payload[0]
	if op == opCreateTable {
		s, err := decodeSchemaPayload(payload)
		if err != nil {
			return err
		}
		sh.newTableShard(s)
		return nil
	}
	rest := payload[1:]
	name, rest, err := readString(rest)
	if err != nil {
		return err
	}
	switch op {
	case opInsert:
		ts, ok := sh.tables[name]
		if !ok {
			return fmt.Errorf("store: replay insert into unknown table %q", name)
		}
		row, err := decodeRow(rest, len(ts.schema.Columns))
		if err != nil {
			return err
		}
		if err := ts.schema.validate(row); err != nil {
			return err
		}
		ts.replayInsert(row)
	case opInsertBatch:
		ts, ok := sh.tables[name]
		if !ok {
			return fmt.Errorf("store: replay batch insert into unknown table %q", name)
		}
		count, k := binary.Uvarint(rest)
		// Every encoded value is at least two bytes (type byte +
		// payload), so a valid record cannot claim more rows than
		// len(rest)/(2*ncols); a larger count is corruption, and the
		// bound keeps a crafted count from pre-allocating gigabytes.
		maxRows := uint64(len(rest)) / uint64(2*len(ts.schema.Columns))
		if k <= 0 || count > maxRows {
			return ErrCorrupt
		}
		rest = rest[k:]
		rows := make([]Row, 0, count)
		for i := uint64(0); i < count; i++ {
			var row Row
			row, rest, err = decodeValues(rest, len(ts.schema.Columns))
			if err != nil {
				return err
			}
			if err := ts.schema.validate(row); err != nil {
				return err
			}
			rows = append(rows, row)
		}
		if len(rest) != 0 {
			return ErrCorrupt
		}
		for _, row := range rows {
			ts.replayInsert(row)
		}
	case opDelete:
		ts, ok := sh.tables[name]
		if !ok {
			return fmt.Errorf("store: replay delete from unknown table %q", name)
		}
		keyRow, err := decodeRow(rest, 1)
		if err != nil {
			return err
		}
		key := encodeKey(keyRow[0])
		// The key may live in a segment rather than the memtable; a
		// segment read error here is treated as key-absent (the delete
		// then has nothing visible to remove).
		if row, live, _ := ts.liveGet(key); live {
			ts.applyDelete(key, row)
		}
	case opCreateIndex:
		ts, ok := sh.tables[name]
		if !ok {
			return fmt.Errorf("store: replay create-index on unknown table %q", name)
		}
		col, rest, err := readString(rest)
		if err != nil {
			return err
		}
		if len(rest) != 0 || ts.schema.colIndex(col) < 0 {
			return ErrCorrupt
		}
		if err := ts.createIndexLocked(col); err != nil {
			return err
		}
	default:
		return ErrCorrupt
	}
	return nil
}

// shardIndex maps an encoded primary key to its home shard: FNV-1a over
// the key bytes, modulo the shard count. The hash depends only on the
// key encoding, which is stable across reopens, so the routing never
// changes for a given layout. A single-shard engine skips the hash.
// Inlined (rather than hash/fnv) to keep the per-row routing
// allocation-free.
func shardIndex(key []byte, n int) int {
	if n == 1 {
		return 0
	}
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return int(h % uint64(n))
}
