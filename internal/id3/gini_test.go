package id3

import "testing"

func TestTrainGiniConsistent(t *testing.T) {
	exs := smokingExamples()
	tr := TrainGini(exs)
	for _, e := range exs {
		if got := tr.Classify(e.Features); got != e.Class {
			t.Errorf("Gini tree misclassifies training example %v: %q", e.Features, got)
		}
	}
}

func TestGiniImpurity(t *testing.T) {
	pure := []Example{ex("a"), ex("a")}
	if g := gini(pure); g != 0 {
		t.Errorf("gini(pure) = %v", g)
	}
	mixed := []Example{ex("a"), ex("b")}
	if g := gini(mixed); g != 0.5 {
		t.Errorf("gini(50/50) = %v, want 0.5", g)
	}
	if g := gini(nil); g != 0 {
		t.Errorf("gini(empty) = %v", g)
	}
}

func TestGiniGainPerfectSplit(t *testing.T) {
	exs := []Example{ex("y", "f"), ex("y", "f"), ex("n"), ex("n")}
	if g := giniGain(exs, "f"); g < 0.49 {
		t.Errorf("perfect split gini gain = %v, want 0.5", g)
	}
	if g := giniGain(exs, "absent"); g != 0 {
		t.Errorf("useless feature gini gain = %v", g)
	}
}

func TestCrossValidateWithCriteria(t *testing.T) {
	exs := smokingExamples()
	id3Res := CrossValidateWith(exs, 5, 5, 42, Train)
	giniRes := CrossValidateWith(exs, 5, 5, 42, TrainGini)
	if id3Res.Accuracy <= 0 || giniRes.Accuracy <= 0 {
		t.Fatalf("accuracies: id3=%v gini=%v", id3Res.Accuracy, giniRes.Accuracy)
	}
	// Identical protocol: same folds, so both see the same test splits.
	if id3Res.Folds != giniRes.Folds || id3Res.Rounds != giniRes.Rounds {
		t.Error("protocol mismatch")
	}
	// CrossValidateWith(Train) must agree exactly with CrossValidate.
	plain := CrossValidate(exs, 5, 5, 42)
	if plain.Accuracy != id3Res.Accuracy {
		t.Errorf("CrossValidateWith(Train) %.4f != CrossValidate %.4f", id3Res.Accuracy, plain.Accuracy)
	}
}

func TestGiniTreeAlsoCompact(t *testing.T) {
	// Both criteria should produce compact trees on separable data; the
	// paper's expectation is only that ID3 is no worse.
	exs := smokingExamples()
	id3FC := Train(exs).FeatureCount()
	giniFC := TrainGini(exs).FeatureCount()
	if id3FC == 0 || giniFC == 0 {
		t.Fatal("degenerate trees")
	}
	if id3FC > giniFC+3 {
		t.Errorf("ID3 features (%d) should not be much larger than Gini's (%d)", id3FC, giniFC)
	}
}
