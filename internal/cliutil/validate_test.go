package cliutil

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func wantErr(t *testing.T, err error, substr string) {
	t.Helper()
	if err == nil {
		t.Fatalf("want error containing %q, got nil", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("error %q does not contain %q", err, substr)
	}
	if strings.Contains(err.Error(), "\n") {
		t.Fatalf("error is not one line: %q", err)
	}
}

func TestShards(t *testing.T) {
	if err := Shards("-shards", 1); err != nil {
		t.Fatal(err)
	}
	if err := Shards("-shards", MaxShards); err != nil {
		t.Fatal(err)
	}
	wantErr(t, Shards("-shards", 0), "-shards must be at least 1 (got 0)")
	wantErr(t, Shards("-shards", -3), "(got -3)")
	wantErr(t, Shards("-shards", MaxShards+1), "at most 1024")
}

func TestPositive(t *testing.T) {
	if err := Positive("-queue", 5); err != nil {
		t.Fatal(err)
	}
	wantErr(t, Positive("-queue", 0), "-queue must be positive (got 0)")
	wantErr(t, Positive("-queue", -1), "(got -1)")
}

func TestNonNegative(t *testing.T) {
	if err := NonNegative("-workers", 0); err != nil {
		t.Fatal(err)
	}
	wantErr(t, NonNegative("-workers", -2), "-workers must not be negative")
}

func TestPositiveDuration(t *testing.T) {
	if err := PositiveDuration("-drain-timeout", time.Second); err != nil {
		t.Fatal(err)
	}
	wantErr(t, PositiveDuration("-drain-timeout", 0), "positive duration")
	wantErr(t, PositiveDuration("-drain-timeout", -time.Second), "positive duration")
}

func TestDBPath(t *testing.T) {
	dir := t.TempDir()
	if err := DBPath("-db", filepath.Join(dir, "store.db")); err != nil {
		t.Fatal(err)
	}
	wantErr(t, DBPath("-db", ""), "-db is required")
	wantErr(t, DBPath("-db", filepath.Join(dir, "missing", "store.db")), "does not exist")

	// Parent is a file, not a directory.
	f := filepath.Join(dir, "plainfile")
	if err := os.WriteFile(f, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	wantErr(t, DBPath("-db", filepath.Join(f, "store.db")), "is not a directory")

	// Unwritable parent (skip as root, where mode bits don't bind).
	if os.Geteuid() != 0 {
		ro := filepath.Join(dir, "ro")
		if err := os.Mkdir(ro, 0o555); err != nil {
			t.Fatal(err)
		}
		wantErr(t, DBPath("-db", filepath.Join(ro, "store.db")), "not writable")
	}
}

func TestExistingDir(t *testing.T) {
	dir := t.TempDir()
	if err := ExistingDir("-corpus", dir); err != nil {
		t.Fatal(err)
	}
	wantErr(t, ExistingDir("-corpus", ""), "-corpus is required")
	wantErr(t, ExistingDir("-corpus", filepath.Join(dir, "nope")), "does not exist")
	f := filepath.Join(dir, "file")
	if err := os.WriteFile(f, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	wantErr(t, ExistingDir("-corpus", f), "is not a directory")
}

func TestFirstErr(t *testing.T) {
	if err := FirstErr(nil, nil); err != nil {
		t.Fatal(err)
	}
	e := Positive("-x", 0)
	if got := FirstErr(nil, e, Positive("-y", 0)); got != e {
		t.Fatalf("FirstErr returned %v, want the first error", got)
	}
}
