package core

import (
	"sync"
	"testing"

	"repro/internal/classify"
	"repro/internal/linkgram"
	"repro/internal/pos"
	"repro/internal/records"
	"repro/internal/textproc"
)

// TestConcurrentBackendsShareOneDocument exercises the concurrency
// contract of the lazy Instance views under the race detector: two
// differently-backed models classifying the same shared instance from
// many goroutines must (a) race-free agree with their own sequential
// prediction and (b) between them POS-tag and parse the section's
// sentences at most once — the vector model's token view must not pull
// the tagging/parsing the tree model needs, and the tree model's
// feature view must be computed exactly once however many goroutines
// ask for it.
func TestConcurrentBackendsShareOneDocument(t *testing.T) {
	recs := records.Generate(records.DefaultGenOptions())
	field := SmokingField()
	treeC := TrainCategorical(field, recs)
	vecC := TrainCategorical(field.WithBackend(classify.NewVector()), recs)

	var rec records.Record
	for _, r := range recs {
		if r.Gold.Smoking != "" {
			rec = r
			break
		}
	}

	// Sequential baseline on its own document: the expected predictions
	// and the tag/parse cost of one feature extraction.
	base := textproc.Analyze(rec.Text)
	baseInst := field.Instance(base)
	tag0, parse0 := pos.TagPasses(), linkgram.ParsePasses()
	wantTree := treeC.Model.Predict(baseInst)
	wantVec := vecC.Model.Predict(baseInst)
	wantTags := pos.TagPasses() - tag0
	wantParses := linkgram.ParsePasses() - parse0
	if wantTags == 0 {
		t.Fatalf("baseline feature extraction tagged %d sentences, want > 0", wantTags)
	}

	// Concurrent run: one fresh document, one shared instance, both
	// models, many goroutines.
	doc := textproc.Analyze(rec.Text)
	inst := field.Instance(doc)
	tag0, parse0 = pos.TagPasses(), linkgram.ParsePasses()
	const goroutines = 8
	treeGot := make([]string, goroutines)
	vecGot := make([]string, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(2)
		go func(i int) { defer wg.Done(); treeGot[i] = treeC.Model.Predict(inst) }(i)
		go func(i int) { defer wg.Done(); vecGot[i] = vecC.Model.Predict(inst) }(i)
	}
	wg.Wait()

	for i := 0; i < goroutines; i++ {
		if treeGot[i] != wantTree {
			t.Errorf("goroutine %d: tree predicted %q, sequential baseline %q", i, treeGot[i], wantTree)
		}
		if vecGot[i] != wantVec {
			t.Errorf("goroutine %d: vector predicted %q, sequential baseline %q", i, vecGot[i], wantVec)
		}
	}
	if gotTags := pos.TagPasses() - tag0; gotTags != wantTags {
		t.Errorf("%d goroutines tagged %d sentence(s), want the one-pass cost %d", 2*goroutines, gotTags, wantTags)
	}
	if gotParses := linkgram.ParsePasses() - parse0; gotParses != wantParses {
		t.Errorf("%d goroutines parsed %d sentence(s), want the one-pass cost %d", 2*goroutines, gotParses, wantParses)
	}
}

// TestVectorPredictionNeedsNoParsing pins the vector backend's
// throughput story: classifying through the token view alone must not
// POS-tag or link-parse anything.
func TestVectorPredictionNeedsNoParsing(t *testing.T) {
	recs := records.Generate(records.DefaultGenOptions())
	field := SmokingField()
	vecC := TrainCategorical(field.WithBackend(classify.NewVector()), recs)

	tag0, parse0 := pos.TagPasses(), linkgram.ParsePasses()
	for _, r := range recs[:10] {
		vecC.Classify(r.Text)
	}
	if d := pos.TagPasses() - tag0; d != 0 {
		t.Errorf("vector classification tagged %d sentences, want 0", d)
	}
	if d := linkgram.ParsePasses() - parse0; d != 0 {
		t.Errorf("vector classification parsed %d sentences, want 0", d)
	}
}
