// Warehouse: run the pipeline over a corpus, persist every extracted
// attribute to the embedded store (the paper's Access database), then
// query the structured data — the "future data mining" the paper
// motivates — and compact the write-ahead log.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/records"
	"repro/internal/store"
)

func main() {
	log.SetFlags(0)

	dir, err := os.MkdirTemp("", "warehouse")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	dbPath := filepath.Join(dir, "extracted.db")

	recs := records.Generate(records.DefaultGenOptions())
	sys, err := core.NewSystem(core.Config{Strategy: core.LinkGrammar, ResolveSynonyms: true})
	if err != nil {
		log.Fatal(err)
	}
	sys.TrainSmoking(recs)

	db, err := store.Open(dbPath)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Process the corpus in parallel and persist with batched WAL writes:
	// one log record per batch of rows instead of one per attribute.
	rows, err := core.PersistAll(db, sys.ProcessAll(recs, 0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("persisted %d attribute rows for %d patients (%d byte WAL)\n\n", rows, len(recs), db.LogSize())

	tbl, err := db.Table("extracted")
	if err != nil {
		log.Fatal(err)
	}
	if err := tbl.CreateIndex("attribute"); err != nil {
		log.Fatal(err)
	}

	// Query 1 (chart review, the paper's motivating use case): smokers
	// with elevated blood pressure.
	smokers := map[int64]string{}
	hits, err := tbl.Lookup("attribute", store.Str("smoking"))
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range hits {
		if row[3].S == records.SmokingCurrent {
			smokers[row[1].I] = row[3].S
		}
	}
	elevated := 0
	bps, _ := tbl.Lookup("attribute", store.Str(records.AttrBloodPressure))
	for _, row := range bps {
		if _, ok := smokers[row[1].I]; ok && row[4].F >= 140 {
			elevated++
		}
	}
	fmt.Printf("current smokers: %d; of those, systolic ≥ 140: %d\n", len(smokers), elevated)

	// Query 2: prevalence of each predefined past-medical condition.
	prevalence := map[string]int{}
	conds, _ := tbl.Lookup("attribute", store.Str("predefined past medical history"))
	for _, row := range conds {
		prevalence[row[3].S]++
	}
	fmt.Println("\npredefined condition prevalence:")
	for _, cond := range []string{"diabetes", "hypertension", "heart disease", "depression"} {
		fmt.Printf("  %-15s %d/%d patients\n", cond, prevalence[cond], len(recs))
	}

	// Maintenance: compact the WAL.
	before := db.LogSize()
	if err := db.Compact(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncompacted WAL: %d → %d bytes\n", before, db.LogSize())
}
