package textproc

import "testing"

const docTestRecord = `Patient:  7
Chief Complaint:  Abnormal mammogram.
GYN History:  Menarche at age 12, gravida 2, para 2.
Vitals:  Blood pressure is 144/90, pulse of 84.
`

func TestAnalyzeMatchesSeparatePasses(t *testing.T) {
	doc := Analyze(docTestRecord)
	secs := SplitSections(docTestRecord)
	if len(doc.Sections) != len(secs) {
		t.Fatalf("Analyze found %d sections, SplitSections %d", len(doc.Sections), len(secs))
	}
	for i, s := range secs {
		ds := doc.Sections[i]
		if ds.Header != s.Header || ds.Body != s.Body || ds.Start != s.Start {
			t.Errorf("section %d: %+v != %+v", i, ds.Section, s)
		}
		want := SplitSentences(s.Body)
		got := ds.Sentences()
		if len(got) != len(want) {
			t.Errorf("section %q: %d sentences, want %d", s.Header, len(got), len(want))
			continue
		}
		for j := range want {
			if got[j].Text != want[j].Text {
				t.Errorf("section %q sentence %d: %q != %q", s.Header, j, got[j].Text, want[j].Text)
			}
		}
	}
}

func TestAnalyzeIsOnePassPerSection(t *testing.T) {
	s0, t0 := AnalysisCounts()
	doc := Analyze(docTestRecord)
	s1, t1 := AnalysisCounts()
	if got := s1 - s0; got != 1 {
		t.Errorf("Analyze ran %d section splits, want 1", got)
	}
	if got := t1 - t0; got != 0 {
		t.Errorf("Analyze ran %d tokenize passes, want 0 (sections are lazy)", got)
	}
	// First access tokenizes the section body once; repeated access — and
	// repeated access through SentencesOf — reuses the memoized result.
	for _, sec := range doc.Sections {
		sec.Sentences()
	}
	_, t2 := AnalysisCounts()
	if got, want := t2-t1, uint64(len(doc.Sections)); got != want {
		t.Errorf("first access ran %d tokenize passes over %d sections, want %d", got, len(doc.Sections), want)
	}
	for _, sec := range doc.Sections {
		sec.Sentences()
		doc.SentencesOf(sec.Header)
	}
	s3, t3 := AnalysisCounts()
	if t3 != t2 || s3 != s1 {
		t.Errorf("repeated access re-ran analysis: %d section splits, %d tokenizes", s3-s1, t3-t2)
	}
}

func TestDocumentSectionLookup(t *testing.T) {
	doc := Analyze(docTestRecord)
	sec, ok := doc.Section("gyn history")
	if !ok || sec.Header != "GYN History" {
		t.Fatalf("Section(gyn history) = %v, %v", sec, ok)
	}
	if len(sec.Sentences()) == 0 {
		t.Error("GYN History has no analyzed sentences")
	}
	if _, ok := doc.Section("Allergies"); ok {
		t.Error("found a section the record does not contain")
	}
	if got := doc.SentencesOf("Vitals"); len(got) == 0 {
		t.Error("SentencesOf(Vitals) empty")
	}
	if got := doc.SentencesOf("Allergies"); got != nil {
		t.Errorf("SentencesOf(Allergies) = %v, want nil", got)
	}
}

func TestAnalyzeHeaderlessText(t *testing.T) {
	doc := Analyze("Just one fragment without any header.")
	if len(doc.Sections) != 1 || doc.Sections[0].Header != "" {
		t.Fatalf("sections = %+v", doc.Sections)
	}
	if len(doc.Sections[0].Sentences()) != 1 {
		t.Errorf("sentences = %d, want 1", len(doc.Sections[0].Sentences()))
	}
	if empty := Analyze(""); len(empty.Sections) != 0 {
		t.Errorf("empty text → %d sections", len(empty.Sections))
	}
}
