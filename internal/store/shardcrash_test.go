package store

import (
	"os"
	"path/filepath"
	"testing"
)

// buildShardCrashFixture writes a 2-shard store: schema + index on both
// shards, a single insert, then one cross-shard batch. It returns the
// store directory and, per shard, the pks that were routed there.
func buildShardCrashFixture(t *testing.T, dir string) (path string, shardPKs [2][]int64) {
	t.Helper()
	path = filepath.Join(dir, "ref.db")
	db, err := OpenSharded(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable(attrSchema())
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex("attribute"); err != nil {
		t.Fatal(err)
	}
	rows := []Row{
		{Int(1), Int(1), Str("age"), Str("x"), Float(44)},
	}
	if err := tbl.Insert(rows[0]); err != nil {
		t.Fatal(err)
	}
	batch := []Row{
		{Int(2), Int(1), Str("pulse"), Str("x"), Float(84)},
		{Int(3), Int(2), Str("pulse"), Str("x"), Float(98)},
		{Int(4), Int(2), Str("smoking"), Str("current"), Float(0)},
		{Int(5), Int(3), Str("weight"), Str("x"), Float(61)},
		{Int(6), Int(3), Str("pulse"), Str("x"), Float(71)},
		{Int(7), Int(4), Str("weight"), Str("x"), Float(66)},
	}
	if err := tbl.InsertBatch(batch); err != nil {
		t.Fatal(err)
	}
	for _, r := range append(rows, batch...) {
		si := shardIndex(encodeKey(r[0]), 2)
		shardPKs[si] = append(shardPKs[si], r[0].I)
	}
	// The batch must genuinely straddle both shards or the matrix
	// proves nothing.
	if len(shardPKs[0]) == 0 || len(shardPKs[1]) == 0 {
		t.Fatalf("fixture degenerate: shard pks %v", shardPKs)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	return path, shardPKs
}

// TestCrashMatrixShardTruncation extends the crash matrix to the
// sharded layout: shard 1's WAL is truncated at every byte offset while
// shard 0's stays intact. For each cut, reopening must succeed, shard
// 0 must replay fully (its rows are never hostage to shard 1's crash),
// shard 1 must keep its all-or-nothing batch semantics, index == table
// must hold on every shard, and the recovered store must accept and
// retain new writes.
func TestCrashMatrixShardTruncation(t *testing.T) {
	dir := t.TempDir()
	refPath, shardPKs := buildShardCrashFixture(t, dir)
	wal0, err := os.ReadFile(filepath.Join(refPath, shardDirName(0), shardWALName))
	if err != nil {
		t.Fatal(err)
	}
	wal1, err := os.ReadFile(filepath.Join(refPath, shardDirName(1), shardWALName))
	if err != nil {
		t.Fatal(err)
	}

	// Row counts shard 1 can legally recover to: nothing (schema only),
	// the single insert if routed here, or additionally the full batch.
	single1 := 0
	if shardIndex(encodeKey(Int(1)), 2) == 1 {
		single1 = 1
	}
	batch1 := len(shardPKs[1]) - single1

	crash := filepath.Join(dir, "crash.db")
	for cut := 0; cut <= len(wal1); cut++ {
		if err := os.RemoveAll(crash); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			if err := os.MkdirAll(filepath.Join(crash, shardDirName(i)), 0o755); err != nil {
				t.Fatal(err)
			}
		}
		if err := os.WriteFile(filepath.Join(crash, shardDirName(0), shardWALName), wal0, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(crash, shardDirName(1), shardWALName), wal1[:cut], 0o644); err != nil {
			t.Fatal(err)
		}

		db, err := OpenSharded(crash, 0)
		if err != nil {
			t.Fatalf("cut=%d: reopen failed: %v", cut, err)
		}
		tbl, err := db.Table("extracted")
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		// Shard 0 is untouched: every row routed to it must be present
		// whatever happened to shard 1.
		for _, pk := range shardPKs[0] {
			if _, err := tbl.Get(Int(pk)); err != nil {
				t.Errorf("cut=%d: shard-0 row %d lost to shard-1 crash", cut, pk)
			}
		}
		// Shard 1 recovers all-or-nothing per record.
		n1 := tbl.Len() - len(shardPKs[0])
		if n1 != 0 && n1 != single1 && n1 != single1+batch1 {
			t.Fatalf("cut=%d: shard-1 recovered %d rows — partial batch applied (want 0, %d or %d)",
				cut, n1, single1, single1+batch1)
		}
		checkIndexConsistent(t, tbl)

		// The recovered store accepts and retains new writes on both
		// shards.
		post := []Row{
			{Int(98), Int(9), Str("age"), Str("x"), Float(50)},
			{Int(99), Int(9), Str("age"), Str("x"), Float(51)},
		}
		preLen := tbl.Len()
		if err := tbl.InsertBatch(post); err != nil {
			t.Fatalf("cut=%d: post-recovery batch: %v", cut, err)
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
		db, err = OpenSharded(crash, 0)
		if err != nil {
			t.Fatalf("cut=%d: reopen after repair: %v", cut, err)
		}
		if db.RecoveredWithLoss() {
			t.Errorf("cut=%d: repaired logs still report loss", cut)
		}
		tbl, err = db.Table("extracted")
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if tbl.Len() != preLen+len(post) {
			t.Errorf("cut=%d: post-repair rows %d, want %d", cut, tbl.Len(), preLen+len(post))
		}
		checkIndexConsistent(t, tbl)
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardTornCreateTableRepaired pins the open-time repair: a shard
// whose WAL lost the create-table/create-index tail to a crash is
// re-seeded from the surviving shards, so the inventory invariant
// ("every shard self-describes") holds after open and the repaired
// records are durable.
func TestShardTornCreateTableRepaired(t *testing.T) {
	dir := t.TempDir()
	refPath, _ := buildShardCrashFixture(t, dir)
	// Truncate shard 1 to nothing: it loses even its create-table
	// record.
	if err := os.WriteFile(filepath.Join(refPath, shardDirName(1), shardWALName), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := OpenSharded(refPath, 0)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.Table("extracted")
	if err != nil {
		t.Fatalf("table not repaired onto truncated shard: %v", err)
	}
	st := tbl.Stats()
	if st.Indexes != 1 {
		t.Errorf("index inventory not repaired: %+v", st)
	}
	// A write routed to the repaired shard must work and survive.
	if err := tbl.Insert(Row{Int(42), Int(9), Str("age"), Str("x"), Float(33)}); err != nil {
		t.Fatal(err)
	}
	want := tbl.Len()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db, err = OpenSharded(refPath, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, err = db.Table("extracted")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != want {
		t.Errorf("rows after repair+reopen = %d, want %d", tbl.Len(), want)
	}
	checkIndexConsistent(t, tbl)
}
