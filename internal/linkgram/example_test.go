package linkgram_test

import (
	"fmt"

	"repro/internal/linkgram"
	"repro/internal/textproc"
)

// Parse the core of the paper's Figure 1 sentence and list its links.
func ExampleParseSentence() {
	sent := textproc.SplitSentences("Blood pressure is 144/90.")[0]
	lk, err := linkgram.ParseSentence(sent)
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, l := range lk.Links {
		fmt.Printf("%s(%s, %s)\n", l.Label, lk.Words[l.Left].Text, lk.Words[l.Right].Text)
	}
	// Output:
	// W(LEFT-WALL, is)
	// S(pressure, is)
	// AN(Blood, pressure)
	// O(is, 144/90)
}

// The §3.1 association: the number closest in linkage distance to the
// feature keyword is its value.
func ExampleLinkage_Graph() {
	sent := textproc.SplitSentences("Blood pressure is 144/90, pulse of 84.")[0]
	lk, err := linkgram.ParseSentence(sent)
	if err != nil {
		fmt.Println(err)
		return
	}
	var pulse, v84, v144 int
	for i, w := range lk.Words {
		switch w.Text {
		case "pulse":
			pulse = i
		case "84":
			v84 = i
		case "144/90":
			v144 = i
		}
	}
	dist := lk.Graph(linkgram.DefaultWeights).ShortestFrom(pulse)
	fmt.Println(dist[v84] < dist[v144])
	// Output: true
}
