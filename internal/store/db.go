package store

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// DB is an embedded database: a set of tables durably backed by one
// write-ahead log file. Open replays the log; a corrupted tail (crash) is
// truncated.
//
// Locking: db.mu guards the tables map and the log pointer swap
// (Compact); logMu serializes every append/flush on the shared log;
// each Table carries its own RWMutex for row and index state. Lock
// order is db.mu → Table.mu → logMu, and no path acquires them in the
// opposite direction, so concurrent readers overlap a live ingest
// without deadlock.
type DB struct {
	mu      sync.RWMutex
	logMu   sync.Mutex // serializes WAL appends across tables
	log     *wal
	tables  map[string]*Table
	path    string
	dropped int // WAL records dropped during recovery
}

// Open opens (creating if necessary) the database at path.
func Open(path string) (*DB, error) {
	l, err := openWAL(path)
	if err != nil {
		return nil, err
	}
	db := &DB{log: l, tables: make(map[string]*Table), path: path}
	dropped, err := l.replay(db.applyLogRecord)
	if err != nil {
		l.close()
		return nil, err
	}
	db.dropped = dropped
	return db, nil
}

// OpenMemory returns a database with no durable log: all operations stay
// in memory. Useful for tests and benchmarks.
func OpenMemory() *DB {
	return &DB{tables: make(map[string]*Table)}
}

// RecoveredWithLoss reports whether Open had to truncate a corrupt WAL
// tail.
func (db *DB) RecoveredWithLoss() bool { return db.dropped > 0 }

// Close flushes and closes the log.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.logMu.Lock()
	defer db.logMu.Unlock()
	if db.log == nil {
		return nil
	}
	err := db.log.close()
	db.log = nil
	return err
}

// Sync flushes buffered log records to stable storage.
func (db *DB) Sync() error {
	db.logMu.Lock()
	defer db.logMu.Unlock()
	if db.log == nil {
		return nil
	}
	return db.log.sync()
}

// CreateTable creates a table with the given schema. Creating an existing
// table with an identical schema is a no-op.
func (db *DB) CreateTable(s Schema) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if t, ok := db.tables[s.Name]; ok {
		return t, nil
	}
	if len(s.Columns) == 0 || s.Primary < 0 || s.Primary >= len(s.Columns) {
		return nil, fmt.Errorf("store: invalid schema for table %q", s.Name)
	}
	if err := db.appendLog(encodeCreateTablePayload(s)); err != nil {
		return nil, err
	}
	t := db.newTable(s)
	return t, nil
}

// encodeCreateTablePayload frames an opCreateTable payload; CreateTable
// and Compact both go through it.
func encodeCreateTablePayload(s Schema) []byte {
	payload := []byte{opCreateTable}
	payload = appendString(payload, s.Name)
	payload = append(payload, byte(len(s.Columns)), byte(s.Primary))
	for _, c := range s.Columns {
		payload = appendString(payload, c.Name)
		payload = append(payload, byte(c.Type))
	}
	return payload
}

// appendLog appends and flushes one record under logMu; a nil log
// (in-memory DB) is a no-op.
func (db *DB) appendLog(payload []byte) error {
	db.logMu.Lock()
	defer db.logMu.Unlock()
	if db.log == nil {
		return nil
	}
	if err := db.log.append(payload); err != nil {
		return err
	}
	return db.log.flush()
}

func (db *DB) newTable(s Schema) *Table {
	t := &Table{
		schema:    s,
		db:        db,
		primary:   newBtree(),
		secondary: make(map[string]*btree),
	}
	db.tables[s.Name] = t
	return t
}

// Table returns the named table, or an error if it does not exist.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("store: no table %q", name)
	}
	return t, nil
}

// TableNames lists tables in creation-independent sorted order.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sortKeys(names)
	return names
}

// logInsert appends an insert record for the table.
func (db *DB) logInsert(table string, row Row) error {
	payload := []byte{opInsert}
	payload = appendString(payload, table)
	payload = encodeRow(payload, row)
	return db.appendLog(payload)
}

// logInsertBatch appends one WAL record covering the whole row batch.
func (db *DB) logInsertBatch(table string, rows []Row) error {
	return db.appendLog(encodeBatchPayload(table, rows))
}

// logDelete appends a delete record for the table.
func (db *DB) logDelete(table string, pk Value) error {
	payload := []byte{opDelete}
	payload = appendString(payload, table)
	payload = encodeRow(payload, Row{pk})
	return db.appendLog(payload)
}

// logCreateIndex appends a create-index record for the table, making the
// secondary index durable across reopen.
func (db *DB) logCreateIndex(table, col string) error {
	return db.appendLog(encodeCreateIndexPayload(table, col))
}

// encodeCreateIndexPayload frames an opCreateIndex payload; CreateIndex
// and Compact both go through it.
func encodeCreateIndexPayload(table, col string) []byte {
	payload := []byte{opCreateIndex}
	payload = appendString(payload, table)
	return appendString(payload, col)
}

// applyLogRecord replays one WAL payload into the in-memory state. Any
// error it returns is treated by Open as a corrupt tail: replay stops and
// the log is truncated at the last record that applied cleanly, so a
// mangled-but-CRC-valid record can never panic or half-apply. Batch
// records are decoded and validated in full before any row is applied,
// keeping replay all-or-nothing per record.
func (db *DB) applyLogRecord(payload []byte) error {
	if len(payload) == 0 {
		return ErrCorrupt
	}
	op := payload[0]
	rest := payload[1:]
	name, rest, err := readString(rest)
	if err != nil {
		return err
	}
	switch op {
	case opCreateTable:
		if len(rest) < 2 {
			return ErrCorrupt
		}
		ncols, primary := int(rest[0]), int(rest[1])
		rest = rest[2:]
		s := Schema{Name: name, Primary: primary}
		for i := 0; i < ncols; i++ {
			var cname string
			cname, rest, err = readString(rest)
			if err != nil {
				return err
			}
			if len(rest) < 1 {
				return ErrCorrupt
			}
			s.Columns = append(s.Columns, Column{Name: cname, Type: ColType(rest[0])})
			rest = rest[1:]
		}
		if len(s.Columns) == 0 || s.Primary < 0 || s.Primary >= len(s.Columns) {
			return ErrCorrupt
		}
		for _, c := range s.Columns {
			if c.Type < TInt || c.Type > TBool {
				return ErrCorrupt
			}
		}
		if _, ok := db.tables[name]; !ok {
			db.newTable(s)
		}
	case opInsert:
		t, ok := db.tables[name]
		if !ok {
			return fmt.Errorf("store: replay insert into unknown table %q", name)
		}
		row, err := decodeRow(rest, len(t.schema.Columns))
		if err != nil {
			return err
		}
		if err := t.schema.validate(row); err != nil {
			return err
		}
		t.replayInsert(row)
	case opInsertBatch:
		t, ok := db.tables[name]
		if !ok {
			return fmt.Errorf("store: replay batch insert into unknown table %q", name)
		}
		count, k := binary.Uvarint(rest)
		// Every encoded value is at least two bytes (type byte +
		// payload), so a valid record cannot claim more rows than
		// len(rest)/(2*ncols); a larger count is corruption, and the
		// bound keeps a crafted count from pre-allocating gigabytes.
		maxRows := uint64(len(rest)) / uint64(2*len(t.schema.Columns))
		if k <= 0 || count > maxRows {
			return ErrCorrupt
		}
		rest = rest[k:]
		rows := make([]Row, 0, count)
		for i := uint64(0); i < count; i++ {
			var row Row
			row, rest, err = decodeValues(rest, len(t.schema.Columns))
			if err != nil {
				return err
			}
			if err := t.schema.validate(row); err != nil {
				return err
			}
			rows = append(rows, row)
		}
		if len(rest) != 0 {
			return ErrCorrupt
		}
		for _, row := range rows {
			t.replayInsert(row)
		}
	case opDelete:
		t, ok := db.tables[name]
		if !ok {
			return fmt.Errorf("store: replay delete from unknown table %q", name)
		}
		keyRow, err := decodeRow(rest, 1)
		if err != nil {
			return err
		}
		key := encodeKey(keyRow[0])
		if v, ok := t.primary.Get(key); ok {
			t.applyDelete(key, v.(Row))
		}
	case opCreateIndex:
		t, ok := db.tables[name]
		if !ok {
			return fmt.Errorf("store: replay create-index on unknown table %q", name)
		}
		col, rest, err := readString(rest)
		if err != nil {
			return err
		}
		if len(rest) != 0 || t.schema.colIndex(col) < 0 {
			return ErrCorrupt
		}
		t.createIndexLocked(col)
	default:
		return ErrCorrupt
	}
	return nil
}
