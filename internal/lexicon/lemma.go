// Package lexicon is the WordNet substitute used by the clinical IE
// system: it provides lemmatization (the "uninfected form" of the paper),
// generation of inflected variants for feature-name recall, and a small
// synonym graph for clinical vocabulary.
//
// Zhou et al. use WordNet 2.0 for exactly two operations: getting the
// lemma of each surface word, and generating inflected variants of feature
// names and their synonyms. Both are closed morphology problems handled
// here with detachment rules plus exception lists, the same mechanism
// WordNet's morphy uses.
package lexicon

import "strings"

// POSClass selects the morphology rule set to apply.
type POSClass int

// Morphology rule sets. Any applies noun rules then verb rules then
// adjective rules and returns the first lemma that differs from the input
// or is known.
const (
	Any POSClass = iota
	Noun
	Verb
	Adjective
)

// irregular noun plurals → singular.
var irregularNouns = map[string]string{
	"men": "man", "women": "woman", "children": "child", "teeth": "tooth",
	"feet": "foot", "mice": "mouse", "geese": "goose", "people": "person",
	"diagnoses": "diagnosis", "prognoses": "prognosis", "metastases": "metastasis",
	"stenoses": "stenosis", "anastomoses": "anastomosis", "psychoses": "psychosis",
	"neuroses": "neurosis", "fibroses": "fibrosis", "thromboses": "thrombosis",
	"sclerosis": "sclerosis", "biopsies": "biopsy", "allergies": "allergy",
	"histories": "history", "pregnancies": "pregnancy", "deliveries": "delivery",
	"surgeries": "surgery", "therapies": "therapy", "arteries": "artery",
	"ovaries": "ovary", "calculi": "calculus", "nuclei": "nucleus",
	"fungi": "fungus", "carcinomata": "carcinoma", "carcinomas": "carcinoma",
	"lymphomas": "lymphoma", "hematomas": "hematoma", "criteria": "criterion",
	"phenomena": "phenomenon", "data": "datum", "vertebrae": "vertebra",
	"appendices": "appendix", "indices": "index", "lumpectomies": "lumpectomy",
	"mastectomies": "mastectomy", "hysterectomies": "hysterectomy",
	"cholecystectomies": "cholecystectomy", "laminectomies": "laminectomy",
	"mammograms": "mammogram", "masses": "mass",
}

// irregular verb forms → base.
var irregularVerbs = map[string]string{
	"was": "be", "were": "be", "is": "be", "are": "be", "am": "be", "been": "be", "being": "be",
	"has": "have", "had": "have", "having": "have",
	"did": "do", "does": "do", "done": "do", "doing": "do",
	"went": "go", "gone": "go", "goes": "go", "going": "go",
	"said": "say", "says": "say",
	"saw": "see", "seen": "see", "sees": "see",
	"took": "take", "taken": "take", "takes": "take",
	"came": "come", "comes": "come",
	"gave": "give", "given": "give", "gives": "give",
	"got": "get", "gotten": "get", "gets": "get",
	"underwent": "undergo", "undergone": "undergo", "undergoes": "undergo",
	"felt": "feel", "feels": "feel",
	"found": "find", "finds": "find",
	"drank": "drink", "drunk": "drink", "drinks": "drink",
	"quit": "quit", "quits": "quit",
	"smoked": "smoke", "smokes": "smoke", "smoking": "smoke",
	"denied": "deny", "denies": "deny", "denying": "deny",
	"left": "leave", "leaves": "leave",
	"began": "begin", "begun": "begin", "begins": "begin",
	"stopped": "stop", "stops": "stop", "stopping": "stop",
	"showed": "show", "shown": "show", "shows": "show",
	"revealed": "reveal", "reveals": "reveal", "revealing": "reveal",
	"reported": "report", "reports": "report",
	"admitted": "admit", "admits": "admit", "admitting": "admit",
	"referred": "refer", "refers": "refer", "referring": "refer",
}

// irregular adjectives → base.
var irregularAdjectives = map[string]string{
	"better": "good", "best": "good", "worse": "bad", "worst": "bad",
	"further": "far", "farther": "far",
}

// words that look inflected but are not ("pancreas" is not a plural).
var nonInflected = map[string]bool{
	"pancreas": true, "diabetes": true, "herpes": true, "series": true,
	"species": true, "news": true, "lens": true, "aids": true,
	"dyspnea": true, "nausea": true, "pus": true, "this": true,
	"his": true, "is": false, "its": true, "was": false, "yes": true,
	"pelvis": true, "pubis": true, "axis": true, "basis": false,
	"always": true, "perhaps": true, "gas": true, "abscess": true,
	"illness": true, "distress": true, "less": true, "unless": true,
	"access": true, "process": false, "previous": true, "numerous": true,
	"status": true, "uterus": true, "plus": true, "thus": true,
	"gravida": true, "para": true, "menses": true,
}

// Lemma returns the uninflected form of w under the given POS class. The
// input is lower-cased first; the result is always lower case. Unknown
// words fall back to rule-based suffix detachment; if no rule applies the
// lower-cased input is returned unchanged.
func Lemma(w string, class POSClass) string {
	w = strings.ToLower(w)
	if w == "" {
		return w
	}
	switch class {
	case Noun:
		return nounLemma(w)
	case Verb:
		return verbLemma(w)
	case Adjective:
		return adjLemma(w)
	default:
		if v, ok := irregularVerbs[w]; ok {
			return v
		}
		if v, ok := irregularNouns[w]; ok {
			return v
		}
		if v, ok := irregularAdjectives[w]; ok {
			return v
		}
		if n := nounLemma(w); n != w {
			return n
		}
		if v := verbLemma(w); v != w {
			return v
		}
		return adjLemma(w)
	}
}

func nounLemma(w string) string {
	if v, ok := irregularNouns[w]; ok {
		return v
	}
	if nonInflected[w] || len(w) < 3 {
		return w
	}
	switch {
	case strings.HasSuffix(w, "ies") && len(w) > 4:
		return w[:len(w)-3] + "y"
	case strings.HasSuffix(w, "xes"), strings.HasSuffix(w, "ches"), strings.HasSuffix(w, "shes"), strings.HasSuffix(w, "sses"), strings.HasSuffix(w, "zes"):
		return w[:len(w)-2]
	case strings.HasSuffix(w, "ves") && len(w) > 4:
		return w[:len(w)-3] + "f"
	case strings.HasSuffix(w, "ss"), strings.HasSuffix(w, "us"), strings.HasSuffix(w, "is"):
		return w
	case strings.HasSuffix(w, "s") && !strings.HasSuffix(w, "ss"):
		return w[:len(w)-1]
	}
	return w
}

func verbLemma(w string) string {
	if v, ok := irregularVerbs[w]; ok {
		return v
	}
	if nonInflected[w] || len(w) < 4 {
		return w
	}
	switch {
	case strings.HasSuffix(w, "ies") && len(w) > 4:
		return w[:len(w)-3] + "y"
	case strings.HasSuffix(w, "ing") && len(w) > 5:
		stem := w[:len(w)-3]
		return undouble(stem)
	case strings.HasSuffix(w, "ied") && len(w) > 4:
		return w[:len(w)-3] + "y"
	case strings.HasSuffix(w, "ed") && len(w) > 4:
		stem := w[:len(w)-2]
		return undouble(stem)
	case strings.HasSuffix(w, "es") && (strings.HasSuffix(w, "ches") || strings.HasSuffix(w, "shes") || strings.HasSuffix(w, "sses") || strings.HasSuffix(w, "xes") || strings.HasSuffix(w, "zes")):
		return w[:len(w)-2]
	case strings.HasSuffix(w, "s") && !strings.HasSuffix(w, "ss") && !strings.HasSuffix(w, "us") && !strings.HasSuffix(w, "is"):
		return w[:len(w)-1]
	}
	return w
}

func adjLemma(w string) string {
	if v, ok := irregularAdjectives[w]; ok {
		return v
	}
	if len(w) < 5 {
		return w
	}
	switch {
	case strings.HasSuffix(w, "iest"):
		return w[:len(w)-4] + "y"
	case strings.HasSuffix(w, "ier"):
		return w[:len(w)-3] + "y"
	case strings.HasSuffix(w, "est") && len(w) > 5:
		return undouble(w[:len(w)-3])
	}
	return w
}

// undouble reverses consonant doubling ("stopp" → "stop") and restores a
// trailing 'e' when the stem ends in a pattern that required one
// ("believ" → "believe", "smok" → "smoke").
func undouble(stem string) string {
	n := len(stem)
	if n >= 3 && stem[n-1] == stem[n-2] && isConsonant(stem[n-1]) && stem[n-1] != 'l' && stem[n-1] != 's' {
		return stem[:n-1]
	}
	// Restore 'e' for stems ending consonant+{c,s,v,z,g,k} preceded by a
	// vowel: "smok"→"smoke", "believ"→"believe", "dos"→"dose".
	if n >= 3 && isConsonant(stem[n-1]) && isVowel(stem[n-2]) {
		switch stem[n-1] {
		case 'v', 'c', 'z', 'g', 'k', 's', 'u':
			return stem + "e"
		}
	}
	return stem
}

func isVowel(c byte) bool {
	switch c {
	case 'a', 'e', 'i', 'o', 'u':
		return true
	}
	return false
}

func isConsonant(c byte) bool {
	return c >= 'a' && c <= 'z' && !isVowel(c)
}
