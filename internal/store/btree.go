package store

import "bytes"

// btree is an in-memory B-tree keyed by []byte with arbitrary values,
// used for the primary index of each table. Fan-out is fixed; nodes split
// on overflow and the tree grows at the root.
const btreeOrder = 32 // max children per internal node

type btree struct {
	root *bnode
	size int
}

type bnode struct {
	keys     [][]byte
	vals     []interface{} // leaf only
	children []*bnode      // internal only; len(children) == len(keys)+1
	leaf     bool
}

func newBtree() *btree {
	return &btree{root: &bnode{leaf: true}}
}

// Len returns the number of keys stored.
func (t *btree) Len() int { return t.size }

// Get returns the value for key and whether it exists.
func (t *btree) Get(key []byte) (interface{}, bool) {
	n := t.root
	for {
		i, eq := n.search(key)
		if n.leaf {
			if eq {
				return n.vals[i], true
			}
			return nil, false
		}
		if eq {
			i++ // keys in internal nodes are the smallest key of the right subtree
		}
		n = n.children[i]
	}
}

// Max returns the largest key's value and whether the tree is
// non-empty: a walk down the rightmost spine, backtracking past
// subtrees that lazy deletion has emptied.
func (t *btree) Max() ([]byte, interface{}, bool) {
	if t.size == 0 {
		return nil, nil, false
	}
	return t.root.max()
}

func (n *bnode) max() ([]byte, interface{}, bool) {
	if n.leaf {
		if len(n.keys) == 0 {
			return nil, nil, false
		}
		last := len(n.keys) - 1
		return n.keys[last], n.vals[last], true
	}
	for i := len(n.children) - 1; i >= 0; i-- {
		if k, v, ok := n.children[i].max(); ok {
			return k, v, ok
		}
	}
	return nil, nil, false
}

// Put inserts or replaces the value for key. It reports whether the key
// was newly inserted.
func (t *btree) Put(key []byte, val interface{}) bool {
	inserted, splitKey, right := t.root.insert(key, val)
	if right != nil {
		t.root = &bnode{
			keys:     [][]byte{splitKey},
			children: []*bnode{t.root, right},
		}
	}
	if inserted {
		t.size++
	}
	return inserted
}

// Delete removes key and reports whether it existed. Underflowed nodes
// are not rebalanced; for this workload (ontology load then read-mostly)
// lazy deletion is sufficient and keeps the structure simple.
func (t *btree) Delete(key []byte) bool {
	n := t.root
	for {
		i, eq := n.search(key)
		if n.leaf {
			if !eq {
				return false
			}
			n.keys = append(n.keys[:i], n.keys[i+1:]...)
			n.vals = append(n.vals[:i], n.vals[i+1:]...)
			t.size--
			return true
		}
		if eq {
			i++
		}
		n = n.children[i]
	}
}

// Ascend calls fn for every key/value in ascending key order until fn
// returns false.
func (t *btree) Ascend(fn func(key []byte, val interface{}) bool) {
	t.root.ascend(fn)
}

// AscendRange calls fn for keys in [lo, hi) in ascending order.
func (t *btree) AscendRange(lo, hi []byte, fn func(key []byte, val interface{}) bool) {
	t.root.ascendRange(lo, hi, fn)
}

// search returns the index of the first key >= key and whether it equals
// key.
func (n *bnode) search(key []byte) (int, bool) {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(n.keys[mid], key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	eq := lo < len(n.keys) && bytes.Equal(n.keys[lo], key)
	return lo, eq
}

// insert adds key/val below n. If n splits, it returns the separator key
// and the new right sibling.
func (n *bnode) insert(key []byte, val interface{}) (inserted bool, splitKey []byte, right *bnode) {
	i, eq := n.search(key)
	if n.leaf {
		if eq {
			n.vals[i] = val
			return false, nil, nil
		}
		n.keys = append(n.keys, nil)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = append([]byte(nil), key...)
		n.vals = append(n.vals, nil)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = val
		inserted = true
	} else {
		if eq {
			i++
		}
		var childSplit []byte
		var childRight *bnode
		inserted, childSplit, childRight = n.children[i].insert(key, val)
		if childRight != nil {
			n.keys = append(n.keys, nil)
			copy(n.keys[i+1:], n.keys[i:])
			n.keys[i] = childSplit
			n.children = append(n.children, nil)
			copy(n.children[i+2:], n.children[i+1:])
			n.children[i+1] = childRight
		}
	}
	if len(n.keys) < btreeOrder {
		return inserted, nil, nil
	}
	// Split.
	mid := len(n.keys) / 2
	r := &bnode{leaf: n.leaf}
	if n.leaf {
		splitKey = append([]byte(nil), n.keys[mid]...)
		r.keys = append(r.keys, n.keys[mid:]...)
		r.vals = append(r.vals, n.vals[mid:]...)
		n.keys = n.keys[:mid]
		n.vals = n.vals[:mid]
	} else {
		splitKey = n.keys[mid]
		r.keys = append(r.keys, n.keys[mid+1:]...)
		r.children = append(r.children, n.children[mid+1:]...)
		n.keys = n.keys[:mid]
		n.children = n.children[:mid+1]
	}
	return inserted, splitKey, r
}

func (n *bnode) ascend(fn func([]byte, interface{}) bool) bool {
	if n.leaf {
		for i, k := range n.keys {
			if !fn(k, n.vals[i]) {
				return false
			}
		}
		return true
	}
	for i, c := range n.children {
		if !c.ascend(fn) {
			return false
		}
		_ = i
	}
	return true
}

func (n *bnode) ascendRange(lo, hi []byte, fn func([]byte, interface{}) bool) bool {
	if n.leaf {
		i, _ := n.search(lo)
		for ; i < len(n.keys); i++ {
			if hi != nil && bytes.Compare(n.keys[i], hi) >= 0 {
				return false
			}
			if !fn(n.keys[i], n.vals[i]) {
				return false
			}
		}
		return true
	}
	i, eq := n.search(lo)
	if eq {
		i++
	}
	for ; i < len(n.children); i++ {
		if !n.children[i].ascendRange(lo, hi, fn) {
			return false
		}
		if i < len(n.keys) && hi != nil && bytes.Compare(n.keys[i], hi) >= 0 {
			return false
		}
	}
	return true
}
