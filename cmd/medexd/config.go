package main

import (
	"flag"
	"fmt"
	"io"
	"time"

	"repro/internal/classify"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/store"
)

// config is the validated daemon configuration. Every limit here is a
// robustness bound: queue depth caps ingest memory, max-body/max-batch
// cap a single request, the timeouts cut off stalled clients and bound
// the shutdown drain.
type config struct {
	Addr     string
	DBPath   string
	Shards   int
	Strategy core.Strategy
	Workers  int

	// Backend names the classification backend for the smoking
	// classifier; TrainCorpus is the labeled corpus it trains on at
	// startup ("" = no classifier, ingested records carry no smoking
	// attribute).
	Backend     string
	TrainCorpus string

	QueueDepth int
	MaxGroup   int
	MaxBody    int64
	MaxBatch   int
	NoSync     bool

	CompactMemRows  int
	CompactWALBytes int64
	CompactFanout   int
	CompactOff      bool

	BlockCacheMB int

	IngestTimeout time.Duration
	QueryTimeout  time.Duration
	DrainTimeout  time.Duration
}

// parseFlags parses the medexd flag set into a config. It uses
// ContinueOnError so tests (and main) get the error back instead of an
// os.Exit from inside the flag package.
func parseFlags(args []string, errOut io.Writer) (config, error) {
	var cfg config
	var strategyName string
	fs := flag.NewFlagSet("medexd", flag.ContinueOnError)
	fs.SetOutput(errOut)
	fs.StringVar(&cfg.Addr, "addr", "127.0.0.1:8606", "listen address (host:port; port 0 picks a free port)")
	fs.StringVar(&cfg.DBPath, "db", "", "database path the daemon owns (required)")
	fs.IntVar(&cfg.Shards, "shards", 0, "store shard count for a fresh database (0 = auto-detect an existing layout, single shard when fresh)")
	fs.StringVar(&strategyName, "strategy", "link-grammar", "number association strategy: link-grammar | pattern-only | proximity-only")
	fs.IntVar(&cfg.Workers, "workers", 0, "extraction workers per ingest request (0 = GOMAXPROCS)")
	fs.StringVar(&cfg.Backend, "backend", "id3", "classification backend for the smoking classifier: id3 | gini | vector")
	fs.StringVar(&cfg.TrainCorpus, "train-corpus", "", "labeled corpus directory (gencorpus layout) to train the smoking classifier on at startup (empty = no classifier)")
	fs.IntVar(&cfg.QueueDepth, "queue", 64, "bounded ingest queue depth; a full queue rejects with 429")
	fs.IntVar(&cfg.MaxGroup, "max-group", 16, "max batches folded into one group commit (one fsync)")
	fs.Int64Var(&cfg.MaxBody, "max-body", 8<<20, "max ingest request body in bytes (larger requests get 413)")
	fs.IntVar(&cfg.MaxBatch, "max-batch", 512, "max records per ingest request (larger batches get 413)")
	fs.BoolVar(&cfg.NoSync, "no-sync", false, "skip the fsync before acknowledging a batch (survives process crash, not machine crash)")
	fs.IntVar(&cfg.CompactMemRows, "compact-mem-rows", store.DefaultCompactMemRows, "rows logged on a shard since its last compaction before the background compactor wakes")
	fs.Int64Var(&cfg.CompactWALBytes, "compact-wal-bytes", store.DefaultCompactWALBytes, "shard WAL size that wakes the background compactor")
	fs.IntVar(&cfg.CompactFanout, "compact-fanout", store.DefaultCompactFanout, "segment runs per table before a background compaction escalates from a minor fold to a major merge")
	fs.BoolVar(&cfg.CompactOff, "compact-off", false, "disable background compaction (explicit medex extract -compact still works)")
	fs.IntVar(&cfg.BlockCacheMB, "block-cache-mb", int(store.DefaultBlockCacheBytes>>20), "decoded-block cache capacity in MiB, shared across shards (0 disables caching)")
	fs.DurationVar(&cfg.IngestTimeout, "ingest-timeout", 30*time.Second, "per-request bound on reading, extracting and persisting one ingest batch; also the server read timeout that cuts off stalled clients")
	fs.DurationVar(&cfg.QueryTimeout, "query-timeout", 10*time.Second, "per-request bound on query endpoints")
	fs.DurationVar(&cfg.DrainTimeout, "drain-timeout", 15*time.Second, "graceful-shutdown deadline for draining in-flight requests and the ingest queue")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	if fs.NArg() > 0 {
		return cfg, fmt.Errorf("medexd: unexpected argument %q", fs.Arg(0))
	}
	strategy, err := parseStrategy(strategyName)
	if err != nil {
		return cfg, fmt.Errorf("medexd: %w", err)
	}
	cfg.Strategy = strategy
	return cfg, cfg.validate()
}

// validate fail-fast checks every flag before the daemon opens the
// database or binds the listener. Each error is one actionable line.
func (c config) validate() error {
	shardCheck := func() error {
		if c.Shards == 0 {
			return nil // auto-detect
		}
		return cliutil.Shards("-shards", c.Shards)
	}
	intBody := func() error {
		if c.MaxBody <= 0 {
			return fmt.Errorf("-max-body must be positive (got %d)", c.MaxBody)
		}
		return nil
	}
	walBytes := func() error {
		if c.CompactWALBytes <= 0 {
			return fmt.Errorf("-compact-wal-bytes must be positive (got %d)", c.CompactWALBytes)
		}
		return nil
	}
	trainCorpus := func() error {
		if c.TrainCorpus == "" {
			return nil // no startup training
		}
		return cliutil.ExistingDir("-train-corpus", c.TrainCorpus)
	}
	if err := cliutil.FirstErr(
		cliutil.DBPath("-db", c.DBPath),
		shardCheck(),
		cliutil.NonNegative("-workers", c.Workers),
		cliutil.OneOf("-backend", c.Backend, classify.Names()...),
		trainCorpus(),
		cliutil.Positive("-queue", c.QueueDepth),
		cliutil.Positive("-max-group", c.MaxGroup),
		intBody(),
		cliutil.Positive("-max-batch", c.MaxBatch),
		cliutil.Positive("-compact-mem-rows", c.CompactMemRows),
		walBytes(),
		cliutil.Positive("-compact-fanout", c.CompactFanout),
		cliutil.NonNegative("-block-cache-mb", c.BlockCacheMB),
		cliutil.PositiveDuration("-ingest-timeout", c.IngestTimeout),
		cliutil.PositiveDuration("-query-timeout", c.QueryTimeout),
		cliutil.PositiveDuration("-drain-timeout", c.DrainTimeout),
	); err != nil {
		return fmt.Errorf("medexd: %w", err)
	}
	return nil
}

// compactionPolicy maps the -compact-* flags to the store's policy.
func (c config) compactionPolicy() store.CompactionPolicy {
	return store.CompactionPolicy{
		MemRows:  c.CompactMemRows,
		WALBytes: c.CompactWALBytes,
		Fanout:   c.CompactFanout,
		Disabled: c.CompactOff,
	}
}

func parseStrategy(name string) (core.Strategy, error) {
	switch name {
	case "link-grammar":
		return core.LinkGrammar, nil
	case "pattern-only":
		return core.PatternOnly, nil
	case "proximity-only":
		return core.ProximityOnly, nil
	}
	return 0, fmt.Errorf("unknown strategy %q (want link-grammar, pattern-only or proximity-only)", name)
}
