package textproc

import (
	"strings"
	"sync"
)

// Document is an analyzed record: the Figure 2 front of the pipeline
// (section split, then tokenisation and sentence splitting per section)
// computed at most once per section, with per-section token and sentence
// views that every downstream consumer — numeric extraction, term
// extraction, feature extraction for the categorical classifier — shares
// instead of re-running the analysis on the same text.
//
// Section bodies are analyzed lazily on first access and memoized, so a
// record pays only for the sections its extractors actually read, and
// never pays twice. A Document is safe to share across goroutines.
type Document struct {
	Text     string
	Sections []*DocSection
}

// DocSection is one analyzed section: the raw header/body span plus a
// memoized sentence (and therefore token) analysis of its body.
type DocSection struct {
	Section
	once  sync.Once
	sents []Sentence
}

// Sentences returns the sentence split of the section body, computing it
// on first call and reusing the result afterwards. Token offsets are
// relative to Body, exactly as SplitSentences(Body) would return them.
func (s *DocSection) Sentences() []Sentence {
	s.once.Do(func() { s.sents = SplitSentences(s.Body) })
	return s.sents
}

// Analyze splits a record into sections — one SplitSections pass over the
// whole text — and wraps each in a lazily analyzed DocSection.
func Analyze(text string) *Document {
	secs := SplitSections(text)
	d := &Document{Text: text, Sections: make([]*DocSection, len(secs))}
	for i, s := range secs {
		d.Sections[i] = &DocSection{Section: s}
	}
	return d
}

// Section returns the first section with the given header
// (case-insensitive) and whether it was found.
func (d *Document) Section(header string) (*DocSection, bool) {
	for _, s := range d.Sections {
		if strings.EqualFold(s.Header, header) {
			return s, true
		}
	}
	return nil, false
}

// SentencesOf returns the analyzed sentences of the named section, or nil
// when the record has no such section.
func (d *Document) SentencesOf(header string) []Sentence {
	if sec, ok := d.Section(header); ok {
		return sec.Sentences()
	}
	return nil
}
