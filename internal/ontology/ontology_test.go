package ontology

import (
	"path/filepath"
	"testing"
)

func TestLookupPreferredNames(t *testing.T) {
	o := MustNew(Options{})
	defer o.Close()
	for _, name := range []string{"diabetes", "cholecystectomy", "hypertension", "breast cancer"} {
		c := o.Lookup(name)
		if c == nil {
			t.Errorf("Lookup(%q) = nil", name)
			continue
		}
		if c.Preferred != name {
			t.Errorf("Lookup(%q).Preferred = %q", name, c.Preferred)
		}
	}
}

func TestLookupSynonymsAndVariants(t *testing.T) {
	o := MustNew(Options{})
	defer o.Close()
	cases := map[string]string{
		"high blood pressure":  "hypertension",
		"high blood pressures": "hypertension", // inflected variant
		"gallbladder removal":  "cholecystectomy",
		"heart attack":         "myocardial infarction",
		"stroke":               "postoperative cva",
		"hernia closure":       "midline hernia closure",
		"c-section":            "cesarean section",
		"Pressure High Blood":  "hypertension", // word order irrelevant after normalization
	}
	for surface, wantPreferred := range cases {
		c := o.Lookup(surface)
		if c == nil {
			t.Errorf("Lookup(%q) = nil", surface)
			continue
		}
		if c.Preferred != wantPreferred {
			t.Errorf("Lookup(%q) = %q, want %q", surface, c.Preferred, wantPreferred)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	o := MustNew(Options{})
	defer o.Close()
	for _, term := range []string{"quantum flux capacitance", "", "  "} {
		if c := o.Lookup(term); c != nil {
			t.Errorf("Lookup(%q) = %v, want nil", term, c.Preferred)
		}
	}
}

func TestLookupWordsMatchesLookup(t *testing.T) {
	o := MustNew(Options{})
	defer o.Close()
	a := o.Lookup("midline hernia closure")
	b := o.LookupWords([]string{"midline", "hernia", "closures"})
	if a == nil || b == nil || a.CUI != b.CUI {
		t.Errorf("LookupWords mismatch: %v vs %v", a, b)
	}
}

func TestDisableSynonyms(t *testing.T) {
	o := MustNew(Options{DisableSynonyms: true})
	defer o.Close()
	if o.Lookup("cholecystectomy") == nil {
		t.Error("preferred name must still resolve")
	}
	if c := o.Lookup("gallbladder removal"); c != nil {
		t.Errorf("synonym resolved with synonyms disabled: %v", c.Preferred)
	}
}

func TestCoverageReducesConcepts(t *testing.T) {
	full := MustNew(Options{})
	defer full.Close()
	half := MustNew(Options{Coverage: 0.5})
	defer half.Close()
	if half.Len() >= full.Len() {
		t.Errorf("coverage 0.5: %d concepts, full: %d", half.Len(), full.Len())
	}
	if half.Len() == 0 {
		t.Error("coverage 0.5 kept nothing")
	}
	// Deterministic.
	half2 := MustNew(Options{Coverage: 0.5})
	defer half2.Close()
	if half.Len() != half2.Len() {
		t.Error("coverage selection not deterministic")
	}
}

func TestLookupLinearAgrees(t *testing.T) {
	o := MustNew(Options{})
	defer o.Close()
	for _, term := range []string{"diabetes", "gallbladder removal", "nonexistent thing"} {
		a, b := o.Lookup(term), o.LookupLinear(term)
		switch {
		case a == nil && b == nil:
		case a != nil && b != nil && a.CUI == b.CUI:
		default:
			t.Errorf("index/scan disagree on %q: %v vs %v", term, a, b)
		}
	}
}

func TestPersistedOntology(t *testing.T) {
	path := filepath.Join(t.TempDir(), "umls.db")
	o, err := New(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	n := o.TermCount()
	if n == 0 {
		t.Fatal("no terms loaded")
	}
	if o.Lookup("diabetes") == nil {
		t.Error("lookup on persisted ontology failed")
	}
	o.Close()
}

func TestConceptAccessors(t *testing.T) {
	o := MustNew(Options{})
	defer o.Close()
	c := o.ConceptByName("diabetes")
	if c == nil || c.Type != Disease {
		t.Fatalf("ConceptByName(diabetes) = %+v", c)
	}
	if o.Concept(c.CUI) != c {
		t.Error("Concept(CUI) mismatch")
	}
	if o.ConceptByName("zzz") != nil {
		t.Error("ConceptByName(zzz) should be nil")
	}
}

func TestPredefinedListsResolve(t *testing.T) {
	o := MustNew(Options{})
	defer o.Close()
	for _, name := range PredefinedMedical {
		if c := o.Lookup(name); c == nil {
			t.Errorf("predefined medical %q not in ontology", name)
		}
	}
	for _, name := range PredefinedSurgical {
		if c := o.Lookup(name); c == nil {
			t.Errorf("predefined surgical %q not in ontology", name)
		}
	}
}

func TestSemanticTypes(t *testing.T) {
	o := MustNew(Options{})
	defer o.Close()
	cases := map[string]SemType{
		"cholecystectomy": Procedure,
		"diabetes":        Disease,
		"back pain":       Finding,
		"aspirin":         Medication,
	}
	for name, want := range cases {
		c := o.Lookup(name)
		if c == nil || c.Type != want {
			t.Errorf("Lookup(%q).Type = %v, want %v", name, c, want)
		}
	}
}
