package store

import (
	"bytes"
	"errors"
	"sync"
)

// ErrBadQuery reports a malformed predicate (unknown operator).
var ErrBadQuery = errors.New("store: malformed query predicate")

// The query layer answers predicate queries over one table, choosing a
// secondary-index access path when one applies and falling back to a
// primary scan otherwise. It is the read half of the warehouse the paper
// motivates: extraction fills the table, Query serves the questions.
// On a partitioned table the same plan runs on every shard concurrently
// and the per-shard results merge into one deterministic order.

// Op is a predicate comparison operator.
type Op uint8

// Comparison operators. Ranges are expressed as conjunctions, e.g.
// Gt + Le on the same column.
const (
	OpEq Op = iota + 1
	OpLt
	OpLe
	OpGt
	OpGe
)

// String renders the operator.
func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	}
	return "?"
}

// Pred is one column predicate.
type Pred struct {
	Col string
	Op  Op
	V   Value
}

// Eq, Lt, Le, Gt and Ge construct predicates.
func Eq(col string, v Value) Pred { return Pred{Col: col, Op: OpEq, V: v} }
func Lt(col string, v Value) Pred { return Pred{Col: col, Op: OpLt, V: v} }
func Le(col string, v Value) Pred { return Pred{Col: col, Op: OpLe, V: v} }
func Gt(col string, v Value) Pred { return Pred{Col: col, Op: OpGt, V: v} }
func Ge(col string, v Value) Pred { return Pred{Col: col, Op: OpGe, V: v} }

// Query is a conjunction of predicates over one table, with an optional
// result limit.
type Query struct {
	Preds []Pred
	Limit int // 0 = unlimited
}

// QueryStats reports how a query executed, so callers (and tests) can
// verify the planner's choice: UsedIndex with FullScan == false means no
// row outside the chosen index entries was touched. For a fan-out query
// the per-shard stats are summed (probes, rows examined) and Shards
// counts the partitions examined.
type QueryStats struct {
	UsedIndex    bool   // candidates came from a secondary index
	IndexCol     string // the index column, when UsedIndex
	IndexProbes  int    // index entries (distinct values) visited
	RowsExamined int    // candidate rows fetched and tested
	FullScan     bool   // fell back to scanning the primary index
	Shards       int    // shards examined (1 on a single-shard engine)
	Segments     int    // segment files consulted (scans and index-entry resolves)
	BlocksPruned int    // segment blocks skipped via zone maps
	BloomSkips   int    // segment probes rejected by a bloom filter (no IO)
	CacheHits    int    // blocks served from the shared decoded-block cache
	CacheMisses  int    // blocks read from disk (and cached for next time)
}

// Plan renders the access path for logs ("index(attribute)" or "scan").
func (s QueryStats) Plan() string {
	if s.UsedIndex {
		return "index(" + s.IndexCol + ")"
	}
	return "scan"
}

// Query returns the rows satisfying every predicate, in deterministic
// order (ascending indexed value then primary key on the index path,
// ascending primary key on the scan path), along with execution stats.
//
// Planning: an equality predicate on an indexed column is preferred (one
// B-tree probe); otherwise the range predicates on an indexed column are
// combined into one bounded index walk; otherwise the primary index is
// scanned. All remaining predicates filter the candidate rows. Every
// shard holds the same secondary indexes, so all shards pick the same
// plan; the fan-out runs them concurrently and merges the sorted
// per-shard results (each shard honors Limit, so the merge sees at most
// shards×Limit rows before truncating).
//
// Queries run entirely under the shards' read locks, so any number can
// overlap each other and a live ingest.
func (t *Table) Query(q Query) ([]Row, QueryStats, error) {
	cis := make([]int, len(q.Preds))
	for i, p := range q.Preds {
		ci := t.schema.colIndex(p.Col)
		if ci < 0 {
			return nil, QueryStats{}, &ColumnError{Table: t.schema.Name, Col: p.Col}
		}
		if p.V.Type != t.schema.Columns[ci].Type {
			return nil, QueryStats{}, ErrTypeMism
		}
		if p.Op < OpEq || p.Op > OpGe {
			return nil, QueryStats{}, ErrBadQuery
		}
		cis[i] = ci
	}

	if len(t.shards) == 1 {
		rows, stats, err := t.shards[0].query(q, cis)
		stats.Shards = 1
		return rows, stats, err
	}

	// Fan out: one goroutine per shard, identical plan everywhere.
	parts := make([][]Row, len(t.shards))
	statss := make([]QueryStats, len(t.shards))
	errs := make([]error, len(t.shards))
	var wg sync.WaitGroup
	for i, ts := range t.shards {
		wg.Add(1)
		go func(i int, ts *tableShard) {
			defer wg.Done()
			parts[i], statss[i], errs[i] = ts.query(q, cis)
		}(i, ts)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, QueryStats{Shards: len(t.shards)}, err
	}

	var stats QueryStats
	for _, st := range statss {
		stats.UsedIndex = stats.UsedIndex || st.UsedIndex
		stats.FullScan = stats.FullScan || st.FullScan
		if stats.IndexCol == "" {
			stats.IndexCol = st.IndexCol
		}
		stats.IndexProbes += st.IndexProbes
		stats.RowsExamined += st.RowsExamined
		stats.Segments += st.Segments
		stats.BlocksPruned += st.BlocksPruned
		stats.BloomSkips += st.BloomSkips
		stats.CacheHits += st.CacheHits
		stats.CacheMisses += st.CacheMisses
	}
	stats.Shards = len(t.shards)
	// Each part is already in the plan's order; merge restores the
	// global single-shard order: (indexed value, primary key) on the
	// index path, primary key alone on the scan path.
	less := t.lessByPK()
	if stats.UsedIndex {
		less = t.lessByColPK(t.schema.colIndex(stats.IndexCol))
	}
	out := kwayMerge(parts, less)
	if q.Limit > 0 && len(out) > q.Limit {
		out = out[:q.Limit]
	}
	return out, stats, nil
}

// query runs one shard's slice of the plan. cis are the pre-resolved
// column indexes of q.Preds (validated by the router). The index paths
// run under the shard's read lock; the scan path captures a snapshot
// under it and then iterates with no lock held, so a long scan never
// blocks this shard's writers.
func (ts *tableShard) query(q Query, cis []int) (out []Row, stats QueryStats, err error) {
	ts.mu.RLock()

	// rs accumulates the acceleration counters (bloom rejects, cache
	// hits/misses, zone-map pruning) across whatever access path runs;
	// fold them into the returned stats on every exit.
	var rs readStats
	defer func() {
		stats.BloomSkips = rs.bloomSkips
		stats.CacheHits = rs.cacheHits
		stats.CacheMisses = rs.cacheMisses
	}()
	limit := q.Limit
	done := func() bool { return limit > 0 && len(out) >= limit }
	// filter tests every predicate except the ones the access path
	// already guarantees (tracked by skip).
	filter := func(row Row, skip int) bool {
		for i, p := range q.Preds {
			if i == skip {
				continue
			}
			if !predHolds(p.Op, cmpValues(row[cis[i]], p.V)) {
				return false
			}
		}
		return true
	}

	// 1. Equality on an indexed column: one probe.
	for i, p := range q.Preds {
		if p.Op != OpEq {
			continue
		}
		idx, ok := ts.secondary[p.Col]
		if !ok {
			continue
		}
		defer ts.mu.RUnlock()
		stats.UsedIndex = true
		stats.IndexCol = p.Col
		stats.IndexProbes = 1
		segReads := 0
		if pv, ok := idx.Get(encodeKey(p.V)); ok {
			// Resolve the whole posting list in one batched segment walk
			// (each touched block decoded once), then examine in order.
			entries := pv.(*postingList).entries
			rows, rerr := ts.resolveAll(entries, &rs)
			if rerr != nil {
				return nil, stats, rerr
			}
			for j, e := range entries {
				stats.RowsExamined++
				if e.row == nil {
					segReads++
				}
				if filter(rows[j], i) {
					out = append(out, rows[j])
					if done() {
						break
					}
				}
			}
		}
		if segReads > 0 {
			stats.Segments = len(ts.segs)
		}
		return out, stats, nil
	}

	// 2. Range predicates on one indexed column: a bounded index walk.
	// All range predicates on the chosen column tighten the bounds, so
	// none of them needs re-checking per row.
	if col, lo, hi, ok := ts.rangeBounds(q.Preds); ok {
		defer ts.mu.RUnlock()
		idx := ts.secondary[col]
		stats.UsedIndex = true
		stats.IndexCol = col
		var walkErr error
		segReads := 0
		idx.AscendRange(lo, hi, func(_ []byte, v interface{}) bool {
			stats.IndexProbes++
			// One batched resolve per posting list: entries are pk-sorted,
			// so the segment walk touches each block at most once.
			entries := v.(*postingList).entries
			rows, rerr := ts.resolveAll(entries, &rs)
			if rerr != nil {
				walkErr = rerr
				return false
			}
			for j, e := range entries {
				stats.RowsExamined++
				if e.row == nil {
					segReads++
				}
				if filterExceptCol(q.Preds, cis, col, rows[j]) {
					out = append(out, rows[j])
					if done() {
						return false
					}
				}
			}
			return true
		})
		if walkErr != nil {
			return nil, stats, walkErr
		}
		if segReads > 0 {
			stats.Segments = len(ts.segs)
		}
		return out, stats, nil
	}

	// 3. Fallback: a snapshot scan. Predicates on the primary-key
	// column tighten the scan to [lo, hi) key bounds, which the zone
	// maps turn into skipped segment blocks.
	lo, hi := pkBounds(q.Preds, cis, ts.schema.Primary)
	ss := ts.captureLocked(lo, hi)
	ts.mu.RUnlock()
	defer ss.release()
	stats.FullScan = true
	stats.Segments = len(ss.segs)
	err = ss.iterate(lo, hi, &rs, func(row Row) bool {
		stats.RowsExamined++
		if filter(row, -1) {
			out = append(out, row)
			if done() {
				return false
			}
		}
		return true
	})
	stats.BlocksPruned = rs.blocksPruned
	if err != nil {
		return nil, stats, err
	}
	return out, stats, nil
}

// pkBounds folds the predicates on the primary-key column into [lo, hi)
// encoded-key bounds for the scan path (nil = unbounded). Exclusive
// bounds use the key-successor trick: appending a zero byte to an
// encoded key yields the smallest strictly greater key.
func pkBounds(preds []Pred, cis []int, primary int) (lo, hi []byte) {
	for i, p := range preds {
		if cis[i] != primary {
			continue
		}
		var plo, phi []byte
		switch p.Op {
		case OpEq:
			plo = encodeKey(p.V)
			phi = append(encodeKey(p.V), 0)
		case OpGe:
			plo = encodeKey(p.V)
		case OpGt:
			plo = append(encodeKey(p.V), 0)
		case OpLt:
			phi = encodeKey(p.V)
		case OpLe:
			phi = append(encodeKey(p.V), 0)
		}
		if plo != nil && (lo == nil || bytes.Compare(plo, lo) > 0) {
			lo = plo
		}
		if phi != nil && (hi == nil || bytes.Compare(phi, hi) < 0) {
			hi = phi
		}
	}
	return lo, hi
}

// rangeBounds picks the first indexed column that carries a range
// predicate and folds every range predicate on it into [lo, hi) key
// bounds. Exclusive bounds use the key-successor trick: appending a zero
// byte to an encoded key yields the smallest strictly greater key.
func (ts *tableShard) rangeBounds(preds []Pred) (col string, lo, hi []byte, ok bool) {
	for _, p := range preds {
		if p.Op == OpEq {
			continue
		}
		if _, indexed := ts.secondary[p.Col]; !indexed || (ok && p.Col != col) {
			continue
		}
		col, ok = p.Col, true
		var plo, phi []byte
		switch p.Op {
		case OpGe:
			plo = encodeKey(p.V)
		case OpGt:
			plo = append(encodeKey(p.V), 0)
		case OpLt:
			phi = encodeKey(p.V)
		case OpLe:
			phi = append(encodeKey(p.V), 0)
		}
		if plo != nil && (lo == nil || bytes.Compare(plo, lo) > 0) {
			lo = plo
		}
		if phi != nil && (hi == nil || bytes.Compare(phi, hi) < 0) {
			hi = phi
		}
	}
	return col, lo, hi, ok
}

// filterExceptCol tests every predicate not on the given column (those
// are guaranteed by the index walk's bounds).
func filterExceptCol(preds []Pred, cis []int, col string, row Row) bool {
	for i, p := range preds {
		if p.Col == col && p.Op != OpEq {
			continue
		}
		if !predHolds(p.Op, cmpValues(row[cis[i]], p.V)) {
			return false
		}
	}
	return true
}

// cmpValues orders two same-typed values: -1, 0 or 1.
func cmpValues(a, b Value) int {
	switch a.Type {
	case TInt:
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		}
	case TFloat:
		switch {
		case a.F < b.F:
			return -1
		case a.F > b.F:
			return 1
		}
	case TString:
		switch {
		case a.S < b.S:
			return -1
		case a.S > b.S:
			return 1
		}
	case TBool:
		switch {
		case !a.B && b.B:
			return -1
		case a.B && !b.B:
			return 1
		}
	}
	return 0
}

// predHolds translates a comparison result into the operator's outcome.
func predHolds(op Op, cmp int) bool {
	switch op {
	case OpEq:
		return cmp == 0
	case OpLt:
		return cmp < 0
	case OpLe:
		return cmp <= 0
	case OpGt:
		return cmp > 0
	case OpGe:
		return cmp >= 0
	}
	return false
}

// ColumnError reports a predicate on a column the table does not have.
type ColumnError struct {
	Table, Col string
}

func (e *ColumnError) Error() string {
	return "store: table " + e.Table + " has no column " + e.Col
}
