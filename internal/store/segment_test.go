package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
)

// --- segment file format ---

// TestSegmentRoundTrip pins the writer/reader contract: rows stream in
// pk order, the footer self-describes, point gets and bounded iterators
// agree with the input, and zone maps prune blocks the bounds miss.
func TestSegmentRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.seg")
	s := attrSchema()
	w, err := newSegmentWriter(path, s)
	if err != nil {
		t.Fatal(err)
	}
	const n = 1000 // ~4 blocks at 256 rows/block
	for i := 1; i <= n; i++ {
		row := Row{Int(int64(i)), Int(int64(i % 50)), Str("pulse"), Str("v"), Float(float64(i))}
		if err := w.add(row); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.finish(); err != nil {
		t.Fatal(err)
	}
	sg, err := openSegment(path)
	if err != nil {
		t.Fatal(err)
	}
	defer sg.unref()
	if sg.nRows != n {
		t.Fatalf("nRows = %d, want %d", sg.nRows, n)
	}
	if !schemaEqual(sg.schema, s) {
		t.Fatalf("footer schema mismatch: %+v", sg.schema)
	}
	if len(sg.blocks) < 3 {
		t.Fatalf("expected multiple blocks, got %d", len(sg.blocks))
	}
	// Point gets: every present key, plus misses inside and outside the
	// key range.
	for _, pk := range []int64{1, 2, 255, 256, 257, 999, 1000} {
		row, ok, err := sg.get(encodeKey(Int(pk)), nil)
		if err != nil || !ok {
			t.Fatalf("get(%d): ok=%v err=%v", pk, ok, err)
		}
		if row[0].I != pk {
			t.Fatalf("get(%d) returned pk %d", pk, row[0].I)
		}
	}
	for _, pk := range []int64{0, 1001, 5000} {
		if _, ok, err := sg.get(encodeKey(Int(pk)), nil); ok || err != nil {
			t.Fatalf("get(%d): ok=%v err=%v, want miss", pk, ok, err)
		}
	}
	// Full iteration order.
	it := newSegIter(sg, nil, nil, nil)
	prev := int64(0)
	count := 0
	for it.valid() {
		if got := it.row()[0].I; got != prev+1 {
			t.Fatalf("iteration out of order: %d after %d", got, prev)
		}
		prev = it.row()[0].I
		count++
		it.next()
	}
	if it.err != nil || count != n {
		t.Fatalf("iterated %d rows, err %v", count, it.err)
	}
	// Bounded iteration prunes blocks outside [600, 700).
	it = newSegIter(sg, encodeKey(Int(600)), encodeKey(Int(700)), nil)
	count = 0
	for it.valid() {
		pk := it.row()[0].I
		if pk < 600 || pk >= 700 {
			t.Fatalf("bounded iterator leaked pk %d", pk)
		}
		count++
		it.next()
	}
	if count != 100 {
		t.Fatalf("bounded iteration saw %d rows, want 100", count)
	}
	if it.pruned == 0 {
		t.Fatal("bounded iteration pruned no blocks")
	}
}

// TestSegmentRejectsCorruption flips every byte region that matters and
// expects a clean error, never a panic or a silent success.
func TestSegmentRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.seg")
	w, err := newSegmentWriter(path, attrSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 300; i++ {
		if err := w.add(Row{Int(int64(i)), Int(1), Str("a"), Str("v"), Float(0)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.finish(); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		off  int
	}{
		{"header-magic", 0},
		{"block-body", len(segMagic) + 10},
		{"tail-magic", len(good) - 1},
		{"meta-crc", len(good) - segTailLen + 9},
	} {
		bad := append([]byte(nil), good...)
		bad[tc.off] ^= 0xff
		p := filepath.Join(dir, tc.name+".seg")
		if err := os.WriteFile(p, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		sg, err := openSegment(p)
		if err == nil {
			// A corrupt block body is only detected when the block is
			// read; the open validates the footer alone.
			it := newSegIter(sg, nil, nil, nil)
			for it.valid() {
				it.next()
			}
			sg.unref()
			if it.err == nil {
				t.Errorf("%s: corruption undetected", tc.name)
			}
		}
	}
	// Truncations at every plausible boundary must be rejected cleanly.
	for _, cut := range []int{0, 1, len(segMagic), len(good) / 2, len(good) - segTailLen, len(good) - 1} {
		p := filepath.Join(dir, fmt.Sprintf("cut-%d.seg", cut))
		if err := os.WriteFile(p, good[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if sg, err := openSegment(p); err == nil {
			sg.unref()
			t.Errorf("truncation at %d opened successfully", cut)
		}
	}
}

// --- compaction to segments ---

// segFilesOf lists the segment directory contents for a single-file
// store at path.
func segFilesOf(t *testing.T, path string) []string {
	t.Helper()
	ents, err := os.ReadDir(segsDirFor(path))
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names
}

// collectRows drains a table scan into a slice.
func collectRows(tbl *Table) []Row {
	var out []Row
	tbl.Scan(func(r Row) bool { out = append(out, r); return true })
	return out
}

// TestCompactEmitsSegments is the tentpole's happy path on a
// single-file store: compaction produces a manifest plus one segment
// per table, shrinks the WAL to schema/index records, and every read
// path (Get, Lookup, Query, Scan, reopen) serves the same rows from
// segments + memtable as it did from memory alone.
func TestCompactEmitsSegments(t *testing.T) {
	path := filepath.Join(t.TempDir(), "extracted.db")
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable(attrSchema())
	if err != nil {
		t.Fatal(err)
	}
	fillAttrs(t, tbl, 40)
	if err := tbl.CreateIndex("patient"); err != nil {
		t.Fatal(err)
	}
	want := collectRows(tbl)
	wantLen := tbl.Len()
	pre := db.LogSize()

	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if post := db.LogSize(); post >= pre {
		t.Errorf("compact did not shrink the log: %d -> %d", pre, post)
	}
	files := segFilesOf(t, path)
	if len(files) != 2 || files[0] != manifestName || !strings.HasSuffix(files[1], ".seg") {
		t.Fatalf("segment dir = %v, want [MANIFEST seg-*.seg]", files)
	}
	if st := tbl.Stats(); st.Segments != 1 || st.Rows != wantLen {
		t.Fatalf("Stats after compact: %+v, want 1 segment, %d rows", st, wantLen)
	}

	checkParity := func(label string, tbl *Table) {
		t.Helper()
		if got := tbl.Len(); got != wantLen {
			t.Fatalf("%s: Len = %d, want %d", label, got, wantLen)
		}
		got := collectRows(tbl)
		if len(got) != len(want) {
			t.Fatalf("%s: scan returned %d rows, want %d", label, len(got), len(want))
		}
		for i := range got {
			if !rowsEqual(got[i], want[i]) {
				t.Fatalf("%s: scan row %d = %v, want %v", label, i, got[i], want[i])
			}
		}
		row, err := tbl.Get(Int(7))
		if err != nil || row[0].I != 7 {
			t.Fatalf("%s: Get(7) = %v, %v", label, row, err)
		}
		byPatient, err := tbl.Lookup("patient", Int(3))
		if err != nil || len(byPatient) != 3 {
			t.Fatalf("%s: Lookup(patient=3) = %d rows, err %v; want 3", label, len(byPatient), err)
		}
		rows, st, err := tbl.Query(Query{Preds: []Pred{Eq("patient", Int(5))}})
		if err != nil || !st.UsedIndex || len(rows) != 3 {
			t.Fatalf("%s: indexed query = %d rows, stats %+v, err %v", label, len(rows), st, err)
		}
	}
	checkParity("after compact", tbl)
	checkIndexConsistent(t, tbl)

	// Post-compaction writes land in the memtable; deletes of
	// compacted rows must tombstone them.
	if err := tbl.Insert(Row{Int(9001), Int(41), Str("pulse"), Str("x"), Float(70)}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Delete(Int(7)); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Get(Int(7)); err != ErrNotFound {
		t.Fatalf("Get(7) after delete: %v, want ErrNotFound", err)
	}
	if got := tbl.Len(); got != wantLen {
		t.Fatalf("Len after insert+delete = %d, want %d", got, wantLen)
	}
	// A re-insert of a tombstoned key must succeed and win over the
	// segment row.
	if err := tbl.Insert(Row{Int(7), Int(2), Str("weight"), Str("re"), Float(1)}); err != nil {
		t.Fatal(err)
	}
	row, err := tbl.Get(Int(7))
	if err != nil || row[3].S != "re" {
		t.Fatalf("Get(7) after re-insert = %v, %v", row, err)
	}
	checkIndexConsistent(t, tbl)

	// Reopen: manifest segments + truncated WAL reproduce the state.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.RecoveredWithLoss() {
		t.Fatal("clean reopen reported loss")
	}
	tbl, err = db.Table("extracted")
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.Len(); got != wantLen+1 {
		t.Fatalf("Len after reopen = %d, want %d", got, wantLen+1)
	}
	row, err = tbl.Get(Int(7))
	if err != nil || row[3].S != "re" {
		t.Fatalf("Get(7) after reopen = %v, %v", row, err)
	}
	if _, err := tbl.Get(Int(9001)); err != nil {
		t.Fatalf("post-compaction insert lost on reopen: %v", err)
	}
	checkIndexConsistent(t, tbl)

	// A second compaction folds memtable + old segment into a new
	// generation and still round-trips.
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := tbl.Len(); got != wantLen+1 {
		t.Fatalf("Len after second compact = %d, want %d", got, wantLen+1)
	}
	checkIndexConsistent(t, tbl)
}

// TestZoneMapPruning proves the acceptance criterion: a primary-key
// range query over a compacted store skips the segment blocks its
// bounds miss, and the skips surface in QueryStats.BlocksPruned.
func TestZoneMapPruning(t *testing.T) {
	path := filepath.Join(t.TempDir(), "extracted.db")
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable(attrSchema())
	if err != nil {
		t.Fatal(err)
	}
	var rows []Row
	for i := 1; i <= 4000; i++ {
		rows = append(rows, Row{Int(int64(i)), Int(int64(i % 10)), Str("a"), Str("v"), Float(0)})
	}
	if err := tbl.InsertBatch(rows); err != nil {
		t.Fatal(err)
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	got, st, err := tbl.Query(Query{Preds: []Pred{Ge("id", Int(2000)), Lt("id", Int(2100))}})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("range query returned %d rows, want 100", len(got))
	}
	if !st.FullScan || st.Segments == 0 {
		t.Fatalf("expected segment-backed scan, stats %+v", st)
	}
	if st.BlocksPruned == 0 {
		t.Fatalf("zone maps pruned nothing: %+v", st)
	}
	if st.RowsExamined > 2*segmentBlockRows {
		t.Errorf("scan examined %d rows despite pruning", st.RowsExamined)
	}
}

// --- snapshot isolation ---

// TestSnapshotIsolation pins the MVCC contract under the race detector:
// a snapshot taken before concurrent InsertBatch + Delete + Compact
// keeps serving exactly the rows that were live at capture, its
// watermark never moves, and pinned segment files survive until
// Release even after a newer compaction obsoletes them.
func TestSnapshotIsolation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db")
	db, err := OpenSharded(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable(attrSchema())
	if err != nil {
		t.Fatal(err)
	}
	fillAttrs(t, tbl, 30)
	// First compaction so the snapshot pins real segment files.
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	want := collectRows(tbl)

	snap := tbl.Snapshot()
	seq0 := snap.Seq()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(2)
	go func() { // writer: batches of new rows + deletes of old ones
		defer wg.Done()
		id := int64(100000)
		victim := int64(1)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			batch := make([]Row, 0, 16)
			for j := 0; j < 16; j++ {
				batch = append(batch, Row{Int(id), Int(999), Str("new"), Str("x"), Float(0)})
				id++
			}
			if err := tbl.InsertBatch(batch); err != nil {
				t.Error(err)
				return
			}
			if victim <= 20 {
				if err := tbl.Delete(Int(victim)); err != nil {
					t.Error(err)
					return
				}
				victim++
			}
		}
	}()
	go func() { // compactor: obsoletes the pinned segments repeatedly
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if err := db.Compact(); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Reader: the snapshot view must not move while writers run.
	for i := 0; i < 20; i++ {
		var got []Row
		if err := snap.Scan(func(r Row) bool { got = append(got, r); return true }); err != nil {
			t.Fatalf("snapshot scan %d: %v", i, err)
		}
		if len(got) != len(want) {
			t.Fatalf("snapshot scan %d saw %d rows, want %d", i, len(got), len(want))
		}
		for j := range got {
			if !rowsEqual(got[j], want[j]) {
				t.Fatalf("snapshot scan %d row %d drifted", i, j)
			}
		}
		if s := snap.Seq(); s != seq0 {
			t.Fatalf("snapshot watermark moved: %d -> %d", seq0, s)
		}
	}
	close(stop)
	wg.Wait()
	snap.Release()

	// The live view did move: deletes took effect and new rows exist.
	if _, err := tbl.Get(Int(1)); err != ErrNotFound {
		t.Fatalf("deleted row still live: %v", err)
	}
	if _, err := tbl.Get(Int(100000)); err != nil {
		t.Fatalf("ingested row missing: %v", err)
	}
	checkIndexConsistent(t, tbl)
}

// TestSnapshotPinsObsoleteSegments verifies the refcount protocol
// directly: a compaction that supersedes a pinned segment must leave
// its file on disk until the last snapshot releases it.
func TestSnapshotPinsObsoleteSegments(t *testing.T) {
	path := filepath.Join(t.TempDir(), "extracted.db")
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable(attrSchema())
	if err != nil {
		t.Fatal(err)
	}
	fillAttrs(t, tbl, 10)
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	gen1 := filepath.Join(segsDirFor(path), segFileName(1, 0))
	if _, err := os.Stat(gen1); err != nil {
		t.Fatalf("gen-1 segment missing: %v", err)
	}
	snap := tbl.Snapshot()
	want := tbl.Len()
	if err := tbl.Insert(Row{Int(8000), Int(1), Str("a"), Str("v"), Float(0)}); err != nil {
		t.Fatal(err)
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	// Superseded but pinned: still on disk, still readable via snap.
	if _, err := os.Stat(gen1); err != nil {
		t.Fatalf("pinned gen-1 segment removed early: %v", err)
	}
	got := 0
	if err := snap.Scan(func(Row) bool { got++; return true }); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("pinned snapshot saw %d rows, want %d", got, want)
	}
	snap.Release()
	if _, err := os.Stat(gen1); !os.IsNotExist(err) {
		t.Fatalf("released obsolete segment not removed: %v", err)
	}
}

// --- crash matrix: manifest truncation ---

// TestCrashMatrixManifestTruncation truncates the segment MANIFEST at
// every byte offset. The invariant: open always succeeds; an intact
// manifest serves the full row set; any torn prefix falls back to
// WAL-only recovery (exactly the post-compaction writes), reports the
// loss, and the store accepts new writes that survive a further
// reopen.
func TestCrashMatrixManifestTruncation(t *testing.T) {
	base := filepath.Join(t.TempDir(), "base.db")
	db, err := Open(base)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable(attrSchema())
	if err != nil {
		t.Fatal(err)
	}
	fillAttrs(t, tbl, 8) // 40 pre-compaction rows → the segment
	if err := tbl.CreateIndex("patient"); err != nil {
		t.Fatal(err)
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	post := []Row{ // post-compaction rows → the truncated WAL
		{Int(5001), Int(90), Str("pulse"), Str("x"), Float(1)},
		{Int(5002), Int(91), Str("pulse"), Str("x"), Float(2)},
	}
	if err := tbl.InsertBatch(post); err != nil {
		t.Fatal(err)
	}
	full := tbl.Len()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	manifest, err := os.ReadFile(filepath.Join(segsDirFor(base), manifestName))
	if err != nil {
		t.Fatal(err)
	}
	walBytes, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	segName := segFileName(1, 0)
	segBytes, err := os.ReadFile(filepath.Join(segsDirFor(base), segName))
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(manifest); cut++ {
		dir := t.TempDir()
		path := filepath.Join(dir, "extracted.db")
		if err := os.WriteFile(path, walBytes, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(segsDirFor(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(segsDirFor(path), segName), segBytes, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(segsDirFor(path), manifestName), manifest[:cut], 0o644); err != nil {
			t.Fatal(err)
		}

		db, err := Open(path)
		if err != nil {
			t.Fatalf("cut %d: open failed: %v", cut, err)
		}
		torn := cut < len(manifest)
		if db.RecoveredWithLoss() != torn {
			t.Fatalf("cut %d: RecoveredWithLoss = %v, want %v", cut, db.RecoveredWithLoss(), torn)
		}
		tbl, err := db.Table("extracted")
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		wantRows := full
		if torn {
			wantRows = len(post) // WAL-only view
		}
		if got := tbl.Len(); got != wantRows {
			t.Fatalf("cut %d: Len = %d, want %d", cut, got, wantRows)
		}
		checkIndexConsistent(t, tbl)
		// Recovery must leave a writable store whose writes survive.
		if err := tbl.Insert(Row{Int(7777), Int(1), Str("a"), Str("v"), Float(0)}); err != nil {
			t.Fatalf("cut %d: post-recovery insert: %v", cut, err)
		}
		if err := db.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
		db, err = Open(path)
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		tbl, _ = db.Table("extracted")
		if _, err := tbl.Get(Int(7777)); err != nil {
			t.Fatalf("cut %d: post-recovery insert lost: %v", cut, err)
		}
		db.Close()
	}
}

// TestTornSegmentFallsBackToWAL covers the companion loss path: the
// manifest is intact but a listed segment file is corrupt, so the whole
// segment set is voided and the WAL alone serves.
func TestTornSegmentFallsBackToWAL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "extracted.db")
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable(attrSchema())
	if err != nil {
		t.Fatal(err)
	}
	fillAttrs(t, tbl, 5)
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(Row{Int(6001), Int(1), Str("a"), Str("v"), Float(0)}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	segPath := filepath.Join(segsDirFor(path), segFileName(1, 0))
	raw, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff // break the tail magic
	if err := os.WriteFile(segPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	db, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if !db.RecoveredWithLoss() {
		t.Fatal("corrupt segment did not report loss")
	}
	tbl, err = db.Table("extracted")
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.Len(); got != 1 {
		t.Fatalf("WAL-only view has %d rows, want 1", got)
	}
	if _, err := tbl.Get(Int(6001)); err != nil {
		t.Fatalf("post-compaction row missing from WAL fallback: %v", err)
	}
}

// --- fd hygiene on segment error paths ---

// TestSegmentErrorsLeakNoFDs extends the fd-leak pin to the segment
// paths: a corrupt-segment fallback open, a torn-manifest open, and a
// failed compaction swap must all leave the descriptor count where it
// was.
func TestSegmentErrorsLeakNoFDs(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("relies on /proc/self/fd")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "extracted.db")
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	tblA, err := db.CreateTable(attrSchema())
	if err != nil {
		t.Fatal(err)
	}
	fillAttrs(t, tblA, 5)
	if _, err := db.CreateTable(Schema{
		Name:    "second",
		Columns: []Column{{Name: "id", Type: TInt}, {Name: "v", Type: TString}},
		Primary: 0,
	}); err != nil {
		t.Fatal(err)
	}
	tblB, _ := db.Table("second")
	if err := tblB.Insert(Row{Int(1), Str("x")}); err != nil {
		t.Fatal(err)
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the second manifest-listed segment: open falls back to
	// WAL-only recovery and must close the first segment it had opened.
	segs := segFilesOf(t, path)
	var segNames []string
	for _, n := range segs {
		if strings.HasSuffix(n, ".seg") {
			segNames = append(segNames, n)
		}
	}
	if len(segNames) != 2 {
		t.Fatalf("expected 2 segments, got %v", segs)
	}
	victim := filepath.Join(segsDirFor(path), segNames[1])
	good, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), good...)
	bad[len(bad)-1] ^= 0xff
	if err := os.WriteFile(victim, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	before := openFDs(t)
	for i := 0; i < 5; i++ {
		db, err := Open(path)
		if err != nil {
			t.Fatalf("fallback open failed: %v", err)
		}
		if !db.RecoveredWithLoss() {
			t.Fatal("corrupt segment not reported")
		}
		db.Close()
	}
	if after := openFDs(t); after > before {
		t.Errorf("corrupt-segment fallback leaked fds: %d -> %d", before, after)
	}
	if err := os.WriteFile(victim, good, 0o644); err != nil {
		t.Fatal(err)
	}

	// Torn manifest: same contract.
	manPath := filepath.Join(segsDirFor(path), manifestName)
	man, err := os.ReadFile(manPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(manPath, man[:len(man)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	before = openFDs(t)
	for i := 0; i < 5; i++ {
		db, err := Open(path)
		if err != nil {
			t.Fatalf("torn-manifest open failed: %v", err)
		}
		db.Close()
	}
	if after := openFDs(t); after > before {
		t.Errorf("torn-manifest fallback leaked fds: %d -> %d", before, after)
	}
	if err := os.WriteFile(manPath, man, 0o644); err != nil {
		t.Fatal(err)
	}

	// Failed compaction swap: plant a directory where the next
	// generation's first segment must go. Compact fails before its
	// commit point, the store keeps serving, and nothing leaks.
	db, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tblA, err = db.Table("extracted")
	if err != nil {
		t.Fatal(err)
	}
	wantLen := tblA.Len()
	blocker := filepath.Join(segsDirFor(path), segFileName(2, 0))
	if err := os.Mkdir(blocker, 0o755); err != nil {
		t.Fatal(err)
	}
	before = openFDs(t)
	for i := 0; i < 5; i++ {
		if err := db.Compact(); err == nil {
			t.Fatal("compaction into a blocked segment path succeeded")
		}
	}
	if after := openFDs(t); after > before {
		t.Errorf("failed compaction swap leaked fds: %d -> %d", before, after)
	}
	if got := tblA.Len(); got != wantLen {
		t.Fatalf("failed compaction changed the table: %d -> %d", wantLen, got)
	}
	if err := tblA.Insert(Row{Int(8888), Int(1), Str("a"), Str("v"), Float(0)}); err != nil {
		t.Fatalf("store unusable after failed compaction: %v", err)
	}
	// Unblock: the next compaction succeeds.
	if err := os.Remove(blocker); err != nil {
		t.Fatal(err)
	}
	if err := db.Compact(); err != nil {
		t.Fatalf("compaction after unblocking failed: %v", err)
	}

	// Segment finish failure: the writer dies between its last data
	// block and the footer — the window where the partial file is
	// largest. The file and its descriptor must both go.
	injected := errors.New("injected finish failure")
	testHookSegmentFinish = func(string) error { return injected }
	defer func() { testHookSegmentFinish = nil }()
	filesBefore := segFilesOf(t, path)
	before = openFDs(t)
	for i := 0; i < 5; i++ {
		if err := db.Compact(); !errors.Is(err, injected) {
			t.Fatalf("compaction error = %v, want injected finish failure", err)
		}
	}
	if after := openFDs(t); after > before {
		t.Errorf("finish-failure path leaked fds: %d -> %d", before, after)
	}
	if filesAfter := segFilesOf(t, path); !reflect.DeepEqual(filesAfter, filesBefore) {
		t.Errorf("finish failure orphaned segment files: %v -> %v", filesBefore, filesAfter)
	}
	if got := tblA.Len(); got != wantLen+1 {
		t.Fatalf("failed finish changed the table: %d", got)
	}
	testHookSegmentFinish = nil
	if err := db.Compact(); err != nil {
		t.Fatalf("compaction after clearing finish hook failed: %v", err)
	}

	// Block cache holds decoded rows, never descriptors, and drops each
	// segment's entries with its last pin: populate it, then close —
	// nothing may remain.
	if _, err := tblA.Get(Int(8888)); err != nil {
		t.Fatal(err)
	}
	if cs := db.BlockCacheStats(); cs.Entries == 0 {
		t.Fatalf("segment read populated no cache entries: %+v", cs)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if cs := db.BlockCacheStats(); cs.Entries != 0 || cs.Bytes != 0 {
		t.Errorf("cache retained entries past close: %+v", cs)
	}
}
