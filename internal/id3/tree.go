// Package id3 implements the ID3 decision tree of Quinlan (1986) over
// Boolean word-presence features, together with the NLP feature
// extraction options of Zhou et al. §3.3 (part-of-speech selection,
// sentence-constituent selection, head-word-only, lemma) and the numeric
// Boolean threshold features the paper proposes for numeric categorical
// fields such as alcohol use. A k-fold cross-validation harness with
// shuffled rounds reproduces the paper's evaluation protocol.
package id3

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Example is one training or test case: Boolean features and a class
// label.
type Example struct {
	Features map[string]bool
	Class    string
}

// Tree is a trained ID3 decision tree.
type Tree struct {
	// Leaf fields.
	leaf  bool
	class string
	// Internal fields.
	feature string
	yes, no *Tree
}

// Train builds an ID3 tree: at each node the feature with maximum
// information gain (mutual information with the class) splits the
// examples; recursion stops on purity, zero gain, or feature exhaustion,
// where the majority class becomes a leaf.
func Train(examples []Example) *Tree {
	return trainCriterion(examples, featureUniverse(examples), gain)
}

// Classify returns the class for the given features. An untrained or
// empty tree returns "".
func (t *Tree) Classify(features map[string]bool) string {
	for !t.leaf {
		if features[t.feature] {
			t = t.yes
		} else {
			t = t.no
		}
	}
	return t.class
}

// FeatureCount returns the number of distinct features tested anywhere in
// the tree (the quantity the paper reports as "the number of features
// used in the decision tree ranges from four to seven").
func (t *Tree) FeatureCount() int {
	set := map[string]bool{}
	t.collectFeatures(set)
	return len(set)
}

// Features returns the distinct features tested in the tree, sorted.
func (t *Tree) Features() []string {
	set := map[string]bool{}
	t.collectFeatures(set)
	out := make([]string, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

func (t *Tree) collectFeatures(set map[string]bool) {
	if t == nil || t.leaf {
		return
	}
	set[t.feature] = true
	t.yes.collectFeatures(set)
	t.no.collectFeatures(set)
}

// Depth returns the maximum depth of the tree (leaf-only tree: 0).
func (t *Tree) Depth() int {
	if t == nil || t.leaf {
		return 0
	}
	dy, dn := t.yes.Depth(), t.no.Depth()
	if dy > dn {
		return dy + 1
	}
	return dn + 1
}

// String renders the tree as an indented rule list, for inspection.
func (t *Tree) String() string {
	var b strings.Builder
	t.render(&b, 0)
	return b.String()
}

func (t *Tree) render(b *strings.Builder, depth int) {
	ind := strings.Repeat("  ", depth)
	if t.leaf {
		fmt.Fprintf(b, "%s→ %s\n", ind, t.class)
		return
	}
	fmt.Fprintf(b, "%shas(%s)?\n", ind, t.feature)
	fmt.Fprintf(b, "%s yes:\n", ind)
	t.yes.render(b, depth+1)
	fmt.Fprintf(b, "%s no:\n", ind)
	t.no.render(b, depth+1)
}

// featureUniverse collects all feature names, sorted for determinism.
func featureUniverse(examples []Example) []string {
	set := map[string]bool{}
	for _, e := range examples {
		for f := range e.Features {
			set[f] = true
		}
	}
	out := make([]string, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// majority returns the majority class (ties broken alphabetically for
// determinism) and whether the set is pure.
func majority(examples []Example) (string, bool) {
	counts := map[string]int{}
	for _, e := range examples {
		counts[e.Class]++
	}
	best, bestN := "", -1
	for c, n := range counts {
		if n > bestN || (n == bestN && c < best) {
			best, bestN = c, n
		}
	}
	return best, len(counts) == 1
}

// entropy of the class distribution.
func entropy(examples []Example) float64 {
	counts := map[string]int{}
	for _, e := range examples {
		counts[e.Class]++
	}
	n := float64(len(examples))
	h := 0.0
	for _, c := range counts {
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h
}

// gain is the information gain (mutual information) of feature f with the
// class, the split criterion of ID3: "Information Gain (Mutual
// Information) of the predictor and dependent variable is a good measure
// of the predictor's discriminating ability."
func gain(examples []Example, f string) float64 {
	var yes, no []Example
	for _, e := range examples {
		if e.Features[f] {
			yes = append(yes, e)
		} else {
			no = append(no, e)
		}
	}
	n := float64(len(examples))
	h := entropy(examples)
	h -= float64(len(yes)) / n * entropy(yes)
	h -= float64(len(no)) / n * entropy(no)
	return h
}
