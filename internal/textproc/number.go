package textproc

import (
	"strconv"
	"strings"
)

// NumberAnn is an annotated number found in a sentence. For a ratio token
// such as a blood pressure reading "144/90", Value holds the first
// component and Value2 the second, and IsRatio is true.
type NumberAnn struct {
	TokenIndex int     // index of the (first) token in the sentence
	TokenSpan  int     // number of tokens consumed (≥1; English words may span several)
	Text       string  // surface text, e.g. "144/90" or "twenty five"
	Value      float64 // numeric value (first component of a ratio)
	Value2     float64 // second component of a ratio, 0 otherwise
	IsRatio    bool    // true for "144/90"-style readings
	IsRange    bool    // true for "1-2"-style ranges; Value2 is the upper bound
	FromWords  bool    // true when parsed from English number words
}

// unit number words and their values.
var numberWords = map[string]float64{
	"zero": 0, "one": 1, "two": 2, "three": 3, "four": 4, "five": 5,
	"six": 6, "seven": 7, "eight": 8, "nine": 9, "ten": 10,
	"eleven": 11, "twelve": 12, "thirteen": 13, "fourteen": 14,
	"fifteen": 15, "sixteen": 16, "seventeen": 17, "eighteen": 18,
	"nineteen": 19,
}

var tensWords = map[string]float64{
	"twenty": 20, "thirty": 30, "forty": 40, "fifty": 50,
	"sixty": 60, "seventy": 70, "eighty": 80, "ninety": 90,
}

var scaleWords = map[string]float64{
	"hundred": 100, "thousand": 1000,
}

// AnnotateNumbers finds every number in the sentence: digit tokens
// (including decimals, ratios, ranges) and English number word sequences
// such as "twenty five" or "one hundred and four". This mirrors the GATE
// number NER stage the paper relies on ("most NLP development tools ...
// annotate all numbers in a text with extremely high precision and
// recall").
func AnnotateNumbers(s Sentence) []NumberAnn {
	var anns []NumberAnn
	toks := s.Tokens
	for i := 0; i < len(toks); i++ {
		t := toks[i]
		if t.Kind == Number {
			ann := parseDigitNumber(t)
			ann.TokenIndex = i
			ann.TokenSpan = 1
			anns = append(anns, ann)
			continue
		}
		if t.Kind == Word {
			if ann, span, ok := parseWordNumber(toks, i); ok {
				ann.TokenIndex = i
				ann.TokenSpan = span
				anns = append(anns, ann)
				i += span - 1
			}
		}
	}
	return anns
}

// parseDigitNumber parses a digit token, handling decimals, blood-pressure
// ratios and numeric ranges.
func parseDigitNumber(t Token) NumberAnn {
	text := t.Text
	if k := strings.IndexByte(text, '/'); k > 0 {
		a, _ := strconv.ParseFloat(text[:k], 64)
		b, _ := strconv.ParseFloat(text[k+1:], 64)
		return NumberAnn{Text: text, Value: a, Value2: b, IsRatio: true}
	}
	if k := strings.IndexByte(text, '-'); k > 0 {
		a, _ := strconv.ParseFloat(text[:k], 64)
		b, _ := strconv.ParseFloat(text[k+1:], 64)
		return NumberAnn{Text: text, Value: a, Value2: b, IsRange: true}
	}
	v, _ := strconv.ParseFloat(text, 64)
	return NumberAnn{Text: text, Value: v}
}

// parseWordNumber attempts to parse an English number expression starting
// at token i. It returns the annotation, the token span consumed, and
// whether a number was found. Supported shapes: unit ("seventeen"), tens
// ("fifty"), tens+unit ("twenty five" / "twenty-five" via hyphenated word
// token), unit+scale [+and] [tens] [unit] ("one hundred and four").
func parseWordNumber(toks []Token, i int) (NumberAnn, int, bool) {
	w := toks[i].Lower()

	// Hyphenated compound like "twenty-five" arrives as one Word token.
	if k := strings.IndexByte(w, '-'); k > 0 {
		t1, ok1 := tensWords[w[:k]]
		u, ok2 := numberWords[w[k+1:]]
		if ok1 && ok2 {
			return NumberAnn{Text: toks[i].Text, Value: t1 + u, FromWords: true}, 1, true
		}
	}

	val, isTens := tensWords[w]
	if isTens {
		// Optional following unit: "twenty five".
		if i+1 < len(toks) && toks[i+1].Kind == Word {
			if u, ok := numberWords[toks[i+1].Lower()]; ok && u >= 1 && u <= 9 {
				return NumberAnn{Text: toks[i].Text + " " + toks[i+1].Text, Value: val + u, FromWords: true}, 2, true
			}
		}
		return NumberAnn{Text: toks[i].Text, Value: val, FromWords: true}, 1, true
	}

	unit, isUnit := numberWords[w]
	if !isUnit {
		return NumberAnn{}, 0, false
	}
	// Check for a scale word: "one hundred [and four]".
	if i+1 < len(toks) && toks[i+1].Kind == Word {
		if scale, ok := scaleWords[toks[i+1].Lower()]; ok {
			total := unit * scale
			span := 2
			j := i + 2
			// optional "and"
			if j < len(toks) && toks[j].Kind == Word && toks[j].Lower() == "and" {
				j++
			}
			if j < len(toks) && toks[j].Kind == Word {
				if t1, ok := tensWords[toks[j].Lower()]; ok {
					total += t1
					j++
					if j < len(toks) && toks[j].Kind == Word {
						if u, ok := numberWords[toks[j].Lower()]; ok && u >= 1 && u <= 9 {
							total += u
							j++
						}
					}
					span = j - i
				} else if u, ok := numberWords[toks[j].Lower()]; ok {
					total += u
					j++
					span = j - i
				}
			}
			text := joinTokenTexts(toks[i : i+span])
			return NumberAnn{Text: text, Value: total, FromWords: true}, span, true
		}
	}
	return NumberAnn{Text: toks[i].Text, Value: unit, FromWords: true}, 1, true
}

func joinTokenTexts(toks []Token) string {
	parts := make([]string, len(toks))
	for i, t := range toks {
		parts[i] = t.Text
	}
	return strings.Join(parts, " ")
}
