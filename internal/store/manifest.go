package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The segment manifest is the commit record of a compaction: it lists,
// per table, the segment files holding that table's compacted rows. A
// table may appear more than once — its segments in oldest → newest
// order, as minor compactions append new runs without rewriting the
// old ones; a major compaction collapses the table back to a single
// entry. The manifest is replaced atomically (write temp, fsync,
// rename, fsync dir), so a crash leaves either the old or the new
// manifest intact; the only way to observe a torn manifest is
// outside-the-protocol corruption, and then the store falls back to
// replaying whatever the WAL holds, reporting the loss rather than
// failing the open.
//
// Format:
//
//	"MEDEXMAN1\n"                 10-byte magic
//	uvarint generation
//	uvarint entry count
//	entries: table name, file name  (uvarint-length-prefixed strings)
//	uint32 CRC32(everything above)
const (
	manifestName  = "MANIFEST"
	manifestMagic = "MEDEXMAN1\n"
)

// segsDirFor is the single layout rule for where a WAL's segments
// live: a sibling directory named after the log file. A single-file
// store path/extracted.db gets path/extracted.db.segs/; a shard's
// shard-000/wal.log gets shard-000/wal.log.segs/.
func segsDirFor(walPath string) string { return walPath + ".segs" }

// manifestEntry maps one table to its segment file (relative to the
// segments directory).
type manifestEntry struct {
	table string
	file  string
}

// encodeManifest renders the manifest bytes for gen and entries.
func encodeManifest(gen uint64, entries []manifestEntry) []byte {
	buf := []byte(manifestMagic)
	buf = binary.AppendUvarint(buf, gen)
	buf = binary.AppendUvarint(buf, uint64(len(entries)))
	for _, e := range entries {
		buf = appendString(buf, e.table)
		buf = appendString(buf, e.file)
	}
	return binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// decodeManifest parses and verifies manifest bytes. Any deviation —
// short file, bad magic, bad CRC, trailing data — is ErrCorrupt.
func decodeManifest(buf []byte) (gen uint64, entries []manifestEntry, err error) {
	if len(buf) < len(manifestMagic)+4 || string(buf[:len(manifestMagic)]) != manifestMagic {
		return 0, nil, ErrCorrupt
	}
	body, tail := buf[:len(buf)-4], buf[len(buf)-4:]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(tail) {
		return 0, nil, ErrCorrupt
	}
	rest := body[len(manifestMagic):]
	gen, k := binary.Uvarint(rest)
	if k <= 0 {
		return 0, nil, ErrCorrupt
	}
	rest = rest[k:]
	n, k := binary.Uvarint(rest)
	if k <= 0 || n > uint64(len(rest)) {
		return 0, nil, ErrCorrupt
	}
	rest = rest[k:]
	seenFile := make(map[string]bool, n)
	for i := uint64(0); i < n; i++ {
		var table, file string
		table, rest, err = readString(rest)
		if err != nil {
			return 0, nil, err
		}
		file, rest, err = readString(rest)
		if err != nil {
			return 0, nil, err
		}
		// A file name that escapes the segments directory or appears
		// twice is corruption, not a request. A repeated *table* is the
		// normal multi-segment case (oldest → newest runs).
		if table == "" || file == "" || file != filepath.Base(file) || seenFile[file] {
			return 0, nil, ErrCorrupt
		}
		seenFile[file] = true
		entries = append(entries, manifestEntry{table: table, file: file})
	}
	if len(rest) != 0 {
		return 0, nil, ErrCorrupt
	}
	return gen, entries, nil
}

// writeManifest atomically replaces dir's MANIFEST: temp file, fsync,
// rename, fsync dir.
func writeManifest(dir string, gen uint64, entries []manifestEntry) error {
	tmp := filepath.Join(dir, manifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(encodeManifest(gen, entries)); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a rename inside it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// segFileName names the segment file of table index ti at generation
// gen. The table name itself lives in the manifest, not the file name,
// so no table name can break the file-system namespace.
func segFileName(gen uint64, ti int) string {
	return fmt.Sprintf("seg-%06d-%03d.seg", gen, ti)
}

// pendingTable is one table's segment state between open and the
// replay of its create record: its segments in oldest → newest order
// and the number of distinct live keys they merge to (newer runs
// shadow older ones, so summing nRows would overcount).
type pendingTable struct {
	segs []*segment
	live int
}

// loadShardSegments reads a shard's segment state from segsDir.
//
// Returns the per-table open segments (oldest → newest, with their
// merged live-row count), the manifest generation, and whether anything
// was lost (a torn manifest, a missing or corrupt segment file): on
// loss the shard falls back to whatever its WAL replays — every opened
// segment is closed first, so the fallback path leaks no descriptors.
// A missing directory or missing manifest is the normal
// pre-first-compaction state, not loss. Stray files (crashed
// compaction temps, segments no longer in the manifest) are removed.
func loadShardSegments(segsDir string) (segs map[string]*pendingTable, gen uint64, lost bool, err error) {
	raw, rerr := os.ReadFile(filepath.Join(segsDir, manifestName))
	if rerr != nil {
		if os.IsNotExist(rerr) {
			// No manifest: any stray segment files are pre-commit
			// leftovers of a crashed first compaction.
			removeStraySegFiles(segsDir, nil)
			return nil, 0, false, nil
		}
		return nil, 0, false, rerr
	}
	gen, entries, derr := decodeManifest(raw)
	if derr != nil {
		// Torn manifest: ignore the segments entirely and replay the
		// WAL; the caller reports the loss. The segment files stay on
		// disk for forensics — the next successful compaction's
		// manifest supersedes them and removes them as strays.
		return nil, 0, true, nil
	}
	segs = make(map[string]*pendingTable, len(entries))
	keep := make(map[string]bool, len(entries))
	closeAll := func() {
		for _, pt := range segs {
			for _, sg := range pt.segs {
				sg.unref()
			}
		}
	}
	for _, e := range entries {
		sg, oerr := openSegment(filepath.Join(segsDir, e.file))
		if oerr != nil {
			// A manifest-listed segment that is missing or corrupt
			// voids the whole segment set: partial segment state would
			// silently drop one table's rows while keeping another's.
			closeAll()
			return nil, gen, true, nil
		}
		pt := segs[e.table]
		if pt == nil {
			pt = &pendingTable{}
			segs[e.table] = pt
		}
		if sg.schema.Name != e.table ||
			(len(pt.segs) > 0 && !schemaEqual(pt.segs[0].schema, sg.schema)) {
			sg.unref()
			closeAll()
			return nil, gen, true, nil
		}
		pt.segs = append(pt.segs, sg)
		keep[e.file] = true
	}
	for _, pt := range segs {
		live, cerr := segsLiveCount(pt.segs)
		if cerr != nil {
			closeAll()
			return nil, gen, true, nil
		}
		pt.live = live
	}
	removeStraySegFiles(segsDir, keep)
	return segs, gen, false, nil
}

// segsLiveCount counts the distinct keys of a merged (newest-wins)
// segment stack. One segment answers from its footer without touching
// blocks; a stack is the snapshot merge with an empty memtable.
func segsLiveCount(segs []*segment) (int, error) {
	if len(segs) == 1 {
		return segs[0].nRows, nil
	}
	ss := shardSnap{segs: segs}
	n := 0
	err := ss.iterate(nil, nil, nil, func(Row) bool { n++; return true })
	return n, err
}

// removeStraySegFiles deletes files in segsDir that are neither the
// manifest nor in keep: crashed-compaction temps and superseded
// segments.
func removeStraySegFiles(segsDir string, keep map[string]bool) {
	entries, err := os.ReadDir(segsDir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if name == manifestName || keep[name] || e.IsDir() {
			continue
		}
		if strings.HasPrefix(name, "seg-") || strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(segsDir, name))
		}
	}
}

// sortManifestEntries orders entries deterministically: by table name,
// preserving each table's oldest → newest run order (the order entries
// were appended in).
func sortManifestEntries(entries []manifestEntry) {
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].table < entries[j].table })
}
