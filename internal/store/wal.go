package store

import (
	"bufio"
	"encoding/binary"
	"hash/crc32"
	"io"
	"os"
)

// The write-ahead log is the single persistent representation of a DB:
// every mutation is appended as a CRC-framed record and the in-memory
// tables plus B-tree indexes are rebuilt by replay on open. A truncated
// or corrupted tail (crash mid-write) is detected by the CRC and cut off.
//
// Record framing:
//
//	uint32  payload length
//	uint32  CRC32 (IEEE) of payload
//	payload bytes
//
// Payload: 1 op byte, then op-specific fields, each string
// length-prefixed with uvarint.
const (
	opCreateTable byte = 1
	opInsert      byte = 2
	opDelete      byte = 3
	// opInsertBatch frames many rows of one table in a single record:
	// table name, uvarint row count, then the encoded rows. Because the
	// CRC covers the whole record, a crash mid-batch drops the batch
	// atomically on recovery.
	opInsertBatch byte = 4
	// opCreateIndex records a secondary index: table name, column name.
	// Replay re-creates the index (rebuilding it from the rows applied so
	// far), so indexes are durable and stay maintained by every later
	// record.
	opCreateIndex byte = 5
)

type wal struct {
	f   *os.File
	w   *bufio.Writer
	len int64
}

func openWAL(path string) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &wal{f: f, w: bufio.NewWriter(f), len: st.Size()}, nil
}

// replay streams every valid record to fn, then positions the file for
// appending. On a corrupt or truncated tail — a bad frame, a CRC
// mismatch, or a CRC-valid payload that fn rejects — it truncates the
// file to the last record that applied cleanly and reports how many
// records were dropped; it never fails on malformed input.
func (l *wal) replay(fn func(payload []byte) error) (dropped int, err error) {
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return 0, err
	}
	r := bufio.NewReader(l.f)
	var offset int64
	var head [8]byte
	for {
		if _, err := io.ReadFull(r, head[:]); err != nil {
			if err == io.EOF {
				break
			}
			dropped = 1 // partial header
			break
		}
		n := binary.BigEndian.Uint32(head[0:4])
		sum := binary.BigEndian.Uint32(head[4:8])
		if n > 1<<26 { // 64 MiB sanity bound
			dropped = 1
			break
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			dropped = 1
			break
		}
		if crc32.ChecksumIEEE(payload) != sum {
			dropped = 1
			break
		}
		if err := fn(payload); err != nil {
			dropped = 1
			break
		}
		offset += int64(8 + n)
	}
	if dropped > 0 {
		if err := l.f.Truncate(offset); err != nil {
			return dropped, err
		}
	}
	l.len = offset
	if _, err := l.f.Seek(offset, io.SeekStart); err != nil {
		return dropped, err
	}
	l.w.Reset(l.f)
	return dropped, nil
}

// append frames and buffers one record.
func (l *wal) append(payload []byte) error {
	var head [8]byte
	binary.BigEndian.PutUint32(head[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(head[4:8], crc32.ChecksumIEEE(payload))
	if _, err := l.w.Write(head[:]); err != nil {
		return err
	}
	if _, err := l.w.Write(payload); err != nil {
		return err
	}
	l.len += int64(8 + len(payload))
	return nil
}

func (l *wal) flush() error { return l.w.Flush() }

func (l *wal) sync() error {
	if err := l.w.Flush(); err != nil {
		return err
	}
	return l.f.Sync()
}

func (l *wal) close() error {
	if err := l.w.Flush(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// payload builders and readers.

// encodeBatchPayload frames an opInsertBatch payload: op byte, table
// name, uvarint row count, then the encoded rows. It is the single
// encoder for the format applyLogRecord's opInsertBatch case decodes;
// logInsertBatch and Compact both go through it.
func encodeBatchPayload(table string, rows []Row) []byte {
	payload := []byte{opInsertBatch}
	payload = appendString(payload, table)
	payload = binary.AppendUvarint(payload, uint64(len(rows)))
	for _, row := range rows {
		payload = encodeRow(payload, row)
	}
	return payload
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func readString(buf []byte) (string, []byte, error) {
	u, k := binary.Uvarint(buf)
	if k <= 0 || uint64(len(buf[k:])) < u {
		return "", nil, ErrCorrupt
	}
	return string(buf[k : k+int(u)]), buf[k+int(u):], nil
}
