package store

import (
	"encoding/binary"
	"hash/crc32"
)

// Per-segment bloom filters let a point lookup reject a run that cannot
// hold its key without touching the file: once minor compactions stack
// runs, a miss would otherwise pay one block read + CRC + decode per
// run whose zone map covers the key. The filter is built over the
// encoded primary keys while the segment is written and persisted in
// the extended footer (see segment.go). ~10 bits per key with 7 probes
// gives a ~1% false-positive rate; a false positive only costs the
// block read the filter would have saved, never a wrong answer.
//
// Filter region encoding (self-validating — it carries its own CRC so
// a corrupt filter degrades to filter-absent reads instead of failing
// the segment):
//
//	"BLM1"              4-byte magic
//	uvarint k           probe count
//	uvarint nbits       bit-array size (a multiple of 8)
//	bits                nbits/8 bytes
//	uint32 CRC32(everything above)
const (
	bloomMagic      = "BLM1"
	bloomBitsPerKey = 10
	bloomHashes     = 7
	bloomMaxBits    = uint64(segMaxBlockLen) * 8
)

// bloomFilter answers "might this segment hold the key?" from k probe
// positions derived by double hashing. Immutable once built/decoded.
type bloomFilter struct {
	k     uint32
	nbits uint64
	bits  []byte
}

// bloomHash derives the two independent 64-bit hashes the k probe
// positions are generated from: FNV-1a for h1, a murmur-style finalizer
// of it for h2 (forced odd so successive probes never collapse).
func bloomHash(key []byte) (h1, h2 uint64) {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h1 = uint64(offset64)
	for _, b := range key {
		h1 ^= uint64(b)
		h1 *= prime64
	}
	return h1, bloomMix(h1)
}

// bloomHashString is bloomHash over a string key (index posting pks are
// stored as strings); duplicated to keep the hot resolve path
// allocation-free.
func bloomHashString(key string) (h1, h2 uint64) {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h1 = uint64(offset64)
	for i := 0; i < len(key); i++ {
		h1 ^= uint64(key[i])
		h1 *= prime64
	}
	return h1, bloomMix(h1)
}

// bloomMix finalizes h1 into an independent second hash.
func bloomMix(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h | 1
}

// mayContain reports whether the key hashing to (h1, h2) might be in
// the set. False means definitely absent.
func (bf *bloomFilter) mayContain(h1, h2 uint64) bool {
	for i := uint64(0); i < uint64(bf.k); i++ {
		pos := (h1 + i*h2) % bf.nbits
		if bf.bits[pos>>3]&(1<<(pos&7)) == 0 {
			return false
		}
	}
	return true
}

// bloomBuilder accumulates key hashes during a segment write; the bit
// array is sized from the final key count, so the writer never guesses.
type bloomBuilder struct {
	hashes []uint64 // (h1, h2) pairs
}

func (b *bloomBuilder) add(key []byte) {
	h1, h2 := bloomHash(key)
	b.hashes = append(b.hashes, h1, h2)
}

// build sizes and fills the filter; nil when no keys were added (an
// empty segment needs no filter).
func (b *bloomBuilder) build() *bloomFilter {
	n := len(b.hashes) / 2
	if n == 0 {
		return nil
	}
	nbits := uint64(n) * bloomBitsPerKey
	if nbits < 64 {
		nbits = 64
	}
	nbits = (nbits + 7) &^ 7 // whole bytes
	bf := &bloomFilter{k: bloomHashes, nbits: nbits, bits: make([]byte, nbits/8)}
	for i := 0; i < len(b.hashes); i += 2 {
		h1, h2 := b.hashes[i], b.hashes[i+1]
		for j := uint64(0); j < uint64(bf.k); j++ {
			pos := (h1 + j*h2) % nbits
			bf.bits[pos>>3] |= 1 << (pos & 7)
		}
	}
	return bf
}

// encode renders the self-validating filter region.
func (bf *bloomFilter) encode() []byte {
	buf := []byte(bloomMagic)
	buf = binary.AppendUvarint(buf, uint64(bf.k))
	buf = binary.AppendUvarint(buf, bf.nbits)
	buf = append(buf, bf.bits...)
	return binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// decodeBloom parses a filter region. ANY deviation — bad magic, bad
// CRC, impossible parameters, trailing bytes — returns nil: filter
// corruption degrades to filter-absent reads, never a read failure.
func decodeBloom(buf []byte) *bloomFilter {
	if len(buf) < len(bloomMagic)+4 || string(buf[:len(bloomMagic)]) != bloomMagic {
		return nil
	}
	body, tail := buf[:len(buf)-4], buf[len(buf)-4:]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(tail) {
		return nil
	}
	rest := body[len(bloomMagic):]
	k, n := binary.Uvarint(rest)
	if n <= 0 || k == 0 || k > 64 {
		return nil
	}
	rest = rest[n:]
	nbits, n := binary.Uvarint(rest)
	if n <= 0 || nbits == 0 || nbits%8 != 0 || nbits > bloomMaxBits {
		return nil
	}
	rest = rest[n:]
	if uint64(len(rest)) != nbits/8 {
		return nil
	}
	return &bloomFilter{k: uint32(k), nbits: nbits, bits: rest}
}
