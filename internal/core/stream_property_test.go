package core

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/records"
)

// TestProcessStreamProperty is a randomized property test of the
// streaming pipeline: for arbitrary worker counts, stream lengths and
// early-break points, ProcessStream must yield every record in input
// order with the right content, and release all of its goroutines —
// including when the consumer abandons the iteration mid-stream.
func TestProcessStreamProperty(t *testing.T) {
	sys, err := NewSystem(Config{Strategy: LinkGrammar})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	baseline := runtime.NumGoroutine()

	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(50)
		workers := rng.Intn(7) // 0 selects GOMAXPROCS, 1 the sequential path
		breakAt := -1          // consume everything
		if n > 0 && rng.Intn(2) == 0 {
			breakAt = rng.Intn(n)
		}

		// Minimal records: a Patient section only, so the trial spends
		// its time in the streaming machinery rather than the parser.
		recs := make([]records.Record, n)
		for i := range recs {
			recs[i] = records.Record{
				ID:   i,
				Text: fmt.Sprintf("Patient:  %d\n", 1000+i),
			}
		}

		seen := 0
		for i, ex := range sys.ProcessStream(context.Background(), recordValues(recs), workers) {
			if i != seen {
				t.Fatalf("trial %d (n=%d w=%d): yielded index %d, want %d",
					trial, n, workers, i, seen)
			}
			if ex.Patient != 1000+i {
				t.Fatalf("trial %d (n=%d w=%d): record %d extracted patient %d",
					trial, n, workers, i, ex.Patient)
			}
			seen++
			if breakAt >= 0 && seen > breakAt {
				break
			}
		}
		want := n
		if breakAt >= 0 && breakAt+1 < n {
			want = breakAt + 1
		}
		if seen != want {
			t.Fatalf("trial %d (n=%d w=%d breakAt=%d): yielded %d records, want %d",
				trial, n, workers, breakAt, seen, want)
		}
	}

	// Every trial's pool must have shut down: the goroutine count falls
	// back to (about) the pre-test baseline once in-flight workers have
	// observed the stop channel.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= baseline+2 {
			break
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d running, baseline %d\n%s",
				g, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// recordValues is slices.Values without pulling slices into every test
// file (and mirrors how callers feed lazily generated streams).
func recordValues(recs []records.Record) func(yield func(records.Record) bool) {
	return func(yield func(records.Record) bool) {
		for _, r := range recs {
			if !yield(r) {
				return
			}
		}
	}
}
