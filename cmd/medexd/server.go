package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/records"
	"repro/internal/store"
)

// server owns the daemon's runtime state: the engine, the extraction
// system, the warehouse facade over it, and the single-writer ingester
// that serializes all writes. Handlers never touch the engine's write
// path directly — every mutation goes through the ingester, so row ids
// never collide and acknowledgment implies durability.
type server struct {
	cfg config
	db  store.Engine
	sys *core.System
	wh  *core.Warehouse
	ing *core.Ingester

	draining atomic.Bool
	batches  atomic.Int64 // acknowledged ingest batches, for response ids
	started  time.Time
}

func newServer(cfg config, db store.Engine, sys *core.System, wh *core.Warehouse) *server {
	return &server{
		cfg: cfg,
		db:  db,
		sys: sys,
		wh:  wh,
		ing: core.NewIngester(db, core.IngestConfig{
			QueueDepth: cfg.QueueDepth,
			MaxGroup:   cfg.MaxGroup,
			NoSync:     cfg.NoSync,
		}),
		started: time.Now(),
	}
}

// beginDrain flips the server read-only for new work: ingest and
// readiness report 503 while the HTTP server shuts down and the
// ingester drains its queue.
func (s *server) beginDrain() { s.draining.Store(true) }

// routes builds the handler tree. Read endpoints share one timeout
// handler so a slow scan cannot hold a connection forever; ingest
// manages its own deadline because it owns a request-scoped context
// that must also cover the persistence wait.
func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/ingest", s.handleIngest)

	read := http.NewServeMux()
	read.HandleFunc("GET /v1/query", s.handleQuery)
	read.HandleFunc("POST /v1/ask", s.handleAsk)
	read.HandleFunc("GET /v1/patient/{id}", s.handlePatient)
	read.HandleFunc("GET /v1/prevalence", s.handlePrevalence)
	read.HandleFunc("GET /v1/stats", s.handleStats)
	timeoutBody := `{"error":"request timed out"}`
	mux.Handle("GET /v1/", http.TimeoutHandler(read, s.cfg.QueryTimeout, timeoutBody))
	mux.Handle("POST /v1/ask", http.TimeoutHandler(read, s.cfg.QueryTimeout, timeoutBody))

	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (s *server) errorf(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

type ingestResponse struct {
	Batch   int64 `json:"batch"`
	Records int   `json:"records"`
	Rows    int   `json:"rows"`
	Durable bool  `json:"durable"`
}

// handleIngest is the write path: decode an NDJSON stream of records,
// extract them through the parallel pipeline, and submit the batch to
// the single-writer ingester. The 202 acknowledgment is sent only after
// the batch's rows — and the fsync covering them — have succeeded, so
// an acked batch survives a crash. Overload never buffers: a full queue
// answers 429 with Retry-After, a body over -max-body answers 413, and
// a stalled client is cut off by the server's read timeout.
func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		s.errorf(w, http.StatusServiceUnavailable, "draining: server is shutting down")
		return
	}
	if h := s.db.Health(); h.ReadOnly {
		s.errorf(w, http.StatusServiceUnavailable, "engine is read-only: %s (reopen the database to recover)", h.Reason)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.IngestTimeout)
	defer cancel()
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)

	var decErr error
	nrec, tooMany := 0, false
	seq := func(yield func(records.Record) bool) {
		for rec, err := range records.DecodeStream(ctx, body) {
			if err != nil {
				decErr = err
				return
			}
			if nrec++; nrec > s.cfg.MaxBatch {
				tooMany = true
				return
			}
			if !yield(rec) {
				return
			}
		}
	}
	exs := make([]core.Extraction, 0, 64)
	for _, ex := range s.sys.ProcessStream(ctx, seq, s.cfg.Workers) {
		exs = append(exs, ex)
	}

	switch {
	case tooMany:
		s.errorf(w, http.StatusRequestEntityTooLarge, "batch exceeds -max-batch=%d records", s.cfg.MaxBatch)
		return
	case decErr != nil:
		var tooLarge *http.MaxBytesError
		if errors.As(decErr, &tooLarge) {
			s.errorf(w, http.StatusRequestEntityTooLarge, "body exceeds -max-body=%d bytes", s.cfg.MaxBody)
			return
		}
		if ctx.Err() != nil {
			s.errorf(w, http.StatusRequestTimeout, "reading request: %v", ctx.Err())
			return
		}
		s.errorf(w, http.StatusBadRequest, "decoding records: %v", decErr)
		return
	case ctx.Err() != nil:
		// Extraction was cut short; submitting a partial batch would
		// silently drop the tail, so refuse the whole request.
		s.errorf(w, http.StatusRequestTimeout, "extraction timed out: %v", ctx.Err())
		return
	case len(exs) == 0:
		s.errorf(w, http.StatusBadRequest, "no records in request body")
		return
	}

	rows, err := s.ing.Submit(ctx, exs)
	switch {
	case errors.Is(err, core.ErrBackpressure):
		w.Header().Set("Retry-After", "1")
		s.errorf(w, http.StatusTooManyRequests, "ingest queue full (%d batches); retry with backoff", s.cfg.QueueDepth)
		return
	case errors.Is(err, core.ErrIngesterClosed):
		w.Header().Set("Retry-After", "1")
		s.errorf(w, http.StatusServiceUnavailable, "draining: server is shutting down")
		return
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		// The batch is queued but unacknowledged: it may persist, but
		// the client must treat it as lost and retry.
		s.errorf(w, http.StatusServiceUnavailable, "timed out waiting for durability; batch not acknowledged")
		return
	case err != nil:
		if h := s.db.Health(); h.ReadOnly {
			s.errorf(w, http.StatusServiceUnavailable, "engine is read-only: %s (reopen the database to recover)", h.Reason)
			return
		}
		s.errorf(w, http.StatusInternalServerError, "persisting batch: %v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, ingestResponse{
		Batch:   s.batches.Add(1),
		Records: len(exs),
		Rows:    rows,
		Durable: !s.cfg.NoSync,
	})
}

type condJSON struct {
	Attr         string   `json:"attr"`
	Term         string   `json:"term,omitempty"`
	Min          *float64 `json:"min,omitempty"`
	Max          *float64 `json:"max,omitempty"`
	MinExclusive bool     `json:"minExclusive,omitempty"`
	MaxExclusive bool     `json:"maxExclusive,omitempty"`
}

func (c condJSON) cond() core.Cond {
	return core.Cond{
		Attr: c.Attr, Term: c.Term,
		Min: c.Min, Max: c.Max,
		MinExcl: c.MinExclusive, MaxExcl: c.MaxExclusive,
	}
}

type queryStatsJSON struct {
	Conds        int    `json:"conds"`
	IndexedConds int    `json:"indexedConds"`
	IndexProbes  int    `json:"indexProbes"`
	RowsExamined int    `json:"rowsExamined"`
	FullScans    int    `json:"fullScans"`
	Shards       int    `json:"shards"`
	BloomSkips   int    `json:"bloomSkips"`
	CacheHits    int    `json:"cacheHits"`
	CacheMisses  int    `json:"cacheMisses"`
	Health       string `json:"health,omitempty"` // set when the engine is degraded
}

func (s *server) statsJSON(qs core.QueryStats) queryStatsJSON {
	out := queryStatsJSON{
		Conds:        qs.Conds,
		IndexedConds: qs.IndexedConds,
		IndexProbes:  qs.IndexProbes,
		RowsExamined: qs.RowsExamined,
		FullScans:    qs.FullScans,
		Shards:       qs.Shards,
		BloomSkips:   qs.BloomSkips,
		CacheHits:    qs.CacheHits,
		CacheMisses:  qs.CacheMisses,
	}
	if h := s.db.Health(); !h.Ok() {
		out.Health = h.String()
	}
	return out
}

type rowJSON struct {
	Patient   int64   `json:"patient"`
	Attribute string  `json:"attribute"`
	Value     string  `json:"value,omitempty"`
	Numeric   float64 `json:"numeric,omitempty"`
}

// handleQuery answers a single-condition question from URL parameters:
// attr (required), value (equality on the concept term), min/max
// (inclusive numeric bounds). rows=true returns matching attribute rows
// instead of patient ids.
func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	attr := q.Get("attr")
	if attr == "" {
		s.errorf(w, http.StatusBadRequest, "query: attr parameter is required")
		return
	}
	cond := core.Cond{Attr: attr, Term: q.Get("value")}
	for _, bound := range []struct {
		param string
		dst   **float64
	}{{"min", &cond.Min}, {"max", &cond.Max}} {
		if v := q.Get(bound.param); v != "" {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				s.errorf(w, http.StatusBadRequest, "query: %s=%q is not a number", bound.param, v)
				return
			}
			*bound.dst = &f
		}
	}

	if q.Get("rows") == "true" {
		matched, qs, err := s.wh.Rows(cond)
		if err != nil {
			s.errorf(w, http.StatusBadRequest, "query: %v", err)
			return
		}
		rows := make([]rowJSON, len(matched))
		for i, m := range matched {
			rows[i] = rowJSON{Patient: m.Patient, Attribute: m.Attribute, Value: m.Value, Numeric: m.Numeric}
		}
		writeJSON(w, http.StatusOK, map[string]any{"rows": rows, "stats": s.statsJSON(qs)})
		return
	}
	patients, qs, err := s.wh.Ask(cond)
	if err != nil {
		s.errorf(w, http.StatusBadRequest, "query: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"patients": patients, "stats": s.statsJSON(qs)})
}

// handleAsk answers a multi-condition question: the patients satisfying
// every condition in the posted JSON body.
func (s *server) handleAsk(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Conds []condJSON `json:"conds"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		s.errorf(w, http.StatusBadRequest, "ask: decoding request: %v", err)
		return
	}
	if len(req.Conds) == 0 {
		s.errorf(w, http.StatusBadRequest, "ask: at least one condition is required")
		return
	}
	conds := make([]core.Cond, len(req.Conds))
	for i, c := range req.Conds {
		conds[i] = c.cond()
	}
	patients, qs, err := s.wh.Ask(conds...)
	if err != nil {
		s.errorf(w, http.StatusBadRequest, "ask: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"patients": patients, "stats": s.statsJSON(qs)})
}

// handlePatient returns every attribute row of one patient's chart.
func (s *server) handlePatient(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		s.errorf(w, http.StatusBadRequest, "patient: id %q is not an integer", r.PathValue("id"))
		return
	}
	chart, err := s.wh.Patient(id)
	if err != nil {
		s.errorf(w, http.StatusInternalServerError, "patient: %v", err)
		return
	}
	rows := make([]rowJSON, len(chart))
	for i, m := range chart {
		rows[i] = rowJSON{Patient: m.Patient, Attribute: m.Attribute, Value: m.Value, Numeric: m.Numeric}
	}
	writeJSON(w, http.StatusOK, map[string]any{"patient": id, "rows": rows})
}

// handlePrevalence returns the value histogram of one attribute.
func (s *server) handlePrevalence(w http.ResponseWriter, r *http.Request) {
	attr := r.URL.Query().Get("attr")
	if attr == "" {
		s.errorf(w, http.StatusBadRequest, "prevalence: attr parameter is required")
		return
	}
	hist, err := s.wh.Prevalence(attr)
	if err != nil {
		s.errorf(w, http.StatusInternalServerError, "prevalence: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"attr": attr, "prevalence": hist})
}

type healthJSON struct {
	Status            string `json:"status"` // "ok" or the degradation summary
	ReadOnly          bool   `json:"readOnly"`
	FailedShards      []int  `json:"failedShards,omitempty"`
	RecoveredWithLoss bool   `json:"recoveredWithLoss"`
	DroppedRecords    int    `json:"droppedRecords,omitempty"`
}

func healthFrom(h store.Health) healthJSON {
	return healthJSON{
		Status:            h.String(),
		ReadOnly:          h.ReadOnly,
		FailedShards:      h.FailedShards,
		RecoveredWithLoss: h.RecoveredWithLoss,
		DroppedRecords:    h.DroppedRecords,
	}
}

// handleStats is the monitoring endpoint: engine health, table,
// ingest and background-compaction counters, log size.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	tbl, err := s.db.Table(core.ResultTable)
	var tstats store.Stats
	if err == nil {
		tstats = tbl.Stats()
	}
	ist := s.ing.Stats()
	cst := s.db.CompactionStats()
	classifier := map[string]any{"backend": s.cfg.Backend, "trained": false}
	if s.sys.Smoking != nil {
		classifier["backend"] = s.sys.Smoking.Backend()
		classifier["trained"] = true
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"uptime":     time.Since(s.started).Round(time.Millisecond).String(),
		"draining":   s.draining.Load(),
		"classifier": classifier,
		"health":     healthFrom(s.db.Health()),
		"shards":     s.db.Shards(),
		"logBytes":   s.db.LogSize(),
		"table": map[string]any{
			"rows":         tstats.Rows,
			"segments":     tstats.Segments,
			"failedShards": tstats.FailedShards,
			"indexes":      tstats.IndexNames,
		},
		"ingest": map[string]any{
			"batches":   ist.Batches,
			"rows":      ist.Rows,
			"groups":    ist.Groups,
			"rejected":  ist.Rejected,
			"queued":    ist.Queued,
			"peakQueue": ist.PeakQueue,
		},
		"compaction": map[string]any{
			"minorRuns":      cst.MinorRuns,
			"majorRuns":      cst.MajorRuns,
			"rowsRewritten":  cst.RowsRewritten,
			"bytesRewritten": cst.BytesRewritten,
			"backlog":        cst.Backlog,
			"lastError":      cst.LastError,
		},
		"cache": map[string]any{
			"capBytes":   tstats.Cache.CapBytes,
			"bytes":      tstats.Cache.Bytes,
			"entries":    tstats.Cache.Entries,
			"hits":       tstats.Cache.Hits,
			"misses":     tstats.Cache.Misses,
			"evictions":  tstats.Cache.Evictions,
			"bloomSkips": tstats.Cache.BloomSkips,
		},
	})
}

// handleHealthz is process liveness: the daemon is up and serving.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// handleReadyz is traffic readiness. Draining answers 503 so a load
// balancer stops routing before shutdown completes; a read-only engine
// stays ready (reads still work) but reports its degraded mode.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "reason": "draining"})
		return
	}
	h := s.db.Health()
	mode := "read-write"
	if h.ReadOnly {
		mode = "read-only"
	}
	writeJSON(w, http.StatusOK, map[string]any{"ready": true, "mode": mode, "health": h.String()})
}
