package core

import (
	"testing"

	"repro/internal/records"
)

// minCoveragePerLabel is the floor the embedded coverage corpus must
// meet: every label of every categorical field represented at least
// twice, so both backends always have more than one example per
// centroid/leaf to train on.
const minCoveragePerLabel = 2

// TestCoverageCorpusRepresentsEveryLabel fails the moment a label is
// added to a CategoricalField without at least two representative
// records in the embedded coverage corpus — the failure names the field
// and label so the fix is obvious.
func TestCoverageCorpusRepresentsEveryLabel(t *testing.T) {
	recs := records.CoverageCorpus()
	if len(recs) == 0 {
		t.Fatal("coverage corpus is empty")
	}
	for _, f := range CategoricalFields() {
		counts := map[string]int{}
		for _, r := range recs {
			if label := f.Gold(r.Gold); label != "" {
				counts[label]++
			}
		}
		known := map[string]bool{}
		for _, label := range f.Labels {
			known[label] = true
			if counts[label] < minCoveragePerLabel {
				t.Errorf("field %q label %q has %d coverage records, want >= %d",
					f.Attr, label, counts[label], minCoveragePerLabel)
			}
		}
		for label := range counts {
			if !known[label] {
				t.Errorf("coverage corpus uses label %q unknown to field %q (labels %v)",
					label, f.Attr, f.Labels)
			}
		}
	}
}

// TestCoverageCorpusClassifiable asserts every coverage record actually
// reaches the classifiers: its section is found and both the feature
// and token views are non-empty, and each backend family trains a model
// that covers every label.
func TestCoverageCorpusClassifiable(t *testing.T) {
	recs := records.CoverageCorpus()
	for _, f := range CategoricalFields() {
		labeled := 0
		for _, r := range recs {
			if f.Gold(r.Gold) != "" {
				labeled++
			}
		}
		exs := f.Examples(recs)
		if len(exs) != labeled {
			t.Errorf("field %q: %d examples from %d labeled records (a section failed to resolve)",
				f.Attr, len(exs), labeled)
		}
		for i, e := range exs {
			if len(e.Features()) == 0 {
				t.Errorf("field %q example %d has an empty feature view", f.Attr, i)
			}
			if len(e.Tokens()) == 0 {
				t.Errorf("field %q example %d has an empty token view", f.Attr, i)
			}
		}
	}
}
