package textproc

import (
	"sort"
	"strings"
)

// Section is one header-delimited block of a semi-structured clinical
// record, e.g. "Past Medical History: Significant for diabetes, ...".
type Section struct {
	Header string // canonical header text without the trailing colon
	Body   string // everything after the colon up to the next header
	Start  int    // byte offset of the header in the record
}

// StandardHeaders is the fixed set of section headers used by the
// consultation notes in the paper's appendix. Each record begins sections
// with one of these strings followed by a colon. The order here is the
// canonical dictation order.
var StandardHeaders = []string{
	"Patient",
	"Chief Complaint",
	"History of Present Illness",
	"GYN History",
	"Past Medical History",
	"Past Surgical History",
	"Medications",
	"Allergies",
	"Social History",
	"Family History",
	"Review of Systems",
	"Physical examination",
	"Vitals",
	"HEENT",
	"Neck",
	"Chest",
	"Heart",
	"Abdomen",
	"Examination of Breasts",
}

// SplitSections splits a record into header-delimited sections. A header
// is a known header string at the start of a line followed by a colon.
// Unknown text before the first header is returned as a section with an
// empty header. The paper notes "One record is comprised of multiple
// sections, each of which begins with a fixed string. Therefore, it is
// easy to split the whole record into sections."
func SplitSections(record string) []Section {
	sectionSplitPasses.Add(1)
	type hit struct {
		header string
		start  int // offset of header text
		body   int // offset just past the colon
	}
	var hits []hit
	lower := strings.ToLower(record)
	for _, h := range StandardHeaders {
		needle := strings.ToLower(h)
		from := 0
		for {
			idx := strings.Index(lower[from:], needle)
			if idx < 0 {
				break
			}
			pos := from + idx
			from = pos + len(needle)
			// Must start a line.
			if pos > 0 && record[pos-1] != '\n' {
				continue
			}
			// Must be followed (possibly after spaces) by a colon.
			j := pos + len(needle)
			for j < len(record) && (record[j] == ' ' || record[j] == '\t') {
				j++
			}
			if j >= len(record) || record[j] != ':' {
				continue
			}
			hits = append(hits, hit{header: h, start: pos, body: j + 1})
		}
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].start < hits[j].start })

	var secs []Section
	if len(hits) == 0 {
		body := strings.TrimSpace(record)
		if body != "" {
			secs = append(secs, Section{Body: body})
		}
		return secs
	}
	if pre := strings.TrimSpace(record[:hits[0].start]); pre != "" {
		secs = append(secs, Section{Body: pre})
	}
	for i, h := range hits {
		end := len(record)
		if i+1 < len(hits) {
			end = hits[i+1].start
		}
		secs = append(secs, Section{
			Header: h.header,
			Body:   strings.TrimSpace(record[h.body:end]),
			Start:  h.start,
		})
	}
	return secs
}

// FindSection returns the first section with the given header
// (case-insensitive) and whether it was found.
func FindSection(secs []Section, header string) (Section, bool) {
	for _, s := range secs {
		if strings.EqualFold(s.Header, header) {
			return s, true
		}
	}
	return Section{}, false
}
