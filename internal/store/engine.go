package store

import (
	"fmt"
	"strings"
)

// Engine is the storage-engine abstraction the layers above the store
// program against: a durable (or in-memory) set of tables with
// transactional secondary indexes, compaction and crash recovery. *DB
// is the canonical implementation — a hash-partitioned set of Shards,
// of which the pre-shard single-WAL database is the one-shard special
// case. Callers that only need an Engine (core.PersistAll, the
// warehouse facade, the CLIs) stay agnostic of the shard count and of
// any future engine (e.g. a remote or multi-node store).
type Engine interface {
	// CreateTable creates a table with the given schema on every
	// shard; creating an existing table with an identical schema is a
	// no-op.
	CreateTable(s Schema) (*Table, error)
	// Table returns the named table, or an error if it does not exist.
	Table(name string) (*Table, error)
	// TableNames lists tables in sorted order.
	TableNames() []string
	// Shards returns the engine's partition count (1 for unsharded).
	Shards() int
	// Sync flushes buffered log records to stable storage.
	Sync() error
	// Compact runs a major compaction: every table's live state folds
	// into one segment per shard and the write-ahead log(s) truncate
	// to schema/index records plus post-capture residue. Background
	// minor compactions (see OpenShardedWithPolicy) happen on their
	// own; Compact remains the explicit full merge.
	Compact() error
	// CompactionStats reports compaction activity — minor/major run
	// counts, rows/bytes rewritten, trigger backlog and the last
	// compaction error — summed over shards.
	CompactionStats() CompactionStats
	// LogSize returns the total bytes of write-ahead log.
	LogSize() int64
	// RecoveredWithLoss reports whether opening truncated a corrupt
	// WAL tail on any shard.
	RecoveredWithLoss() bool
	// Health reports the engine's degradation state — the
	// failed-compaction write latch and recovery losses — so callers
	// (daemons, CLIs) can act on it up front instead of discovering a
	// dead shard via the first failed write.
	Health() Health
	// Close flushes and closes the engine.
	Close() error
}

var _ Engine = (*DB)(nil)

// Health is an engine's degradation report. The zero value means fully
// healthy: every shard accepts writes and recovery lost nothing.
type Health struct {
	// ReadOnly reports that at least one shard's durable log was lost
	// to a failed compaction swap: the shard (and so the engine)
	// refuses writes until the database is reopened, but reads keep
	// serving the committed state.
	ReadOnly bool
	// FailedShards lists the shard ids refusing writes, in order.
	FailedShards []int
	// Reason is the first failed shard's latched error, "" when none.
	Reason string
	// RecoveredWithLoss reports that open truncated a corrupt WAL tail
	// or fell back to WAL-only recovery after an unreadable segment
	// manifest on some shard. Writes still work; data from the torn
	// tail is gone.
	RecoveredWithLoss bool
	// DroppedRecords counts WAL records dropped during recovery,
	// summed over shards.
	DroppedRecords int
}

// Ok reports whether the engine is fully healthy — writable everywhere
// and recovered without loss.
func (h Health) Ok() bool {
	return !h.ReadOnly && !h.RecoveredWithLoss
}

// String renders the health state for logs and plan lines.
func (h Health) String() string {
	if h.Ok() {
		return "ok"
	}
	var parts []string
	if h.ReadOnly {
		parts = append(parts, fmt.Sprintf("read-only (%d shard(s) refusing writes: %s)",
			len(h.FailedShards), h.Reason))
	}
	if h.RecoveredWithLoss {
		parts = append(parts, fmt.Sprintf("recovered with loss (%d record(s) dropped)",
			h.DroppedRecords))
	}
	return strings.Join(parts, "; ")
}
