package id3_test

import (
	"fmt"

	"repro/internal/id3"
)

// Train on the paper's smoking examples and classify a held-out phrasing.
func ExampleTrain() {
	examples := []id3.Example{
		{Features: id3.ExtractFeatures("She quit smoking five years ago", id3.DefaultOptions()), Class: "former"},
		{Features: id3.ExtractFeatures("She stopped smoking last year", id3.DefaultOptions()), Class: "former"},
		{Features: id3.ExtractFeatures("She is currently a smoker", id3.DefaultOptions()), Class: "current"},
		{Features: id3.ExtractFeatures("Current smoker, one pack per day", id3.DefaultOptions()), Class: "current"},
		{Features: id3.ExtractFeatures("She has never smoked", id3.DefaultOptions()), Class: "never"},
		{Features: id3.ExtractFeatures("Denies tobacco use", id3.DefaultOptions()), Class: "never"},
	}
	tree := id3.Train(examples)
	probe := id3.ExtractFeatures("Patient quit smoking in 1995", id3.DefaultOptions())
	fmt.Println(tree.Classify(probe))
	// Output: former
}

// The §3.3 lemma option folds inflections into one Boolean feature.
func ExampleExtractFeatures() {
	feats := id3.ExtractFeatures("She denies smoking.", id3.DefaultOptions())
	fmt.Println(feats["deny"])
	// Output: true
}
