package store

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestGenSeedCorpora(t *testing.T) {
	if os.Getenv("GEN_FUZZ_SEEDS") == "" {
		t.Skip("set GEN_FUZZ_SEEDS=1 to regenerate")
	}
	wal := validWALBytes(t)
	walDir := filepath.Join("testdata", "fuzz", "FuzzWALReplay")
	codecDir := filepath.Join("testdata", "fuzz", "FuzzRowCodec")
	for _, d := range []string{walDir, codecDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	torn := wal[:len(wal)-3]
	flip := append([]byte(nil), wal...)
	flip[len(flip)/2] ^= 0xff
	walSeeds := map[string][]byte{
		"valid-log":  wal,
		"torn-tail":  torn,
		"bitflip":    flip,
		"empty":      {},
		"junk-frame": {0, 0, 0, 1, 0, 0, 0, 0, 42},
	}
	for name, data := range walSeeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(walDir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	shardWAL := validShardWALBytes(t, 1)
	shardDir := filepath.Join("testdata", "fuzz", "FuzzShardWALReplay")
	if err := os.MkdirAll(shardDir, 0o755); err != nil {
		t.Fatal(err)
	}
	shardTorn := shardWAL[:len(shardWAL)-3]
	shardFlip := append([]byte(nil), shardWAL...)
	shardFlip[len(shardFlip)/2] ^= 0xff
	shardSeeds := map[string][]byte{
		"valid-shard-log": shardWAL,
		"torn-tail":       shardTorn,
		"bitflip":         shardFlip,
		"empty":           {},
		"junk-frame":      {0, 0, 0, 1, 0, 0, 0, 0, 42},
	}
	for name, data := range shardSeeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(shardDir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	seg := validSegmentBytes(t)
	segDir := filepath.Join("testdata", "fuzz", "FuzzSegmentDecode")
	if err := os.MkdirAll(segDir, 0o755); err != nil {
		t.Fatal(err)
	}
	segTorn := seg[:len(seg)-3]
	segFlip := append([]byte(nil), seg...)
	segFlip[len(segFlip)/2] ^= 0xff
	segMeta := append([]byte(nil), seg...)
	segMeta[len(segMeta)-segTail2Len+2] ^= 0xff
	segFilter := append([]byte(nil), seg...)
	segFilter[segFilterOff(t, seg)] ^= 0xff
	segSeeds := map[string][]byte{
		"valid-segment":  seg,
		"torn-tail":      segTorn,
		"bitflip-body":   segFlip,
		"bitflip-meta":   segMeta,
		"bitflip-filter": segFilter,
		"legacy-f1":      legacySegmentBytes(t, seg),
		"empty":          {},
		"magic-only":     []byte(segMagic),
	}
	for name, data := range segSeeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(segDir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	codecSeeds := map[string]struct {
		data []byte
		n    int
	}{
		"full-row":   {encodeRow(nil, Row{Int(-7), Float(3.5), Str("pulse"), Bool(true)}), 4},
		"empty-str":  {encodeRow(nil, Row{Str(""), Int(0)}), 2},
		"bad-length": {[]byte{byte(TString), 0xff, 0xff, 0xff}, 1},
		"empty":      {[]byte{}, 1},
		"zero-type":  {[]byte{0}, 3},
	}
	for name, s := range codecSeeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\nint(%d)\n", s.data, s.n)
		if err := os.WriteFile(filepath.Join(codecDir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
