package store

import (
	"sync"
	"sync/atomic"
)

// CompactionPolicy configures automatic background compaction. The
// zero value selects every default threshold with the compactor
// enabled; OpenSharded (and Open) pass Disabled — background
// compaction is strictly opt-in via OpenShardedWithPolicy.
type CompactionPolicy struct {
	// MemRows wakes a shard's compactor once this many rows have been
	// logged on the shard since its last compaction. <= 0 selects
	// DefaultCompactMemRows.
	MemRows int
	// WALBytes wakes a shard's compactor once its write-ahead log
	// reaches this size. <= 0 selects DefaultCompactWALBytes.
	WALBytes int64
	// Fanout bounds each table's segment-run stack: when any table on
	// the shard holds at least this many runs, the next triggered
	// compaction is a major merge (collapsing the stack to one run)
	// instead of a minor one. <= 0 selects DefaultCompactFanout.
	Fanout int
	// Disabled turns background compaction off entirely; explicit
	// Compact calls still work.
	Disabled bool
}

// Default auto-compaction thresholds.
const (
	DefaultCompactMemRows  = 50_000
	DefaultCompactWALBytes = 64 << 20
	DefaultCompactFanout   = 8
)

// DefaultCompactionPolicy returns the enabled policy with every
// default threshold filled in.
func DefaultCompactionPolicy() CompactionPolicy {
	return CompactionPolicy{}.withDefaults()
}

// withDefaults fills unset thresholds.
func (p CompactionPolicy) withDefaults() CompactionPolicy {
	if p.MemRows <= 0 {
		p.MemRows = DefaultCompactMemRows
	}
	if p.WALBytes <= 0 {
		p.WALBytes = DefaultCompactWALBytes
	}
	if p.Fanout <= 0 {
		p.Fanout = DefaultCompactFanout
	}
	return p
}

// CompactionStats aggregates compaction activity for monitoring.
type CompactionStats struct {
	MinorRuns      int64 // memtable-only folds completed
	MajorRuns      int64 // full table merges completed
	RowsRewritten  int64 // rows written into new segment files
	BytesRewritten int64 // bytes of new segment files
	Backlog        int64 // rows logged since each shard's last compaction
	LastError      string
}

// compactionCounters is one shard's compaction telemetry; atomics so
// the write path and monitoring never take a compaction lock.
type compactionCounters struct {
	minor, major atomic.Int64
	rows, bytes  atomic.Int64
	errMu        sync.Mutex
	lastErr      string
}

func (c *compactionCounters) noteRun(mode compactMode, rows, bytes int64) {
	if mode == minorCompact {
		c.minor.Add(1)
	} else {
		c.major.Add(1)
	}
	c.rows.Add(rows)
	c.bytes.Add(bytes)
}

func (c *compactionCounters) noteError(err error) {
	c.errMu.Lock()
	c.lastErr = err.Error()
	c.errMu.Unlock()
}

func (c *compactionCounters) lastError() string {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	return c.lastErr
}

// CompactionStats sums compaction counters over the engine's shards.
func (db *DB) CompactionStats() CompactionStats {
	var cs CompactionStats
	for _, sh := range db.shards {
		addShardCompactionStats(&cs, sh)
	}
	return cs
}

func addShardCompactionStats(cs *CompactionStats, sh *Shard) {
	cs.MinorRuns += sh.cstats.minor.Load()
	cs.MajorRuns += sh.cstats.major.Load()
	cs.RowsRewritten += sh.cstats.rows.Load()
	cs.BytesRewritten += sh.cstats.bytes.Load()
	cs.Backlog += sh.pending.Load()
	if e := sh.cstats.lastError(); e != "" && cs.LastError == "" {
		cs.LastError = e
	}
}

// startCompactors launches one compactor goroutine per durable shard.
// Each sleeps on its shard's wake channel — fed by noteWrite when the
// policy thresholds trip — and runs minor compactions off the write
// path, escalating to a major merge when a table's run stack reaches
// the fan-out bound.
func (db *DB) startCompactors() {
	db.stopCh = make(chan struct{})
	for _, sh := range db.shards {
		if sh.log == nil {
			continue
		}
		sh.pol = db.pol
		sh.wakeCh = make(chan struct{}, 1)
		db.compWG.Add(1)
		go db.compactorLoop(sh)
	}
}

// stopCompactors signals every compactor and waits for in-flight
// compactions to reach their safe point (run completion — every
// intermediate crash window is already recoverable, but Close must not
// yank the engine out from under a live rewrite). Safe to call twice
// and without startCompactors.
func (db *DB) stopCompactors() {
	if db.stopCh == nil {
		return
	}
	db.stopOnce.Do(func() { close(db.stopCh) })
	db.compWG.Wait()
}

func (db *DB) compactorLoop(sh *Shard) {
	defer db.compWG.Done()
	for {
		select {
		case <-db.stopCh:
			return
		case <-sh.wakeCh:
		}
		db.autoCompact(sh)
	}
}

// autoCompact runs one background compaction if the thresholds still
// hold (a wake token posted during a compaction that already covered
// those writes is dropped here).
func (db *DB) autoCompact(sh *Shard) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if sh.pending.Load() < int64(sh.pol.MemRows) && sh.walLen.Load() < sh.pol.WALBytes {
		return
	}
	mode := minorCompact
	for _, ts := range sh.tables {
		ts.mu.RLock()
		runs := len(ts.segs)
		ts.mu.RUnlock()
		if runs >= sh.pol.Fanout {
			mode = majorCompact
			break
		}
	}
	// Errors are latched in the shard's counters (and, for swap
	// failures, in Health); the loop keeps serving later triggers.
	_ = db.compactShard(sh, mode)
}
