// Package eval implements the paper's evaluation measures: per-subject
// precision/recall for multi-valued medical term attributes, aggregated
// with the micro-averaged formulas of §5, plus simple accuracy counters
// for single-valued attributes.
package eval

import (
	"fmt"
	"strings"

	"repro/internal/lexicon"
)

// PR accumulates the paper's micro-averaged precision/recall:
//
//	P = Σ ETrue_i / Σ ETotal_i      R = Σ ETrue_i / Σ TInst_i
//
// where for subject i, ETrue is the number of extracted true terms,
// ETotal the number of extracted terms, TInst the number of true terms.
type PR struct {
	ETrue  int // Σ extracted true instances
	ETotal int // Σ extracted instances
	TInst  int // Σ true instances
}

// Add accumulates one subject's counts.
func (p *PR) Add(etrue, etotal, tinst int) {
	p.ETrue += etrue
	p.ETotal += etotal
	p.TInst += tinst
}

// AddSets accumulates one subject by comparing an extracted term set with
// the gold term set. Terms match when their normalized forms are equal
// (the same criterion the extractor itself uses).
func (p *PR) AddSets(extracted, gold []string) {
	goldNorm := map[string]bool{}
	for _, g := range gold {
		goldNorm[lexicon.Normalize(g)] = true
	}
	etrue := 0
	seen := map[string]bool{}
	for _, e := range extracted {
		n := lexicon.Normalize(e)
		if seen[n] {
			continue
		}
		seen[n] = true
		if goldNorm[n] {
			etrue++
		}
	}
	p.Add(etrue, len(seen), len(goldNorm))
}

// Precision is ΣETrue/ΣETotal; 1 when nothing was extracted and nothing
// was expected, 0 when extraction happened with no hits.
func (p PR) Precision() float64 {
	if p.ETotal == 0 {
		if p.TInst == 0 {
			return 1
		}
		return 0
	}
	return float64(p.ETrue) / float64(p.ETotal)
}

// Recall is ΣETrue/ΣTInst; 1 when nothing was expected.
func (p PR) Recall() float64 {
	if p.TInst == 0 {
		return 1
	}
	return float64(p.ETrue) / float64(p.TInst)
}

// F1 is the harmonic mean of precision and recall.
func (p PR) F1() float64 {
	pr, rc := p.Precision(), p.Recall()
	if pr+rc == 0 {
		return 0
	}
	return 2 * pr * rc / (pr + rc)
}

// String renders "P=xx.x% R=yy.y%".
func (p PR) String() string {
	return fmt.Sprintf("P=%.1f%% R=%.1f%%", 100*p.Precision(), 100*p.Recall())
}

// Accuracy counts exact-match outcomes for single-valued attributes
// (numeric fields are scored per attribute instance: extracted-and-equal
// counts for both precision and recall, matching the paper's 100% report).
type Accuracy struct {
	Correct int
	Wrong   int // extracted but incorrect
	Missed  int // present in gold, not extracted
}

// Add records one instance.
func (a *Accuracy) Add(extracted bool, correct bool) {
	switch {
	case extracted && correct:
		a.Correct++
	case extracted:
		a.Wrong++
	default:
		a.Missed++
	}
}

// Precision is correct / extracted.
func (a Accuracy) Precision() float64 {
	ex := a.Correct + a.Wrong
	if ex == 0 {
		return 1
	}
	return float64(a.Correct) / float64(ex)
}

// Recall is correct / total-present.
func (a Accuracy) Recall() float64 {
	tot := a.Correct + a.Wrong + a.Missed
	if tot == 0 {
		return 1
	}
	return float64(a.Correct) / float64(tot)
}

// String renders the counts and rates.
func (a Accuracy) String() string {
	return fmt.Sprintf("P=%.1f%% R=%.1f%% (correct=%d wrong=%d missed=%d)",
		100*a.Precision(), 100*a.Recall(), a.Correct, a.Wrong, a.Missed)
}

// Table renders rows of (label, PR) as an aligned text table, the format
// cmd/evaltab prints for Table 1.
func Table(title string, rows []struct {
	Label string
	PR    PR
}) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-35s %10s %10s\n", "Attribute Name", "Precision", "Recall")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-35s %9.1f%% %9.1f%%\n", r.Label, 100*r.PR.Precision(), 100*r.PR.Recall())
	}
	return b.String()
}
