package id3

// The paper motivates ID3's information-gain criterion with: "the ID3
// decision tree is supposed to use less features than other decision
// tree algorithms." TrainGini builds the same tree structure with the
// CART-style Gini impurity criterion instead, so the claim can be tested
// (ablation A6): compare FeatureCount and cross-validated accuracy.

// TrainGini builds a decision tree choosing splits by Gini impurity
// reduction.
func TrainGini(examples []Example) *Tree {
	feats := featureUniverse(examples)
	return trainCriterion(examples, feats, giniGain)
}

// trainCriterion is the shared recursive builder parameterized by the
// split criterion.
func trainCriterion(examples []Example, feats []string, criterion func([]Example, string) float64) *Tree {
	if len(examples) == 0 {
		return &Tree{leaf: true, class: ""}
	}
	maj, pure := majority(examples)
	if pure || len(feats) == 0 {
		return &Tree{leaf: true, class: maj}
	}
	best, bestGain := "", 0.0
	for _, f := range feats {
		if g := criterion(examples, f); g > bestGain+1e-12 {
			best, bestGain = f, g
		}
	}
	if best == "" {
		for _, f := range feats {
			yes := 0
			for _, e := range examples {
				if e.Features[f] {
					yes++
				}
			}
			if yes > 0 && yes < len(examples) {
				best = f
				break
			}
		}
	}
	if best == "" {
		return &Tree{leaf: true, class: maj}
	}
	var yes, no []Example
	for _, e := range examples {
		if e.Features[best] {
			yes = append(yes, e)
		} else {
			no = append(no, e)
		}
	}
	rest := make([]string, 0, len(feats)-1)
	for _, f := range feats {
		if f != best {
			rest = append(rest, f)
		}
	}
	t := &Tree{
		feature: best,
		yes:     trainCriterion(yes, rest, criterion),
		no:      trainCriterion(no, rest, criterion),
	}
	if t.yes.leaf && t.yes.class == "" {
		t.yes.class = maj
	}
	if t.no.leaf && t.no.class == "" {
		t.no.class = maj
	}
	return t
}

// gini computes the Gini impurity of the class distribution.
func gini(examples []Example) float64 {
	if len(examples) == 0 {
		return 0
	}
	counts := map[string]int{}
	for _, e := range examples {
		counts[e.Class]++
	}
	n := float64(len(examples))
	imp := 1.0
	for _, c := range counts {
		p := float64(c) / n
		imp -= p * p
	}
	return imp
}

// giniGain is the impurity reduction of splitting on feature f.
func giniGain(examples []Example, f string) float64 {
	var yes, no []Example
	for _, e := range examples {
		if e.Features[f] {
			yes = append(yes, e)
		} else {
			no = append(no, e)
		}
	}
	n := float64(len(examples))
	return gini(examples) -
		float64(len(yes))/n*gini(yes) -
		float64(len(no))/n*gini(no)
}

// CrossValidateWith is CrossValidate with a custom training function, so
// criteria can be compared under the identical fold protocol.
func CrossValidateWith(examples []Example, k, rounds int, seed int64, train func([]Example) *Tree) CVResult {
	return crossValidate(examples, k, rounds, seed, train)
}
