package ontology_test

import (
	"fmt"

	"repro/internal/ontology"
)

// Surface variants and synonyms resolve to one concept after
// normalization.
func ExampleOntology_Lookup() {
	ont := ontology.MustNew(ontology.Options{})
	defer ont.Close()
	for _, surface := range []string{"high blood pressures", "htn", "hypertension"} {
		c := ont.Lookup(surface)
		fmt.Printf("%s → %s (%s)\n", surface, c.Preferred, c.CUI)
	}
	// Output:
	// high blood pressures → hypertension (C0003)
	// htn → hypertension (C0003)
	// hypertension → hypertension (C0003)
}
