package store

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// --- bloom filter ---

// TestBloomFilterBasics pins the filter contract: no false negatives
// ever, a sane false-positive rate at the designed bits-per-key, and a
// decode that survives round-trips but degrades to nil on any
// corruption.
func TestBloomFilterBasics(t *testing.T) {
	var b bloomBuilder
	const n = 5000
	for i := 0; i < n; i++ {
		b.add(encodeKey(Int(int64(i))))
	}
	bf := b.build()
	if bf == nil {
		t.Fatal("build returned nil for a non-empty set")
	}
	for i := 0; i < n; i++ {
		if !bf.mayContain(bloomHash(encodeKey(Int(int64(i))))) {
			t.Fatalf("false negative for key %d", i)
		}
	}
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		if bf.mayContain(bloomHash(encodeKey(Int(int64(n + 1 + i))))) {
			fp++
		}
	}
	// ~1% designed; 5% is the alarm threshold for a broken hash.
	if rate := float64(fp) / probes; rate > 0.05 {
		t.Fatalf("false-positive rate %.3f, want < 0.05", rate)
	}

	// String and byte hashing must agree (the batch path hashes posting
	// pks without converting).
	for i := 0; i < 100; i++ {
		k := encodeKey(Int(int64(i)))
		h1a, h2a := bloomHash(k)
		h1b, h2b := bloomHashString(string(k))
		if h1a != h1b || h2a != h2b {
			t.Fatalf("bloomHash/bloomHashString disagree on key %d", i)
		}
	}

	enc := bf.encode()
	dec := decodeBloom(enc)
	if dec == nil || dec.k != bf.k || dec.nbits != bf.nbits {
		t.Fatalf("decode(encode) mismatch: %+v vs %+v", dec, bf)
	}
	// Any single-byte flip breaks the region CRC: decode must return
	// nil (degrade), never panic or accept.
	for off := range enc {
		bad := append([]byte(nil), enc...)
		bad[off] ^= 0xff
		if decodeBloom(bad) != nil {
			t.Fatalf("decode accepted a corrupt region (flip at %d)", off)
		}
	}
	for cut := 0; cut < len(enc); cut++ {
		if decodeBloom(enc[:cut]) != nil {
			t.Fatalf("decode accepted a truncated region (cut at %d)", cut)
		}
	}
	if (&bloomBuilder{}).build() != nil {
		t.Fatal("empty builder should build nil")
	}
}

// --- extended footer ---

// writeAttrSegment writes a fresh segment of n attribute rows with pks
// 1..n and returns its path.
func writeAttrSegment(t *testing.T, dir string, n int) string {
	t.Helper()
	path := filepath.Join(dir, "t.seg")
	w, err := newSegmentWriter(path, attrSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		if err := w.add(Row{Int(int64(i)), Int(int64(i % 7)), Str("pulse"), Str("v"), Float(float64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.finish(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestSegmentFilterPersisted pins the extended footer: a new segment
// carries a loadable filter, present keys always pass it, and a probe
// for an absent key inside the zone map is rejected without any block
// read.
func TestSegmentFilterPersisted(t *testing.T) {
	path := writeAttrSegment(t, t.TempDir(), 600)
	sg, err := openSegment(path)
	if err != nil {
		t.Fatal(err)
	}
	defer sg.unref()
	if sg.filter == nil {
		t.Fatal("new segment has no bloom filter")
	}
	var rs readStats
	for i := 1; i <= 600; i++ {
		row, ok, err := sg.get(encodeKey(Int(int64(i))), &rs)
		if err != nil || !ok || row[0].I != int64(i) {
			t.Fatalf("get(%d): ok=%v err=%v", i, ok, err)
		}
	}
	if rs.bloomSkips != 0 {
		t.Fatalf("present keys counted %d bloom skips", rs.bloomSkips)
	}
	// Absent keys inside the zone map: a sparse segment (even pks only)
	// makes every odd pk an in-zone miss the zone map cannot reject.
	// Nearly all must be filter-rejected; the rest are false positives.
	sparse := filepath.Join(t.TempDir(), "sparse.seg")
	w, err := newSegmentWriter(sparse, attrSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 600; i++ {
		if err := w.add(Row{Int(int64(2 * i)), Int(0), Str("pulse"), Str("v"), Float(0)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.finish(); err != nil {
		t.Fatal(err)
	}
	sg2, err := openSegment(sparse)
	if err != nil {
		t.Fatal(err)
	}
	defer sg2.unref()
	rs = readStats{}
	for i := 1; i <= 600; i++ {
		pk := int64(2*i + 1) // in [3,1201): inside the zone map, never stored
		if pk > 1199 {
			break
		}
		if _, ok, err := sg2.get(encodeKey(Int(pk)), &rs); ok || err != nil {
			t.Fatalf("get(%d): ok=%v err=%v, want miss", pk, ok, err)
		}
	}
	if rs.bloomSkips < 500 {
		t.Fatalf("in-zone misses produced only %d bloom skips", rs.bloomSkips)
	}
}

// TestBloomSkipsOnRunStack pins the end-to-end effect the filters
// exist for: on a stack of minor-compaction runs with disjoint keys, a
// point get of a key in the oldest run is filter-rejected by every
// newer run instead of paying a block read per run.
func TestBloomSkipsOnRunStack(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stack.db")
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable(attrSchema())
	if err != nil {
		t.Fatal(err)
	}
	// 4 runs of interleaved sparse keys: run r holds pks r, r+8, r+16 …
	// so every run's zone map covers the whole key range and zone maps
	// alone cannot reject anything.
	const runs, perRun = 4, 400
	for r := 0; r < runs; r++ {
		var rows []Row
		for i := 0; i < perRun; i++ {
			pk := int64(i*2*runs + 2*r) // even pks only; odds never exist
			rows = append(rows, Row{Int(pk), Int(pk % 5), Str("pulse"), Str("v"), Float(float64(pk))})
		}
		if err := tbl.InsertBatch(rows); err != nil {
			t.Fatal(err)
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	ts := tbl.shards[0]
	if len(ts.segs) != runs {
		t.Fatalf("expected %d runs, got %d", runs, len(ts.segs))
	}
	// A key in the oldest run (r=0) is inside every newer run's zone
	// map; the newer runs' filters must reject it without IO.
	var rs readStats
	row, ok, err := ts.segGet(encodeKey(Int(16)), &rs) // run 0 holds 16 (i=2, r=0)
	if err != nil || !ok || row[0].I != 16 {
		t.Fatalf("segGet(16): ok=%v err=%v", ok, err)
	}
	if rs.bloomSkips == 0 {
		t.Fatalf("probing through the run stack produced no bloom skips (stats %+v)", rs)
	}
	// An absent odd key must miss with (almost always) zero block
	// reads; across many probes the filter must reject nearly all.
	rs = readStats{}
	for pk := int64(1); pk < 2*runs*perRun; pk += 2 {
		if _, ok, err := ts.segGet(encodeKey(Int(pk)), &rs); ok || err != nil {
			t.Fatalf("segGet(%d): ok=%v err=%v, want miss", pk, ok, err)
		}
	}
	probes := int(runs * perRun) // one potential probe per run per key
	if rs.bloomSkips < probes/2 {
		t.Fatalf("absent-key probes: only %d bloom skips (stats %+v)", rs.bloomSkips, rs)
	}
}

// TestSegmentLegacyFooterReadable pins backward compatibility: a
// format-1 segment (20-byte tail, no filter region) — what every
// pre-bloom database holds on disk — opens and reads identically,
// just without a filter.
func TestSegmentLegacyFooterReadable(t *testing.T) {
	dir := t.TempDir()
	path := writeAttrSegment(t, dir, 600)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	legacy := filepath.Join(dir, "legacy.seg")
	if err := os.WriteFile(legacy, legacySegmentBytes(t, raw), 0o644); err != nil {
		t.Fatal(err)
	}
	sg, err := openSegment(legacy)
	if err != nil {
		t.Fatalf("legacy footer rejected: %v", err)
	}
	defer sg.unref()
	if sg.filter != nil {
		t.Fatal("legacy segment grew a filter from nowhere")
	}
	if sg.nRows != 600 {
		t.Fatalf("nRows = %d, want 600", sg.nRows)
	}
	for _, pk := range []int64{1, 256, 600} {
		if row, ok, err := sg.get(encodeKey(Int(pk)), nil); err != nil || !ok || row[0].I != pk {
			t.Fatalf("legacy get(%d): ok=%v err=%v", pk, ok, err)
		}
	}
	if _, ok, err := sg.get(encodeKey(Int(601)), nil); ok || err != nil {
		t.Fatalf("legacy get(601): ok=%v err=%v, want miss", ok, err)
	}
	it := newSegIter(sg, nil, nil, nil)
	n := 0
	for it.valid() {
		n++
		it.next()
	}
	if it.err != nil || n != 600 {
		t.Fatalf("legacy iteration: n=%d err=%v", n, it.err)
	}
}

// legacySegmentBytes converts a format-2 segment image to format 1 by
// dropping the filter region and rewriting the 20-byte tail. The tail
// CRC covers exactly index+schema in both formats, so it carries over.
func legacySegmentBytes(tb testing.TB, buf []byte) []byte {
	tb.Helper()
	if string(buf[len(buf)-8:]) != segTailMagic2 {
		tb.Fatalf("writer did not produce a %s tail", segTailMagic2)
	}
	tail := buf[len(buf)-segTail2Len:]
	filterLen := int(binary.BigEndian.Uint32(tail[8:12]))
	out := append([]byte(nil), buf[:len(buf)-segTail2Len-filterLen]...)
	out = append(out, tail[0:8]...)   // indexLen | schemaLen
	out = append(out, tail[12:16]...) // crc(index+schema)
	out = append(out, segTailMagic...)
	return out
}

// TestSegmentCorruptFilterFallsBack pins the degradation contract: a
// bit flip anywhere in the filter region costs the filter, never the
// segment — the open succeeds, reads are exact, and only bloomSkips
// disappear. Corrupting the filter *length* in the tail shifts the
// metadata offset and is footer corruption (ErrCorrupt), same as
// today's torn-tail class.
func TestSegmentCorruptFilterFallsBack(t *testing.T) {
	dir := t.TempDir()
	path := writeAttrSegment(t, dir, 600)
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tail := good[len(good)-segTail2Len:]
	filterLen := int(binary.BigEndian.Uint32(tail[8:12]))
	if filterLen == 0 {
		t.Fatal("no filter region to corrupt")
	}
	filterOff := len(good) - segTail2Len - filterLen
	p := filepath.Join(dir, "corrupt.seg")
	for off := filterOff; off < filterOff+filterLen; off += 37 { // sample offsets
		bad := append([]byte(nil), good...)
		bad[off] ^= 0xff
		if err := os.WriteFile(p, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		sg, err := openSegment(p)
		if err != nil {
			t.Fatalf("flip at %d: corrupt filter failed the open: %v", off, err)
		}
		if sg.filter != nil {
			t.Fatalf("flip at %d: corrupt filter decoded non-nil", off)
		}
		var rs readStats
		if row, ok, gerr := sg.get(encodeKey(Int(300)), &rs); gerr != nil || !ok || row[0].I != 300 {
			t.Fatalf("flip at %d: get(300): ok=%v err=%v", off, ok, gerr)
		}
		if rs.bloomSkips != 0 {
			t.Fatalf("flip at %d: filter-absent read counted bloom skips", off)
		}
		sg.unref()
	}
	// filterLen itself is covered by no CRC — but an absurd value moves
	// metaOff off the index, which the meta CRC catches: ErrCorrupt.
	bad := append([]byte(nil), good...)
	binary.BigEndian.PutUint32(bad[len(bad)-segTail2Len+8:], uint32(filterLen+8))
	if err := os.WriteFile(p, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if sg, err := openSegment(p); err == nil {
		sg.unref()
		t.Fatal("shifted filterLen accepted")
	}
}

// --- block cache ---

// TestBlockCacheLRU unit-tests the shared cache: byte-capacity
// eviction from the cold end, most-recently-used retention, oversize
// rejection, shrink-on-setCapacity and per-segment drop.
func TestBlockCacheLRU(t *testing.T) {
	c := newBlockCache(100)
	rows := []Row{{Int(1)}}
	keys := [][]byte{encodeKey(Int(1))}
	put := func(seg uint64, bi int, size int64) { c.put(blockKey{seg, bi}, rows, keys, size) }
	has := func(seg uint64, bi int) bool { _, _, ok := c.get(blockKey{seg, bi}); return ok }

	put(1, 0, 40)
	put(1, 1, 40)
	if !has(1, 0) || !has(1, 1) {
		t.Fatal("entries missing after put")
	}
	// Touch (1,0) so (1,1) is the cold end; a 40-byte insert must evict
	// exactly (1,1).
	has(1, 0)
	put(1, 2, 40)
	if !has(1, 0) || !has(1, 2) || has(1, 1) {
		t.Fatalf("LRU eviction picked the wrong entry")
	}
	if st := c.stats(); st.Evictions != 1 || st.Bytes != 80 || st.Entries != 2 {
		t.Fatalf("stats after eviction: %+v", st)
	}
	// Oversize entries are not cached at all.
	put(2, 0, 1000)
	if has(2, 0) {
		t.Fatal("oversize entry was cached")
	}
	// Shrink evicts immediately.
	c.setCapacity(40)
	if st := c.stats(); st.Bytes > 40 || st.Entries != 1 {
		t.Fatalf("stats after shrink: %+v", st)
	}
	// Capacity 0 disables storage.
	c.setCapacity(0)
	put(3, 0, 10)
	if st := c.stats(); st.Entries != 0 {
		t.Fatalf("cap 0 still stored entries: %+v", st)
	}
	// dropSegment removes exactly one segment's entries.
	c.setCapacity(1000)
	put(4, 0, 10)
	put(4, 1, 10)
	put(5, 0, 10)
	c.dropSegment(4)
	if c.segEntries(4) != 0 || c.segEntries(5) != 1 {
		t.Fatalf("dropSegment: seg4=%d seg5=%d", c.segEntries(4), c.segEntries(5))
	}
	var nilCache *blockCache
	if st := nilCache.stats(); st != (CacheStats{}) {
		t.Fatalf("nil cache stats = %+v", st)
	}
}

// TestQueryCacheCounters pins the end-to-end cache effect the
// QueryStats surface: the first indexed query over segment-resident
// rows pays misses, a repeat serves the same blocks as hits, and
// disabling the cache goes back to misses.
func TestQueryCacheCounters(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.db")
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable(attrSchema())
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex("attribute"); err != nil {
		t.Fatal(err)
	}
	var rows []Row
	for i := 0; i < 2000; i++ {
		attr := "pulse"
		if i%2 == 1 {
			attr = "smoking"
		}
		rows = append(rows, Row{Int(int64(i)), Int(int64(i % 90)), Str(attr), Str("v"), Float(float64(i))})
	}
	if err := tbl.InsertBatch(rows); err != nil {
		t.Fatal(err)
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}

	q := Query{Preds: []Pred{Eq("attribute", Str("pulse"))}}
	_, st1, err := tbl.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if st1.CacheMisses == 0 || st1.CacheHits != 0 {
		t.Fatalf("cold query: %+v, want misses only", st1)
	}
	_, st2, err := tbl.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if st2.CacheHits == 0 || st2.CacheMisses != 0 {
		t.Fatalf("warm query: %+v, want hits only", st2)
	}
	if cs := db.BlockCacheStats(); cs.Hits == 0 || cs.Entries == 0 {
		t.Fatalf("engine cache stats: %+v", cs)
	}
	// Table.Stats carries the same snapshot.
	if ts := tbl.Stats(); ts.Cache.Hits == 0 {
		t.Fatalf("table cache stats: %+v", ts.Cache)
	}
	// Disabling the cache drops the entries and stops caching; queries
	// still answer, paying misses again.
	db.SetBlockCacheCapacity(0)
	if cs := db.BlockCacheStats(); cs.Entries != 0 {
		t.Fatalf("cap 0 left entries: %+v", cs)
	}
	_, st3, err := tbl.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if st3.CacheHits != 0 || st3.CacheMisses == 0 {
		t.Fatalf("disabled-cache query: %+v", st3)
	}
}

// TestCacheDropsObsoleteSegments pins the release invariant: a major
// compaction obsoletes the old runs, and the moment their last pin
// drops, their cached blocks go with them — the cache holds no memory
// for segments nothing can read.
func TestCacheDropsObsoleteSegments(t *testing.T) {
	path := filepath.Join(t.TempDir(), "drop.db")
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable(attrSchema())
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		var rows []Row
		for i := 0; i < 600; i++ {
			pk := int64(r*600 + i)
			rows = append(rows, Row{Int(pk), Int(pk % 5), Str("pulse"), Str("v"), Float(0)})
		}
		if err := tbl.InsertBatch(rows); err != nil {
			t.Fatal(err)
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	ts := tbl.shards[0]
	oldIDs := make([]uint64, 0, len(ts.segs))
	for _, sg := range ts.segs {
		oldIDs = append(oldIDs, sg.id)
	}
	// Populate the cache from every run.
	for pk := int64(0); pk < 1800; pk += 100 {
		if _, err := tbl.Get(Int(pk)); err != nil {
			t.Fatal(err)
		}
	}
	cached := 0
	for _, id := range oldIDs {
		cached += db.cache.segEntries(id)
	}
	if cached == 0 {
		t.Fatal("reads populated nothing")
	}
	if err := db.Compact(); err != nil { // major: obsoletes the old runs
		t.Fatal(err)
	}
	for _, id := range oldIDs {
		if n := db.cache.segEntries(id); n != 0 {
			t.Fatalf("obsolete segment %d still holds %d cached blocks", id, n)
		}
	}
	// The replacement run serves (and caches) the same rows.
	if _, err := tbl.Get(Int(700)); err != nil {
		t.Fatal(err)
	}
	if cs := db.BlockCacheStats(); cs.Entries == 0 {
		t.Fatalf("post-compaction reads cached nothing: %+v", cs)
	}
}

// TestCacheInvariantUnderCompaction is the race-enabled invariant test:
// concurrent readers and writers run against the auto-compactor
// swapping runs underneath them. Every read must observe a
// monotonically non-decreasing version of its key (the cache must
// never serve a row from an obsolete segment as current), and closing
// the engine must leave the cache empty — every segment's entries
// released with its last pin.
func TestCacheInvariantUnderCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "race.db")
	db, err := OpenShardedWithPolicy(path, 1, CompactionPolicy{MemRows: 50, WALBytes: 1 << 20, Fanout: 3})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable(attrSchema())
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateIndex("attribute"); err != nil {
		t.Fatal(err)
	}
	const nKeys = 64
	versions := make([]atomic.Int64, nKeys)
	for i := 0; i < nKeys; i++ {
		if err := tbl.Insert(Row{Int(int64(i)), Int(0), Str("pulse"), Str("v"), Float(0)}); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) { // writers bump key versions (stored in patient)
			defer wg.Done()
			for v := int64(1); ; v++ {
				select {
				case <-stop:
					return
				default:
				}
				for i := w; i < nKeys; i += 2 {
					pk := int64(i)
					if err := tbl.Update(Int(pk), Row{Int(pk), Int(v), Str("pulse"), Str("v"), Float(0)}); err != nil {
						t.Errorf("update: %v", err)
						return
					}
					// Published only after the update is durable+applied:
					// any later read must see at least this version.
					versions[i].Store(v)
				}
			}
		}(w)
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() { // readers assert version monotonicity through Get and Query
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := 0; i < nKeys; i++ {
					floor := versions[i].Load()
					row, err := tbl.Get(Int(int64(i)))
					if err != nil {
						t.Errorf("get(%d): %v", i, err)
						return
					}
					if row[1].I < floor {
						t.Errorf("stale read: key %d version %d < published %d", i, row[1].I, floor)
						return
					}
				}
				if _, _, err := tbl.Query(Query{Preds: []Pred{Eq("attribute", Str("pulse"))}}); err != nil {
					t.Errorf("query: %v", err)
					return
				}
			}
		}()
	}
	time.Sleep(400 * time.Millisecond)
	close(stop)
	wg.Wait()
	cst := db.CompactionStats()
	if cst.MinorRuns+cst.MajorRuns == 0 {
		t.Log("warning: no background compaction ran; invariant untested under swaps")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if cs := db.BlockCacheStats(); cs.Entries != 0 || cs.Bytes != 0 {
		t.Fatalf("cache not empty after close: %+v", cs)
	}
}

// TestBatchedResolveMatchesSingle cross-checks the batched resolver
// against per-key segGet over a multi-run stack with overlapping key
// updates: both must produce identical rows, and a posting entry for
// every key must resolve exactly once.
func TestBatchedResolveMatchesSingle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "batch.db")
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable(attrSchema())
	if err != nil {
		t.Fatal(err)
	}
	// Three runs; run 2 overwrites half of run 1's keys, so newest-first
	// precedence matters.
	var rows []Row
	for i := 0; i < 500; i++ {
		rows = append(rows, Row{Int(int64(i)), Int(1), Str("pulse"), Str("v"), Float(0)})
	}
	if err := tbl.InsertBatch(rows); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i += 2 {
		if err := tbl.Update(Int(int64(i)), Row{Int(int64(i)), Int(2), Str("pulse"), Str("v"), Float(0)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	ts := tbl.shards[0]
	if len(ts.segs) < 2 {
		t.Fatalf("expected a run stack, got %d segs", len(ts.segs))
	}
	var entries []postingEntry
	for i := 0; i < 500; i++ {
		entries = append(entries, postingEntry{pk: string(encodeKey(Int(int64(i))))})
	}
	got, err := ts.resolveAll(entries, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range entries {
		want, ok, err := ts.segGet([]byte(e.pk), nil)
		if err != nil || !ok {
			t.Fatalf("segGet(%d): ok=%v err=%v", i, ok, err)
		}
		if !rowsEqual(got[i], want) {
			t.Fatalf("key %d: batched %v != single %v", i, got[i], want)
		}
		wantV := int64(1)
		if i%2 == 0 {
			wantV = 2
		}
		if got[i][1].I != wantV {
			t.Fatalf("key %d resolved stale version %d, want %d", i, got[i][1].I, wantV)
		}
	}
	// A posting for a key no segment holds must fail loudly, not
	// silently drop.
	if _, err := ts.resolveAll([]postingEntry{{pk: string(encodeKey(Int(99999)))}}, nil); err == nil {
		t.Fatal("missing segment row resolved without error")
	}
}

// TestFlushBuildsRunStack pins the new explicit minor-compaction API:
// each Flush appends one run per table and reads still merge exactly.
func TestFlushBuildsRunStack(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flush.db")
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable(attrSchema())
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		for i := 0; i < 10; i++ {
			pk := int64(r*10 + i)
			if err := tbl.Insert(Row{Int(pk), Int(pk), Str("pulse"), Str("v"), Float(0)}); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
		if got := len(tbl.shards[0].segs); got != r+1 {
			t.Fatalf("after flush %d: %d segs", r+1, got)
		}
	}
	if got := tbl.Len(); got != 30 {
		t.Fatalf("Len = %d, want 30", got)
	}
	n := 0
	tbl.Scan(func(Row) bool { n++; return true })
	if n != 30 {
		t.Fatalf("scan saw %d rows, want 30", n)
	}
}
