// Package linkgram is a from-scratch link grammar parser for the clinical
// dictation sub-language, standing in for the CMU Link Grammar Parser 4.1
// used by Zhou et al. (ICDE 2005).
//
// A link grammar assigns each word a set of disjuncts; a disjunct is an
// ordered list of left-pointing and right-pointing connectors. A linkage
// is a set of typed links between word pairs such that every word uses
// exactly one disjunct completely, links do not cross (planarity), and
// the whole sentence is connected. The parser uses the classic
// Sleator–Temperley span dynamic program over regions (L, R, le, re).
//
// The extraction system uses two products of the parse, mirroring the
// paper: the linkage viewed as a weighted graph (shortest word-pair
// distance associates numbers with feature keywords, §3.1) and the
// constituent roles derived from link types (subject / verb / object /
// supplement, used by the ID3 feature extractor, §3.3).
package linkgram

import "sync"

// connID is a small integer identifier for a connector name. The hot DP
// loop compares connector IDs instead of strings; connNames maps an ID
// back to its presentation name for link labels and diagrams.
//
//	W   wall → sentence head (finite verb or fragment head)
//	S   subject → finite verb
//	O   verb/gerund → object
//	Pa  copula → predicate adjective
//	PP  have → past participle
//	I   modal/do/to → base verb
//	A   pre-nominal modifier → noun (relabeled AN when the modifier is a noun)
//	D   determiner/possessive/cardinal → noun
//	EN  approximator adverb → determiner target ("about a year")
//	E   pre-verbal adverb → verb
//	EA  adverb → adjective ("very significant")
//	MV  verb → post-verbal modifier (preposition, adverb, "ago")
//	M   noun/adjective → post-nominal preposition ("pulse of", "significant for")
//	J   preposition → its object
//	NM  noun → post-nominal number ("age 10", "gravida 4")
//	T   time noun → "ago"
//	CO  phrase tail → following comma/conjunction
//	CC  comma/conjunction → following fragment head
//	R   noun → relative pronoun ("woman who underwent ...")
type connID uint8

const (
	cNone connID = iota // zero value: no connector
	cW
	cS
	cO
	cPa
	cPP
	cI
	cA
	cD
	cEN
	cE
	cEA
	cMV
	cM
	cJ
	cNM
	cT
	cCO
	cCC
	cR
	nConn // number of connector IDs; sizes availability arrays
)

// connNames maps a connID to its standard link grammar notation.
var connNames = [nConn]string{
	cW: "W", cS: "S", cO: "O", cPa: "Pa", cPP: "PP", cI: "I",
	cA: "A", cD: "D", cEN: "EN", cE: "E", cEA: "EA", cMV: "MV",
	cM: "M", cJ: "J", cNM: "NM", cT: "T", cCO: "CO", cCC: "CC", cR: "R",
}

// String returns the connector's presentation name.
func (c connID) String() string { return connNames[c] }

// node is one connector in an immutable, interned connector list. Lists
// are ordered FARTHEST-FIRST: the head connector links to the farthest
// word in its direction, which is the order the span DP consumes them in.
// Interning gives every distinct (name, next) pair a unique id, so suffix
// sharing keeps the memo table small.
type node struct {
	name connID
	next *node
	id   int32
}

// interner dedupes connector lists. The process-wide instance behind the
// disjunct candidate cache is globalIntern; its lock is only taken while
// building dictionary entries on a cache miss, never in the parse DP.
type interner struct {
	mu    sync.Mutex
	byKey map[internKey]*node
	n     int32
}

type internKey struct {
	name connID
	next int32
}

func newInterner() *interner {
	return &interner{byKey: make(map[internKey]*node)}
}

// push prepends name to list (making name the new farthest connector) and
// returns the interned result.
func (in *interner) push(name connID, list *node) *node {
	k := internKey{name: name, next: listID(list)}
	in.mu.Lock()
	defer in.mu.Unlock()
	if n, ok := in.byKey[k]; ok {
		return n
	}
	in.n++
	n := &node{name: name, next: list, id: in.n}
	in.byKey[k] = n
	return n
}

// fromNearFirst builds an interned farthest-first list from a
// nearest-first slice of connector names (the order dictionary entries
// are written in, matching standard link grammar notation).
func (in *interner) fromNearFirst(names []connID) *node {
	var list *node
	for _, name := range names { // nearest ends up deepest
		list = in.push(name, list)
	}
	return list
}

// globalIntern interns the connector lists of all cached dictionary
// entries, so node IDs are stable process-wide and candidate disjuncts
// can be shared across parses and goroutines.
var globalIntern = newInterner()

// wallList is the wall's single right-pointing W connector, interned once.
var wallList = globalIntern.fromNearFirst([]connID{cW})

func listID(n *node) int32 {
	if n == nil {
		return 0
	}
	return n.id
}

// match reports whether two connector names can link. Names match
// exactly; this grammar does not use subscript wildcards.
func match(a, b connID) bool { return a == b }

// disjunct is one way a word can connect: left and right connector lists,
// both farthest-first.
type disjunct struct {
	left, right *node
}

// listNames returns the connector names nearest-first, for debugging and
// tests.
func listNames(n *node) []string {
	var far []string
	for ; n != nil; n = n.next {
		far = append(far, connNames[n.name])
	}
	// reverse: stored farthest-first, report nearest-first
	for i, j := 0, len(far)-1; i < j; i, j = i+1, j-1 {
		far[i], far[j] = far[j], far[i]
	}
	return far
}
