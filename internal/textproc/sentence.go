package textproc

import "strings"

// Sentence is a contiguous span of tokens forming one sentence, with its
// byte span in the original text.
type Sentence struct {
	Text   string  // the sentence as it appears in the input, trimmed
	Tokens []Token // tokens with offsets relative to the original text
	Start  int     // byte offset of the first token
	End    int     // byte offset one past the last token
}

// abbreviations that end with a period but do not terminate a sentence in
// clinical dictation.
var abbreviations = map[string]bool{
	"dr": true, "mr": true, "mrs": true, "ms": true, "st": true,
	"vs": true, "etc": true, "e.g": true, "i.e": true, "approx": true,
	"no": true, "wt": true, "ht": true, "pt": true, "hx": true,
}

// SplitSentences splits text into sentences. A sentence ends at '.', '!'
// or '?' unless the period follows a known abbreviation or a single
// capital letter (initials such as "S1 S2" never carry periods in the
// corpus, but "Ari D. Brooks" style initials do). Newlines that separate
// list-like fragments also act as sentence boundaries, which matters for
// semi-structured records where fragments like "Blood pressure: 144/78"
// appear one per line.
func SplitSentences(text string) []Sentence {
	toks := Tokenize(text)
	var sents []Sentence
	begin := 0 // index into toks of the first token of the current sentence
	for i := 0; i < len(toks); i++ {
		t := toks[i]
		end := false
		switch {
		case t.Kind == Punct && (t.Text == "!" || t.Text == "?"):
			end = true
		case t.Kind == Punct && t.Text == ".":
			end = !periodIsAbbrev(toks, i)
		case i+1 < len(toks) && hasBlankLineBetween(text, t.End, toks[i+1].Start):
			end = true
		}
		if end {
			sents = appendSentence(sents, text, toks[begin:i+1])
			begin = i + 1
		}
	}
	if begin < len(toks) {
		sents = appendSentence(sents, text, toks[begin:])
	}
	return sents
}

func appendSentence(sents []Sentence, text string, toks []Token) []Sentence {
	if len(toks) == 0 {
		return sents
	}
	start, end := toks[0].Start, toks[len(toks)-1].End
	s := Sentence{
		Text:   strings.TrimSpace(text[start:end]),
		Tokens: toks,
		Start:  start,
		End:    end,
	}
	// A sentence consisting solely of punctuation is noise.
	for _, t := range toks {
		if t.Kind != Punct && t.Kind != Symbol {
			return append(sents, s)
		}
	}
	return sents
}

// periodIsAbbrev reports whether the period at toks[i] is part of an
// abbreviation or an initial rather than a sentence terminator.
func periodIsAbbrev(toks []Token, i int) bool {
	if i == 0 {
		return false
	}
	prev := toks[i-1]
	if prev.Kind != Word {
		return false
	}
	w := strings.ToLower(prev.Text)
	if abbreviations[w] {
		return true
	}
	// Single capital letter: a middle initial ("Ari D. Brooks").
	if len(prev.Text) == 1 && prev.Text[0] >= 'A' && prev.Text[0] <= 'Z' {
		// Only an initial if the next token is a capitalized word.
		if i+1 < len(toks) && toks[i+1].Kind == Word && IsTitleCase(toks[i+1].Text) {
			return true
		}
	}
	return false
}

// hasBlankLineBetween reports whether the text between byte offsets a and b
// contains at least one newline, which separates record lines.
func hasBlankLineBetween(text string, a, b int) bool {
	if a < 0 || b > len(text) || a >= b {
		return false
	}
	return strings.Contains(text[a:b], "\n")
}

// WordTexts returns the lower-cased text of every Word token in the
// sentence, in order. It is a convenience for feature extraction.
func (s Sentence) WordTexts() []string {
	var ws []string
	for _, t := range s.Tokens {
		if t.Kind == Word {
			ws = append(ws, t.Lower())
		}
	}
	return ws
}

// ContainsWord reports whether the sentence contains the given word,
// compared case-insensitively.
func (s Sentence) ContainsWord(w string) bool {
	w = strings.ToLower(w)
	for _, t := range s.Tokens {
		if t.Kind == Word && t.Lower() == w {
			return true
		}
	}
	return false
}
