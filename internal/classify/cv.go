package classify

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// CVResult aggregates a repeated k-fold cross validation of one backend,
// the paper's evaluation protocol ("We run a five-fold cross validation
// ten times, and each time the dataset is randomly shuffled"). The fold
// protocol, shuffle stream and aggregation are identical to
// id3.CrossValidate, so the ID3 backend reproduces its numbers
// bit-for-bit — the parity tests pin that equivalence.
type CVResult struct {
	Backend     string  // backend name the result belongs to
	Accuracy    float64 // micro-averaged: correct / total over all folds and rounds
	StdDev      float64 // standard deviation of per-round accuracies
	MinFeatures int     // smallest Model.Size() of any fold's model
	MaxFeatures int     // largest Model.Size() of any fold's model
	PerClass    map[string]ClassMetrics
	// Confusion[actual][predicted] counts over all rounds.
	Confusion map[string]map[string]int
	Rounds    int
	Folds     int
}

// ClassMetrics are one class's precision and recall over the whole CV.
type ClassMetrics struct {
	Precision float64
	Recall    float64
	Support   int
}

// CrossValidate runs `rounds` repetitions of k-fold cross validation of
// one backend with per-round shuffles driven by seed.
func CrossValidate(b Backend, examples []Example, k, rounds int, seed int64) CVResult {
	if k < 2 || len(examples) < k {
		return CVResult{Backend: b.Name()}
	}
	rng := rand.New(rand.NewSource(seed))
	res := CVResult{
		Backend:     b.Name(),
		MinFeatures: 1 << 30,
		PerClass:    map[string]ClassMetrics{},
		Confusion:   map[string]map[string]int{},
		Rounds:      rounds,
		Folds:       k,
	}
	correct, total := 0, 0
	tp := map[string]int{}      // class → true positives
	predN := map[string]int{}   // class → predicted count
	actualN := map[string]int{} // class → actual count
	var roundAccs []float64

	idx := make([]int, len(examples))
	for i := range idx {
		idx[i] = i
	}
	for r := 0; r < rounds; r++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		roundCorrect, roundTotal := 0, 0
		for fold := 0; fold < k; fold++ {
			var train, test []Example
			for pos, ei := range idx {
				if pos%k == fold {
					test = append(test, examples[ei])
				} else {
					train = append(train, examples[ei])
				}
			}
			model := b.Train(train)
			if sz := model.Size(); sz < res.MinFeatures {
				res.MinFeatures = sz
			}
			if sz := model.Size(); sz > res.MaxFeatures {
				res.MaxFeatures = sz
			}
			for _, e := range test {
				pred := model.Predict(e.Instance)
				total++
				roundTotal++
				predN[pred]++
				actualN[e.Class]++
				if res.Confusion[e.Class] == nil {
					res.Confusion[e.Class] = map[string]int{}
				}
				res.Confusion[e.Class][pred]++
				if pred == e.Class {
					correct++
					roundCorrect++
					tp[e.Class]++
				}
			}
		}
		if roundTotal > 0 {
			roundAccs = append(roundAccs, float64(roundCorrect)/float64(roundTotal))
		}
	}
	if total > 0 {
		res.Accuracy = float64(correct) / float64(total)
	}
	res.StdDev = stddev(roundAccs)
	for c := range actualN {
		m := ClassMetrics{Support: actualN[c] / max(rounds, 1)}
		if predN[c] > 0 {
			m.Precision = float64(tp[c]) / float64(predN[c])
		}
		if actualN[c] > 0 {
			m.Recall = float64(tp[c]) / float64(actualN[c])
		}
		res.PerClass[c] = m
	}
	if res.MinFeatures == 1<<30 {
		res.MinFeatures = 0
	}
	return res
}

// stddev is the population standard deviation.
func stddev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	v := 0.0
	for _, x := range xs {
		v += (x - mean) * (x - mean)
	}
	return math.Sqrt(v / float64(len(xs)))
}

// ConfusionString renders the confusion matrix with classes sorted.
func (r CVResult) ConfusionString() string {
	classes := make([]string, 0, len(r.Confusion))
	for c := range r.Confusion {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s", "actual\\pred")
	for _, c := range classes {
		fmt.Fprintf(&b, " %8s", c)
	}
	b.WriteByte('\n')
	for _, a := range classes {
		fmt.Fprintf(&b, "%-10s", a)
		for _, p := range classes {
			fmt.Fprintf(&b, " %8d", r.Confusion[a][p])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// String renders the CV result as a short report.
func (r CVResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d-fold CV × %d rounds (%s): accuracy (micro P=R) %.1f%% (±%.1f across rounds), model size %d–%d\n",
		r.Folds, r.Rounds, r.Backend, 100*r.Accuracy, 100*r.StdDev, r.MinFeatures, r.MaxFeatures)
	classes := make([]string, 0, len(r.PerClass))
	for c := range r.PerClass {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		m := r.PerClass[c]
		fmt.Fprintf(&b, "  %-10s P=%.1f%% R=%.1f%% (n=%d)\n", c, 100*m.Precision, 100*m.Recall, m.Support)
	}
	return b.String()
}
