package core

import (
	"runtime"
	"sync"

	"repro/internal/records"
)

// ProcessAll runs the pipeline over a corpus with a bounded worker pool
// and returns the extractions in corpus order. The extractors are
// stateless after construction (the ID3 tree is read-only once trained),
// so workers share the System.
func (s *System) ProcessAll(recs []records.Record, workers int) []Extraction {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(recs) {
		workers = len(recs)
	}
	out := make([]Extraction, len(recs))
	if workers <= 1 {
		for i, r := range recs {
			out[i] = s.Process(r.Text)
		}
		return out
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i] = s.Process(recs[i].Text)
			}
		}()
	}
	for i := range recs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}
