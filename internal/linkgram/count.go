package linkgram

import "repro/internal/pos"

// CountLinkages returns the number of distinct complete linkages of the
// sentence, capped at CountCap (the CMU parser similarly reports "found
// N linkages"). Zero means no linkage. The count measures grammatical
// ambiguity: the extractor uses the first linkage, and a large count on
// a sentence class signals that link weights, not linkage choice, should
// carry the association decision.
const CountCap = 1 << 20

// CountLinkages counts complete linkages for a tagged sentence.
func CountLinkages(tagged []pos.TaggedToken) int {
	p := newParser(tagged)
	if p == nil {
		return 0
	}
	defer p.release()
	n := p.count(0, len(p.words), wallList, nil, make(map[memoKey]int64))
	if n > CountCap {
		return CountCap
	}
	return int(n)
}

// count is the counting variant of the feasibility DP. It shares the
// parser's word/disjunct preparation but keeps its own memo (counts, not
// booleans).
func (p *parser) count(L, R int, le, re *node, memo map[memoKey]int64) int64 {
	if L+1 == R {
		if le == nil && re == nil {
			return 1
		}
		return 0
	}
	key := memoKey{l: int16(L), r: int16(R), le: listID(le), re: listID(re)}
	if v, ok := memo[key]; ok {
		return v
	}
	memo[key] = 0
	var total int64
	for W := L + 1; W < R; W++ {
		for _, d := range p.cands[W] {
			if le != nil && d.left != nil && match(le.name, d.left.name) {
				lc := p.count(L, W, le.next, d.left.next, memo)
				if lc > 0 {
					if re != nil && d.right != nil && match(d.right.name, re.name) {
						total += lc * p.count(W, R, d.right.next, re.next, memo)
					}
					total += lc * p.count(W, R, d.right, re, memo)
				}
			}
			if le == nil && re != nil && d.right != nil && match(d.right.name, re.name) {
				lc := p.count(L, W, nil, d.left, memo)
				if lc > 0 {
					total += lc * p.count(W, R, d.right.next, re.next, memo)
				}
			}
			if total > CountCap {
				memo[key] = total
				return total
			}
		}
	}
	memo[key] = total
	return total
}
