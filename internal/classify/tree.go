package classify

import "repro/internal/id3"

// ID3 and Gini adapt the decision trees of internal/id3 to the Backend
// interface. The adapters are thin on purpose: training converts
// examples to the id3.Example shape (reusing the memoized feature maps,
// so no analysis re-runs) and prediction walks the tree over the
// instance's feature view. id3.CrossValidate and the classify
// cross-validation harness therefore produce bit-identical results for
// the same examples and seed — pinned by the parity tests.

// ID3 is the paper's backend: information-gain (mutual information)
// decision trees over Boolean link-grammar features.
type ID3 struct{}

// Name implements Backend.
func (ID3) Name() string { return "id3" }

// Params implements Backend.
func (ID3) Params() string { return "criterion=info-gain" }

// Train implements Backend.
func (ID3) Train(examples []Example) Model {
	return treeModel{name: "id3", tree: id3.Train(toID3(examples))}
}

// Gini is the CART-style variant: the same tree builder splitting by
// Gini impurity reduction (ablation A6).
type Gini struct{}

// Name implements Backend.
func (Gini) Name() string { return "gini" }

// Params implements Backend.
func (Gini) Params() string { return "criterion=gini" }

// Train implements Backend.
func (Gini) Train(examples []Example) Model {
	return treeModel{name: "gini", tree: id3.TrainGini(toID3(examples))}
}

// treeModel wraps a trained *id3.Tree as a Model.
type treeModel struct {
	name string
	tree *id3.Tree
}

func (m treeModel) Backend() string { return m.name }

func (m treeModel) Predict(in Instance) string { return m.tree.Classify(in.Features()) }

func (m treeModel) Size() int { return m.tree.FeatureCount() }

// toID3 converts examples to the id3 training shape. Feature maps are
// shared, not copied; id3.Train only reads them.
func toID3(examples []Example) []id3.Example {
	out := make([]id3.Example, len(examples))
	for i, e := range examples {
		out[i] = id3.Example{Features: e.Features(), Class: e.Class}
	}
	return out
}
