package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/store"
)

// benchServer builds a daemon over a file-backed sharded store for
// end-to-end HTTP benchmarks.
func benchServer(b *testing.B, shards int) (*server, *httptest.Server) {
	b.Helper()
	cfg := testConfig()
	cfg.Shards = shards
	db, err := store.OpenSharded(filepath.Join(b.TempDir(), "wh.db"), shards)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := core.NewSystem(core.Config{Strategy: cfg.Strategy})
	if err != nil {
		b.Fatal(err)
	}
	wh, err := core.OpenWarehouse(db, nil)
	if err != nil {
		b.Fatal(err)
	}
	srv := newServer(cfg, db, sys, wh)
	ts := httptest.NewServer(srv.routes())
	b.Cleanup(func() {
		ts.Close()
		srv.ing.Close()
		db.Close()
	})
	return srv, ts
}

// BenchmarkDaemonIngest measures the full ingest path — HTTP framing,
// NDJSON decode, extraction, group commit with fsync — in records/s.
func BenchmarkDaemonIngest(b *testing.B) {
	const perBatch = 8
	_, ts := benchServer(b, 4)
	client := &http.Client{Timeout: 30 * time.Second}
	ids := make([]int64, perBatch)
	sent := 0
	start := time.Now()
	for b.Loop() {
		for j := range ids {
			ids[j] = int64(sent+j) + 1
		}
		sent += perBatch
		resp, err := client.Post(ts.URL+"/v1/ingest", "application/x-ndjson", strings.NewReader(ndjsonPatients(ids...)))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			b.Fatalf("ingest = %d", resp.StatusCode)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(sent)/time.Since(start).Seconds(), "records/s")
}

// BenchmarkDaemonQuery measures an indexed numeric-range question over
// HTTP against a pre-loaded store.
func BenchmarkDaemonQuery(b *testing.B) {
	_, ts := benchServer(b, 4)
	client := &http.Client{Timeout: 30 * time.Second}
	for base := int64(0); base < 512; base += 64 {
		ids := make([]int64, 64)
		for j := range ids {
			ids[j] = base + int64(j) + 1
		}
		resp, err := client.Post(ts.URL+"/v1/ingest", "application/x-ndjson", strings.NewReader(ndjsonPatients(ids...)))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			b.Fatalf("seed ingest = %d", resp.StatusCode)
		}
	}
	b.ResetTimer()
	for b.Loop() {
		resp, err := client.Get(ts.URL + "/v1/query?attr=pulse&min=100")
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("query = %d", resp.StatusCode)
		}
	}
}
