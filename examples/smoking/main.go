// Smoking: train and cross-validate the ID3 smoking-status classifier,
// reproducing the paper's §5 protocol (5-fold CV, ten shuffled rounds),
// and inspect the learned tree.
package main

import (
	"fmt"
	"log"

	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/id3"
	"repro/internal/records"
)

func main() {
	log.SetFlags(0)

	recs := records.Generate(records.DefaultGenOptions())
	field := core.SmokingField()

	// The paper's protocol.
	res := field.CrossValidate(recs, 5, 10, 2005)
	fmt.Print(res)
	fmt.Println("(paper: average precision (recall) 92.2%, 4-7 features per tree)")

	// The same protocol on the vector-similarity backend: a different
	// point on the accuracy/throughput dial (no tagging, no parsing).
	fmt.Println()
	fmt.Print(field.WithBackend(classify.NewVector()).CrossValidate(recs, 5, 10, 2005))

	// Train on everything and show the tree.
	var exs []id3.Example
	for _, e := range field.Examples(recs) {
		exs = append(exs, id3.Example{Features: e.Features(), Class: e.Class})
	}
	tree := id3.Train(exs)
	fmt.Printf("\ntree trained on all 45 labeled records (%d features, depth %d):\n\n%s\n",
		tree.FeatureCount(), tree.Depth(), tree)

	// Classify the paper's §3.3 example sentences.
	examples := []string{
		"She quit smoking five years ago",
		"She is currently a smoker",
		"She has never smoked",
	}
	clf := core.TrainCategorical(field, recs)
	for _, text := range examples {
		note := "Social History:  " + text + ".\n"
		fmt.Printf("  %-40q → %s\n", text, clf.Classify(note))
	}
}
