package core

import (
	"testing"

	"repro/internal/ontology"
	"repro/internal/textproc"
)

func TestNegationStart(t *testing.T) {
	cases := []struct {
		text    string
		negated string // a word that must be inside the scope, "" = no scope
		clear   string // a word that must be outside the scope
	}{
		{"No history of stroke.", "stroke", "history"},
		{"Denies any prior appendectomy.", "appendectomy", ""},
		{"Significant for diabetes.", "", "diabetes"},
		{"Negative for breast cancer.", "cancer", ""},
		{"She has never smoked.", "smoked", "she"},
		{"Without evidence of recurrence.", "recurrence", ""},
	}
	for _, c := range cases {
		sents := textproc.SplitSentences(c.text)
		if len(sents) != 1 {
			t.Fatalf("%q: %d sentences", c.text, len(sents))
		}
		sent := sents[0]
		idx := func(w string) int {
			for i, tok := range sent.Tokens {
				if tok.Lower() == w {
					return i
				}
			}
			t.Fatalf("%q: word %q not found", c.text, w)
			return -1
		}
		if c.negated != "" && !IsNegated(sent, idx(c.negated)) {
			t.Errorf("%q: %q should be negated", c.text, c.negated)
		}
		if c.clear != "" && IsNegated(sent, idx(c.clear)) {
			t.Errorf("%q: %q should not be negated", c.text, c.clear)
		}
	}
}

func TestTermExtractorFilterNegated(t *testing.T) {
	ont := ontology.MustNew(ontology.Options{})
	defer ont.Close()
	body := "Significant for diabetes and asthma.  No history of stroke."

	plain := &TermExtractor{Ont: ont, ResolveSynonyms: true}
	var names []string
	for _, tm := range plain.Extract(body, ontology.PredefinedMedical) {
		names = append(names, tm.Concept.Preferred)
	}
	if !containsStr(names, "postoperative cva") { // "stroke" resolves to the CVA concept
		t.Errorf("baseline should extract the negated stroke: %v", names)
	}

	filtered := &TermExtractor{Ont: ont, ResolveSynonyms: true, FilterNegated: true}
	names = names[:0]
	for _, tm := range filtered.Extract(body, ontology.PredefinedMedical) {
		names = append(names, tm.Concept.Preferred)
	}
	if containsStr(names, "postoperative cva") {
		t.Errorf("filter should drop the negated stroke: %v", names)
	}
	if !containsStr(names, "diabetes") || !containsStr(names, "asthma") {
		t.Errorf("filter must keep affirmed terms: %v", names)
	}
}

func TestNegationScopeIsPerSentence(t *testing.T) {
	ont := ontology.MustNew(ontology.Options{})
	defer ont.Close()
	// The negation in sentence one must not leak into sentence two.
	body := "No history of stroke.  Significant for diabetes."
	x := &TermExtractor{Ont: ont, ResolveSynonyms: true, FilterNegated: true}
	var names []string
	for _, tm := range x.Extract(body, ontology.PredefinedMedical) {
		names = append(names, tm.Concept.Preferred)
	}
	if !containsStr(names, "diabetes") {
		t.Errorf("negation leaked across sentences: %v", names)
	}
}

func containsStr(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}
