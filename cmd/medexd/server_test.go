package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/store"
)

// testConfig is a daemon config sized for tests: small queue, small
// body/batch caps, short timeouts.
func testConfig() config {
	return config{
		Addr:          "127.0.0.1:0",
		Shards:        2,
		Strategy:      core.LinkGrammar,
		QueueDepth:    8,
		MaxGroup:      4,
		MaxBody:       1 << 20,
		MaxBatch:      64,
		IngestTimeout: 10 * time.Second,
		QueryTimeout:  10 * time.Second,
		DrainTimeout:  10 * time.Second,
	}
}

// newTestServer builds a server over the given engine plus an
// httptest.Server in front of its routes. Cleanup drains the ingester
// and closes both.
func newTestServer(t *testing.T, cfg config, db store.Engine) (*server, *httptest.Server) {
	t.Helper()
	sys, err := core.NewSystem(core.Config{Strategy: cfg.Strategy, ResolveSynonyms: true})
	if err != nil {
		t.Fatal(err)
	}
	wh, err := core.OpenWarehouse(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(cfg, db, sys, wh)
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(func() {
		ts.Close()
		srv.ing.Close()
		db.Close()
	})
	return srv, ts
}

// ndjsonPatients builds an NDJSON ingest body with one record per
// patient id. Every record carries a pulse so each one persists at
// least one attribute row.
func ndjsonPatients(ids ...int64) string {
	var b strings.Builder
	for _, id := range ids {
		rec := struct {
			ID   int64  `json:"id"`
			Text string `json:"text"`
		}{id, fmt.Sprintf("Patient:  %d\nVitals:  Pulse is %d.\n", id, 60+id%80)}
		j, _ := json.Marshal(rec)
		b.Write(j)
		b.WriteByte('\n')
	}
	return b.String()
}

func postIngest(t *testing.T, url, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url+"/v1/ingest", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var decoded map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
		t.Fatalf("response is not JSON: %v", err)
	}
	return resp, decoded
}

func getJSON(t *testing.T, url string, want int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != want {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s = %d, want %d (body %s)", url, resp.StatusCode, want, body)
	}
	var decoded map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
		t.Fatalf("response is not JSON: %v", err)
	}
	return decoded
}

func TestIngestAndQueryRoundTrip(t *testing.T) {
	db, err := store.OpenSharded(filepath.Join(t.TempDir(), "wh.db"), 2)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, testConfig(), db)

	resp, body := postIngest(t, ts.URL, ndjsonPatients(1, 2, 3))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest = %d (%v), want 202", resp.StatusCode, body)
	}
	if body["records"].(float64) != 3 || body["rows"].(float64) < 3 {
		t.Fatalf("ingest response %v, want records=3 rows>=3", body)
	}
	if body["durable"] != true {
		t.Fatalf("ingest response %v, want durable=true", body)
	}

	// Numeric range: patients 41..43 have pulse 101..103.
	if resp, body = postIngest(t, ts.URL, ndjsonPatients(41, 42, 43)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second ingest = %d (%v)", resp.StatusCode, body)
	}
	q := getJSON(t, ts.URL+"/v1/query?attr=pulse&min=100", http.StatusOK)
	if got := len(q["patients"].([]any)); got != 3 {
		t.Fatalf("query min=100 matched %d patients (%v), want 3", got, q)
	}
	stats := q["stats"].(map[string]any)
	if stats["indexedConds"].(float64) != 1 {
		t.Fatalf("query did not use the index: %v", stats)
	}
	if _, degraded := stats["health"]; degraded {
		t.Fatalf("healthy engine reported degraded stats: %v", stats)
	}

	rows := getJSON(t, ts.URL+"/v1/query?attr=pulse&rows=true", http.StatusOK)
	if got := len(rows["rows"].([]any)); got != 6 {
		t.Fatalf("rows query returned %d rows, want 6", got)
	}

	chart := getJSON(t, ts.URL+"/v1/patient/42", http.StatusOK)
	if got := len(chart["rows"].([]any)); got < 1 {
		t.Fatalf("patient chart empty: %v", chart)
	}

	prev := getJSON(t, ts.URL+"/v1/prevalence?attr=pulse", http.StatusOK)
	if len(prev["prevalence"].(map[string]any)) == 0 {
		t.Fatalf("empty prevalence: %v", prev)
	}

	askBody := `{"conds":[{"attr":"pulse","min":100},{"attr":"pulse","max":103}]}`
	askResp, err := http.Post(ts.URL+"/v1/ask", "application/json", strings.NewReader(askBody))
	if err != nil {
		t.Fatal(err)
	}
	defer askResp.Body.Close()
	var ask map[string]any
	if err := json.NewDecoder(askResp.Body).Decode(&ask); err != nil {
		t.Fatal(err)
	}
	if got := len(ask["patients"].([]any)); got != 3 {
		t.Fatalf("ask matched %d patients (%v), want 3", got, ask)
	}

	st := getJSON(t, ts.URL+"/v1/stats", http.StatusOK)
	if st["table"].(map[string]any)["rows"].(float64) != 6 {
		t.Fatalf("stats table rows %v, want 6", st["table"])
	}
	if st["ingest"].(map[string]any)["batches"].(float64) != 2 {
		t.Fatalf("stats ingest batches %v, want 2", st["ingest"])
	}

	getJSON(t, ts.URL+"/healthz", http.StatusOK)
	ready := getJSON(t, ts.URL+"/readyz", http.StatusOK)
	if ready["mode"] != "read-write" {
		t.Fatalf("readyz mode %v, want read-write", ready)
	}
}

func TestIngestRejectsBadInput(t *testing.T) {
	cfg := testConfig()
	cfg.MaxBatch = 2
	cfg.MaxBody = 256
	_, ts := newTestServer(t, cfg, store.OpenMemorySharded(2))

	cases := []struct {
		name, body string
		status     int
		substr     string
	}{
		{"malformed json", "not json\n", http.StatusBadRequest, "decoding records"},
		{"empty body", "", http.StatusBadRequest, "no records"},
		{"empty record text", `{"id":1,"text":""}` + "\n", http.StatusBadRequest, "empty text"},
		{"too many records", ndjsonPatients(1, 2, 3), http.StatusRequestEntityTooLarge, "max-batch"},
		{
			"body too large",
			`{"id":1,"text":"Patient:  1\n` + strings.Repeat("padding ", 64) + `"}` + "\n",
			http.StatusRequestEntityTooLarge, "max-body",
		},
	}
	for _, tc := range cases {
		resp, body := postIngest(t, ts.URL, tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d (%v), want %d", tc.name, resp.StatusCode, body, tc.status)
			continue
		}
		if !strings.Contains(body["error"].(string), tc.substr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, body["error"], tc.substr)
		}
	}
}

// gatedEngine parks the writer goroutine inside Sync so tests can hold
// the ingest queue full deterministically. The first Sync announces
// itself on entered, then blocks until gate closes.
type gatedEngine struct {
	store.Engine
	entered chan struct{}
	gate    chan struct{}
}

func (g *gatedEngine) Sync() error {
	select {
	case g.entered <- struct{}{}:
	default:
	}
	<-g.gate
	return g.Engine.Sync()
}

// TestIngestBackpressure429 proves the overload contract: with the
// writer parked and the bounded queue full, the next ingest answers 429
// with Retry-After instead of buffering, and the parked batches are
// still acknowledged durably once the writer resumes.
func TestIngestBackpressure429(t *testing.T) {
	cfg := testConfig()
	cfg.QueueDepth = 1
	cfg.MaxGroup = 1
	eng := &gatedEngine{
		Engine:  store.OpenMemorySharded(2),
		entered: make(chan struct{}, 1),
		gate:    make(chan struct{}),
	}
	srv, ts := newTestServer(t, cfg, eng)

	type result struct {
		status int
		err    error
	}
	results := make(chan result, 2)
	post := func(id int64) {
		resp, err := http.Post(ts.URL+"/v1/ingest", "application/x-ndjson",
			strings.NewReader(ndjsonPatients(id)))
		if err != nil {
			results <- result{0, err}
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		results <- result{resp.StatusCode, nil}
	}

	// Batch 1: the writer picks it up and parks in Sync.
	go post(1)
	select {
	case <-eng.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("writer never reached Sync")
	}
	// Batch 2: fills the depth-1 queue.
	go post(2)
	deadline := time.Now().Add(5 * time.Second)
	for srv.ing.Stats().Queued != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled: %+v", srv.ing.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	// Batch 3: queue full — must be rejected, not buffered.
	resp, err := http.Post(ts.URL+"/v1/ingest", "application/x-ndjson",
		strings.NewReader(ndjsonPatients(3)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload ingest = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	if srv.ing.Stats().Rejected != 1 {
		t.Fatalf("Rejected = %d, want 1", srv.ing.Stats().Rejected)
	}

	// Release the writer: both held batches must be acknowledged.
	close(eng.gate)
	for range 2 {
		r := <-results
		if r.err != nil || r.status != http.StatusAccepted {
			t.Fatalf("held batch finished %d / %v, want 202", r.status, r.err)
		}
	}
}

// healthEngine overrides Health to simulate a failed-compaction latch
// without reaching into store internals.
type healthEngine struct {
	store.Engine
	h store.Health
}

func (e *healthEngine) Health() store.Health { return e.h }

// TestDegradedReadOnlyMode: a read-only engine refuses ingest with 503,
// stays ready for reads (with the mode reported), and stamps the health
// caveat into query stats.
func TestDegradedReadOnlyMode(t *testing.T) {
	eng := &healthEngine{
		Engine: store.OpenMemorySharded(2),
		h: store.Health{
			ReadOnly:     true,
			FailedShards: []int{1},
			Reason:       "store: compaction swap failed",
		},
	}
	_, ts := newTestServer(t, testConfig(), eng)

	resp, body := postIngest(t, ts.URL, ndjsonPatients(1))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ingest on read-only engine = %d (%v), want 503", resp.StatusCode, body)
	}
	if !strings.Contains(body["error"].(string), "read-only") {
		t.Fatalf("503 error %q does not say read-only", body["error"])
	}

	ready := getJSON(t, ts.URL+"/readyz", http.StatusOK)
	if ready["mode"] != "read-only" {
		t.Fatalf("readyz mode %v, want read-only", ready)
	}

	q := getJSON(t, ts.URL+"/v1/query?attr=pulse", http.StatusOK)
	health, _ := q["stats"].(map[string]any)["health"].(string)
	if !strings.Contains(health, "read-only") {
		t.Fatalf("query stats do not carry the degraded health: %v", q)
	}

	st := getJSON(t, ts.URL+"/v1/stats", http.StatusOK)
	if st["health"].(map[string]any)["readOnly"] != true {
		t.Fatalf("stats health %v, want readOnly=true", st["health"])
	}
}

// TestDrainingRejectsNewWork: once the drain begins, ingest and
// readiness turn away traffic while liveness stays up.
func TestDrainingRejectsNewWork(t *testing.T) {
	srv, ts := newTestServer(t, testConfig(), store.OpenMemorySharded(2))
	srv.beginDrain()

	resp, body := postIngest(t, ts.URL, ndjsonPatients(1))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ingest while draining = %d (%v), want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining 503 without Retry-After header")
	}
	getJSON(t, ts.URL+"/healthz", http.StatusOK)
	r, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d, want 503", r.StatusCode)
	}
}

// TestStalledClientCutOff: a client that opens an ingest request and
// then stops sending is disconnected by the server's read timeout
// instead of holding a connection (and extraction context) forever.
func TestStalledClientCutOff(t *testing.T) {
	cfg := testConfig()
	sys, err := core.NewSystem(core.Config{Strategy: cfg.Strategy})
	if err != nil {
		t.Fatal(err)
	}
	db := store.OpenMemorySharded(2)
	wh, err := core.OpenWarehouse(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(cfg, db, sys, wh)
	ts := httptest.NewUnstartedServer(srv.routes())
	ts.Config.ReadTimeout = 300 * time.Millisecond
	ts.Start()
	t.Cleanup(func() {
		ts.Close()
		srv.ing.Close()
		db.Close()
	})

	conn, err := net.Dial("tcp", ts.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Claim a large body, send a fragment, then stall.
	fmt.Fprintf(conn, "POST /v1/ingest HTTP/1.1\r\nHost: test\r\nContent-Length: 100000\r\n\r\n")
	fmt.Fprintf(conn, `{"id":1,`)

	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1024)
	start := time.Now()
	for {
		if _, err := conn.Read(buf); err != nil {
			break // server cut us off
		}
	}
	if waited := time.Since(start); waited > 3*time.Second {
		t.Fatalf("stalled connection survived %s; read timeout did not fire", waited)
	}
}
