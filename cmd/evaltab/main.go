// Command evaltab regenerates every table and figure of the paper's
// evaluation plus the ablations in DESIGN.md.
//
// Usage:
//
//	evaltab [-exp all|E1|E2|E3|F1|A1|A2|A3|A4|A5] [-n 50] [-seed 2005]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/linkgram"
	"repro/internal/ontology"
	"repro/internal/records"
	"repro/internal/textproc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("evaltab: ")

	exp := flag.String("exp", "all", "experiment id: all, E1, E2, E3, F1, A1–A7")
	n := flag.Int("n", 50, "corpus size")
	seed := flag.Int64("seed", 2005, "corpus seed")
	flag.Parse()

	opts := records.DefaultGenOptions()
	opts.N = *n
	opts.Seed = *seed
	recs := records.Generate(opts)

	run := func(id string) {
		switch id {
		case "E1":
			fmt.Println(eval.RunE1(recs, core.LinkGrammar))
			fmt.Println("paper: precision (recall) for all eight numeric attributes is 100%")
		case "E2":
			ont := ontology.MustNew(ontology.Options{})
			defer ont.Close()
			fmt.Println(eval.RunE2(recs, ont, false))
			fmt.Println("paper Table 1: 96.7/96.7, 76.1/86.4, 77.8/35, 62.0/75")
			fmt.Println()
			fmt.Println(eval.RunE2(recs, ont, true))
			fmt.Println("(the paper's proposed improvement: \"introducing synonyms\")")
		case "E3":
			res := eval.RunE3(recs, *seed)
			fmt.Print(res)
			fmt.Println("paper: average precision (recall) 92.2%, features per tree 4-7")
		case "E4":
			fmt.Println(eval.RunE4(recs, *seed))
			fmt.Println("(the paper completed only smoking among the twelve categorical attributes)")
		case "E5":
			ont := ontology.MustNew(ontology.Options{})
			defer ont.Close()
			fmt.Printf("E5 medication extraction: %v\n", eval.RunE5(recs, ont))
		case "F1":
			sent := textproc.SplitSentences("Blood pressure is 144/90, pulse of 84, temperature of 98.3, and weight of 154 pounds.")[0]
			lk, err := linkgram.ParseSentence(sent)
			if err != nil {
				log.Fatalf("figure 1 sentence failed to parse: %v", err)
			}
			fmt.Println("F1 / Figure 1: linkage diagram")
			fmt.Println(lk.Diagram())
		case "A1":
			diverse := records.DefaultGenOptions()
			diverse.N = *n
			diverse.Seed = *seed
			diverse.StyleDiversity = 0.8
			fmt.Println("A1 on canonical corpus (diversity 0):")
			fmt.Println(eval.RunA1(recs))
			fmt.Println("A1 on diverse corpus (diversity 0.8):")
			fmt.Println(eval.RunA1(records.Generate(diverse)))
		case "A2":
			fmt.Println(eval.RunA2(recs, *seed))
		case "A3":
			fmt.Println(eval.RunA3(recs, *seed))
		case "A4":
			res, err := eval.RunA4(recs, []float64{0.5, 0.7, 0.9, 1.0})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(res)
		case "A5":
			fmt.Println(eval.RunA5([]float64{0, 0.25, 0.5, 0.75, 1.0}, *n, *seed))
		case "A6":
			fmt.Println(eval.RunA6(recs, *seed))
		case "A7":
			ont := ontology.MustNew(ontology.Options{})
			defer ont.Close()
			fmt.Println(eval.RunA7(recs, ont))
		default:
			log.Fatalf("unknown experiment %q", id)
		}
	}

	if strings.EqualFold(*exp, "all") {
		for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "F1", "A1", "A2", "A3", "A4", "A5", "A6", "A7"} {
			fmt.Printf("================ %s ================\n", id)
			run(id)
			fmt.Println()
		}
		return
	}
	run(strings.ToUpper(*exp))
}
