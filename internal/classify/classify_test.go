package classify

import (
	"reflect"
	"sync"
	"testing"
)

func TestNamesResolve(t *testing.T) {
	for _, name := range Names() {
		b, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if b.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, b.Name())
		}
		if b.Params() == "" {
			t.Errorf("New(%q).Params() is empty", name)
		}
	}
	if _, err := New("nearest-neighbor"); err == nil {
		t.Error("New with an unknown name succeeded, want error")
	}
	if Default().Name() != "id3" {
		t.Errorf("Default().Name() = %q, want id3 (the paper's backend)", Default().Name())
	}
}

func TestInstanceMemoizesViews(t *testing.T) {
	featCalls, tokCalls := 0, 0
	in := NewInstance(
		func() map[string]bool { featCalls++; return map[string]bool{"smoker": true} },
		func() []string { tokCalls++; return []string{"smoker"} },
	)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			in.Features()
			in.Tokens()
		}()
	}
	wg.Wait()
	if featCalls != 1 || tokCalls != 1 {
		t.Errorf("view constructors ran %d/%d times, want 1/1 (memoized)", featCalls, tokCalls)
	}
	if !in.Features()["smoker"] || in.Tokens()[0] != "smoker" {
		t.Error("memoized views lost their values")
	}
}

func TestInstanceZeroValueAndNilViews(t *testing.T) {
	var zero Instance
	if zero.Features() != nil || zero.Tokens() != nil {
		t.Error("zero Instance should yield nil views")
	}
	onlyFeats := NewInstance(func() map[string]bool { return map[string]bool{"x": true} }, nil)
	if onlyFeats.Tokens() != nil {
		t.Error("nil token constructor should yield nil tokens")
	}
	onlyToks := NewInstance(nil, func() []string { return []string{"x"} })
	if onlyToks.Features() != nil {
		t.Error("nil feature constructor should yield nil features")
	}
}

func TestEagerWrappers(t *testing.T) {
	f := FeatureInstance(map[string]bool{"quit": true})
	if !f.Features()["quit"] || f.Tokens() != nil {
		t.Error("FeatureInstance views wrong")
	}
	tok := TokenInstance([]string{"quit"})
	if tok.Tokens()[0] != "quit" || tok.Features() != nil {
		t.Error("TokenInstance views wrong")
	}
}

// treeExamples is a tiny linearly separable feature dataset.
func treeExamples() []Example {
	return []Example{
		{Instance: FeatureInstance(map[string]bool{"smokes": true, "denies": false}), Class: "current"},
		{Instance: FeatureInstance(map[string]bool{"smokes": true, "pack": true}), Class: "current"},
		{Instance: FeatureInstance(map[string]bool{"denies": true}), Class: "never"},
		{Instance: FeatureInstance(map[string]bool{"denies": true, "tobacco": true}), Class: "never"},
	}
}

func TestTreeBackends(t *testing.T) {
	for _, b := range []Backend{ID3{}, Gini{}} {
		m := b.Train(treeExamples())
		if m.Backend() != b.Name() {
			t.Errorf("%s model reports backend %q", b.Name(), m.Backend())
		}
		if m.Size() < 1 {
			t.Errorf("%s model size = %d, want >= 1", b.Name(), m.Size())
		}
		for _, e := range treeExamples() {
			if got := m.Predict(e.Instance); got != e.Class {
				t.Errorf("%s predicted %q for a training example of class %q", b.Name(), got, e.Class)
			}
		}
	}
}

func tokenExamples() []Example {
	return []Example{
		{Instance: TokenInstance([]string{"she", "smokes", "one", "pack", "per", "day"}), Class: "current"},
		{Instance: TokenInstance([]string{"current", "smoker", "for", "20", "years"}), Class: "current"},
		{Instance: TokenInstance([]string{"she", "denies", "tobacco", "use"}), Class: "never"},
		{Instance: TokenInstance([]string{"never", "a", "smoker"}), Class: "never"},
		{Instance: TokenInstance([]string{"former", "smoker", "quit", "ten", "years", "ago"}), Class: "former"},
		{Instance: TokenInstance([]string{"she", "quit", "smoking", "five", "years", "ago"}), Class: "former"},
	}
}

func TestVectorTrainPredict(t *testing.T) {
	m := NewVector().Train(tokenExamples())
	if m.Backend() != "vector" {
		t.Errorf("model backend = %q", m.Backend())
	}
	if m.Size() < 1 {
		t.Errorf("model size = %d, want >= 1", m.Size())
	}
	for _, e := range tokenExamples() {
		if got := m.Predict(e.Instance); got != e.Class {
			t.Errorf("predicted %q for a training example of class %q", got, e.Class)
		}
	}
	// Held-out paraphrases near each centroid.
	cases := []struct {
		tokens []string
		want   string
	}{
		{[]string{"smokes", "half", "a", "pack", "per", "day"}, "current"},
		{[]string{"denies", "smoking"}, "never"},
		{[]string{"quit", "smoking", "in", "1995"}, "former"},
	}
	for _, c := range cases {
		if got := m.Predict(TokenInstance(c.tokens)); got != c.want {
			t.Errorf("Predict(%v) = %q, want %q", c.tokens, got, c.want)
		}
	}
}

func TestVectorDeterministic(t *testing.T) {
	a := NewVector().Train(tokenExamples())
	b := NewVector().Train(tokenExamples())
	probes := [][]string{
		{"smoker"}, {"tobacco"}, {"quit"}, {"she", "smokes"}, {"denies", "use"},
	}
	for _, p := range probes {
		if ga, gb := a.Predict(TokenInstance(p)), b.Predict(TokenInstance(p)); ga != gb {
			t.Errorf("two identical trainings disagree on %v: %q vs %q", p, ga, gb)
		}
	}
}

func TestVectorDegenerate(t *testing.T) {
	empty := NewVector().Train(nil)
	if got := empty.Predict(TokenInstance([]string{"smoker"})); got != "" {
		t.Errorf("untrained model predicted %q, want \"\"", got)
	}
	if empty.Size() != 0 {
		t.Errorf("untrained model size = %d, want 0", empty.Size())
	}
	m := NewVector().Train(tokenExamples())
	if got := m.Predict(Instance{}); got != "" {
		t.Errorf("predicting an instance with no tokens yielded %q, want \"\"", got)
	}
}

func TestVectorTieBreaksOnFirstSortedLabel(t *testing.T) {
	// Two labels with identical training text: every probe ties, and the
	// sorted-label order must decide deterministically.
	exs := []Example{
		{Instance: TokenInstance([]string{"same", "words"}), Class: "zebra"},
		{Instance: TokenInstance([]string{"same", "words"}), Class: "aardvark"},
	}
	m := NewVector().Train(exs)
	if got := m.Predict(TokenInstance([]string{"same", "words"})); got != "aardvark" {
		t.Errorf("tie broke to %q, want first sorted label \"aardvark\"", got)
	}
}

func TestCrossValidateDegenerate(t *testing.T) {
	if res := CrossValidate(ID3{}, treeExamples(), 1, 10, 7); res.Accuracy != 0 || res.Backend != "id3" {
		t.Errorf("k=1 should yield a zero result tagged with the backend, got %+v", res)
	}
	if res := CrossValidate(NewVector(), tokenExamples()[:2], 5, 10, 7); res.Accuracy != 0 || res.Backend != "vector" {
		t.Errorf("too few examples should yield a zero result, got %+v", res)
	}
}

func TestCrossValidateCountsAndDeterminism(t *testing.T) {
	exs := append(treeExamples(), treeExamples()...) // 8 examples, 2 classes
	a := CrossValidate(ID3{}, exs, 4, 3, 2005)
	b := CrossValidate(ID3{}, exs, 4, 3, 2005)
	if !reflect.DeepEqual(a, b) {
		t.Error("same backend/seed produced different CV results")
	}
	total := 0
	for _, row := range a.Confusion {
		for _, n := range row {
			total += n
		}
	}
	if want := len(exs) * a.Rounds; total != want {
		t.Errorf("confusion total = %d, want examples×rounds = %d", total, want)
	}
	if a.Backend != "id3" || a.Folds != 4 || a.Rounds != 3 {
		t.Errorf("protocol fields drifted: %+v", a)
	}
}
