// Command linkparse parses sentences with the link grammar parser and
// prints their linkage diagrams, regenerating the paper's Figure 1.
//
// Usage:
//
//	linkparse ["Sentence one." "Sentence two."]
//
// With no arguments it parses the Figure 1 sentence.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/linkgram"
	"repro/internal/textproc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("linkparse: ")

	args := os.Args[1:]
	if len(args) == 0 {
		args = []string{"Blood pressure is 144/90, pulse of 84, temperature of 98.3, and weight of 154 pounds."}
	}
	for _, text := range args {
		for _, sent := range textproc.SplitSentences(text) {
			lk, err := linkgram.ParseSentence(sent)
			if err != nil {
				fmt.Printf("%s\n  (no linkage: %v — the extractor would fall back to patterns)\n\n", sent.Text, err)
				continue
			}
			fmt.Println(lk.Diagram())
			fmt.Println()
			for _, l := range lk.Links {
				fmt.Printf("  %-3s %s — %s\n", l.Label, lk.Words[l.Left].Text, lk.Words[l.Right].Text)
			}
			fmt.Println()
		}
	}
}
