package core

import (
	"testing"

	"repro/internal/records"
)

func TestSmokingFieldExamples(t *testing.T) {
	recs := records.Generate(records.DefaultGenOptions())
	f := SmokingField()
	exs := f.Examples(recs)
	// The paper: five subjects lack smoking information; forty-five are
	// evaluated.
	if len(exs) != 45 {
		t.Fatalf("examples = %d, want 45", len(exs))
	}
	counts := map[string]int{}
	for _, e := range exs {
		counts[e.Class]++
	}
	if counts[records.SmokingNever] != 28 || counts[records.SmokingCurrent] != 12 || counts[records.SmokingFormer] != 5 {
		t.Errorf("class counts = %v, want 28/12/5", counts)
	}
}

func TestE3SmokingCrossValidation(t *testing.T) {
	// The paper: 5-fold CV × 10 shuffled rounds, average precision
	// (recall) 92.2%, trees using 4–7 features. Our corpus is synthetic,
	// so we assert the shape: accuracy in the high 80s or better with
	// compact trees.
	recs := records.Generate(records.DefaultGenOptions())
	f := SmokingField()
	res := f.CrossValidate(recs, 5, 10, 1)
	t.Logf("smoking CV: %v", res)
	if res.Accuracy < 0.85 {
		t.Errorf("smoking CV accuracy = %.1f%%, want ≥85%%", 100*res.Accuracy)
	}
	if res.MinFeatures < 2 || res.MaxFeatures > 12 {
		t.Errorf("feature range %d–%d, want compact trees", res.MinFeatures, res.MaxFeatures)
	}
}

func TestTrainAndClassifySmoking(t *testing.T) {
	recs := records.Generate(records.DefaultGenOptions())
	clf := TrainCategorical(SmokingField(), recs)
	correct, total := 0, 0
	for _, r := range recs {
		if r.Gold.Smoking == "" {
			continue
		}
		total++
		if clf.Classify(r.Text) == r.Gold.Smoking {
			correct++
		}
	}
	if float64(correct)/float64(total) < 0.95 {
		t.Errorf("training-set accuracy %d/%d too low", correct, total)
	}
}

func TestA3AlcoholNumericFeatures(t *testing.T) {
	// The paper's proposed numeric Boolean features must help the alcohol
	// field, whose classes are defined by numeric thresholds.
	recs := records.Generate(records.DefaultGenOptions())
	plain := AlcoholField(false).CrossValidate(recs, 5, 10, 1)
	numeric := AlcoholField(true).CrossValidate(recs, 5, 10, 1)
	t.Logf("alcohol without numeric features: %.1f%%", 100*plain.Accuracy)
	t.Logf("alcohol with numeric features:    %.1f%%", 100*numeric.Accuracy)
	if numeric.Accuracy < plain.Accuracy {
		t.Errorf("numeric features should not hurt: %.3f → %.3f", plain.Accuracy, numeric.Accuracy)
	}
}

func TestShapeField(t *testing.T) {
	recs := records.Generate(records.DefaultGenOptions())
	res := ShapeField().CrossValidate(recs, 5, 5, 1)
	t.Logf("shape CV: %.1f%%", 100*res.Accuracy)
	if res.Accuracy < 0.8 {
		t.Errorf("shape CV accuracy = %.1f%%", 100*res.Accuracy)
	}
}

func TestFieldTextMissingSection(t *testing.T) {
	if got := SmokingField().FieldText("Chief Complaint:  Pain.\n"); got != "" {
		t.Errorf("FieldText on missing section = %q", got)
	}
}
