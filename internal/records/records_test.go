package records

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/textproc"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultGenOptions())
	b := Generate(DefaultGenOptions())
	if len(a) != 50 || len(b) != 50 {
		t.Fatalf("lengths %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Text != b[i].Text {
			t.Fatalf("record %d differs between runs", i)
		}
	}
}

func TestGenerateSmokingQuotas(t *testing.T) {
	recs := Generate(DefaultGenOptions())
	counts := map[string]int{}
	for _, r := range recs {
		counts[r.Gold.Smoking]++
	}
	// The paper: 28 never, 12 current, 5 former, 5 missing.
	if counts[SmokingNever] != 28 || counts[SmokingCurrent] != 12 || counts[SmokingFormer] != 5 || counts[""] != 5 {
		t.Errorf("smoking distribution = %v, want 28/12/5/5", counts)
	}
}

func TestGenerateSectionsParse(t *testing.T) {
	recs := Generate(DefaultGenOptions())
	for _, r := range recs[:10] {
		secs := textproc.SplitSections(r.Text)
		for _, h := range []string{"Patient", "GYN History", "Past Medical History", "Social History", "Vitals"} {
			if _, ok := textproc.FindSection(secs, h); !ok {
				t.Errorf("record %d missing section %q", r.ID, h)
			}
		}
	}
}

func TestGenerateGoldComplete(t *testing.T) {
	recs := Generate(DefaultGenOptions())
	for _, r := range recs {
		for _, attr := range []string{AttrAge, AttrMenarche, AttrGravida, AttrPara, AttrBloodPressure, AttrPulse, AttrWeight} {
			if _, ok := r.Gold.Numeric[attr]; !ok {
				t.Errorf("record %d missing numeric gold %q", r.ID, attr)
			}
		}
		bp := r.Gold.Numeric[AttrBloodPressure]
		if bp.Value < 100 || bp.Value2 < 60 {
			t.Errorf("record %d has implausible BP %v", r.ID, bp)
		}
		if len(r.Gold.PastMedical) == 0 {
			t.Errorf("record %d has empty past medical history", r.ID)
		}
		if r.Gold.Shape == "" {
			t.Errorf("record %d missing shape", r.ID)
		}
	}
}

func TestGenerateFirstBirthConsistency(t *testing.T) {
	recs := Generate(DefaultGenOptions())
	for _, r := range recs {
		_, has := r.Gold.Numeric[AttrFirstBirthAge]
		para := r.Gold.Numeric[AttrPara].Value
		if has && para < 1 {
			t.Errorf("record %d has first-birth age but para=0", r.ID)
		}
		if !has && para >= 1 {
			t.Errorf("record %d para=%v but no first-birth age", r.ID, para)
		}
		if has && !strings.Contains(r.Text, "First live birth") {
			t.Errorf("record %d gold has first birth but text does not", r.ID)
		}
	}
}

func TestGenerateVitalsTextMatchesGold(t *testing.T) {
	recs := Generate(DefaultGenOptions())
	for _, r := range recs {
		bp := r.Gold.Numeric[AttrBloodPressure]
		want := fmt.Sprintf("%.0f/%.0f", bp.Value, bp.Value2)
		if !strings.Contains(r.Text, want) {
			t.Errorf("record %d: BP %s not in text", r.ID, want)
		}
	}
}

func TestGenerateStyleDiversityChangesText(t *testing.T) {
	opts := DefaultGenOptions()
	base := Generate(opts)
	opts.StyleDiversity = 1.0
	diverse := Generate(opts)
	changed := 0
	for i := range base {
		if base[i].Text != diverse[i].Text {
			changed++
		}
	}
	if changed < 40 {
		t.Errorf("style diversity changed only %d/50 records", changed)
	}
}

func TestGenerateMedicationsGold(t *testing.T) {
	recs := Generate(DefaultGenOptions())
	withMeds := 0
	for _, r := range recs {
		secs := textproc.SplitSections(r.Text)
		sec, ok := textproc.FindSection(secs, "Medications")
		if !ok {
			t.Fatalf("record %d missing Medications section", r.ID)
		}
		if len(r.Gold.Medications) == 0 {
			if sec.Body != "None." {
				t.Errorf("record %d: empty gold but body %q", r.ID, sec.Body)
			}
			continue
		}
		withMeds++
		if sec.Body == "None." {
			t.Errorf("record %d: gold %v but body None", r.ID, r.Gold.Medications)
		}
	}
	if withMeds < 25 {
		t.Errorf("only %d/50 records carry medications", withMeds)
	}
}

func TestGenerateBinaryFieldQuotas(t *testing.T) {
	recs := Generate(DefaultGenOptions())
	family := map[string]int{}
	drugs := map[string]int{}
	for _, r := range recs {
		family[r.Gold.FamilyBC]++
		drugs[r.Gold.DrugUse]++
	}
	if family[FamilyBCPositive] != 20 || family[FamilyBCNegative] != 30 {
		t.Errorf("family quota = %v, want 20/30", family)
	}
	if drugs[DrugUseNone] != 40 || drugs[DrugUsePositive] != 10 {
		t.Errorf("drug quota = %v, want 40/10", drugs)
	}
}

func TestGenerateFamilyHistoryTextConsistent(t *testing.T) {
	recs := Generate(DefaultGenOptions())
	for _, r := range recs {
		secs := textproc.SplitSections(r.Text)
		sec, ok := textproc.FindSection(secs, "Family History")
		if !ok {
			t.Fatalf("record %d missing family history", r.ID)
		}
		hasBC := strings.Contains(strings.ToLower(sec.Body), "breast cancer")
		switch r.Gold.FamilyBC {
		case FamilyBCPositive:
			if !hasBC {
				t.Errorf("record %d: positive gold but body %q", r.ID, sec.Body)
			}
		case FamilyBCNegative:
			// Negative phrasings may mention breast cancer ("Negative for
			// breast cancer") — but never an affected relative.
			for _, rel := range []string{"mother with", "aunt with", "sister with", "grandmother had"} {
				if strings.Contains(strings.ToLower(sec.Body), rel) {
					t.Errorf("record %d: negative gold but body %q", r.ID, sec.Body)
				}
			}
		}
	}
}

func TestWriteReadCorpus(t *testing.T) {
	dir := t.TempDir()
	recs := Generate(GenOptions{N: 5, Seed: 1})
	if err := WriteCorpus(dir, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("read %d records", len(got))
	}
	for i := range recs {
		if got[i].Text != recs[i].Text || got[i].Gold.Smoking != recs[i].Gold.Smoking {
			t.Errorf("record %d round-trip mismatch", i)
		}
	}
}

func TestSplitPredefined(t *testing.T) {
	pre, other := SplitPredefined(
		[]string{"diabetes", "chronic fatigue syndrome", "copd"},
		[]string{"diabetes", "copd", "asthma"},
	)
	if len(pre) != 2 || len(other) != 1 {
		t.Fatalf("pre=%v other=%v", pre, other)
	}
	if other[0] != "chronic fatigue syndrome" {
		t.Errorf("other = %v", other)
	}
}

func TestQuotaPlan(t *testing.T) {
	plan := quotaPlan(10, map[string]float64{"a": 0.5, "b": 0.3, "c": 0.2})
	if len(plan) != 10 {
		t.Fatalf("plan length %d", len(plan))
	}
	counts := map[string]int{}
	for _, c := range plan {
		counts[c]++
	}
	if counts["a"] != 5 || counts["b"] != 3 || counts["c"] != 2 {
		t.Errorf("quota counts = %v", counts)
	}
}
