package textproc

import (
	"math"
	"testing"
)

func annotate(t *testing.T, text string) []NumberAnn {
	t.Helper()
	sents := SplitSentences(text)
	if len(sents) != 1 {
		t.Fatalf("expected 1 sentence for %q, got %d", text, len(sents))
	}
	return AnnotateNumbers(sents[0])
}

func TestAnnotateDigits(t *testing.T) {
	anns := annotate(t, "Blood pressure is 144/90, pulse of 84, temperature of 98.3, and weight of 154 pounds.")
	if len(anns) != 4 {
		t.Fatalf("got %d numbers, want 4: %+v", len(anns), anns)
	}
	if !anns[0].IsRatio || anns[0].Value != 144 || anns[0].Value2 != 90 {
		t.Errorf("ratio ann = %+v", anns[0])
	}
	if anns[1].Value != 84 {
		t.Errorf("pulse = %+v", anns[1])
	}
	if math.Abs(anns[2].Value-98.3) > 1e-9 {
		t.Errorf("temperature = %+v", anns[2])
	}
	if anns[3].Value != 154 {
		t.Errorf("weight = %+v", anns[3])
	}
}

func TestAnnotateWordNumbers(t *testing.T) {
	cases := []struct {
		text string
		want float64
		span int
	}{
		{"Menarche at age seventeen years.", 17, 1},
		{"She is fifty years old.", 50, 1},
		{"She smoked for twenty five years.", 25, 2},
		{"Weight of one hundred and four pounds.", 104, 4},
		{"Weight of two hundred eleven pounds.", 211, 3},
		{"Her age is twenty-five years.", 25, 1},
	}
	for _, c := range cases {
		anns := annotate(t, c.text)
		if len(anns) != 1 {
			t.Errorf("%q: got %d numbers, want 1: %+v", c.text, len(anns), anns)
			continue
		}
		a := anns[0]
		if a.Value != c.want {
			t.Errorf("%q: value = %v, want %v", c.text, a.Value, c.want)
		}
		if a.TokenSpan != c.span {
			t.Errorf("%q: span = %d, want %d", c.text, a.TokenSpan, c.span)
		}
		if !a.FromWords {
			t.Errorf("%q: FromWords = false", c.text)
		}
	}
}

func TestAnnotateRange(t *testing.T) {
	anns := annotate(t, "Alcohol use 1-2 day per week.")
	if len(anns) != 1 {
		t.Fatalf("got %d numbers, want 1: %+v", len(anns), anns)
	}
	a := anns[0]
	if !a.IsRange || a.Value != 1 || a.Value2 != 2 {
		t.Errorf("range ann = %+v", a)
	}
}

func TestAnnotateNoFalsePositives(t *testing.T) {
	anns := annotate(t, "She denies any tobacco or alcohol use.")
	if len(anns) != 0 {
		t.Errorf("false positives: %+v", anns)
	}
}

func TestAnnotateTokenIndices(t *testing.T) {
	sents := SplitSentences("Pulse of 84 and weight of 154.")
	anns := AnnotateNumbers(sents[0])
	if len(anns) != 2 {
		t.Fatalf("got %d anns: %+v", len(anns), anns)
	}
	for _, a := range anns {
		tok := sents[0].Tokens[a.TokenIndex]
		if tok.Text != a.Text {
			t.Errorf("TokenIndex mismatch: token %q vs ann %q", tok.Text, a.Text)
		}
	}
}
