package eval

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/id3"
	"repro/internal/ontology"
	"repro/internal/records"
)

// Experiments drive the reproduction of every table and figure in the
// paper's evaluation (§5) plus the ablations DESIGN.md calls out. Each
// Run* function is deterministic given its inputs and returns a printable
// result; cmd/evaltab and the benchmark suite are thin wrappers.

// E1Result is the numeric-field experiment: per-attribute precision and
// recall (the paper reports 100% on all eight attributes).
type E1Result struct {
	Strategy core.Strategy
	PerAttr  map[string]Accuracy
	Overall  Accuracy
}

// RunE1 extracts the eight numeric attributes from every record and
// scores them against gold.
func RunE1(recs []records.Record, strategy core.Strategy) E1Result {
	x := core.NewNumericExtractor(strategy)
	res := E1Result{Strategy: strategy, PerAttr: map[string]Accuracy{}}
	for _, r := range recs {
		got := x.Extract(r.Text)
		for attr, gold := range r.Gold.Numeric {
			v, ok := got[attr]
			correct := ok && v.Value == gold.Value && (!v.Ratio || v.Value2 == gold.Value2)
			a := res.PerAttr[attr]
			a.Add(ok, correct)
			res.PerAttr[attr] = a
			res.Overall.Add(ok, correct)
		}
	}
	return res
}

// String renders the per-attribute table.
func (r E1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E1 numeric extraction (%s)\n", r.Strategy)
	fmt.Fprintf(&b, "%-22s %10s %10s\n", "Attribute", "Precision", "Recall")
	for _, attr := range records.NumericAttrs {
		a, ok := r.PerAttr[attr]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "%-22s %9.1f%% %9.1f%%\n", attr, 100*a.Precision(), 100*a.Recall())
	}
	fmt.Fprintf(&b, "%-22s %9.1f%% %9.1f%%\n", "ALL", 100*r.Overall.Precision(), 100*r.Overall.Recall())
	return b.String()
}

// E2Result is Table 1: the four medical-term attributes.
type E2Result struct {
	ResolveSynonyms bool
	PreMedical      PR
	OtherMedical    PR
	PreSurgical     PR
	OtherSurgical   PR
}

// RunE2 reproduces Table 1 on the corpus with the given ontology and
// synonym-resolution setting (false = the paper's evaluated system).
func RunE2(recs []records.Record, ont *ontology.Ontology, resolveSynonyms bool) E2Result {
	sys := &core.System{
		Numeric: core.NewNumericExtractor(core.LinkGrammar),
		Terms:   &core.TermExtractor{Ont: ont, ResolveSynonyms: resolveSynonyms},
	}
	res := E2Result{ResolveSynonyms: resolveSynonyms}
	exs := sys.ProcessAll(recs, 0)
	for i, r := range recs {
		ex := exs[i]
		goldPreM, goldOtherM := records.SplitPredefined(r.Gold.PastMedical, ontology.PredefinedMedical)
		goldPreS, goldOtherS := records.SplitPredefined(r.Gold.PastSurgical, ontology.PredefinedSurgical)
		res.PreMedical.AddSets(ex.PreMedical, goldPreM)
		res.OtherMedical.AddSets(ex.OtherMedical, goldOtherM)
		res.PreSurgical.AddSets(ex.PreSurgical, goldPreS)
		res.OtherSurgical.AddSets(ex.OtherSurgical, goldOtherS)
	}
	return res
}

// String renders Table 1.
func (r E2Result) String() string {
	return Table(fmt.Sprintf("E2 / Table 1: medical term extraction (synonym resolution %v)", r.ResolveSynonyms),
		[]struct {
			Label string
			PR    PR
		}{
			{"Predefined Past Medical History", r.PreMedical},
			{"Other Past Medical History", r.OtherMedical},
			{"Predefined Past Surgical History", r.PreSurgical},
			{"Other Past Surgical History", r.OtherSurgical},
		})
}

// RunE3 reproduces the smoking cross-validation (§5): 5-fold CV repeated
// ten times with shuffles, on the paper's ID3 backend.
func RunE3(recs []records.Record, seed int64) classify.CVResult {
	return RunE3With(recs, seed, nil)
}

// RunE3With is RunE3 on a selectable classification backend (nil = the
// ID3 default), so the experiment can compare backends under the
// identical protocol.
func RunE3With(recs []records.Record, seed int64, b classify.Backend) classify.CVResult {
	return core.SmokingField().WithBackend(b).CrossValidate(recs, 5, 10, seed)
}

// A1Result compares association strategies on multi-feature sentences.
type A1Result struct {
	Rows []A1Row
}

// A1Row is one strategy's numeric-extraction score.
type A1Row struct {
	Strategy core.Strategy
	Overall  Accuracy
}

// RunA1 runs E1 under each association strategy on a corpus; with style
// diversity > 0 the pattern baselines fall behind link grammar.
func RunA1(recs []records.Record) A1Result {
	var res A1Result
	for _, s := range []core.Strategy{core.LinkGrammar, core.PatternOnly, core.ProximityOnly} {
		e1 := RunE1(recs, s)
		res.Rows = append(res.Rows, A1Row{Strategy: s, Overall: e1.Overall})
	}
	return res
}

// String renders the strategy comparison.
func (r A1Result) String() string {
	var b strings.Builder
	b.WriteString("A1 number-feature association strategies\n")
	fmt.Fprintf(&b, "%-16s %10s %10s\n", "Strategy", "Precision", "Recall")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16s %9.1f%% %9.1f%%\n", row.Strategy, 100*row.Overall.Precision(), 100*row.Overall.Recall())
	}
	return b.String()
}

// A2Result sweeps ID3 feature-extraction options on the smoking task.
type A2Result struct {
	Rows []A2Row
}

// A2Row is one option configuration's CV accuracy.
type A2Row struct {
	Name     string
	Accuracy float64
	MinFeat  int
	MaxFeat  int
}

// RunA2 evaluates the §3.3 option grid the paper discusses: the
// recommended configuration, lemma off, head-only on, and single-POS
// variants.
func RunA2(recs []records.Record, seed int64) A2Result {
	field := core.SmokingField()
	configs := []struct {
		name string
		opts id3.FeatureOptions
	}{
		{"all POS, lemma on (paper)", id3.DefaultOptions()},
		{"all POS, lemma off", func() id3.FeatureOptions { o := id3.DefaultOptions(); o.UseLemma = false; return o }()},
		{"all POS, head-only on", func() id3.FeatureOptions { o := id3.DefaultOptions(); o.HeadOnly = true; return o }()},
		{"verbs only", id3.FeatureOptions{Verbs: true, UseLemma: true}},
		{"nouns only", id3.FeatureOptions{Nouns: true, UseLemma: true}},
		{"adverbs only", id3.FeatureOptions{Adverbs: true, UseLemma: true}},
	}
	var res A2Result
	for _, cfg := range configs {
		f := field
		f.Options = cfg.opts
		cv := f.CrossValidate(recs, 5, 10, seed)
		res.Rows = append(res.Rows, A2Row{Name: cfg.name, Accuracy: cv.Accuracy, MinFeat: cv.MinFeatures, MaxFeat: cv.MaxFeatures})
	}
	return res
}

// String renders the option sweep.
func (r A2Result) String() string {
	var b strings.Builder
	b.WriteString("A2 ID3 feature-extraction options (smoking)\n")
	fmt.Fprintf(&b, "%-28s %10s %10s\n", "Configuration", "Accuracy", "Features")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-28s %9.1f%% %7d–%d\n", row.Name, 100*row.Accuracy, row.MinFeat, row.MaxFeat)
	}
	return b.String()
}

// A3Result compares the alcohol field with and without numeric Boolean
// threshold features.
type A3Result struct {
	Plain   float64
	Numeric float64
}

// RunA3 evaluates the paper's proposed numeric Boolean features.
func RunA3(recs []records.Record, seed int64) A3Result {
	return A3Result{
		Plain:   core.AlcoholField(false).CrossValidate(recs, 5, 10, seed).Accuracy,
		Numeric: core.AlcoholField(true).CrossValidate(recs, 5, 10, seed).Accuracy,
	}
}

// String renders the comparison.
func (r A3Result) String() string {
	return fmt.Sprintf("A3 alcohol use (numeric Boolean features)\nword features only:      %.1f%%\nwith numeric thresholds: %.1f%%\n",
		100*r.Plain, 100*r.Numeric)
}

// A4Result sweeps ontology coverage against term-extraction scores.
type A4Result struct {
	Rows []A4Row
}

// A4Row is one coverage level.
type A4Row struct {
	Coverage float64
	Medical  PR // predefined + other combined, micro
	Surgical PR
}

// RunA4 reproduces the paper's error analysis ("false positives are
// mainly caused by the incompleteness of domain ontology") as a coverage
// sweep.
func RunA4(recs []records.Record, coverages []float64) (A4Result, error) {
	var res A4Result
	for _, cov := range coverages {
		ont, err := ontology.New(ontology.Options{Coverage: cov})
		if err != nil {
			return res, err
		}
		e2 := RunE2(recs, ont, true)
		var med, surg PR
		med.Add(e2.PreMedical.ETrue+e2.OtherMedical.ETrue, e2.PreMedical.ETotal+e2.OtherMedical.ETotal, e2.PreMedical.TInst+e2.OtherMedical.TInst)
		surg.Add(e2.PreSurgical.ETrue+e2.OtherSurgical.ETrue, e2.PreSurgical.ETotal+e2.OtherSurgical.ETotal, e2.PreSurgical.TInst+e2.OtherSurgical.TInst)
		res.Rows = append(res.Rows, A4Row{Coverage: cov, Medical: med, Surgical: surg})
		ont.Close()
	}
	return res, nil
}

// String renders the sweep.
func (r A4Result) String() string {
	var b strings.Builder
	b.WriteString("A4 ontology coverage sweep (synonym resolution on)\n")
	fmt.Fprintf(&b, "%-10s %22s %22s\n", "Coverage", "Medical P/R", "Surgical P/R")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10.0f%% %10.1f%%/%6.1f%% %10.1f%%/%6.1f%%\n",
			100*row.Coverage,
			100*row.Medical.Precision(), 100*row.Medical.Recall(),
			100*row.Surgical.Precision(), 100*row.Surgical.Recall())
	}
	return b.String()
}

// A5Result sweeps writing-style diversity against all three extractors.
type A5Result struct {
	Rows []A5Row
}

// A5Row is one diversity level.
type A5Row struct {
	Diversity  float64
	NumericP   float64
	NumericR   float64
	SmokingAcc float64
}

// RunA5 tests the paper's prediction that "when more diversified writing
// styles are introduced into patient records, the performance of the
// extraction process may be degraded".
func RunA5(diversities []float64, n int, seed int64) A5Result {
	var res A5Result
	for _, d := range diversities {
		opts := records.DefaultGenOptions()
		opts.N = n
		opts.StyleDiversity = d
		recs := records.Generate(opts)
		e1 := RunE1(recs, core.LinkGrammar)
		e3 := RunE3(recs, seed)
		res.Rows = append(res.Rows, A5Row{
			Diversity:  d,
			NumericP:   e1.Overall.Precision(),
			NumericR:   e1.Overall.Recall(),
			SmokingAcc: e3.Accuracy,
		})
	}
	return res
}

// String renders the sweep.
func (r A5Result) String() string {
	var b strings.Builder
	b.WriteString("A5 writing-style diversity sweep\n")
	fmt.Fprintf(&b, "%-10s %12s %12s %12s\n", "Diversity", "Numeric P", "Numeric R", "Smoking acc")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10.2f %11.1f%% %11.1f%% %11.1f%%\n",
			row.Diversity, 100*row.NumericP, 100*row.NumericR, 100*row.SmokingAcc)
	}
	return b.String()
}

// E4Result covers the paper's unfinished categorical fields: the binary
// attributes plus shape, each cross-validated with the §5 protocol.
type E4Result struct {
	Rows []E4Row
}

// E4Row is one categorical field's CV outcome.
type E4Row struct {
	Attr     string
	Classes  int
	Accuracy float64
	MinFeat  int
	MaxFeat  int
}

// RunE4 cross-validates the categorical fields the paper did not finish,
// on a selectable backend (nil = the ID3 default).
func RunE4(recs []records.Record, seed int64, b classify.Backend) E4Result {
	var res E4Result
	for _, f := range []core.CategoricalField{
		core.FamilyBCField(),
		core.DrugUseField(),
		core.ShapeField(),
		core.AlcoholField(true),
	} {
		cv := f.WithBackend(b).CrossValidate(recs, 5, 10, seed)
		res.Rows = append(res.Rows, E4Row{
			Attr:     f.Attr,
			Classes:  len(cv.PerClass),
			Accuracy: cv.Accuracy,
			MinFeat:  cv.MinFeatures,
			MaxFeat:  cv.MaxFeatures,
		})
	}
	return res
}

// String renders the categorical-field table.
func (r E4Result) String() string {
	var b strings.Builder
	b.WriteString("E4 remaining categorical fields (paper future work)\n")
	fmt.Fprintf(&b, "%-24s %8s %10s %10s\n", "Attribute", "Classes", "Accuracy", "Features")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-24s %8d %9.1f%% %7d–%d\n", row.Attr, row.Classes, 100*row.Accuracy, row.MinFeat, row.MaxFeat)
	}
	return b.String()
}

// RunE5 measures medication-list extraction (the Medications section of
// the appendix records), an attribute the paper's task list includes in
// its "four numeric multi-valued medical terms".
func RunE5(recs []records.Record, ont *ontology.Ontology) PR {
	sys := &core.System{
		Numeric: core.NewNumericExtractor(core.LinkGrammar),
		Terms:   &core.TermExtractor{Ont: ont, ResolveSynonyms: true},
	}
	var pr PR
	exs := sys.ProcessAll(recs, 0)
	for i, r := range recs {
		pr.AddSets(exs[i].Medications, r.Gold.Medications)
	}
	return pr
}

// A6Result compares split criteria under the identical CV protocol,
// testing the paper's claim that "the ID3 decision tree is supposed to
// use less features than other decision tree algorithms".
type A6Result struct {
	ID3  classify.CVResult
	Gini classify.CVResult
}

// RunA6 cross-validates the smoking field with information gain (ID3)
// and Gini impurity (CART-style) splits, through the backend interface.
func RunA6(recs []records.Record, seed int64) A6Result {
	exs := core.SmokingField().Examples(recs)
	return A6Result{
		ID3:  classify.CrossValidate(classify.ID3{}, exs, 5, 10, seed),
		Gini: classify.CrossValidate(classify.Gini{}, exs, 5, 10, seed),
	}
}

// String renders the criterion comparison.
func (r A6Result) String() string {
	return fmt.Sprintf("A6 split criterion (smoking)\n%-18s accuracy %.1f%%, features %d–%d\n%-18s accuracy %.1f%%, features %d–%d\n",
		"ID3 (info gain)", 100*r.ID3.Accuracy, r.ID3.MinFeatures, r.ID3.MaxFeatures,
		"Gini (CART)", 100*r.Gini.Accuracy, r.Gini.MinFeatures, r.Gini.MaxFeatures)
}

// A7Result measures the negation-filter extension on Table 1.
type A7Result struct {
	Baseline E2Result // the paper's system (no negation handling)
	Filtered E2Result // with the NegEx-style scope filter
}

// RunA7 reruns Table 1 with and without negation filtering (synonym
// resolution on in both, isolating the negation effect).
func RunA7(recs []records.Record, ont *ontology.Ontology) A7Result {
	res := A7Result{Baseline: RunE2(recs, ont, true)}
	sys := &core.System{
		Numeric: core.NewNumericExtractor(core.LinkGrammar),
		Terms:   &core.TermExtractor{Ont: ont, ResolveSynonyms: true, FilterNegated: true},
	}
	res.Filtered = E2Result{ResolveSynonyms: true}
	exs := sys.ProcessAll(recs, 0)
	for i, r := range recs {
		ex := exs[i]
		goldPreM, goldOtherM := records.SplitPredefined(r.Gold.PastMedical, ontology.PredefinedMedical)
		goldPreS, goldOtherS := records.SplitPredefined(r.Gold.PastSurgical, ontology.PredefinedSurgical)
		res.Filtered.PreMedical.AddSets(ex.PreMedical, goldPreM)
		res.Filtered.OtherMedical.AddSets(ex.OtherMedical, goldOtherM)
		res.Filtered.PreSurgical.AddSets(ex.PreSurgical, goldPreS)
		res.Filtered.OtherSurgical.AddSets(ex.OtherSurgical, goldOtherS)
	}
	return res
}

// String renders the negation comparison.
func (r A7Result) String() string {
	return fmt.Sprintf("A7 negation filtering (synonym resolution on)\n%-22s other-medical %s | other-surgical %s\n%-22s other-medical %s | other-surgical %s\n",
		"no negation handling", r.Baseline.OtherMedical, r.Baseline.OtherSurgical,
		"NegEx-style filter", r.Filtered.OtherMedical, r.Filtered.OtherSurgical)
}

// A8Result compares every registered classification backend on the
// smoking attribute under the identical CV protocol: the
// accuracy/capacity side of the accuracy/throughput dial the pluggable
// backend layer exposes (the throughput side is benchmarked in
// BenchmarkClassify*/BenchmarkTrain*).
type A8Result struct {
	Rows []classify.CVResult
}

// RunA8 cross-validates each registered backend on the smoking field.
func RunA8(recs []records.Record, seed int64) (A8Result, error) {
	field := core.SmokingField()
	var res A8Result
	for _, name := range classify.Names() {
		b, err := classify.New(name)
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, field.WithBackend(b).CrossValidate(recs, 5, 10, seed))
	}
	return res, nil
}

// String renders the backend comparison.
func (r A8Result) String() string {
	var b strings.Builder
	b.WriteString("A8 classification backends (smoking)\n")
	fmt.Fprintf(&b, "%-10s %10s %8s %12s\n", "Backend", "Accuracy", "±", "Model size")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %9.1f%% %7.1f%% %8d–%d\n",
			row.Backend, 100*row.Accuracy, 100*row.StdDev, row.MinFeatures, row.MaxFeatures)
	}
	return b.String()
}

// SortedAttrs returns map keys in stable order (helper for reports).
func SortedAttrs(m map[string]Accuracy) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
