// Package store is a small embedded table store: typed schemas, binary
// row encoding, an in-memory B-tree primary index, non-unique secondary
// indexes, and a write-ahead log with CRC framing and crash recovery.
//
// It is the substitute for the external databases in Zhou et al. (ICDE
// 2005): UMLS installed in a local DB2 instance (read path: ontology
// lookup by normalized string) and the Microsoft Access database holding
// extracted information (write path: result persistence).
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ColType is the type of a column.
type ColType uint8

// Column types.
const (
	TInt ColType = iota + 1
	TFloat
	TString
	TBool
)

// String returns the SQL-ish name of the type.
func (t ColType) String() string {
	switch t {
	case TInt:
		return "INTEGER"
	case TFloat:
		return "REAL"
	case TString:
		return "TEXT"
	case TBool:
		return "BOOLEAN"
	}
	return "UNKNOWN"
}

// Value is a dynamically typed cell value.
type Value struct {
	Type ColType
	I    int64
	F    float64
	S    string
	B    bool
}

// Int, Float, Str and Bool construct Values.
func Int(v int64) Value     { return Value{Type: TInt, I: v} }
func Float(v float64) Value { return Value{Type: TFloat, F: v} }
func Str(v string) Value    { return Value{Type: TString, S: v} }
func Bool(v bool) Value     { return Value{Type: TBool, B: v} }

// String renders the value for debugging.
func (v Value) String() string {
	switch v.Type {
	case TInt:
		return fmt.Sprintf("%d", v.I)
	case TFloat:
		return fmt.Sprintf("%g", v.F)
	case TString:
		return v.S
	case TBool:
		return fmt.Sprintf("%t", v.B)
	}
	return "<nil>"
}

// Equal reports deep equality of two values.
func (v Value) Equal(o Value) bool {
	if v.Type != o.Type {
		return false
	}
	switch v.Type {
	case TInt:
		return v.I == o.I
	case TFloat:
		return v.F == o.F
	case TString:
		return v.S == o.S
	case TBool:
		return v.B == o.B
	}
	return true
}

// Row is one record: a value per schema column, in schema order.
type Row []Value

// errors returned by the codec.
var (
	ErrCorrupt  = errors.New("store: corrupt record")
	ErrTypeMism = errors.New("store: value type does not match column type")
)

// encodeRow appends the binary encoding of row to buf and returns the
// extended buffer. Layout per value: 1 type byte then a fixed or
// length-prefixed payload.
func encodeRow(buf []byte, row Row) []byte {
	for _, v := range row {
		buf = append(buf, byte(v.Type))
		switch v.Type {
		case TInt:
			buf = binary.AppendUvarint(buf, zigzag(v.I))
		case TFloat:
			var b [8]byte
			binary.BigEndian.PutUint64(b[:], math.Float64bits(v.F))
			buf = append(buf, b[:]...)
		case TString:
			buf = binary.AppendUvarint(buf, uint64(len(v.S)))
			buf = append(buf, v.S...)
		case TBool:
			if v.B {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
		}
	}
	return buf
}

// decodeRow decodes exactly n values from buf, requiring the buffer to be
// fully consumed.
func decodeRow(buf []byte, n int) (Row, error) {
	row, rest, err := decodeValues(buf, n)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, ErrCorrupt
	}
	return row, nil
}

// decodeValues decodes n values from the front of buf and returns the
// unconsumed remainder, letting batch records concatenate several rows.
func decodeValues(buf []byte, n int) (Row, []byte, error) {
	row := make(Row, 0, n)
	for i := 0; i < n; i++ {
		if len(buf) == 0 {
			return nil, nil, ErrCorrupt
		}
		t := ColType(buf[0])
		buf = buf[1:]
		switch t {
		case TInt:
			u, k := binary.Uvarint(buf)
			if k <= 0 {
				return nil, nil, ErrCorrupt
			}
			buf = buf[k:]
			row = append(row, Int(unzigzag(u)))
		case TFloat:
			if len(buf) < 8 {
				return nil, nil, ErrCorrupt
			}
			row = append(row, Float(math.Float64frombits(binary.BigEndian.Uint64(buf[:8]))))
			buf = buf[8:]
		case TString:
			u, k := binary.Uvarint(buf)
			if k <= 0 || uint64(len(buf[k:])) < u {
				return nil, nil, ErrCorrupt
			}
			row = append(row, Str(string(buf[k:k+int(u)])))
			buf = buf[k+int(u):]
		case TBool:
			if len(buf) < 1 {
				return nil, nil, ErrCorrupt
			}
			row = append(row, Bool(buf[0] == 1))
			buf = buf[1:]
		default:
			return nil, nil, ErrCorrupt
		}
	}
	return row, buf, nil
}

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// encodeKey produces an order-preserving byte encoding of a value for use
// as a B-tree key: strings compare lexicographically, ints and floats
// numerically.
func encodeKey(v Value) []byte {
	switch v.Type {
	case TString:
		return append([]byte{byte(TString)}, v.S...)
	case TInt:
		var b [9]byte
		b[0] = byte(TInt)
		binary.BigEndian.PutUint64(b[1:], uint64(v.I)^(1<<63))
		return b[:]
	case TFloat:
		var b [9]byte
		b[0] = byte(TFloat)
		bits := math.Float64bits(v.F)
		if v.F >= 0 {
			bits |= 1 << 63
		} else {
			bits = ^bits
		}
		binary.BigEndian.PutUint64(b[1:], bits)
		return b[:]
	case TBool:
		if v.B {
			return []byte{byte(TBool), 1}
		}
		return []byte{byte(TBool), 0}
	}
	return nil
}
