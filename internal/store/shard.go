package store

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// Shard is one partition of the database: its own write-ahead log file,
// its own log mutex, and its own slice of every table's state (B-tree
// primary index, secondary indexes, row data). Shards share nothing, so
// writers on different shards append, flush and lock independently —
// the decomposition that lets ingest and queries scale with cores.
//
// Rows are assigned to shards by a stable hash of the encoded primary
// key (see shardIndex), so a row's home shard never changes across
// reopens and a primary key is globally unique even though each shard
// checks uniqueness only locally.
type Shard struct {
	id      int
	logMu   sync.Mutex // serializes WAL appends on this shard
	log     *wal       // nil = in-memory shard
	failed  error      // a failed compaction swap left the shard logless
	path    string
	dropped int // WAL records dropped during this shard's recovery
	tables  map[string]*tableShard
}

// openShard opens (creating if necessary) one shard's WAL and replays
// it into fresh table state. On replay failure the file handle is
// closed before returning, so an engine that fails mid-open leaks no
// descriptors.
func openShard(id int, path string) (*Shard, error) {
	l, err := openWAL(path)
	if err != nil {
		return nil, err
	}
	sh := &Shard{id: id, log: l, path: path, tables: make(map[string]*tableShard)}
	dropped, err := l.replay(sh.applyLogRecord)
	if err != nil {
		l.close()
		return nil, err
	}
	sh.dropped = dropped
	return sh, nil
}

// memShard returns an in-memory shard with no durable log.
func memShard(id int) *Shard {
	return &Shard{id: id, tables: make(map[string]*tableShard)}
}

// close flushes and closes the shard's log. Safe to call twice.
func (sh *Shard) close() error {
	sh.logMu.Lock()
	defer sh.logMu.Unlock()
	if sh.log == nil {
		return nil
	}
	err := sh.log.close()
	sh.log = nil
	return err
}

// sync flushes buffered log records to stable storage.
func (sh *Shard) sync() error {
	sh.logMu.Lock()
	defer sh.logMu.Unlock()
	if sh.log == nil {
		return nil
	}
	return sh.log.sync()
}

// logSize returns the shard WAL's current size in bytes.
func (sh *Shard) logSize() int64 {
	sh.logMu.Lock()
	defer sh.logMu.Unlock()
	if sh.log == nil {
		return 0
	}
	return sh.log.len
}

// appendLog appends and flushes one record under logMu; a nil log
// (in-memory shard) is a no-op. A shard whose durable log was lost to a
// failed compaction swap refuses writes instead of silently dropping
// durability.
func (sh *Shard) appendLog(payload []byte) error {
	sh.logMu.Lock()
	defer sh.logMu.Unlock()
	if sh.failed != nil {
		return sh.failed
	}
	if sh.log == nil {
		return nil
	}
	if err := sh.log.append(payload); err != nil {
		return err
	}
	return sh.log.flush()
}

// newTableShard creates (or returns the existing) state for one table on
// this shard.
func (sh *Shard) newTableShard(s Schema) *tableShard {
	if ts, ok := sh.tables[s.Name]; ok {
		return ts
	}
	ts := &tableShard{
		schema:    s,
		shard:     sh,
		primary:   newBtree(),
		secondary: make(map[string]*btree),
	}
	sh.tables[s.Name] = ts
	return ts
}

// logInsert appends an insert record for the table.
func (sh *Shard) logInsert(table string, row Row) error {
	payload := []byte{opInsert}
	payload = appendString(payload, table)
	payload = encodeRow(payload, row)
	return sh.appendLog(payload)
}

// logInsertBatch appends one WAL record covering the whole row batch.
func (sh *Shard) logInsertBatch(table string, rows []Row) error {
	return sh.appendLog(encodeBatchPayload(table, rows))
}

// logDelete appends a delete record for the table.
func (sh *Shard) logDelete(table string, pk Value) error {
	payload := []byte{opDelete}
	payload = appendString(payload, table)
	payload = encodeRow(payload, Row{pk})
	return sh.appendLog(payload)
}

// logCreateIndex appends a create-index record for the table, making the
// secondary index durable across reopen.
func (sh *Shard) logCreateIndex(table, col string) error {
	return sh.appendLog(encodeCreateIndexPayload(table, col))
}

// applyLogRecord replays one WAL payload into this shard's in-memory
// state. Any error it returns is treated by replay as a corrupt tail:
// replay stops and the log is truncated at the last record that applied
// cleanly, so a mangled-but-CRC-valid record can never panic or
// half-apply. Batch records are decoded and validated in full before any
// row is applied, keeping replay all-or-nothing per record.
func (sh *Shard) applyLogRecord(payload []byte) error {
	if len(payload) == 0 {
		return ErrCorrupt
	}
	op := payload[0]
	rest := payload[1:]
	name, rest, err := readString(rest)
	if err != nil {
		return err
	}
	switch op {
	case opCreateTable:
		if len(rest) < 2 {
			return ErrCorrupt
		}
		ncols, primary := int(rest[0]), int(rest[1])
		rest = rest[2:]
		s := Schema{Name: name, Primary: primary}
		for i := 0; i < ncols; i++ {
			var cname string
			cname, rest, err = readString(rest)
			if err != nil {
				return err
			}
			if len(rest) < 1 {
				return ErrCorrupt
			}
			s.Columns = append(s.Columns, Column{Name: cname, Type: ColType(rest[0])})
			rest = rest[1:]
		}
		if len(s.Columns) == 0 || s.Primary < 0 || s.Primary >= len(s.Columns) {
			return ErrCorrupt
		}
		for _, c := range s.Columns {
			if c.Type < TInt || c.Type > TBool {
				return ErrCorrupt
			}
		}
		sh.newTableShard(s)
	case opInsert:
		ts, ok := sh.tables[name]
		if !ok {
			return fmt.Errorf("store: replay insert into unknown table %q", name)
		}
		row, err := decodeRow(rest, len(ts.schema.Columns))
		if err != nil {
			return err
		}
		if err := ts.schema.validate(row); err != nil {
			return err
		}
		ts.replayInsert(row)
	case opInsertBatch:
		ts, ok := sh.tables[name]
		if !ok {
			return fmt.Errorf("store: replay batch insert into unknown table %q", name)
		}
		count, k := binary.Uvarint(rest)
		// Every encoded value is at least two bytes (type byte +
		// payload), so a valid record cannot claim more rows than
		// len(rest)/(2*ncols); a larger count is corruption, and the
		// bound keeps a crafted count from pre-allocating gigabytes.
		maxRows := uint64(len(rest)) / uint64(2*len(ts.schema.Columns))
		if k <= 0 || count > maxRows {
			return ErrCorrupt
		}
		rest = rest[k:]
		rows := make([]Row, 0, count)
		for i := uint64(0); i < count; i++ {
			var row Row
			row, rest, err = decodeValues(rest, len(ts.schema.Columns))
			if err != nil {
				return err
			}
			if err := ts.schema.validate(row); err != nil {
				return err
			}
			rows = append(rows, row)
		}
		if len(rest) != 0 {
			return ErrCorrupt
		}
		for _, row := range rows {
			ts.replayInsert(row)
		}
	case opDelete:
		ts, ok := sh.tables[name]
		if !ok {
			return fmt.Errorf("store: replay delete from unknown table %q", name)
		}
		keyRow, err := decodeRow(rest, 1)
		if err != nil {
			return err
		}
		key := encodeKey(keyRow[0])
		if v, ok := ts.primary.Get(key); ok {
			ts.applyDelete(key, v.(Row))
		}
	case opCreateIndex:
		ts, ok := sh.tables[name]
		if !ok {
			return fmt.Errorf("store: replay create-index on unknown table %q", name)
		}
		col, rest, err := readString(rest)
		if err != nil {
			return err
		}
		if len(rest) != 0 || ts.schema.colIndex(col) < 0 {
			return ErrCorrupt
		}
		ts.createIndexLocked(col)
	default:
		return ErrCorrupt
	}
	return nil
}

// shardIndex maps an encoded primary key to its home shard: FNV-1a over
// the key bytes, modulo the shard count. The hash depends only on the
// key encoding, which is stable across reopens, so the routing never
// changes for a given layout. A single-shard engine skips the hash.
// Inlined (rather than hash/fnv) to keep the per-row routing
// allocation-free.
func shardIndex(key []byte, n int) int {
	if n == 1 {
		return 0
	}
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return int(h % uint64(n))
}
