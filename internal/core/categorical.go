package core

import (
	"repro/internal/classify"
	"repro/internal/id3"
	"repro/internal/records"
	"repro/internal/textproc"
)

// CategoricalField specifies one categorical attribute: where its
// evidence lives, how features are extracted, and which classification
// backend labels it.
type CategoricalField struct {
	Attr    string
	Section string
	Options id3.FeatureOptions
	// Labels enumerates the attribute's value set, in canonical order.
	// The labeled coverage corpus is validated against this list: every
	// label must be represented.
	Labels []string
	// Backend is the classification backend; nil selects
	// classify.Default() (the paper's ID3 information-gain trees).
	Backend classify.Backend
	// Gold selects the gold label from a record ("" = not present; such
	// records are excluded, as the paper excludes the five subjects
	// without smoking information).
	Gold func(records.Gold) string
}

// WithBackend returns a copy of the field using the given backend.
func (f CategoricalField) WithBackend(b classify.Backend) CategoricalField {
	f.Backend = b
	return f
}

// backend resolves the field's backend, defaulting to ID3.
func (f CategoricalField) backend() classify.Backend {
	if f.Backend == nil {
		return classify.Default()
	}
	return f.Backend
}

// SmokingField is the paper's evaluated categorical attribute with its
// reported option settings: all parts of speech, any constituent,
// head-only off, lemma on.
func SmokingField() CategoricalField {
	return CategoricalField{
		Attr:    "smoking",
		Section: "Social History",
		Options: id3.DefaultOptions(),
		Labels:  []string{records.SmokingNever, records.SmokingFormer, records.SmokingCurrent},
		Gold:    func(g records.Gold) string { return g.Smoking },
	}
}

// AlcoholField is the paper's proposed extension: alcohol use with
// numeric Boolean threshold features at the manually specified threshold
// of 2 days per week.
func AlcoholField(numericFeatures bool) CategoricalField {
	opts := id3.DefaultOptions()
	if numericFeatures {
		opts.NumericThresholds = []float64{2}
	}
	return CategoricalField{
		Attr:    "alcohol",
		Section: "Social History",
		Options: opts,
		Labels:  []string{records.AlcoholNever, records.AlcoholSocial, records.AlcoholLight, records.AlcoholHeavy},
		Gold:    func(g records.Gold) string { return g.Alcohol },
	}
}

// FamilyBCField is one of the paper's unfinished binary categorical
// attributes: family history of breast cancer, positive or negative.
func FamilyBCField() CategoricalField {
	return CategoricalField{
		Attr:    "family breast cancer",
		Section: "Family History",
		Options: id3.DefaultOptions(),
		Labels:  []string{records.FamilyBCPositive, records.FamilyBCNegative},
		Gold:    func(g records.Gold) string { return g.FamilyBC },
	}
}

// DrugUseField is a second binary attribute: recreational drug use.
func DrugUseField() CategoricalField {
	return CategoricalField{
		Attr:    "drug use",
		Section: "Social History",
		Options: id3.DefaultOptions(),
		Labels:  []string{records.DrugUseNone, records.DrugUsePositive},
		Gold:    func(g records.Gold) string { return g.DrugUse },
	}
}

// ShapeField classifies patient shape from the physical examination.
func ShapeField() CategoricalField {
	return CategoricalField{
		Attr:    "shape",
		Section: "Physical examination",
		Options: id3.DefaultOptions(),
		Labels:  []string{records.ShapeThin, records.ShapeNormal, records.ShapeOverweight, records.ShapeObese},
		Gold:    func(g records.Gold) string { return g.Shape },
	}
}

// CategoricalFields lists the system's categorical attributes in
// canonical order (alcohol with the numeric threshold features on).
func CategoricalFields() []CategoricalField {
	return []CategoricalField{
		SmokingField(),
		AlcoholField(true),
		ShapeField(),
		FamilyBCField(),
		DrugUseField(),
	}
}

// FieldText returns the text the field's features are extracted from.
func (f CategoricalField) FieldText(recordText string) string {
	secs := textproc.SplitSections(recordText)
	sec, ok := textproc.FindSection(secs, f.Section)
	if !ok {
		return ""
	}
	return sec.Body
}

// Features extracts the field's ID3 feature map from an analyzed record,
// consuming the section's cached tag/parse analysis.
func (f CategoricalField) Features(doc *textproc.Document) map[string]bool {
	if sec, ok := doc.Section(f.Section); ok {
		return id3.FeaturesFromSection(sec, f.Options)
	}
	return map[string]bool{}
}

// Instance builds the field's classification view of an analyzed record:
// a lazy Boolean feature map (tree backends; POS-tags and parses the
// section through its memoized Document slots) and a lazy token stream
// (the vector backend; tokenization only). Each view is computed at most
// once however many models consult the instance, so two backends
// classifying the same shared Document still tag and parse each sentence
// exactly once between them.
func (f CategoricalField) Instance(doc *textproc.Document) classify.Instance {
	sec, ok := doc.Section(f.Section)
	if !ok {
		return classify.Instance{}
	}
	opts := f.Options
	return classify.NewInstance(
		func() map[string]bool { return id3.FeaturesFromSection(sec, opts) },
		func() []string { return sectionTokens(sec) },
	)
}

// sectionTokens is the vector backend's view: the lower-cased word and
// number tokens of the section, from the Document's memoized sentence
// analysis — no tagging, no parsing.
func sectionTokens(sec *textproc.DocSection) []string {
	var toks []string
	for _, sent := range sec.Sentences() {
		for _, t := range sent.Tokens {
			if t.Kind == textproc.Word || t.Kind == textproc.Number {
				toks = append(toks, t.Lower())
			}
		}
	}
	return toks
}

// Examples converts labeled records into training examples, skipping
// records whose gold label is absent. Each record is analyzed once; the
// per-example views are lazy, so an all-vector training run never pays
// for tagging or parsing.
func (f CategoricalField) Examples(recs []records.Record) []classify.Example {
	var out []classify.Example
	for _, r := range recs {
		label := f.Gold(r.Gold)
		if label == "" {
			continue
		}
		out = append(out, classify.Example{
			Instance: f.Instance(textproc.Analyze(r.Text)),
			Class:    label,
		})
	}
	return out
}

// CategoricalClassifier is a trained classifier for one field.
type CategoricalClassifier struct {
	Field CategoricalField
	Model classify.Model
}

// TrainCategorical trains the field's backend on labeled records.
func TrainCategorical(f CategoricalField, recs []records.Record) *CategoricalClassifier {
	return &CategoricalClassifier{Field: f, Model: f.backend().Train(f.Examples(recs))}
}

// Backend names the backend that trained the classifier (for stats and
// plan lines).
func (c *CategoricalClassifier) Backend() string { return c.Model.Backend() }

// Classify labels one record's text. It analyzes the text and delegates
// to ClassifyDoc.
func (c *CategoricalClassifier) Classify(recordText string) string {
	return c.ClassifyDoc(textproc.Analyze(recordText))
}

// ClassifyDoc labels one analyzed record, reusing its sentence analysis.
func (c *CategoricalClassifier) ClassifyDoc(doc *textproc.Document) string {
	return c.Model.Predict(c.Field.Instance(doc))
}

// CrossValidate runs the paper's protocol on the field with its backend:
// k-fold CV repeated `rounds` times with shuffles.
func (f CategoricalField) CrossValidate(recs []records.Record, k, rounds int, seed int64) classify.CVResult {
	return classify.CrossValidate(f.backend(), f.Examples(recs), k, rounds, seed)
}
