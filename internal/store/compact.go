package store

import (
	"errors"
	"fmt"
	"os"
	"sync"
)

// compactBatchRows is how many live rows Compact frames per batch record.
const compactBatchRows = 512

// Compact rewrites every shard's write-ahead log so it contains exactly
// that shard's live state (one create-table record per table, its
// create-index records, batch-insert records covering the live rows),
// dropping superseded inserts and deletes. Shards compact in parallel
// and independently: each rewrite goes to a temporary file that
// atomically replaces that shard's log, so a crash during compaction
// leaves each shard with either its old or its new log intact.
//
// Long-running deployments of the extraction pipeline append one insert
// per extracted attribute; compaction bounds recovery time — and with
// sharding, recovery and compaction both parallelize across shards.
func (db *DB) Compact() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if len(db.shards) == 1 {
		return db.compactShard(db.shards[0])
	}
	errs := make([]error, len(db.shards))
	var wg sync.WaitGroup
	for i, sh := range db.shards {
		wg.Add(1)
		go func(i int, sh *Shard) {
			defer wg.Done()
			errs[i] = db.compactShard(sh)
		}(i, sh)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// compactShard rewrites one shard's WAL. Callers hold db.mu.
func (db *DB) compactShard(sh *Shard) error {
	if sh.failed != nil {
		// A previous compaction lost this shard's log; pretending the
		// rewrite succeeded would hide a dead shard.
		return sh.failed
	}
	if sh.log == nil {
		return nil // in-memory shards have nothing to compact
	}
	// Freeze this shard's slice of every table for the rewrite: a
	// concurrent writer would otherwise append to the old log after its
	// rows were (or weren't) scanned, and the record would vanish in
	// the swap. Writers on other shards proceed untouched.
	lockNames := make([]string, 0, len(sh.tables))
	for n := range sh.tables {
		lockNames = append(lockNames, n)
	}
	sortKeys(lockNames)
	for _, n := range lockNames {
		sh.tables[n].mu.Lock()
		defer sh.tables[n].mu.Unlock()
	}
	sh.logMu.Lock()
	defer sh.logMu.Unlock()
	tmpPath := sh.path + ".compact"
	tmp, err := openWAL(tmpPath)
	if err != nil {
		return err
	}
	// cleanup closes and removes the temporary log; used on every error
	// path before the swap so no file handle or stray file leaks.
	cleanup := func() {
		tmp.close()
		os.Remove(tmpPath)
	}

	for _, name := range lockNames {
		ts := sh.tables[name]
		s := ts.schema
		if err := tmp.append(encodeCreateTablePayload(s)); err != nil {
			cleanup()
			return err
		}
		// Indexes are part of the live state: carry one create-index
		// record per secondary index so they exist after replay of the
		// compacted log.
		idxCols := make([]string, 0, len(ts.secondary))
		for col := range ts.secondary {
			idxCols = append(idxCols, col)
		}
		sortKeys(idxCols)
		for _, col := range idxCols {
			if err := tmp.append(encodeCreateIndexPayload(s.Name, col)); err != nil {
				cleanup()
				return err
			}
		}
		var insertErr error
		batch := make([]Row, 0, compactBatchRows)
		flush := func() error {
			if len(batch) == 0 {
				return nil
			}
			p := encodeBatchPayload(s.Name, batch)
			batch = batch[:0]
			return tmp.append(p)
		}
		ts.primary.Ascend(func(_ []byte, val interface{}) bool {
			batch = append(batch, val.(Row))
			if len(batch) >= compactBatchRows {
				if err := flush(); err != nil {
					insertErr = err
					return false
				}
			}
			return true
		})
		if insertErr == nil {
			insertErr = flush()
		}
		if insertErr != nil {
			cleanup()
			return insertErr
		}
	}
	if err := tmp.sync(); err != nil {
		cleanup()
		return err
	}
	if err := tmp.close(); err != nil {
		os.Remove(tmpPath)
		return err
	}

	// Swap: close the old log, rename, reopen for appending. Once the
	// old log is closed, sh.log is nilled and any error below latches
	// sh.failed, so later appends report the lost log instead of
	// writing to a closed file (or silently skipping durability);
	// reopening the database recovers.
	if err := sh.log.close(); err != nil {
		os.Remove(tmpPath)
		return err
	}
	sh.log = nil
	fail := func(err error) error {
		sh.failed = err
		return err
	}
	if err := os.Rename(tmpPath, sh.path); err != nil {
		return fail(fmt.Errorf("store: compact rename: %w (shard closed; reopen to recover)", err))
	}
	l, err := openWAL(sh.path)
	if err != nil {
		return fail(fmt.Errorf("store: compact reopen: %w (shard closed; reopen to recover)", err))
	}
	if _, err := l.replay(func([]byte) error { return nil }); err != nil {
		l.close()
		return fail(fmt.Errorf("store: compact reopen replay: %w (shard closed; reopen to recover)", err))
	}
	sh.log = l
	return nil
}
