package linkgram

import "strings"

// Diagram renders the linkage as ASCII art in the style of the CMU link
// parser output shown in the paper's Figure 1: arcs above the sentence,
// one row per nesting level, labels at arc apexes.
//
//	    +------O------+
//	 +-S-+            |
//	 |   |            |
//	pressure is     144/90
func (lk *Linkage) Diagram() string {
	if len(lk.Words) == 0 {
		return ""
	}
	// Column position of each word's center in the rendered word line.
	line := make([]string, len(lk.Words))
	centers := make([]int, len(lk.Words))
	col := 0
	for i, w := range lk.Words {
		line[i] = w.Text
		centers[i] = col + len(w.Text)/2
		col += len(w.Text) + 1
	}
	wordLine := strings.Join(line, " ")
	width := len(wordLine)

	// Assign each link a level: 1 + max level of links strictly nested
	// inside it. Links are planar so nesting is well defined.
	type arc struct {
		l, r  int
		label string
		level int
	}
	arcs := make([]arc, len(lk.Links))
	for i, ln := range lk.Links {
		arcs[i] = arc{l: ln.Left, r: ln.Right, label: ln.Label}
	}
	// Sort by span width ascending so inner arcs get levels first.
	for i := 1; i < len(arcs); i++ {
		for j := i; j > 0 && span(arcs[j]) < span(arcs[j-1]); j-- {
			arcs[j], arcs[j-1] = arcs[j-1], arcs[j]
		}
	}
	maxLevel := 0
	for i := range arcs {
		lvl := 1
		for j := range arcs[:i] {
			if arcs[j].l >= arcs[i].l && arcs[j].r <= arcs[i].r && arcs[j].level >= lvl {
				lvl = arcs[j].level + 1
			}
		}
		arcs[i].level = lvl
		if lvl > maxLevel {
			maxLevel = lvl
		}
	}

	// Paint rows top-down. Row k (1-based from the word line) holds the
	// horizontal bars of arcs at level k; vertical risers pass through
	// lower rows.
	rows := make([][]byte, maxLevel)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(" ", width))
	}
	paint := func(row []byte, pos int, c byte) {
		if pos >= 0 && pos < len(row) {
			row[pos] = c
		}
	}
	for _, a := range arcs {
		lc, rc := centers[a.l], centers[a.r]
		top := rows[maxLevel-a.level]
		paint(top, lc, '+')
		paint(top, rc, '+')
		for x := lc + 1; x < rc; x++ {
			if top[x] == ' ' {
				top[x] = '-'
			}
		}
		// Label at the middle of the bar.
		mid := (lc + rc) / 2
		for i, ch := range []byte(a.label) {
			paint(top, mid-len(a.label)/2+i, ch)
		}
		// Risers through lower levels.
		for lvl := a.level - 1; lvl >= 1; lvl-- {
			r := rows[maxLevel-lvl]
			paint(r, lc, '|')
			paint(r, rc, '|')
		}
	}
	var b strings.Builder
	for _, r := range rows {
		b.Write(trimRight(r))
		b.WriteByte('\n')
	}
	b.WriteString(wordLine)
	return b.String()
}

func span(a struct {
	l, r  int
	label string
	level int
}) int {
	return a.r - a.l
}

func trimRight(b []byte) []byte {
	n := len(b)
	for n > 0 && b[n-1] == ' ' {
		n--
	}
	return b[:n]
}
