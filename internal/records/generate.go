package records

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/ontology"
)

// GenOptions control the synthetic corpus generator.
type GenOptions struct {
	// N is the number of records (the paper uses 50).
	N int
	// Seed drives all sampling; the same seed reproduces the same corpus.
	Seed int64
	// StyleDiversity in [0,1] is the probability that a slot is rendered
	// with a non-canonical phrasing. 0 reproduces the paper's single
	// consistent dictator; higher values emulate "more diversified
	// writing styles", which the paper predicts degrade performance.
	StyleDiversity float64
	// NegationNoiseProb is the per-record probability that a history
	// section mentions a negated condition ("No history of stroke."),
	// the main false-positive mode of a system without negation handling.
	NegationNoiseProb float64
	// OOVTermProb is the per-record probability that a gold history term
	// comes from outside the ontology (coded by the human, unreachable by
	// the system), the main false-negative mode.
	OOVTermProb float64
	// SynonymSurfaceProbMedical and SynonymSurfaceProbSurgical are the
	// probabilities a history term is dictated as a synonym rather than
	// its preferred name ("gallbladder removal" for cholecystectomy).
	// Clinicians name conditions canonically but describe procedures
	// colloquially, which is the asymmetry behind Table 1's high
	// predefined-medical scores versus 35% predefined-surgical recall.
	SynonymSurfaceProbMedical  float64
	SynonymSurfaceProbSurgical float64
}

// DefaultGenOptions mirrors the paper's corpus regime: 50 records, one
// dictation style, modest noise rates tuned to land in Table 1's range.
func DefaultGenOptions() GenOptions {
	return GenOptions{
		N:                          50,
		Seed:                       2005, // ICDE 2005
		StyleDiversity:             0,
		NegationNoiseProb:          0.35,
		OOVTermProb:                0.30,
		SynonymSurfaceProbMedical:  0.08,
		SynonymSurfaceProbSurgical: 0.70,
	}
}

// outOfVocabulary are conditions/procedures a human coder records but the
// ontology does not contain.
var oovMedical = []string{
	"chronic fatigue syndrome", "restless leg syndrome",
	"meniere disease", "temporomandibular joint disorder",
}

var oovSurgical = []string{
	"jaw realignment surgery", "scar revision",
	"ganglion cyst excision",
}

// generator bundles the RNG and concept pools.
type generator struct {
	rng         *rand.Rand
	opts        GenOptions
	diseases    []ontology.Concept
	procedures  []ontology.Concept
	medications []ontology.Concept
}

// Generate produces a deterministic synthetic corpus.
func Generate(opts GenOptions) []Record {
	if opts.N <= 0 {
		opts.N = 50
	}
	g := &generator{rng: rand.New(rand.NewSource(opts.Seed)), opts: opts}
	for _, c := range ontology.All() {
		switch c.Type {
		case ontology.Disease:
			g.diseases = append(g.diseases, c)
		case ontology.Procedure:
			g.procedures = append(g.procedures, c)
		case ontology.Medication:
			g.medications = append(g.medications, c)
		}
	}
	// Class quotas proportional to the paper's: of 50 records, 28 never,
	// 12 current, 5 former, 5 without smoking information.
	smokingPlan := quotaPlan(opts.N, map[string]float64{
		SmokingNever:   28.0 / 50,
		SmokingCurrent: 12.0 / 50,
		SmokingFormer:  5.0 / 50,
		"":             5.0 / 50,
	})
	alcoholPlan := quotaPlan(opts.N, map[string]float64{
		AlcoholNever:  0.30,
		AlcoholSocial: 0.40,
		AlcoholLight:  0.20,
		AlcoholHeavy:  0.10,
	})
	shapePlan := quotaPlan(opts.N, map[string]float64{
		ShapeThin:       0.10,
		ShapeNormal:     0.40,
		ShapeOverweight: 0.35,
		ShapeObese:      0.15,
	})
	familyPlan := quotaPlan(opts.N, map[string]float64{
		FamilyBCPositive: 0.40,
		FamilyBCNegative: 0.60,
	})
	drugPlan := quotaPlan(opts.N, map[string]float64{
		DrugUseNone:     0.80,
		DrugUsePositive: 0.20,
	})
	for _, plan := range [][]string{smokingPlan, alcoholPlan, shapePlan, familyPlan, drugPlan} {
		p := plan
		g.rng.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	}

	recs := make([]Record, 0, opts.N)
	for i := 0; i < opts.N; i++ {
		recs = append(recs, g.record(i+1, smokingPlan[i], alcoholPlan[i], shapePlan[i], familyPlan[i], drugPlan[i]))
	}
	return recs
}

// quotaPlan expands class proportions into an exact assignment of n slots.
func quotaPlan(n int, proportions map[string]float64) []string {
	type pair struct {
		class string
		want  float64
	}
	var ps []pair
	for c, p := range proportions {
		ps = append(ps, pair{c, p * float64(n)})
	}
	// Deterministic order.
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j].class < ps[j-1].class; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
	plan := make([]string, 0, n)
	for _, p := range ps {
		k := int(p.want + 0.5)
		for i := 0; i < k && len(plan) < n; i++ {
			plan = append(plan, p.class)
		}
	}
	for len(plan) < n {
		plan = append(plan, ps[0].class)
	}
	return plan[:n]
}

// pick returns a canonical phrasing or, with probability StyleDiversity,
// one of the alternates.
func (g *generator) pick(canonical string, alternates ...string) string {
	if len(alternates) > 0 && g.rng.Float64() < g.opts.StyleDiversity {
		return alternates[g.rng.Intn(len(alternates))]
	}
	return canonical
}

func (g *generator) record(id int, smoking, alcohol, shape, familyBC, drugUse string) Record {
	gold := Gold{
		Numeric: map[string]NumValue{},
		Smoking: smoking, Alcohol: alcohol, Shape: shape,
		FamilyBC: familyBC, DrugUse: drugUse,
	}

	age := float64(30 + g.rng.Intn(46))
	menarche := float64(9 + g.rng.Intn(8))
	gravida := float64(g.rng.Intn(7))
	para := gravida
	if gravida > 0 {
		para = float64(g.rng.Intn(int(gravida) + 1))
	}
	sys := float64(100 + 2*g.rng.Intn(41))
	dia := float64(60 + 2*g.rng.Intn(21))
	pulse := float64(60 + g.rng.Intn(51))
	weight := float64(100 + g.rng.Intn(151))

	gold.Numeric[AttrAge] = NumValue{Value: age}
	gold.Numeric[AttrMenarche] = NumValue{Value: menarche}
	gold.Numeric[AttrGravida] = NumValue{Value: gravida}
	gold.Numeric[AttrPara] = NumValue{Value: para}
	gold.Numeric[AttrBloodPressure] = NumValue{Value: sys, Value2: dia}
	gold.Numeric[AttrPulse] = NumValue{Value: pulse}
	gold.Numeric[AttrWeight] = NumValue{Value: weight}

	var firstBirth float64
	if para >= 1 {
		firstBirth = float64(16 + g.rng.Intn(20))
		gold.Numeric[AttrFirstBirthAge] = NumValue{Value: firstBirth}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Patient:  %d\n", id)
	b.WriteString("Chief Complaint:  " + g.pick(
		"Abnormal mammogram.",
		"Palpable breast mass.",
		"Breast pain.",
	) + "\n")
	fmt.Fprintf(&b, "History of Present Illness:  Ms. %d is a %.0f-year-old woman who underwent a screening mammogram, revealing %s.  She was referred for further management.  Her breast history is negative for any previous biopsies or masses.\n",
		id, age, g.pick("a solid lesion as well as an abnormal calcification", "a suspicious density", "an area of abnormal calcification"))

	// GYN history: four numeric attributes in one fragment sentence.
	gyn := fmt.Sprintf("Menarche at age %.0f, gravida %.0f, para %.0f, last menstrual period about a year ago.", menarche, gravida, para)
	if g.opts.StyleDiversity > 0 && g.rng.Float64() < g.opts.StyleDiversity {
		gyn = fmt.Sprintf("Menarche age %.0f. G%.0f P%.0f. LMP about a year ago.", menarche, gravida, para)
	}
	if para >= 1 {
		gyn += fmt.Sprintf("  First live birth at age %.0f.", firstBirth)
	}
	b.WriteString("GYN History:  " + gyn + "\n")

	// Past medical history.
	medTerms, medText := g.historyTerms(g.diseases, oovMedical, 2+g.rng.Intn(5), g.opts.SynonymSurfaceProbMedical)
	gold.PastMedical = medTerms
	pmh := "Significant for " + medText + "."
	if g.rng.Float64() < g.opts.NegationNoiseProb {
		neg := g.negationTarget(g.diseases, ontology.PredefinedMedical, medTerms)
		pmh += "  No history of " + neg + "."
	}
	b.WriteString("Past Medical History:  " + pmh + "\n")

	// Past surgical history.
	nSurg := g.rng.Intn(4)
	if nSurg == 0 {
		gold.PastSurgical = nil
		b.WriteString("Past Surgical History:  None.\n")
	} else {
		surgTerms, surgText := g.historyTerms(g.procedures, oovSurgical, nSurg, g.opts.SynonymSurfaceProbSurgical)
		gold.PastSurgical = surgTerms
		psh := capitalize(surgText) + "."
		if g.rng.Float64() < g.opts.NegationNoiseProb {
			neg := g.negationTarget(g.procedures, ontology.PredefinedSurgical, surgTerms)
			psh += "  Denies any prior " + neg + "."
		}
		b.WriteString("Past Surgical History:  " + psh + "\n")
	}

	// Medications: a gold-driven list sampled from the vocabulary.
	nMeds := g.rng.Intn(7)
	if nMeds == 0 {
		b.WriteString("Medications:  None.\n")
	} else {
		medGold, medText := g.historyTerms(g.medications, nil, nMeds, 0.15)
		gold.Medications = medGold
		b.WriteString("Medications:  " + capitalize(medText) + ".\n")
	}
	b.WriteString("Allergies:  " + g.pick(
		"Penicillin, ACE inhibitors, and latex.",
		"No known drug allergies.",
	) + "\n")

	// Social history drives the categorical experiments.
	b.WriteString("Social History:  " + g.socialHistory(smoking, alcohol, drugUse) + "\n")

	b.WriteString("Family History:  " + g.familyHistory(familyBC) + "\n")
	b.WriteString("Review of Systems:  " + g.pick(
		"Significant for back pain and arthritis complaints.  Remainder of the review of systems is negative.",
		"Negative.",
	) + "\n")

	fmt.Fprintf(&b, "Physical examination:  Reveals %s woman in no apparent distress.\n", shapeArticlePhrase(shape))

	// Vitals: three numeric attributes in the Figure 1 sentence shape.
	vitals := fmt.Sprintf("Blood pressure is %.0f/%.0f, pulse of %.0f, and weight of %.0f.", sys, dia, pulse, weight)
	if g.opts.StyleDiversity > 0 && g.rng.Float64() < g.opts.StyleDiversity {
		switch g.rng.Intn(5) {
		case 0:
			vitals = fmt.Sprintf("Blood pressure: %.0f/%.0f.  Pulse: %.0f.  Weight: %.0f pounds.", sys, dia, pulse, weight)
		case 1:
			vitals = fmt.Sprintf("BP %.0f/%.0f, heart rate %.0f, weight %.0f pounds.", sys, dia, pulse, weight)
		case 2:
			vitals = fmt.Sprintf("Weight is %.0f pounds with a pulse of %.0f and blood pressure of %.0f/%.0f.", weight, pulse, sys, dia)
		case 3:
			// Defeats the shallow patterns (keyword and number separated
			// by a verb group) but parses cleanly.
			vitals = fmt.Sprintf("Her weight was measured at %.0f pounds, her pulse was noted at %.0f, and her blood pressure was recorded at %.0f/%.0f.", weight, pulse, sys, dia)
		case 4:
			// Defeats patterns and token proximity (an intervening number
			// sits closer to the keyword than the true value).
			vitals = fmt.Sprintf("Pulse, noted after resting for 5 minutes, was %.0f.  Blood pressure is %.0f/%.0f and weight is %.0f.", pulse, sys, dia, weight)
		}
	}
	b.WriteString("Vitals:  " + vitals + "\n")

	b.WriteString("HEENT:  PERRLA.\n")
	b.WriteString("Neck:  There is no cervical or supraclavicular lymphadenopathy.\n")
	b.WriteString("Chest:  Clear to auscultation anteriorly, posteriorly, and bilaterally.\n")
	b.WriteString("Heart:  S1 S2, regular, and no murmurs.\n")
	b.WriteString("Abdomen:  Soft, nontender, and no masses.\n")
	b.WriteString("Examination of Breasts:  " + g.pick(
		"Shows good symmetry bilaterally.  Palpation of both breasts shows no dominant lesions.  There is no axillary adenopathy.",
		"Symmetric, no dominant lesions, no axillary adenopathy.",
	) + "\n")

	return Record{ID: id, Text: b.String(), Gold: gold}
}

// negationTarget picks a concept to mention negated, avoiding concepts
// already asserted positively and strongly preferring non-predefined
// ones (clinicians rarely dictate "denies appendectomy"; they deny the
// long tail).
func (g *generator) negationTarget(pool []ontology.Concept, predefined, asserted []string) string {
	for attempt := 0; ; attempt++ {
		c := pool[g.rng.Intn(len(pool))].Preferred
		if contains(asserted, c) {
			continue
		}
		if attempt < 1 && contains(predefined, c) {
			continue
		}
		return c
	}
}

// historyTerms samples n gold terms, rendering each as preferred name or
// synonym, with an optional out-of-vocabulary extra. It returns the gold
// preferred names and the rendered comma list.
func (g *generator) historyTerms(pool []ontology.Concept, oov []string, n int, synProb float64) (gold []string, text string) {
	perm := g.rng.Perm(len(pool))
	var surfaces []string
	for _, pi := range perm[:min(n, len(pool))] {
		c := pool[pi]
		gold = append(gold, c.Preferred)
		surface := c.Preferred
		if len(c.Synonyms) > 0 && g.rng.Float64() < synProb {
			surface = c.Synonyms[g.rng.Intn(len(c.Synonyms))]
		}
		surfaces = append(surfaces, surface)
	}
	if len(oov) > 0 && g.rng.Float64() < g.opts.OOVTermProb {
		t := oov[g.rng.Intn(len(oov))]
		gold = append(gold, t)
		surfaces = append(surfaces, t)
	}
	return gold, commaList(surfaces)
}

// socialHistory renders the smoking and alcohol sentences. Phrasing pools
// per class deliberately share vocabulary across classes (as real
// dictation does), which is what keeps the ID3 classifier below 100%.
// familyHistory renders the family-history section consistently with the
// binary gold label.
func (g *generator) familyHistory(familyBC string) string {
	if familyBC == FamilyBCPositive {
		return g.pickStyled([]string{
			"Mother with breast cancer, diagnosed at age 52.  No other family members with cancers.",
			"Maternal aunt with breast cancer.",
			"Sister with breast cancer diagnosed at age 45.",
			"Positive for breast cancer in her mother.",
		}, []string{
			"Strong family history of breast cancer.",
			"Grandmother had breast cancer.",
		})
	}
	return g.pickStyled([]string{
		"Negative for breast cancer.",
		"No family history of breast cancer.",
		"No family members with cancers.",
		"Noncontributory.",
	}, []string{
		"Family history is unremarkable.",
	})
}

func (g *generator) socialHistory(smoking, alcohol, drugUse string) string {
	var parts []string
	switch smoking {
	case SmokingNever:
		parts = append(parts, g.pickStyled([]string{
			"She has never smoked.",
			"She denies tobacco use.",
			"No tobacco use.",
			"Denies smoking.",
			"Never a smoker.",
			"No smoking history.",
		}, []string{
			"Nonsmoker.",
			"She does not smoke.",
			"Negative for cigarette use.",
		}))
	case SmokingFormer:
		parts = append(parts, g.pickStyled([]string{
			"She quit smoking five years ago.",
			"Former smoker, quit ten years ago.",
			"She stopped smoking in 1995.",
			"Smoking history of 20 years, quit five years ago.",
			"Former smoker.",
			"Smoked for 15 years.", // no quit marker: genuinely confusable with current
		}, []string{
			"Smoked in the past.",
			"Tobacco use in the remote past.",
			"Cigarette use ended years ago.",
		}))
	case SmokingCurrent:
		parts = append(parts, g.pickStyled([]string{
			"She is currently a smoker.",
			"Smoking history, 15 years.",
			"She smokes one pack per day.",
			"Current smoker for 20 years.",
			"Smokes half a pack per day.",
			"Smoking, one pack per day.",
		}, []string{
			"Positive for tobacco.",
			"Smoker.",
			"Half a pack per day habit.",
		}))
	}
	switch alcohol {
	case AlcoholNever:
		parts = append(parts, g.pickAny(
			"She denies alcohol use.",
			"No alcohol use.",
		))
	case AlcoholSocial:
		parts = append(parts, g.pickAny(
			"Alcohol use, occasional.",
			"Social alcohol use.",
			"Drinks socially.",
		))
	case AlcoholLight:
		parts = append(parts, g.pickAny(
			"Alcohol use 1-2 days per week.",
			"She drinks 1-2 days per week.",
			"Drinks one or two days per week.",
		))
	case AlcoholHeavy:
		parts = append(parts, g.pickAny(
			"Alcohol use 4 days per week.",
			"She drinks 3 to 5 days per week.",
			"Drinks 4 days per week.",
		))
	}
	switch drugUse {
	case DrugUsePositive:
		parts = append(parts, g.pickStyled([]string{
			"Drug use, significant for marijuana.",
			"Occasional marijuana use.",
		}, []string{
			"Positive for recreational drug use.",
		}))
	case DrugUseNone:
		parts = append(parts, g.pickStyled([]string{
			"Drug use, none.",
			"No recreational drug use.",
		}, []string{
			"Denies drug use.",
		}))
	}
	return strings.Join(parts, "  ")
}

// pickAny chooses uniformly among phrasings (the per-class variation that
// exists even with one dictator).
func (g *generator) pickAny(options ...string) string {
	return options[g.rng.Intn(len(options))]
}

// pickStyled chooses from the dictator's usual pool, or — with
// probability StyleDiversity — from the union with rarer phrasings other
// writers would use.
func (g *generator) pickStyled(base, extra []string) string {
	if g.opts.StyleDiversity > 0 && g.rng.Float64() < g.opts.StyleDiversity {
		all := make([]string, 0, len(base)+len(extra))
		all = append(all, base...)
		all = append(all, extra...)
		return all[g.rng.Intn(len(all))]
	}
	return base[g.rng.Intn(len(base))]
}

func shapeArticlePhrase(shape string) string {
	switch shape {
	case ShapeThin:
		return "a thin"
	case ShapeOverweight:
		return "an overweight"
	case ShapeObese:
		return "an obese"
	default:
		return "a well-developed, well-nourished"
	}
}

func commaList(items []string) string {
	switch len(items) {
	case 0:
		return ""
	case 1:
		return items[0]
	case 2:
		return items[0] + " and " + items[1]
	default:
		return strings.Join(items[:len(items)-1], ", ") + ", and " + items[len(items)-1]
	}
}

func capitalize(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
