package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/store"
)

// fakeExtraction builds a minimal extraction with one attribute row for
// the given patient.
func fakeExtraction(patient int) Extraction {
	return Extraction{
		Patient: patient,
		Numeric: map[string]NumericValue{"pulse": {Attr: "pulse", Value: 72}},
	}
}

// TestIngesterConcurrentSubmit: many producers submit batches at once;
// every acknowledged batch's rows must land exactly once (unique ids —
// the single-writer design is what makes concurrent PersistAll safe).
func TestIngesterConcurrentSubmit(t *testing.T) {
	db := store.OpenMemorySharded(4)
	defer db.Close()
	ing := NewIngester(db, IngestConfig{QueueDepth: 8, MaxGroup: 4})

	const producers, batchesEach = 8, 10
	var wg sync.WaitGroup
	var mu sync.Mutex
	ackedRows := 0
	rejected := 0
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for b := 0; b < batchesEach; b++ {
				exs := []Extraction{fakeExtraction(p*1000 + b)}
				for {
					n, err := ing.Submit(context.Background(), exs)
					if errors.Is(err, ErrBackpressure) {
						mu.Lock()
						rejected++
						mu.Unlock()
						time.Sleep(time.Millisecond)
						continue
					}
					if err != nil {
						t.Errorf("producer %d: %v", p, err)
						return
					}
					mu.Lock()
					ackedRows += n
					mu.Unlock()
					break
				}
			}
		}(p)
	}
	wg.Wait()
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}

	tbl, err := db.Table("extracted")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != ackedRows || ackedRows != producers*batchesEach {
		t.Fatalf("table has %d rows, acked %d, want %d", tbl.Len(), ackedRows, producers*batchesEach)
	}
	st := ing.Stats()
	if st.Batches != producers*batchesEach {
		t.Fatalf("Stats.Batches = %d, want %d", st.Batches, producers*batchesEach)
	}
	if st.Rows != int64(ackedRows) {
		t.Fatalf("Stats.Rows = %d, want %d", st.Rows, ackedRows)
	}
	if st.Groups > st.Batches {
		t.Fatalf("more groups (%d) than batches (%d)", st.Groups, st.Batches)
	}
	if int64(rejected) != st.Rejected {
		t.Fatalf("observed %d rejections, Stats.Rejected = %d", rejected, st.Rejected)
	}
	if st.PeakQueue > int64(8) {
		t.Fatalf("PeakQueue %d exceeds QueueDepth 8", st.PeakQueue)
	}
}

// gatedEngine wraps an Engine, parking every Sync on a gate so tests
// can stall the writer goroutine deterministically. Each Sync call
// announces itself on entered (when set) before parking; closing gate
// unparks every present and future Sync.
type gatedEngine struct {
	store.Engine
	entered chan struct{}
	gate    chan struct{}
}

func (g *gatedEngine) Sync() error {
	if g.entered != nil {
		select {
		case g.entered <- struct{}{}:
		default:
		}
	}
	<-g.gate
	return g.Engine.Sync()
}

// TestIngesterBackpressure: with the writer stalled, Submit fills the
// queue and then fails fast with ErrBackpressure instead of blocking or
// buffering without bound.
func TestIngesterBackpressure(t *testing.T) {
	eng := &gatedEngine{
		Engine:  store.OpenMemory(),
		entered: make(chan struct{}, 1),
		gate:    make(chan struct{}),
	}
	defer eng.Engine.Close()
	const depth = 3
	ing := NewIngester(eng, IngestConfig{QueueDepth: depth, MaxGroup: 1})
	defer func() {
		close(eng.gate) // unpark the writer for the drain in Close
		ing.Close()
	}()

	// Stall the writer inside its first group commit, then fill the
	// queue behind it.
	acks := make(chan error, depth+1)
	submit := func(p int) {
		_, err := ing.Submit(context.Background(), []Extraction{fakeExtraction(p)})
		acks <- err
	}
	go submit(0)
	<-eng.entered // writer holds batch 0, parked in Sync

	// Fill the queue to depth, then the next submit must be rejected.
	for i := 1; i <= depth; i++ {
		go submit(i)
	}
	waitFor(t, func() bool { return ing.Stats().Queued == depth })
	if _, err := ing.Submit(context.Background(), []Extraction{fakeExtraction(99)}); !errors.Is(err, ErrBackpressure) {
		t.Fatalf("overflow submit: err = %v, want ErrBackpressure", err)
	}
	if got := ing.Stats().Rejected; got != 1 {
		t.Fatalf("Stats.Rejected = %d, want 1", got)
	}
}

// waitFor polls cond up to 5s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestIngesterCloseDrains: batches queued before Close are persisted,
// fsynced and acknowledged during the drain; submits after Close are
// refused.
func TestIngesterCloseDrains(t *testing.T) {
	eng := &gatedEngine{
		Engine:  store.OpenMemory(),
		entered: make(chan struct{}, 1),
		gate:    make(chan struct{}),
	}
	defer eng.Engine.Close()
	ing := NewIngester(eng, IngestConfig{QueueDepth: 16, MaxGroup: 4})

	const n = 6
	acks := make(chan error, n)
	submit := func(i int) {
		_, err := ing.Submit(context.Background(), []Extraction{fakeExtraction(i)})
		acks <- err
	}
	// Park the writer on the first batch's Sync, then queue the rest
	// behind it so Close has a non-empty queue to drain.
	go submit(0)
	<-eng.entered
	for i := 1; i < n; i++ {
		go submit(i)
	}
	waitFor(t, func() bool { return ing.Stats().Queued == n-1 })
	close(eng.gate)
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := <-acks; err != nil {
			t.Fatalf("queued batch not acknowledged clean on drain: %v", err)
		}
	}
	tbl, err := eng.Table("extracted")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != n {
		t.Fatalf("table has %d rows after drain, want %d", tbl.Len(), n)
	}

	if _, err := ing.Submit(context.Background(), []Extraction{fakeExtraction(100)}); !errors.Is(err, ErrIngesterClosed) {
		t.Fatalf("submit after close: err = %v, want ErrIngesterClosed", err)
	}
	// Close is idempotent.
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestIngesterSubmitContextCancel: a caller abandoning its wait gets
// ctx.Err(), and the batch (already queued) still persists — it is
// unacknowledged, not lost.
func TestIngesterSubmitContextCancel(t *testing.T) {
	eng := &gatedEngine{
		Engine:  store.OpenMemory(),
		entered: make(chan struct{}, 1),
		gate:    make(chan struct{}),
	}
	defer eng.Engine.Close()
	ing := NewIngester(eng, IngestConfig{QueueDepth: 4, MaxGroup: 1})

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := ing.Submit(ctx, []Extraction{fakeExtraction(7)})
		errc <- err
	}()
	<-eng.entered // writer holds the batch, parked in Sync
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	close(eng.gate)
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	tbl, err := eng.Table("extracted")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 1 {
		t.Fatalf("abandoned batch not persisted: %d rows", tbl.Len())
	}
}

// TestIngesterEmptySubmit: a zero-record batch acknowledges immediately
// without touching the store.
func TestIngesterEmptySubmit(t *testing.T) {
	db := store.OpenMemory()
	defer db.Close()
	ing := NewIngester(db, IngestConfig{})
	n, err := ing.Submit(context.Background(), nil)
	if n != 0 || err != nil {
		t.Fatalf("empty submit: n=%d err=%v", n, err)
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Table("extracted"); err == nil {
		t.Fatal("empty submit created the table")
	}
}
