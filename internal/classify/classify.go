// Package classify defines the pluggable classification layer for the
// categorical attributes (smoking, alcohol, family history, …): a small
// Backend/Model interface pair, adapters for the ID3/Gini decision trees
// of internal/id3, and a pure-Go vector-similarity backend in the style
// of line-classification systems (hashed bag-of-words + character
// n-gram vectors, cosine against per-label centroids).
//
// The two families consume different views of a record: tree models read
// the Boolean link-grammar feature map of §3.3, vector models read the
// raw token stream. Instance carries both views lazily, so a backend
// pays only for the analysis it actually uses — a vector model never
// POS-tags or parses — and memoizes each view so shared instances are
// computed at most once regardless of how many models consult them.
package classify

import (
	"fmt"
	"sync"
)

// Instance is one thing to classify. Both views are lazy and memoized;
// the zero value yields no features and no tokens. An Instance is safe
// to share across goroutines: concurrent models may consult both views
// and each is computed exactly once.
type Instance struct {
	features func() map[string]bool
	tokens   func() []string
}

// NewInstance builds an instance from lazy view constructors. Either
// function may be nil when the corresponding view cannot be produced;
// non-nil functions are invoked at most once, under a sync.Once, so a
// shared instance never recomputes (and never races) a view.
func NewInstance(features func() map[string]bool, tokens func() []string) Instance {
	inst := Instance{}
	if features != nil {
		var once sync.Once
		var feats map[string]bool
		inst.features = func() map[string]bool {
			once.Do(func() { feats = features() })
			return feats
		}
	}
	if tokens != nil {
		var once sync.Once
		var toks []string
		inst.tokens = func() []string {
			once.Do(func() { toks = tokens() })
			return toks
		}
	}
	return inst
}

// FeatureInstance wraps an eager Boolean feature map (the id3.Example
// shape) as an Instance with no token view.
func FeatureInstance(features map[string]bool) Instance {
	return Instance{features: func() map[string]bool { return features }}
}

// TokenInstance wraps an eager token stream as an Instance with no
// feature view.
func TokenInstance(tokens []string) Instance {
	return Instance{tokens: func() []string { return tokens }}
}

// Features returns the Boolean feature view (nil when absent).
func (in Instance) Features() map[string]bool {
	if in.features == nil {
		return nil
	}
	return in.features()
}

// Tokens returns the token-stream view (nil when absent).
func (in Instance) Tokens() []string {
	if in.tokens == nil {
		return nil
	}
	return in.tokens()
}

// Example is one labeled training or evaluation case.
type Example struct {
	Instance
	Class string
}

// Model is a trained classifier.
type Model interface {
	// Backend names the backend that trained the model (for stats and
	// plan lines).
	Backend() string
	// Predict labels one instance. An untrained/degenerate model
	// returns "".
	Predict(Instance) string
	// Size is the model's capacity in backend-specific units: distinct
	// features tested for tree models, non-zero centroid dimensions for
	// vector models. The cross-validation harness reports its range the
	// way the paper reports "the number of features used in the
	// decision tree ranges from four to seven".
	Size() int
}

// Backend trains models from labeled examples.
type Backend interface {
	// Name is the backend's registry name ("id3", "gini", "vector").
	Name() string
	// Params is a short human-readable parameter summary for stats and
	// plan lines ("dims=4096 char=3" for the vector backend).
	Params() string
	Train(examples []Example) Model
}

// Names lists the registered backend names in canonical order (the
// order CLIs document and eval reports iterate).
func Names() []string { return []string{"id3", "gini", "vector"} }

// New resolves a backend by registry name with default parameters.
func New(name string) (Backend, error) {
	switch name {
	case "id3":
		return ID3{}, nil
	case "gini":
		return Gini{}, nil
	case "vector":
		return NewVector(), nil
	}
	return nil, fmt.Errorf("unknown classification backend %q (want id3, gini or vector)", name)
}

// Default is the backend used when none is selected: the paper's ID3
// information-gain trees.
func Default() Backend { return ID3{} }
