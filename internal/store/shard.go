package store

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
)

// Shard is one partition of the database: its own write-ahead log file,
// its own segment directory, its own log mutex, and its own slice of
// every table's state (segments + memtable + secondary indexes). Shards
// share nothing, so writers on different shards append, flush and lock
// independently — the decomposition that lets ingest and queries scale
// with cores.
//
// Rows are assigned to shards by a stable hash of the encoded primary
// key (see shardIndex), so a row's home shard never changes across
// reopens and a primary key is globally unique even though each shard
// checks uniqueness only locally.
type Shard struct {
	id      int
	logMu   sync.Mutex // serializes WAL appends on this shard
	log     *wal       // nil = in-memory shard
	failed  error      // a failed compaction swap left the shard logless
	path    string
	dropped int  // WAL records dropped during this shard's recovery
	segLost bool // segment state was unreadable; recovered from WAL alone
	gen     uint64
	tables  map[string]*tableShard
	cache   *blockCache // engine-shared decoded-block cache (may be nil)

	// pendingSegs holds manifest segments between open and the replay of
	// their tables' create records; leftovers (a WAL whose create record
	// was lost to a crash) are synthesized from the segment's own footer
	// schema after replay.
	pendingSegs map[string]*pendingTable

	// Compaction state. compactMu serializes compactions of this shard
	// (explicit Compact vs the background compactor); the counters below
	// feed the auto-trigger and CompactionStats and are atomics so the
	// hot write path and monitoring never take a compaction lock.
	compactMu sync.Mutex
	pol       CompactionPolicy // effective policy; zero when background off
	wakeCh    chan struct{}    // buffered(1) compactor wake; nil = no compactor
	pending   atomic.Int64     // rows logged since the last compaction
	walLen    atomic.Int64     // mirror of log.len readable without logMu
	cstats    compactionCounters
}

// openShard opens (creating if necessary) one shard's WAL and segment
// directory, then replays the WAL over the segment state. A torn
// manifest or unreadable segment falls back to WAL-only recovery
// (reported via RecoveredWithLoss); on replay failure the log handle
// and every opened segment are closed before returning, so an engine
// that fails mid-open leaks no descriptors.
func openShard(id int, path string, cache *blockCache) (*Shard, error) {
	// A crashed compaction can leave its truncated-WAL temp beside the
	// log. It holds nothing the committed state doesn't (schema/index
	// records plus residue the old WAL also carries), so it is swept
	// rather than recovered — a stale temp must never be mistaken for
	// the live log by a later rename.
	os.Remove(compactTempPath(path))
	segs, gen, segLost, err := loadShardSegments(segsDirFor(path))
	if err != nil {
		return nil, err
	}
	// Attach the shared cache before replay: liveGet during replay (and
	// every read after) goes through the cached block path.
	for _, pt := range segs {
		for _, sg := range pt.segs {
			sg.cache = cache
		}
	}
	l, err := openWAL(path)
	if err != nil {
		for _, pt := range segs {
			for _, sg := range pt.segs {
				sg.unref()
			}
		}
		return nil, err
	}
	sh := &Shard{
		id: id, log: l, path: path, gen: gen, segLost: segLost,
		tables: make(map[string]*tableShard), pendingSegs: segs, cache: cache,
	}
	dropped, err := l.replay(sh.applyLogRecord)
	if err != nil {
		l.close()
		sh.releaseSegments()
		return nil, err
	}
	sh.dropped = dropped
	sh.walLen.Store(l.len)
	// Segments whose create-table record was lost to a torn WAL:
	// the footer schema makes the segment self-describing, so the table
	// (and its rows) survive anyway.
	for _, pt := range sh.pendingSegs {
		sh.newTableShard(pt.segs[0].schema)
	}
	return sh, nil
}

// memShard returns an in-memory shard with no durable log.
func memShard(id int) *Shard {
	return &Shard{id: id, tables: make(map[string]*tableShard)}
}

// releaseSegments unpins every segment the shard holds — attached to
// tables or still pending — closing their descriptors.
func (sh *Shard) releaseSegments() {
	for _, ts := range sh.tables {
		ts.mu.Lock()
		for _, sg := range ts.segs {
			sg.unref()
		}
		ts.segs = nil
		ts.mu.Unlock()
	}
	for name, pt := range sh.pendingSegs {
		for _, sg := range pt.segs {
			sg.unref()
		}
		delete(sh.pendingSegs, name)
	}
}

// close flushes and closes the shard's log and releases its segments.
// Safe to call twice.
func (sh *Shard) close() error {
	sh.logMu.Lock()
	defer sh.logMu.Unlock()
	sh.releaseSegments()
	if sh.log == nil {
		return nil
	}
	err := sh.log.close()
	sh.log = nil
	return err
}

// sync flushes buffered log records to stable storage.
func (sh *Shard) sync() error {
	sh.logMu.Lock()
	defer sh.logMu.Unlock()
	if sh.log == nil {
		return nil
	}
	return sh.log.sync()
}

// failedErr reads the failed-compaction latch under logMu — the lock
// fail() holds when latching — so Health can be called concurrently
// with a compaction's commit phase.
func (sh *Shard) failedErr() error {
	sh.logMu.Lock()
	defer sh.logMu.Unlock()
	return sh.failed
}

// logSize returns the shard WAL's current size in bytes.
func (sh *Shard) logSize() int64 {
	sh.logMu.Lock()
	defer sh.logMu.Unlock()
	if sh.log == nil {
		return 0
	}
	return sh.log.len
}

// appendLog appends and flushes one record under logMu; a nil log
// (in-memory shard) is a no-op. A shard whose durable log was lost to a
// failed compaction swap refuses writes instead of silently dropping
// durability.
func (sh *Shard) appendLog(payload []byte) error {
	sh.logMu.Lock()
	defer sh.logMu.Unlock()
	if sh.failed != nil {
		return sh.failed
	}
	if sh.log == nil {
		return nil
	}
	if err := sh.log.append(payload); err != nil {
		return err
	}
	if err := sh.log.flush(); err != nil {
		return err
	}
	sh.walLen.Store(sh.log.len)
	return nil
}

// noteWrite feeds the background compactor's trigger: rows logged since
// the last compaction, plus the WAL-size mirror. When either crosses
// the policy threshold a wake token is posted (non-blocking — the
// channel holds one token, and the compactor re-checks after each run,
// so a full channel never loses a trigger).
func (sh *Shard) noteWrite(rows int) {
	if sh.wakeCh == nil {
		return
	}
	p := sh.pending.Add(int64(rows))
	if p >= int64(sh.pol.MemRows) || sh.walLen.Load() >= sh.pol.WALBytes {
		select {
		case sh.wakeCh <- struct{}{}:
		default:
		}
	}
}

// newTableShard creates (or returns the existing) state for one table on
// this shard, attaching the table's manifest segment when one is
// pending from open.
func (sh *Shard) newTableShard(s Schema) *tableShard {
	if ts, ok := sh.tables[s.Name]; ok {
		return ts
	}
	ts := &tableShard{
		schema:    s,
		shard:     sh,
		primary:   newBtree(),
		secondary: make(map[string]*btree),
	}
	if pt, ok := sh.pendingSegs[s.Name]; ok {
		delete(sh.pendingSegs, s.Name)
		if schemaEqual(pt.segs[0].schema, s) {
			ts.segs = pt.segs
			ts.count = pt.live
		} else {
			// The WAL and the segment footers disagree on the schema:
			// trust the WAL (it carries the later writes) and recover
			// without the segments, reporting the loss.
			for _, sg := range pt.segs {
				sg.unref()
			}
			sh.segLost = true
		}
	}
	sh.tables[s.Name] = ts
	return ts
}

// logInsert appends an insert record for the table.
func (sh *Shard) logInsert(table string, row Row) error {
	payload := []byte{opInsert}
	payload = appendString(payload, table)
	payload = encodeRow(payload, row)
	if err := sh.appendLog(payload); err != nil {
		return err
	}
	sh.noteWrite(1)
	return nil
}

// logInsertBatch appends one WAL record covering the whole row batch.
func (sh *Shard) logInsertBatch(table string, rows []Row) error {
	if err := sh.appendLog(encodeBatchPayload(table, rows)); err != nil {
		return err
	}
	sh.noteWrite(len(rows))
	return nil
}

// logDelete appends a delete record for the table.
func (sh *Shard) logDelete(table string, pk Value) error {
	payload := []byte{opDelete}
	payload = appendString(payload, table)
	payload = encodeRow(payload, Row{pk})
	if err := sh.appendLog(payload); err != nil {
		return err
	}
	sh.noteWrite(1)
	return nil
}

// logCreateIndex appends a create-index record for the table, making the
// secondary index durable across reopen.
func (sh *Shard) logCreateIndex(table, col string) error {
	return sh.appendLog(encodeCreateIndexPayload(table, col))
}

// applyLogRecord replays one WAL payload into this shard's in-memory
// state. Any error it returns is treated by replay as a corrupt tail:
// replay stops and the log is truncated at the last record that applied
// cleanly, so a mangled-but-CRC-valid record can never panic or
// half-apply. Batch records are decoded and validated in full before any
// row is applied, keeping replay all-or-nothing per record.
func (sh *Shard) applyLogRecord(payload []byte) error {
	if len(payload) == 0 {
		return ErrCorrupt
	}
	op := payload[0]
	if op == opCreateTable {
		s, err := decodeSchemaPayload(payload)
		if err != nil {
			return err
		}
		sh.newTableShard(s)
		return nil
	}
	rest := payload[1:]
	name, rest, err := readString(rest)
	if err != nil {
		return err
	}
	switch op {
	case opInsert:
		ts, ok := sh.tables[name]
		if !ok {
			return fmt.Errorf("store: replay insert into unknown table %q", name)
		}
		row, err := decodeRow(rest, len(ts.schema.Columns))
		if err != nil {
			return err
		}
		if err := ts.schema.validate(row); err != nil {
			return err
		}
		ts.replayInsert(row)
	case opInsertBatch:
		ts, ok := sh.tables[name]
		if !ok {
			return fmt.Errorf("store: replay batch insert into unknown table %q", name)
		}
		count, k := binary.Uvarint(rest)
		// Every encoded value is at least two bytes (type byte +
		// payload), so a valid record cannot claim more rows than
		// len(rest)/(2*ncols); a larger count is corruption, and the
		// bound keeps a crafted count from pre-allocating gigabytes.
		maxRows := uint64(len(rest)) / uint64(2*len(ts.schema.Columns))
		if k <= 0 || count > maxRows {
			return ErrCorrupt
		}
		rest = rest[k:]
		rows := make([]Row, 0, count)
		for i := uint64(0); i < count; i++ {
			var row Row
			row, rest, err = decodeValues(rest, len(ts.schema.Columns))
			if err != nil {
				return err
			}
			if err := ts.schema.validate(row); err != nil {
				return err
			}
			rows = append(rows, row)
		}
		if len(rest) != 0 {
			return ErrCorrupt
		}
		for _, row := range rows {
			ts.replayInsert(row)
		}
	case opDelete:
		ts, ok := sh.tables[name]
		if !ok {
			return fmt.Errorf("store: replay delete from unknown table %q", name)
		}
		keyRow, err := decodeRow(rest, 1)
		if err != nil {
			return err
		}
		key := encodeKey(keyRow[0])
		// The key may live in a segment rather than the memtable; a
		// segment read error here is treated as key-absent (the delete
		// then has nothing visible to remove).
		if row, live, _ := ts.liveGet(key); live {
			ts.applyDelete(key, row)
		}
	case opCreateIndex:
		ts, ok := sh.tables[name]
		if !ok {
			return fmt.Errorf("store: replay create-index on unknown table %q", name)
		}
		col, rest, err := readString(rest)
		if err != nil {
			return err
		}
		if len(rest) != 0 || ts.schema.colIndex(col) < 0 {
			return ErrCorrupt
		}
		if err := ts.createIndexLocked(col); err != nil {
			return err
		}
	default:
		return ErrCorrupt
	}
	return nil
}

// shardIndex maps an encoded primary key to its home shard: FNV-1a over
// the key bytes, modulo the shard count. The hash depends only on the
// key encoding, which is stable across reopens, so the routing never
// changes for a given layout. A single-shard engine skips the hash.
// Inlined (rather than hash/fnv) to keep the per-row routing
// allocation-free.
func shardIndex(key []byte, n int) int {
	if n == 1 {
		return 0
	}
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return int(h % uint64(n))
}
