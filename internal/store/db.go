package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// DB is an embedded database engine: a set of tables hash-partitioned
// by primary key across one or more shards, each shard durably backed
// by its own write-ahead log. Open replays every shard's log (in
// parallel); a corrupted tail (crash) is truncated per shard.
//
// Layouts. A single-shard engine stores its WAL in a plain file at
// path — byte-compatible with pre-shard databases, which open
// unchanged. A multi-shard engine stores path as a directory of
// per-shard subdirectories:
//
//	path/
//	  shard-000/wal.log
//	  shard-001/wal.log
//	  ...
//
// The shard count is fixed at creation; reopening detects it from the
// directory and rejects a conflicting request (resharding would
// re-route every row).
//
// Locking: db.mu guards the tables map and shard lifecycle (Compact's
// log swaps); each tableShard carries its own RWMutex for row and
// index state; each Shard has a logMu serializing appends to its WAL.
// Lock order is db.mu → tableShard.mu → Shard.logMu, and no path
// acquires them in the opposite direction, so concurrent readers and
// writers on different shards never deadlock and never contend.
type DB struct {
	mu      sync.RWMutex
	shards  []*Shard
	tables  map[string]*Table
	path    string
	sharded bool // directory layout (true) vs single-file (false)

	// Background compaction (see compactor.go). stopCh is nil when the
	// compactor was never started.
	pol      CompactionPolicy
	stopCh   chan struct{}
	stopOnce sync.Once
	compWG   sync.WaitGroup

	// cache is the engine-wide decoded-block cache shared by every
	// shard's segments (see blockcache.go).
	cache *blockCache
}

// shardWALName is the WAL file inside each shard subdirectory.
const shardWALName = "wal.log"

// shardDirName formats the subdirectory of shard i.
func shardDirName(i int) string { return fmt.Sprintf("shard-%03d", i) }

// Open opens (creating if necessary) the database at path with the
// layout found on disk: a plain file (or a fresh path) is a
// single-shard engine, a shard directory keeps its existing shard
// count. It is OpenSharded(path, 0).
func Open(path string) (*DB, error) { return OpenSharded(path, 0) }

// OpenSharded opens (creating if necessary) the database at path with n
// shards. n <= 0 auto-detects: an existing layout keeps its shard
// count, a fresh path defaults to one shard. Creating a fresh path with
// n > 1 lays out per-shard subdirectories; n == 1 creates the
// pre-shard-compatible single file. Opening an existing database with a
// conflicting n fails — resharding is not supported.
func OpenSharded(path string, n int) (*DB, error) {
	paths, sharded, err := resolveLayout(path, n)
	if err != nil {
		return nil, err
	}
	// Open and replay every shard in parallel: recovery time is the
	// slowest shard, not the sum.
	cache := newBlockCache(DefaultBlockCacheBytes)
	shards := make([]*Shard, len(paths))
	errs := make([]error, len(paths))
	var wg sync.WaitGroup
	for i, p := range paths {
		wg.Add(1)
		go func(i int, p string) {
			defer wg.Done()
			shards[i], errs[i] = openShard(i, p, cache)
		}(i, p)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		// A partial open must not leak the shards that did succeed.
		for _, sh := range shards {
			if sh != nil {
				sh.close()
			}
		}
		return nil, err
	}
	db := &DB{shards: shards, tables: make(map[string]*Table), path: path, sharded: sharded, cache: cache}
	if err := db.buildRouters(); err != nil {
		db.Close()
		return nil, err
	}
	return db, nil
}

// OpenShardedWithPolicy opens the database like OpenSharded and, unless
// the policy disables it, starts the background compactor: one
// goroutine per shard, woken when the shard's post-compaction write
// volume or WAL size crosses the policy thresholds, folding the
// memtable into a new small segment off the write path (and escalating
// to a major merge when a table's segment stack hits the fan-out
// bound). Close waits for an in-flight background compaction to finish
// before closing the shards.
func OpenShardedWithPolicy(path string, n int, pol CompactionPolicy) (*DB, error) {
	db, err := OpenSharded(path, n)
	if err != nil {
		return nil, err
	}
	db.pol = pol.withDefaults()
	if !pol.Disabled {
		db.startCompactors()
	}
	return db, nil
}

// resolveLayout maps (path, requested shard count) to the per-shard WAL
// paths, creating shard subdirectories for a fresh multi-shard engine.
func resolveLayout(path string, n int) (paths []string, sharded bool, err error) {
	st, err := os.Stat(path)
	switch {
	case err == nil && !st.IsDir():
		if n > 1 {
			return nil, false, fmt.Errorf("store: %s is a single-file store; cannot open with %d shards (resharding unsupported)", path, n)
		}
		return []string{path}, false, nil
	case err == nil: // existing directory
		m, other, err := countShardDirs(path)
		if err != nil {
			return nil, false, err
		}
		if m == 0 {
			// Never fabricate a database inside a directory that is
			// not one: an explicit shard count may lay out a pre-made
			// *empty* directory, but a directory with foreign content
			// (a corpus dir, a typo'd path) or an auto-detect open is
			// refused.
			if other > 0 {
				return nil, false, fmt.Errorf("store: %s exists and is not a database directory", path)
			}
			if n < 1 {
				return nil, false, fmt.Errorf("store: %s is an empty directory, not a database (pass a shard count to initialize it)", path)
			}
			return makeShardDirs(path, n)
		}
		if n > 0 && n != m {
			return nil, false, fmt.Errorf("store: %s has %d shards, opened with %d (resharding unsupported)", path, m, n)
		}
		return shardWALPaths(path, m), true, nil
	case os.IsNotExist(err):
		if n <= 1 {
			return []string{path}, false, nil // compatible single-file default
		}
		return makeShardDirs(path, n)
	default:
		return nil, false, err
	}
}

// countShardDirs counts the shard-NNN subdirectories of dir (exact
// names only — "shard-000-backup" is a foreign entry, not a shard),
// verifying they are contiguous from shard-000. other reports how many
// entries are not shard directories, so callers can tell an empty
// pre-made directory from one holding unrelated content.
func countShardDirs(dir string) (n, other int, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, 0, err
	}
	present := make(map[string]bool, len(entries))
	for _, e := range entries {
		i, ok := parseShardDirName(e.Name())
		if !ok {
			other++
			continue
		}
		if !e.IsDir() {
			return 0, 0, fmt.Errorf("store: %s is not a directory", filepath.Join(dir, e.Name()))
		}
		present[shardDirName(i)] = true
		n++
	}
	for i := 0; i < n; i++ {
		if !present[shardDirName(i)] {
			return 0, 0, fmt.Errorf("store: %s: shard directories not contiguous (missing %s)", dir, shardDirName(i))
		}
	}
	return n, other, nil
}

// parseShardDirName inverts shardDirName exactly: "shard-" followed by
// digits, round-tripping to the same name (so trailing garbage and
// wrong zero-padding are rejected rather than miscounted).
func parseShardDirName(name string) (int, bool) {
	var i int
	if _, err := fmt.Sscanf(name, "shard-%d", &i); err != nil || i < 0 {
		return 0, false
	}
	if shardDirName(i) != name {
		return 0, false
	}
	return i, true
}

// shardWALPaths lists the WAL path of each of dir's n shards.
func shardWALPaths(dir string, n int) []string {
	paths := make([]string, n)
	for i := range paths {
		paths[i] = filepath.Join(dir, shardDirName(i), shardWALName)
	}
	return paths
}

// makeShardDirs creates dir and its n shard subdirectories.
func makeShardDirs(dir string, n int) ([]string, bool, error) {
	for i := 0; i < n; i++ {
		if err := os.MkdirAll(filepath.Join(dir, shardDirName(i)), 0o755); err != nil {
			return nil, false, err
		}
	}
	return shardWALPaths(dir, n), true, nil
}

// buildRouters unifies the per-shard table states replayed from each
// WAL into cross-shard Table routers. Shards normally agree on the
// table and index inventory (CreateTable and CreateIndex log to every
// shard); a shard whose WAL lost the tail of that inventory to a crash
// is repaired by re-appending the missing create records, so the
// invariant "every shard WAL self-describes its tables and indexes"
// holds again after open. Conflicting schemas for the same table name
// are corruption and fail the open.
func (db *DB) buildRouters() error {
	nameSet := make(map[string]bool)
	for _, sh := range db.shards {
		for name := range sh.tables {
			nameSet[name] = true
		}
	}
	names := make([]string, 0, len(nameSet))
	for n := range nameSet {
		names = append(names, n)
	}
	sortKeys(names)

	for _, name := range names {
		var schema Schema
		found := false
		for _, sh := range db.shards {
			ts, ok := sh.tables[name]
			if !ok {
				continue
			}
			if !found {
				schema, found = ts.schema, true
			} else if !schemaEqual(schema, ts.schema) {
				return fmt.Errorf("store: shards disagree on schema of table %q", name)
			}
		}
		idxSet := make(map[string]bool)
		for _, sh := range db.shards {
			if ts, ok := sh.tables[name]; ok {
				for col := range ts.secondary {
					idxSet[col] = true
				}
			}
		}
		idxCols := make([]string, 0, len(idxSet))
		for c := range idxSet {
			idxCols = append(idxCols, c)
		}
		sortKeys(idxCols)

		shards := make([]*tableShard, len(db.shards))
		for i, sh := range db.shards {
			ts, ok := sh.tables[name]
			if !ok {
				if err := sh.appendLog(encodeCreateTablePayload(schema)); err != nil {
					return err
				}
				ts = sh.newTableShard(schema)
			}
			for _, col := range idxCols {
				if _, ok := ts.secondary[col]; !ok {
					if err := sh.appendLog(encodeCreateIndexPayload(name, col)); err != nil {
						return err
					}
					if err := ts.createIndexLocked(col); err != nil {
						return err
					}
				}
			}
			shards[i] = ts
		}
		db.tables[name] = &Table{schema: schema, shards: shards}
	}
	return nil
}

// schemaEqual reports whether two schemas are identical.
func schemaEqual(a, b Schema) bool {
	if a.Name != b.Name || a.Primary != b.Primary || len(a.Columns) != len(b.Columns) {
		return false
	}
	for i := range a.Columns {
		if a.Columns[i] != b.Columns[i] {
			return false
		}
	}
	return true
}

// OpenMemory returns a single-shard database with no durable log: all
// operations stay in memory. Useful for tests and benchmarks.
func OpenMemory() *DB { return OpenMemorySharded(1) }

// OpenMemorySharded returns an n-shard in-memory database.
func OpenMemorySharded(n int) *DB {
	if n < 1 {
		n = 1
	}
	cache := newBlockCache(DefaultBlockCacheBytes)
	shards := make([]*Shard, n)
	for i := range shards {
		shards[i] = memShard(i)
		shards[i].cache = cache
	}
	return &DB{shards: shards, tables: make(map[string]*Table), sharded: n > 1, cache: cache}
}

// SetBlockCacheCapacity resizes the engine-wide decoded-block cache.
// 0 disables caching (entries are dropped and nothing new is stored;
// the hit/miss counters stay live). Safe at any time, including under
// concurrent reads.
func (db *DB) SetBlockCacheCapacity(capBytes int64) {
	db.cache.setCapacity(capBytes)
}

// BlockCacheStats snapshots the engine-wide decoded-block cache.
func (db *DB) BlockCacheStats() CacheStats { return db.cache.stats() }

// Shards returns the engine's shard count.
func (db *DB) Shards() int { return len(db.shards) }

// RecoveredWithLoss reports whether Open had to truncate a corrupt WAL
// tail on any shard, or fall back to WAL-only recovery because a
// shard's segment manifest (or a segment it listed) was unreadable.
func (db *DB) RecoveredWithLoss() bool {
	for _, sh := range db.shards {
		if sh.dropped > 0 || sh.segLost {
			return true
		}
	}
	return false
}

// Health reports the engine's degradation state: which shards latched
// the failed-compaction write refusal, and whether recovery dropped
// data. It reads the latches under the database lock, so it is safe
// concurrently with compaction and writes.
func (db *DB) Health() Health {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var h Health
	for _, sh := range db.shards {
		if failed := sh.failedErr(); failed != nil {
			h.ReadOnly = true
			h.FailedShards = append(h.FailedShards, sh.id)
			if h.Reason == "" {
				h.Reason = failed.Error()
			}
		}
		if sh.dropped > 0 || sh.segLost {
			h.RecoveredWithLoss = true
		}
		h.DroppedRecords += sh.dropped
	}
	return h
}

// Close flushes and closes every shard's log. With background
// compaction enabled it first stops the compactors, waiting for any
// in-flight compaction to complete — the safe point the daemon's
// SIGTERM drain relies on.
func (db *DB) Close() error {
	db.stopCompactors()
	db.mu.Lock()
	defer db.mu.Unlock()
	errs := make([]error, len(db.shards))
	for i, sh := range db.shards {
		errs[i] = sh.close()
	}
	return errors.Join(errs...)
}

// Sync flushes buffered log records on every shard to stable storage.
func (db *DB) Sync() error {
	errs := make([]error, len(db.shards))
	for i, sh := range db.shards {
		errs[i] = sh.sync()
	}
	return errors.Join(errs...)
}

// LogSize returns the total size of the write-ahead logs in bytes
// (0 for in-memory databases).
func (db *DB) LogSize() int64 {
	var total int64
	for _, sh := range db.shards {
		total += sh.logSize()
	}
	return total
}

// CreateTable creates a table with the given schema on every shard.
// Creating an existing table with an identical schema is a no-op.
func (db *DB) CreateTable(s Schema) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if t, ok := db.tables[s.Name]; ok {
		return t, nil
	}
	if len(s.Columns) == 0 || s.Primary < 0 || s.Primary >= len(s.Columns) {
		return nil, fmt.Errorf("store: invalid schema for table %q", s.Name)
	}
	payload := encodeCreateTablePayload(s)
	shards := make([]*tableShard, len(db.shards))
	for i, sh := range db.shards {
		if err := sh.appendLog(payload); err != nil {
			// Earlier shards logged the create; the next open's
			// buildRouters repairs any shard this loop did not reach.
			return nil, err
		}
		shards[i] = sh.newTableShard(s)
	}
	t := &Table{schema: s, shards: shards}
	db.tables[s.Name] = t
	return t, nil
}

// encodeCreateTablePayload frames an opCreateTable payload; CreateTable
// and Compact both go through it.
func encodeCreateTablePayload(s Schema) []byte {
	payload := []byte{opCreateTable}
	payload = appendString(payload, s.Name)
	payload = append(payload, byte(len(s.Columns)), byte(s.Primary))
	for _, c := range s.Columns {
		payload = appendString(payload, c.Name)
		payload = append(payload, byte(c.Type))
	}
	return payload
}

// encodeCreateIndexPayload frames an opCreateIndex payload; CreateIndex
// and Compact both go through it.
func encodeCreateIndexPayload(table, col string) []byte {
	payload := []byte{opCreateIndex}
	payload = appendString(payload, table)
	return appendString(payload, col)
}

// Table returns the named table, or an error if it does not exist.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("store: no table %q", name)
	}
	return t, nil
}

// TableNames lists tables in creation-independent sorted order.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sortKeys(names)
	return names
}

// sortKeys sorts byte-encoded keys; Go string order is byte order, so
// this matches bytes.Compare on the underlying encodings.
func sortKeys(ks []string) { sort.Strings(ks) }
