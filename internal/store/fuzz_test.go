package store

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The fuzz targets pin the store's crash-safety contract on arbitrary
// bytes: a WAL of any content opens without panicking — corrupt content
// is truncated and reported, never fatal — and the row codec decodes
// any buffer without panicking, round-tripping whatever it accepts.
// Seed corpora are checked in under testdata/fuzz.

// validWALBytes builds a well-formed log (create table, create index,
// single insert, batch insert, delete) to seed the fuzzer near the real
// format.
func validWALBytes(tb testing.TB) []byte {
	tb.Helper()
	path := filepath.Join(tb.TempDir(), "seed.db")
	db, err := Open(path)
	if err != nil {
		tb.Fatal(err)
	}
	tbl, err := db.CreateTable(attrSchema())
	if err != nil {
		tb.Fatal(err)
	}
	if err := tbl.CreateIndex("attribute"); err != nil {
		tb.Fatal(err)
	}
	if err := tbl.Insert(Row{Int(1), Int(1), Str("pulse"), Str("x"), Float(84)}); err != nil {
		tb.Fatal(err)
	}
	if err := tbl.InsertBatch([]Row{
		{Int(2), Int(1), Str("smoking"), Str("never"), Float(0)},
		{Int(3), Int(2), Str("pulse"), Str("x"), Float(98)},
	}); err != nil {
		tb.Fatal(err)
	}
	if err := tbl.Delete(Int(1)); err != nil {
		tb.Fatal(err)
	}
	if err := db.Close(); err != nil {
		tb.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		tb.Fatal(err)
	}
	return raw
}

// FuzzWALReplay feeds arbitrary bytes to Open as a log file. Whatever
// the content, Open must succeed (truncating garbage), leave every
// index consistent with its table, and recover idempotently: a second
// open of the truncated log must replay cleanly with no further loss.
func FuzzWALReplay(f *testing.F) {
	seed := validWALBytes(f)
	f.Add(seed)
	f.Add(seed[:len(seed)-3]) // torn tail
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 0, 0, 0, 0, 42})
	flip := append([]byte(nil), seed...)
	flip[len(flip)/2] ^= 0xff
	f.Add(flip)

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.db")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		db, err := Open(path)
		if err != nil {
			t.Fatalf("Open on arbitrary bytes must not fail: %v", err)
		}
		names := db.TableNames()
		rowCounts := make(map[string]int, len(names))
		for _, name := range names {
			tbl, err := db.Table(name)
			if err != nil {
				t.Fatal(err)
			}
			rowCounts[name] = tbl.Len()
			checkIndexConsistent(t, tbl)
		}
		if err := db.Close(); err != nil {
			t.Fatalf("Close after recovery: %v", err)
		}

		db, err = Open(path)
		if err != nil {
			t.Fatalf("second Open must replay the truncated log cleanly: %v", err)
		}
		defer db.Close()
		if db.RecoveredWithLoss() {
			t.Fatal("recovery not idempotent: second open dropped records again")
		}
		for _, name := range names {
			tbl, err := db.Table(name)
			if err != nil {
				t.Fatalf("table %q lost on second open: %v", name, err)
			}
			if tbl.Len() != rowCounts[name] {
				t.Fatalf("table %q rows %d != %d after reopen", name, tbl.Len(), rowCounts[name])
			}
		}
	})
}

// validShardWALBytes builds one shard's well-formed WAL by writing a
// 2-shard store and reading back the given shard's log, seeding the
// sharded fuzzer near the real format.
func validShardWALBytes(tb testing.TB, shard int) []byte {
	tb.Helper()
	path := filepath.Join(tb.TempDir(), "seed.db")
	db, err := OpenSharded(path, 2)
	if err != nil {
		tb.Fatal(err)
	}
	tbl, err := db.CreateTable(attrSchema())
	if err != nil {
		tb.Fatal(err)
	}
	if err := tbl.CreateIndex("attribute"); err != nil {
		tb.Fatal(err)
	}
	if err := tbl.InsertBatch([]Row{
		{Int(1), Int(1), Str("pulse"), Str("x"), Float(84)},
		{Int(2), Int(1), Str("smoking"), Str("never"), Float(0)},
		{Int(3), Int(2), Str("pulse"), Str("x"), Float(98)},
		{Int(4), Int(2), Str("weight"), Str("x"), Float(61)},
	}); err != nil {
		tb.Fatal(err)
	}
	if err := db.Close(); err != nil {
		tb.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(path, shardDirName(shard), shardWALName))
	if err != nil {
		tb.Fatal(err)
	}
	return raw
}

// FuzzShardWALReplay feeds arbitrary bytes to one shard of a 2-shard
// layout while the other shard holds a valid log. Whatever the corrupt
// shard contains, the engine must open (repairing the torn shard's
// table/index inventory from the healthy one), the healthy shard's rows
// must all survive, every index must match its table per shard, and a
// second open must replay cleanly with no further loss.
func FuzzShardWALReplay(f *testing.F) {
	seed := validShardWALBytes(f, 1)
	f.Add(seed)
	f.Add(seed[:len(seed)-3]) // torn tail
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 0, 0, 0, 0, 42})
	flip := append([]byte(nil), seed...)
	flip[len(flip)/2] ^= 0xff
	f.Add(flip)

	healthy := validShardWALBytes(f, 0)
	healthyRows := 0
	for _, pk := range []int64{1, 2, 3, 4} {
		if shardIndex(encodeKey(Int(pk)), 2) == 0 {
			healthyRows++
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.db")
		for i := 0; i < 2; i++ {
			if err := os.MkdirAll(filepath.Join(path, shardDirName(i)), 0o755); err != nil {
				t.Fatal(err)
			}
		}
		if err := os.WriteFile(filepath.Join(path, shardDirName(0), shardWALName), healthy, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(path, shardDirName(1), shardWALName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		db, err := OpenSharded(path, 0)
		if err != nil {
			// One open failure is legitimate: a CRC-valid create-table
			// record whose schema conflicts with the healthy shard's
			// cannot be repaired and must be refused, not guessed at.
			if strings.Contains(err.Error(), "disagree on schema") {
				return
			}
			t.Fatalf("sharded Open on arbitrary shard-1 bytes must not fail: %v", err)
		}
		tbl, err := db.Table("extracted")
		if err != nil {
			t.Fatalf("healthy shard's table lost: %v", err)
		}
		for _, pk := range []int64{1, 2, 3, 4} {
			if shardIndex(encodeKey(Int(pk)), 2) != 0 {
				continue
			}
			if _, err := tbl.Get(Int(pk)); err != nil {
				t.Fatalf("healthy shard row %d lost to shard-1 corruption", pk)
			}
		}
		checkIndexConsistent(t, tbl)
		rows := tbl.Len()
		if rows < healthyRows {
			t.Fatalf("%d rows < %d healthy-shard rows", rows, healthyRows)
		}
		if err := db.Close(); err != nil {
			t.Fatalf("Close after recovery: %v", err)
		}

		db, err = OpenSharded(path, 0)
		if err != nil {
			t.Fatalf("second Open must replay the truncated logs cleanly: %v", err)
		}
		defer db.Close()
		if db.RecoveredWithLoss() {
			t.Fatal("recovery not idempotent: second open dropped records again")
		}
		tbl, err = db.Table("extracted")
		if err != nil {
			t.Fatal(err)
		}
		if tbl.Len() != rows {
			t.Fatalf("rows %d != %d after reopen", tbl.Len(), rows)
		}
		checkIndexConsistent(t, tbl)
	})
}

// FuzzRowCodec decodes arbitrary bytes as an n-column row. Decoding
// must never panic; whatever decodes successfully must re-encode to the
// consumed bytes and decode back equal.
func FuzzRowCodec(f *testing.F) {
	rowBytes := encodeRow(nil, Row{Int(-7), Float(3.5), Str("pulse"), Bool(true)})
	f.Add(rowBytes, 4)
	f.Add(encodeRow(nil, Row{Str(""), Int(0)}), 2)
	f.Add([]byte{byte(TString), 0xff, 0xff, 0xff}, 1) // oversized length prefix
	f.Add([]byte{}, 1)
	f.Add([]byte{0}, 3)

	f.Fuzz(func(t *testing.T, data []byte, n int) {
		if n <= 0 || n > 64 {
			n = n%64 + 1
			if n <= 0 {
				n += 64
			}
		}
		row, rest, err := decodeValues(data, n)
		if err != nil {
			return // rejected cleanly
		}
		if len(row) != n {
			t.Fatalf("decoded %d values, asked for %d", len(row), n)
		}
		consumed := data[:len(data)-len(rest)]
		re := encodeRow(nil, row)
		row2, err := decodeRow(re, n)
		if err != nil {
			t.Fatalf("re-decode of re-encoded row failed: %v (original %x)", err, consumed)
		}
		for i := range row {
			if !row[i].Equal(row2[i]) {
				// NaN floats are unequal to themselves; treat matching
				// bit patterns as equal.
				if row[i].Type == TFloat && row2[i].Type == TFloat &&
					row[i].F != row[i].F && row2[i].F != row2[i].F {
					continue
				}
				t.Fatalf("round-trip mismatch at %d: %v vs %v", i, row[i], row2[i])
			}
		}
		// Keys must be computable for any decoded value (replay indexes
		// arbitrary decoded rows).
		for _, v := range row {
			_ = encodeKey(v)
		}
	})
}

// validSegmentBytes builds a well-formed segment file (multiple blocks,
// footer schema) to seed FuzzSegmentDecode near the real format.
func validSegmentBytes(tb testing.TB) []byte {
	tb.Helper()
	path := filepath.Join(tb.TempDir(), "seed.seg")
	w, err := newSegmentWriter(path, attrSchema())
	if err != nil {
		tb.Fatal(err)
	}
	for i := 1; i <= 2*segmentBlockRows+17; i++ {
		row := Row{Int(int64(i)), Int(int64(i % 9)), Str("pulse"), Str("v"), Float(float64(i))}
		if err := w.add(row); err != nil {
			tb.Fatal(err)
		}
	}
	if err := w.finish(); err != nil {
		tb.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		tb.Fatal(err)
	}
	return raw
}

// segFilterOff returns the offset of the bloom-filter region in a
// format-2 segment image.
func segFilterOff(tb testing.TB, raw []byte) int {
	tb.Helper()
	if string(raw[len(raw)-8:]) != segTailMagic2 {
		tb.Fatalf("not a %s segment", segTailMagic2)
	}
	filterLen := int(binary.BigEndian.Uint32(raw[len(raw)-segTail2Len+8:]))
	if filterLen == 0 {
		tb.Fatal("segment has no filter region")
	}
	return len(raw) - segTail2Len - filterLen
}

// FuzzSegmentDecode feeds arbitrary bytes to openSegment. The contract:
// malformed input is rejected with an error, never a panic or an OOM
// pre-allocation; input that opens must iterate in strictly ascending
// key order, agree with its advertised row count, and serve its zone
// maps' min/max keys by point get.
func FuzzSegmentDecode(f *testing.F) {
	seed := validSegmentBytes(f)
	f.Add(seed)
	f.Add(seed[:len(seed)-3]) // torn tail
	flip := append([]byte(nil), seed...)
	flip[len(flip)/2] ^= 0xff // corrupt block body
	f.Add(flip)
	metaFlip := append([]byte(nil), seed...)
	metaFlip[len(metaFlip)-segTail2Len+2] ^= 0xff // corrupt index length
	f.Add(metaFlip)
	filterFlip := append([]byte(nil), seed...)
	// First filter-region byte (the "BLM1" magic): must degrade to a
	// filter-less open, not a rejection.
	filterFlip[segFilterOff(f, seed)] ^= 0xff
	f.Add(filterFlip)
	f.Add(legacySegmentBytes(f, seed)) // format-1 tail, no filter region
	f.Add([]byte{})
	f.Add([]byte(segMagic))

	// One reusable scratch file per fuzz worker process: a TempDir per
	// exec would throttle the fuzzer to file-system metadata speed.
	scratch := filepath.Join(os.TempDir(), fmt.Sprintf("fuzzseg-%d.seg", os.Getpid()))
	f.Cleanup(func() { os.Remove(scratch) })

	f.Fuzz(func(t *testing.T, data []byte) {
		if err := os.WriteFile(scratch, data, 0o644); err != nil {
			t.Skip()
		}
		path := scratch
		sg, err := openSegment(path)
		if err != nil {
			return // rejected cleanly
		}
		defer sg.unref()
		it := newSegIter(sg, nil, nil, nil)
		n := 0
		var prev []byte
		for it.valid() {
			k := it.key()
			if prev != nil && string(prev) >= string(k) {
				t.Fatalf("iteration keys not strictly ascending")
			}
			if sg.filter != nil && !sg.filter.mayContain(bloomHash(k)) {
				// A decoded filter may be hostile garbage, but then it
				// must have forged a valid CRC over its own bits; a
				// present key it rejects is a false negative.
				t.Fatalf("bloom false negative for a stored key")
			}
			prev = append(prev[:0], k...)
			n++
			it.next()
		}
		if it.err != nil {
			return // block-level corruption surfaced as an error: fine
		}
		if n != sg.nRows {
			t.Fatalf("iterated %d rows, footer advertises %d", n, sg.nRows)
		}
		if len(sg.blocks) > 0 {
			for _, k := range [][]byte{sg.minKey, sg.maxKey} {
				if _, ok, err := sg.get(k, nil); err == nil && !ok {
					t.Fatalf("zone-map key absent from segment")
				}
			}
		}
	})
}
