package pos

import (
	"testing"

	"repro/internal/textproc"
)

func tagOne(t *testing.T, text string) []TaggedToken {
	t.Helper()
	sents := textproc.SplitSentences(text)
	if len(sents) != 1 {
		t.Fatalf("want 1 sentence for %q, got %d", text, len(sents))
	}
	return TagSentence(sents[0])
}

func findTag(toks []TaggedToken, word string) (Tag, bool) {
	for _, tok := range toks {
		if tok.Lower() == word {
			return tok.Tag, true
		}
	}
	return "", false
}

func TestTagVitalsSentence(t *testing.T) {
	toks := tagOne(t, "Blood pressure is 144/90, pulse of 84, temperature of 98.3, and weight of 154 pounds.")
	want := map[string]Tag{
		"blood": NN, "pressure": NN, "is": VBZ, "144/90": CD,
		"pulse": NN, "of": IN, "temperature": NN, "and": CC,
		"weight": NN, "pounds": NNS,
	}
	for w, wantTag := range want {
		got, ok := findTag(toks, w)
		if !ok {
			t.Errorf("word %q not found", w)
			continue
		}
		if got != wantTag {
			t.Errorf("tag(%q) = %v, want %v", w, got, wantTag)
		}
	}
}

func TestTagMedicalHistorySentence(t *testing.T) {
	toks := tagOne(t, "Significant for a postoperative CVA after undergoing a cholecystectomy and a midline hernia closure.")
	want := map[string]Tag{
		"significant":     JJ,
		"postoperative":   JJ,
		"cva":             NN,
		"cholecystectomy": NN,
		"midline":         JJ,
		"hernia":          NN,
		"closure":         NN,
	}
	for w, wantTag := range want {
		got, ok := findTag(toks, w)
		if !ok {
			t.Errorf("word %q not found", w)
			continue
		}
		if got != wantTag {
			t.Errorf("tag(%q) = %v, want %v", w, got, wantTag)
		}
	}
}

func TestTagSmokingSentences(t *testing.T) {
	toks := tagOne(t, "She quit smoking five years ago.")
	if tag, _ := findTag(toks, "she"); tag != PRP {
		t.Errorf("she = %v", tag)
	}
	if tag, _ := findTag(toks, "quit"); !tag.IsVerb() {
		t.Errorf("quit = %v, want verb", tag)
	}
	if tag, _ := findTag(toks, "never"); tag != "" {
		t.Errorf("never should be absent")
	}

	toks = tagOne(t, "She has never smoked.")
	if tag, _ := findTag(toks, "never"); tag != RB {
		t.Errorf("never = %v, want RB", tag)
	}
	if tag, _ := findTag(toks, "smoked"); tag != VBN && tag != VBD {
		t.Errorf("smoked = %v, want VBN/VBD", tag)
	}
}

func TestTagUnknownMedicalSuffixes(t *testing.T) {
	cases := map[string]Tag{
		"thoracotomy":    NN,  // -otomy
		"dermatitis":     NN,  // -itis
		"xanthelasma":    NN,  // default noun
		"spondylosis":    NN,  // -osis
		"adenocarcinoma": NN,  // -oma
		"hyperlipidemia": NN,  // -emia
		"slowly":         RB,  // -ly
		"resectable":     JJ,  // -able
		"calcifications": NNS, // -s plural
	}
	for w, want := range cases {
		toks := TagWords([]string{w})
		if toks[0] != want {
			t.Errorf("suffixTag(%q) = %v, want %v", w, toks[0], want)
		}
	}
}

func TestTagScreeningMammogram(t *testing.T) {
	toks := tagOne(t, "She underwent a screening mammogram.")
	if tag, _ := findTag(toks, "screening"); tag != JJ {
		t.Errorf("screening = %v, want JJ (modifier before noun)", tag)
	}
	if tag, _ := findTag(toks, "underwent"); tag != VBD {
		t.Errorf("underwent = %v, want VBD", tag)
	}
}

func TestTagWordsNumbers(t *testing.T) {
	tags := TagWords([]string{"pulse", "of", "84"})
	if tags[2] != CD {
		t.Errorf("84 = %v, want CD", tags[2])
	}
}

func TestTagProperNouns(t *testing.T) {
	toks := tagOne(t, "Medications include Lipitor and Zoloft.")
	if tag, _ := findTag(toks, "lipitor"); tag != NNP {
		t.Errorf("Lipitor = %v, want NNP", tag)
	}
}

func TestTagHelpers(t *testing.T) {
	if !NN.IsNoun() || !NNS.IsNoun() || !NNP.IsNoun() {
		t.Error("noun helpers")
	}
	if NN.IsVerb() || !VBD.IsVerb() || !VBG.IsVerb() {
		t.Error("verb helpers")
	}
	if !JJ.IsAdjective() || JJ.IsAdverb() || !RB.IsAdverb() {
		t.Error("adj/adv helpers")
	}
}
