package main

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/store"
)

func TestParseStrategy(t *testing.T) {
	cases := map[string]core.Strategy{
		"link-grammar":   core.LinkGrammar,
		"pattern-only":   core.PatternOnly,
		"proximity-only": core.ProximityOnly,
	}
	for name, want := range cases {
		got, err := parseStrategy(name)
		if err != nil || got != want {
			t.Errorf("parseStrategy(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := parseStrategy("bogus"); err == nil {
		t.Error("bogus strategy accepted")
	}
}

// queryTestDB persists a small synthetic extraction set to a WAL-backed
// database, with warehouse indexes created before ingest (the medex
// extract order).
func queryTestDB(t *testing.T) string { return shardedQueryTestDB(t, 1) }

// shardedQueryTestDB is queryTestDB with an explicit shard count.
func shardedQueryTestDB(t *testing.T, shards int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "extracted.db")
	db, err := store.OpenSharded(path, shards)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.OpenWarehouse(db, nil); err != nil {
		t.Fatal(err)
	}
	var exs []core.Extraction
	for p := 1; p <= 9; p++ {
		smoking := "never"
		if p%2 == 0 {
			smoking = "current"
		}
		exs = append(exs, core.Extraction{
			Patient: p,
			Numeric: map[string]core.NumericValue{"pulse": {Attr: "pulse", Value: float64(90 + p)}},
			Smoking: smoking,
		})
	}
	if _, err := core.PersistAll(db, exs); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestQueryCommand pins the acceptance path: medex query answers an
// equality and a numeric-range question from a persisted DB through the
// secondary index (0 full scans in the printed plan).
func TestQueryCommand(t *testing.T) {
	path := queryTestDB(t)

	var out strings.Builder
	if err := runQuery([]string{"-db", path, "-attr", "smoking", "-value", "current"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "patients (4): 2 4 6 8") {
		t.Errorf("equality answer wrong:\n%s", got)
	}
	if !strings.Contains(got, "1/1 conditions indexed") || !strings.Contains(got, "0 full scans") {
		t.Errorf("equality question did not use the index:\n%s", got)
	}

	out.Reset()
	if err := runQuery([]string{"-db", path, "-attr", "pulse", "-min", "95"}, &out); err != nil {
		t.Fatal(err)
	}
	got = out.String()
	if !strings.Contains(got, "patients (4): 6 7 8 9") {
		t.Errorf("range answer wrong:\n%s", got)
	}
	if !strings.Contains(got, "1/1 conditions indexed") || !strings.Contains(got, "0 full scans") {
		t.Errorf("range question did not use the index:\n%s", got)
	}

	out.Reset()
	if err := runQuery([]string{"-db", path, "-patient", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); !strings.Contains(got, "patient 4 (2 attribute rows)") {
		t.Errorf("patient chart wrong:\n%s", got)
	}

	out.Reset()
	if err := runQuery([]string{"-db", path, "-attr", "pulse", "-min", "95", "-max", "98", "-rows"}, &out); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); !strings.Contains(got, "2 rows;") {
		t.Errorf("rows output wrong:\n%s", got)
	}

	if err := runQuery([]string{"-db", path}, &out); err == nil {
		t.Error("query without -attr/-patient accepted")
	}
	if err := runQuery([]string{}, &out); err == nil {
		t.Error("query without -db accepted")
	}
}

// TestQueryCommandSharded pins the fan-out acceptance path: the same
// questions against a 3-shard store return the same answers as the
// single-shard run in TestQueryCommand, still fully indexed, with the
// layout auto-detected and the fan-out width reported in the plan.
func TestQueryCommandSharded(t *testing.T) {
	path := shardedQueryTestDB(t, 3)

	var out strings.Builder
	if err := runQuery([]string{"-db", path, "-attr", "smoking", "-value", "current"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "patients (4): 2 4 6 8") {
		t.Errorf("sharded equality answer differs from single-shard:\n%s", got)
	}
	if !strings.Contains(got, "1/1 conditions indexed") || !strings.Contains(got, "0 full scans") {
		t.Errorf("sharded equality question did not use the index:\n%s", got)
	}
	if !strings.Contains(got, "3 shard(s)") {
		t.Errorf("plan does not report the fan-out width:\n%s", got)
	}

	out.Reset()
	if err := runQuery([]string{"-db", path, "-attr", "pulse", "-min", "95"}, &out); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); !strings.Contains(got, "patients (4): 6 7 8 9") {
		t.Errorf("sharded range answer differs from single-shard:\n%s", got)
	}

	out.Reset()
	if err := runQuery([]string{"-db", path, "-patient", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); !strings.Contains(got, "patient 4 (2 attribute rows)") {
		t.Errorf("sharded patient chart wrong:\n%s", got)
	}

	// An explicit matching -shards works; a conflicting one is refused.
	out.Reset()
	if err := runQuery([]string{"-db", path, "-shards", "3", "-patient", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	if err := runQuery([]string{"-db", path, "-shards", "2", "-patient", "4"}, &out); err == nil {
		t.Error("conflicting -shards accepted (resharding is unsupported)")
	}
}

// TestQueryCommandCompacted pins the segment read path end to end: the
// same questions against a compacted store (rows folded into immutable
// segment files) return the same answers, and a patient chart — which
// scans by primary-key range — reports the segment counters in its plan
// line.
func TestQueryCommandCompacted(t *testing.T) {
	path := shardedQueryTestDB(t, 2)
	db, err := store.OpenSharded(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	if err := runQuery([]string{"-db", path, "-attr", "smoking", "-value", "current"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "patients (4): 2 4 6 8") {
		t.Errorf("compacted equality answer differs from single-shard:\n%s", got)
	}
	if !strings.Contains(got, "1/1 conditions indexed") || !strings.Contains(got, "0 full scans") {
		t.Errorf("compacted equality question did not use the index:\n%s", got)
	}
	if !strings.Contains(got, "segment(s)") {
		t.Errorf("plan does not report segment counters after compaction:\n%s", got)
	}

	out.Reset()
	if err := runQuery([]string{"-db", path, "-attr", "pulse", "-min", "95"}, &out); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); !strings.Contains(got, "patients (4): 6 7 8 9") {
		t.Errorf("compacted range answer differs from single-shard:\n%s", got)
	}

	out.Reset()
	if err := runQuery([]string{"-db", path, "-patient", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); !strings.Contains(got, "patient 4 (2 attribute rows)") {
		t.Errorf("compacted patient chart wrong:\n%s", got)
	}
}

func TestPrintExtractionDoesNotPanic(t *testing.T) {
	printExtraction(core.Extraction{
		Patient: 1,
		Numeric: map[string]core.NumericValue{
			"pulse":          {Attr: "pulse", Value: 84},
			"blood pressure": {Attr: "blood pressure", Value: 144, Value2: 90, Ratio: true},
		},
		PreMedical: []string{"diabetes"},
		Smoking:    "never",
	})
}

// TestQueryCommandReportsReadAcceleration pins the CLI surface of the
// segment read accelerators on a multi-run stack whose id ranges
// interleave (the sparse-id shape a WAL-loss recovery leaves behind):
// a two-condition question must report nonzero bloom skips — newer runs
// rejecting older runs' keys without touching a block — and nonzero
// cache hits — the second condition resolving from blocks the first
// already decoded.
func TestQueryCommandReportsReadAcceleration(t *testing.T) {
	path := filepath.Join(t.TempDir(), "extracted.db")
	db, err := store.OpenSharded(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.OpenWarehouse(db, nil); err != nil { // creates table + indexes
		t.Fatal(err)
	}
	tbl, err := db.Table(core.ResultTable)
	if err != nil {
		t.Fatal(err)
	}
	const runs, perRun = 3, 300
	for r := 0; r < runs; r++ {
		var batch []store.Row
		for i := 0; i < perRun; i++ {
			id := int64(i*runs + r)
			patient := id % 40
			row := store.Row{
				store.Int(id), store.Int(patient),
				store.Str("pulse"), store.Str("96"), store.Float(96),
			}
			if i%2 == 1 {
				row = store.Row{
					store.Int(id), store.Int(patient),
					store.Str("smoking"), store.Str("current"), store.Float(0),
				}
			}
			batch = append(batch, row)
		}
		if err := tbl.InsertBatch(batch); err != nil {
			t.Fatal(err)
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	if err := runQuery([]string{"-db", path, "-attr", "pulse", "-min", "95", "-cond", "smoking=current"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	m := regexp.MustCompile(`(\d+) bloom skips, (\d+) cache hits`).FindStringSubmatch(got)
	if m == nil {
		t.Fatalf("plan line reports no read-acceleration counters:\n%s", got)
	}
	if m[1] == "0" {
		t.Errorf("interleaved run stack produced 0 bloom skips:\n%s", got)
	}
	if m[2] == "0" {
		t.Errorf("second condition produced 0 cache hits:\n%s", got)
	}
	if !strings.Contains(got, "2/2 conditions indexed") {
		t.Errorf("conditions did not resolve through the index:\n%s", got)
	}
}

// TestParseCond pins the -cond grammar.
func TestParseCond(t *testing.T) {
	c, err := parseCond("smoking=current")
	if err != nil || c.Attr != "smoking" || c.Term != "current" {
		t.Fatalf("parseCond equality = %+v, %v", c, err)
	}
	c, err = parseCond("pulse>100")
	if err != nil || c.Attr != "pulse" || c.Min == nil || *c.Min != 100 || !c.MinExcl || c.Max != nil {
		t.Fatalf("parseCond lower bound = %+v, %v", c, err)
	}
	c, err = parseCond("pulse>90<120")
	if err != nil || c.Min == nil || *c.Min != 90 || c.Max == nil || *c.Max != 120 {
		t.Fatalf("parseCond band = %+v, %v", c, err)
	}
	for _, bad := range []string{"", "pulse", "=x", "pulse=", "pulse>abc", "pulse>"} {
		if _, err := parseCond(bad); err == nil {
			t.Errorf("parseCond(%q) accepted", bad)
		}
	}
}
