package eval

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ontology"
	"repro/internal/records"
)

func corpus(t *testing.T) []records.Record {
	t.Helper()
	return records.Generate(records.DefaultGenOptions())
}

func TestRunE1Paper(t *testing.T) {
	res := RunE1(corpus(t), core.LinkGrammar)
	if res.Overall.Precision() != 1 || res.Overall.Recall() != 1 {
		t.Errorf("E1 should be 100%% on the canonical corpus: %v", res.Overall)
	}
	out := res.String()
	for _, attr := range records.NumericAttrs {
		if !strings.Contains(out, attr) {
			t.Errorf("E1 report missing %q:\n%s", attr, out)
		}
	}
}

func TestRunE2Table1Shape(t *testing.T) {
	ont := ontology.MustNew(ontology.Options{})
	defer ont.Close()
	res := RunE2(corpus(t), ont, false)
	// Table 1's ordering: predefined medical strongest, predefined
	// surgical recall weakest.
	if res.PreMedical.Recall() <= res.PreSurgical.Recall() {
		t.Errorf("predefined surgical recall (%v) should trail predefined medical (%v)",
			res.PreSurgical, res.PreMedical)
	}
	if res.PreSurgical.Recall() > 0.65 {
		t.Errorf("predefined surgical recall too high for paper regime: %v", res.PreSurgical)
	}
	if !strings.Contains(res.String(), "Predefined Past Surgical History") {
		t.Error("E2 report malformed")
	}
}

func TestRunE3Paper(t *testing.T) {
	res := RunE3(corpus(t), 1)
	if res.Accuracy < 0.85 {
		t.Errorf("E3 accuracy %.1f%%, want ≥85%%", 100*res.Accuracy)
	}
	// The paper: trees use 4–7 features.
	if res.MinFeatures < 2 || res.MaxFeatures > 12 {
		t.Errorf("tree feature range %d–%d", res.MinFeatures, res.MaxFeatures)
	}
}

func TestRunA1StrategyOrdering(t *testing.T) {
	// On a style-diverse corpus link grammar must beat pattern-only.
	opts := records.DefaultGenOptions()
	opts.StyleDiversity = 0.8
	recs := records.Generate(opts)
	res := RunA1(recs)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	var lg, pat A1Row
	for _, row := range res.Rows {
		switch row.Strategy {
		case core.LinkGrammar:
			lg = row
		case core.PatternOnly:
			pat = row
		}
	}
	t.Logf("link-grammar %v | pattern-only %v", lg.Overall, pat.Overall)
	if lg.Overall.Recall() < pat.Overall.Recall() {
		t.Errorf("link grammar recall (%v) below pattern-only (%v) on diverse corpus",
			lg.Overall.Recall(), pat.Overall.Recall())
	}
	if !strings.Contains(res.String(), "link-grammar") {
		t.Error("A1 report malformed")
	}
}

func TestRunA2OptionsSweep(t *testing.T) {
	res := RunA2(corpus(t), 1)
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byName := map[string]A2Row{}
	for _, row := range res.Rows {
		byName[row.Name] = row
	}
	paper := byName["all POS, lemma on (paper)"]
	if paper.Accuracy < 0.85 {
		t.Errorf("paper config accuracy %.1f%%", 100*paper.Accuracy)
	}
	t.Log("\n" + res.String())
}

func TestRunA3NumericFeatures(t *testing.T) {
	res := RunA3(corpus(t), 1)
	if res.Numeric < res.Plain {
		t.Errorf("numeric features hurt: %.3f → %.3f", res.Plain, res.Numeric)
	}
	if res.Numeric < 0.85 {
		t.Errorf("with numeric thresholds alcohol should be near-perfect: %.3f", res.Numeric)
	}
}

func TestRunA4CoverageMonotone(t *testing.T) {
	res, err := RunA4(corpus(t), []float64{0.5, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	lo, hi := res.Rows[0], res.Rows[1]
	if hi.Medical.Recall() < lo.Medical.Recall() {
		t.Errorf("medical recall should not degrade with more coverage: %.3f → %.3f",
			lo.Medical.Recall(), hi.Medical.Recall())
	}
	t.Log("\n" + res.String())
}

func TestRunE5Medications(t *testing.T) {
	ont := ontology.MustNew(ontology.Options{})
	defer ont.Close()
	pr := RunE5(corpus(t), ont)
	if pr.Precision() < 0.95 || pr.Recall() < 0.9 {
		t.Errorf("medication extraction should be near-perfect on canonical corpus: %v", pr)
	}
}

func TestRunA6CriterionComparison(t *testing.T) {
	res := RunA6(corpus(t), 1)
	if res.ID3.Accuracy <= 0 || res.Gini.Accuracy <= 0 {
		t.Fatalf("degenerate accuracies: %+v", res)
	}
	// The paper's claim: ID3 should not need more features than other
	// criteria (allow a small tolerance for fold noise).
	if res.ID3.MaxFeatures > res.Gini.MaxFeatures+2 {
		t.Errorf("ID3 max features %d ≫ Gini %d", res.ID3.MaxFeatures, res.Gini.MaxFeatures)
	}
	if !strings.Contains(res.String(), "info gain") {
		t.Error("A6 report malformed")
	}
}

func TestRunA7NegationImprovesPrecision(t *testing.T) {
	ont := ontology.MustNew(ontology.Options{})
	defer ont.Close()
	res := RunA7(corpus(t), ont)
	if res.Filtered.OtherMedical.Precision() < res.Baseline.OtherMedical.Precision() {
		t.Errorf("negation filter should raise other-medical precision: %.3f → %.3f",
			res.Baseline.OtherMedical.Precision(), res.Filtered.OtherMedical.Precision())
	}
	if res.Filtered.OtherMedical.Recall() < res.Baseline.OtherMedical.Recall()-1e-9 {
		t.Errorf("negation filter must not cost recall: %.3f → %.3f",
			res.Baseline.OtherMedical.Recall(), res.Filtered.OtherMedical.Recall())
	}
	if !strings.Contains(res.String(), "NegEx-style") {
		t.Error("A7 report malformed")
	}
}

func TestRunA5DiversityDegrades(t *testing.T) {
	res := RunA5([]float64{0, 0.8}, 50, 1)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	base, diverse := res.Rows[0], res.Rows[1]
	if base.NumericR != 1 {
		t.Errorf("diversity 0 numeric recall = %.3f, want 1", base.NumericR)
	}
	if diverse.NumericR >= base.NumericR {
		t.Errorf("diversity should reduce numeric recall: %.3f → %.3f", base.NumericR, diverse.NumericR)
	}
	t.Log("\n" + res.String())
}
