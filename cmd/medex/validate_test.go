package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestExtractFlagValidation pins the one-line actionable errors for
// nonsense flag values. main() turns any of these into log.Fatal, so a
// bad invocation exits non-zero before touching the corpus or store.
func TestExtractFlagValidation(t *testing.T) {
	dir := t.TempDir()
	corpus := filepath.Join(dir, "corpus")
	if err := os.Mkdir(corpus, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(corpus, "gold.json"), []byte("[]"), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		args []string
		want string
	}{
		{
			"zero shards",
			[]string{"-corpus", corpus, "-shards", "0"},
			"extract: -shards must be at least 1 (got 0)",
		},
		{
			"huge shards",
			[]string{"-corpus", corpus, "-shards", "5000"},
			"extract: -shards must be at most 1024 (got 5000)",
		},
		{
			"negative workers",
			[]string{"-corpus", corpus, "-workers", "-1"},
			"extract: -workers must not be negative (got -1; 0 selects the default)",
		},
		{
			"missing corpus",
			[]string{"-corpus", filepath.Join(dir, "nope")},
			"extract: -corpus: directory " + filepath.Join(dir, "nope") + " does not exist",
		},
		{
			"unwritable db parent",
			[]string{"-corpus", corpus, "-db", filepath.Join(dir, "missing", "x.db")},
			"extract: -db: parent directory " + filepath.Join(dir, "missing") + " does not exist (create it first)",
		},
	}
	for _, tc := range cases {
		err := runExtract(tc.args)
		if err == nil {
			t.Errorf("%s: no error", tc.name)
			continue
		}
		if got := err.Error(); got != tc.want {
			t.Errorf("%s:\n got %q\nwant %q", tc.name, got, tc.want)
		}
	}
}

// TestQueryFlagValidation pins the query-side flag errors.
func TestQueryFlagValidation(t *testing.T) {
	path := queryTestDB(t)
	cases := []struct {
		name string
		args []string
		want string
	}{
		{
			"negative shards",
			[]string{"-db", path, "-attr", "pulse", "-shards", "-2"},
			"query: -shards must be at least 1 (got -2) (0 auto-detects the layout)",
		},
		{
			"missing db flag",
			[]string{"-attr", "pulse"},
			"query: -db is required",
		},
	}
	for _, tc := range cases {
		err := runQuery(tc.args, io.Discard)
		if err == nil {
			t.Errorf("%s: no error", tc.name)
			continue
		}
		if got := err.Error(); got != tc.want {
			t.Errorf("%s:\n got %q\nwant %q", tc.name, got, tc.want)
		}
	}
}

// TestQueryHealthWarning: a database that recovered with loss surfaces
// the engine health both as a warning line and in the plan line, so the
// caveat travels with the answer.
func TestQueryHealthWarning(t *testing.T) {
	path := queryTestDB(t)
	// Tear the WAL tail so the reopen recovers with loss.
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-1); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := runQuery([]string{"-db", path, "-attr", "pulse"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "warning: engine health: recovered with loss") {
		t.Fatalf("no health warning in output:\n%s", got)
	}
	if !strings.Contains(got, ", health: recovered with loss") {
		t.Fatalf("plan line does not carry the health caveat:\n%s", got)
	}
}
