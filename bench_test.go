// Package repro's benchmark harness: one benchmark per paper artifact
// (E1, E2, E3, F1) and per ablation (A1–A5), plus substrate microbenches
// (link grammar parsing, ontology lookup via B-tree index vs linear
// scan). Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark reports the relevant quality metric through b.ReportMetric
// so a single run regenerates the numbers EXPERIMENTS.md records.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/linkgram"
	"repro/internal/ontology"
	"repro/internal/pos"
	"repro/internal/records"
	"repro/internal/store"
	"repro/internal/textproc"
)

func corpus(b *testing.B, diversity float64) []records.Record {
	b.Helper()
	opts := records.DefaultGenOptions()
	opts.StyleDiversity = diversity
	return records.Generate(opts)
}

// BenchmarkE1NumericExtraction regenerates the §5 numeric result: all
// eight attributes at 100% precision/recall on the canonical corpus.
func BenchmarkE1NumericExtraction(b *testing.B) {
	recs := corpus(b, 0)
	var res eval.E1Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = eval.RunE1(recs, core.LinkGrammar)
	}
	b.ReportMetric(100*res.Overall.Precision(), "precision_%")
	b.ReportMetric(100*res.Overall.Recall(), "recall_%")
}

// BenchmarkE2TermExtraction regenerates Table 1 (paper regime: synonym
// resolution off).
func BenchmarkE2TermExtraction(b *testing.B) {
	recs := corpus(b, 0)
	ont := ontology.MustNew(ontology.Options{})
	defer ont.Close()
	var res eval.E2Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = eval.RunE2(recs, ont, false)
	}
	b.ReportMetric(100*res.PreMedical.Precision(), "preMed_P_%")
	b.ReportMetric(100*res.PreMedical.Recall(), "preMed_R_%")
	b.ReportMetric(100*res.PreSurgical.Recall(), "preSurg_R_%")
	b.ReportMetric(100*res.OtherSurgical.Precision(), "otherSurg_P_%")
}

// BenchmarkE3SmokingCV regenerates the smoking cross-validation (92.2%
// in the paper).
func BenchmarkE3SmokingCV(b *testing.B) {
	recs := corpus(b, 0)
	var acc float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc = eval.RunE3(recs, 2005).Accuracy
	}
	b.ReportMetric(100*acc, "accuracy_%")
}

// BenchmarkF1LinkageDiagram parses and renders the Figure 1 sentence.
func BenchmarkF1LinkageDiagram(b *testing.B) {
	sent := textproc.SplitSentences("Blood pressure is 144/90, pulse of 84, temperature of 98.3, and weight of 154 pounds.")[0]
	for i := 0; i < b.N; i++ {
		lk, err := linkgram.ParseSentence(sent)
		if err != nil {
			b.Fatal(err)
		}
		if lk.Diagram() == "" {
			b.Fatal("empty diagram")
		}
	}
}

// BenchmarkA1Association compares association strategies on the diverse
// corpus; link grammar should lead on recall.
func BenchmarkA1Association(b *testing.B) {
	recs := corpus(b, 0.8)
	var res eval.A1Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = eval.RunA1(recs)
	}
	for _, row := range res.Rows {
		b.ReportMetric(100*row.Overall.Recall(), string(rune('0'+int(row.Strategy)))+"_"+row.Strategy.String()+"_R_%")
	}
}

// BenchmarkA2FeatureOptions sweeps the §3.3 ID3 options.
func BenchmarkA2FeatureOptions(b *testing.B) {
	recs := corpus(b, 0)
	var res eval.A2Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = eval.RunA2(recs, 2005)
	}
	b.ReportMetric(100*res.Rows[0].Accuracy, "paperConfig_%")
	b.ReportMetric(100*res.Rows[3].Accuracy, "verbsOnly_%")
}

// BenchmarkA3AlcoholNumeric measures the paper's proposed numeric
// Boolean features.
func BenchmarkA3AlcoholNumeric(b *testing.B) {
	recs := corpus(b, 0)
	var res eval.A3Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = eval.RunA3(recs, 2005)
	}
	b.ReportMetric(100*res.Plain, "wordsOnly_%")
	b.ReportMetric(100*res.Numeric, "withNumeric_%")
}

// BenchmarkA4OntologyCoverage sweeps ontology completeness.
func BenchmarkA4OntologyCoverage(b *testing.B) {
	recs := corpus(b, 0)
	var res eval.A4Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = eval.RunA4(recs, []float64{0.5, 1.0})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.Rows[0].Medical.Recall(), "cov50_medR_%")
	b.ReportMetric(100*res.Rows[1].Medical.Recall(), "cov100_medR_%")
}

// BenchmarkA5StyleDiversity sweeps writing-style diversity.
func BenchmarkA5StyleDiversity(b *testing.B) {
	var res eval.A5Result
	for i := 0; i < b.N; i++ {
		res = eval.RunA5([]float64{0, 0.8}, 50, 2005)
	}
	b.ReportMetric(100*res.Rows[0].NumericR, "div0_numR_%")
	b.ReportMetric(100*res.Rows[1].NumericR, "div80_numR_%")
}

// BenchmarkE4BinaryFields cross-validates the categorical fields the
// paper left unfinished.
func BenchmarkE4BinaryFields(b *testing.B) {
	recs := corpus(b, 0)
	var res eval.E4Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = eval.RunE4(recs, 2005, nil)
	}
	for _, row := range res.Rows {
		switch row.Attr {
		case "family breast cancer":
			b.ReportMetric(100*row.Accuracy, "familyBC_acc_%")
		case "drug use":
			b.ReportMetric(100*row.Accuracy, "drugUse_acc_%")
		}
	}
}

// BenchmarkA6SplitCriterion compares ID3 and Gini splits on the smoking
// task (paper claim: ID3 uses fewer features).
func BenchmarkA6SplitCriterion(b *testing.B) {
	recs := corpus(b, 0)
	var res eval.A6Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = eval.RunA6(recs, 2005)
	}
	b.ReportMetric(float64(res.ID3.MaxFeatures), "id3_maxFeat")
	b.ReportMetric(float64(res.Gini.MaxFeatures), "gini_maxFeat")
}

// BenchmarkA7NegationFilter measures the negation-filter extension.
func BenchmarkA7NegationFilter(b *testing.B) {
	recs := corpus(b, 0)
	ont := ontology.MustNew(ontology.Options{})
	defer ont.Close()
	var res eval.A7Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = eval.RunA7(recs, ont)
	}
	b.ReportMetric(100*res.Baseline.OtherMedical.Precision(), "baseline_P_%")
	b.ReportMetric(100*res.Filtered.OtherMedical.Precision(), "filtered_P_%")
}

// BenchmarkLinkParse measures raw (uncached) parser throughput on record
// sentences: every iteration tags and parses from scratch, exercising the
// pooled scratch and the process-wide disjunct cache.
func BenchmarkLinkParse(b *testing.B) {
	recs := corpus(b, 0)
	var sents []textproc.Sentence
	for _, r := range recs[:10] {
		secs := textproc.SplitSections(r.Text)
		if sec, ok := textproc.FindSection(secs, "Vitals"); ok {
			sents = append(sents, textproc.SplitSentences(sec.Body)...)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := linkgram.ParseSentence(sents[i%len(sents)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParseCached measures the Document-cached parse path the
// pipeline actually runs: after the first hit, ParseSection is a memo
// probe.
func BenchmarkParseCached(b *testing.B) {
	recs := corpus(b, 0)
	type sentRef struct {
		sec *textproc.DocSection
		i   int
	}
	var refs []sentRef
	for _, r := range recs[:10] {
		doc := textproc.Analyze(r.Text)
		if sec, ok := doc.Section("Vitals"); ok {
			for i := range sec.Sentences() {
				refs = append(refs, sentRef{sec: sec, i: i})
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ref := refs[i%len(refs)]
		if _, err := linkgram.ParseSection(ref.sec, ref.i); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTagSentence measures one POS tagging pass over a vitals
// sentence.
func BenchmarkTagSentence(b *testing.B) {
	sent := textproc.SplitSentences("Blood pressure is 144/90, pulse of 84, temperature of 98.3, and weight of 154 pounds.")[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tagged := pos.TagSentence(sent); len(tagged) == 0 {
			b.Fatal("empty tagging")
		}
	}
}

// ontologyProbeTerms are the shared probe set for the lookup benchmarks.
var ontologyProbeTerms = []string{"diabetes", "gallbladder removal", "high blood pressure", "not a concept"}

// BenchmarkOntologyLookup probes the in-memory norm map — the extraction
// hot path.
func BenchmarkOntologyLookup(b *testing.B) {
	ont := ontology.MustNew(ontology.Options{})
	defer ont.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ont.Lookup(ontologyProbeTerms[i%len(ontologyProbeTerms)])
	}
}

// BenchmarkOntologyLookupIndexed probes the B-tree secondary index (the
// persistence-layer baseline).
func BenchmarkOntologyLookupIndexed(b *testing.B) {
	ont := ontology.MustNew(ontology.Options{})
	defer ont.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ont.LookupIndexed(ontologyProbeTerms[i%len(ontologyProbeTerms)])
	}
}

// BenchmarkOntologyLookupScan is the linear-scan ablation baseline for
// the same probes.
func BenchmarkOntologyLookupScan(b *testing.B) {
	ont := ontology.MustNew(ontology.Options{})
	defer ont.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ont.LookupLinear(ontologyProbeTerms[i%len(ontologyProbeTerms)])
	}
}

// BenchmarkStoreInsert measures WAL-backed inserts.
func BenchmarkStoreInsert(b *testing.B) {
	db := store.OpenMemory()
	tbl, err := db.CreateTable(store.Schema{
		Name: "bench",
		Columns: []store.Column{
			{Name: "id", Type: store.TInt},
			{Name: "payload", Type: store.TString},
		},
		Primary: 0,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tbl.Insert(store.Row{store.Int(int64(i)), store.Str("extracted value")}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineProcess measures end-to-end per-record latency.
func BenchmarkPipelineProcess(b *testing.B) {
	recs := corpus(b, 0)
	sys, err := core.NewSystem(core.Config{Strategy: core.LinkGrammar, ResolveSynonyms: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Process(recs[i%len(recs)].Text)
	}
}

// seedProcess replicates the seed pipeline's per-extractor analysis:
// every extractor re-splits sections and re-tokenizes its text from
// scratch (numeric over the whole record, terms per history section,
// classifier over the record again), exactly as the pre-Document code
// did. It is the "before" side of the refactor benchmark.
func seedProcess(sys *core.System, recordText string) core.Extraction {
	ex := core.Extraction{Numeric: sys.Numeric.Extract(recordText)}
	secs := textproc.SplitSections(recordText)
	if sec, ok := textproc.FindSection(secs, "Past Medical History"); ok {
		ex.PreMedical, ex.OtherMedical = core.SplitTerms(sys.Terms.Extract(sec.Body, ontology.PredefinedMedical))
	}
	if sec, ok := textproc.FindSection(secs, "Past Surgical History"); ok {
		ex.PreSurgical, ex.OtherSurgical = core.SplitTerms(sys.Terms.Extract(sec.Body, ontology.PredefinedSurgical))
	}
	if sec, ok := textproc.FindSection(secs, "Medications"); ok {
		for _, t := range sys.Terms.Extract(sec.Body, nil) {
			if t.Concept.Type == ontology.Medication {
				ex.Medications = append(ex.Medications, t.Concept.Preferred)
			}
		}
	}
	if sys.Smoking != nil {
		ex.Smoking = sys.Smoking.Classify(recordText)
	}
	return ex
}

// seedPersist replicates the seed's persistence: CreateTable on every
// call and one WAL record per attribute row.
func seedPersist(db *store.DB, ex core.Extraction) (int, error) {
	tbl, err := db.CreateTable(store.Schema{
		Name: "extracted",
		Columns: []store.Column{
			{Name: "id", Type: store.TInt},
			{Name: "patient", Type: store.TInt},
			{Name: "attribute", Type: store.TString},
			{Name: "value", Type: store.TString},
			{Name: "numeric", Type: store.TFloat},
		},
		Primary: 0,
	})
	if err != nil {
		return 0, err
	}
	next := int64(tbl.Len()) + 1
	n := 0
	put := func(attr, val string, num float64) error {
		row := store.Row{
			store.Int(next), store.Int(int64(ex.Patient)),
			store.Str(attr), store.Str(val), store.Float(num),
		}
		if err := tbl.Insert(row); err != nil {
			return err
		}
		next++
		n++
		return nil
	}
	for attr, v := range ex.Numeric {
		val := fmt.Sprintf("%g", v.Value)
		if v.Ratio {
			val = fmt.Sprintf("%g/%g", v.Value, v.Value2)
		}
		if err := put(attr, val, v.Value); err != nil {
			return n, err
		}
	}
	for _, l := range []struct {
		attr  string
		terms []string
	}{
		{"predefined past medical history", ex.PreMedical},
		{"other past medical history", ex.OtherMedical},
		{"predefined past surgical history", ex.PreSurgical},
		{"other past surgical history", ex.OtherSurgical},
		{"medications", ex.Medications},
	} {
		for _, t := range l.terms {
			if err := put(l.attr, t, 0); err != nil {
				return n, err
			}
		}
	}
	if ex.Smoking != "" {
		if err := put("smoking", ex.Smoking, 0); err != nil {
			return n, err
		}
	}
	return n, nil
}

// BenchmarkCorpusPerRecordPersist is the baseline the Document/batch
// refactor replaces: per-extractor re-analysis (seedProcess) and
// seedPersist per record, logging row-at-a-time against a WAL-backed
// store.
func BenchmarkCorpusPerRecordPersist(b *testing.B) {
	recs := corpus(b, 0)
	sys, err := core.NewSystem(core.Config{Strategy: core.LinkGrammar, ResolveSynonyms: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		db, err := store.Open(b.TempDir() + "/per-record.db")
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for _, r := range recs {
			if _, err := seedPersist(db, seedProcess(sys, r.Text)); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		db.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(len(recs))*float64(b.N)/b.Elapsed().Seconds(), "recs/s")
}

// BenchmarkCorpusBatched is the refactored path: one-pass analyzed
// documents streamed through a worker pool, with batched persistence.
func BenchmarkCorpusBatched(b *testing.B) {
	recs := corpus(b, 0)
	sys, err := core.NewSystem(core.Config{Strategy: core.LinkGrammar, ResolveSynonyms: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		db, err := store.Open(b.TempDir() + "/batched.db")
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := core.PersistAll(db, sys.ProcessAll(recs, 0)); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		db.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(len(recs))*float64(b.N)/b.Elapsed().Seconds(), "recs/s")
}
