package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// An immutable sorted segment holds one table's rows in ascending
// primary-key order, written once by compaction and then only read.
// Rows live in fixed-size blocks; a sparse block index in the footer
// carries each block's offset, length, CRC and min/max primary key
// (the zone map), so point reads binary-search the index and range
// scans skip blocks whose key zone misses the bounds entirely.
//
// File layout:
//
//	"MEDSEG1\n"                               8-byte header magic
//	block*                                    encoded rows, back to back
//	index: per block {offset, len, rows, crc, minKey, maxKey}
//	schema: opCreateTable payload (self-describing)
//	filter: bloom region (see bloom.go), self-CRC'd  [format 2 only]
//	uint32 indexLen | uint32 schemaLen
//	[uint32 filterLen]                        format 2 only
//	uint32 CRC32(index+schema) | magic        fixed tail
//
// Two tail formats coexist. "MEDSEGF1" is the original 20-byte tail
// with no filter region — every pre-bloom segment on disk. "MEDSEGF2"
// is the 24-byte tail that adds filterLen and places the bloom region
// between the schema and the tail. The loader dispatches on the magic,
// so old segments stay readable forever and a new segment is simply an
// old segment plus an optional, independently-checksummed filter: the
// tail CRC still covers exactly index+schema, and a corrupt filter
// region degrades to filter-absent reads instead of failing the open.
//
// Rows inside a block use the WAL row codec (encodeRow/decodeValues);
// keys are re-derived from the schema's primary column, so nothing is
// stored twice. The footer schema makes a segment self-describing: a
// shard whose WAL lost its create-table record to a crash can rebuild
// the table from the segment alone.
const (
	segMagic      = "MEDSEG1\n"
	segTailMagic  = "MEDSEGF1"
	segTailMagic2 = "MEDSEGF2"
	segTailLen    = 8 + 4 + 4 + 4     // lens + crc + magic
	segTail2Len   = 8 + 4 + 4 + 4 + 4 // lens + filterLen + crc + magic

	// segmentBlockRows is the target rows per block: small enough that
	// a point read decodes little, large enough that the sparse index
	// stays tiny (one entry per block).
	segmentBlockRows = 256

	// segMaxBlockLen bounds a single block (and the index/schema
	// regions) against corrupt length fields pre-allocating gigabytes.
	segMaxBlockLen = 1 << 26
)

// segBlock is one block-index entry: the zone map and location of a
// row block.
type segBlock struct {
	off    int64
	length int
	rows   int
	crc    uint32
	minKey []byte
	maxKey []byte
}

// segIDs hands out process-unique segment ids for block-cache keys; ids
// are never reused, so a replacement segment can never alias cached
// blocks of the run it superseded.
var segIDs atomic.Uint64

// segment is an open, immutable, sorted row file. Reads go through
// ReadAt and are safe for any number of concurrent readers. The
// refcount keeps the file open (and, once obsoleted by a newer
// compaction, on disk) while snapshots still iterate it.
type segment struct {
	path   string
	f      *os.File
	schema Schema
	blocks []segBlock
	nRows  int
	minKey []byte // zone map over the whole file
	maxKey []byte

	id     uint64       // process-unique cache key prefix
	filter *bloomFilter // nil: no filter persisted, or filter region corrupt
	cache  *blockCache  // shared decoded-block cache; nil disables caching

	refs     atomic.Int32 // owner (shard) + pinning snapshots
	obsolete atomic.Bool  // superseded by a newer compaction: remove on last unref
}

// ref pins the segment for a snapshot.
func (sg *segment) ref() { sg.refs.Add(1) }

// unref drops one pin; the last unref closes the file, releases the
// segment's cached blocks and, if the segment was obsoleted by a newer
// compaction, removes it from disk.
func (sg *segment) unref() {
	if sg.refs.Add(-1) != 0 {
		return
	}
	if sg.f != nil {
		sg.f.Close()
		sg.f = nil
	}
	if sg.cache != nil {
		sg.cache.dropSegment(sg.id)
	}
	if sg.obsolete.Load() {
		os.Remove(sg.path)
	}
}

// markObsolete flags the segment for removal on last unref.
func (sg *segment) markObsolete() { sg.obsolete.Store(true) }

// openSegment opens and validates a segment file. Any malformed input
// is rejected with ErrCorrupt (wrapped with the path); the descriptor
// never leaks on an error path.
func openSegment(path string) (*segment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	sg, err := loadSegment(path, f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: segment %s: %w", filepath.Base(path), err)
	}
	return sg, nil
}

// loadSegment parses the footer and block index from an open file. The
// trailing 8-byte magic selects the tail format; the optional format-2
// bloom filter is decoded best-effort (it carries its own CRC), so a
// corrupt filter region costs the filter, never the segment.
func loadSegment(path string, f *os.File) (*segment, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < int64(len(segMagic))+segTailLen {
		return nil, ErrCorrupt
	}
	var head [len(segMagic)]byte
	if _, err := f.ReadAt(head[:], 0); err != nil {
		return nil, err
	}
	if string(head[:]) != segMagic {
		return nil, ErrCorrupt
	}
	var magic [8]byte
	if _, err := f.ReadAt(magic[:], size-8); err != nil {
		return nil, err
	}
	tailLen := int64(segTailLen)
	if string(magic[:]) == segTailMagic2 {
		tailLen = segTail2Len
	} else if string(magic[:]) != segTailMagic {
		return nil, ErrCorrupt
	}
	if size < int64(len(segMagic))+tailLen {
		return nil, ErrCorrupt
	}
	tail := make([]byte, tailLen)
	if _, err := f.ReadAt(tail, size-tailLen); err != nil {
		return nil, err
	}
	indexLen := int64(binary.BigEndian.Uint32(tail[0:4]))
	schemaLen := int64(binary.BigEndian.Uint32(tail[4:8]))
	var filterLen int64
	crcOff := 8
	if tailLen == segTail2Len {
		filterLen = int64(binary.BigEndian.Uint32(tail[8:12]))
		crcOff = 12
	}
	wantCRC := binary.BigEndian.Uint32(tail[crcOff : crcOff+4])
	if indexLen > segMaxBlockLen || schemaLen > segMaxBlockLen || filterLen > segMaxBlockLen {
		return nil, ErrCorrupt
	}
	metaOff := size - tailLen - filterLen - indexLen - schemaLen
	if metaOff < int64(len(segMagic)) {
		return nil, ErrCorrupt
	}
	meta := make([]byte, indexLen+schemaLen)
	if _, err := f.ReadAt(meta, metaOff); err != nil {
		return nil, err
	}
	if crc32.ChecksumIEEE(meta) != wantCRC {
		return nil, ErrCorrupt
	}
	schema, err := decodeSchemaPayload(meta[indexLen:])
	if err != nil {
		return nil, err
	}
	blocks, nRows, err := decodeSegIndex(meta[:indexLen], metaOff)
	if err != nil {
		return nil, err
	}
	sg := &segment{path: path, f: f, schema: schema, blocks: blocks, nRows: nRows}
	sg.id = segIDs.Add(1)
	if filterLen > 0 {
		fbuf := make([]byte, filterLen)
		if _, err := f.ReadAt(fbuf, metaOff+indexLen+schemaLen); err == nil {
			sg.filter = decodeBloom(fbuf) // nil on any deviation: degrade
		}
	}
	if len(blocks) > 0 {
		sg.minKey = blocks[0].minKey
		sg.maxKey = blocks[len(blocks)-1].maxKey
	}
	sg.refs.Store(1)
	return sg, nil
}

// decodeSegIndex parses the block-index region. Blocks must be
// contiguous from the header, non-overlapping, in ascending key order,
// and end exactly where the metadata begins — anything else is
// corruption.
func decodeSegIndex(buf []byte, metaOff int64) ([]segBlock, int, error) {
	var blocks []segBlock
	nRows := 0
	next := int64(len(segMagic))
	var prevMax []byte
	for len(buf) > 0 {
		var b segBlock
		length, k := binary.Uvarint(buf)
		if k <= 0 || length == 0 || length > segMaxBlockLen {
			return nil, 0, ErrCorrupt
		}
		buf = buf[k:]
		rows, k := binary.Uvarint(buf)
		if k <= 0 || rows == 0 || rows > length {
			return nil, 0, ErrCorrupt
		}
		buf = buf[k:]
		if len(buf) < 4 {
			return nil, 0, ErrCorrupt
		}
		b.crc = binary.BigEndian.Uint32(buf[:4])
		buf = buf[4:]
		var err error
		var minS, maxS string
		minS, buf, err = readString(buf)
		if err != nil {
			return nil, 0, err
		}
		maxS, buf, err = readString(buf)
		if err != nil {
			return nil, 0, err
		}
		b.off = next
		b.length = int(length)
		b.rows = int(rows)
		b.minKey = []byte(minS)
		b.maxKey = []byte(maxS)
		if bytes.Compare(b.minKey, b.maxKey) > 0 {
			return nil, 0, ErrCorrupt
		}
		if prevMax != nil && bytes.Compare(prevMax, b.minKey) >= 0 {
			return nil, 0, ErrCorrupt
		}
		prevMax = b.maxKey
		next += int64(length)
		if next > metaOff {
			return nil, 0, ErrCorrupt
		}
		nRows += b.rows
		blocks = append(blocks, b)
	}
	if next != metaOff {
		return nil, 0, ErrCorrupt
	}
	return blocks, nRows, nil
}

// segReadBufPool recycles readBlockDisk's raw read buffer. Safe to
// return to the pool immediately after decoding because decodeValues
// copies string payloads out of the buffer — decoded rows never alias
// it.
var segReadBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 8192); return &b }}

// readBlock returns one block's decoded rows and encoded primary keys,
// consulting the shared cache first. A hit serves the immutable decoded
// slices straight from memory; a miss pays disk + CRC + decode and
// populates the cache for every future reader of this segment.
func (sg *segment) readBlock(bi int, rs *readStats) ([]Row, [][]byte, error) {
	if sg.cache != nil {
		k := blockKey{seg: sg.id, bi: bi}
		if rows, keys, ok := sg.cache.get(k); ok {
			if rs != nil {
				rs.cacheHits++
			}
			return rows, keys, nil
		}
		if rs != nil {
			rs.cacheMisses++
		}
		rows, keys, err := sg.readBlockDisk(bi)
		if err != nil {
			return nil, nil, err
		}
		sg.cache.put(k, rows, keys, blockFootprint(sg.blocks[bi].length, len(rows)))
		return rows, keys, nil
	}
	return sg.readBlockDisk(bi)
}

// readBlockDisk fetches and decodes one block's rows, verifying the
// CRC. It returns the rows and their encoded primary keys in ascending
// order.
func (sg *segment) readBlockDisk(bi int) ([]Row, [][]byte, error) {
	b := sg.blocks[bi]
	bp := segReadBufPool.Get().(*[]byte)
	defer segReadBufPool.Put(bp)
	if cap(*bp) < b.length {
		*bp = make([]byte, b.length)
	}
	full := (*bp)[:b.length]
	if _, err := sg.f.ReadAt(full, b.off); err != nil {
		return nil, nil, err
	}
	if crc32.ChecksumIEEE(full) != b.crc {
		return nil, nil, fmt.Errorf("store: segment %s block %d: %w", filepath.Base(sg.path), bi, ErrCorrupt)
	}
	ncols := len(sg.schema.Columns)
	rows := make([]Row, 0, b.rows)
	keys := make([][]byte, 0, b.rows)
	var prev []byte
	buf := full
	for i := 0; i < b.rows; i++ {
		var row Row
		var err error
		row, buf, err = decodeValues(buf, ncols)
		if err != nil {
			return nil, nil, err
		}
		if err := sg.schema.validate(row); err != nil {
			return nil, nil, err
		}
		key := encodeKey(row[sg.schema.Primary])
		if prev != nil && bytes.Compare(prev, key) >= 0 {
			return nil, nil, ErrCorrupt // rows must be strictly ascending
		}
		prev = key
		rows = append(rows, row)
		keys = append(keys, key)
	}
	if len(buf) != 0 {
		return nil, nil, ErrCorrupt
	}
	return rows, keys, nil
}

// noteBloomSkip records a probe the bloom filter answered without IO.
func (sg *segment) noteBloomSkip(rs *readStats) {
	if rs != nil {
		rs.bloomSkips++
	}
	if sg.cache != nil {
		sg.cache.bloomSkips.Add(1)
	}
}

// get returns the row with the given primary key, using the zone maps
// and the bloom filter to reject misses without touching the file.
func (sg *segment) get(key []byte, rs *readStats) (Row, bool, error) {
	if len(sg.blocks) == 0 || bytes.Compare(key, sg.minKey) < 0 || bytes.Compare(key, sg.maxKey) > 0 {
		return nil, false, nil
	}
	if sg.filter != nil {
		if h1, h2 := bloomHash(key); !sg.filter.mayContain(h1, h2) {
			sg.noteBloomSkip(rs)
			return nil, false, nil
		}
	}
	// First block whose maxKey >= key.
	lo, hi := 0, len(sg.blocks)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(sg.blocks[mid].maxKey, key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(sg.blocks) || bytes.Compare(sg.blocks[lo].minKey, key) > 0 {
		return nil, false, nil
	}
	rows, keys, err := sg.readBlock(lo, rs)
	if err != nil {
		return nil, false, err
	}
	i, found := searchKeys(keys, key)
	if !found {
		return nil, false, nil
	}
	return rows[i], true, nil
}

// getBatch resolves many primary keys against this segment in one
// index walk. entries holds the posting list (pk-ascending); missing
// holds the positions still unresolved. Each position either fills
// out[pos] or survives into the returned remainder for an older
// segment. Because both the pks and the block index are sorted, the
// walk advances a single block cursor and decodes each touched block
// exactly once — the whole point of batching.
func (sg *segment) getBatch(entries []postingEntry, missing []int, out []Row, rs *readStats) ([]int, error) {
	if len(sg.blocks) == 0 || len(missing) == 0 {
		return missing, nil
	}
	rest := missing[:0]
	bi := 0                    // first candidate block (monotone: pks ascend)
	var rows []Row             // currently decoded block
	var keys [][]byte
	loaded := -1
	for _, pos := range missing {
		pk := entries[pos].pk
		if cmpKeyStr(sg.minKey, pk) > 0 || cmpKeyStr(sg.maxKey, pk) < 0 {
			rest = append(rest, pos)
			continue
		}
		if sg.filter != nil {
			if h1, h2 := bloomHashString(pk); !sg.filter.mayContain(h1, h2) {
				sg.noteBloomSkip(rs)
				rest = append(rest, pos)
				continue
			}
		}
		// Advance to the first block whose maxKey >= pk.
		for bi < len(sg.blocks) && cmpKeyStr(sg.blocks[bi].maxKey, pk) < 0 {
			bi++
		}
		if bi == len(sg.blocks) || cmpKeyStr(sg.blocks[bi].minKey, pk) > 0 {
			rest = append(rest, pos)
			continue
		}
		if loaded != bi {
			var err error
			rows, keys, err = sg.readBlock(bi, rs)
			if err != nil {
				return nil, err
			}
			loaded = bi
		}
		if i, found := searchKeysStr(keys, pk); found {
			out[pos] = rows[i]
		} else {
			rest = append(rest, pos)
		}
	}
	return rest, nil
}

// searchKeys returns the position of key in sorted keys and whether it
// is present.
func searchKeys(keys [][]byte, key []byte) (int, bool) {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(keys[mid], key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(keys) && bytes.Equal(keys[lo], key)
}

// cmpKeyStr is bytes.Compare between an encoded key and a posting pk
// held as a string — a manual loop so the batch resolve path never
// converts (and so never allocates).
func cmpKeyStr(a []byte, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// searchKeysStr is searchKeys against a string pk.
func searchKeysStr(keys [][]byte, key string) (int, bool) {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if cmpKeyStr(keys[mid], key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(keys) && cmpKeyStr(keys[lo], key) == 0
}

// segIter streams a segment's rows in ascending key order, bounded to
// [lo, hi) when the bounds are non-nil. Blocks whose zone map misses
// the bounds are never read; pruned counts them for QueryStats.
type segIter struct {
	seg    *segment
	hi     []byte
	bi     int // next block to read
	rows   []Row
	keys   [][]byte
	ri     int
	pruned int
	stats  *readStats // cache hit/miss accounting for loaded blocks
	err    error
}

// newSegIter positions an iterator at the first row >= lo, counting
// the blocks the zone map let it skip.
func newSegIter(sg *segment, lo, hi []byte, stats *readStats) *segIter {
	it := &segIter{seg: sg, hi: hi, stats: stats}
	// First block that can contain a key >= lo.
	start := 0
	if lo != nil {
		l, h := 0, len(sg.blocks)
		for l < h {
			mid := (l + h) / 2
			if bytes.Compare(sg.blocks[mid].maxKey, lo) < 0 {
				l = mid + 1
			} else {
				h = mid
			}
		}
		start = l
	}
	it.pruned += start
	it.bi = start
	// Blocks past hi are pruned too; account for them up front so the
	// stats reflect the whole zone-map saving even if iteration stops
	// early.
	if hi != nil {
		end := len(sg.blocks)
		for end > start && bytes.Compare(sg.blocks[end-1].minKey, hi) >= 0 {
			end--
		}
		it.pruned += len(sg.blocks) - end
	}
	it.loadBlock(lo)
	return it
}

// loadBlock reads block it.bi and positions ri at the first key >= lo
// (or 0 when lo is nil).
func (it *segIter) loadBlock(lo []byte) {
	for {
		if it.bi >= len(it.seg.blocks) {
			it.rows, it.keys = nil, nil
			return
		}
		if it.hi != nil && bytes.Compare(it.seg.blocks[it.bi].minKey, it.hi) >= 0 {
			it.rows, it.keys = nil, nil
			return
		}
		rows, keys, err := it.seg.readBlock(it.bi, it.stats)
		if err != nil {
			it.err = err
			it.rows, it.keys = nil, nil
			return
		}
		it.bi++
		ri := 0
		if lo != nil {
			ri, _ = searchKeys(keys, lo)
		}
		if ri < len(keys) {
			it.rows, it.keys, it.ri = rows, keys, ri
			return
		}
		lo = nil // the bound was past this block; the next starts fresh
	}
}

// valid reports whether the iterator currently points at a row.
func (it *segIter) valid() bool {
	return it.err == nil && it.ri < len(it.keys) &&
		(it.hi == nil || bytes.Compare(it.keys[it.ri], it.hi) < 0)
}

// key and row return the current position (valid() must hold).
func (it *segIter) key() []byte { return it.keys[it.ri] }
func (it *segIter) row() Row    { return it.rows[it.ri] }

// next advances to the following row.
func (it *segIter) next() {
	it.ri++
	if it.ri >= len(it.keys) {
		it.loadBlock(nil)
	}
}

// segmentWriter streams pk-ascending rows into a new segment file.
type segmentWriter struct {
	f      *os.File
	path   string
	schema Schema
	buf    []byte // current block
	rows   int
	minKey []byte
	maxKey []byte
	off    int64
	index  []byte
	nRows  int
	prev   []byte
	blocks int
	bloom  bloomBuilder // filter over every added key
}

// newSegmentWriter creates path (truncating any stale leftover) and
// writes the header.
func newSegmentWriter(path string, schema Schema) (*segmentWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	return &segmentWriter{f: f, path: path, schema: schema, off: int64(len(segMagic))}, nil
}

// add appends one row; rows must arrive in strictly ascending primary-
// key order.
func (w *segmentWriter) add(row Row) error {
	key := encodeKey(row[w.schema.Primary])
	if w.prev != nil && bytes.Compare(w.prev, key) >= 0 {
		return fmt.Errorf("store: segment writer: rows out of order")
	}
	w.prev = key
	w.bloom.add(key)
	if w.rows == 0 {
		w.minKey = key
	}
	w.maxKey = key
	w.buf = encodeRow(w.buf, row)
	w.rows++
	w.nRows++
	if w.rows >= segmentBlockRows {
		return w.flushBlock()
	}
	return nil
}

// flushBlock writes the pending block and appends its index entry.
func (w *segmentWriter) flushBlock() error {
	if w.rows == 0 {
		return nil
	}
	if _, err := w.f.Write(w.buf); err != nil {
		return err
	}
	w.index = binary.AppendUvarint(w.index, uint64(len(w.buf)))
	w.index = binary.AppendUvarint(w.index, uint64(w.rows))
	w.index = binary.BigEndian.AppendUint32(w.index, crc32.ChecksumIEEE(w.buf))
	w.index = appendString(w.index, string(w.minKey))
	w.index = appendString(w.index, string(w.maxKey))
	w.off += int64(len(w.buf))
	w.buf = w.buf[:0]
	w.rows = 0
	w.blocks++
	return nil
}

// testHookSegmentFinish, when non-nil, injects an error into finish
// just before the footer write — compaction's finish-failure cleanup
// is exercised without needing a full disk.
var testHookSegmentFinish func(path string) error

// finish flushes the last block, writes the footer and fsyncs. On any
// error the partial file is removed and the descriptor closed.
func (w *segmentWriter) finish() (err error) {
	defer func() {
		if err != nil {
			w.f.Close()
			os.Remove(w.path)
		}
	}()
	if err = w.flushBlock(); err != nil {
		return err
	}
	if testHookSegmentFinish != nil {
		if err = testHookSegmentFinish(w.path); err != nil {
			return err
		}
	}
	schemaBytes := encodeCreateTablePayload(w.schema)
	meta := append(append([]byte(nil), w.index...), schemaBytes...)
	if _, err = w.f.Write(meta); err != nil {
		return err
	}
	var filterBytes []byte
	if bf := w.bloom.build(); bf != nil {
		filterBytes = bf.encode()
		if _, err = w.f.Write(filterBytes); err != nil {
			return err
		}
	}
	var tail [segTail2Len]byte
	binary.BigEndian.PutUint32(tail[0:4], uint32(len(w.index)))
	binary.BigEndian.PutUint32(tail[4:8], uint32(len(schemaBytes)))
	binary.BigEndian.PutUint32(tail[8:12], uint32(len(filterBytes)))
	binary.BigEndian.PutUint32(tail[12:16], crc32.ChecksumIEEE(meta))
	copy(tail[16:24], segTailMagic2)
	if _, err = w.f.Write(tail[:]); err != nil {
		return err
	}
	if err = w.f.Sync(); err != nil {
		return err
	}
	return w.f.Close()
}

// decodeSchemaPayload parses an opCreateTable payload (shared by WAL
// replay and the segment footer) into a validated Schema.
func decodeSchemaPayload(payload []byte) (Schema, error) {
	if len(payload) == 0 || payload[0] != opCreateTable {
		return Schema{}, ErrCorrupt
	}
	rest := payload[1:]
	name, rest, err := readString(rest)
	if err != nil {
		return Schema{}, err
	}
	if len(rest) < 2 {
		return Schema{}, ErrCorrupt
	}
	ncols, primary := int(rest[0]), int(rest[1])
	rest = rest[2:]
	s := Schema{Name: name, Primary: primary}
	for i := 0; i < ncols; i++ {
		var cname string
		cname, rest, err = readString(rest)
		if err != nil {
			return Schema{}, err
		}
		if len(rest) < 1 {
			return Schema{}, ErrCorrupt
		}
		s.Columns = append(s.Columns, Column{Name: cname, Type: ColType(rest[0])})
		rest = rest[1:]
	}
	if len(rest) != 0 {
		return Schema{}, ErrCorrupt
	}
	if len(s.Columns) == 0 || s.Primary < 0 || s.Primary >= len(s.Columns) {
		return Schema{}, ErrCorrupt
	}
	for _, c := range s.Columns {
		if c.Type < TInt || c.Type > TBool {
			return Schema{}, ErrCorrupt
		}
	}
	return s, nil
}
