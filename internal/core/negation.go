package core

import (
	"strings"

	"repro/internal/textproc"
)

// The paper's system has no negation handling, so "No history of stroke"
// yields a false-positive stroke. This file implements the obvious
// extension — a NegEx-style trigger scope filter — so its effect on
// Table 1 precision can be measured (ablation A7). It is off by default
// to stay faithful to the evaluated system.

// negationTriggers open a negation scope that runs to the end of the
// sentence (clinical dictation rarely closes scopes mid-sentence).
var negationTriggers = [][]string{
	{"no"},
	{"not"},
	{"denies"},
	{"denied"},
	{"without"},
	{"negative", "for"},
	{"free", "of"},
	{"rule", "out"},
	{"no", "history", "of"},
	{"no", "evidence", "of"},
	{"never"},
}

// negatedSpans returns, per sentence, the token index from which content
// is negated (math.MaxInt-like sentinel when none).
func negationStart(sent textproc.Sentence) int {
	toks := sent.Tokens
	for i := range toks {
		if toks[i].Kind != textproc.Word {
			continue
		}
		// Longest trigger match at this position wins, so "no history
		// of" opens its scope after "of", not after "no".
		best := 0
		for _, trig := range negationTriggers {
			if len(trig) <= best || i+len(trig) > len(toks) {
				continue
			}
			match := true
			for j, w := range trig {
				if toks[i+j].Kind != textproc.Word || !strings.EqualFold(toks[i+j].Text, w) {
					match = false
					break
				}
			}
			if match {
				best = len(trig)
			}
		}
		if best > 0 {
			return i + best
		}
	}
	return 1 << 30
}

// IsNegated reports whether the span [start,end) of the sentence's
// tokens falls inside a negation scope.
func IsNegated(sent textproc.Sentence, start int) bool {
	return start >= negationStart(sent)
}
