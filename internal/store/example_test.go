package store_test

import (
	"fmt"

	"repro/internal/store"
)

// Create a table, insert rows, and look them up through a secondary
// index — the ontology's access pattern.
func Example() {
	db := store.OpenMemory()
	tbl, err := db.CreateTable(store.Schema{
		Name: "terms",
		Columns: []store.Column{
			{Name: "id", Type: store.TInt},
			{Name: "norm", Type: store.TString},
			{Name: "cui", Type: store.TString},
		},
		Primary: 0,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	tbl.Insert(store.Row{store.Int(1), store.Str("blood high pressure"), store.Str("C0003")})
	tbl.Insert(store.Row{store.Int(2), store.Str("htn"), store.Str("C0003")})
	tbl.CreateIndex("norm")

	rows, _ := tbl.Lookup("norm", store.Str("htn"))
	fmt.Println(rows[0][2].S)
	// Output: C0003
}
