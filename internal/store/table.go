package store

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Column describes one table column.
type Column struct {
	Name string
	Type ColType
}

// Schema describes a table: its columns and the primary-key column index.
type Schema struct {
	Name    string
	Columns []Column
	Primary int // index into Columns of the primary key
}

// colIndex returns the index of the named column, or -1.
func (s *Schema) colIndex(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// validate checks a row against the schema.
func (s *Schema) validate(row Row) error {
	if len(row) != len(s.Columns) {
		return fmt.Errorf("store: table %s: row has %d values, schema has %d columns", s.Name, len(row), len(s.Columns))
	}
	for i, v := range row {
		if v.Type != s.Columns[i].Type {
			return fmt.Errorf("%w: column %s is %s, got %s", ErrTypeMism, s.Columns[i].Name, s.Columns[i].Type, v.Type)
		}
	}
	return nil
}

// Table is an in-memory table backed by the DB's write-ahead log.
//
// Tables are safe for concurrent use: mutations hold the write lock,
// reads (Get, Lookup, Scan, Query, …) the read lock, so any number of
// readers overlap each other and serialize only against writers.
type Table struct {
	schema    Schema
	db        *DB
	mu        sync.RWMutex
	primary   *btree            // pk key bytes → Row
	secondary map[string]*btree // column name → key bytes → map[string]Row (pk-encoded → row)
}

// Errors returned by table operations.
var (
	ErrDuplicate = errors.New("store: duplicate primary key")
	ErrNotFound  = errors.New("store: not found")
	ErrNoIndex   = errors.New("store: no index on column")
	ErrPKChange  = errors.New("store: update may not change the primary key")
)

// Schema returns a copy of the table's schema.
func (t *Table) Schema() Schema { return t.schema }

// Len returns the number of rows.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.primary.Len()
}

// Insert adds a row. The primary key must be unique.
func (t *Table) Insert(row Row) error {
	if err := t.schema.validate(row); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.insertLocked(row)
}

func (t *Table) insertLocked(row Row) error {
	key := encodeKey(row[t.schema.Primary])
	if _, exists := t.primary.Get(key); exists {
		return fmt.Errorf("%w: %s", ErrDuplicate, row[t.schema.Primary])
	}
	if err := t.db.logInsert(t.schema.Name, row); err != nil {
		return err
	}
	t.apply(key, row)
	return nil
}

// InsertBatch adds many rows with a single write-ahead-log record. The
// whole batch is validated (schema and primary-key uniqueness, including
// against other rows of the same batch) before anything is logged or
// applied, so the batch is all-or-nothing: on error the table is
// unchanged, and on crash recovery a torn batch record is dropped
// atomically by the WAL's CRC framing.
func (t *Table) InsertBatch(rows []Row) error {
	if len(rows) == 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	keys := make([][]byte, len(rows))
	inBatch := make(map[string]bool, len(rows))
	for i, row := range rows {
		if err := t.schema.validate(row); err != nil {
			return err
		}
		key := encodeKey(row[t.schema.Primary])
		if _, exists := t.primary.Get(key); exists || inBatch[string(key)] {
			return fmt.Errorf("%w: %s", ErrDuplicate, row[t.schema.Primary])
		}
		inBatch[string(key)] = true
		keys[i] = key
	}
	if err := t.db.logInsertBatch(t.schema.Name, rows); err != nil {
		return err
	}
	for i, row := range rows {
		t.apply(keys[i], row)
	}
	return nil
}

// replayInsert applies one row during WAL replay. A duplicate primary
// key replaces the existing row (and its index postings) so that replay
// of any log prefix leaves indexes exactly consistent with the table.
func (t *Table) replayInsert(row Row) {
	key := encodeKey(row[t.schema.Primary])
	if old, ok := t.primary.Get(key); ok {
		t.applyDelete(key, old.(Row))
	}
	t.apply(key, row)
}

// apply performs the in-memory insert (used by Insert and WAL replay).
func (t *Table) apply(key []byte, row Row) {
	t.primary.Put(key, row)
	for col, idx := range t.secondary {
		ci := t.schema.colIndex(col)
		sk := encodeKey(row[ci])
		t.indexAdd(idx, sk, key, row)
	}
}

// Get returns the row with the given primary key.
func (t *Table) Get(pk Value) (Row, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	v, ok := t.primary.Get(encodeKey(pk))
	if !ok {
		return nil, ErrNotFound
	}
	return v.(Row), nil
}

// Delete removes the row with the given primary key.
func (t *Table) Delete(pk Value) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	key := encodeKey(pk)
	v, ok := t.primary.Get(key)
	if !ok {
		return ErrNotFound
	}
	if err := t.db.logDelete(t.schema.Name, pk); err != nil {
		return err
	}
	t.applyDelete(key, v.(Row))
	return nil
}

func (t *Table) applyDelete(key []byte, row Row) {
	t.primary.Delete(key)
	for col, idx := range t.secondary {
		ci := t.schema.colIndex(col)
		sk := encodeKey(row[ci])
		t.indexRemove(idx, sk, key)
	}
}

// CreateIndex builds a non-unique secondary index on the named column.
// The index is durable: a WAL record re-creates it on replay, and Compact
// carries it into the rewritten log, so once built it exists after every
// reopen and is maintained transactionally by Insert/InsertBatch/Update/
// Delete alongside the rows. Creating an existing index is a no-op.
func (t *Table) CreateIndex(col string) error {
	if t.schema.colIndex(col) < 0 {
		return fmt.Errorf("store: table %s has no column %s", t.schema.Name, col)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.secondary[col]; ok {
		return nil
	}
	if err := t.db.logCreateIndex(t.schema.Name, col); err != nil {
		return err
	}
	t.createIndexLocked(col)
	return nil
}

// createIndexLocked builds the index from the current rows. Callers hold
// the write lock (or are single-threaded WAL replay).
func (t *Table) createIndexLocked(col string) {
	if _, ok := t.secondary[col]; ok {
		return
	}
	idx := newBtree()
	ci := t.schema.colIndex(col)
	t.primary.Ascend(func(key []byte, val interface{}) bool {
		row := val.(Row)
		t.indexAdd(idx, encodeKey(row[ci]), key, row)
		return true
	})
	t.secondary[col] = idx
}

// postingList is the value type of secondary index entries: the rows
// sharing one indexed value, kept sorted by primary-key bytes so reads
// stream them in deterministic order without sorting.
type postingEntry struct {
	pk  string // encoded primary key
	row Row
}

type postingList struct {
	entries []postingEntry // ascending pk
}

// find returns the insertion position of pk and whether it is present.
func (pl *postingList) find(pk string) (int, bool) {
	i := sort.Search(len(pl.entries), func(i int) bool { return pl.entries[i].pk >= pk })
	return i, i < len(pl.entries) && pl.entries[i].pk == pk
}

// appendRows appends the posting rows (already pk-sorted) to out.
func (pl *postingList) appendRows(out []Row) []Row {
	for _, e := range pl.entries {
		out = append(out, e.row)
	}
	return out
}

func (t *Table) indexAdd(idx *btree, sk, pk []byte, row Row) {
	v, ok := idx.Get(sk)
	if !ok {
		idx.Put(sk, &postingList{entries: []postingEntry{{pk: string(pk), row: row}}})
		return
	}
	pl := v.(*postingList)
	i, found := pl.find(string(pk))
	if found {
		pl.entries[i].row = row
		return
	}
	pl.entries = append(pl.entries, postingEntry{})
	copy(pl.entries[i+1:], pl.entries[i:])
	pl.entries[i] = postingEntry{pk: string(pk), row: row}
}

func (t *Table) indexRemove(idx *btree, sk, pk []byte) {
	if v, ok := idx.Get(sk); ok {
		pl := v.(*postingList)
		if i, found := pl.find(string(pk)); found {
			pl.entries = append(pl.entries[:i], pl.entries[i+1:]...)
		}
		if len(pl.entries) == 0 {
			idx.Delete(sk)
		}
	}
}

// Lookup returns all rows whose indexed column equals v in ascending
// primary-key order, using the secondary index on col. The column must
// have an index.
func (t *Table) Lookup(col string, v Value) ([]Row, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	idx, ok := t.secondary[col]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoIndex, col)
	}
	pv, ok := idx.Get(encodeKey(v))
	if !ok {
		return nil, nil
	}
	pl := pv.(*postingList)
	return pl.appendRows(make([]Row, 0, len(pl.entries))), nil
}

// Scan calls fn for every row in ascending primary-key order until fn
// returns false. It is the linear-scan baseline for the index ablation.
// fn runs under the table's read lock and must not mutate the table.
func (t *Table) Scan(fn func(Row) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.primary.Ascend(func(_ []byte, val interface{}) bool {
		return fn(val.(Row))
	})
}

// ScanRange calls fn for rows with primary key in [lo, hi). fn runs under
// the table's read lock and must not mutate the table.
func (t *Table) ScanRange(lo, hi Value, fn func(Row) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.primary.AscendRange(encodeKey(lo), encodeKey(hi), func(_ []byte, val interface{}) bool {
		return fn(val.(Row))
	})
}

// Select returns all rows matching a predicate, by full scan.
func (t *Table) Select(pred func(Row) bool) []Row {
	var out []Row
	t.Scan(func(r Row) bool {
		if pred(r) {
			out = append(out, r)
		}
		return true
	})
	return out
}

// sortKeys sorts byte-encoded keys; Go string order is byte order, so
// this matches bytes.Compare on the underlying encodings.
func sortKeys(ks []string) { sort.Strings(ks) }
