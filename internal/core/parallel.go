package core

import (
	"context"
	"iter"
	"runtime"
	"slices"
	"sync"

	"repro/internal/records"
)

// ProcessStream runs the pipeline over a stream of records with a bounded
// worker pool, yielding (input index, extraction) pairs in input order.
// Memory stays bounded by O(workers): at most a few batches of records
// are in flight regardless of stream length, so corpora that do not fit
// in memory can be processed by feeding records lazily. The extractors
// are stateless after construction (the ID3 tree is read-only once
// trained), so workers share the System.
//
// workers <= 0 selects GOMAXPROCS. Stopping iteration early — by the
// consumer breaking out of the loop or by cancelling ctx — releases
// every goroutine: the feeder stops pulling from in, idle workers exit,
// and busy workers exit as soon as their current record finishes (one
// record's extraction is the cancellation latency, the pipeline never
// interrupts mid-parse). After ctx is cancelled no further extraction
// is yielded.
func (s *System) ProcessStream(ctx context.Context, in iter.Seq[records.Record], workers int) iter.Seq2[int, Extraction] {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return func(yield func(int, Extraction) bool) {
		if workers == 1 {
			i := 0
			for r := range in {
				if ctx.Err() != nil {
					return
				}
				if !yield(i, s.Process(r.Text)) {
					return
				}
				i++
			}
			return
		}

		type job struct {
			seq  int
			text string
		}
		type result struct {
			seq int
			ex  Extraction
		}
		stop := make(chan struct{})
		done := ctx.Done()
		jobs := make(chan job, workers)
		results := make(chan result, workers)
		// tickets bounds the records in flight — queued, being processed,
		// or completed but waiting in the reorder buffer. The feeder
		// acquires one per record and the consumer releases one per
		// yielded extraction, so even when one slow record stalls
		// in-order delivery the rest of the stream cannot run ahead and
		// pile up: memory stays O(workers) however long the stream is.
		tickets := make(chan struct{}, 2*workers)

		// Feeder: pull from the input stream, numbering records.
		go func() {
			defer close(jobs)
			seq := 0
			for r := range in {
				select {
				case tickets <- struct{}{}:
				case <-stop:
					return
				case <-done:
					return
				}
				select {
				case jobs <- job{seq: seq, text: r.Text}:
					seq++
				case <-stop:
					return
				case <-done:
					return
				}
			}
		}()

		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := range jobs {
					select {
					case <-done:
						return
					default:
					}
					select {
					case results <- result{seq: j.seq, ex: s.Process(j.text)}:
					case <-stop:
						return
					case <-done:
						return
					}
				}
			}()
		}
		go func() {
			wg.Wait()
			close(results)
		}()

		// Reorder: workers finish out of order; hold completed extractions
		// until their predecessors arrive. The ticket cap bounds the
		// pending map along with everything else in flight.
		defer close(stop)
		pending := make(map[int]Extraction, 2*workers)
		next := 0
		for r := range results {
			if ctx.Err() != nil {
				return
			}
			pending[r.seq] = r.ex
			for {
				ex, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				if !yield(next, ex) {
					return
				}
				<-tickets
				next++
			}
		}
	}
}

// ProcessAll runs the pipeline over an in-memory corpus and returns the
// extractions in corpus order. It is ProcessStream over a slice.
func (s *System) ProcessAll(recs []records.Record, workers int) []Extraction {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(recs) {
		workers = len(recs)
	}
	if workers < 1 {
		workers = 1 // empty corpus: take the sequential no-op path
	}
	out := make([]Extraction, len(recs))
	for i, ex := range s.ProcessStream(context.Background(), slices.Values(recs), workers) {
		out[i] = ex
	}
	return out
}
