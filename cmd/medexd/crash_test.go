package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/store"
)

// daemonBin is the medexd binary built once in TestMain, so the
// fault-injection tests kill a real process — signal handling, the
// drain path and the exit code are all exercised as shipped.
var daemonBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "medexd-bin-")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	daemonBin = filepath.Join(dir, "medexd")
	if out, err := exec.Command("go", "build", "-o", daemonBin, ".").CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "building medexd: %v\n%s", err, out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

type daemon struct {
	cmd    *exec.Cmd
	addr   string
	stderr *bytes.Buffer
}

// startDaemon launches medexd on a free port and waits for the
// "listening on" line, so the returned daemon is accepting requests.
func startDaemon(t *testing.T, dbPath string, extra ...string) *daemon {
	t.Helper()
	args := append([]string{"-db", dbPath, "-addr", "127.0.0.1:0", "-shards", "4"}, extra...)
	cmd := exec.Command(daemonBin, args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if line := sc.Text(); strings.Contains(line, "listening on ") {
				addrc <- line[strings.LastIndex(line, " ")+1:]
				break
			}
		}
		io.Copy(io.Discard, stdout)
	}()
	select {
	case addr := <-addrc:
		return &daemon{cmd: cmd, addr: addr, stderr: &stderr}
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("daemon never started; stderr:\n%s", stderr.String())
		return nil
	}
}

// produceAcked runs n producer goroutines posting small unique-patient
// batches at the daemon until stop closes or the daemon goes away, and
// returns the patient ids of every batch that was fully acknowledged
// with 202. A 429 is retried (it is the backpressure contract, not a
// failure); any transport error ends the producer — the daemon was
// killed mid-request, so that batch is unacknowledged.
func produceAcked(d *daemon, producers int, stop <-chan struct{}, base int64) []int64 {
	var mu sync.Mutex
	var acked []int64
	var wg sync.WaitGroup
	for p := range producers {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			client := &http.Client{Timeout: 10 * time.Second}
			for seq := int64(0); ; seq++ {
				select {
				case <-stop:
					return
				default:
				}
				pid := base + int64(p)*100_000 + seq
				resp, err := client.Post("http://"+d.addr+"/v1/ingest", "application/x-ndjson",
					strings.NewReader(ndjsonPatients(pid)))
				if err != nil {
					return
				}
				_, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch {
				case rerr != nil:
					return
				case resp.StatusCode == http.StatusAccepted:
					mu.Lock()
					acked = append(acked, pid)
					mu.Unlock()
				case resp.StatusCode == http.StatusTooManyRequests:
					time.Sleep(5 * time.Millisecond)
				default:
					return
				}
			}
		}(p)
	}
	wg.Wait()
	return acked
}

// verifyAcked reopens the database the daemon owned and asserts the
// durability contract: every 202-acknowledged patient is present, the
// patient index agrees with the table, and a full scan sees exactly the
// rows the table reports (index == table).
func verifyAcked(t *testing.T, dbPath string, acked []int64) {
	t.Helper()
	eng, err := store.OpenSharded(dbPath, 0)
	if err != nil {
		t.Fatalf("reopening after crash: %v", err)
	}
	defer eng.Close()
	wh, err := core.OpenWarehouse(eng, nil)
	if err != nil {
		t.Fatal(err)
	}
	lost := 0
	for _, pid := range acked {
		chart, err := wh.Patient(pid)
		if err != nil {
			t.Fatalf("patient %d: %v", pid, err)
		}
		if len(chart) == 0 {
			lost++
			t.Errorf("acknowledged patient %d has no rows after reopen", pid)
		}
	}
	if lost > 0 {
		t.Fatalf("%d of %d acknowledged batches lost", lost, len(acked))
	}

	tbl, err := eng.Table(core.ResultTable)
	if err != nil {
		t.Fatal(err)
	}
	scanned := 0
	tbl.Scan(func(store.Row) bool { scanned++; return true })
	if scanned != tbl.Len() {
		t.Fatalf("scan saw %d rows, table reports %d", scanned, tbl.Len())
	}
	for _, pid := range acked {
		rows, err := tbl.Lookup("patient", store.Int(pid))
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) == 0 {
			t.Fatalf("patient index lost acknowledged patient %d (table has the row)", pid)
		}
	}
}

// TestCrashAckedBatchesSurviveKill is the fault-injection matrix:
// SIGKILL the daemon at randomized points while concurrent producers
// stream batches, reopen the database, and assert zero acknowledged
// writes were lost. The kill window varies per round so the process
// dies during extraction, mid-group-commit, and between commits.
func TestCrashAckedBatchesSurviveKill(t *testing.T) {
	if testing.Short() {
		t.Skip("fault injection is slow")
	}
	rng := rand.New(rand.NewSource(7))
	totalAcked := 0
	for round := range 4 {
		dbPath := filepath.Join(t.TempDir(), "wh.db")
		d := startDaemon(t, dbPath)
		stop := make(chan struct{})
		ackedc := make(chan []int64, 1)
		go func() {
			ackedc <- produceAcked(d, 4, stop, int64(round+1)*10_000_000)
		}()

		delay := 30*time.Millisecond + time.Duration(rng.Intn(250))*time.Millisecond
		time.Sleep(delay)
		if err := d.cmd.Process.Kill(); err != nil {
			t.Fatal(err)
		}
		close(stop)
		d.cmd.Wait()
		acked := <-ackedc
		totalAcked += len(acked)
		t.Logf("round %d: killed after %s, %d acknowledged batches", round, delay, len(acked))
		verifyAcked(t, dbPath, acked)
	}
	if totalAcked == 0 {
		t.Fatal("no round acknowledged any batch; the matrix proved nothing")
	}
}

// compactionRuns reads a live daemon's compaction counters from
// /v1/stats. A transport or decode error returns zeros — the daemon
// may already be dying, and the caller only uses the counters to log
// and to prove the matrix exercised compaction at least once.
func compactionRuns(d *daemon) (minor, major int64) {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + d.addr + "/v1/stats")
	if err != nil {
		return 0, 0
	}
	defer resp.Body.Close()
	var st struct {
		Compaction struct {
			MinorRuns int64 `json:"minorRuns"`
			MajorRuns int64 `json:"majorRuns"`
		} `json:"compaction"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return 0, 0
	}
	return st.Compaction.MinorRuns, st.Compaction.MajorRuns
}

// TestCrashDuringBackgroundCompaction extends the fault-injection
// matrix to the auto-compactor: with thresholds aggressive enough that
// minor folds and fan-out-escalated major merges run continuously
// under ingest, SIGKILL at randomized points lands inside build and
// commit windows of both compaction modes. The durability contract is
// unchanged — reopen loses no acknowledged batch and the patient index
// agrees with the table.
func TestCrashDuringBackgroundCompaction(t *testing.T) {
	if testing.Short() {
		t.Skip("fault injection is slow")
	}
	rng := rand.New(rand.NewSource(11))
	flags := []string{"-compact-mem-rows", "20", "-compact-wal-bytes", "8192", "-compact-fanout", "2"}
	totalAcked, roundsCompacted := 0, 0
	for round := range 4 {
		dbPath := filepath.Join(t.TempDir(), "wh.db")
		d := startDaemon(t, dbPath, flags...)
		stop := make(chan struct{})
		ackedc := make(chan []int64, 1)
		go func() {
			ackedc <- produceAcked(d, 4, stop, int64(round+1)*20_000_000)
		}()

		delay := 50*time.Millisecond + time.Duration(rng.Intn(400))*time.Millisecond
		time.Sleep(delay)
		minor, major := compactionRuns(d)
		if minor+major > 0 {
			roundsCompacted++
		}
		if err := d.cmd.Process.Kill(); err != nil {
			t.Fatal(err)
		}
		close(stop)
		d.cmd.Wait()
		acked := <-ackedc
		totalAcked += len(acked)
		t.Logf("round %d: killed after %s with %d minor / %d major compactions done, %d acknowledged batches",
			round, delay, minor, major, len(acked))
		verifyAcked(t, dbPath, acked)
	}
	if totalAcked == 0 {
		t.Fatal("no round acknowledged any batch; the matrix proved nothing")
	}
	if roundsCompacted == 0 {
		t.Fatal("no round completed a background compaction before the kill; thresholds too lax for the matrix")
	}
}

// TestGracefulShutdownDrains: SIGTERM mid-ingest must drain in-flight
// batches, close cleanly (exit 0), and lose nothing acknowledged.
func TestGracefulShutdownDrains(t *testing.T) {
	dbPath := filepath.Join(t.TempDir(), "wh.db")
	d := startDaemon(t, dbPath)
	stop := make(chan struct{})
	ackedc := make(chan []int64, 1)
	go func() {
		ackedc <- produceAcked(d, 4, stop, 1_000_000)
	}()

	time.Sleep(200 * time.Millisecond)
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := d.cmd.Wait(); err != nil {
		t.Fatalf("daemon exited dirty: %v\nstderr:\n%s", err, d.stderr.String())
	}
	close(stop)
	acked := <-ackedc
	if !strings.Contains(d.stderr.String(), "drained and closed") {
		t.Fatalf("no drain log line; stderr:\n%s", d.stderr.String())
	}
	t.Logf("%d acknowledged batches before SIGTERM drain", len(acked))
	verifyAcked(t, dbPath, acked)
}

// TestDaemonBadFlagsExitNonZero: fail-fast config validation — a
// misconfigured daemon must die at startup with a one-line error, not
// limp along.
func TestDaemonBadFlagsExitNonZero(t *testing.T) {
	cases := []struct {
		name   string
		args   []string
		substr string
	}{
		{"missing db", []string{"-addr", "127.0.0.1:0"}, "-db is required"},
		{"zero queue", []string{"-db", filepath.Join(t.TempDir(), "x.db"), "-queue", "0"}, "-queue must be positive"},
		{"bad strategy", []string{"-db", filepath.Join(t.TempDir(), "x.db"), "-strategy", "psychic"}, `unknown strategy "psychic"`},
		{"huge shards", []string{"-db", filepath.Join(t.TempDir(), "x.db"), "-shards", "9999"}, "-shards must be at most 1024"},
		{"zero drain timeout", []string{"-db", filepath.Join(t.TempDir(), "x.db"), "-drain-timeout", "0s"}, "-drain-timeout must be a positive duration"},
		{"zero compact trigger", []string{"-db", filepath.Join(t.TempDir(), "x.db"), "-compact-mem-rows", "0"}, "-compact-mem-rows must be positive"},
		{"negative compact wal bytes", []string{"-db", filepath.Join(t.TempDir(), "x.db"), "-compact-wal-bytes", "-1"}, "-compact-wal-bytes must be positive"},
		{"zero compact fanout", []string{"-db", filepath.Join(t.TempDir(), "x.db"), "-compact-fanout", "0"}, "-compact-fanout must be positive"},
	}
	for _, tc := range cases {
		out, err := exec.Command(daemonBin, tc.args...).CombinedOutput()
		if err == nil {
			t.Errorf("%s: daemon started instead of failing", tc.name)
			continue
		}
		if !strings.Contains(string(out), tc.substr) {
			t.Errorf("%s: output %q does not contain %q", tc.name, out, tc.substr)
		}
	}
}
