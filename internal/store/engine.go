package store

// Engine is the storage-engine abstraction the layers above the store
// program against: a durable (or in-memory) set of tables with
// transactional secondary indexes, compaction and crash recovery. *DB
// is the canonical implementation — a hash-partitioned set of Shards,
// of which the pre-shard single-WAL database is the one-shard special
// case. Callers that only need an Engine (core.PersistAll, the
// warehouse facade, the CLIs) stay agnostic of the shard count and of
// any future engine (e.g. a remote or multi-node store).
type Engine interface {
	// CreateTable creates a table with the given schema on every
	// shard; creating an existing table with an identical schema is a
	// no-op.
	CreateTable(s Schema) (*Table, error)
	// Table returns the named table, or an error if it does not exist.
	Table(name string) (*Table, error)
	// TableNames lists tables in sorted order.
	TableNames() []string
	// Shards returns the engine's partition count (1 for unsharded).
	Shards() int
	// Sync flushes buffered log records to stable storage.
	Sync() error
	// Compact rewrites the write-ahead log(s) down to the live state.
	Compact() error
	// LogSize returns the total bytes of write-ahead log.
	LogSize() int64
	// RecoveredWithLoss reports whether opening truncated a corrupt
	// WAL tail on any shard.
	RecoveredWithLoss() bool
	// Close flushes and closes the engine.
	Close() error
}

var _ Engine = (*DB)(nil)
