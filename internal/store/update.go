package store

import "bytes"

// Update replaces the row with the given primary key. The new row must
// carry the same primary key; secondary indexes are maintained. The
// operation is logged as delete+insert, which replays correctly.
func (t *Table) Update(pk Value, row Row) error {
	if err := t.schema.validate(row); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.updateLocked(pk, row)
}

func (t *Table) updateLocked(pk Value, row Row) error {
	key := encodeKey(pk)
	newKey := encodeKey(row[t.schema.Primary])
	if !bytes.Equal(key, newKey) {
		return ErrPKChange
	}
	old, ok := t.primary.Get(key)
	if !ok {
		return ErrNotFound
	}
	if err := t.db.logDelete(t.schema.Name, pk); err != nil {
		return err
	}
	if err := t.db.logInsert(t.schema.Name, row); err != nil {
		return err
	}
	t.applyDelete(key, old.(Row))
	t.apply(key, row)
	return nil
}

// Upsert inserts the row, replacing any existing row with the same
// primary key.
func (t *Table) Upsert(row Row) error {
	if err := t.schema.validate(row); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	pk := row[t.schema.Primary]
	if _, exists := t.primary.Get(encodeKey(pk)); exists {
		return t.updateLocked(pk, row)
	}
	return t.insertLocked(row)
}

// LookupRange returns rows whose indexed column value lies in [lo, hi),
// in ascending (column value, primary key) order. The column must have a
// secondary index.
func (t *Table) LookupRange(col string, lo, hi Value) ([]Row, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	idx, ok := t.secondary[col]
	if !ok {
		return nil, ErrNoIndex
	}
	var out []Row
	idx.AscendRange(encodeKey(lo), encodeKey(hi), func(_ []byte, v interface{}) bool {
		out = v.(*postingList).appendRows(out)
		return true
	})
	return out, nil
}

// Stats summarizes a table for monitoring.
type Stats struct {
	Rows       int
	Indexes    int
	IndexNames []string
}

// Stats returns the table's row count and index inventory.
func (t *Table) Stats() Stats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	s := Stats{Rows: t.primary.Len(), Indexes: len(t.secondary)}
	for name := range t.secondary {
		s.IndexNames = append(s.IndexNames, name)
	}
	sortKeys(s.IndexNames)
	return s
}
