package store

import (
	"path/filepath"
	"testing"
)

// The read-acceleration benchmarks prove the PR's three claims with
// on/off pairs: bloom filters make absent-key probes on a run stack
// nearly free, the shared block cache turns repeated block reads into
// memory hits, and batched index resolution decodes each touched block
// once per query instead of once per posting entry.

// benchRunStack builds a single-shard store whose table is a stack of
// `runs` minor-compaction runs with interleaved sparse keys: every run's
// zone map spans the whole key range (zone maps alone prune nothing) and
// odd pks never exist (absent-but-in-range probes).
func benchRunStack(b *testing.B, runs, perRun int) (*DB, *Table) {
	b.Helper()
	db, err := Open(filepath.Join(b.TempDir(), "stack.db"))
	if err != nil {
		b.Fatal(err)
	}
	tbl, err := db.CreateTable(attrSchema())
	if err != nil {
		b.Fatal(err)
	}
	if err := tbl.CreateIndex("attribute"); err != nil {
		b.Fatal(err)
	}
	for r := 0; r < runs; r++ {
		batch := make([]Row, 0, perRun)
		for i := 0; i < perRun; i++ {
			pk := int64((i*runs + r) * 2)
			attr := "pulse"
			if i%16 == 0 {
				// Sparse attribute: one posting per ~16 rows, scattered
				// over every block — the selective-query shape.
				attr = "smoking"
			}
			batch = append(batch, Row{
				Int(pk), Int(pk % 500),
				Str(attr), Str("x"), Float(float64(60 + pk%80)),
			})
		}
		if err := tbl.InsertBatch(batch); err != nil {
			b.Fatal(err)
		}
		if err := db.Flush(); err != nil {
			b.Fatal(err)
		}
	}
	if got := len(tbl.shards[0].segs); got != runs {
		b.Fatalf("expected %d runs, got %d", runs, got)
	}
	return db, tbl
}

// dropFilters simulates the pre-bloom read path on the same on-disk
// layout by discarding the loaded filters.
func dropFilters(tbl *Table) {
	for _, ts := range tbl.shards {
		for _, sg := range ts.segs {
			sg.filter = nil
		}
	}
}

// BenchmarkSegGetMiss probes absent keys through an 8-run stack — the
// dominant cost of index resolution and point gets on a compacted
// store, since every run must be consulted. bloom=off walks zone maps
// into block reads; bloom=on answers from the in-memory filters.
func BenchmarkSegGetMiss(b *testing.B) {
	const runs, perRun = 8, 4000
	for _, bloom := range []string{"off", "on"} {
		b.Run("bloom="+bloom, func(b *testing.B) {
			db, tbl := benchRunStack(b, runs, perRun)
			defer db.Close()
			db.SetBlockCacheCapacity(0) // isolate the filter effect
			if bloom == "off" {
				dropFilters(tbl)
			}
			ts := tbl.shards[0]
			span := int64(runs * perRun * 2)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pk := int64(i*2+1) % span // odd: in-zone, never stored
				if _, ok, err := ts.segGet(encodeKey(Int(pk)), nil); ok || err != nil {
					b.Fatalf("segGet(%d): ok=%v err=%v", pk, ok, err)
				}
			}
		})
	}
}

// BenchmarkSegGetHot re-reads a small hot key set from a compacted
// store. cache=off decodes the owning block from disk on every get;
// cache=on serves the decoded rows from the shared LRU.
func BenchmarkSegGetHot(b *testing.B) {
	const runs, perRun = 8, 4000
	for _, cache := range []string{"off", "on"} {
		b.Run("cache="+cache, func(b *testing.B) {
			db, tbl := benchRunStack(b, runs, perRun)
			defer db.Close()
			if cache == "off" {
				db.SetBlockCacheCapacity(0)
			}
			ts := tbl.shards[0]
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pk := int64((i % 64) * 2 * 97) // 64 hot keys across blocks
				if _, ok, err := ts.segGet(encodeKey(Int(pk)), nil); !ok || err != nil {
					b.Fatalf("segGet(%d): ok=%v err=%v", pk, ok, err)
				}
			}
		})
	}
}

// BenchmarkIndexedQuerySegments runs the same indexed equality query
// repeatedly against segment-resident rows — the warehouse's hot
// shape (per-condition index probe, then batched pk resolution).
// cache=off pays block decodes per query; cache=on resolves from the
// shared LRU after the first.
func BenchmarkIndexedQuerySegments(b *testing.B) {
	const runs, perRun = 4, 8000
	for _, cache := range []string{"off", "on"} {
		b.Run("cache="+cache, func(b *testing.B) {
			db, tbl := benchRunStack(b, runs, perRun)
			defer db.Close()
			if cache == "off" {
				db.SetBlockCacheCapacity(0)
			}
			// One posting per ~16 rows: the resolver touches nearly every
			// block for a small result — decode cost dominates.
			q := Query{Preds: []Pred{Eq("attribute", Str("smoking"))}}
			want := runs * perRun / 16
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rows, _, err := tbl.Query(q)
				if err != nil {
					b.Fatal(err)
				}
				if len(rows) != want {
					b.Fatalf("query returned %d rows, want %d", len(rows), want)
				}
			}
		})
	}
}
