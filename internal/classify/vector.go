package classify

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// The vector backend classifies the way log-line classifiers do: embed
// each text as a sparse vector, compare against one pre-computed vector
// per label, take the best cosine. There is no model download and no
// external dependency — the "embedding" is a feature-hashed bag of
// words, adjacent-word bigrams, and down-weighted character n-grams
// over the already-tokenized section, IDF-weighted so the section's
// label-independent boilerplate carries little weight, and the
// per-label vectors are centroids of the training examples. The
// tradeoff against the ID3 trees is deliberate: training is a single
// sparse pass of hashed sums (no feature-universe scan, no entropy
// recursion), and prediction needs only the token view — no POS
// tagging, no link-grammar parse — so it runs far higher throughput at
// some accuracy cost on attributes whose cues are word-order sensitive.

// DefaultVectorDims is the hashed vector dimensionality. 4096 buckets
// keep collisions rare for clinical-vocabulary sizes while the dense
// centroid stays cache-resident (16 KiB as float32).
const DefaultVectorDims = 4096

// DefaultVectorCharN is the character n-gram size folded in beside
// whole words. Trigrams make the backend robust to inflection and
// dictation typos ("smoker"/"smokes"/"smoking" share most grams).
const DefaultVectorCharN = 3

// charWeight scales character n-gram counts relative to word and bigram
// counts. Grams are kept for typo/inflection robustness but carry far
// less label signal than whole words on clinical text (every smoking
// class shares the "smok" stem), so they get a fractional vote.
const charWeight = 0.125

// Vector is the hashed bag-of-words + char-n-gram cosine-similarity
// backend.
type Vector struct {
	// Dims is the hashed dimensionality (<=0 selects DefaultVectorDims).
	Dims int
	// CharN is the character n-gram size; 0 disables n-grams and uses
	// whole-word features only.
	CharN int
}

// NewVector returns the vector backend with default parameters.
func NewVector() Vector { return Vector{Dims: DefaultVectorDims, CharN: DefaultVectorCharN} }

// Name implements Backend.
func (Vector) Name() string { return "vector" }

// Params implements Backend.
func (v Vector) Params() string { return fmt.Sprintf("dims=%d char=%d", v.dims(), v.CharN) }

func (v Vector) dims() int {
	if v.Dims <= 0 {
		return DefaultVectorDims
	}
	return v.Dims
}

// Train implements Backend in two sparse passes over one reused dense
// scratch buffer. The first pass hashes every example into a sparse
// (index, count) list and tallies per-dimension document frequency; the
// second applies IDF weights, normalizes, and sums into one centroid
// per label. IDF is what makes centroids work on clinical sections: the
// section text mixes label-independent sentences (the alcohol and drug
// lines sit beside the smoking line in every Social History) and IDF
// pushes that shared vocabulary toward zero weight, so the cosine is
// decided by the tokens that actually vary with the label.
func (v Vector) Train(examples []Example) Model {
	dims := v.dims()
	type sparse struct {
		idx   []uint32
		val   []float32
		class string
	}
	raws := make([]sparse, 0, len(examples))
	buf := make([]float32, 2*dims) // df and the reused dense scratch, one allocation
	df, scratch := buf[:dims], buf[dims:]
	var touchedBuf []uint32
	local := map[string]*tokenFeats{} // per-call token cache: no lock on repeats
	for _, e := range examples {
		touched := v.scatter(e.Tokens(), scratch, touchedBuf[:0], local)
		touchedBuf = touched
		if len(touched) == 0 {
			continue
		}
		sp := sparse{idx: make([]uint32, len(touched)), val: make([]float32, len(touched)), class: e.Class}
		for k, j := range touched {
			sp.idx[k] = j
			sp.val[k] = scratch[j]
			scratch[j] = 0 // leave the scratch clean for the next example
			df[j]++
		}
		raws = append(raws, sp)
	}
	n := float64(len(raws))
	idf := make([]float32, dims)
	unseen := float32(math.Log(1+n) + 1) // df = 0: the maximum weight
	for j := range idf {
		if df[j] > 0 {
			idf[j] = float32(math.Log((1+n)/(1+float64(df[j]))) + 1)
		} else {
			idf[j] = unseen
		}
	}
	sums := map[string][]float32{}
	for _, r := range raws {
		var norm float64
		for k, j := range r.idx {
			r.val[k] *= idf[j]
			norm += float64(r.val[k]) * float64(r.val[k])
		}
		if norm == 0 {
			continue
		}
		inv := float32(1 / math.Sqrt(norm))
		c := sums[r.class]
		if c == nil {
			c = make([]float32, dims)
			sums[r.class] = c
		}
		for k, j := range r.idx {
			c[j] += r.val[k] * inv
		}
	}
	labels := make([]string, 0, len(sums))
	for l := range sums {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	centroids := make([][]float32, len(labels))
	for i, l := range labels {
		normalize(sums[l])
		centroids[i] = sums[l]
	}
	return &vectorModel{cfg: v, labels: labels, centroids: centroids, idf: idf}
}

// vectorModel holds one normalized centroid per label plus the training
// IDF weights; labels sorted so prediction ties break deterministically
// (first label wins).
type vectorModel struct {
	cfg       Vector
	labels    []string
	centroids [][]float32
	idf       []float32
}

func (m *vectorModel) Backend() string { return "vector" }

// Predict embeds the instance's tokens and returns the label of the
// nearest centroid by cosine. The query vector is left unnormalized —
// scaling the query scales every dot product equally, so the argmax is
// the same — and the dot products walk only the touched dimensions. No
// tokens, or an untrained model, yields "".
func (m *vectorModel) Predict(in Instance) string {
	if len(m.labels) == 0 {
		return ""
	}
	vec := make([]float32, m.cfg.dims())
	touched := m.cfg.scatter(in.Tokens(), vec, nil, nil)
	if len(touched) == 0 {
		return ""
	}
	for _, j := range touched {
		vec[j] *= m.idf[j]
	}
	best, bestDot := "", float32(math.Inf(-1))
	for i, c := range m.centroids {
		var dot float32
		for _, j := range touched {
			dot += vec[j] * c[j]
		}
		if dot > bestDot {
			best, bestDot = m.labels[i], dot
		}
	}
	return best
}

// Size implements Model: the number of dimensions used by at least one
// centroid, the vector analogue of a tree's feature count.
func (m *vectorModel) Size() int {
	used := 0
	for j := 0; j < m.cfg.dims(); j++ {
		for _, c := range m.centroids {
			if c[j] != 0 {
				used++
				break
			}
		}
	}
	return used
}

// tokenFeats caches the raw (un-modded) feature hashes of one token, so
// repeated tokens — and every token after the first Train call — cost a
// cache hit instead of re-hashing the word, its bigram prefix, and each
// of its character n-grams.
type tokenFeats struct {
	word   uint32   // FNV of "w:<tok>"
	prefix uint32   // FNV of "b:<tok> ", continued with the next token
	grams  []uint32 // FNV of each "c:<gram>"
}

// featCache maps featKey → *tokenFeats. Hashes are pure functions of
// the token, so a process-global cache is safe; maxFeatCache bounds it
// so adversarial vocabulary cannot grow it without limit (overflowing
// tokens are simply hashed each time). A read-mostly RWMutex map beats
// sync.Map here: the hot path is Load-only and the plain map avoids
// interface-key hashing.
var (
	featCacheMu sync.RWMutex
	featCache   = map[featKey]*tokenFeats{}
)

const maxFeatCache = 1 << 16

type featKey struct {
	charN int
	tok   string
}

// feats returns the cached feature hashes of one token, computing and
// (size permitting) caching them on first sight.
func (v Vector) feats(tok string) *tokenFeats {
	key := featKey{v.CharN, tok}
	featCacheMu.RLock()
	got, ok := featCache[key]
	featCacheMu.RUnlock()
	if ok {
		return got
	}
	tf := &tokenFeats{
		word:   hashFeature("w:", tok),
		prefix: hashContinue(hashFeature("b:", tok), " "),
	}
	if v.CharN > 1 {
		// Pad the token so prefixes and suffixes get their own grams:
		// "^smokes$" → "^sm", "smo", …, "es$".
		padded := "^" + tok + "$"
		n := v.CharN
		for i := 0; i+n <= len(padded); i++ {
			tf.grams = append(tf.grams, hashFeature("c:", padded[i:i+n]))
		}
	}
	featCacheMu.Lock()
	if len(featCache) < maxFeatCache {
		featCache[key] = tf
	}
	featCacheMu.Unlock()
	return tf
}

// scatter hashes a token stream — whole words, adjacent-word bigrams,
// and character n-grams — into the dense vector, returning the touched
// indices appended to `touched` (each exactly once). Bigrams carry the
// word-order cues the bag loses ("never smoked" vs "smoked for 15
// years" share the unigram). An empty token stream touches nothing.
// `local`, when non-nil, is a caller-owned unlocked token cache layered
// over the global one (Train passes a per-call map so repeated tokens
// skip the cache lock).
func (v Vector) scatter(tokens []string, vec []float32, touched []uint32, local map[string]*tokenFeats) []uint32 {
	dims := uint32(v.dims())
	var prevPrefix uint32
	for i, tok := range tokens {
		tf := local[tok]
		if tf == nil {
			tf = v.feats(tok)
			if local != nil {
				local[tok] = tf
			}
		}
		j := tf.word % dims
		if vec[j] == 0 {
			touched = append(touched, j)
		}
		vec[j]++
		if i > 0 {
			j = hashContinue(prevPrefix, tok) % dims
			if vec[j] == 0 {
				touched = append(touched, j)
			}
			vec[j]++
		}
		prevPrefix = tf.prefix
		for _, g := range tf.grams {
			j = g % dims
			if vec[j] == 0 {
				touched = append(touched, j)
			}
			vec[j] += charWeight
		}
	}
	return touched
}

// hashFeature is FNV-1a 32 over a namespaced feature string, without
// building the concatenation.
func hashFeature(ns, s string) uint32 {
	const offset32 = 2166136261
	return hashContinue(hashContinue(offset32, ns), s)
}

// hashContinue folds more bytes into a running FNV-1a 32 state.
func hashContinue(h uint32, s string) uint32 {
	const prime32 = 16777619
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * prime32
	}
	return h
}

// normalize scales a vector to unit L2 norm in place (zero vectors are
// left unchanged).
func normalize(vec []float32) {
	var sum float64
	for _, x := range vec {
		sum += float64(x) * float64(x)
	}
	if sum == 0 {
		return
	}
	inv := float32(1 / math.Sqrt(sum))
	for i := range vec {
		vec[i] *= inv
	}
}
